(* Experiment harness: regenerates every figure/theorem-level claim of the
   paper as a printed table (E1..E12 of DESIGN.md / EXPERIMENTS.md), plus
   Bechamel timing benches (T1..T7).

   Each experiment also writes its tables as BENCH_e<N>.json next to the
   working directory, so tooling reads metric values without scraping text.

   Usage:  main.exe [e1|...|e20|quality|timing|all]   (default: all)
   e20 accepts an optional second argument "quick" (fewer reps, shorter
   fuses) for CI.  *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module Prng = Spp_util.Prng
module Table = Spp_util.Table
module Stats = Spp_util.Stats
module I = Spp_core.Instance
module LB = Spp_core.Lower_bounds
module Validate = Spp_core.Validate
module Dc = Spp_core.Dc
module Uniform = Spp_core.Uniform
module List_schedule = Spp_core.List_schedule
module Grouping = Spp_core.Grouping
module Config_lp = Spp_core.Config_lp
module Aptas = Spp_core.Aptas
module Adversarial = Spp_workloads.Adversarial
module Generators = Spp_workloads.Generators

let f2 = Printf.sprintf "%.2f"
let f3 = Printf.sprintf "%.3f"
let qf v = Q.to_float v

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

module Json = Spp_server.Json

(* Machine-readable twin of each experiment's printed tables, written to
   BENCH_<id>.json in the working directory. Cells that parse as numbers
   become JSON numbers, so downstream tooling reads metric values without
   scraping the aligned text; the printed tables stay the human output. *)
let bench_json ~id ?(config = []) tables =
  let cell s =
    match int_of_string_opt s with
    | Some i -> Json.Int i
    | None -> (
      match float_of_string_opt s with Some f -> Json.Float f | None -> Json.String s)
  in
  let table_json (name, t) =
    let cols = Table.columns t in
    Json.Obj
      [ ("name", Json.String name);
        ("columns", Json.List (List.map (fun c -> Json.String c) cols));
        ( "rows",
          Json.List
            (List.map
               (fun r -> Json.Obj (List.map2 (fun c v -> (c, cell v)) cols r))
               (Table.rows t)) ) ]
  in
  let j =
    Json.Obj
      (("experiment", Json.String id)
       :: (if config = [] then [] else [ ("config", Json.Obj config) ])
       @ [ ("tables", Json.List (List.map table_json tables)) ])
  in
  let path = Printf.sprintf "BENCH_%s.json" id in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string j);
      Out_channel.output_char oc '\n');
  Printf.printf "[%s] wrote %s\n" id path

let require_valid_prec inst p what =
  match Validate.check_prec inst p with
  | [] -> ()
  | v :: _ -> failwith (Format.asprintf "%s produced an invalid packing: %a" what Validate.pp_violation v)

let require_valid_release inst p what =
  match Validate.check_release inst p with
  | [] -> ()
  | v :: _ -> failwith (Format.asprintf "%s produced an invalid packing: %a" what Validate.pp_violation v)

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1 / Lemma 2.4: the Omega(log n) gap family. *)

let e1 () =
  section
    "E1  Figure 1 / Lemma 2.4 — Omega(log n) gap between OPT and the simple\n\
    \    lower bounds max(AREA(S), F(S)) on the k-chain construction";
  let t =
    Table.create
      ~columns:
        [ "k"; "n"; "AREA(S)"; "F(S)"; "LB=max"; "DC height"; "DC/LB"; "k/2 (Lemma)"; "2+log2(n+1)" ]
  in
  let points = ref [] in
  List.iter
    (fun k ->
      let inst = Adversarial.fig1 ~k ~eps_den:10_000 in
      let n = I.Prec.size inst in
      let area = LB.area inst and f = LB.critical_path inst in
      let lb = Q.max area f in
      let p, _ = Dc.pack inst in
      require_valid_prec inst p "DC";
      let h = Placement.height p in
      let ratio = qf h /. qf lb in
      points := (Float.log (float_of_int n +. 1.0) /. Float.log 2.0, ratio) :: !points;
      Table.add_row t
        [ string_of_int k; string_of_int n; f3 (qf area); f3 (qf f); f3 (qf lb);
          f3 (qf h); f2 ratio; f2 (float_of_int k /. 2.0);
          f2 (2.0 +. (Float.log (float_of_int n +. 1.0) /. Float.log 2.0)) ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Table.print t;
  bench_json ~id:"e1" ~config:[ ("eps_den", Json.Int 10_000); ("ks", Json.String "2..8") ]
    [ ("gap", t) ];
  let slope, intercept = Stats.linear_fit !points in
  Printf.printf
    "\nLeast-squares fit of ratio vs log2(n+1): ratio = %.3f*log2(n+1) + %.3f\n\
     Paper's claim: the gap grows as Theta(log n) (slope bounded away from 0\n\
     and below the 1/2 chain-construction constant).\n"
    slope intercept

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2.3: DC <= (2 + log(n+1)) * OPT on random DAG families. *)

let e2 () =
  section
    "E2  Theorem 2.3 — DC approximation on random DAG workloads\n\
    \    (ratios are against LB = max(AREA, F) <= OPT, so true ratios are\n\
    \    at most the printed ones; bound column is 2 + log2(n+1))";
  let t =
    Table.create
      ~columns:[ "shape"; "n"; "DC/LB (gmean)"; "LS/LB (gmean)"; "bound"; "DC<=bound?" ]
  in
  let shapes =
    [ ("layered", `Layered); ("series-par", `Series_parallel); ("fork-join", `Fork_join);
      ("chain", `Chain); ("indep", `Independent) ]
  in
  (* Cells are independent; fan them across domains (order preserved, so
     output is identical to the sequential run). *)
  let cells =
    List.concat_map (fun shape -> List.map (fun n -> (shape, n)) [ 16; 64; 256 ]) shapes
  in
  let rows =
    Spp_util.Parallel.map
      (fun ((name, shape), n) ->
        let ratios_dc = ref [] and ratios_ls = ref [] in
        let ok = ref true in
        for seed = 1 to 3 do
          let rng = Prng.create ((n * 1000) + seed) in
          let inst = Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape in
          let lb = qf (LB.prec inst) in
          let p, _ = Dc.pack inst in
          require_valid_prec inst p "DC";
          let h = qf (Placement.height p) in
          let ls = qf (Placement.height (List_schedule.prec inst)) in
          ratios_dc := (h /. lb) :: !ratios_dc;
          ratios_ls := (ls /. lb) :: !ratios_ls;
          if h > Dc.theorem_2_3_bound inst +. 1e-9 then ok := false
        done;
        let bound = 2.0 +. (Float.log (float_of_int n +. 1.0) /. Float.log 2.0) in
        [ name; string_of_int n; f3 (Stats.geometric_mean !ratios_dc);
          f3 (Stats.geometric_mean !ratios_ls); f2 bound; (if !ok then "yes" else "NO") ])
      cells
  in
  List.iter (Table.add_row t) rows;
  Table.print t;
  bench_json ~id:"e2"
    ~config:[ ("sizes", Json.String "16,64,256"); ("seeds", Json.String "1..3") ]
    [ ("ratios", t) ];
  Printf.printf
    "\nShape to reproduce: DC stays a small constant factor above LB on\n\
     realistic DAGs - far below its worst-case O(log n) bound - and the\n\
     greedy list scheduler is competitive there; only the adversarial\n\
     family (E1) separates them from the lower bounds.\n"

(* ------------------------------------------------------------------ *)
(* E3 — Figure 2 / Lemma 2.7: ratio -> 3 family for uniform heights. *)

let e3 () =
  section
    "E3  Figure 2 / Lemma 2.7 — uniform-height family where OPT = 3k while\n\
    \    max(F, AREA) ~ k: no bound-based proof can beat ratio 3";
  let t =
    Table.create
      ~columns:[ "k"; "n=3k"; "AREA"; "F"; "OPT (forced)"; "F-alg height"; "OPT/LB" ]
  in
  List.iter
    (fun k ->
      let inst = Adversarial.fig2 ~k ~eps_den:1000 in
      let area = LB.area inst and f = LB.critical_path inst in
      let p, _ = Uniform.next_fit_shelf inst in
      require_valid_prec inst p "algorithm F";
      let opt = 3 * k in
      let lb = Q.max area f in
      Table.add_row t
        [ string_of_int k; string_of_int (3 * k); f3 (qf area); f3 (qf f);
          string_of_int opt; f3 (qf (Placement.height p)); f3 (float_of_int opt /. qf lb) ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  bench_json ~id:"e3" [ ("lemma_2_7", t) ];
  Printf.printf
    "\nOPT/LB approaches 3 from below as k grows (Lemma 2.7's exact values:\n\
     AREA = n/3 + n*eps, F = n/3 + 1, OPT = n).\n"

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 2.6: algorithm F is an absolute 3-approximation. *)

let e4 () =
  section
    "E4  Theorem 2.6 — algorithm F vs the exact optimum (small n, DP ground\n\
    \    truth) and vs LB (large n); also the GGJY-style first fit and the\n\
    \    wave-FFD baseline";
  let t_small =
    Table.create ~columns:[ "n"; "F/OPT (mean)"; "F/OPT (max)"; "PFF/OPT"; "wave/OPT"; "skips<=path?" ]
  in
  List.iter
    (fun n ->
      let rf = ref [] and rp = ref [] and rw = ref [] in
      let skips_ok = ref true in
      for seed = 1 to 10 do
        let rng = Prng.create ((n * 37) + seed) in
        let inst = Generators.random_uniform_prec rng ~n ~k:8 ~shape:`Series_parallel in
        let opt = qf (Spp_exact.Prec_binpack.min_height inst) in
        let pf, sf = Uniform.next_fit_shelf inst in
        require_valid_prec inst pf "algorithm F";
        let pp, _ = Uniform.prec_first_fit inst in
        let pw, _ = Uniform.wave_ffd inst in
        rf := (qf (Placement.height pf) /. opt) :: !rf;
        rp := (qf (Placement.height pp) /. opt) :: !rp;
        rw := (qf (Placement.height pw) /. opt) :: !rw;
        if sf.Uniform.skips > Dag.longest_path_length inst.dag then skips_ok := false
      done;
      let _, fmax = Stats.min_max !rf in
      Table.add_row t_small
        [ string_of_int n; f3 (Stats.mean !rf); f3 fmax; f3 (Stats.mean !rp);
          f3 (Stats.mean !rw); (if !skips_ok then "yes" else "NO") ])
    [ 6; 9; 12; 15 ];
  Table.print t_small;
  let t_large = Table.create ~columns:[ "n"; "F/LB"; "PFF/LB"; "wave/LB" ] in
  List.iter
    (fun n ->
      let rng = Prng.create (n * 101) in
      let inst = Generators.random_uniform_prec rng ~n ~k:8 ~shape:`Layered in
      let lb = qf (LB.prec inst) in
      let pf, _ = Uniform.next_fit_shelf inst in
      let pp, _ = Uniform.prec_first_fit inst in
      let pw, _ = Uniform.wave_ffd inst in
      Table.add_row t_large
        [ string_of_int n; f3 (qf (Placement.height pf) /. lb);
          f3 (qf (Placement.height pp) /. lb); f3 (qf (Placement.height pw) /. lb) ])
    [ 50; 100; 200 ];
  Table.print t_large;
  bench_json ~id:"e4" [ ("small", t_small); ("large", t_large) ];
  Printf.printf
    "\nShape: F stays well below its absolute bound of 3 on random inputs\n\
     (the bound is tight only on Figure-2-style adversaries, E3); the\n\
     GGJY-style first fit is consistently at least as good as next fit, and\n\
     Lemma 2.5's skip bound holds on every run.\n"

(* ------------------------------------------------------------------ *)
(* E5 — Section 2.2 reduction: slide-down + shelves = bins equivalence. *)

let e5 () =
  section
    "E5  Section 2.2 — shelf normalisation (slide-down) and the\n\
    \    strip-packing <-> bin-packing equivalence for uniform heights";
  let t =
    Table.create
      ~columns:[ "n"; "LS height"; "slid height"; "shelf-aligned?"; "bins(FFD view)"; "exact bins" ]
  in
  List.iter
    (fun n ->
      let rng = Prng.create (n * 7) in
      let inst = Generators.random_uniform_prec rng ~n ~k:8 ~shape:`Series_parallel in
      let p = List_schedule.prec inst in
      let s = Uniform.slide_down inst p in
      require_valid_prec inst s "slide-down";
      let aligned =
        List.for_all
          (fun (it : Placement.item) ->
            let y = it.pos.Placement.y in
            Q.equal (Q.of_bigint (Q.floor y)) y)
          (Placement.items s)
      in
      let pf, stats = Uniform.prec_first_fit inst in
      require_valid_prec inst pf "prec first fit";
      let exact =
        if n <= 14 then string_of_int (Spp_num.Bigint.to_int_exn (Q.floor (Spp_exact.Prec_binpack.min_height inst)))
        else "-"
      in
      Table.add_row t
        [ string_of_int n; f3 (qf (Placement.height p)); f3 (qf (Placement.height s));
          (if aligned then "yes" else "NO"); string_of_int stats.Uniform.shelves; exact ])
    [ 8; 12; 14; 30; 60 ];
  Table.print t;
  bench_json ~id:"e5" [ ("slide_down", t) ];
  Printf.printf
    "\nSlide-down never increases height and always lands every rectangle on\n\
     a shelf, which is exactly why the GGJY bin-packing results transfer\n\
     (the paper's reduction).\n"

(* ------------------------------------------------------------------ *)
(* E6 — Lemmas 3.1 & 3.2: measured cost of the two reductions. *)

let e6 () =
  section
    "E6  Figures 3-4 / Lemmas 3.1-3.2 — fractional cost of release rounding\n\
    \    and width grouping (measured factor vs proved factor)";
  let t =
    Table.create
      ~columns:
        [ "seed"; "eps'"; "OPTf(P)"; "OPTf(P(R))"; "r-factor"; "<=1+eps'"; "OPTf(P(R,W))";
          "w-factor"; "<=1+K(R+1)/W" ]
  in
  List.iter
    (fun seed ->
      List.iter
        (fun inv_eps ->
          let eps' = Q.of_ints 1 inv_eps in
          let rng = Prng.create (seed * 31) in
          let inst = Generators.random_release rng ~n:10 ~k:2 ~h_den:4 ~r_den:2 ~load:1.5 in
          let base = Config_lp.solve inst in
          let p_r = Grouping.round_releases ~epsilon_r:eps' inst in
          let sol_r = Config_lp.solve p_r in
          let r = inv_eps in
          let g = inv_eps * 2 in
          let w = g * (r + 1) in
          let p_rw = Grouping.group_widths ~groups_per_class:g p_r in
          let sol_rw = Config_lp.solve p_rw in
          let f0 = qf base.Config_lp.fractional_height in
          let f1 = qf sol_r.Config_lp.fractional_height in
          let f2v = qf sol_rw.Config_lp.fractional_height in
          let rb = 1.0 +. (1.0 /. float_of_int inv_eps) in
          let wb = 1.0 +. (float_of_int (2 * (r + 1)) /. float_of_int w) in
          Table.add_row t
            [ string_of_int seed; Printf.sprintf "1/%d" inv_eps; f3 f0; f3 f1; f3 (f1 /. f0);
              (if f1 <= (f0 *. rb) +. 1e-9 then "yes" else "NO"); f3 f2v; f3 (f2v /. f1);
              (if f2v <= (f1 *. wb) +. 1e-9 then "yes" else "NO") ])
        [ 2; 3 ])
    [ 1; 2; 3 ];
  Table.print t;
  bench_json ~id:"e6" [ ("envelopes", t) ];
  Printf.printf
    "\nBoth measured factors sit far below the proved (1 + eps') envelopes;\n\
     grouping is often free because column-quantised widths already\n\
     coincide within classes.\n"

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 3.5: APTAS end-to-end vs baseline. *)

let e7 () =
  section
    "E7  Theorem 3.5 — APTAS end to end: height vs certified lower bound,\n\
    \    additive accounting (Lemmas 3.3-3.4), and the greedy baseline";
  let t =
    Table.create
      ~columns:
        [ "eps"; "K"; "n"; "APTAS h"; "LB"; "h/LB"; "LS h"; "LS/LB"; "occ"; "occ cap"; "frac+occ ok" ]
  in
  let cells =
    List.concat_map
      (fun ed -> List.concat_map (fun k -> List.map (fun n -> (ed, k, n)) [ 10; 20; 40 ]) [ 2; 3 ])
      [ (1, 1); (1, 2) ]
  in
  let rows =
    Spp_util.Parallel.map
      (fun ((eps_n, eps_d), k, n) ->
        let eps = Q.of_ints eps_n eps_d in
        let rng = Prng.create ((n * 13) + k) in
        let inst = Generators.random_release rng ~n ~k ~h_den:4 ~r_den:2 ~load:1.3 in
        let res = Aptas.solve ~epsilon:eps inst in
        require_valid_release inst res.Aptas.placement "APTAS";
        let ls = Placement.height (List_schedule.release inst) in
        let lb = res.Aptas.lower_bound in
        let slack_ok =
          Q.compare res.Aptas.height
            (Q.add res.Aptas.fractional_height (Q.of_int res.Aptas.occurrences))
          <= 0
          && res.Aptas.occurrences <= res.Aptas.max_occurrences
          && res.Aptas.fallback_rects = 0
        in
        [ Printf.sprintf "%d/%d" eps_n eps_d; string_of_int k; string_of_int n;
          f3 (qf res.Aptas.height); f3 (qf lb); f3 (qf res.Aptas.height /. qf lb);
          f3 (qf ls); f3 (qf ls /. qf lb); string_of_int res.Aptas.occurrences;
          string_of_int res.Aptas.max_occurrences; (if slack_ok then "yes" else "NO") ])
      cells
  in
  List.iter (Table.add_row t) rows;
  Table.print t;
  bench_json ~id:"e7" [ ("aptas", t) ];
  Printf.printf
    "\nShape: the APTAS's multiplicative ratio h/LB falls towards 1+eps as n\n\
     grows (the additive (W+1)(R+1) term amortises), while the greedy\n\
     baseline's ratio does not improve with n. Every run satisfies the\n\
     mechanical pieces of Theorem 3.5 (occ <= (W+1)(R+1) and\n\
     h <= OPT_f(P(R,W)) + occ).\n"

(* ------------------------------------------------------------------ *)
(* E8 — the subroutine A property and unconstrained baselines. *)

let e8 () =
  section
    "E8  Subroutine A — NFDH satisfies A <= 2*AREA + h_max (the only\n\
    \    property Theorem 2.3 uses), and how the level baselines compare";
  let t =
    Table.create
      ~columns:[ "n"; "AREA"; "NFDH"; "2A+hmax"; "ok"; "FFDH"; "BFDH"; "BL"; "best/AREA" ]
  in
  List.iter
    (fun n ->
      let rng = Prng.create (n * 3) in
      let rects = Generators.random_rects rng ~n ~k:16 ~h_den:8 in
      let area = Rect.total_area rects in
      let bound = Q.add (Q.mul_int area 2) (Rect.max_height rects) in
      let nfdh = Placement.height (Spp_pack.Level.nfdh rects) in
      let ffdh = Placement.height (Spp_pack.Level.ffdh rects) in
      let bfdh = Placement.height (Spp_pack.Level.bfdh rects) in
      let bl = Placement.height (Spp_pack.Bottom_left.pack rects) in
      let best = List.fold_left Q.min nfdh [ ffdh; bfdh; bl ] in
      Table.add_row t
        [ string_of_int n; f3 (qf area); f3 (qf nfdh); f3 (qf bound);
          (if Q.compare nfdh bound <= 0 then "yes" else "NO"); f3 (qf ffdh); f3 (qf bfdh);
          f3 (qf bl); f3 (qf best /. qf area) ])
    [ 25; 50; 100; 250; 500 ];
  Table.print t;
  bench_json ~id:"e8" [ ("shelf", t) ];
  Printf.printf
    "\nNFDH always sits under its 2*AREA + h_max certificate; FFDH/BFDH/BL\n\
     shave constant factors but share the same asymptotics - any of them\n\
     can serve as DC's subroutine A.\n"

(* ------------------------------------------------------------------ *)
(* E9 — the FPGA motivation end to end. *)

let e9 () =
  section
    "E9  FPGA end-to-end — the paper's Section 1 motivation: JPEG and\n\
    \    packet pipelines scheduled by DC and executed on the simulated\n\
    \    column-reconfigurable device";
  let t =
    Table.create
      ~columns:
        [ "workload"; "n"; "K"; "algorithm"; "makespan"; "LB"; "utilisation"; "reconfigs"; "clean" ]
  in
  let run name (inst : I.Prec.t) k =
    let dev = Spp_fpga.Device.make ~columns:k () in
    List.iter
      (fun (alg_name, pack) ->
        let p = pack inst in
        require_valid_prec inst p alg_name;
        let sched = Spp_fpga.Schedule.of_placement ~device:dev p in
        let rep = Spp_fpga.Sim.run ~dag:inst.dag sched in
        Table.add_row t
          [ name; string_of_int (I.Prec.size inst); string_of_int k; alg_name;
            f3 (qf rep.Spp_fpga.Sim.makespan); f3 (qf (LB.prec inst));
            f2 rep.Spp_fpga.Sim.utilisation; string_of_int rep.Spp_fpga.Sim.reconfigurations;
            (if rep.Spp_fpga.Sim.violations = [] then "yes" else "NO") ])
      [ ("DC", fun i -> fst (Dc.pack i)); ("list-sched", List_schedule.prec) ]
  in
  run "jpeg(4 blocks)" (Generators.jpeg_pipeline ~blocks:4 ~k:8) 8;
  run "jpeg(16 blocks)" (Generators.jpeg_pipeline ~blocks:16 ~k:8) 8;
  run "packet(8 flows)" (Generators.packet_pipeline ~flows:8 ~k:8) 8;
  run "packet(32 flows)" (Generators.packet_pipeline ~flows:32 ~k:16) 16;
  Table.print t;
  bench_json ~id:"e9" [ ("fpga", t) ];
  Printf.printf
    "\nEvery schedule executes on the device with zero conflicts; utilisation\n\
     quantifies how much reconfigurable area the schedule wastes, the\n\
     quantity dynamic reconfiguration exists to reclaim.\n"

(* ------------------------------------------------------------------ *)
(* E10 — online OS scheduling vs the offline APTAS (release times). *)

let e10 () =
  section
    "E10  Online vs offline — the FPGA operating-system view the paper\n\
    \     cites for release times: online column allocation (Earliest /\n\
    \     Leftmost policies) against the offline APTAS and its certified\n\
    \     lower bound";
  let t =
    Table.create
      ~columns:
        [ "n"; "load"; "LB"; "APTAS"; "shelf-FF"; "online-E"; "online-L"; "APTAS/LB"; "onE/LB";
          "onL/LB"; "onE wait" ]
  in
  List.iter
    (fun (n, load) ->
      let rng = Prng.create ((n * 17) + int_of_float (load *. 10.0)) in
      let inst = Generators.random_release rng ~n ~k:2 ~h_den:4 ~r_den:2 ~load in
      let res = Aptas.solve ~epsilon:Q.one inst in
      require_valid_release inst res.Aptas.placement "APTAS";
      let lb = res.Aptas.lower_bound in
      let dev = Spp_fpga.Device.make ~columns:2 () in
      let arrivals = Spp_fpga.Online.arrivals_of_release inst in
      let mk policy =
        let sched = Spp_fpga.Online.schedule dev policy arrivals in
        let release id = I.Release.release inst id in
        let rep = Spp_fpga.Sim.run ~release sched in
        if rep.Spp_fpga.Sim.violations <> [] then failwith "online schedule invalid";
        (Spp_fpga.Schedule.makespan sched, Spp_fpga.Sim.mean_wait ~release sched)
      in
      let on_e, wait_e = mk `Earliest and on_l, _ = mk `Leftmost in
      let shelf, _ = Spp_core.Release_shelf.pack_first_fit inst in
      require_valid_release inst shelf "release shelf";
      Table.add_row t
        [ string_of_int n; f2 load; f3 (qf lb); f3 (qf res.Aptas.height);
          f3 (qf (Placement.height shelf)); f3 (qf on_e); f3 (qf on_l);
          f3 (qf res.Aptas.height /. qf lb); f3 (qf on_e /. qf lb); f3 (qf on_l /. qf lb);
          f3 wait_e ])
    [ (10, 0.8); (10, 1.5); (20, 0.8); (20, 1.5); (40, 0.8); (40, 1.5) ];
  Table.print t;
  bench_json ~id:"e10" [ ("online", t) ];
  Printf.printf
    "\nThe informed online policy (Earliest) tracks the offline APTAS\n\
     closely under light load and degrades under heavy load, while the\n\
     naive Leftmost allocator pays for ignoring column state - the gap the\n\
     paper's offline guarantees quantify.\n"

(* ------------------------------------------------------------------ *)
(* E11 — ablation: DC's subroutine A. *)

let e11 () =
  section
    "E11  Ablation — DC with different subroutines A (Theorem 2.3 only\n\
    \     needs A <= 2*AREA + h_max; any of these satisfies it)";
  let t = Table.create ~columns:[ "shape"; "n"; "DC+NFDH"; "DC+FFDH"; "DC+BFDH"; "DC+Sleator"; "DC+BL" ] in
  List.iter
    (fun (name, shape) ->
      List.iter
        (fun n ->
          let rng = Prng.create ((n * 7) + Hashtbl.hash name) in
          let inst = Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape in
          let height sub =
            let p, _ = Dc.pack ~subroutine:sub inst in
            require_valid_prec inst p "DC ablation";
            qf (Placement.height p)
          in
          Table.add_row t
            [ name; string_of_int n; f3 (height Spp_pack.Level.nfdh);
              f3 (height Spp_pack.Level.ffdh); f3 (height Spp_pack.Level.bfdh);
              f3 (height Spp_pack.Sleator.pack);
              f3 (height (fun rs -> Spp_pack.Bottom_left.pack rs)) ])
        [ 64; 256 ])
    [ ("layered", `Layered); ("series-par", `Series_parallel) ];
  Table.print t;
  bench_json ~id:"e11" [ ("subroutines", t) ];
  Printf.printf
    "\nThe subroutine choice moves constants only - exactly what the\n\
     DESIGN.md substitution (NFDH for Steinberg) predicts: the analysis\n\
     never uses more than the 2*AREA + h_max property.\n"

(* ------------------------------------------------------------------ *)
(* E12 — the Kenyon–Rémila regime: plain strip packing via the same LP
   pipeline (all releases zero). *)

let e12 () =
  section
    "E12  Kenyon-Remila mode — the ancestor APTAS the paper builds on:\n\
    \     plain strip packing through the Section-3 pipeline with a single\n\
    \     release, vs the classical level algorithms";
  let t =
    Table.create
      ~columns:[ "n"; "eps"; "APTAS h"; "frac (LB-ish)"; "NFDH"; "FFDH"; "Sleator"; "APTAS/frac" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (en, ed) ->
          let eps = Q.of_ints en ed in
          let rng = Prng.create (n * 5) in
          let rects = Generators.random_rects rng ~n ~k:2 ~h_den:8 in
          let res = Aptas.strip ~epsilon:eps ~k:2 rects in
          let inst =
            I.Release.make ~k:2
              (List.map (fun rect -> { I.Release.rect; release = Q.zero }) rects)
          in
          require_valid_release inst res.Aptas.placement "strip APTAS";
          Table.add_row t
            [ string_of_int n; Printf.sprintf "%d/%d" en ed; f3 (qf res.Aptas.height);
              f3 (qf res.Aptas.fractional_height);
              f3 (qf (Placement.height (Spp_pack.Level.nfdh rects)));
              f3 (qf (Placement.height (Spp_pack.Level.ffdh rects)));
              f3 (qf (Spp_pack.Sleator.height rects));
              f3 (qf res.Aptas.height /. qf res.Aptas.fractional_height) ])
        [ (1, 1); (1, 2) ])
    [ 20; 60; 120 ];
  Table.print t;
  bench_json ~id:"e12" [ ("lp", t) ];
  Printf.printf
    "\nThe LP-based packing sits within 1-3%% of its fractional optimum at\n\
     every size (the asymptotic guarantee at work); the constant-factor\n\
     level algorithms remain competitive at these n because the additive\n\
     term has not fully amortised - the trade-off Kenyon-Remila's result,\n\
     which the paper generalises to release times, is about.\n"

(* ------------------------------------------------------------------ *)
(* E13 — the portfolio engine: racing every applicable algorithm across
   domains vs running them one after another, and vs the best single
   member. *)

let e13 () =
  section
    "E13  Portfolio engine — wall-clock cost of racing all applicable\n\
    \     algorithms across domains vs the best single member and vs\n\
    \     running the members sequentially";
  let module Engine = Spp_engine.Engine in
  let module Portfolio = Spp_engine.Portfolio in
  let module Clock = Spp_util.Clock in
  let module Io = Spp_core.Io in
  let t =
    Table.create
      ~columns:
        [ "instance"; "n"; "members"; "best member"; "best ms"; "seq ms"; "portfolio ms";
          "speedup(seq)"; "winner"; "height ok" ]
  in
  let cases =
    [ ("prec n=7", Io.Prec (let rng = Prng.create 41 in
                            Generators.random_prec rng ~n:7 ~k:8 ~h_den:4 ~shape:`Series_parallel));
      ("prec n=9", Io.Prec (let rng = Prng.create 42 in
                            Generators.random_prec rng ~n:9 ~k:8 ~h_den:4 ~shape:`Layered));
      ("uniform n=9", Io.Prec (let rng = Prng.create 43 in
                               Generators.random_uniform_prec rng ~n:9 ~k:8 ~shape:`Fork_join));
      ("release n=9", Io.Release (let rng = Prng.create 44 in
                                  Generators.random_release rng ~n:9 ~k:2 ~h_den:4 ~r_den:2
                                    ~load:1.3)) ]
  in
  List.iter
    (fun (name, parsed) ->
      let members = Portfolio.defaults parsed in
      (* Each member alone: wall time and achieved height. *)
      let singles =
        List.map
          (fun (s : Portfolio.spec) ->
            let t0 = Clock.now_ms () in
            let p = s.Portfolio.run ~cancel:Spp_util.Cancel.never parsed in
            (s.Portfolio.name, Placement.height p, Clock.elapsed_ms t0))
          members
      in
      let seq_ms = List.fold_left (fun acc (_, _, ms) -> acc +. ms) 0.0 singles in
      let best_name, best_h, best_ms =
        List.fold_left
          (fun ((_, bh, _) as acc) ((_, h, _) as c) -> if Q.compare h bh < 0 then c else acc)
          (List.hd singles) (List.tl singles)
      in
      let engine = Engine.create () in
      let t0 = Clock.now_ms () in
      let res = Engine.solve engine parsed in
      let port_ms = Clock.elapsed_ms t0 in
      let n =
        match parsed with
        | Io.Prec inst -> I.Prec.size inst
        | Io.Release inst -> I.Release.size inst
      in
      Table.add_row t
        [ name; string_of_int n; string_of_int (List.length members); best_name; f2 best_ms;
          f2 seq_ms; f2 port_ms; f2 (seq_ms /. Float.max port_ms 0.01);
          res.Engine.winner;
          (if Q.compare res.Engine.height best_h <= 0 then "<= best" else "WORSE") ])
    cases;
  Table.print t;
  bench_json ~id:"e13" ~config:[ ("seeds", Json.String "41..44") ] [ ("portfolio", t) ];
  Printf.printf
    "\nShape: the portfolio's wall clock tracks its slowest raced member (not\n\
     the sum), so against sequential execution the speedup approaches the\n\
     member count while the returned height is never worse than the best\n\
     single algorithm's.\n"

(* ------------------------------------------------------------------ *)
(* Timing benches (Bechamel). *)

let timing () =
  section "T1-T7  Timing (Bechamel; ns per run, linear-regression estimate)";
  let open Bechamel in
  let open Toolkit in
  let rng = Prng.create 99 in
  let inst128 = Generators.random_prec rng ~n:128 ~k:8 ~h_den:4 ~shape:`Layered in
  let uinst = Generators.random_uniform_prec rng ~n:128 ~k:8 ~shape:`Layered in
  let rects1000 = Generators.random_rects rng ~n:1000 ~k:16 ~h_den:8 in
  let rinst = Generators.random_release rng ~n:12 ~k:2 ~h_den:4 ~r_den:2 ~load:1.3 in
  let packed = Spp_pack.Level.nfdh rects1000 in
  let lp_model =
    (* A medium LP: the APTAS configuration LP for rinst after reduction. *)
    let p_rw =
      Grouping.group_widths ~groups_per_class:6
        (Grouping.round_releases ~epsilon_r:(Q.of_ints 1 3) rinst)
    in
    p_rw
  in
  let tests =
    [
      Test.make ~name:"T1 DC n=128" (Staged.stage (fun () -> ignore (Dc.pack inst128)));
      Test.make ~name:"T2 algorithm-F n=128"
        (Staged.stage (fun () -> ignore (Uniform.next_fit_shelf uinst)));
      Test.make ~name:"T3 NFDH n=1000"
        (Staged.stage (fun () -> ignore (Spp_pack.Level.nfdh rects1000)));
      Test.make ~name:"T4 APTAS eps=1 K=2 n=12"
        (Staged.stage (fun () -> ignore (Aptas.solve ~epsilon:Q.one rinst)));
      Test.make ~name:"T5 config-LP (exact simplex)"
        (Staged.stage (fun () -> ignore (Config_lp.solve lp_model)));
      Test.make ~name:"T6 validator n=1000"
        (Staged.stage (fun () -> ignore (Placement.check packed)));
      Test.make ~name:"T7 config-LP via column generation"
        (Staged.stage (fun () -> ignore (Spp_core.Config_colgen.solve lp_model)));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~limit:200 ~quota ~kde:None ()) [ Instance.monotonic_clock ] test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "%-32s %14.0f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        results)
    tests

let e14 () =
  section
    "E14  Network serving layer — closed-loop clients against one shared\n\
    \     spp serve daemon (worker pool + LRU over a socket) vs paying a\n\
    \     fresh engine per request (the one-process-per-solve model)";
  let module Engine = Spp_engine.Engine in
  let module Io = Spp_core.Io in
  let module Clock = Spp_util.Clock in
  let module Framing = Spp_server.Framing in
  let module Protocol = Spp_server.Protocol in
  let module Server = Spp_server.Server in
  let module Client = Spp_server.Client in
  let corpus =
    [ Io.prec_to_string
        (let rng = Prng.create 61 in
         Generators.random_prec rng ~n:8 ~k:8 ~h_den:4 ~shape:`Series_parallel);
      Io.prec_to_string
        (let rng = Prng.create 62 in
         Generators.random_prec rng ~n:10 ~k:8 ~h_den:4 ~shape:`Layered);
      Io.prec_to_string (Generators.jpeg_pipeline ~blocks:3 ~k:8);
      Io.release_to_string
        (let rng = Prng.create 63 in
         Generators.random_release rng ~n:8 ~k:2 ~h_den:4 ~r_den:2 ~load:1.3) ]
    |> Array.of_list
  in
  let budget_ms = 50.0 in
  let connections = 3 and per_conn = 16 in
  let total = connections * per_conn in
  let pick i = corpus.(i mod Array.length corpus) in
  let t =
    Table.create
      ~columns:[ "mode"; "requests"; "wall ms"; "req/s"; "p50 ms"; "p95 ms"; "p99 ms"; "lru hits" ]
  in
  let row mode wall lats hits =
    Table.add_row t
      [ mode; string_of_int total; f2 wall; f2 (float_of_int total /. (wall /. 1000.));
        f2 (Stats.quantile 0.5 lats); f2 (Stats.quantile 0.95 lats);
        f2 (Stats.quantile 0.99 lats); hits ]
  in
  (* Baseline: every request builds its own engine — no sharing, no cache,
     exactly what forking `spp solve` per request costs (minus exec). *)
  let t0 = Clock.now_ms () in
  let base_lats =
    List.init total (fun i ->
        let r0 = Clock.now_ms () in
        let engine = Engine.create () in
        ignore (Engine.solve ~budget_ms engine (Io.parse_string (pick i)));
        Clock.elapsed_ms r0)
  in
  row "per-request engine" (Clock.elapsed_ms t0) base_lats "-";
  (* Served: one daemon, closed-loop client threads over a Unix socket. *)
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spp_bench_e14_%d.sock" (Unix.getpid ()))
  in
  let address = Framing.Unix_sock sock in
  let srv =
    Server.start
      { Server.address; workers = 2; queue_depth = 32; engine = Engine.create ();
        default_budget_ms = Some budget_ms; solve_workers = Some 1;
        max_request_bytes = Server.default_max_request_bytes; slow_ms = None;
        idle_timeout_ms = None; read_timeout_ms = None;
        retry_after_ms = Server.default_retry_after_ms; max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  let lats = Array.make connections [] in
  let t0 = Clock.now_ms () in
  let threads =
    List.init connections (fun ci ->
        Thread.create
          (fun () ->
            Client.with_connection address (fun c ->
                for r = 0 to per_conn - 1 do
                  let r0 = Clock.now_ms () in
                  (match
                     Client.request c
                       (Protocol.Solve
                          { instance = pick (ci + (r * connections)); budget_ms = None;
                            deadline_ms = None; algos = None; trace_id = None })
                   with
                   | Protocol.Solve_ok _ -> ()
                   | _ -> failwith "E14: unexpected reply");
                  lats.(ci) <- Clock.elapsed_ms r0 :: lats.(ci)
                done))
          ())
  in
  List.iter Thread.join threads;
  let served_wall = Clock.elapsed_ms t0 in
  let hits =
    match Client.with_connection address (fun c -> Client.request c Protocol.Metrics) with
    | Protocol.Metrics_ok m -> string_of_int m.Protocol.cache.Protocol.hits
    | _ -> "?"
  in
  Server.stop srv;
  Server.wait srv;
  row "spp serve (shared)" served_wall (Array.to_list lats |> List.concat) hits;
  Table.print t;
  bench_json ~id:"e14" [ ("serve", t) ];
  Printf.printf
    "\nShape: the daemon computes each distinct instance once and serves every\n\
     repeat from the shared LRU at socket-round-trip latency, so the served\n\
     p50 collapses to well under a millisecond while the per-request-engine\n\
     baseline pays the full solve (up to the budget) every time.\n"

(* ------------------------------------------------------------------ *)
(* E15 — observability overhead: the same engine workload with the
   metrics registry live vs. disabled. The target from DESIGN.md is
   < 2% on the cache-hit hot path (one atomic increment per counter). *)

let e15 () =
  section
    "E15  Instrumentation overhead — identical workloads on an engine with\n\
    \    the metrics registry enabled vs. disabled (target: < 2% on hits)";
  let module Engine = Spp_engine.Engine in
  let module Telemetry = Spp_engine.Telemetry in
  let module Metrics = Spp_obs.Metrics in
  let module Clock = Spp_util.Clock in
  let module Io = Spp_core.Io in
  let distinct = 120 and hit_passes = 60 in
  let corpus =
    Array.init distinct (fun i ->
        let rng = Prng.create (9000 + i) in
        Io.parse_string
          (Io.prec_to_string
             (Generators.random_prec rng ~n:6 ~k:4 ~h_den:4 ~shape:`Series_parallel)))
  in
  let run_mode engine =
    (* Computed path: every instance is a miss. *)
    let t0 = Clock.now_ms () in
    Array.iter (fun p -> ignore (Engine.solve ~algos:[ "dc" ] ~workers:1 engine p)) corpus;
    let computed_ms = Clock.elapsed_ms t0 in
    (* Hot path: every solve is an in-memory LRU hit. *)
    let t0 = Clock.now_ms () in
    for _ = 1 to hit_passes do
      Array.iter (fun p -> ignore (Engine.solve ~algos:[ "dc" ] ~workers:1 engine p)) corpus
    done;
    (computed_ms, Clock.elapsed_ms t0)
  in
  let off_engine () =
    Engine.create
      ~telemetry:(Telemetry.create ~metrics:(Metrics.create ~enabled:false ()) ())
      ~cache_capacity:(2 * distinct) ()
  in
  let on_engine () = Engine.create ~cache_capacity:(2 * distinct) () in
  (* Warm-up pass so allocator/code paths are hot before either timing;
     then best-of-3 per mode — at ~10 us per cache hit the run-to-run
     noise would otherwise dwarf the instrumentation delta. *)
  ignore (run_mode (off_engine ()));
  let best mk =
    let runs = List.init 3 (fun _ -> run_mode (mk ())) in
    ( List.fold_left (fun acc (c, _) -> Float.min acc c) Float.infinity runs,
      List.fold_left (fun acc (_, h) -> Float.min acc h) Float.infinity runs )
  in
  let off_computed, off_hits = best off_engine in
  let on_computed, on_hits = best on_engine in
  let hits = distinct * hit_passes in
  let t =
    Table.create
      ~columns:[ "mode"; "computed ms"; "ms/solve"; "hit ms"; "us/hit" ]
  in
  let row mode computed hit =
    Table.add_row t
      [ mode; f2 computed; f3 (computed /. float_of_int distinct); f2 hit;
        f2 (1000. *. hit /. float_of_int hits) ]
  in
  row "metrics disabled" off_computed off_hits;
  row "metrics enabled" on_computed on_hits;
  Table.print t;
  bench_json ~id:"e15" [ ("obs_overhead", t) ];
  let pct on off = if off > 0. then 100. *. (on -. off) /. off else 0. in
  Printf.printf
    "\nOverhead: %+.2f%% on the computed path, %+.2f%% on the cache-hit path\n\
     (negative values are run-to-run noise; the hit path is the one that\n\
     matters, and its per-request cost is a handful of atomic increments).\n"
    (pct on_computed off_computed) (pct on_hits off_hits)

(* ------------------------------------------------------------------ *)
(* E16 — cluster front tier: the same duplicate-heavy closed-loop load
   against one spp serve vs an spp proxy over three backends. The proxy
   adds a hop, but coalescing collapses concurrent duplicates into one
   upstream solve and the snooped warm cache answers repeats without
   touching a backend at all. *)

let e16 () =
  section
    "E16  Cluster proxy — duplicate-heavy closed-loop clients against one\n\
    \     spp serve vs an spp proxy sharding over three backends with\n\
    \     request coalescing and a snooped warm cache";
  let module Engine = Spp_engine.Engine in
  let module Io = Spp_core.Io in
  let module Clock = Spp_util.Clock in
  let module Metrics = Spp_obs.Metrics in
  let module Framing = Spp_server.Framing in
  let module Protocol = Spp_server.Protocol in
  let module Server = Spp_server.Server in
  let module Client = Spp_server.Client in
  let module Proxy = Spp_cluster.Proxy in
  (* Two distinct instances cycled by four connections: every request
     after the first sighting of each instance is a duplicate — the
     regime proxies exist for. *)
  let corpus =
    [| Io.prec_to_string
         (let rng = Prng.create 71 in
          Generators.random_prec rng ~n:8 ~k:8 ~h_den:4 ~shape:`Series_parallel);
       Io.prec_to_string
         (let rng = Prng.create 72 in
          Generators.random_prec rng ~n:10 ~k:8 ~h_den:4 ~shape:`Layered) |]
  in
  let budget_ms = 50.0 in
  let connections = 4 and per_conn = 16 in
  let total = connections * per_conn in
  let pick i = corpus.(i mod Array.length corpus) in
  let sock tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spp_bench_e16_%s_%d.sock" tag (Unix.getpid ()))
  in
  let start_server tag =
    Server.start
      { Server.address = Framing.Unix_sock (sock tag); workers = 1; queue_depth = 32;
        engine = Engine.create (); default_budget_ms = Some budget_ms;
        solve_workers = Some 1; max_request_bytes = Server.default_max_request_bytes;
        slow_ms = None; idle_timeout_ms = None; read_timeout_ms = None;
        retry_after_ms = Server.default_retry_after_ms; max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  let hammer address =
    let lats = Array.make connections [] in
    let t0 = Clock.now_ms () in
    let threads =
      List.init connections (fun ci ->
          Thread.create
            (fun () ->
              Client.with_connection address (fun c ->
                  for r = 0 to per_conn - 1 do
                    let r0 = Clock.now_ms () in
                    (match
                       Client.request c
                         (Protocol.Solve
                            { instance = pick (ci + (r * connections)); budget_ms = None;
                              deadline_ms = None; algos = None; trace_id = None })
                     with
                     | Protocol.Solve_ok _ -> ()
                     | _ -> failwith "E16: unexpected reply");
                    lats.(ci) <- Clock.elapsed_ms r0 :: lats.(ci)
                  done))
            ())
    in
    List.iter Thread.join threads;
    (Clock.elapsed_ms t0, Array.to_list lats |> List.concat)
  in
  let t =
    Table.create
      ~columns:
        [ "mode"; "requests"; "wall ms"; "req/s"; "p50 ms"; "p95 ms"; "p99 ms";
          "coalesced"; "cache hits" ]
  in
  let row mode wall lats coalesced hits =
    Table.add_row t
      [ mode; string_of_int total; f2 wall; f2 (float_of_int total /. (wall /. 1000.));
        f2 (Stats.quantile 0.5 lats); f2 (Stats.quantile 0.95 lats);
        f2 (Stats.quantile 0.99 lats); coalesced; hits ]
  in
  (* Baseline: one server, its own LRU doing the duplicate absorption. *)
  let solo = start_server "solo" in
  let solo_addr = Framing.Unix_sock (sock "solo") in
  let wall, lats = hammer solo_addr in
  Server.stop solo;
  Server.wait solo;
  row "spp serve (single)" wall lats "-" "-";
  (* Cluster: three backends behind a coalescing, snooping proxy. *)
  let backends = List.map start_server [ "b0"; "b1"; "b2" ] in
  let registry = Metrics.create () in
  let proxy_addr = Framing.Unix_sock (sock "proxy") in
  let px =
    Proxy.start
      { (Proxy.default_config ~address:proxy_addr
           ~backends:(List.map (fun tag -> Framing.Unix_sock (sock tag)) [ "b0"; "b1"; "b2" ])
           ())
        with
        Proxy.registry; seed = 16 }
  in
  let wall, lats = hammer proxy_addr in
  let counter name =
    match Metrics.find_counter registry name with Some v -> string_of_int v | None -> "0"
  in
  let coalesced = counter "spp_proxy_coalesced_total" in
  let hits = counter "spp_proxy_cache_hits_total" in
  Proxy.stop px;
  Proxy.wait px;
  List.iter
    (fun srv ->
      Server.stop srv;
      Server.wait srv)
    backends;
  row "spp proxy (3 backends)" wall lats coalesced hits;
  Table.print t;
  bench_json ~id:"e16" [ ("cluster", t) ];
  Printf.printf
    "\nShape: the proxy answers duplicate-heavy load at its own cache latency\n\
     after one sighting per instance (cache hits), and concurrent first\n\
     sightings share a single upstream solve (coalesced), so three backends\n\
     behind one proxy see a fraction of the raw request stream.\n"

let e17 () =
  section
    "E17  Online simulation — arrival-intensity sweep (Poisson rates and\n\
    \     adversarial bursts) through the event-driven simulator: first-fit\n\
    \     vs buffered lookahead, with and without threshold repacking";
  let module Arrivals = Spp_sim.Arrivals in
  let module Online = Spp_sim.Online in
  let module Sim = Spp_sim.Sim in
  let module LB = Spp_core.Lower_bounds in
  let specs =
    [ Arrivals.Poisson 0.5; Arrivals.Poisson 1.0; Arrivals.Poisson 2.0; Arrivals.Poisson 4.0;
      Arrivals.Burst { burst_len = 6; idle_gap = 2.0 };
      Arrivals.Burst { burst_len = 10; idle_gap = 4.0 } ]
  in
  let t =
    Table.create
      ~columns:
        [ "arrival"; "packer"; "repack"; "makespan"; "ratio"; "wait"; "repacks"; "cells";
          "frag mean"; "frag peak" ]
  in
  List.iter
    (fun spec ->
      let inst = Arrivals.trace ~n:60 ~k:8 ~seed:17 spec in
      let lb = LB.release inst in
      List.iter
        (fun packer ->
          List.iter
            (fun repack_threshold ->
              let r = Sim.run ?repack_threshold ~packer inst in
              (match Sim.check inst r with
               | [] -> ()
               | v :: _ -> failwith (Format.asprintf "E17: unsound run: %a" Sim.pp_violation v));
              Table.add_row t
                [ Arrivals.spec_to_string spec; Online.to_string packer;
                  (match repack_threshold with None -> "off" | Some th -> Q.to_string th);
                  f2 (Q.to_float r.Sim.makespan);
                  f2 (Q.to_float r.Sim.makespan /. Q.to_float lb);
                  f2 (Q.to_float r.Sim.total_wait);
                  string_of_int (List.length r.Sim.repacks);
                  string_of_int r.Sim.cells_migrated; f2 (Q.to_float r.Sim.frag_mean);
                  f2 (Q.to_float r.Sim.frag_peak) ])
            [ None; Some (Q.of_ints 1 4) ])
        [ Online.First_fit; Online.Buffered 4 ])
    specs;
  Table.print t;
  bench_json ~id:"e17" [ ("sim", t) ];
  Printf.printf
    "\nShape: ratio is makespan over the Section 3 lower bound (exact, so\n\
     never below 1). Low rates leave the strip idle and every policy is\n\
     near-optimal; at high rates and on bursts the pending queue deepens,\n\
     fragmentation climbs, and threshold repacking buys its makespan and\n\
     wait reductions with migrated cells — the disruption column.\n"

(* ------------------------------------------------------------------ *)
(* E18 — solver-profiling overhead gate: the E15 workload with the
   Profile counters enabled vs. disabled. The counters are ambient
   (Domain.DLS cells, aggregated once per solver call), so the cache-hit
   hot path — which never reaches a solver — must stay inside the same
   < 2% envelope DESIGN.md grants the metrics registry. *)

let e18 () =
  section
    "E18  Profiling overhead gate — identical workloads with the solver\n\
    \    profiling counters enabled vs. disabled (gate: < 2% on hits)";
  let module Engine = Spp_engine.Engine in
  let module Profile = Spp_obs.Profile in
  let module Clock = Spp_util.Clock in
  let module Io = Spp_core.Io in
  let distinct = 120 and hit_passes = 60 in
  let corpus =
    Array.init distinct (fun i ->
        let rng = Prng.create (9500 + i) in
        Io.parse_string
          (Io.prec_to_string
             (Generators.random_prec rng ~n:6 ~k:4 ~h_den:4 ~shape:`Series_parallel)))
  in
  let run_mode engine =
    let t0 = Clock.now_ms () in
    Array.iter (fun p -> ignore (Engine.solve ~algos:[ "dc" ] ~workers:1 engine p)) corpus;
    let computed_ms = Clock.elapsed_ms t0 in
    let t0 = Clock.now_ms () in
    for _ = 1 to hit_passes do
      Array.iter (fun p -> ignore (Engine.solve ~algos:[ "dc" ] ~workers:1 engine p)) corpus
    done;
    (computed_ms, Clock.elapsed_ms t0)
  in
  let mk enabled () =
    Profile.set_enabled enabled;
    Engine.create ~cache_capacity:(2 * distinct) ()
  in
  ignore (run_mode (mk false ()));
  (* Interleave the modes round by round and keep each mode's best, so
     machine drift during the run hits both sides equally instead of
     taxing whichever mode happens to be timed last. *)
  let off_computed = ref infinity and off_hits = ref infinity in
  let on_computed = ref infinity and on_hits = ref infinity in
  for _ = 1 to 3 do
    let c, h = run_mode (mk false ()) in
    off_computed := Float.min !off_computed c;
    off_hits := Float.min !off_hits h;
    let c, h = run_mode (mk true ()) in
    on_computed := Float.min !on_computed c;
    on_hits := Float.min !on_hits h
  done;
  let off_computed = !off_computed and off_hits = !off_hits in
  let on_computed = !on_computed and on_hits = !on_hits in
  Profile.set_enabled true;
  let hits = distinct * hit_passes in
  let t =
    Table.create ~columns:[ "mode"; "computed ms"; "ms/solve"; "hit ms"; "us/hit" ]
  in
  let row mode computed hit =
    Table.add_row t
      [ mode; f2 computed; f3 (computed /. float_of_int distinct); f2 hit;
        f2 (1000. *. hit /. float_of_int hits) ]
  in
  row "profiling disabled" off_computed off_hits;
  row "profiling enabled" on_computed on_hits;
  Table.print t;
  bench_json ~id:"e18"
    ~config:[ ("distinct", Json.Int distinct); ("hit_passes", Json.Int hit_passes) ]
    [ ("profile_overhead", t) ];
  let pct on off = if off > 0. then 100. *. (on -. off) /. off else 0. in
  let hit_pct = pct on_hits off_hits in
  Printf.printf "\nOverhead: %+.2f%% on the computed path, %+.2f%% on the cache-hit path.\n"
    (pct on_computed off_computed) hit_pct;
  Printf.printf "E18 gate: %s (hit-path overhead %+.2f%%, budget 2%%)\n"
    (if hit_pct < 2.0 then "ok" else "FAIL") hit_pct

let e19 () =
  section
    "E19  Hedged failover — a fast/slow backend pair behind the proxy,\n\
    \     tail latency with hedging off vs. a 25 ms hedge delay";
  let module Engine = Spp_engine.Engine in
  let module Io = Spp_core.Io in
  let module Clock = Spp_util.Clock in
  let module Metrics = Spp_obs.Metrics in
  let module Framing = Spp_server.Framing in
  let module Protocol = Spp_server.Protocol in
  let module Server = Spp_server.Server in
  let module Client = Spp_server.Client in
  let module Proxy = Spp_cluster.Proxy in
  let sock tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spp_bench_e19_%s_%d.sock" tag (Unix.getpid ()))
  in
  let start_server tag =
    Server.start
      { Server.address = Framing.Unix_sock (sock tag); workers = 1; queue_depth = 32;
        engine = Engine.create (); default_budget_ms = Some 50.0;
        solve_workers = Some 1; max_request_bytes = Server.default_max_request_bytes;
        slow_ms = None; idle_timeout_ms = None; read_timeout_ms = None;
        retry_after_ms = Server.default_retry_after_ms; max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  (* The "slow" backend is a healthy server behind a line relay that sits
     on each request for [stall_ms] before forwarding — a deterministic
     stand-in for a node with a deep queue or a GC pause. *)
  let stall_ms = 120.0 in
  let start_slow_gateway target =
    let addr = Framing.Unix_sock (sock "slowgw") in
    let listener = Framing.listen addr in
    let relay client =
      let upstream = Framing.connect target in
      let from_client = Framing.reader client and from_backend = Framing.reader upstream in
      let rec pump () =
        match Framing.read_line from_client with
        | None -> ()
        | Some line ->
          Thread.delay (stall_ms /. 1000.0);
          Framing.write_line upstream line;
          (match Framing.read_line from_backend with
           | None -> ()
           | Some reply ->
             Framing.write_line client reply;
             pump ())
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close client with Unix.Unix_error _ -> ());
          try Unix.close upstream with Unix.Unix_error _ -> ())
        pump
    in
    let _acceptor =
      Thread.create
        (fun () ->
          let rec loop () =
            match Unix.accept listener with
            | client, _ ->
              ignore (Thread.create (fun () -> try relay client with _ -> ()) ());
              loop ()
            | exception Unix.Unix_error _ -> ()
          in
          loop ())
        ()
    in
    (addr, listener)
  in
  let requests = 32 in
  (* Fresh instances per mode so the proxy's snooped cache never absorbs
     a request — every solve goes upstream, where hedging matters. *)
  let corpus base =
    Array.init requests (fun i ->
        let rng = Prng.create (base + i) in
        Io.prec_to_string
          (Generators.random_prec rng ~n:6 ~k:4 ~h_den:4 ~shape:`Series_parallel))
  in
  let fast = start_server "fast" and slow = start_server "slow" in
  let gw_addr, gw_listener = start_slow_gateway (Framing.Unix_sock (sock "slow")) in
  let t =
    Table.create
      ~columns:[ "mode"; "requests"; "wall ms"; "p50 ms"; "p99 ms"; "hedges"; "hedge wins" ]
  in
  let run_mode label hedge base =
    let registry = Metrics.create () in
    let proxy_addr = Framing.Unix_sock (sock ("proxy_" ^ label)) in
    let px =
      Proxy.start
        { (Proxy.default_config ~address:proxy_addr
             ~backends:[ gw_addr; Framing.Unix_sock (sock "fast") ] ())
          with
          Proxy.registry; seed = 19; hedge; failover = 1;
          probe_interval_ms = 60_000.0; upstream_timeout_ms = Some 5_000.0 }
    in
    let texts = corpus base in
    let lats = ref [] in
    let wall0 = Clock.now_ms () in
    Client.with_connection proxy_addr (fun c ->
        Array.iter
          (fun text ->
            let r0 = Clock.now_ms () in
            (match
               Client.request c
                 (Protocol.Solve
                    { instance = text; budget_ms = None; deadline_ms = None;
                      algos = None; trace_id = None })
             with
             | Protocol.Solve_ok _ -> ()
             | _ -> failwith "E19: unexpected reply");
            lats := Clock.elapsed_ms r0 :: !lats)
          texts);
    let wall = Clock.elapsed_ms wall0 in
    let counter name =
      match Metrics.find_counter registry name with Some v -> v | None -> 0
    in
    let hedges = counter "spp_hedges_total" and wins = counter "spp_hedge_wins_total" in
    Proxy.stop px;
    Proxy.wait px;
    Table.add_row t
      [ label; string_of_int requests; f2 wall; f2 (Stats.quantile 0.5 !lats);
        f2 (Stats.quantile 0.99 !lats); string_of_int hedges; string_of_int wins ];
    Stats.quantile 0.99 !lats
  in
  let p99_off = run_mode "no hedging" Proxy.Hedge_off 19_100 in
  let p99_on = run_mode "hedge 25ms" (Proxy.Hedge_fixed 25.0) 19_200 in
  (try Unix.close gw_listener with Unix.Unix_error _ -> ());
  List.iter
    (fun srv ->
      Server.stop srv;
      Server.wait srv)
    [ fast; slow ];
  Table.print t;
  bench_json ~id:"e19"
    ~config:[ ("stall_ms", Json.Float stall_ms); ("hedge_ms", Json.Float 25.0) ]
    [ ("hedging", t) ];
  Printf.printf
    "\nShape: without hedging, every request whose ring leader is the stalled\n\
     backend eats the full %.0f ms stall; with a 25 ms hedge the proxy races\n\
     the fast backend after the delay and the tail collapses to roughly\n\
     hedge delay + solve time (p99 %.1f ms -> %.1f ms).\n"
    stall_ms p99_off p99_on

let e20 ?(quick = false) () =
  section
    "E20  Fast exact core — before/after on the E13 corpus: small-int\n\
    \    rationals vs the reference tower, dominance-pruned B&B vs plain,\n\
    \    warm-started column generation vs cold (gate: geomean >= 2x)";
  let module Clock = Spp_util.Clock in
  let module Profile = Spp_obs.Profile in
  let module RR = Spp_num.Reference.Rat in
  let reps = if quick then 1 else 3 in
  (* Best-of-reps wall time: robust to scheduler noise without averaging
     away the honest cost. *)
  let time f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let t0 = Clock.now_ms () in
      let r = f () in
      best := Float.min !best (Clock.elapsed_ms t0);
      result := Some r
    done;
    (Option.get !result, !best)
  in
  (* The exact members of the E13 corpus (regenerated from the same
     seeds) — the n = 9 members are beyond any branch and bound and are
     exercised through the rational-arithmetic row instead — plus the two
     checked-in formerly-exploding regression instances. *)
  let corpus_dir =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "hard7_symmetric.spp"))
      [ "data/corpus"; "../data/corpus"; "../../data/corpus" ]
  in
  let corpus_prec name =
    match corpus_dir with
    | None -> None
    | Some d ->
      (match Spp_core.Io.read_file (Filename.concat d (name ^ ".spp")) with
       | Spp_core.Io.Prec inst -> Some (name, inst)
       | Spp_core.Io.Release _ -> None)
  in
  (* Dominance prunes by collapsing same-shape permutations, so its
     before/after subjects are symmetric instances built from repeated
     shapes: the checked-in hard7_symmetric regression and an eight-rect
     two-class instance (kept out of the corpus so the 500 ms fuzz fuse
     stays comfortable there). The seed-41 n=7 member has all-distinct
     shapes (nothing for the table to collapse) and is exercised — along
     with the n=9 members — through the rational-arithmetic row. *)
  let inline_sym =
    let text =
      String.concat "\n"
        (List.mapi
           (fun i (w, h) -> Printf.sprintf "rect %d %s %s" i w h)
           (List.init 5 (fun _ -> ("1/3", "1/2")) @ List.init 3 (fun _ -> ("1/2", "1/3"))))
      ^ "\n"
    in
    match Spp_core.Io.parse_string text with
    | Spp_core.Io.Prec inst -> ("sym n=8", inst)
    | Spp_core.Io.Release _ -> assert false
  in
  let bb_cases =
    List.filter_map corpus_prec [ "hard7_symmetric" ] @ [ inline_sym ]
  in
  let all_dims_cases =
    bb_cases
    @ [ ("prec n=7", let rng = Prng.create 41 in
                     Generators.random_prec rng ~n:7 ~k:8 ~h_den:4 ~shape:`Series_parallel);
        ("prec n=9", let rng = Prng.create 42 in
                     Generators.random_prec rng ~n:9 ~k:8 ~h_den:4 ~shape:`Layered);
        ("uniform n=9", let rng = Prng.create 43 in
                        Generators.random_uniform_prec rng ~n:9 ~k:8 ~shape:`Fork_join) ]
  in
  (* The seed-44 E13 release member converges in a single pricing round
     (its initial pool is already optimal), leaving nothing for a warm
     start to save — the colgen row scales the same generator up to a
     size where cold pricing takes several rounds. *)
  let release_case =
    let rng = Prng.create 47 in
    Generators.random_release rng ~n:30 ~k:8 ~h_den:4 ~r_den:2 ~load:1.3
  in
  let t =
    Table.create
      ~columns:[ "member"; "metric"; "before"; "after"; "before ms"; "after ms"; "speedup" ]
  in
  let speedups = ref [] in
  let add_row member metric before after before_ms after_ms =
    speedups := (before_ms /. Float.max after_ms 0.001) :: !speedups;
    Table.add_row t
      [ member; metric; before; after; f2 before_ms; f2 after_ms;
        f2 (before_ms /. Float.max after_ms 0.001) ]
  in
  let counters = ref [] in
  let counter name v = counters := (name, Json.Int v) :: !counters in
  (* Rationals: the arithmetic profile of the exact solvers (sums of
     products with growing denominators, comparisons) over the corpus
     dimensions, fast tower vs the reference implementation. *)
  let dims =
    List.concat_map
      (fun (_, inst) ->
        List.concat_map (fun (r : Rect.t) -> [ r.Rect.w; r.Rect.h ]) inst.I.Prec.rects)
      all_dims_cases
    @ List.concat_map
        (fun (task : I.Release.task) ->
          [ task.I.Release.rect.Rect.w; task.I.Release.rect.Rect.h; task.I.Release.release ])
        release_case.I.Release.tasks
  in
  let dims = Array.of_list (List.filter (fun v -> not (Q.is_zero v)) dims) in
  (* The solvers' arithmetic profile: short sums of products, divisions
     and comparisons over instance-denominator rationals — values stay
     word-sized, which is exactly the regime the fast tower targets. The
     accumulator resets every 16 steps (as bound computations do) so the
     workload measures the common case, not unbounded denominator growth. *)
  let passes = if quick then 2_000 else 20_000 in
  let rat_workload (type a) (zero : a) (add : a -> a -> a) (mul : a -> a -> a)
      (div : a -> a -> a) (cmp : a -> a -> int) (vals : a array) () =
    let n = Array.length vals in
    let acc = ref zero in
    let cmps = ref 0 in
    for p = 0 to passes - 1 do
      if p mod 16 = 0 then acc := zero;
      let a = vals.(p mod n) and b = vals.((p + 7) mod n) in
      acc := add !acc (mul a b);
      if cmp (div a b) !acc > 0 then incr cmps
    done;
    !cmps
  in
  let ref_dims = Array.map (fun v -> RR.of_string (Q.to_string v)) dims in
  let ref_cmps, ref_ms =
    time (rat_workload RR.zero RR.add RR.mul RR.div RR.compare ref_dims)
  in
  let fast_cmps, fast_ms = time (rat_workload Q.zero Q.add Q.mul Q.div Q.compare dims) in
  assert (ref_cmps = fast_cmps);
  add_row "corpus dims" "rat ops" (string_of_int (3 * passes)) (string_of_int (3 * passes))
    ref_ms fast_ms;
  (* Branch and bound: dominance table off vs on, one worker so node
     counts are deterministic. The off runs wear a fuse: a cancelled
     before-side is charged only the fuse time (understating the speedup,
     never inflating it). *)
  let fuse_ms = if quick then 2_000. else 10_000. in
  List.iter
    (fun (name, inst) ->
      let solve ~dominance () =
        let cancel = Spp_util.Cancel.with_deadline_ms fuse_ms in
        match Spp_exact.Normal_bb.solve ~cancel ~workers:1 ~dominance inst with
        | out -> Some out
        | exception Spp_util.Cancel.Cancelled -> None
      in
      let off, off_ms = time (solve ~dominance:false) in
      let on, on_ms = time (solve ~dominance:true) in
      let on =
        match on with
        | Some out -> out
        | None -> failwith (name ^ ": dominance-pruned B&B blew the fuse")
      in
      (match off with
       | Some out ->
         if not (Q.equal out.Spp_exact.Normal_bb.height on.Spp_exact.Normal_bb.height) then
           failwith (name ^ ": dominance changed the optimum")
       | None -> ());
      let show = function
        | Some (out : Spp_exact.Normal_bb.outcome) -> string_of_int out.Spp_exact.Normal_bb.nodes_expanded
        | None -> "fuse"
      in
      counter (name ^ " nodes") on.Spp_exact.Normal_bb.nodes_expanded;
      add_row name "bb nodes" (show off) (show (Some on)) off_ms on_ms)
    bb_cases;
  (* Column generation: cold pool vs a pool warmed by a previous solve on
     the same widths (the APTAS repeat-solve pattern). *)
  let rounds_of f =
    Profile.reset ();
    let r, ms = time f in
    (r, ms, (Profile.read ()).Profile.colgen_rounds / reps)
  in
  let cold, cold_ms, cold_rounds =
    rounds_of (fun () -> Spp_core.Config_colgen.solve release_case)
  in
  let warm = Spp_core.Config_colgen.warm_start () in
  ignore (Spp_core.Config_colgen.solve ~warm release_case);
  let warmed, warm_ms, warm_rounds =
    rounds_of (fun () -> Spp_core.Config_colgen.solve ~warm release_case)
  in
  if not (Q.equal cold.Config_lp.fractional_height warmed.Config_lp.fractional_height) then
    failwith "warm-started column generation changed the LP optimum";
  counter "colgen rounds cold" cold_rounds;
  counter "colgen rounds warm" warm_rounds;
  add_row "release n=30 K=8" "colgen rounds" (string_of_int cold_rounds)
    (string_of_int warm_rounds) cold_ms warm_ms;
  Table.print t;
  let geomean =
    let l = !speedups in
    exp (List.fold_left (fun a s -> a +. log s) 0.0 l /. float_of_int (List.length l))
  in
  bench_json ~id:"e20"
    ~config:
      [ ("seeds", Json.String "41..44"); ("quick", Json.Bool quick);
        ("geomean_speedup", Json.Float geomean) ]
    [ ("exact_core", t) ];
  (* Perf-regression gate, two parts: the wall-clock geomean must hold the
     2x floor, and the deterministic counters must match the checked-in
     baseline (bench/baseline_e20.json) within tolerance — drift means an
     algorithmic change that must be acknowledged by refreshing the
     baseline. *)
  let counters = List.rev !counters in
  let baseline_path =
    List.find_opt Sys.file_exists [ "bench/baseline_e20.json"; "../bench/baseline_e20.json" ]
  in
  let counter_json () =
    "{ "
    ^ String.concat ", "
        (List.map
           (fun (name, v) ->
             Printf.sprintf "%S: %s" name
               (match v with Json.Int i -> string_of_int i | _ -> "0"))
           counters)
    ^ " }"
  in
  let counter_failures =
    match baseline_path with
    | None ->
      Printf.printf
        "\n(no bench/baseline_e20.json found; counter gate skipped)\n\
         baseline candidate: %s\n"
        (counter_json ());
      []
    | Some path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      (match Json.of_string text with
       | Error e -> [ Printf.sprintf "baseline unreadable: %s" e ]
       | Ok j ->
         List.filter_map
           (fun (name, v) ->
             let actual = match v with Json.Int i -> i | _ -> 0 in
             match Option.bind (Json.member name j) Json.get_int with
             | None -> Some (Printf.sprintf "%s: missing from baseline (actual %d)" name actual)
             | Some expected ->
               let tol = Float.max 1.0 (0.10 *. float_of_int expected) in
               if Float.abs (float_of_int (actual - expected)) <= tol then None
               else Some (Printf.sprintf "%s: %d vs baseline %d (tolerance 10%%)" name actual expected))
           counters)
  in
  List.iter (fun m -> Printf.printf "counter drift: %s\n" m) counter_failures;
  let ok = geomean >= 2.0 && counter_failures = [] in
  Printf.printf "E20 gate: %s (geomean speedup %.2fx, floor 2.00x; %d counter(s) checked)\n"
    (if ok then "ok" else "FAIL")
    geomean (List.length counters)

let quality () =
  e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 (); e11 (); e12 (); e13 ();
  e14 (); e15 (); e16 (); e17 (); e18 (); e19 (); e20 ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "e1" -> e1 ()
  | "e2" -> e2 ()
  | "e3" -> e3 ()
  | "e4" -> e4 ()
  | "e5" -> e5 ()
  | "e6" -> e6 ()
  | "e7" -> e7 ()
  | "e8" -> e8 ()
  | "e9" -> e9 ()
  | "e10" -> e10 ()
  | "e11" -> e11 ()
  | "e12" -> e12 ()
  | "e13" | "portfolio" -> e13 ()
  | "e14" | "serve" -> e14 ()
  | "e15" | "obs" -> e15 ()
  | "e16" | "cluster" -> e16 ()
  | "e17" | "sim" -> e17 ()
  | "e18" | "profile" -> e18 ()
  | "e19" | "hedge" -> e19 ()
  | "e20" | "exactcore" ->
    e20 ~quick:(Array.length Sys.argv > 2 && Sys.argv.(2) = "quick") ()
  | "quality" -> quality ()
  | "timing" -> timing ()
  | "all" ->
    quality ();
    timing ()
  | other ->
    Printf.eprintf "unknown experiment %S (expected e1..e20, portfolio, serve, obs, cluster, sim, profile, hedge, exactcore, quality, timing, all)\n" other;
    exit 2
