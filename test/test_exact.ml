(* Tests for Spp_exact: the precedence bin-packing DP against hand-solved
   instances and brute-force cross-checks, and the bottom-left order search
   against the heuristics it is meant to calibrate. *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module I = Spp_core.Instance
module Validate = Spp_core.Validate
module Uniform = Spp_core.Uniform
module Prec_binpack = Spp_exact.Prec_binpack
module Order_search = Spp_exact.Order_search

let q = Q.of_ints
let rect id wn wd hn hd = Rect.make ~id ~w:(q wn wd) ~h:(q hn hd)

let prec rects edges =
  I.Prec.make rects (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges)

let item id size = { Prec_binpack.id; size }

(* ------------------------------------------------------------------ *)
(* Prec_binpack *)

let test_binpack_no_precedence () =
  (* 0.5, 0.5, 0.5 without edges: two bins. *)
  let items = [ item 0 (q 1 2); item 1 (q 1 2); item 2 (q 1 2) ] in
  let dag = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[] in
  Alcotest.(check int) "bins" 2 (Prec_binpack.min_bins items dag)

let test_binpack_chain_forces_bins () =
  (* Chain of three tiny items: precedence forces one bin each. *)
  let items = [ item 0 (q 1 10); item 1 (q 1 10); item 2 (q 1 10) ] in
  let dag = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 1); (1, 2) ] in
  Alcotest.(check int) "bins" 3 (Prec_binpack.min_bins items dag)

let test_binpack_mixed () =
  (* 0 -> 2 with sizes 0.5/0.5/0.5: bin1 {0,1}, bin2 {2} = 2 bins; but the
     greedy that puts 1 with 2 still needs 2. Optimal is 2. *)
  let items = [ item 0 (q 1 2); item 1 (q 1 2); item 2 (q 1 2) ] in
  let dag = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 2) ] in
  Alcotest.(check int) "bins" 2 (Prec_binpack.min_bins items dag);
  (* Force a suboptimal-looking split: 0 -> 1, 0 -> 2: {0} then {1,2}. *)
  let dag2 = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 1); (0, 2) ] in
  Alcotest.(check int) "fork bins" 2 (Prec_binpack.min_bins items dag2)

let test_binpack_empty_and_guards () =
  Alcotest.(check int) "empty" 0 (Prec_binpack.min_bins [] Dag.empty);
  Alcotest.check_raises "too large"
    (Invalid_argument "Prec_binpack.min_bins: instance too large (n > 20)") (fun () ->
      let items = List.init 21 (fun i -> item i (q 1 2)) in
      let dag = Dag.of_edges ~nodes:(List.init 21 Fun.id) ~edges:[] in
      ignore (Prec_binpack.min_bins items dag))

let test_min_height_uniform () =
  (* Heights 1/2 each; widths 0.5 x 3 no edges -> 2 bins -> height 1. *)
  let inst = prec [ rect 0 1 2 1 2; rect 1 1 2 1 2; rect 2 1 2 1 2 ] [] in
  Alcotest.(check string) "height" "1" (Q.to_string (Prec_binpack.min_height inst))

(* DP optimality vs the wave/next-fit heuristics: exact <= every heuristic,
   and exact >= the size lower bound and the path lower bound. *)
let uniform_gen =
  QCheck.make
    ~print:(fun (inst : I.Prec.t) -> Printf.sprintf "n=%d" (I.Prec.size inst))
    QCheck.Gen.(
      let* n = int_range 1 9 in
      let* widths = list_repeat n (int_range 1 8) in
      let rects = List.mapi (fun i wn -> Rect.make ~id:i ~w:(q wn 8) ~h:Q.one) widths in
      let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
      let* keep = list_repeat (List.length all) (frequency [ (3, return false); (1, return true) ]) in
      let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
      return (I.Prec.make rects
                (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges)))

let prop_dp_sandwiched =
  QCheck.Test.make ~name:"exact DP between lower bounds and heuristics" ~count:100 uniform_gen
    (fun inst ->
      let opt = Q.to_float (Prec_binpack.min_height inst) in
      let _, f_stats = Uniform.next_fit_shelf inst in
      let _, pff_stats = Uniform.prec_first_fit inst in
      let path = Dag.longest_path_length inst.dag in
      let area = Q.to_float (Spp_core.Lower_bounds.area inst) in
      opt >= float_of_int path -. 1e-9
      && opt >= area -. 1e-9
      && opt <= float_of_int f_stats.Uniform.shelves +. 1e-9
      && opt <= float_of_int pff_stats.Uniform.shelves +. 1e-9)

let prop_theorem_2_6_ratio =
  (* Algorithm F within 3x the exact optimum (Theorem 2.6, absolute). *)
  QCheck.Test.make ~name:"Theorem 2.6: F <= 3 * OPT" ~count:100 uniform_gen (fun inst ->
      let opt = Prec_binpack.min_height inst in
      let _, stats = Uniform.next_fit_shelf inst in
      Q.compare (Q.of_int stats.Uniform.shelves) (Q.mul_int opt 3) <= 0)

(* ------------------------------------------------------------------ *)
(* Order search *)

let test_order_search_simple () =
  (* Two half-width unit squares, no precedence: best BL height is 1. *)
  let inst = prec [ rect 0 1 2 1 1; rect 1 1 2 1 1 ] [] in
  let out = Order_search.best_prec inst in
  Alcotest.(check string) "height" "1" (Q.to_string out.Order_search.height);
  Alcotest.(check bool) "placement valid" true
    (Validate.is_valid_prec inst out.Order_search.placement)

let test_order_search_chain () =
  let inst = prec [ rect 0 1 2 1 1; rect 1 1 2 1 1 ] [ (0, 1) ] in
  let out = Order_search.best_prec inst in
  Alcotest.(check string) "serialised" "2" (Q.to_string out.Order_search.height)

let test_order_search_guard () =
  let rects = List.init 11 (fun i -> rect i 1 2 1 1) in
  let inst = prec rects [] in
  Alcotest.check_raises "n > 10" (Invalid_argument "Order_search: instance too large (n > 10)")
    (fun () -> ignore (Order_search.best_prec inst))

let small_prec_gen =
  QCheck.make
    ~print:(fun (inst : I.Prec.t) -> Printf.sprintf "n=%d" (I.Prec.size inst))
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* specs = list_repeat n (pair (int_range 1 4) (int_range 1 4)) in
      let rects = List.mapi (fun i (wn, hn) -> Rect.make ~id:i ~w:(q wn 4) ~h:(q hn 2)) specs in
      let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
      let* keep = list_repeat (List.length all) (frequency [ (4, return false); (1, return true) ]) in
      let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
      return (I.Prec.make rects
                (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges)))

let prop_order_search_dominates_heuristics =
  QCheck.Test.make ~name:"order search <= DC and list scheduling" ~count:60 small_prec_gen
    (fun inst ->
      let best = (Order_search.best_prec inst).Order_search.height in
      let dc = Spp_core.Dc.height inst in
      let ls = Placement.height (Spp_core.List_schedule.prec inst) in
      Q.compare best dc <= 0 && Q.compare best ls <= 0)

let prop_order_search_valid_and_bounded_below =
  QCheck.Test.make ~name:"order search valid; >= both lower bounds" ~count:60 small_prec_gen
    (fun inst ->
      let out = Order_search.best_prec inst in
      Validate.check_prec inst out.Order_search.placement = []
      && Q.compare out.Order_search.height (Spp_core.Lower_bounds.area inst) >= 0
      && Q.compare out.Order_search.height (Spp_core.Lower_bounds.critical_path inst) >= 0)

let small_release_gen =
  QCheck.make
    ~print:(fun (inst : I.Release.t) -> Printf.sprintf "n=%d" (I.Release.size inst))
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* specs = list_repeat n (triple (int_range 1 2) (int_range 1 4) (int_range 0 4)) in
      let tasks =
        List.mapi
          (fun i (wn, hn, rel) ->
            { I.Release.rect = Rect.make ~id:i ~w:(q wn 2) ~h:(q hn 4); release = q rel 2 })
          specs
      in
      return (I.Release.make ~k:2 tasks))

let prop_order_search_release =
  QCheck.Test.make ~name:"release order search valid and dominates list scheduling" ~count:60
    small_release_gen (fun inst ->
      let out = Order_search.best_release inst in
      Validate.check_release inst out.Order_search.placement = []
      && Q.compare out.Order_search.height
           (Placement.height (Spp_core.List_schedule.release inst))
         <= 0
      && Q.compare out.Order_search.height (Spp_core.Lower_bounds.release inst) >= 0)

(* ------------------------------------------------------------------ *)
(* Normal-position branch and bound (true exact solver) *)

module Normal_bb = Spp_exact.Normal_bb

let test_normal_bb_trivial () =
  let inst = prec [ rect 0 1 2 1 1; rect 1 1 2 1 1 ] [] in
  let out = Normal_bb.solve inst in
  Alcotest.(check string) "side by side" "1" (Q.to_string out.Normal_bb.height);
  let chain = prec [ rect 0 1 2 1 1; rect 1 1 2 1 1 ] [ (0, 1) ] in
  Alcotest.(check string) "chain serialises" "2" (Q.to_string (Normal_bb.solve chain).Normal_bb.height)

let test_normal_bb_beats_bottom_left () =
  (* A case where every bottom-left packing is suboptimal would separate the
     two solvers; on tiny instances they usually agree — check agreement
     direction: exact <= order search, and exact is validated. *)
  let inst =
    prec [ rect 0 1 2 1 1; rect 1 1 2 1 2; rect 2 1 4 3 2; rect 3 3 4 1 2 ] [ (0, 3) ]
  in
  let bb = Normal_bb.solve inst in
  let os = Order_search.best_prec inst in
  Alcotest.(check bool) "exact <= BL search" true
    (Q.compare bb.Normal_bb.height os.Order_search.height <= 0);
  Alcotest.(check bool) "valid" true (Validate.is_valid_prec inst bb.Normal_bb.placement)

let test_normal_bb_guard () =
  let rects = List.init 10 (fun i -> rect i 1 2 1 1) in
  Alcotest.check_raises "n > 9" (Invalid_argument "Normal_bb.solve: instance too large (n > 9)")
    (fun () -> ignore (Normal_bb.solve (prec rects [])))

(* Three identical two-thirds-width rects must stack (opt 3) while the
   area bound is only 2, so the seed cannot short-circuit the search and
   the permutation symmetry guarantees the dominance table fires. *)
let dominance_inst () = prec [ rect 0 2 3 1 1; rect 1 2 3 1 1; rect 2 2 3 1 1 ] []

let test_normal_bb_dominance_prunes () =
  let inst = dominance_inst () in
  Spp_obs.Profile.reset ();
  let on = Normal_bb.solve ~dominance:true inst in
  let p_on = Spp_obs.Profile.read () in
  Spp_obs.Profile.reset ();
  let off = Normal_bb.solve ~dominance:false inst in
  let p_off = Spp_obs.Profile.read () in
  Alcotest.(check string) "optimum" "3" (Q.to_string on.Normal_bb.height);
  Alcotest.(check string) "dominance never cuts the optimum" (Q.to_string off.Normal_bb.height)
    (Q.to_string on.Normal_bb.height);
  Alcotest.(check bool) "dominance table fired"
    true (p_on.Spp_obs.Profile.bb_dominated > 0);
  Alcotest.(check int) "undominated search reports no dominated states" 0
    p_off.Spp_obs.Profile.bb_dominated;
  Alcotest.(check bool)
    (Printf.sprintf "dominance shrinks the tree (%d >= %d nodes)"
       p_off.Spp_obs.Profile.bb_nodes p_on.Spp_obs.Profile.bb_nodes)
    true
    (p_off.Spp_obs.Profile.bb_nodes >= p_on.Spp_obs.Profile.bb_nodes)

let test_normal_bb_profile_attribution () =
  (* The ambient profile must account for exactly the nodes the outcome
     reports (seed + search), on the calling domain, pruned included. *)
  let inst = dominance_inst () in
  Spp_obs.Profile.reset ();
  let out = Normal_bb.solve inst in
  let p = Spp_obs.Profile.read () in
  Alcotest.(check int) "profile nodes = outcome nodes" out.Normal_bb.nodes_expanded
    p.Spp_obs.Profile.bb_nodes;
  Alcotest.(check bool) "bound pruning counted" true (p.Spp_obs.Profile.bb_pruned > 0)

let test_normal_bb_parallel_profile_attribution () =
  (* Worker domains must not leak counts into their own DLS cells: the
     caller aggregates, so the calling domain sees the whole search. *)
  let inst = dominance_inst () in
  Spp_obs.Profile.reset ();
  let out = Normal_bb.solve ~workers:4 inst in
  let p = Spp_obs.Profile.read () in
  Alcotest.(check int) "profile nodes = outcome nodes (4 workers)"
    out.Normal_bb.nodes_expanded p.Spp_obs.Profile.bb_nodes

let prop_normal_bb_dominance_never_cuts =
  (* Exhaustive cross-check on n <= 6: the dominance-pruned search and the
     undominated search agree on the optimum for every generated DAG. *)
  QCheck.Test.make ~name:"dominance on = dominance off (n <= 6)" ~count:80 small_prec_gen
    (fun inst ->
      Q.equal
        (Normal_bb.solve ~dominance:true inst).Normal_bb.height
        (Normal_bb.solve ~dominance:false inst).Normal_bb.height)

let prop_normal_bb_parallel_deterministic =
  QCheck.Test.make ~name:"B&B height identical for 1 vs 4 workers" ~count:40 small_prec_gen
    (fun inst ->
      Q.equal
        (Normal_bb.solve ~workers:1 inst).Normal_bb.height
        (Normal_bb.solve ~workers:4 inst).Normal_bb.height)

let tiny_prec_gen =
  QCheck.make
    ~print:(fun (inst : I.Prec.t) -> Printf.sprintf "n=%d" (I.Prec.size inst))
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* specs = list_repeat n (pair (int_range 1 4) (int_range 1 3)) in
      let rects = List.mapi (fun i (wn, hn) -> Rect.make ~id:i ~w:(q wn 4) ~h:(q hn 2)) specs in
      let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
      let* keep = list_repeat (List.length all) (frequency [ (4, return false); (1, return true) ]) in
      let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
      return (I.Prec.make rects
                (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges)))

let prop_normal_bb_is_exact_reference =
  (* The true optimum is sandwiched: >= both lower bounds, <= every
     algorithm (DC, list scheduling, BL order search), and for uniform
     heights it must equal the DP optimum. *)
  QCheck.Test.make ~name:"normal-position B&B sandwiched by bounds and algorithms" ~count:60
    tiny_prec_gen (fun inst ->
      let opt = (Normal_bb.solve inst).Normal_bb.height in
      Q.compare opt (Spp_core.Lower_bounds.prec inst) >= 0
      && Q.compare opt (Spp_core.Dc.height inst) <= 0
      && Q.compare opt (Placement.height (Spp_core.List_schedule.prec inst)) <= 0
      && Q.compare opt (Order_search.best_prec inst).Order_search.height <= 0)

let prop_normal_bb_matches_dp_on_uniform =
  QCheck.Test.make ~name:"normal-position B&B = DP optimum (uniform heights)" ~count:40
    (QCheck.make
       ~print:(fun (inst : I.Prec.t) -> Printf.sprintf "n=%d" (I.Prec.size inst))
       QCheck.Gen.(
         let* n = int_range 1 5 in
         let* widths = list_repeat n (int_range 1 4) in
         let rects = List.mapi (fun i wn -> Rect.make ~id:i ~w:(q wn 4) ~h:Q.one) widths in
         let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
         let* keep = list_repeat (List.length all) (frequency [ (4, return false); (1, return true) ]) in
         let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
         return (I.Prec.make rects
                   (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges))))
    (fun inst ->
      let bb = (Normal_bb.solve inst).Normal_bb.height in
      Q.equal bb (Prec_binpack.min_height inst))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_exact"
    [
      ( "prec-binpack",
        Alcotest.test_case "no precedence" `Quick test_binpack_no_precedence
        :: Alcotest.test_case "chain forces bins" `Quick test_binpack_chain_forces_bins
        :: Alcotest.test_case "mixed" `Quick test_binpack_mixed
        :: Alcotest.test_case "empty and guards" `Quick test_binpack_empty_and_guards
        :: Alcotest.test_case "min_height" `Quick test_min_height_uniform
        :: qt [ prop_dp_sandwiched; prop_theorem_2_6_ratio ] );
      ( "order-search",
        Alcotest.test_case "simple" `Quick test_order_search_simple
        :: Alcotest.test_case "chain" `Quick test_order_search_chain
        :: Alcotest.test_case "size guard" `Quick test_order_search_guard
        :: qt
             [
               prop_order_search_dominates_heuristics;
               prop_order_search_valid_and_bounded_below;
               prop_order_search_release;
             ] );
      ( "normal-bb",
        Alcotest.test_case "trivial" `Quick test_normal_bb_trivial
        :: Alcotest.test_case "vs bottom-left" `Quick test_normal_bb_beats_bottom_left
        :: Alcotest.test_case "size guard" `Quick test_normal_bb_guard
        :: Alcotest.test_case "dominance prunes" `Quick test_normal_bb_dominance_prunes
        :: Alcotest.test_case "profile attribution" `Quick test_normal_bb_profile_attribution
        :: Alcotest.test_case "parallel profile attribution" `Quick
             test_normal_bb_parallel_profile_attribution
        :: qt
             [
               prop_normal_bb_is_exact_reference;
               prop_normal_bb_matches_dp_on_uniform;
               prop_normal_bb_dominance_never_cuts;
               prop_normal_bb_parallel_deterministic;
             ] );
    ]
