(* Tests for Spp_obs: the sharded metrics registry (bucket boundary
   semantics, cross-domain merge under hammering), Prometheus text
   exposition (name sanitisation, label escaping), span-tree traces
   (including the trace_id round-trip over the live wire protocol), and
   the structured logger with the server's slow-request log. *)

module Metrics = Spp_obs.Metrics
module Expo = Spp_obs.Expo
module Promtext = Spp_obs.Promtext
module Profile = Spp_obs.Profile
module Runtime = Spp_obs.Runtime
module Trace = Spp_obs.Trace
module Log = Spp_obs.Log
module Field = Spp_obs.Field
module Prng = Spp_util.Prng
module Io = Spp_core.Io
module Generators = Spp_workloads.Generators
module Engine = Spp_engine.Engine
module Json = Spp_server.Json
module Protocol = Spp_server.Protocol
module Framing = Spp_server.Framing
module Server = Spp_server.Server
module Client = Spp_server.Client

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics: counters and gauges *)

let test_counters_and_gauges () =
  let t = Metrics.create () in
  let c = Metrics.counter t "requests" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.counter_value c);
  (* Same name+labels yields the same cells; different labels are distinct
     series. *)
  let c' = Metrics.counter t "requests" in
  Metrics.incr c';
  Alcotest.(check int) "same handle" 43 (Metrics.counter_value c);
  let cs = Metrics.counter t ~labels:[ ("op", "solve") ] "requests" in
  Metrics.incr cs;
  Alcotest.(check int) "labeled series independent" 43 (Metrics.counter_value c);
  Alcotest.(check (option int)) "find_counter unlabeled" (Some 43)
    (Metrics.find_counter t "requests");
  Alcotest.(check (option int)) "find_counter labeled" (Some 1)
    (Metrics.find_counter t ~labels:[ ("op", "solve") ] "requests");
  Alcotest.(check (option int)) "find_counter missing" None (Metrics.find_counter t "nope");
  let g = Metrics.gauge t "depth" in
  Metrics.gauge_set g 5.0;
  Metrics.gauge_add g 2.5;
  Metrics.gauge_add g (-1.5);
  Alcotest.(check (float 1e-9)) "gauge set/add" 6.0 (Metrics.gauge_value g);
  (* Kind clash on an existing name must be rejected. *)
  (match Metrics.gauge t "requests" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind clash accepted");
  (* Callback metrics are sampled at snapshot time. *)
  let v = ref 7 in
  Metrics.counter_fn t "sampled" (fun () -> !v);
  v := 9;
  Alcotest.(check (option int)) "counter_fn sees latest" (Some 9)
    (Metrics.find_counter t "sampled")

let test_disabled_registry () =
  let t = Metrics.create ~enabled:false () in
  Alcotest.(check bool) "reports disabled" false (Metrics.enabled t);
  let c = Metrics.counter t "x" in
  Metrics.incr ~by:1000 c;
  Alcotest.(check int) "no-op counter" 0 (Metrics.counter_value c);
  let h = Metrics.histogram t "h" in
  Metrics.observe h 1.0;
  Alcotest.(check int) "snapshot is empty" 0 (List.length (Metrics.snapshot t));
  Alcotest.(check string) "nothing to scrape" "" (Expo.render t)

(* ------------------------------------------------------------------ *)
(* Metrics: histogram bucket boundaries *)

let test_histogram_bucket_boundaries () =
  let t = Metrics.create () in
  let h = Metrics.histogram t ~buckets:[| 1.0; 5.0; 10.0 |] "lat" in
  (* Prometheus le semantics: a value on a bound belongs to that bucket. *)
  List.iter (Metrics.observe h) [ 0.2; 1.0; 1.0001; 5.0; 10.0; 11.0 ];
  let s = Option.get (Metrics.find_histogram t "lat") in
  Alcotest.(check int) "total includes overflow" 6 s.Metrics.total;
  Alcotest.(check (float 1e-9)) "sum" 28.2001 s.Metrics.sum;
  (match s.Metrics.buckets with
   | [ (1.0, a); (5.0, b); (10.0, c) ] ->
     Alcotest.(check int) "le=1 cumulative" 2 a;
     Alcotest.(check int) "le=5 cumulative" 4 b;
     Alcotest.(check int) "le=10 cumulative" 5 c
   | other ->
     Alcotest.failf "unexpected buckets: %s"
       (String.concat ";" (List.map (fun (le, n) -> Printf.sprintf "%g:%d" le n) other)));
  (* Quantiles: interpolated within the holding bucket; overflow ranks
     report the largest finite bound; empty histograms report 0. *)
  Alcotest.(check bool) "p50 inside (1,5]" true
    (let q = Metrics.hist_quantile s 0.5 in
     q > 1.0 && q <= 5.0);
  Alcotest.(check (float 1e-9)) "overflow rank clamps" 10.0 (Metrics.hist_quantile s 0.999);
  let empty = Metrics.histogram t ~buckets:[| 1.0 |] "empty" in
  ignore empty;
  Alcotest.(check (float 1e-9)) "empty quantile" 0.0
    (Metrics.hist_quantile (Option.get (Metrics.find_histogram t "empty")) 0.5);
  (* Bad bounds are rejected up front. *)
  List.iter
    (fun bad ->
      match Metrics.histogram t ~buckets:bad "bad" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad bounds accepted")
    [ [||]; [| 2.0; 1.0 |]; [| 1.0; 1.0 |]; [| 1.0; Float.infinity |] ]

let test_histogram_default_ladder () =
  (* The default latency ladder is strictly increasing and spans
     sub-millisecond to ten seconds, so both cache hits and budgeted
     solves land in interior buckets. *)
  let b = Metrics.default_latency_buckets in
  Alcotest.(check bool) "spans down to 0.05 ms" true (b.(0) <= 0.05);
  Alcotest.(check bool) "spans up to 10 s" true (b.(Array.length b - 1) >= 10_000.0);
  Array.iteri (fun i v -> if i > 0 && v <= b.(i - 1) then Alcotest.fail "ladder not increasing") b

(* ------------------------------------------------------------------ *)
(* Metrics: multi-domain hammer *)

let test_multi_domain_merge () =
  let t = Metrics.create ~shards:4 () in
  let c = Metrics.counter t "hits" in
  let h = Metrics.histogram t ~buckets:[| 10.0; 100.0 |] "obs" in
  let g = Metrics.gauge t "level" in
  let domains = 4 and per_domain = 25_000 in
  let worker seed () =
    let rng = Prng.create seed in
    for _ = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (Prng.float rng 200.0);
      Metrics.gauge_add g 1.0
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (100 + i))) in
  List.iter Domain.join ds;
  let n = domains * per_domain in
  Alcotest.(check int) "counter merged across domains" n (Metrics.counter_value c);
  Alcotest.(check (float 1e-9)) "gauge adds merged" (float_of_int n) (Metrics.gauge_value g);
  let s = Option.get (Metrics.find_histogram t "obs") in
  Alcotest.(check int) "histogram total merged" n s.Metrics.total;
  (match List.rev s.Metrics.buckets with
   | (_, le_last) :: _ ->
     Alcotest.(check bool) "cumulative counts monotone" true (le_last <= n)
   | [] -> Alcotest.fail "no buckets")

(* ------------------------------------------------------------------ *)
(* Exposition *)

let test_expo_sanitize_and_escape () =
  Alcotest.(check string) "dots to underscores" "cache_hit" (Expo.sanitize_name "cache.hit");
  Alcotest.(check string) "leading digit prefixed" "_9lives" (Expo.sanitize_name "9lives");
  Alcotest.(check string) "colons kept" "spp:ratio" (Expo.sanitize_name "spp:ratio");
  Alcotest.(check string) "escapes" "a\\\\b\\\"c\\nd" (Expo.escape_label_value "a\\b\"c\nd")

let test_expo_render () =
  let t = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter t ~help:"Cache hits" "cache.hit");
  Metrics.incr (Metrics.counter t ~labels:[ ("algo", "dc\"x") ] "spp_algo_wins_total");
  Metrics.gauge_set (Metrics.gauge t "spp_queue_depth") 2.0;
  let h = Metrics.histogram t ~buckets:[| 1.0; 5.0 |] "spp_solve_ms" in
  List.iter (Metrics.observe h) [ 0.5; 3.0; 30.0 ];
  let out = Expo.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (contains ~needle out))
    [ "# HELP cache_hit Cache hits"; "# TYPE cache_hit counter"; "cache_hit 3";
      "spp_algo_wins_total{algo=\"dc\\\"x\"} 1"; "# TYPE spp_queue_depth gauge";
      "spp_queue_depth 2"; "# TYPE spp_solve_ms histogram"; "spp_solve_ms_bucket{le=\"1\"} 1";
      "spp_solve_ms_bucket{le=\"5\"} 2"; "spp_solve_ms_bucket{le=\"+Inf\"} 3";
      "spp_solve_ms_count 3" ];
  Alcotest.(check bool) "ends with newline" true
    (String.length out > 0 && out.[String.length out - 1] = '\n')

(* ------------------------------------------------------------------ *)
(* Promtext: scrape text parses back to the numbers that produced it *)

let test_promtext_parse_and_percentiles () =
  let t = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter t "spp_requests_total");
  Metrics.incr ~by:3
    (Metrics.counter t ~labels:[ ("algo", "dc") ] "spp_algo_wins_total");
  Metrics.incr ~by:2
    (Metrics.counter t ~labels:[ ("algo", "bb") ] "spp_algo_wins_total");
  Metrics.gauge_set (Metrics.gauge t "spp_gc_heap_words") 12345.0;
  let h = Metrics.histogram t ~buckets:[| 1.0; 5.0; 25.0; 125.0 |] "spp_request_ms" in
  let rng = Prng.create 97 in
  for _ = 1 to 500 do
    Metrics.observe h (Prng.float rng 150.0)
  done;
  let samples = Promtext.parse (Expo.render t) in
  Alcotest.(check (option (float 1e-9))) "counter value" (Some 7.0)
    (Promtext.value samples "spp_requests_total");
  Alcotest.(check (option (float 1e-9))) "labeled counter" (Some 3.0)
    (Promtext.value ~labels:[ ("algo", "dc") ] samples "spp_algo_wins_total");
  Alcotest.(check (float 1e-9)) "sum over label sets" 5.0
    (Promtext.sum samples "spp_algo_wins_total");
  Alcotest.(check (list (pair string (float 1e-9)))) "label_values sorted"
    [ ("bb", 2.0); ("dc", 3.0) ]
    (Promtext.label_values samples ~name:"spp_algo_wins_total" ~label:"algo");
  Alcotest.(check (option (float 1e-9))) "gauge value" (Some 12345.0)
    (Promtext.value samples "spp_gc_heap_words");
  Alcotest.(check (list string)) "histogram families" [ "spp_request_ms" ]
    (Promtext.histogram_names samples);
  (* The reassembled histogram must estimate the same percentiles as the
     in-process snapshot: `spp top` quotes p50/p95/p99 straight off a
     scrape, so the text round-trip may not distort them. *)
  let direct = Option.get (Metrics.find_histogram t "spp_request_ms") in
  let scraped = Option.get (Promtext.histogram samples "spp_request_ms") in
  Alcotest.(check int) "total survives the round-trip" direct.Metrics.total
    scraped.Metrics.total;
  Alcotest.(check (float 1e-6)) "sum survives the round-trip" direct.Metrics.sum
    scraped.Metrics.sum;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "p%g agrees with the direct snapshot" (q *. 100.0))
        (Metrics.hist_quantile direct q)
        (Metrics.hist_quantile scraped q))
    [ 0.5; 0.95; 0.99 ]

(* ------------------------------------------------------------------ *)
(* Profile: ambient per-domain solver counters *)

let test_profile_ambient_counters () =
  Profile.reset ();
  Alcotest.(check bool) "starts zero" true (Profile.is_zero (Profile.read ()));
  Profile.add_pivots 3;
  Profile.add_bb_nodes 20;
  Profile.add_bb_pruned 7;
  Profile.add_colgen_columns 4;
  Profile.add_colgen_rounds 2;
  Profile.add_pivots 1;
  let s = Profile.read () in
  Alcotest.(check int) "pivots accumulate" 4 s.Profile.pivots;
  Alcotest.(check int) "bb nodes" 20 s.Profile.bb_nodes;
  Alcotest.(check int) "bb pruned" 7 s.Profile.bb_pruned;
  Alcotest.(check int) "colgen columns" 4 s.Profile.colgen_columns;
  Alcotest.(check int) "colgen rounds" 2 s.Profile.colgen_rounds;
  (* Each domain owns its accumulator: a racing member's counts must not
     bleed into the engine domain that spawned it. *)
  let remote =
    Domain.join
      (Domain.spawn (fun () ->
           Profile.reset ();
           Profile.add_pivots 1000;
           (Profile.read ()).Profile.pivots))
  in
  Alcotest.(check int) "remote domain sees its own work" 1000 remote;
  Alcotest.(check int) "this domain unaffected" 4 (Profile.read ()).Profile.pivots;
  (* The process-wide switch turns every add into a no-op. *)
  Profile.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Profile.set_enabled true)
    (fun () ->
      Profile.add_pivots 999;
      Alcotest.(check bool) "switch reported off" false (Profile.enabled ());
      Alcotest.(check int) "disabled adds dropped" 4 (Profile.read ()).Profile.pivots);
  Profile.reset ();
  Alcotest.(check bool) "reset zeroes" true (Profile.is_zero (Profile.read ()))

(* ------------------------------------------------------------------ *)
(* Runtime: GC / CPU gauges visible on a live scrape *)

let test_runtime_gauges_on_live_scrape () =
  let reg = Metrics.create () in
  (* OCaml 5's [Gc.quick_stat] reports [heap_words] 0 until the first
     major cycle completes; force one so the assertion below does not
     depend on how much the suite allocated before this test. *)
  Gc.full_major ();
  let sampler = Runtime.start ~interval_ms:10_000.0 reg in
  let ep = Spp_server.Metrics_http.start ~port:0 reg in
  Fun.protect
    ~finally:(fun () ->
      Spp_server.Metrics_http.stop ep;
      Runtime.stop sampler)
    (fun () ->
      let body =
        match
          Spp_server.Metrics_http.fetch ~host:"127.0.0.1"
            ~port:(Spp_server.Metrics_http.port ep) ()
        with
        | Ok body -> body
        | Error e -> Alcotest.failf "scrape failed: %s" e
      in
      let samples = Promtext.parse body in
      let get name =
        match Promtext.value samples name with
        | Some v -> v
        | None -> Alcotest.failf "scrape lacks %s" name
      in
      (* [start] samples synchronously, so the first scrape already has
         real numbers: a live OCaml process cannot have an empty major
         heap or zero CPU time. *)
      Alcotest.(check bool) "heap words positive" true (get "spp_gc_heap_words" > 0.0);
      Alcotest.(check bool) "cpu seconds non-negative" true
        (get "spp_process_cpu_seconds" >= 0.0);
      Alcotest.(check bool) "minor collections counter present" true
        (get "spp_gc_minor_collections_total" >= 0.0);
      Alcotest.(check bool) "minor words counter present" true
        (get "spp_gc_minor_words_total" >= 0.0))

(* ------------------------------------------------------------------ *)
(* Traces *)

let is_hex s = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let test_trace_ids () =
  let a = Trace.gen_id () and b = Trace.gen_id () in
  Alcotest.(check int) "16 hex digits" 16 (String.length a);
  Alcotest.(check bool) "hex alphabet" true (is_hex a && is_hex b);
  Alcotest.(check bool) "ids distinct" true (a <> b);
  let t = Trace.create ~id:"client-chosen" ~name:"req" () in
  Alcotest.(check string) "client id honoured" "client-chosen" (Trace.id t);
  let t' = Trace.create ~id:"" ~name:"req" () in
  Alcotest.(check bool) "empty id replaced" true (String.length (Trace.id t') = 16)

let test_trace_span_tree () =
  let t = Trace.create ~id:"abc" ~name:"request" () in
  let root = Trace.root t in
  let q = Trace.span t ~parent:root "queue.wait" in
  Trace.finish t q;
  let solved =
    Trace.with_span t ~parent:root "solve" (fun solve ->
        let v = Trace.span t ~parent:solve "validate" in
        Trace.finish ~fields:[ ("ok", Field.Bool true) ] t v;
        17)
  in
  Alcotest.(check int) "with_span returns" 17 solved;
  (match Trace.with_span t ~parent:root "boom" (fun _ -> failwith "kaput") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception swallowed");
  Trace.close ~fields:[ ("winner", Field.String "dc") ] t;
  Alcotest.(check bool) "total stamped" true (Trace.total_ms t >= 0.0);
  let js = Trace.to_json t in
  Alcotest.(check bool) "one line" false (String.contains js '\n');
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" needle) true (contains ~needle js))
    [ "\"trace_id\":\"abc\""; "\"name\":\"request\""; "\"queue.wait\""; "\"validate\"";
      "\"outcome\":\"raised\""; "\"winner\":\"dc\"" ];
  let tree = Trace.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "render has %S" needle) true (contains ~needle tree))
    [ "request"; "queue.wait"; "solve"; "validate" ];
  (* Children must render chronologically: queue.wait before solve. *)
  let idx needle =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length tree then Alcotest.failf "%S not rendered" needle
      else if String.sub tree i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "chronological order" true (idx "queue.wait" < idx "solve")

let test_trace_finish_idempotent () =
  let t = Trace.create ~name:"r" () in
  let s = Trace.span t ~parent:(Trace.root t) "once" in
  Trace.finish t s;
  let js1 = Trace.to_json t in
  Thread.delay 0.01;
  Trace.finish t s;
  (* A second finish must not restamp the duration (the fields and tree
     are unchanged, so the whole encoding is identical). *)
  Alcotest.(check string) "duration stamped once" js1 (Trace.to_json t)

let test_trace_graft_rebases_offsets () =
  let t = Trace.create ~id:"feedface01020304" ~name:"proxy" () in
  let up = Trace.span t ~parent:(Trace.root t) "upstream" in
  let remote =
    { Trace.i_name = "request"; i_start_ms = 0.0; i_dur_ms = Some 12.0;
      i_fields = [ ("winner", Field.String "dc") ];
      i_children =
        [ { Trace.i_name = "race"; i_start_ms = 2.5; i_dur_ms = Some 9.0;
            i_fields = [ ("bb_nodes", Field.Int 28) ]; i_children = [] };
          { Trace.i_name = "open.span"; i_start_ms = 3.0; i_dur_ms = None;
            i_fields = []; i_children = [] } ] }
  in
  let offset = Trace.start_ms up in
  Trace.graft t ~parent:up ~offset_ms:offset remote;
  Trace.finish t up;
  Trace.close t;
  let js = Trace.to_json t in
  let num = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let j =
    match Json.of_string js with Ok j -> j | Error e -> Alcotest.failf "bad json: %s" e
  in
  let spans j = match Json.member "spans" j with Some (Json.List l) -> l | _ -> [] in
  let child name j =
    match
      List.find_opt (fun s -> Json.member "name" s = Some (Json.String name)) (spans j)
    with
    | Some s -> s
    | None -> Alcotest.failf "span %S missing in %s" name js
  in
  let root = Option.get (Json.member "root" j) in
  let request = child "request" (child "upstream" root) in
  (* The remote epoch lands on the upstream span's start. *)
  Alcotest.(check (option (float 1e-4))) "request start rebased" (Some offset)
    (num (Json.member "start_ms" request));
  Alcotest.(check (option (float 1e-4))) "race start rebased" (Some (offset +. 2.5))
    (num (Json.member "start_ms" (child "race" request)));
  Alcotest.(check (option (float 1e-4))) "duration preserved" (Some 12.0)
    (num (Json.member "ms" request));
  Alcotest.(check (option (float 1e-4))) "open remote span stays open" None
    (num (Json.member "ms" (child "open.span" request)));
  let fields s = match Json.member "fields" s with Some (Json.Obj kvs) -> kvs | _ -> [] in
  Alcotest.(check bool) "fields preserved" true
    (List.mem_assoc "winner" (fields request)
     && List.mem_assoc "bb_nodes" (fields (child "race" request)));
  (* Children must come back in chronological order despite the
     newest-first internal representation. *)
  match List.map (fun s -> Json.member "name" s) (spans request) with
  | [ Some (Json.String "race"); Some (Json.String "open.span") ] -> ()
  | _ -> Alcotest.failf "grafted children out of order: %s" js

(* ------------------------------------------------------------------ *)
(* Trace id over the wire *)

let test_trace_id_wire_roundtrip () =
  let req =
    Protocol.Solve
      { instance = "rect 0 1/2 1"; budget_ms = Some 50.0; deadline_ms = None; algos = None;
        trace_id = Some "0123456789abcdef" }
  in
  (match Protocol.decode_request (Protocol.encode_request req) with
   | Ok req' -> Alcotest.(check bool) "request round-trips" true (req = req')
   | Error e -> Alcotest.failf "decode failed: %s" e);
  let resp =
    Protocol.Solve_ok
      { winner = "dc"; source = "computed"; height = "1"; time_ms = 1.0;
        placement = "rect 0 0 0"; degraded = false; lower_bound = None; gap = None;
        trace_id = Some "0123456789abcdef";
        trace =
          Some
            (Json.Obj
               [ ("name", Json.String "request"); ("start_ms", Json.Float 0.);
                 ("ms", Json.Float 1.2);
                 ("children", Json.List [ Json.Obj [ ("name", Json.String "solve") ] ]) ]) }
  in
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok resp' -> Alcotest.(check bool) "response round-trips" true (resp = resp')
  | Error e -> Alcotest.failf "decode failed: %s" e

let temp_path ext =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spp_obs_%d_%d.%s" (Unix.getpid ()) (Random.int 1_000_000) ext)

let instance_text seed n =
  let rng = Prng.create seed in
  Io.prec_to_string (Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape:`Series_parallel)

let with_server ?slow_ms f =
  let sock = temp_path "sock" in
  let address = Framing.Unix_sock sock in
  let srv =
    Server.start
      { Server.address; workers = 1; queue_depth = 8; engine = Engine.create ();
        default_budget_ms = Some 2000.0; solve_workers = Some 1;
        max_request_bytes = 1 lsl 16; slow_ms; idle_timeout_ms = None;
        read_timeout_ms = None; retry_after_ms = Server.default_retry_after_ms;
        max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f address)

let test_trace_id_live_echo () =
  with_server (fun address ->
      Client.with_connection address (fun c ->
          match
            Client.request c
              (Protocol.Solve
                 { instance = instance_text 61 6; budget_ms = None; deadline_ms = None;
                   algos = None; trace_id = Some "feedface00000001" })
          with
          | Protocol.Solve_ok r ->
            Alcotest.(check (option string)) "server echoes the client trace id"
              (Some "feedface00000001") r.Protocol.trace_id
          | other -> Alcotest.failf "unexpected reply: %s" (Protocol.encode_response other));
      (* Untraced requests carry no id. *)
      Client.with_connection address (fun c ->
          match
            Client.request c
              (Protocol.Solve
                 { instance = instance_text 61 6; budget_ms = None; deadline_ms = None;
                   algos = None; trace_id = None })
          with
          | Protocol.Solve_ok r ->
            Alcotest.(check (option string)) "no id unless requested" None r.Protocol.trace_id
          | other -> Alcotest.failf "unexpected reply: %s" (Protocol.encode_response other)))

(* ------------------------------------------------------------------ *)
(* Logging *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The logger is process-global; every test that redirects it must restore
   stderr/Info on the way out so later suites are unaffected. *)
let with_log_file f =
  let path = temp_path "log" in
  Log.set_file path;
  Fun.protect
    ~finally:(fun () ->
      Log.set_channel stderr;
      Log.set_level Log.Info;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_log_levels_and_shape () =
  Alcotest.(check bool) "level names parse" true
    (Log.level_of_string "warn" = Some Log.Warn
     && Log.level_of_string "WARNING" = Some Log.Warn
     && Log.level_of_string "debug" = Some Log.Debug
     && Log.level_of_string "nope" = None);
  with_log_file (fun path ->
      Log.set_level Log.Warn;
      Alcotest.(check bool) "debug disabled at warn" false (Log.enabled Log.Debug);
      Alcotest.(check bool) "error enabled at warn" true (Log.enabled Log.Error);
      Log.debug "hidden" [];
      Log.info "hidden too" [];
      Log.warn "shown" [ ("n", Field.Int 3); ("f", Field.Float 0.5); ("b", Field.Bool true) ];
      Log.error "also shown" [ ("msg", Field.String "a\"b\nc") ];
      let out = read_file path in
      Alcotest.(check bool) "below-threshold dropped" false (contains ~needle:"hidden" out);
      let lines = String.split_on_char '\n' (String.trim out) in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun needle -> Alcotest.(check bool) needle true (contains ~needle out))
        [ "\"level\":\"warn\""; "\"msg\":\"shown\""; "\"n\":3"; "\"f\":0.5"; "\"b\":true";
          "\"level\":\"error\""; "\"msg\":\"a\\\"b\\nc\"" ];
      (* Every line is one of our JSON objects: starts with the ts field. *)
      List.iter
        (fun l ->
          Alcotest.(check bool) "line starts a JSON object" true
            (String.length l > 6 && String.sub l 0 6 = "{\"ts\":"))
        lines)

let test_slow_request_log () =
  with_log_file (fun path ->
      (* slow_ms = 0: every request is slow, so one solve must produce a
         warn line with its trace id and rendered span tree. *)
      with_server ~slow_ms:0.0 (fun address ->
          Client.with_connection address (fun c ->
              match
                Client.request c
                  (Protocol.Solve
                     { instance = instance_text 71 6; budget_ms = None; deadline_ms = None;
                       algos = None; trace_id = Some "slowslowslowslow" })
              with
              | Protocol.Solve_ok _ -> ()
              | other ->
                Alcotest.failf "unexpected reply: %s" (Protocol.encode_response other)));
      let out = read_file path in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "log has %S" needle) true (contains ~needle out))
        [ "slow request"; "slowslowslowslow"; "queue.wait"; "solve" ])

let () =
  Alcotest.run "spp_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_registry;
          Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_bucket_boundaries;
          Alcotest.test_case "default latency ladder" `Quick test_histogram_default_ladder;
          Alcotest.test_case "multi-domain hammer merge" `Quick test_multi_domain_merge;
        ] );
      ( "expo",
        [
          Alcotest.test_case "sanitize and escape" `Quick test_expo_sanitize_and_escape;
          Alcotest.test_case "prometheus text render" `Quick test_expo_render;
          Alcotest.test_case "promtext parse and percentiles" `Quick
            test_promtext_parse_and_percentiles;
        ] );
      ( "profile",
        [
          Alcotest.test_case "ambient per-domain counters" `Quick
            test_profile_ambient_counters;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "gc gauges on a live scrape" `Quick
            test_runtime_gauges_on_live_scrape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ids" `Quick test_trace_ids;
          Alcotest.test_case "span tree" `Quick test_trace_span_tree;
          Alcotest.test_case "finish is idempotent" `Quick test_trace_finish_idempotent;
          Alcotest.test_case "graft rebases remote offsets" `Quick
            test_trace_graft_rebases_offsets;
          Alcotest.test_case "trace id wire round-trip" `Quick test_trace_id_wire_roundtrip;
          Alcotest.test_case "live server echoes trace id" `Quick test_trace_id_live_echo;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and line shape" `Quick test_log_levels_and_shape;
          Alcotest.test_case "slow-request log" `Quick test_slow_request_log;
        ] );
    ]
