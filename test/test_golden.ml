(* Golden regression tests over the checked-in instance dataset (data/):
   every file parses, packs, validates, and reproduces the exact recorded
   height — guarding simultaneously against parser drift, generator drift,
   and algorithm drift. Heights are exact rationals, so equality is exact. *)

module Q = Spp_num.Rat
module Placement = Spp_geom.Placement
module I = Spp_core.Instance
module Io = Spp_core.Io

let data name = Filename.concat "../data" name

let load name =
  match Io.read_file (data name) with
  | parsed -> parsed
  | exception Sys_error _ ->
    (* Running from another cwd (e.g. dune exec from the root). *)
    Io.read_file (Filename.concat "data" name)

let prec_case name expected_dc_height () =
  match load name with
  | Io.Prec inst ->
    let p, _ = Spp_core.Dc.pack inst in
    Alcotest.(check (list string)) "valid" []
      (List.map (Format.asprintf "%a" Spp_core.Validate.pp_violation)
         (Spp_core.Validate.check_prec inst p));
    Alcotest.(check string) "DC height" expected_dc_height (Q.to_string (Placement.height p))
  | Io.Release _ -> Alcotest.fail "expected a precedence instance"

let test_release14 () =
  match load "release14.spp" with
  | Io.Release inst ->
    let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
    Alcotest.(check (list string)) "valid" []
      (List.map (Format.asprintf "%a" Spp_core.Validate.pp_violation)
         (Spp_core.Validate.check_release inst res.Spp_core.Aptas.placement));
    Alcotest.(check string) "APTAS height" "39/4" (Q.to_string res.Spp_core.Aptas.height);
    Alcotest.(check string) "fractional" "19/2"
      (Q.to_string res.Spp_core.Aptas.fractional_height);
    Alcotest.(check string) "lower bound" "15/2" (Q.to_string res.Spp_core.Aptas.lower_bound)
  | Io.Prec _ -> Alcotest.fail "expected a release instance"

let test_dataset_inventory () =
  (* Sizes recorded so accidental dataset edits are caught loudly. *)
  let size name =
    match load name with
    | Io.Prec inst -> I.Prec.size inst
    | Io.Release inst -> I.Release.size inst
  in
  Alcotest.(check int) "jpeg4" 15 (size "jpeg4.spp");
  Alcotest.(check int) "packet6" 19 (size "packet6.spp");
  Alcotest.(check int) "fig1_k4" 30 (size "fig1_k4.spp");
  Alcotest.(check int) "fig2_k3" 9 (size "fig2_k3.spp");
  Alcotest.(check int) "random24" 24 (size "random24.spp");
  Alcotest.(check int) "release14" 14 (size "release14.spp")

(* ------------------------------------------------------------------ *)
(* Regression corpus: data/corpus/ holds minimized fuzz counterexamples
   and the paper's adversarial families. Every file must pass the whole
   property suite — a finding that once slipped through (or a family
   engineered to be nasty) stays covered forever, independent of the
   fuzzer's random exploration. *)

let corpus_dir () =
  if Sys.file_exists "../data/corpus" then "../data/corpus" else "data/corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".spp")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let parsed = Io.read_file path in
      List.iter
        (fun (p : _ Spp_check.Runner.property) ->
          match p.Spp_check.Runner.check parsed with
          | Spp_check.Runner.Pass | Spp_check.Runner.Skip -> ()
          | Spp_check.Runner.Fail msg ->
            Alcotest.failf "%s: property %s failed: %s" path p.Spp_check.Runner.name msg)
        Spp_check.Props.all)
    files

let test_corpus_planted_detects () =
  (* The minimized planted-bug counterexample must keep triggering the
     planted detector: if the buggy reference solver or the shrinker drifts
     so that this pair no longer exposes the off-by-one, the self-test has
     silently lost its teeth. *)
  let parsed = Io.read_file (Filename.concat (corpus_dir ()) "planted_offbyone.spp") in
  match Spp_check.Props.planted_bug.Spp_check.Runner.check parsed with
  | Spp_check.Runner.Fail _ -> ()
  | Spp_check.Runner.Pass | Spp_check.Runner.Skip ->
    Alcotest.fail "planted bug no longer detected on its minimized counterexample"

let () =
  Alcotest.run "spp_golden"
    [
      ( "dataset",
        [
          Alcotest.test_case "inventory" `Quick test_dataset_inventory;
          Alcotest.test_case "jpeg4 DC" `Quick (prec_case "jpeg4.spp" "5");
          Alcotest.test_case "packet6 DC" `Quick (prec_case "packet6.spp" "2");
          Alcotest.test_case "fig1_k4 DC" `Quick (prec_case "fig1_k4.spp" "603/200");
          Alcotest.test_case "fig2_k3 DC" `Quick (prec_case "fig2_k3.spp" "9");
          Alcotest.test_case "random24 DC" `Quick (prec_case "random24.spp" "47/2");
          Alcotest.test_case "release14 APTAS" `Quick test_release14;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "replay through property suite" `Quick test_corpus_replay;
          Alcotest.test_case "planted counterexample still detects" `Quick
            test_corpus_planted_detects;
        ] );
    ]
