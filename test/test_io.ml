(* Tests for Spp_core.Io: the instance file format — parsing, error
   reporting with line numbers, and round trips for both variants. *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag
module I = Spp_core.Instance
module Io = Spp_core.Io

let q = Q.of_ints

let test_parse_prec () =
  let src = "# demo\nrect 0 1/2 3/4\nrect 1 1/4 1\nedge 0 1\n" in
  match Io.parse_string src with
  | Io.Prec inst ->
    Alcotest.(check int) "n" 2 (I.Prec.size inst);
    Alcotest.(check bool) "edge" true (Dag.has_edge inst.dag 0 1);
    Alcotest.(check string) "w0" "1/2" (Q.to_string (I.Prec.rect inst 0).Rect.w)
  | Io.Release _ -> Alcotest.fail "expected precedence instance"

let test_parse_release () =
  let src = "k 4\nrect 0 1/2 1\nrect 1 1/4 1/2\nrelease 0 5/2\n" in
  match Io.parse_string src with
  | Io.Release inst ->
    Alcotest.(check int) "k" 4 inst.k;
    Alcotest.(check string) "release 0" "5/2" (Q.to_string (I.Release.release inst 0));
    Alcotest.(check string) "default release" "0" (Q.to_string (I.Release.release inst 1))
  | Io.Prec _ -> Alcotest.fail "expected release instance"

let test_parse_decimals_and_comments () =
  let src = "rect 0 0.5 0.75  # trailing comment\n\n  rect 1 1 2\n" in
  match Io.parse_string src with
  | Io.Prec inst ->
    Alcotest.(check string) "decimal width" "1/2" (Q.to_string (I.Prec.rect inst 0).Rect.w);
    Alcotest.(check string) "decimal height" "3/4" (Q.to_string (I.Prec.rect inst 0).Rect.h)
  | Io.Release _ -> Alcotest.fail "expected prec"

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_failure msg_part src =
  match Io.parse_string src with
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" msg msg_part)
      true (contains_substring msg msg_part)
  | _ -> Alcotest.failf "expected failure mentioning %S" msg_part

let test_parse_errors () =
  expect_failure "line 2" "rect 0 1/2 1\nbogus 1 2\n";
  expect_failure "bad rational" "rect 0 x 1\n";
  expect_failure "bad integer" "rect zero 1/2 1\n";
  expect_failure "mixes edge and release" "rect 0 1 1\nrect 1 1 1\nedge 0 1\nrelease 0 1\n";
  expect_failure "unknown rect" "rect 0 1 1\nrelease 7 1\n";
  expect_failure "duplicate release" "rect 0 1 1\nrelease 0 1\nrelease 0 2\n";
  expect_failure "cycle" "rect 0 1 1\nrect 1 1 1\nedge 0 1\nedge 1 0\n";
  expect_failure "width" "rect 0 2 1\n"

let test_prec_roundtrip () =
  let rng = Spp_util.Prng.create 5 in
  let inst = Spp_workloads.Generators.random_prec rng ~n:15 ~k:8 ~h_den:4 ~shape:`Layered in
  match Io.parse_string (Io.prec_to_string inst) with
  | Io.Prec inst' ->
    Alcotest.(check int) "n" (I.Prec.size inst) (I.Prec.size inst');
    Alcotest.(check int) "edges" (Dag.num_edges inst.dag) (Dag.num_edges inst'.dag);
    List.iter2
      (fun (a : Rect.t) (b : Rect.t) ->
        if not (Rect.equal a b) then Alcotest.fail "rect mismatch")
      inst.rects inst'.rects
  | Io.Release _ -> Alcotest.fail "variant flipped"

let test_release_roundtrip () =
  let rng = Spp_util.Prng.create 9 in
  let inst = Spp_workloads.Generators.random_release rng ~n:12 ~k:4 ~h_den:4 ~r_den:2 ~load:1.0 in
  match Io.parse_string (Io.release_to_string inst) with
  | Io.Release inst' ->
    Alcotest.(check int) "k" inst.k inst'.k;
    List.iter
      (fun (t : I.Release.task) ->
        Alcotest.(check string)
          (Printf.sprintf "release %d" t.rect.Rect.id)
          (Q.to_string t.release)
          (Q.to_string (I.Release.release inst' t.rect.Rect.id)))
      inst.tasks
  | Io.Prec _ -> Alcotest.fail "variant flipped"

let test_placement_output () =
  let p =
    Spp_geom.Placement.of_items
      [ { Spp_geom.Placement.rect = Rect.make ~id:3 ~w:(q 1 2) ~h:Q.one;
          pos = { Spp_geom.Placement.x = q 1 4; y = q 3 2 } } ]
  in
  Alcotest.(check string) "format" "height 5/2\nplace 3 1/4 3/2\n" (Io.placement_to_string p)

let test_parse_placement () =
  let rects = [ Rect.make ~id:0 ~w:(q 1 2) ~h:Q.one; Rect.make ~id:1 ~w:(q 1 2) ~h:Q.one ] in
  let p = Io.parse_placement ~rects "height 1\nplace 0 0 0\nplace 1 1/2 0\n" in
  Alcotest.(check int) "two items" 2 (Spp_geom.Placement.size p);
  Alcotest.(check string) "height recomputed" "1" (Q.to_string (Spp_geom.Placement.height p));
  (* Errors *)
  let expect msg src =
    match Io.parse_placement ~rects src with
    | exception Failure m ->
      Alcotest.(check bool) (m ^ " mentions " ^ msg) true (contains_substring m msg)
    | _ -> Alcotest.failf "expected failure about %s" msg
  in
  expect "unknown rect" "place 9 0 0\n";
  expect "duplicate place" "place 0 0 0\nplace 0 0 1\n";
  expect "bad rational" "place 0 zero 0\n"

let prop_placement_roundtrip =
  QCheck.Test.make ~name:"placements round-trip through the text format" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let rects = Spp_workloads.Generators.random_rects rng ~n:(1 + (seed mod 15)) ~k:8 ~h_den:4 in
      let p = Spp_pack.Bottom_left.pack rects in
      let p' = Io.parse_placement ~rects (Io.placement_to_string p) in
      Spp_geom.Placement.size p = Spp_geom.Placement.size p'
      && Q.equal (Spp_geom.Placement.height p) (Spp_geom.Placement.height p')
      && List.for_all
           (fun (it : Spp_geom.Placement.item) ->
             match Spp_geom.Placement.find p' ~id:it.rect.Rect.id with
             | Some it' ->
               Q.equal it.pos.Spp_geom.Placement.x it'.pos.Spp_geom.Placement.x
               && Q.equal it.pos.Spp_geom.Placement.y it'.pos.Spp_geom.Placement.y
             | None -> false)
           (Spp_geom.Placement.items p))

let prop_prec_roundtrip =
  QCheck.Test.make ~name:"prec instances round-trip through the file format" ~count:100
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let inst =
        Spp_workloads.Generators.random_prec rng ~n:(1 + (seed mod 20)) ~k:8 ~h_den:4
          ~shape:`Series_parallel
      in
      match Io.parse_string (Io.prec_to_string inst) with
      | Io.Prec inst' ->
        I.Prec.size inst = I.Prec.size inst'
        && Dag.edges inst.dag = Dag.edges inst'.dag
        && List.for_all2 Rect.equal inst.rects inst'.rects
      | Io.Release _ -> false)

let prop_release_roundtrip =
  QCheck.Test.make ~name:"release instances round-trip through the file format" ~count:100
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let inst =
        Spp_workloads.Generators.random_release rng ~n:(1 + (seed mod 16))
          ~k:(2 + (seed mod 6)) ~h_den:4 ~r_den:2 ~load:1.2
      in
      match Io.parse_string (Io.release_to_string inst) with
      | Io.Release inst' ->
        inst.k = inst'.k
        && I.Release.size inst = I.Release.size inst'
        && List.for_all2
             (fun (a : I.Release.task) (b : I.Release.task) ->
               Rect.equal a.rect b.rect && Q.equal a.release b.release)
             inst.tasks inst'.tasks
      | Io.Prec _ -> false)

let prop_parser_total =
  (* Robustness fuzz: arbitrary input never crashes the parser with
     anything but the documented Failure. *)
  QCheck.Test.make ~name:"parser is total (parses or fails cleanly)" ~count:500
    QCheck.(string_gen_of_size Gen.(int_range 0 120) Gen.printable)
    (fun s ->
      match Io.parse_string s with
      | Io.Prec _ | Io.Release _ -> true
      | exception Failure _ -> true
      | exception _ -> false)

let prop_parser_total_structured =
  (* Fuzz with format-shaped tokens: random directives with random args. *)
  QCheck.Test.make ~name:"parser total on directive-shaped fuzz" ~count:500
    QCheck.(
      list_of_size Gen.(int_range 0 12)
        (make
           Gen.(
             oneofl
               [ "rect 0 1/2 1"; "rect 0 1 1"; "rect 1 3/4 2"; "edge 0 1"; "edge 1 0";
                 "release 0 2"; "release 1 -1"; "k 4"; "k x"; "rect"; "edge 0"; "# note";
                 "rect 2 0 1"; "rect 2 2 1" ])))
    (fun lines ->
      let s = String.concat "\n" lines in
      match Io.parse_string s with
      | Io.Prec _ | Io.Release _ -> true
      | exception Failure _ -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* CLI error classification: parse errors and I/O errors get distinct
   sysexits-style codes and a one-line hint. Tests run from
   _build/default/test, so the built binary sits at ../bin/spp.exe. *)

let spp_exe = Filename.concat ".." (Filename.concat "bin" "spp.exe")

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote spp_exe) args)

let test_cli_parse_error_exit () =
  let bad = Filename.temp_file "spp_garbage" ".spp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      let oc = open_out bad in
      output_string oc "rect 0 x 1\n";
      close_out oc;
      Alcotest.(check int) "parse error exits 65" 65
        (run_cli (Printf.sprintf "pack %s" (Filename.quote bad)));
      Alcotest.(check int) "solve classifies the same way" 65
        (run_cli (Printf.sprintf "solve --no-cache %s" (Filename.quote bad))))

let test_cli_io_error_exit () =
  let missing = Filename.concat (Filename.get_temp_dir_name ()) "spp_no_such_file.spp" in
  (try Sys.remove missing with Sys_error _ -> ());
  Alcotest.(check int) "missing file exits 66" 66
    (run_cli (Printf.sprintf "pack %s" (Filename.quote missing)));
  Alcotest.(check int) "solve classifies the same way" 66
    (run_cli (Printf.sprintf "solve --no-cache %s" (Filename.quote missing)))

let test_cli_parse_error_hint () =
  (* The stderr line must carry both the parse failure and the hint. *)
  let bad = Filename.temp_file "spp_garbage" ".spp" in
  let err = Filename.temp_file "spp_stderr" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ bad; err ])
    (fun () ->
      let oc = open_out bad in
      output_string oc "bogus directive\n";
      close_out oc;
      let code =
        Sys.command
          (Printf.sprintf "%s pack %s >/dev/null 2>%s" (Filename.quote spp_exe)
             (Filename.quote bad) (Filename.quote err))
      in
      Alcotest.(check int) "exit code" 65 code;
      let ic = open_in err in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "names the offending line" true (contains_substring text "line 1");
      Alcotest.(check bool) "carries a hint" true (contains_substring text "hint:"))

(* Library-level contract behind the CLI classification. *)
let test_error_exceptions () =
  (match Io.parse_string "rect 0 x 1\n" with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected Failure for a parse error");
  match Io.read_file "/nonexistent/spp/input.spp" with
  | exception Sys_error _ -> ()
  | exception Failure _ -> Alcotest.fail "I/O error must not be a Failure"
  | _ -> Alcotest.fail "expected Sys_error for a missing file"

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_io"
    [
      ( "parse",
        [
          Alcotest.test_case "prec" `Quick test_parse_prec;
          Alcotest.test_case "release" `Quick test_parse_release;
          Alcotest.test_case "decimals and comments" `Quick test_parse_decimals_and_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ("fuzz", qt [ prop_parser_total; prop_parser_total_structured ]);
      ( "cli-errors",
        [
          Alcotest.test_case "parse error exit code" `Quick test_cli_parse_error_exit;
          Alcotest.test_case "io error exit code" `Quick test_cli_io_error_exit;
          Alcotest.test_case "parse error hint" `Quick test_cli_parse_error_hint;
          Alcotest.test_case "library exceptions" `Quick test_error_exceptions;
        ] );
      ( "roundtrip",
        Alcotest.test_case "prec" `Quick test_prec_roundtrip
        :: Alcotest.test_case "release" `Quick test_release_roundtrip
        :: Alcotest.test_case "placement output" `Quick test_placement_output
        :: Alcotest.test_case "placement parsing" `Quick test_parse_placement
        :: qt [ prop_prec_roundtrip; prop_release_roundtrip; prop_placement_roundtrip ] );
    ]
