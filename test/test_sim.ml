(* lib/sim — live strip state, arrival streams, online packers, and
   min-disruption repacking.

   The deeper soundness sweep lives in the fuzz properties
   (sound.sim.*, sim.stream); this suite pins the deterministic
   behaviours: strip-state invariants, arrival-stream reproducibility,
   repack cost accounting (greedy vs exact on a crafted state), and the
   online-vs-offline ratio on a golden trace. *)

module Q = Spp_num.Rat
module I = Spp_core.Instance
module Rect = Spp_geom.Rect
module LB = Spp_core.Lower_bounds
module Strip = Spp_sim.Strip_state
module Arrivals = Spp_sim.Arrivals
module Online = Spp_sim.Online
module Repack = Spp_sim.Repack
module Sim = Spp_sim.Sim

let q = Q.of_string
let check_q msg expected actual = Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

(* ------------------------------------------------------------------ *)
(* Strip_state *)

let test_place_and_retire () =
  let s = Strip.create ~k:8 in
  Strip.place s ~id:1 ~cols:3 ~col_lo:0 ~duration:(q "2");
  Strip.place s ~id:2 ~cols:2 ~col_lo:3 ~duration:(q "1");
  Alcotest.(check int) "residents" 2 (Strip.resident_count s);
  Alcotest.(check int) "free cols" 3 (Strip.free_cols s);
  let finished = Strip.advance s (q "1") in
  Alcotest.(check (list int)) "task 2 retires first" [ 2 ]
    (List.map (fun (r : Strip.resident) -> r.Strip.id) finished);
  let finished = Strip.advance s (q "5") in
  Alcotest.(check (list int)) "task 1 retires" [ 1 ]
    (List.map (fun (r : Strip.resident) -> r.Strip.id) finished);
  Alcotest.(check int) "strip drained" 0 (Strip.resident_count s);
  Alcotest.(check int) "segment per task" 2 (List.length (Strip.segments s))

let test_place_rejects_overlap () =
  let s = Strip.create ~k:4 in
  Strip.place s ~id:1 ~cols:2 ~col_lo:1 ~duration:Q.one;
  List.iter
    (fun (id, cols, col_lo) ->
      match Strip.place s ~id ~cols ~col_lo ~duration:Q.one with
      | () -> Alcotest.failf "place %d accepted" id
      | exception Invalid_argument _ -> ())
    [ (2, 1, 2) (* overlaps *); (3, 2, 3) (* out of strip *); (1, 1, 0) (* duplicate id *) ];
  match Strip.place s ~id:4 ~cols:1 ~col_lo:0 ~duration:Q.zero with
  | () -> Alcotest.fail "zero duration accepted"
  | exception Invalid_argument _ -> ()

let test_first_fit_leftmost () =
  let s = Strip.create ~k:8 in
  Strip.place s ~id:1 ~cols:2 ~col_lo:1 ~duration:Q.one;
  Strip.place s ~id:2 ~cols:2 ~col_lo:5 ~duration:Q.one;
  (* Occupancy: .XX..XX.  — windows: 1 col at 0; 2 cols at 3. *)
  Alcotest.(check (option int)) "1 col fits at 0" (Some 0) (Strip.first_fit s ~cols:1);
  Alcotest.(check (option int)) "2 cols fit at 3" (Some 3) (Strip.first_fit s ~cols:2);
  Alcotest.(check (option int)) "3 cols never fit" None (Strip.first_fit s ~cols:3)

let test_fragmentation_metric () =
  let s = Strip.create ~k:8 in
  check_q "empty strip unfragmented" Q.zero (Strip.fragmentation s);
  Strip.place s ~id:1 ~cols:1 ~col_lo:2 ~duration:Q.one;
  Strip.place s ~id:2 ~cols:1 ~col_lo:5 ~duration:Q.one;
  (* Free = {0,1,3,4,6,7}: 6 free cols, largest run 2 -> 1 - 2/6. *)
  check_q "split free space" (q "2/3") (Strip.fragmentation s);
  Alcotest.(check int) "largest run" 2 (Strip.largest_free_run s)

let test_apply_moves_permutation () =
  (* A swap through each other's old columns must be validated as a final
     configuration, not move-by-move. *)
  let s = Strip.create ~k:4 in
  Strip.place s ~id:1 ~cols:2 ~col_lo:0 ~duration:(q "2");
  Strip.place s ~id:2 ~cols:2 ~col_lo:2 ~duration:(q "2");
  ignore (Strip.advance s Q.one);
  Strip.apply_moves s [ (1, 2); (2, 0) ];
  let by_id id =
    List.find (fun (r : Strip.resident) -> r.Strip.id = id) (Strip.residents s)
  in
  Alcotest.(check int) "task 1 relocated" 2 (by_id 1).Strip.col_lo;
  Alcotest.(check int) "task 2 relocated" 0 (by_id 2).Strip.col_lo;
  (* Each task now has a closed pre-move segment and a live one. *)
  ignore (Strip.advance s (q "2"));
  Alcotest.(check int) "two segments per task" 4 (List.length (Strip.segments s));
  match Strip.apply_moves s [ (1, 0) ] with
  | () -> Alcotest.fail "moving a retired task accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Arrivals *)

let test_trace_deterministic () =
  let spec = Arrivals.Poisson 1.5 in
  let t1 = Arrivals.trace ~n:20 ~k:6 ~seed:42 spec in
  let t2 = Arrivals.trace ~n:20 ~k:6 ~seed:42 spec in
  let t3 = Arrivals.trace ~n:20 ~k:6 ~seed:43 spec in
  Alcotest.(check string) "same seed, same trace"
    (Spp_core.Io.release_to_string t1) (Spp_core.Io.release_to_string t2);
  Alcotest.(check bool) "different seed, different trace" false
    (Spp_core.Io.release_to_string t1 = Spp_core.Io.release_to_string t3);
  let s1, w1 = Arrivals.of_instance t1 in
  let s2, w2 = Arrivals.of_instance t2 in
  Alcotest.(check bool) "same arrival stream" true (s1 = s2 && w1 = w2);
  let sorted =
    List.for_all2
      (fun (a : Arrivals.arrival) b -> Q.compare a.Arrivals.release b.Arrivals.release <= 0)
      (List.filteri (fun i _ -> i < List.length s1 - 1) s1)
      (List.tl s1)
  in
  Alcotest.(check bool) "stream sorted by release" true sorted

let test_widening () =
  (* Width 1/2 on a 3-column strip is not a column multiple: ceil to 2. *)
  let task = { I.Release.rect = { Rect.id = 0; w = q "1/2"; h = Q.one }; release = Q.zero } in
  let inst = I.Release.make ~k:3 [ task ] in
  let stream, widened = Arrivals.of_instance inst in
  Alcotest.(check int) "one task widened" 1 widened;
  Alcotest.(check (list int)) "ceil to 2 cols" [ 2 ]
    (List.map (fun (a : Arrivals.arrival) -> a.Arrivals.cols) stream)

let test_pacing_deterministic () =
  let gaps seed =
    let p = Arrivals.pacing (Spp_util.Prng.create seed) (Arrivals.Burst { burst_len = 3; idle_gap = 2.0 }) in
    List.init 9 (fun _ -> p ())
  in
  Alcotest.(check (list (float 0.0))) "same seed, same gaps" (gaps 7) (gaps 7);
  (* Burst shape: after each idle gap, burst_len - 1 zero gaps. *)
  (match gaps 7 with
   | g0 :: g1 :: g2 :: g3 :: _ ->
     Alcotest.(check bool) "leading idle gap" true (g0 > 0.0);
     Alcotest.(check (list (float 0.0))) "burst is back-to-back" [ 0.0; 0.0 ] [ g1; g2 ];
     Alcotest.(check bool) "next idle gap" true (g3 > 0.0)
   | _ -> Alcotest.fail "short gap stream")

let test_spec_parsing () =
  (match Arrivals.parse_spec "poisson:1.5" with
   | Ok (Arrivals.Poisson r) -> Alcotest.(check (float 0.0)) "rate" 1.5 r
   | _ -> Alcotest.fail "poisson spec");
  (match Arrivals.parse_spec "burst:6:2.0" with
   | Ok (Arrivals.Burst { burst_len; idle_gap }) ->
     Alcotest.(check int) "len" 6 burst_len;
     Alcotest.(check (float 0.0)) "gap" 2.0 idle_gap
   | _ -> Alcotest.fail "burst spec");
  List.iter
    (fun s ->
      match Arrivals.parse_spec s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "poisson"; "poisson:0"; "poisson:-1"; "burst:0:1"; "burst:2:0"; "drizzle:1" ]

(* ------------------------------------------------------------------ *)
(* Repack *)

(* Crafted state where left-compaction is suboptimal: A|1 at 0, B|2 at 4,
   C|1 at 7 on k=8. Greedy moves B and C (3 cells); the exact search
   consolidates the gap at the far left instead, sliding only A to
   column 6 (1 cell) while B and C stay put. *)
let crafted_strip () =
  let s = Strip.create ~k:8 in
  Strip.place s ~id:1 ~cols:1 ~col_lo:0 ~duration:(q "10");
  Strip.place s ~id:2 ~cols:2 ~col_lo:4 ~duration:(q "10");
  Strip.place s ~id:3 ~cols:1 ~col_lo:7 ~duration:(q "10");
  s

let test_repack_greedy_vs_exact () =
  let s = crafted_strip () in
  check_q "fragmented" (q "1/4") (Strip.fragmentation s);
  let g = Repack.greedy s in
  Alcotest.(check int) "greedy migrates 3 cells" 3 g.Repack.cells;
  (match Repack.exact s with
   | None -> Alcotest.fail "exact gave up on n=3"
   | Some e ->
     Alcotest.(check int) "exact migrates 1 cell" 1 e.Repack.cells;
     Strip.apply_moves s e.Repack.moves;
     check_q "defragmented" Q.zero (Strip.fragmentation s));
  (* exact falls back to greedy above the resident cap *)
  let s2 = crafted_strip () in
  Alcotest.(check (option int)) "cap respected" None
    (Option.map (fun (p : Repack.plan) -> p.Repack.cells) (Repack.exact ~max_residents:2 s2));
  Alcotest.(check int) "best under cap = greedy" 3 (Repack.best ~max_residents:2 s2).Repack.cells

let test_repack_noop_when_compact () =
  let s = Strip.create ~k:8 in
  Strip.place s ~id:1 ~cols:3 ~col_lo:0 ~duration:Q.one;
  Strip.place s ~id:2 ~cols:2 ~col_lo:3 ~duration:Q.one;
  List.iter
    (fun (p : Repack.plan) ->
      Alcotest.(check int) "no moves" 0 (List.length p.Repack.moves);
      Alcotest.(check int) "no cells" 0 p.Repack.cells)
    [ Repack.greedy s; Repack.best s ]

(* ------------------------------------------------------------------ *)
(* Sim end to end *)

let golden_trace () = Arrivals.trace ~n:20 ~k:6 ~seed:42 (Arrivals.Poisson 1.5)

let test_sim_deterministic () =
  let inst = golden_trace () in
  let run () = Sim.run ~repack_threshold:(q "1/4") ~packer:Online.First_fit inst in
  let r1 = run () and r2 = run () in
  check_q "same makespan" r1.Sim.makespan r2.Sim.makespan;
  check_q "same wait" r1.Sim.total_wait r2.Sim.total_wait;
  Alcotest.(check bool) "same segments" true (r1.Sim.segments = r2.Sim.segments);
  Alcotest.(check int) "same repacks" (List.length r1.Sim.repacks) (List.length r2.Sim.repacks)

let test_sim_sound_and_above_bounds () =
  let inst = golden_trace () in
  List.iter
    (fun packer ->
      let r = Sim.run ~packer inst in
      Alcotest.(check (list string)) "no violations" []
        (List.map (Format.asprintf "%a" Sim.pp_violation) (Sim.check inst r));
      Alcotest.(check int) "all tasks placed" 20 r.Sim.placements;
      Alcotest.(check bool) "competitive ratio >= 1 vs Section 3 LB" true
        (Q.compare r.Sim.makespan (LB.release inst) >= 0);
      (* No repacking: the run is an offline placement; the geometric
         oracle must agree. *)
      match Sim.to_placement inst r with
      | None -> Alcotest.fail "move-free run has no placement view"
      | Some p ->
        Alcotest.(check bool) "placement oracle agrees" true
          (Spp_core.Validate.is_valid_release inst p);
        check_q "placement height is the makespan" r.Sim.makespan
          (Spp_geom.Placement.height p))
    [ Online.First_fit; Online.Buffered 4 ]

let test_sim_vs_certified_offline_lb () =
  (* Small golden trace so the APTAS is cheap: its certified lower bound
     must sit at or below any online makespan, exactly. *)
  let inst = Arrivals.trace ~n:10 ~k:4 ~seed:11 (Arrivals.Poisson 1.0) in
  let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
  List.iter
    (fun packer ->
      let r = Sim.run ~packer inst in
      Alcotest.(check bool) "aptas LB <= online makespan" true
        (Q.compare res.Spp_core.Aptas.lower_bound r.Sim.makespan <= 0))
    [ Online.First_fit; Online.Buffered 2 ]

let test_sim_repack_accounting () =
  (* Burst traces fragment the strip; run until a repack fires and check
     the cost arithmetic and the strict fragmentation decrease. *)
  let fired = ref false in
  List.iter
    (fun seed ->
      let inst = Arrivals.trace ~n:30 ~k:8 ~seed (Arrivals.Burst { burst_len = 6; idle_gap = 2.0 }) in
      let r =
        Sim.run ~repack_threshold:(q "1/8") ~migration_cost:(q "3/2") ~packer:Online.First_fit inst
      in
      Alcotest.(check (list string)) "sound across migrations" []
        (List.map (Format.asprintf "%a" Sim.pp_violation) (Sim.check inst r));
      if r.Sim.repacks <> [] then fired := true;
      List.iter
        (fun (e : Sim.repack_event) ->
          Alcotest.(check bool) "strictly reduces fragmentation" true
            (Q.compare e.Sim.frag_after e.Sim.frag_before < 0))
        r.Sim.repacks;
      Alcotest.(check int) "cells add up"
        (List.fold_left (fun a (e : Sim.repack_event) -> a + e.Sim.cells) 0 r.Sim.repacks)
        r.Sim.cells_migrated;
      check_q "cost = cells * 3/2"
        (Q.mul (Q.of_int r.Sim.cells_migrated) (q "3/2"))
        r.Sim.migration_cost)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "at least one repack fired on the burst corpus" true !fired

let test_sim_check_catches_planted_overlap () =
  let inst = golden_trace () in
  let r = Sim.run ~packer:Online.First_fit inst in
  (* Shift every segment to column 0: tasks that ran side by side now
     collide, and the independent validator must say so. *)
  let tampered =
    { r with Sim.segments = List.map (fun (s : Strip.segment) -> { s with Strip.seg_lo = 0 }) r.Sim.segments }
  in
  Alcotest.(check bool) "tampered log rejected" true (Sim.check inst tampered <> [])

let test_sim_metrics_published () =
  let inst = golden_trace () in
  let registry = Spp_obs.Metrics.create () in
  let r = Sim.run ~registry ~packer:Online.First_fit inst in
  Alcotest.(check int) "placements counter" r.Sim.placements
    (Spp_obs.Metrics.counter_value (Spp_obs.Metrics.counter registry "spp_sim_placements_total"));
  Alcotest.(check int) "arrivals counter" 20
    (Spp_obs.Metrics.counter_value (Spp_obs.Metrics.counter registry "spp_sim_arrivals_total"))

let test_packer_parse () =
  List.iter
    (fun (s, expected) ->
      match Online.parse s with
      | Ok p -> Alcotest.(check string) s expected (Online.to_string p)
      | Error msg -> Alcotest.failf "rejected %S: %s" s msg)
    [ ("first-fit", "first-fit"); ("ff", "first-fit"); ("buffered", "buffered:4");
      ("buffered:2", "buffered:2") ];
  List.iter
    (fun s -> match Online.parse s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ())
    [ "buffered:0"; "buffered:x"; "worst-fit" ]

let () =
  Alcotest.run "spp_sim"
    [
      ( "strip-state",
        [
          Alcotest.test_case "place and retire" `Quick test_place_and_retire;
          Alcotest.test_case "rejects bad placements" `Quick test_place_rejects_overlap;
          Alcotest.test_case "first fit leftmost" `Quick test_first_fit_leftmost;
          Alcotest.test_case "fragmentation metric" `Quick test_fragmentation_metric;
          Alcotest.test_case "apply moves permutation" `Quick test_apply_moves_permutation;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "widening to column grid" `Quick test_widening;
          Alcotest.test_case "pacing deterministic" `Quick test_pacing_deterministic;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        ] );
      ( "repack",
        [
          Alcotest.test_case "greedy vs exact" `Quick test_repack_greedy_vs_exact;
          Alcotest.test_case "noop when compact" `Quick test_repack_noop_when_compact;
        ] );
      ( "sim",
        [
          Alcotest.test_case "run twice, identical" `Quick test_sim_deterministic;
          Alcotest.test_case "sound and above bounds" `Quick test_sim_sound_and_above_bounds;
          Alcotest.test_case "certified offline LB" `Quick test_sim_vs_certified_offline_lb;
          Alcotest.test_case "repack accounting" `Quick test_sim_repack_accounting;
          Alcotest.test_case "validator catches tampering" `Quick test_sim_check_catches_planted_overlap;
          Alcotest.test_case "metrics published" `Quick test_sim_metrics_published;
          Alcotest.test_case "packer parsing" `Quick test_packer_parse;
        ] );
    ]
