(* Tests for Spp_util: PRNG determinism and distribution sanity, heap
   ordering laws, statistics, and table rendering. *)

module Prng = Spp_util.Prng
module Cancel = Spp_util.Cancel
module Heap = Spp_util.Heap
module Stats = Spp_util.Stats
module Table = Spp_util.Table

(* ------------------------------------------------------------------ *)
(* PRNG *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_int_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_int_in () =
  let t = Prng.create 9 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Prng.int_in t 3 7 in
    if v < 3 || v > 7 then Alcotest.fail "out of range";
    seen.(v - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_uniformity () =
  (* Sanity: 10 buckets over 100k draws each within 20% of expectation. *)
  let t = Prng.create 1234 in
  let buckets = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let v = Prng.int t 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = draws / 10 in
      if abs (c - expected) > expected / 5 then Alcotest.fail "bucket far from uniform")
    buckets

let test_prng_float_range () =
  let t = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of range"
  done

let test_prng_exponential_mean () =
  let t = Prng.create 77 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential t ~rate:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check (float 0.02)) "mean ~ 1/rate" 0.5 mean

let test_prng_shuffle_permutes () =
  let t = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let t = Prng.create 11 in
  let child = Prng.split t in
  (* Drawing from the child must not perturb the parent's future stream. *)
  let t2 = Prng.create 11 in
  let _child2 = Prng.split t2 in
  ignore (Prng.bits64 child);
  Alcotest.(check int64) "parent unaffected by child draws" (Prng.bits64 t2) (Prng.bits64 t)

let test_prng_split_deterministic () =
  (* The split discipline itself must be reproducible: the same seed and
     the same sequence of splits yields the same child streams, and splits
     consume exactly one parent draw (the contract Spp_check's per-case
     seeding relies on). *)
  let stream t = List.init 8 (fun _ -> Prng.bits64 t) in
  let a = Prng.create 42 and b = Prng.create 42 in
  Alcotest.(check (list int64)) "first children agree" (stream (Prng.split a))
    (stream (Prng.split b));
  Alcotest.(check (list int64)) "second children agree" (stream (Prng.split a))
    (stream (Prng.split b));
  Alcotest.(check (list int64)) "parents still in lockstep" (stream a) (stream b);
  (* One draw per split: split-then-draw equals draw-skip-then-draw. *)
  let c = Prng.create 17 and d = Prng.create 17 in
  ignore (Prng.split c);
  ignore (Prng.bits64 d);
  Alcotest.(check int64) "split consumes exactly one draw" (Prng.bits64 d) (Prng.bits64 c)

let test_prng_copy_replays () =
  let t = Prng.create 23 in
  ignore (Prng.bits64 t);
  let snap = Prng.copy t in
  let from_orig = List.init 16 (fun _ -> Prng.bits64 t) in
  let from_copy = List.init 16 (fun _ -> Prng.bits64 snap) in
  Alcotest.(check (list int64)) "copy replays the original stream" from_orig from_copy;
  (* And the copy is detached: drawing from it must not advance [t]. *)
  let t2 = Prng.create 23 in
  ignore (Prng.bits64 t2);
  let snap2 = Prng.copy t2 in
  ignore (Prng.bits64 snap2);
  Alcotest.(check int64) "original unaffected by copy draws"
    (List.hd from_orig) (Prng.bits64 t2)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3; 5; 8; 9 ]
    (List.init 6 (fun _ -> Heap.pop_exn h));
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.check_raises "pop_exn empty" Not_found (fun () -> ignore (Heap.pop_exn h))

let test_heap_of_list () =
  let h = Heap.of_list ~cmp:compare [ 4; 2; 7; 1 ] in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 4; 7 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "to_sorted_list non-destructive" 4 (Heap.length h)

let test_heap_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 5; 3; 8 ];
  Alcotest.(check (option int)) "max-heap" (Some 8) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    (QCheck.list QCheck.small_int) (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_push_pop_min =
  QCheck.Test.make ~name:"pop always yields current minimum" ~count:200
    (QCheck.list QCheck.small_int) (fun xs ->
      QCheck.assume (xs <> []);
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      match Heap.pop h with
      | Some m -> m = List.fold_left min max_int xs
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.0) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean []))

let test_stats_median_quantile () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even median" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "q0" 1.0 (Stats.quantile 0.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "q1" 3.0 (Stats.quantile 1.0 [ 3.0; 1.0; 2.0 ])

let test_stats_percentiles () =
  let xs = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100 is max" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p50 is median" 3.0 (Stats.percentile 50.0 xs);
  (* Rank interpolation, not nearest-rank: p90 over 5 samples sits 60% of
     the way from the 4th to the 5th order statistic. *)
  Alcotest.(check (float 1e-9)) "p90 interpolates" 4.6 (Stats.percentile 90.0 xs);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.percentile 99.0 [ 7.0 ]);
  Alcotest.(check (list (float 1e-9)))
    "percentiles = map percentile"
    (List.map (fun p -> Stats.percentile p xs) [ 50.0; 90.0; 95.0; 99.0 ])
    (Stats.percentiles [ 50.0; 90.0; 95.0; 99.0 ] xs)

let test_stats_geometric_mean () =
  Alcotest.(check (float 1e-9)) "gm" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "nonpositive" (Invalid_argument "Stats.geometric_mean: nonpositive sample")
    (fun () -> ignore (Stats.geometric_mean [ 1.0; 0.0 ]))

let test_stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  Alcotest.(check (float 1e-9)) "min" (-1.0) lo;
  Alcotest.(check (float 1e-9)) "max" 7.0 hi

(* ------------------------------------------------------------------ *)
(* Parallel *)

module Parallel = Spp_util.Parallel

let test_parallel_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order preserved" (List.map f xs) (Parallel.map ~workers:4 f xs);
  Alcotest.(check (list int)) "single worker" (List.map f xs) (Parallel.map ~workers:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Parallel.map f ([] : int list));
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parallel.map f [ 1 ])

let test_parallel_large_matches_list_map () =
  (* 1000 items: order preservation against List.map at several widths. *)
  let xs = List.init 1000 (fun i -> i - 500) in
  let f x = (x * 31) lxor 7 in
  let expected = List.map f xs in
  List.iter
    (fun workers ->
      Alcotest.(check (list int))
        (Printf.sprintf "1k items, %d workers" workers)
        expected
        (Parallel.map ~workers f xs))
    [ 1; 2; 8 ]

let test_parallel_propagates_exception () =
  Alcotest.check_raises "worker exception surfaces" (Failure "boom") (fun () ->
      ignore (Parallel.map ~workers:4 (fun x -> if x = 37 then failwith "boom" else x)
                (List.init 100 Fun.id)));
  Alcotest.check_raises "exception with workers:1" (Failure "boom") (fun () ->
      ignore (Parallel.map ~workers:1 (fun x -> if x = 3 then failwith "boom" else x)
                (List.init 10 Fun.id)))

let test_parallel_single_worker_sequential () =
  (* workers:1 must fall back to sequential evaluation in the calling
     domain: side effects happen in input order, and no other domain runs
     the function. *)
  let order = ref [] in
  let self = Domain.self () in
  let xs = List.init 50 Fun.id in
  let res =
    Parallel.map ~workers:1
      (fun x ->
        order := x :: !order;
        Alcotest.(check bool) "runs in calling domain" true (Domain.self () = self);
        x + 1)
      xs
  in
  Alcotest.(check (list int)) "results" (List.map succ xs) res;
  Alcotest.(check (list int)) "side effects in input order" xs (List.rev !order)

let test_parallel_workers_env_override () =
  (* SPP_WORKERS overrides both core detection and the cap of 8; malformed
     or non-positive values fall back to the default. putenv cannot unset,
     so the default case is exercised via values that must be ignored. *)
  let default = ref 0 in
  Unix.putenv "SPP_WORKERS" "";
  default := Parallel.available_workers ();
  Alcotest.(check bool) "default is positive" true (!default >= 1);
  Unix.putenv "SPP_WORKERS" "3";
  Alcotest.(check int) "override honored" 3 (Parallel.available_workers ());
  Unix.putenv "SPP_WORKERS" "12";
  Alcotest.(check int) "override beats the cap of 8" 12 (Parallel.available_workers ());
  Unix.putenv "SPP_WORKERS" " 5 ";
  Alcotest.(check int) "whitespace tolerated" 5 (Parallel.available_workers ());
  Unix.putenv "SPP_WORKERS" "0";
  Alcotest.(check int) "non-positive ignored" !default (Parallel.available_workers ());
  Unix.putenv "SPP_WORKERS" "lots";
  Alcotest.(check int) "malformed ignored" !default (Parallel.available_workers ());
  Unix.putenv "SPP_WORKERS" ""

let test_parallel_parse_workers () =
  let ok s n =
    Alcotest.(check bool) (Printf.sprintf "parse %S" s) true (Parallel.parse_workers s = Ok n)
  in
  let err s =
    match Parallel.parse_workers s with
    | Error msg ->
      Alcotest.(check bool) (Printf.sprintf "error for %S names it" s) true (msg <> "")
    | Ok n -> Alcotest.failf "parse_workers %S unexpectedly accepted as %d" s n
  in
  ok "1" 1;
  ok "8" 8;
  ok "12" 12;
  ok " 5 " 5;
  ok "\t3\n" 3;
  err "";
  err " ";
  err "0";
  err "-2";
  err "lots";
  err "4 cores";
  err "3.5"

let test_parallel_real_workload () =
  (* Actual domain-parallel packing: results identical to sequential. *)
  let seeds = List.init 12 Fun.id in
  let pack seed =
    let rng = Prng.create seed in
    let w = 1 + (seed mod 8) in
    ignore rng;
    w * 2
  in
  Alcotest.(check (list int)) "parallel = sequential" (List.map pack seeds)
    (Parallel.map ~workers:3 pack seeds)

(* ------------------------------------------------------------------ *)
(* Clock *)

module Clock = Spp_util.Clock

let test_clock_monotonic () =
  let prev = ref (Clock.now_ms ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ms () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done

let test_clock_elapsed_nonnegative () =
  let t0 = Clock.now_ms () in
  Alcotest.(check bool) "elapsed >= 0" true (Clock.elapsed_ms t0 >= 0.0);
  (* Even against a reference in the future. *)
  Alcotest.(check (float 0.0)) "clamped at zero" 0.0 (Clock.elapsed_ms (t0 +. 1e9))

let with_frozen_clock f =
  Clock.freeze ();
  Fun.protect ~finally:Clock.thaw f

let test_clock_virtual () =
  with_frozen_clock (fun () ->
      Alcotest.(check bool) "frozen" true (Clock.frozen ());
      let t0 = Clock.now_ms () in
      Alcotest.(check (float 0.0)) "no drift while frozen" t0 (Clock.now_ms ());
      Alcotest.(check (float 0.0)) "advance returns new now" (t0 +. 250.0) (Clock.advance 250.0);
      Alcotest.(check (float 0.0)) "elapsed is virtual" 250.0 (Clock.elapsed_ms t0);
      Alcotest.(check (float 0.0)) "zero advance ok" (t0 +. 250.0) (Clock.advance 0.0));
  Alcotest.(check bool) "thawed" false (Clock.frozen ());
  (* The monotone clamp survives the thaw: the wall may lag the virtual
     time we advanced to, but now_ms never goes backwards. *)
  let prev = ref (Clock.now_ms ()) in
  for _ = 1 to 100 do
    let t = Clock.now_ms () in
    if t < !prev then Alcotest.fail "clock went backwards after thaw";
    prev := t
  done

let test_clock_advance_guards () =
  Alcotest.check_raises "advance needs freeze"
    (Invalid_argument "Clock.advance: clock is not frozen") (fun () ->
      ignore (Clock.advance 1.0));
  with_frozen_clock (fun () ->
      Alcotest.check_raises "negative advance"
        (Invalid_argument "Clock.advance: negative step") (fun () ->
          ignore (Clock.advance (-1.0))))

(* ------------------------------------------------------------------ *)
(* Cancel: the deadline boundary cases live here; behavioural tests of
   tokens inside solvers are in test_engine. *)

let test_cancel_deadline_now () =
  (* A zero (or negative) budget must trip immediately — the engine
     builds such tokens when a request arrives with its budget already
     spent, and solvers must hit the fallback rather than start work. *)
  List.iter
    (fun ms ->
      let t = Cancel.with_deadline_ms ms in
      Alcotest.(check bool)
        (Printf.sprintf "deadline %g tripped at birth" ms)
        true (Cancel.cancelled t);
      Alcotest.check_raises "check raises" Cancel.Cancelled (fun () -> Cancel.check t);
      Alcotest.(check (option (float 0.0))) "no budget left" (Some 0.0) (Cancel.remaining_ms t))
    [ 0.0; -1.0; -1e9 ];
  (* And stays tripped: cancel on an already-expired token is a no-op. *)
  let t = Cancel.with_deadline_ms 0.0 in
  Cancel.cancel t;
  Alcotest.(check bool) "still tripped" true (Cancel.cancelled t)

let test_cancel_deadline_virtual () =
  (* The whole point of the virtual clock: deadline semantics tested
     without a single sleep. *)
  with_frozen_clock (fun () ->
      let t = Cancel.with_deadline_ms 100.0 in
      Alcotest.(check bool) "fresh token live" false (Cancel.cancelled t);
      ignore (Clock.advance 50.0);
      Alcotest.(check bool) "alive at half budget" false (Cancel.cancelled t);
      Alcotest.(check (option (float 0.0))) "half budget left" (Some 50.0)
        (Cancel.remaining_ms t);
      ignore (Clock.advance 60.0);
      Alcotest.(check bool) "tripped past deadline" true (Cancel.cancelled t);
      Alcotest.(check (option (float 0.0))) "no budget left" (Some 0.0) (Cancel.remaining_ms t))

(* ------------------------------------------------------------------ *)
(* Deadline: propagated-budget arithmetic, entirely under the virtual
   clock — not one sleep. *)

module Deadline = Spp_util.Deadline

let test_deadline_pin_and_spend () =
  with_frozen_clock (fun () ->
      let d = Deadline.started 100.0 in
      Alcotest.(check (float 1e-9)) "full budget at receipt" 100.0 (Deadline.remaining_ms d);
      Alcotest.(check bool) "not expired" false (Deadline.expired d);
      ignore (Clock.advance 40.0);
      Alcotest.(check (float 1e-9)) "hop time subtracted" 60.0 (Deadline.remaining_ms d);
      (* The next hop receives only what is left as measured here. *)
      Alcotest.(check (float 1e-9)) "forward = remaining" 60.0 (Deadline.forward_ms d);
      ignore (Clock.advance 60.0);
      Alcotest.(check (float 0.0)) "exhausted" 0.0 (Deadline.remaining_ms d);
      Alcotest.(check bool) "expired exactly at zero" true (Deadline.expired d);
      ignore (Clock.advance 1000.0);
      Alcotest.(check (float 0.0)) "never negative" 0.0 (Deadline.remaining_ms d))

let test_deadline_floor () =
  with_frozen_clock (fun () ->
      let d = Deadline.started 100.0 in
      (* The wont-make-it test: below the floor the request cannot finish
         in time even though the deadline itself has not passed. *)
      Alcotest.(check bool) "above floor" false (Deadline.expired ~floor_ms:50.0 d);
      ignore (Clock.advance 60.0);
      Alcotest.(check bool) "below floor" true (Deadline.expired ~floor_ms:50.0 d);
      Alcotest.(check bool) "plain deadline still live" false (Deadline.expired d);
      (* Exactly at the floor is still admissible. *)
      let d' = Deadline.started 50.0 in
      Alcotest.(check bool) "at the floor" false (Deadline.expired ~floor_ms:50.0 d'))

let test_deadline_of_request () =
  Alcotest.(check bool) "no wire field, no deadline" true
    (Deadline.of_request None = None);
  with_frozen_clock (fun () ->
      match Deadline.of_request (Some 75.0) with
      | None -> Alcotest.fail "Some budget must pin a deadline"
      | Some d ->
        Alcotest.(check (float 1e-9)) "pinned at receipt" 75.0 (Deadline.remaining_ms d);
        (* A hop that re-pins the forwarded budget observes one hop's
           elapsed time subtracted, not two. *)
        ignore (Clock.advance 25.0);
        let next = Deadline.started (Deadline.forward_ms d) in
        Alcotest.(check (float 1e-9)) "second hop sees 50" 50.0
          (Deadline.remaining_ms next);
        ignore (Clock.advance 50.0);
        Alcotest.(check bool) "both hops agree on expiry" true
          (Deadline.expired d && Deadline.expired next));
  (* A budget already spent (or nonsense-negative) arrives expired. *)
  List.iter
    (fun ms ->
      match Deadline.of_request (Some ms) with
      | None -> Alcotest.fail "expired is still a deadline"
      | Some d -> Alcotest.(check bool) "born expired" true (Deadline.expired d))
    [ 0.0; -5.0 ]

let test_deadline_token () =
  with_frozen_clock (fun () ->
      let d = Deadline.started 80.0 in
      ignore (Clock.advance 30.0);
      (* The token caps solver work by whatever remains at its creation. *)
      let t = Deadline.token d in
      Alcotest.(check bool) "token live within budget" false (Cancel.cancelled t);
      ignore (Clock.advance 49.0);
      Alcotest.(check bool) "still live at 1 ms left" false (Cancel.cancelled t);
      ignore (Clock.advance 2.0);
      Alcotest.(check bool) "token trips with the deadline" true (Cancel.cancelled t))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create ~columns:[ "n"; "height"; "ratio" ] in
  Table.add_row t [ "16"; "3.5"; "1.2" ];
  Table.add_row t [ "256"; "10.25" ];
  let out = Table.render t in
  Alcotest.(check bool) "header present" true
    (String.length out > 0 && String.sub out 0 1 = "n");
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "line count" 4 (List.length lines)

let test_table_too_many_cells () =
  let t = Table.create ~columns:[ "a" ] in
  Alcotest.check_raises "overflow row" (Invalid_argument "Table.add_row: more cells than columns")
    (fun () -> Table.add_row t [ "1"; "2" ])

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in hits range" `Quick test_prng_int_in;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "split determinism" `Quick test_prng_split_deterministic;
          Alcotest.test_case "copy replays stream" `Quick test_prng_copy_replays;
        ] );
      ( "heap",
        Alcotest.test_case "basic" `Quick test_heap_basic
        :: Alcotest.test_case "pop empty" `Quick test_heap_pop_empty
        :: Alcotest.test_case "of_list" `Quick test_heap_of_list
        :: Alcotest.test_case "custom order" `Quick test_heap_custom_order
        :: q [ prop_heap_sorts; prop_heap_push_pop_min ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "median/quantile" `Quick test_stats_median_quantile;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "1k items vs List.map" `Quick test_parallel_large_matches_list_map;
          Alcotest.test_case "exception propagation" `Quick test_parallel_propagates_exception;
          Alcotest.test_case "workers:1 sequential fallback" `Quick
            test_parallel_single_worker_sequential;
          Alcotest.test_case "SPP_WORKERS override" `Quick test_parallel_workers_env_override;
          Alcotest.test_case "parse_workers" `Quick test_parallel_parse_workers;
          Alcotest.test_case "real workload" `Quick test_parallel_real_workload;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "elapsed nonnegative" `Quick test_clock_elapsed_nonnegative;
          Alcotest.test_case "virtual freeze/advance/thaw" `Quick test_clock_virtual;
          Alcotest.test_case "advance guards" `Quick test_clock_advance_guards;
        ] );
      ( "cancel",
        [ Alcotest.test_case "deadline already passed" `Quick test_cancel_deadline_now;
          Alcotest.test_case "deadline under virtual clock" `Quick test_cancel_deadline_virtual ] );
      ( "deadline",
        [ Alcotest.test_case "pin and spend per hop" `Quick test_deadline_pin_and_spend;
          Alcotest.test_case "wont-make-it floor" `Quick test_deadline_floor;
          Alcotest.test_case "wire budget round-trip" `Quick test_deadline_of_request;
          Alcotest.test_case "cancel token" `Quick test_deadline_token ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
        ] );
    ]
