(* Chaos tests: the Spp_util.Fault registry itself (spec parsing,
   determinism, one-shot and delay actions), checksummed store entries
   degrading to misses, and a live server surviving injected faults —
   worker death answered with structured errors and a restarted pool,
   idle connections reaped, overload replies carrying retry hints, and
   the retrying client converging through all of it.

   Fault state is process-global; every test that arms it clears it in a
   [Fun.protect] finaliser so cases stay independent (alcotest runs them
   sequentially in this executable). *)

module Fault = Spp_util.Fault
module Crc32 = Spp_util.Crc32
module Clock = Spp_util.Clock
module Prng = Spp_util.Prng
module Io = Spp_core.Io
module Generators = Spp_workloads.Generators
module Engine = Spp_engine.Engine
module Store = Spp_engine.Store
module Fingerprint = Spp_engine.Fingerprint
module Telemetry = Spp_engine.Telemetry
module Metrics = Spp_obs.Metrics
module Expo = Spp_obs.Expo
module Protocol = Spp_server.Protocol
module Framing = Spp_server.Framing
module Server = Spp_server.Server
module Client = Spp_server.Client

let with_faults ?seed spec f =
  (match Fault.configure ?seed spec with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "fault spec %S rejected: %s" spec msg);
  Fun.protect ~finally:Fault.clear f

let random_prec seed n =
  let rng = Prng.create seed in
  Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape:`Series_parallel

let temp_dir prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_spec_parsing () =
  let ok spec =
    match Fault.configure spec with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%S should parse: %s" spec msg
  in
  let bad spec =
    match Fault.configure spec with
    | Ok () -> Alcotest.failf "%S should be rejected" spec
    | Error _ -> ()
  in
  Fun.protect ~finally:Fault.clear (fun () ->
      ok "store.read=0.5";
      ok "pool.job=once";
      ok "engine.solve=delay200";
      ok "engine.solve=delay200@0.25";
      ok " store.read=1 , framing.write=once ";
      ok "store.read=0.5,store.write=0.1,framing.read=once,pool.job=once";
      bad "bogus.point=0.5";
      bad "store.read";
      bad "store.read=";
      bad "store.read=maybe";
      bad "store.read=0";
      bad "store.read=-0.5";
      bad "store.read=1.5";
      bad "store.read=0.5,store.read=0.2";
      bad "engine.solve=delay-5";
      bad "engine.solve=delay100@0";
      (* A rejected spec must not clobber the previous configuration. *)
      ok "store.read=once";
      bad "nope=1";
      Alcotest.(check bool) "previous config survives a bad spec" true (Fault.active ());
      Alcotest.(check string) "describe mentions the rule" "store.read=once seed=0"
        (Fault.describe ());
      (* Empty spec disarms, like clear. *)
      ok "";
      Alcotest.(check bool) "empty spec disarms" false (Fault.active ());
      Alcotest.(check string) "describe off" "off" (Fault.describe ()))

let test_spec_from_env () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SPP_FAULTS" "";
      Fault.clear ())
    (fun () ->
      Unix.putenv "SPP_FAULTS" "store.read=once";
      (match Fault.configure_from_env () with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "env spec rejected: %s" msg);
      Alcotest.(check bool) "armed from env" true (Fault.active ());
      Unix.putenv "SPP_FAULTS" "not a spec";
      (match Fault.configure_from_env () with
       | Ok () -> Alcotest.fail "malformed env spec accepted"
       | Error _ -> ()))

(* ------------------------------------------------------------------ *)
(* Hit semantics *)

let test_hit_disabled_noop () =
  Fault.clear ();
  for _ = 1 to 1_000 do
    Fault.hit "store.read";
    Fault.hit "no.such.point"
  done;
  Alcotest.(check int) "nothing fired" 0 (Fault.injected "store.read")

let test_hit_once () =
  with_faults "store.read=once" (fun () ->
      (match Fault.hit "store.read" with
       | () -> Alcotest.fail "first hit must raise"
       | exception Fault.Injected p -> Alcotest.(check string) "payload" "store.read" p);
      for _ = 1 to 100 do
        Fault.hit "store.read"
      done;
      Alcotest.(check int) "fired exactly once" 1 (Fault.injected "store.read");
      (* Unarmed points are untouched even while the registry is hot. *)
      Fault.hit "store.write";
      Alcotest.(check int) "other point untouched" 0 (Fault.injected "store.write"))

let test_hit_certain () =
  with_faults "framing.write=1" (fun () ->
      for _ = 1 to 50 do
        match Fault.hit "framing.write" with
        | () -> Alcotest.fail "p=1 must always raise"
        | exception Fault.Injected _ -> ()
      done;
      Alcotest.(check int) "all fired" 50 (Fault.injected "framing.write"))

let test_hit_deterministic () =
  let draw () =
    List.init 200 (fun _ ->
        match Fault.hit "store.read" with
        | () -> false
        | exception Fault.Injected _ -> true)
  in
  with_faults ~seed:7 "store.read=0.5" (fun () ->
      let first = draw () in
      (match Fault.configure ~seed:7 "store.read=0.5" with
       | Ok () -> ()
       | Error msg -> Alcotest.fail msg);
      let second = draw () in
      Alcotest.(check bool) "same seed, same fault sequence" true (first = second);
      let fired = List.length (List.filter Fun.id first) in
      Alcotest.(check bool)
        (Printf.sprintf "p=0.5 fired a plausible %d/200" fired)
        true
        (fired > 50 && fired < 150);
      (match Fault.configure ~seed:8 "store.read=0.5" with
       | Ok () -> ()
       | Error msg -> Alcotest.fail msg);
      Alcotest.(check bool) "different seed, different sequence" false (draw () = first))

let test_hit_delay () =
  with_faults "engine.solve=delay60" (fun () ->
      let t0 = Clock.now_ms () in
      Fault.hit "engine.solve";
      let elapsed = Clock.elapsed_ms t0 in
      Alcotest.(check bool)
        (Printf.sprintf "slept ~60ms (measured %.1f)" elapsed)
        true (elapsed >= 45.0);
      Alcotest.(check int) "delay counts as an injection" 1 (Fault.injected "engine.solve"))

(* ------------------------------------------------------------------ *)
(* Store checksums *)

let test_crc32_known_value () =
  (* The CRC-32/IEEE check value from the specification. *)
  Alcotest.(check string) "check value" "cbf43926" (Crc32.digest_hex "123456789");
  Alcotest.(check string) "empty" "00000000" (Crc32.digest_hex "");
  Alcotest.(check bool) "sensitive to corruption" false
    (Crc32.digest "winner ls" = Crc32.digest "winner lz")

let entry_path dir fingerprint = Filename.concat dir (fingerprint ^ ".sol")

let test_store_detects_corruption () =
  let dir = temp_dir "spp_faults_store" in
  let store = Store.create ~dir () in
  let inst = random_prec 7 8 in
  let p = Spp_core.List_schedule.prec inst in
  let fingerprint = Fingerprint.prec inst in
  Store.add store ~fingerprint ~winner:"ls" p;
  Alcotest.(check bool) "clean entry loads" true
    (Store.find store ~rects:inst.rects ~fingerprint <> None);
  (* Flip one byte in the body: the checksum must catch it and the read
     must degrade to a miss, not a crash or a bogus placement. *)
  let file = entry_path dir fingerprint in
  let ic = open_in_bin file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let broken = Bytes.of_string contents in
  let last = Bytes.length broken - 2 in
  Bytes.set broken last (if Bytes.get broken last = '1' then '2' else '1');
  let oc = open_out_bin file in
  output_bytes oc broken;
  close_out oc;
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Store.find store ~rects:inst.rects ~fingerprint = None);
  Alcotest.(check int) "corruption counted" 1 (Store.corrupt store)

let test_store_legacy_entry_loads () =
  let dir = temp_dir "spp_faults_legacy" in
  let store = Store.create ~dir () in
  let inst = random_prec 9 8 in
  let p = Spp_core.List_schedule.prec inst in
  let fingerprint = Fingerprint.prec inst in
  Store.add store ~fingerprint ~winner:"ls" p;
  (* Rewrite the entry without its checksum line — the format written
     before checksums existed — and it must still load. *)
  let file = entry_path dir fingerprint in
  let ic = open_in_bin file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let body =
    match String.index_opt contents '\n' with
    | Some i -> String.sub contents (i + 1) (String.length contents - i - 1)
    | None -> Alcotest.fail "entry has no checksum line to strip"
  in
  Alcotest.(check bool) "first line was the checksum" true
    (String.length contents > 6 && String.sub contents 0 6 = "crc32 ");
  let oc = open_out_bin file in
  output_string oc body;
  close_out oc;
  Alcotest.(check bool) "legacy entry loads" true
    (Store.find store ~rects:inst.rects ~fingerprint <> None);
  Alcotest.(check int) "not counted as corrupt" 0 (Store.corrupt store)

let test_store_read_fault_degrades () =
  let dir = temp_dir "spp_faults_read" in
  let parsed = Io.Prec (random_prec 11 8) in
  let first = Engine.create ~store_dir:dir () in
  let a = Engine.solve first parsed in
  Alcotest.(check bool) "computed fresh" true (a.Engine.source = Engine.Computed);
  (* A fresh engine would normally hit the disk store; with store.read
     injected it must recompute — same answer, no error. *)
  with_faults "store.read=1" (fun () ->
      let second = Engine.create ~store_dir:dir () in
      let b = Engine.solve second parsed in
      Alcotest.(check bool) "degrades to recompute" true (b.Engine.source = Engine.Computed);
      Alcotest.(check string) "same height"
        (Spp_num.Rat.to_string a.Engine.height)
        (Spp_num.Rat.to_string b.Engine.height));
  let third = Engine.create ~store_dir:dir () in
  let c = Engine.solve third parsed in
  Alcotest.(check bool) "disk hit once the fault clears" true
    (c.Engine.source = Engine.Disk_cache)

let test_store_write_fault_degrades () =
  let dir = temp_dir "spp_faults_write" in
  with_faults "store.write=1" (fun () ->
      let engine = Engine.create ~store_dir:dir () in
      let r = Engine.solve engine (Io.Prec (random_prec 13 8)) in
      Alcotest.(check bool) "solve still succeeds" true
        (r.Engine.source = Engine.Computed);
      let sols =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Filename.check_suffix f ".sol")
      in
      Alcotest.(check int) "nothing persisted" 0 (List.length sols))

(* ------------------------------------------------------------------ *)
(* Live server under injected faults *)

let temp_sock () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spp_faults_%d_%d.sock" (Unix.getpid ()) (Random.int 1_000_000))

let instance_text seed n = Io.prec_to_string (random_prec seed n)

let base_config address engine =
  { Server.address; workers = 1; queue_depth = 4; engine;
    default_budget_ms = Some 2000.0; solve_workers = Some 1;
    max_request_bytes = 1 lsl 16; slow_ms = None; idle_timeout_ms = None;
    read_timeout_ms = None; retry_after_ms = Server.default_retry_after_ms;
    max_worker_restarts = None; deadline_floor_ms = Server.default_deadline_floor_ms }

let with_server config f =
  let srv = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f srv)

let solve_req seed =
  Protocol.Solve
    { instance = instance_text seed 8; budget_ms = None; deadline_ms = None; algos = None;
      trace_id = None }

let test_worker_crash_supervised () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let engine = Engine.create () in
  let reg = Telemetry.metrics (Engine.telemetry engine) in
  with_faults "pool.job=once" (fun () ->
      with_server (base_config address engine) (fun _srv ->
          Client.with_connection address (fun c ->
              (* The first job kills its worker domain. The client must
                 still get a protocol-valid structured reply — not a
                 hang, not a reset connection. *)
              (match Client.request c (solve_req 21) with
               | Protocol.Error { code = Protocol.Internal; message; _ } ->
                 Alcotest.(check bool)
                   (Printf.sprintf "crash reply names the fault (%s)" message)
                   true
                   (String.length message >= 14
                    && String.sub message 0 14 = "worker crashed")
               | other ->
                 Alcotest.failf "expected internal error, got %s"
                   (Protocol.encode_response other));
              (* The supervisor restarts the slot; the same connection's
                 next request is served by the replacement worker. *)
              match Client.request c (solve_req 22) with
              | Protocol.Solve_ok _ -> ()
              | other ->
                Alcotest.failf "replacement worker not serving: %s"
                  (Protocol.encode_response other));
          (match Metrics.find_counter reg "spp_worker_deaths_total" with
           | Some n -> Alcotest.(check int) "one death" 1 n
           | None -> Alcotest.fail "spp_worker_deaths_total not registered");
          (match Metrics.find_counter reg "spp_worker_restarts_total" with
           | Some n -> Alcotest.(check bool) "restart counted" true (n >= 1)
           | None -> Alcotest.fail "spp_worker_restarts_total not registered");
          let scrape = Expo.render reg in
          let mentions needle =
            let nl = String.length needle and sl = String.length scrape in
            let rec go i = i + nl <= sl && (String.sub scrape i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "restarts exposed to Prometheus" true
            (mentions "spp_worker_restarts_total 1")))

let test_pool_death_answers_not_hangs () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let engine = Engine.create () in
  with_faults "pool.job=1" (fun () ->
      let config =
        { (base_config address engine) with Server.max_worker_restarts = Some 0 }
      in
      with_server config (fun _srv ->
          (* Every job crashes its worker and the restart budget is zero:
             the pool declares itself dead. Both the killing request and
             later ones must still be answered with structured errors. *)
          (match Client.with_connection address (fun c -> Client.request c (solve_req 31)) with
           | Protocol.Error { code = Protocol.Internal; _ } -> ()
           | other ->
             Alcotest.failf "expected internal error, got %s" (Protocol.encode_response other));
          (* Depending on whether the push raced the queue close, the
             reply is the conn thread's "worker pool closed" or the
             drain's "worker pool dead: ..." — both are structured
             internal errors naming the pool. *)
          match Client.with_connection address (fun c -> Client.request c (solve_req 32)) with
          | Protocol.Error { code = Protocol.Internal; message; _ } ->
            Alcotest.(check bool)
              (Printf.sprintf "dead pool is reported (%s)" message)
              true
              (String.length message >= 11 && String.sub message 0 11 = "worker pool")
          | other ->
            Alcotest.failf "expected pool-closed error, got %s"
              (Protocol.encode_response other)))
(* Server.stop/wait in the finaliser doubles as the real assertion:
   shutdown must not hang on a dead pool. *)

let test_idle_connection_reaped () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let engine = Engine.create () in
  let reg = Telemetry.metrics (Engine.telemetry engine) in
  let config = { (base_config address engine) with Server.idle_timeout_ms = Some 80.0 } in
  with_server config (fun _srv ->
      let fd = Framing.connect address in
      let reader = Framing.reader fd in
      (* Send nothing: the server must reap us, observed as EOF. *)
      let t0 = Clock.now_ms () in
      Alcotest.(check bool) "reaped with EOF" true (Framing.read_line reader = None);
      Alcotest.(check bool) "after the idle deadline" true (Clock.elapsed_ms t0 >= 60.0);
      Unix.close fd;
      (match Metrics.find_counter reg "spp_connections_reaped_total" with
       | Some n -> Alcotest.(check int) "reap counted" 1 n
       | None -> Alcotest.fail "spp_connections_reaped_total not registered");
      (* A fresh, active connection still works. *)
      match Client.with_connection address (fun c -> Client.request c Protocol.Health) with
      | Protocol.Health_ok _ -> ()
      | other -> Alcotest.failf "server unhealthy after reap: %s"
                   (Protocol.encode_response other))

let test_overload_carries_retry_hint () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let engine = Engine.create () in
  with_faults "engine.solve=delay300" (fun () ->
      let config =
        { (base_config address engine) with Server.queue_depth = 1; retry_after_ms = 25 }
      in
      with_server config (fun _srv ->
          let send seed =
            let fd = Framing.connect address in
            Framing.write_line fd (Protocol.encode_request (solve_req seed));
            (fd, Framing.reader fd)
          in
          let read_reply (_, r) =
            match Framing.read_line r with
            | None -> Alcotest.fail "connection dropped"
            | Some line -> (
              match Protocol.decode_response line with
              | Ok resp -> resp
              | Error msg -> Alcotest.failf "undecodable reply %S: %s" line msg)
          in
          (* Occupy the single worker (the delay keeps it busy), then the
             single queue slot, then overflow. *)
          let a = send 41 in
          Thread.delay 0.1;
          let b = send 42 in
          Thread.delay 0.05;
          let c = send 43 in
          (match read_reply c with
           | Protocol.Error { code = Protocol.Overloaded; retry_after_ms; _ } ->
             Alcotest.(check (option int)) "hint attached" (Some 25) retry_after_ms
           | other ->
             Alcotest.failf "expected overloaded, got %s" (Protocol.encode_response other));
          (* The admitted requests complete normally behind the delays. *)
          List.iter
            (fun conn ->
              match read_reply conn with
              | Protocol.Solve_ok _ -> ()
              | other ->
                Alcotest.failf "admitted request failed: %s" (Protocol.encode_response other))
            [ a; b ];
          List.iter (fun (fd, _) -> Unix.close fd) [ a; b; c ]))

let test_retry_storm_converges () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let engine = Engine.create () in
  with_faults "engine.solve=delay100" (fun () ->
      let config =
        { (base_config address engine) with Server.queue_depth = 1; retry_after_ms = 20 }
      in
      with_server config (fun _srv ->
          (* Four clients hammer a worker=1/queue=1 server whose every
             solve is slowed 100 ms. Backoff-with-jitter plus the server's
             retry hint must get all of them through. *)
          let results = Array.make 4 None in
          let threads =
            List.init 4 (fun i ->
                Thread.create
                  (fun () ->
                    results.(i) <-
                      Some
                        (try
                           Ok (Client.call ~retries:15 ~seed:(1000 + i) address
                                 (solve_req (50 + i)))
                         with Client.Error { kind; attempts; _ } -> Error (kind, attempts)))
                  ())
          in
          List.iter Thread.join threads;
          Array.iteri
            (fun i r ->
              match r with
              | Some (Ok (Protocol.Solve_ok _)) -> ()
              | Some (Ok other) ->
                Alcotest.failf "client %d: unexpected reply %s" i
                  (Protocol.encode_response other)
              | Some (Error (kind, attempts)) ->
                Alcotest.failf "client %d: %s after %d attempts" i
                  (Client.kind_to_string kind) attempts
              | None -> Alcotest.failf "client %d: no result" i)
            results))

let test_client_times_out () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let engine = Engine.create () in
  with_faults "engine.solve=delay400" (fun () ->
      with_server (base_config address engine) (fun _srv ->
          match
            Client.with_connection ~timeout_ms:80.0 address (fun c ->
                Client.request c (solve_req 61))
          with
          | _ -> Alcotest.fail "request should have timed out"
          | exception Client.Error { kind = Client.Timed_out; attempts; _ } ->
            Alcotest.(check int) "single attempt" 1 attempts))

let test_connect_failure_typed () =
  let address = Framing.Unix_sock (temp_sock ()) in
  (match Client.connect address with
   | c ->
     Client.close c;
     Alcotest.fail "connect to a nonexistent socket succeeded"
   | exception Client.Error { kind = Client.Connect_failed; attempts; _ } ->
     Alcotest.(check int) "one attempt" 1 attempts);
  (* call retries transport failures and reports the total attempt count. *)
  match Client.call ~retries:2 ~backoff_base_ms:1.0 ~backoff_cap_ms:5.0 ~seed:3
          address Protocol.Health
  with
  | _ -> Alcotest.fail "call to a nonexistent socket succeeded"
  | exception Client.Error { kind = Client.Connect_failed; attempts; _ } ->
    Alcotest.(check int) "all attempts spent" 3 attempts

let () =
  Random.self_init ();
  Alcotest.run "spp_faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parsing and validation" `Quick test_spec_parsing;
          Alcotest.test_case "from environment" `Quick test_spec_from_env;
        ] );
      ( "hit",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_hit_disabled_noop;
          Alcotest.test_case "once fires once" `Quick test_hit_once;
          Alcotest.test_case "p=1 always fires" `Quick test_hit_certain;
          Alcotest.test_case "seeded and deterministic" `Quick test_hit_deterministic;
          Alcotest.test_case "delay sleeps" `Quick test_hit_delay;
        ] );
      ( "store",
        [
          Alcotest.test_case "crc32 known values" `Quick test_crc32_known_value;
          Alcotest.test_case "corruption detected" `Quick test_store_detects_corruption;
          Alcotest.test_case "legacy entry loads" `Quick test_store_legacy_entry_loads;
          Alcotest.test_case "read fault degrades to miss" `Quick
            test_store_read_fault_degrades;
          Alcotest.test_case "write fault degrades to no-persist" `Quick
            test_store_write_fault_degrades;
        ] );
      ( "server",
        [
          Alcotest.test_case "worker crash is supervised" `Quick
            test_worker_crash_supervised;
          Alcotest.test_case "dead pool answers, never hangs" `Quick
            test_pool_death_answers_not_hangs;
          Alcotest.test_case "idle connection reaped" `Quick test_idle_connection_reaped;
          Alcotest.test_case "overload carries retry hint" `Quick
            test_overload_carries_retry_hint;
          Alcotest.test_case "retry storm converges" `Quick test_retry_storm_converges;
          Alcotest.test_case "client timeout is typed" `Quick test_client_times_out;
          Alcotest.test_case "connect failure is typed" `Quick test_connect_failure_typed;
        ] );
    ]
