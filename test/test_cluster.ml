(* Tests for Spp_cluster: ring determinism across processes (golden MD5
   values), bounded key movement on membership changes, coalescing under
   a concurrent hammer, and an in-process proxy over live backends —
   routing, the warm cache, coalesced upstream solves, and failover past
   a killed backend. *)

module Prng = Spp_util.Prng
module Fault = Spp_util.Fault
module Io = Spp_core.Io
module I = Spp_core.Instance
module Validate = Spp_core.Validate
module Generators = Spp_workloads.Generators
module Engine = Spp_engine.Engine
module Metrics = Spp_obs.Metrics
module Framing = Spp_server.Framing
module Json = Spp_server.Json
module Protocol = Spp_server.Protocol
module Server = Spp_server.Server
module Client = Spp_server.Client
module Ring = Spp_cluster.Ring
module Coalesce = Spp_cluster.Coalesce
module Proxy = Spp_cluster.Proxy

(* ------------------------------------------------------------------ *)
(* Ring *)

(* Golden values pin the hash to "first 8 bytes of MD5, big-endian": a
   process restart, another machine, or an accidental reimplementation
   must route keys identically or backend caches go cold fleet-wide. *)
let test_ring_deterministic () =
  Alcotest.(check int64) "hash golden (spp)" 0x5566919ceb387560L (Ring.hash "spp");
  Alcotest.(check int64) "hash golden (empty)" 0xd41d8cd98f00b204L (Ring.hash "");
  let ring = Ring.create [ "a"; "b"; "c" ] in
  let routes = List.map (fun k -> Ring.route ring k) [ "spp"; "alpha"; "beta"; "gamma"; "delta" ] in
  Alcotest.(check (list (option string)))
    "route goldens"
    [ Some "b"; Some "a"; Some "c"; Some "a"; Some "b" ]
    routes;
  (* Layout is a pure function of the member set: insertion order and the
     add/remove path taken to reach it are irrelevant. *)
  let shuffled = Ring.create [ "c"; "a"; "b"; "a" ] in
  let via_add = Ring.remove (Ring.add (Ring.create [ "b"; "c"; "x" ]) "a") "x" in
  let keys = List.init 200 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter
    (fun k ->
      Alcotest.(check (option string)) "shuffled agrees" (Ring.route ring k) (Ring.route shuffled k);
      Alcotest.(check (option string)) "add/remove path agrees" (Ring.route ring k) (Ring.route via_add k))
    keys

let test_ring_empty_and_members () =
  let empty = Ring.create [] in
  Alcotest.(check (option string)) "empty routes nowhere" None (Ring.route empty "k");
  Alcotest.(check (list string)) "empty has no successors" [] (Ring.successors empty "k");
  let ring = Ring.create ~replicas:16 [ "b"; "a"; "c"; "b" ] in
  Alcotest.(check (list string)) "members sorted, deduped" [ "a"; "b"; "c" ] (Ring.members ring);
  Alcotest.(check int) "size" 3 (Ring.size ring);
  Alcotest.(check bool) "mem" true (Ring.mem ring "b");
  Alcotest.check_raises "replicas >= 1" (Invalid_argument "Ring.create: replicas must be >= 1")
    (fun () -> ignore (Ring.create ~replicas:0 [ "a" ]))

let test_ring_successors () =
  let members = List.init 5 (fun i -> Printf.sprintf "m%d" i) in
  let ring = Ring.create members in
  for i = 0 to 99 do
    let key = Printf.sprintf "key-%d" i in
    let succ = Ring.successors ring key in
    Alcotest.(check int) "covers every member" 5 (List.length succ);
    Alcotest.(check (list string)) "distinct" (List.sort_uniq compare succ |> List.sort compare)
      (List.sort compare succ);
    Alcotest.(check (option string)) "head is the route" (Ring.route ring key)
      (match succ with s :: _ -> Some s | [] -> None)
  done

(* The point of consistent hashing: a membership change of one node moves
   only that node's arcs. Leaving: every moved key was owned by the
   leaver. Joining: every moved key lands on the joiner. Either way the
   moved fraction is ~1/n; we assert <= 2/n to leave room for vnode
   variance without ever accepting a rehash-everything regression. *)
let test_ring_key_movement () =
  let n_keys = 2000 in
  let keys = List.init n_keys (fun i -> Printf.sprintf "instance-%d" i) in
  let members = List.init 5 (fun i -> Printf.sprintf "m%d" i) in
  let five = Ring.create members in
  let owner r k = Option.get (Ring.route r k) in
  (* m2 leaves *)
  let four = Ring.remove five "m2" in
  let moved =
    List.filter
      (fun k ->
        let before = owner five k and after = owner four k in
        if before <> after then begin
          Alcotest.(check string) "only the leaver's keys move" "m2" before;
          true
        end
        else false)
      keys
  in
  Alcotest.(check bool)
    (Printf.sprintf "leave moves <= 2/5 of keys (moved %d)" (List.length moved))
    true
    (List.length moved * 5 <= 2 * n_keys);
  Alcotest.(check bool) "leave moves > 0 keys" true (moved <> []);
  (* m5 joins *)
  let six = Ring.add five "m5" in
  let moved =
    List.filter
      (fun k ->
        let before = owner five k and after = owner six k in
        if before <> after then begin
          Alcotest.(check string) "moved keys land on the joiner" "m5" after;
          true
        end
        else false)
      keys
  in
  Alcotest.(check bool)
    (Printf.sprintf "join moves <= 2/6 of keys (moved %d)" (List.length moved))
    true
    (List.length moved * 6 <= 2 * n_keys);
  Alcotest.(check bool) "join moves > 0 keys" true (moved <> [])

(* ------------------------------------------------------------------ *)
(* Coalesce *)

let test_coalesce_hammer () =
  let c = Coalesce.create () in
  let computes = Atomic.make 0 in
  let led = Atomic.make 0 and joined = Atomic.make 0 in
  let work () =
    Atomic.incr computes;
    Unix.sleepf 0.2;
    42
  in
  let runner () =
    match Coalesce.run c "fp" work with
    | `Led (v, _) ->
      Alcotest.(check int) "leader value" 42 v;
      Atomic.incr led
    | `Joined v ->
      Alcotest.(check int) "joined value" 42 v;
      Atomic.incr joined
  in
  let leader = Thread.create runner () in
  Unix.sleepf 0.05;
  Alcotest.(check int) "flight open while leader runs" 1 (Coalesce.in_flight c);
  let followers = List.init 11 (fun _ -> Thread.create runner ()) in
  Thread.join leader;
  List.iter Thread.join followers;
  Alcotest.(check int) "exactly one compute" 1 (Atomic.get computes);
  Alcotest.(check int) "one leader" 1 (Atomic.get led);
  Alcotest.(check int) "eleven joiners" 11 (Atomic.get joined);
  Alcotest.(check int) "no flight left open" 0 (Coalesce.in_flight c);
  (* A request arriving after publication starts a fresh flight. *)
  (match Coalesce.run c "fp" (fun () -> Atomic.incr computes; 7) with
   | `Led (7, 0) -> ()
   | _ -> Alcotest.fail "post-publication request must lead its own flight");
  Alcotest.(check int) "fresh flight recomputes" 2 (Atomic.get computes)

exception Boom

let test_coalesce_leader_failure () =
  let c = Coalesce.create () in
  let outcomes = Array.make 6 `Pending in
  let runner i () =
    outcomes.(i) <-
      (try
         match Coalesce.run c "fp" (fun () -> Unix.sleepf 0.15; raise Boom) with
         | `Led _ | `Joined _ -> `Value
       with Boom -> `Boom)
  in
  let leader = Thread.create (runner 0) () in
  Unix.sleepf 0.05;
  let followers = List.init 5 (fun i -> Thread.create (runner (i + 1)) ()) in
  Thread.join leader;
  List.iter Thread.join followers;
  Array.iteri
    (fun i o ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %d saw the leader's exception" i)
        true (o = `Boom))
    outcomes;
  Alcotest.(check int) "failed flight removed" 0 (Coalesce.in_flight c)

(* ------------------------------------------------------------------ *)
(* Proxy over live in-process backends *)

let temp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spp_cluster_%s_%d_%d.sock" tag (Unix.getpid ()) (Random.int 1_000_000))

let instance_text seed n =
  let rng = Prng.create seed in
  Io.prec_to_string (Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape:`Series_parallel)

let check_solve_reply text (r : Protocol.solve_reply) =
  match Io.parse_string text with
  | Io.Release _ -> Alcotest.fail "test corpus is precedence-only"
  | Io.Prec inst -> (
    match Io.parse_placement ~rects:inst.I.Prec.rects r.Protocol.placement with
    | exception Failure msg -> Alcotest.failf "reply placement does not parse: %s" msg
    | p ->
      Alcotest.(check int)
        (Printf.sprintf "reply from %s validates" r.Protocol.source)
        0
        (List.length (Validate.check_prec inst p)))

let start_backend () =
  let sock = temp_sock "backend" in
  let address = Framing.Unix_sock sock in
  let srv =
    Server.start
      { Server.address; workers = 1; queue_depth = 16; engine = Engine.create ();
        default_budget_ms = Some 2000.0; solve_workers = Some 1;
        max_request_bytes = 1 lsl 16; slow_ms = None; idle_timeout_ms = None;
        read_timeout_ms = None; retry_after_ms = Server.default_retry_after_ms;
        max_worker_restarts = None; deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  (address, srv)

let with_cluster ?(backends = 2) ?(cache_capacity = 64) ?(failover = 1) ?(fail_after = 3)
    ?(probe_interval_ms = 200.0) f =
  let started = List.init backends (fun _ -> start_backend ()) in
  let registry = Metrics.create () in
  let cfg =
    { (Proxy.default_config ~address:(Framing.Unix_sock (temp_sock "proxy"))
         ~backends:(List.map fst started) ())
      with
      Proxy.cache_capacity; failover; fail_after; probe_interval_ms;
      upstream_timeout_ms = Some 2_000.0; registry; revive_after = 1; seed = 42 }
  in
  let px = Proxy.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Proxy.stop px;
      Proxy.wait px;
      List.iter
        (fun (_, srv) ->
          Server.stop srv;
          Server.wait srv)
        started)
    (fun () -> f cfg px (List.map snd started))

let solve_via ?algos addr text =
  Client.with_connection ~timeout_ms:5_000.0 addr (fun c ->
      Client.request c
        (Protocol.Solve
           { instance = text; budget_ms = None; deadline_ms = None; algos; trace_id = None }))

let test_proxy_routes_and_caches () =
  with_cluster (fun cfg _px _srvs ->
      let corpus = List.init 6 (fun i -> instance_text (100 + i) (5 + (i mod 3))) in
      List.iter
        (fun text ->
          match solve_via cfg.Proxy.address text with
          | Protocol.Solve_ok r ->
            check_solve_reply text r;
            Alcotest.(check bool) "first pass is not proxy-cached" true
              (r.Protocol.source <> "cache.proxy")
          | other ->
            Alcotest.failf "expected solve_ok, got %s" (Protocol.encode_response other))
        corpus;
      (* The same instances again: answered at the proxy, backends idle. *)
      List.iter
        (fun text ->
          match solve_via cfg.Proxy.address text with
          | Protocol.Solve_ok r ->
            check_solve_reply text r;
            Alcotest.(check string) "second pass hits the warm cache" "cache.proxy"
              r.Protocol.source
          | other ->
            Alcotest.failf "expected solve_ok, got %s" (Protocol.encode_response other))
        corpus;
      let hits = Metrics.find_counter cfg.Proxy.registry "spp_proxy_cache_hits_total" in
      Alcotest.(check (option int)) "cache hits counted" (Some 6) hits;
      (* Local ops: health and metrics answered by the proxy itself. *)
      (match Client.with_connection cfg.Proxy.address (fun c -> Client.request c Protocol.Health) with
       | Protocol.Health_ok h ->
         Alcotest.(check int) "health reports cache capacity" 64 h.Protocol.cache_capacity
       | _ -> Alcotest.fail "health must answer locally");
      match Client.with_connection cfg.Proxy.address (fun c -> Client.request c Protocol.Metrics) with
      | Protocol.Metrics_ok m ->
        Alcotest.(check int) "workers reports live backends" 2 m.Protocol.workers
      | _ -> Alcotest.fail "metrics must answer locally")

let test_proxy_coalesces_concurrent_duplicates () =
  (* Cache off so every request must go upstream; a 150 ms engine delay
     (deterministic fault injection) holds the leader's flight open long
     enough that the other threads must join it. The portfolio is pinned
     to the sub-millisecond [dc] member so the flight's duration is the
     injected delay, not solver runtime — the exact solvers can burn most
     of the 2 s budget on a slow machine and trip the upstream timeout. *)
  with_cluster ~backends:1 ~cache_capacity:0 (fun cfg _px _srvs ->
      (match Fault.configure "engine.solve=delay150" with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "fault spec: %s" msg);
      Fun.protect ~finally:Fault.clear (fun () ->
          let text = instance_text 7 6 in
          let replies = Array.make 8 None in
          let runner i () =
            replies.(i) <- Some (solve_via ~algos:[ "dc" ] cfg.Proxy.address text)
          in
          let leader = Thread.create (runner 0) () in
          Unix.sleepf 0.05;
          let rest = List.init 7 (fun i -> Thread.create (runner (i + 1)) ()) in
          Thread.join leader;
          List.iter Thread.join rest;
          let heights =
            Array.to_list replies
            |> List.map (function
                 | Some (Protocol.Solve_ok r) -> check_solve_reply text r; r.Protocol.height
                 | Some other -> Alcotest.failf "expected solve_ok, got %s" (Protocol.encode_response other)
                 | None -> Alcotest.fail "reply missing")
          in
          (match heights with
           | h :: rest -> List.iter (Alcotest.(check string) "all sharers get one answer" h) rest
           | [] -> assert false);
          let coalesced =
            Option.value ~default:0
              (Metrics.find_counter cfg.Proxy.registry "spp_proxy_coalesced_total")
          in
          Alcotest.(check bool)
            (Printf.sprintf "coalesced > 0 (got %d)" coalesced)
            true (coalesced > 0)))

let test_proxy_failover_past_dead_backend () =
  (* fail_after 1: the first transport error evicts; failover 1 lets the
     request complete on the ring successor in the same call. *)
  with_cluster ~backends:3 ~cache_capacity:0 ~fail_after:1 ~failover:2
    (fun cfg px srvs ->
      let corpus = List.init 8 (fun i -> instance_text (200 + i) 5) in
      (* Kill one backend outright. *)
      (match srvs with
       | victim :: _ ->
         Server.stop victim;
         Server.wait victim
       | [] -> assert false);
      List.iter
        (fun text ->
          match solve_via cfg.Proxy.address text with
          | Protocol.Solve_ok r -> check_solve_reply text r
          | other ->
            Alcotest.failf "expected solve_ok after failover, got %s"
              (Protocol.encode_response other))
        corpus;
      (* The dead backend's keys re-route: it is out of the ring (either
         from passive failures above or the next probe cycle). *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec settle () =
        if List.length (Proxy.live_backends px) <= 2 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "dead backend never left the ring"
        else (Thread.yield (); Unix.sleepf 0.05; settle ())
      in
      settle ();
      Alcotest.(check int) "ring settles on the survivors" 2
        (List.length (Proxy.live_backends px)))

let test_proxy_serves_from_cache_when_all_backends_die () =
  with_cluster ~backends:2 ~fail_after:1 (fun cfg _px srvs ->
      let text = instance_text 9 6 in
      (match solve_via cfg.Proxy.address text with
       | Protocol.Solve_ok r -> check_solve_reply text r
       | other -> Alcotest.failf "warmup failed: %s" (Protocol.encode_response other));
      List.iter
        (fun srv ->
          Server.stop srv;
          Server.wait srv)
        srvs;
      (* The snooped reply outlives the whole backend fleet. *)
      (match solve_via cfg.Proxy.address text with
       | Protocol.Solve_ok r ->
         Alcotest.(check string) "served from the proxy cache" "cache.proxy" r.Protocol.source
       | other -> Alcotest.failf "expected cache hit, got %s" (Protocol.encode_response other));
      (* A never-seen instance now has nowhere to go: a structured
         overloaded reply with a retry hint, not a hang or a reset. *)
      match solve_via cfg.Proxy.address (instance_text 10 5) with
      | Protocol.Error { code = Protocol.Overloaded; retry_after_ms; _ } ->
        Alcotest.(check bool) "carries a retry hint" true (retry_after_ms <> None)
      | other ->
        Alcotest.failf "expected overloaded, got %s" (Protocol.encode_response other))

(* End-to-end trace stitching: the proxy forwards the client's trace id
   on the upstream solve, the backend embeds its span tree in the reply,
   and the proxy grafts that tree under its own [upstream] span — so the
   client sees one trace, under one id, spanning both processes. *)
let test_proxy_stitches_backend_trace () =
  with_cluster ~backends:1 ~cache_capacity:4 (fun cfg _px _srvs ->
      let text = instance_text 55 6 in
      let trace_id = "feedfacecafef00d" in
      let solve () =
        Client.with_connection ~timeout_ms:5_000.0 cfg.Proxy.address (fun c ->
            Client.request c
              (Protocol.Solve
                 { instance = text; budget_ms = None; deadline_ms = None; algos = None;
                   trace_id = Some trace_id }))
      in
      let span_name j =
        match Json.member "name" j with Some (Json.String s) -> Some s | _ -> None
      in
      let children j =
        match Json.member "spans" j with Some (Json.List l) -> l | _ -> []
      in
      let find name l = List.find_opt (fun s -> span_name s = Some name) l in
      let start s =
        match Json.member "start_ms" s with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> -1.0
      in
      (match solve () with
       | Protocol.Solve_ok r ->
         check_solve_reply text r;
         Alcotest.(check (option string)) "trace id echoed" (Some trace_id)
           r.Protocol.trace_id;
         let tr =
           match r.Protocol.trace with
           | Some t -> t
           | None -> Alcotest.fail "traced reply must embed the stitched tree"
         in
         Alcotest.(check (option string)) "stitched tree carries the client's id"
           (Some trace_id)
           (Option.bind (Json.member "trace_id" tr) Json.get_string);
         let root =
           match Json.member "root" tr with
           | Some t -> t
           | None -> Alcotest.fail "stitched tree has no root"
         in
         Alcotest.(check (option string)) "root is the proxy" (Some "proxy")
           (span_name root);
         let kids = children root in
         Alcotest.(check bool) "proxy recorded a route span" true
           (find "route" kids <> None);
         let upstream =
           match find "upstream" kids with
           | Some u -> u
           | None -> Alcotest.fail "proxy recorded no upstream span"
         in
         let request =
           match find "request" (children upstream) with
           | Some r -> r
           | None -> Alcotest.fail "backend tree not grafted under upstream"
         in
         Alcotest.(check bool) "backend race span grafted" true
           (find "race" (children request) <> None);
         (* Grafting rebases the backend's relative offsets onto the
            proxy's timeline: the request starts no earlier than the
            upstream call that carried it. *)
         Alcotest.(check bool) "grafted start rebased onto proxy timeline" true
           (start request >= start upstream)
       | other -> Alcotest.failf "expected solve_ok, got %s" (Protocol.encode_response other));
      (* A cache hit replays the answer but never the stale backend tree:
         the reply's trace is the proxy's own spans only. *)
      match solve () with
      | Protocol.Solve_ok r ->
        Alcotest.(check string) "second pass is proxy-cached" "cache.proxy"
          r.Protocol.source;
        let tr =
          match r.Protocol.trace with
          | Some t -> t
          | None -> Alcotest.fail "cached traced reply still embeds the proxy trace"
        in
        let root =
          match Json.member "root" tr with
          | Some t -> t
          | None -> Alcotest.fail "cached trace has no root"
        in
        Alcotest.(check bool) "no upstream span on a cache hit" true
          (find "upstream" (children root) = None)
      | other -> Alcotest.failf "expected solve_ok, got %s" (Protocol.encode_response other))

(* ------------------------------------------------------------------ *)
(* Breaker: the full state machine under the frozen clock — no sleeps. *)

module Breaker = Spp_cluster.Breaker
module Clock = Spp_util.Clock

let with_frozen_clock f =
  Clock.freeze ();
  Fun.protect ~finally:Clock.thaw f

let test_breaker_trips_within_window () =
  let b = Breaker.create ~window:8 ~threshold:5 ~cooldown_ms:1000.0 () in
  Alcotest.(check string) "starts closed" "closed" (Breaker.state_to_string (Breaker.state b));
  (* Failures interleaved with successes — the exact pattern consecutive-
     streak health counters are blind to. 4 failures in the window: still
     closed; the 5th trips it. *)
  List.iter
    (fun ok -> Breaker.record b ~ok)
    [ false; true; false; true; false; true; false ];
  Alcotest.(check bool) "4-of-8 stays closed" true (Breaker.allow b);
  Breaker.record b ~ok:false;
  Alcotest.(check string) "5-of-8 opens" "open" (Breaker.state_to_string (Breaker.state b));
  Alcotest.(check bool) "open refuses" false (Breaker.allow b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check (float 0.0)) "gauge encodes open" 2.0 (Breaker.state_value b)

let test_breaker_cooldown_and_probe () =
  with_frozen_clock (fun () ->
      let b = Breaker.create ~window:4 ~threshold:2 ~cooldown_ms:500.0 () in
      Breaker.record b ~ok:false;
      Breaker.record b ~ok:false;
      Alcotest.(check bool) "tripped" false (Breaker.allow b);
      (* Outcomes recorded while open are stragglers from the pre-trip
         era: they must not change state or consume the probe. *)
      Breaker.record b ~ok:true;
      Alcotest.(check string) "straggler ignored" "open"
        (Breaker.state_to_string (Breaker.state b));
      ignore (Clock.advance 499.0);
      Alcotest.(check bool) "still cooling" false (Breaker.allow b);
      ignore (Clock.advance 1.0);
      (* Cooldown over: exactly one caller gets the half-open probe. *)
      Alcotest.(check bool) "probe granted" true (Breaker.allow b);
      Alcotest.(check (float 0.0)) "gauge encodes half-open" 1.0 (Breaker.state_value b);
      Alcotest.(check bool) "second caller refused while probing" false (Breaker.allow b);
      (* Probe fails: back to open, cooldown restarts from now. *)
      Breaker.record b ~ok:false;
      Alcotest.(check bool) "reopened" false (Breaker.allow b);
      Alcotest.(check int) "second trip counted" 2 (Breaker.trips b);
      ignore (Clock.advance 500.0);
      Alcotest.(check bool) "second probe granted" true (Breaker.allow b);
      (* Probe succeeds: closed with a clean window — the next single
         failure must not re-trip off stale history. *)
      Breaker.record b ~ok:true;
      Alcotest.(check string) "probe ok closes" "closed"
        (Breaker.state_to_string (Breaker.state b));
      Breaker.record b ~ok:false;
      Alcotest.(check string) "window was reset" "closed"
        (Breaker.state_to_string (Breaker.state b)))

let test_breaker_create_guards () =
  List.iter
    (fun mk ->
      match mk () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad breaker config accepted")
    [ (fun () -> Breaker.create ~window:0 ());
      (fun () -> Breaker.create ~window:4 ~threshold:0 ());
      (fun () -> Breaker.create ~window:4 ~threshold:5 ());
      (fun () -> Breaker.create ~cooldown_ms:0.0 ()) ]

(* ------------------------------------------------------------------ *)
(* Hedging: a slow backend loses the race to its ring successor. *)

module Fingerprint = Spp_engine.Fingerprint

(* A line relay in front of a real backend that stalls every request by
   [delay_ms] before forwarding — "a slow backend" built from a fast
   one, without touching the process-global fault registry. *)
type slow_gateway = { gw_addr : Framing.address; gw_listener : Unix.file_descr }

let start_slow_gateway ~delay_ms target =
  let sock = temp_sock "slowgw" in
  let addr = Framing.Unix_sock sock in
  let listener = Framing.listen addr in
  let relay client =
    let upstream = Framing.connect target in
    let from_client = Framing.reader client and from_backend = Framing.reader upstream in
    let rec pump () =
      match Framing.read_line from_client with
      | None -> ()
      | Some line ->
        Thread.delay (delay_ms /. 1000.0);
        Framing.write_line upstream line;
        (match Framing.read_line from_backend with
         | None -> ()
         | Some reply ->
           Framing.write_line client reply;
           pump ())
    in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close client with Unix.Unix_error _ -> ());
        try Unix.close upstream with Unix.Unix_error _ -> ())
      pump
  in
  let _acceptor =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept listener with
          | client, _ ->
            ignore (Thread.create (fun () -> try relay client with _ -> ()) ());
            loop ()
          | exception Unix.Unix_error _ -> ()  (* listener closed: drain *)
        in
        loop ())
      ()
  in
  { gw_addr = addr; gw_listener = listener }

let stop_slow_gateway gw = try Unix.close gw.gw_listener with Unix.Unix_error _ -> ()

(* An instance whose fingerprint routes to [want] first on the same ring
   the proxy will build — so the slow gateway is deterministically the
   leader and the fast backend the hedge target. *)
let instance_routed_to ~names ~want =
  let ring = Ring.create names in
  let rec hunt seed =
    if seed > 10_000 then Alcotest.fail "no instance routed to the slow backend"
    else
      let text = instance_text seed 6 in
      let fp = Fingerprint.parsed (Io.parse_string text) in
      match Ring.successors ring fp with
      | first :: _ when first = want -> text
      | _ -> hunt (seed + 1)
  in
  hunt 9_000

let test_proxy_hedge_beats_slow_backend () =
  let fast_addr, fast_srv = start_backend () in
  let slow_addr, slow_srv = start_backend () in
  let gw = start_slow_gateway ~delay_ms:400.0 slow_addr in
  let registry = Metrics.create () in
  let backends = [ gw.gw_addr; fast_addr ] in
  let cfg =
    { (Proxy.default_config ~address:(Framing.Unix_sock (temp_sock "proxy")) ~backends ())
      with
      Proxy.failover = 1; probe_interval_ms = 10_000.0; registry; seed = 42;
      upstream_timeout_ms = Some 5_000.0; hedge = Proxy.Hedge_fixed 40.0 }
  in
  let px = Proxy.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Proxy.stop px;
      Proxy.wait px;
      stop_slow_gateway gw;
      List.iter
        (fun srv ->
          Server.stop srv;
          Server.wait srv)
        [ fast_srv; slow_srv ])
    (fun () ->
      let text =
        instance_routed_to
          ~names:(List.map Framing.address_to_string backends)
          ~want:(Framing.address_to_string gw.gw_addr)
      in
      let t0 = Spp_util.Clock.now_ms () in
      (match solve_via cfg.Proxy.address text with
       | Protocol.Solve_ok reply ->
         check_solve_reply text reply;
         (* The gateway stalls 400 ms; a winning hedge answers well
            before the stalled leader possibly could. *)
         Alcotest.(check bool) "reply beat the stall" true
           (Spp_util.Clock.elapsed_ms t0 < 390.0)
       | other -> Alcotest.failf "expected Solve_ok, got %s" (Protocol.encode_response other));
      Alcotest.(check bool) "a hedge was fired" true
        (match Metrics.find_counter registry "spp_hedges_total" with
         | Some n -> n >= 1
         | None -> false);
      Alcotest.(check bool) "the hedge won" true
        (match Metrics.find_counter registry "spp_hedge_wins_total" with
         | Some n -> n >= 1
         | None -> false))

(* ------------------------------------------------------------------ *)
(* Deadlines at the proxy *)

let test_proxy_deadline_fastfail_but_cache_serves () =
  with_cluster (fun cfg _px _srvs ->
      let text = instance_text 321 6 in
      (* No time left and nothing cached: fast-fail without an upstream
         call. *)
      (match
         Client.with_connection ~timeout_ms:5_000.0 cfg.Proxy.address (fun c ->
             Client.request c
               (Protocol.Solve
                  { instance = text; budget_ms = None; deadline_ms = Some 0.0; algos = None;
                    trace_id = None }))
       with
       | Protocol.Error { code = Protocol.Wont_make_it; retry_after_ms; _ } ->
         Alcotest.(check bool) "carries a retry hint" true (retry_after_ms <> None)
       | other ->
         Alcotest.failf "expected wont_make_it, got %s" (Protocol.encode_response other));
      Alcotest.(check (option int)) "counted as a proxy deadline reject" (Some 1)
        (Metrics.find_counter cfg.Proxy.registry
           ~labels:[ ("stage", "proxy") ]
           "spp_deadline_rejects_total");
      (* Warm the cache with an unbounded solve, then repeat the
         impossible deadline: the answer in hand is served anyway. *)
      (match solve_via cfg.Proxy.address text with
       | Protocol.Solve_ok r -> check_solve_reply text r
       | other -> Alcotest.failf "warming solve failed: %s" (Protocol.encode_response other));
      match
        Client.with_connection ~timeout_ms:5_000.0 cfg.Proxy.address (fun c ->
            Client.request c
              (Protocol.Solve
                 { instance = text; budget_ms = None; deadline_ms = Some 0.0; algos = None;
                   trace_id = None }))
      with
      | Protocol.Solve_ok r ->
        Alcotest.(check string) "cache hit beats wont_make_it" "cache.proxy"
          r.Protocol.source
      | other -> Alcotest.failf "expected cached Solve_ok, got %s"
                   (Protocol.encode_response other))

let () =
  Random.self_init ();
  Alcotest.run "spp_cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic across processes" `Quick test_ring_deterministic;
          Alcotest.test_case "empty ring and membership" `Quick test_ring_empty_and_members;
          Alcotest.test_case "successors cover the ring" `Quick test_ring_successors;
          Alcotest.test_case "bounded key movement on leave/join" `Quick
            test_ring_key_movement;
        ] );
      ( "coalesce",
        [
          Alcotest.test_case "concurrent hammer shares one flight" `Quick
            test_coalesce_hammer;
          Alcotest.test_case "leader failure propagates to joiners" `Quick
            test_coalesce_leader_failure;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "routes, validates, and warm-caches" `Quick
            test_proxy_routes_and_caches;
          Alcotest.test_case "coalesces concurrent duplicates" `Quick
            test_proxy_coalesces_concurrent_duplicates;
          Alcotest.test_case "fails over past a dead backend" `Quick
            test_proxy_failover_past_dead_backend;
          Alcotest.test_case "cache outlives every backend" `Quick
            test_proxy_serves_from_cache_when_all_backends_die;
          Alcotest.test_case "stitches the backend trace under one id" `Quick
            test_proxy_stitches_backend_trace;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips on failures within the window" `Quick
            test_breaker_trips_within_window;
          Alcotest.test_case "cooldown, half-open probe, reset" `Quick
            test_breaker_cooldown_and_probe;
          Alcotest.test_case "create guards" `Quick test_breaker_create_guards;
        ] );
      ( "hedge",
        [
          Alcotest.test_case "hedge beats a slow backend" `Quick
            test_proxy_hedge_beats_slow_backend;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "fast-fail, but a warm cache still serves" `Quick
            test_proxy_deadline_fastfail_but_cache_serves;
        ] );
    ]
