(* Tests for Spp_engine: fingerprint canonicality, LRU accounting,
   telemetry export, cancellation tokens, the disk store, and the engine's
   caching / budget / never-worse-than-members guarantees. *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Prng = Spp_util.Prng
module Cancel = Spp_util.Cancel
module I = Spp_core.Instance
module Io = Spp_core.Io
module Validate = Spp_core.Validate
module Generators = Spp_workloads.Generators
module Fingerprint = Spp_engine.Fingerprint
module Lru = Spp_engine.Lru
module Telemetry = Spp_engine.Telemetry
module Portfolio = Spp_engine.Portfolio
module Store = Spp_engine.Store
module Engine = Spp_engine.Engine

let q = Q.of_ints

let random_prec seed n =
  let rng = Prng.create seed in
  Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape:`Series_parallel

let random_release seed n =
  let rng = Prng.create seed in
  Generators.random_release rng ~n ~k:2 ~h_den:4 ~r_den:2 ~load:1.3

let check_valid parsed p =
  let violations =
    match parsed with
    | Io.Prec inst -> Validate.check_prec inst p
    | Io.Release inst -> Validate.check_release inst p
  in
  Alcotest.(check int) "no violations" 0 (List.length violations)

(* ------------------------------------------------------------------ *)
(* Fingerprint *)

let test_fingerprint_order_independent () =
  let r0 = Rect.make ~id:0 ~w:(q 1 2) ~h:Q.one in
  let r1 = Rect.make ~id:1 ~w:(q 1 4) ~h:(q 3 4) in
  let dag = Spp_dag.Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[ (0, 1) ] in
  let a = I.Prec.make [ r0; r1 ] dag in
  let b = I.Prec.make [ r1; r0 ] dag in
  Alcotest.(check string) "rect order ignored" (Fingerprint.prec a) (Fingerprint.prec b)

let test_fingerprint_distinguishes () =
  let a = random_prec 1 10 and b = random_prec 2 10 in
  if Fingerprint.prec a = Fingerprint.prec b then Alcotest.fail "distinct instances collide";
  (* An edge flip must change the fingerprint even with identical rects. *)
  let r0 = Rect.make ~id:0 ~w:(q 1 2) ~h:Q.one in
  let r1 = Rect.make ~id:1 ~w:(q 1 4) ~h:Q.one in
  let with_edge =
    I.Prec.make [ r0; r1 ] (Spp_dag.Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[ (0, 1) ])
  in
  let without = I.Prec.unconstrained [ r0; r1 ] in
  if Fingerprint.prec with_edge = Fingerprint.prec without then
    Alcotest.fail "edge set not fingerprinted"

let test_fingerprint_variant_tagged () =
  (* A release instance never collides with a precedence instance, even
     with identical rectangles. *)
  let rect = Rect.make ~id:0 ~w:Q.one ~h:Q.one in
  let p = I.Prec.unconstrained [ rect ] in
  let r = I.Release.make ~k:1 [ { I.Release.rect; release = Q.zero } ] in
  if Fingerprint.prec p = Fingerprint.release r then Alcotest.fail "variants collide"

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_hit_miss_evict () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss" None (Lru.find c "a");
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  (* "b" is now least recently used; adding "c" evicts it. *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 3 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "size" 2 s.Lru.size

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "a" 9;
  Alcotest.(check (option int)) "replaced" (Some 9) (Lru.find c "a");
  Alcotest.(check int) "no eviction" 0 (Lru.stats c).Lru.evictions;
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_telemetry_counters_events () =
  let tm = Telemetry.create () in
  Telemetry.incr tm "x";
  Telemetry.incr ~by:2 tm "x";
  Telemetry.incr tm "y";
  Alcotest.(check int) "counter x" 3 (Telemetry.counter tm "x");
  Alcotest.(check int) "absent counter" 0 (Telemetry.counter tm "z");
  Telemetry.record tm ~name:"ev" [ ("s", Telemetry.String "a\"b"); ("n", Telemetry.Int 7) ];
  let v = Telemetry.time tm ~name:"timed" ~fields:[] (fun () -> 42) in
  Alcotest.(check int) "time returns" 42 v;
  let events = Telemetry.events tm in
  Alcotest.(check int) "two events" 2 (List.length events);
  Alcotest.(check (list string)) "chronological" [ "ev"; "timed" ]
    (List.map (fun (e : Telemetry.event) -> e.Telemetry.name) events);
  let json = Telemetry.to_json_lines tm in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub json i nn = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "json contains %s" needle) true (nn = 0 || go 0)
  in
  contains "{\"counter\":\"x\",\"value\":3}";
  contains "\"event\":\"timed\"";
  contains "\"outcome\":\"ok\"";
  contains "\\\"";  (* the quote in "a\"b" is escaped *)
  ()

(* ------------------------------------------------------------------ *)
(* Cancel *)

let test_cancel_tokens () =
  Alcotest.(check bool) "never not cancelled" false (Cancel.cancelled Cancel.never);
  Cancel.check Cancel.never;
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh" false (Cancel.cancelled t);
  Cancel.cancel t;
  Alcotest.(check bool) "tripped" true (Cancel.cancelled t);
  Alcotest.check_raises "check raises" Cancel.Cancelled (fun () -> Cancel.check t);
  let zero = Cancel.with_deadline_ms 0.0 in
  Alcotest.(check bool) "zero deadline trips immediately" true (Cancel.cancelled zero);
  let far = Cancel.with_deadline_ms 60_000.0 in
  Alcotest.(check bool) "far deadline not tripped" false (Cancel.cancelled far)

let test_cancel_stops_exact_search () =
  let inst = random_prec 3 10 in
  let t = Cancel.create () in
  Cancel.cancel t;
  Alcotest.check_raises "order search aborts" Cancel.Cancelled (fun () ->
      ignore (Spp_exact.Order_search.best_prec ~cancel:t inst))

(* ------------------------------------------------------------------ *)
(* Store *)

let temp_store_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spp_store_test_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))

let test_store_roundtrip () =
  let dir = temp_store_dir () in
  let store = Store.create ~dir () in
  let inst = random_prec 7 8 in
  let p = Spp_core.List_schedule.prec inst in
  let fingerprint = Fingerprint.prec inst in
  Alcotest.(check bool) "initially absent" true
    (Store.find store ~rects:inst.rects ~fingerprint = None);
  Store.add store ~fingerprint ~winner:"ls" p;
  (match Store.find store ~rects:inst.rects ~fingerprint with
   | None -> Alcotest.fail "entry not found after add"
   | Some (winner, p') ->
     Alcotest.(check string) "winner" "ls" winner;
     Alcotest.(check string) "bit-identical placement"
       (Io.placement_to_string p) (Io.placement_to_string p'));
  (* A corrupt entry degrades to a miss, never an exception. *)
  Out_channel.with_open_text (Filename.concat dir (fingerprint ^ ".sol")) (fun oc ->
      Out_channel.output_string oc "garbage\n");
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Store.find store ~rects:inst.rects ~fingerprint = None)

let test_store_bounded () =
  let dir = temp_store_dir () in
  (* A pre-existing orphaned temp file (crashed writer) is cleaned up. *)
  let orphan = Filename.concat dir "deadbeef.sol.tmp.1234.0" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Out_channel.with_open_text orphan (fun oc -> Out_channel.output_string oc "partial");
  let store = Store.create ~max_entries:2 ~dir () in
  Alcotest.(check bool) "orphan tmp removed" false (Sys.file_exists orphan);
  Alcotest.(check int) "starts empty" 0 (Store.length store);
  let add_inst seed age =
    let inst = random_prec seed 6 in
    let fingerprint = Fingerprint.prec inst in
    Store.add store ~fingerprint ~winner:"ls" (Spp_core.List_schedule.prec inst);
    (* Prune order is by file mtime; pin it so "oldest" is unambiguous even
       on coarse-granularity filesystems. *)
    let path = Filename.concat dir (fingerprint ^ ".sol") in
    let t = Unix.gettimeofday () -. age in
    Unix.utimes path t t;
    (inst, fingerprint)
  in
  let _, fp_old = add_inst 21 300.0 in
  let _, fp_mid = add_inst 22 200.0 in
  Alcotest.(check int) "at cap" 2 (Store.length store);
  let _, fp_new = add_inst 23 100.0 in
  Alcotest.(check int) "pruned back to cap" 2 (Store.length store);
  Alcotest.(check bool) "oldest entry evicted" false
    (Sys.file_exists (Filename.concat dir (fp_old ^ ".sol")));
  Alcotest.(check bool) "newer entries survive" true
    (Sys.file_exists (Filename.concat dir (fp_mid ^ ".sol"))
     && Sys.file_exists (Filename.concat dir (fp_new ^ ".sol")));
  (* Re-adding an existing fingerprint replaces in place: no growth. *)
  let inst = random_prec 23 6 in
  Store.add store ~fingerprint:fp_new ~winner:"dc" (Spp_core.List_schedule.prec inst);
  Alcotest.(check int) "replace does not grow" 2 (Store.length store);
  Alcotest.check_raises "max_entries must be positive"
    (Invalid_argument "Store.create: max_entries must be >= 1") (fun () ->
      ignore (Store.create ~max_entries:0 ~dir ()))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_cache_bit_identical () =
  let engine = Engine.create () in
  let parsed = Io.Prec (random_prec 11 16) in
  let a = Engine.solve engine parsed in
  let b = Engine.solve engine parsed in
  Alcotest.(check bool) "first computed" true (a.Engine.source = Engine.Computed);
  Alcotest.(check bool) "second from memory cache" true (b.Engine.source = Engine.Memory_cache);
  Alcotest.(check string) "bit-identical packing"
    (Io.placement_to_string a.Engine.placement)
    (Io.placement_to_string b.Engine.placement);
  Alcotest.(check string) "same winner" a.Engine.winner b.Engine.winner;
  let tm = Engine.telemetry engine in
  Alcotest.(check int) "one cache hit" 1 (Telemetry.counter tm "cache.hit");
  Alcotest.(check int) "one cache miss" 1 (Telemetry.counter tm "cache.miss")

let test_engine_zero_budget_valid () =
  (* A zero budget trips every cancellation point immediately; the engine
     must still return a valid packing via its anytime incumbent. *)
  let parsed = Io.Prec (random_prec 13 9) in
  let engine = Engine.create () in
  (* Exact members poll the token, so with only those racing the
     pre-seeded incumbent list schedule must answer. *)
  let res = Engine.solve ~budget_ms:0.0 ~algos:[ "bb"; "order" ] engine parsed in
  check_valid parsed res.Engine.placement;
  Alcotest.(check string) "incumbent won" "ls(incumbent)" res.Engine.winner;
  Alcotest.(check bool) "members timed out" true
    (List.exists
       (fun (o : Engine.outcome) -> o.Engine.status = Engine.Timed_out)
       res.Engine.outcomes);
  Alcotest.(check bool) "reply is degraded" true res.Engine.degraded;
  Alcotest.(check bool) "gap is nonnegative" true
    (Q.compare res.Engine.gap Q.zero >= 0);
  (* Degraded answers stay out of the cache: the same instance solved
     again with a real budget recomputes and is not degraded. *)
  let res = Engine.solve ~budget_ms:2000.0 ~algos:[ "ls" ] engine parsed in
  check_valid parsed res.Engine.placement;
  Alcotest.(check bool) "roomier retry not degraded" false res.Engine.degraded;
  Alcotest.(check string) "retry recomputed, not replayed" "computed"
    (match res.Engine.source with
     | Engine.Computed -> "computed"
     | Engine.Memory_cache -> "cache.memory"
     | Engine.Disk_cache -> "cache.disk");
  (* Default portfolio under zero budget is also always valid. *)
  let res = Engine.solve ~budget_ms:0.0 engine parsed in
  check_valid parsed res.Engine.placement

let test_engine_zero_budget_release () =
  let parsed = Io.Release (random_release 5 8) in
  let engine = Engine.create () in
  let res = Engine.solve ~budget_ms:0.0 engine parsed in
  check_valid parsed res.Engine.placement

let test_engine_never_worse_than_members () =
  List.iter
    (fun seed ->
      let parsed = Io.Prec (random_prec seed 8) in
      let engine = Engine.create () in
      let res = Engine.solve engine parsed in
      check_valid parsed res.Engine.placement;
      List.iter
        (fun (spec : Portfolio.spec) ->
          let p = spec.Portfolio.run ~cancel:Cancel.never parsed in
          let h = Placement.height p in
          if Q.compare res.Engine.height h > 0 then
            Alcotest.failf "portfolio (%s) worse than member %s on seed %d"
              (Q.to_string res.Engine.height) spec.Portfolio.name seed)
        (Portfolio.defaults parsed))
    [ 1; 2; 3; 4; 5 ]

let test_engine_explicit_algos () =
  let parsed = Io.Prec (random_prec 21 12) in
  let engine = Engine.create () in
  (* "aptas" does not apply to a precedence instance: reported as skipped,
     not raced; "dc" still wins. *)
  let res = Engine.solve ~algos:[ "dc"; "aptas" ] engine parsed in
  Alcotest.(check string) "dc wins" "dc" res.Engine.winner;
  Alcotest.(check bool) "aptas skipped" true
    (List.exists
       (fun (o : Engine.outcome) ->
         o.Engine.solver = "aptas"
         && match o.Engine.status with Engine.Skipped _ -> true | _ -> false)
       res.Engine.outcomes);
  (* A fresh instance, so the lookup cannot be short-circuited by a cache
     hit before the algorithm list is validated. *)
  let fresh = Io.Prec (random_prec 22 12) in
  Alcotest.check_raises "unknown algo rejected"
    (Invalid_argument
       "unknown algorithm \"nope\" (known: dc, f, pff, wave, bb, order, aptas, shelf, ls)")
    (fun () -> ignore (Engine.solve ~algos:[ "nope" ] engine fresh))

let test_engine_disk_store () =
  let dir = temp_store_dir () in
  let parsed = Io.Prec (random_prec 31 10) in
  let first = Engine.create ~store_dir:dir () in
  let a = Engine.solve first parsed in
  (* A fresh engine (fresh memory cache) sharing the directory hits disk. *)
  let second = Engine.create ~store_dir:dir () in
  let b = Engine.solve second parsed in
  Alcotest.(check bool) "disk hit" true (b.Engine.source = Engine.Disk_cache);
  Alcotest.(check string) "identical packing across processes"
    (Io.placement_to_string a.Engine.placement)
    (Io.placement_to_string b.Engine.placement);
  Alcotest.(check int) "disk hit counter" 1
    (Telemetry.counter (Engine.telemetry second) "cache.hit.disk")

let () =
  Alcotest.run "spp_engine"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "order independent" `Quick test_fingerprint_order_independent;
          Alcotest.test_case "distinguishes instances" `Quick test_fingerprint_distinguishes;
          Alcotest.test_case "variant tagged" `Quick test_fingerprint_variant_tagged;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hit/miss/evict" `Quick test_lru_hit_miss_evict;
          Alcotest.test_case "replace" `Quick test_lru_replace;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "counters and events" `Quick test_telemetry_counters_events ] );
      ( "cancel",
        [
          Alcotest.test_case "tokens" `Quick test_cancel_tokens;
          Alcotest.test_case "stops exact search" `Quick test_cancel_stops_exact_search;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "bounded with mtime pruning" `Quick test_store_bounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache returns bit-identical packing" `Quick
            test_engine_cache_bit_identical;
          Alcotest.test_case "zero budget still valid (prec)" `Quick test_engine_zero_budget_valid;
          Alcotest.test_case "zero budget still valid (release)" `Quick
            test_engine_zero_budget_release;
          Alcotest.test_case "never worse than members" `Quick
            test_engine_never_worse_than_members;
          Alcotest.test_case "explicit algos" `Quick test_engine_explicit_algos;
          Alcotest.test_case "disk store" `Quick test_engine_disk_store;
        ] );
    ]
