(* Tests for Spp_core: instances, lower bounds, the validators, DC
   (Theorem 2.3), the uniform-height algorithms (Theorem 2.6 / Lemma 2.5),
   the APTAS reductions (Lemmas 3.1-3.2), the configuration LP (Lemma 3.3),
   and the end-to-end APTAS accounting (Lemma 3.4 / Theorem 3.5). *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module I = Spp_core.Instance
module LB = Spp_core.Lower_bounds
module Validate = Spp_core.Validate
module Dc = Spp_core.Dc
module Uniform = Spp_core.Uniform
module List_schedule = Spp_core.List_schedule
module Grouping = Spp_core.Grouping
module Config_lp = Spp_core.Config_lp
module Aptas = Spp_core.Aptas

let q = Q.of_ints
let rect id wn wd hn hd = Rect.make ~id ~w:(q wn wd) ~h:(q hn hd)

let prec rects edges =
  I.Prec.make rects (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges)

(* A diamond instance used throughout: 0 -> {1,2} -> 3, assorted sizes. *)
let diamond_inst () =
  prec
    [ rect 0 1 2 1 1; rect 1 1 4 2 1; rect 2 1 2 1 2; rect 3 1 1 1 1 ]
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]

(* Random precedence instances: lower-triangular random edges, quantised
   dims. *)
let prec_gen =
  QCheck.make
    ~print:(fun (inst : I.Prec.t) -> Printf.sprintf "n=%d" (I.Prec.size inst))
    QCheck.Gen.(
      let* n = int_range 1 24 in
      let* specs = list_repeat n (pair (int_range 1 8) (int_range 1 8)) in
      let rects = List.mapi (fun i (wn, hn) -> Rect.make ~id:i ~w:(q wn 8) ~h:(q hn 4)) specs in
      let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
      let* keep = list_repeat (List.length all) (frequency [ (3, return false); (1, return true) ]) in
      let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
      return (prec rects edges))

let uniform_gen =
  QCheck.make
    ~print:(fun (inst : I.Prec.t) -> Printf.sprintf "n=%d" (I.Prec.size inst))
    QCheck.Gen.(
      let* n = int_range 1 20 in
      let* widths = list_repeat n (int_range 1 8) in
      let rects = List.mapi (fun i wn -> Rect.make ~id:i ~w:(q wn 8) ~h:Q.one) widths in
      let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
      let* keep = list_repeat (List.length all) (frequency [ (3, return false); (1, return true) ]) in
      let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
      return (prec rects edges))

(* ------------------------------------------------------------------ *)
(* Instances *)

let test_prec_instance_validation () =
  Alcotest.check_raises "node mismatch"
    (Invalid_argument "Prec.make: DAG nodes must be exactly the rect ids") (fun () ->
      ignore (I.Prec.make [ rect 0 1 2 1 1 ] (Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[])));
  let inst = diamond_inst () in
  Alcotest.(check int) "size" 4 (I.Prec.size inst);
  Alcotest.(check string) "height_of" "2" (Q.to_string (I.Prec.height_of inst 1));
  let sub = I.Prec.induced inst (fun id -> id <> 0) in
  Alcotest.(check int) "induced size" 3 (I.Prec.size sub);
  Alcotest.(check int) "induced edges" 2 (Dag.num_edges sub.dag)

let test_release_instance_validation () =
  let mk h w rel = { I.Release.rect = Rect.make ~id:0 ~w ~h; release = rel } in
  Alcotest.check_raises "height cap" (Invalid_argument "Release.make: rect 0 height exceeds 1")
    (fun () -> ignore (I.Release.make ~k:4 [ mk Q.two Q.one Q.zero ]));
  Alcotest.check_raises "width floor" (Invalid_argument "Release.make: rect 0 narrower than 1/K")
    (fun () -> ignore (I.Release.make ~k:4 [ mk Q.one (q 1 8) Q.zero ]));
  Alcotest.check_raises "negative release"
    (Invalid_argument "Release.make: rect 0 has negative release") (fun () ->
      ignore (I.Release.make ~k:4 [ mk Q.one Q.one Q.minus_one ]));
  let inst = I.Release.make ~k:4 [ mk Q.one (q 1 2) (q 3 2) ] in
  Alcotest.(check string) "release lookup" "3/2" (Q.to_string (I.Release.release inst 0));
  Alcotest.(check string) "max release" "3/2" (Q.to_string (I.Release.max_release inst))

(* ------------------------------------------------------------------ *)
(* Lower bounds *)

let test_lower_bounds_diamond () =
  let inst = diamond_inst () in
  (* AREA = 1/2 + 1/2 + 1/4 + 1 = 9/4. F: F0=1, F1=3, F2=3/2, F3=4. *)
  Alcotest.(check string) "area" "9/4" (Q.to_string (LB.area inst));
  Alcotest.(check string) "F(1)" "3" (Q.to_string (LB.f_of inst 1));
  Alcotest.(check string) "F(3)" "4" (Q.to_string (LB.f_of inst 3));
  Alcotest.(check string) "critical path" "4" (Q.to_string (LB.critical_path inst));
  Alcotest.(check string) "prec bound" "4" (Q.to_string (LB.prec inst))

let test_lower_bounds_release () =
  let inst =
    I.Release.make ~k:2
      [
        { I.Release.rect = rect 0 1 2 1 1; release = Q.zero };
        { I.Release.rect = rect 1 1 1 1 2; release = q 5 1 };
      ]
  in
  (* max(r + h) = 5 + 1/2; area = 1. *)
  Alcotest.(check string) "release bound" "11/2" (Q.to_string (LB.release inst))

(* ------------------------------------------------------------------ *)
(* Validators (failure injection) *)

let test_validate_catches_violations () =
  let inst = prec [ rect 0 1 2 1 1; rect 1 1 2 1 1 ] [ (0, 1) ] in
  let at id x y = { Placement.rect = I.Prec.rect inst id; pos = { Placement.x; y } } in
  (* Valid: 1 strictly above 0. *)
  let ok = Placement.of_items [ at 0 Q.zero Q.zero; at 1 Q.zero Q.one ] in
  Alcotest.(check bool) "valid placement accepted" true (Validate.is_valid_prec inst ok);
  (* Precedence violation: side by side. *)
  let side = Placement.of_items [ at 0 Q.zero Q.zero; at 1 (q 1 2) Q.zero ] in
  (match Validate.check_prec inst side with
   | [ Validate.Precedence (0, 1) ] -> ()
   | _ -> Alcotest.fail "expected precedence violation");
  (* Missing rect. *)
  let missing = Placement.of_items [ at 0 Q.zero Q.zero ] in
  (match Validate.check_prec inst missing with
   | [ Validate.Missing_rect 1 ] -> ()
   | _ -> Alcotest.fail "expected missing rect");
  (* Extra rect. *)
  let extra =
    Placement.of_items
      [ at 0 Q.zero Q.zero; at 1 Q.zero Q.one;
        { Placement.rect = rect 7 1 4 1 4; pos = { Placement.x = q 1 2; y = Q.zero } } ]
  in
  Alcotest.(check bool) "extra rejected" false (Validate.is_valid_prec inst extra);
  (* Dimension tampering. *)
  let tampered =
    Placement.of_items
      [ { Placement.rect = rect 0 1 4 1 1; pos = { Placement.x = Q.zero; y = Q.zero } };
        at 1 Q.zero Q.one ]
  in
  (match Validate.check_prec inst tampered with
   | [ Validate.Dimension_changed 0 ] -> ()
   | _ -> Alcotest.fail "expected dimension change")

let test_validate_release_violations () =
  let inst =
    I.Release.make ~k:2 [ { I.Release.rect = rect 0 1 2 1 1; release = Q.one } ]
  in
  let at y = Placement.of_items [ { Placement.rect = rect 0 1 2 1 1; pos = { Placement.x = Q.zero; y } } ] in
  Alcotest.(check bool) "on time" true (Validate.is_valid_release inst (at Q.one));
  (match Validate.check_release inst (at (q 1 2)) with
   | [ Validate.Release 0 ] -> ()
   | _ -> Alcotest.fail "expected release violation")

(* ------------------------------------------------------------------ *)
(* DC (Theorem 2.3) *)

let test_dc_single_rect () =
  let inst = prec [ rect 0 1 2 3 4 ] [] in
  let p, stats = Dc.pack inst in
  Alcotest.(check bool) "valid" true (Validate.is_valid_prec inst p);
  Alcotest.(check string) "height" "3/4" (Q.to_string (Placement.height p));
  Alcotest.(check int) "one mid call" 1 stats.Dc.mid_calls

let test_dc_empty () =
  let inst = prec [] [] in
  let p, _ = Dc.pack inst in
  Alcotest.(check int) "empty" 0 (Placement.size p)

let test_dc_chain_is_tight () =
  (* A pure chain forces serial placement; DC must achieve exactly F. *)
  let rects = List.init 6 (fun i -> rect i 1 2 1 1) in
  let edges = List.init 5 (fun i -> (i, i + 1)) in
  let inst = prec rects edges in
  let p, _ = Dc.pack inst in
  Alcotest.(check bool) "valid" true (Validate.is_valid_prec inst p);
  Alcotest.(check string) "height = F = 6" "6" (Q.to_string (Placement.height p))

let test_dc_diamond () =
  let inst = diamond_inst () in
  let p, _ = Dc.pack inst in
  Alcotest.(check bool) "valid" true (Validate.is_valid_prec inst p)

let test_dc_split_diamond () =
  (* Diamond: F0=1, F1=3, F2=3/2, F3=4; H=4, half=2.
     0: F=1 <= 2 -> bot. 1: F=3 > 2, F-h=1 <= 2 -> mid.
     2: F=3/2 <= 2 -> bot. 3: F=4 > 2, F-h=3 > 2 -> top. *)
  let bot, mid, top = Dc.split (diamond_inst ()) in
  Alcotest.(check (list int)) "bot" [ 0; 2 ] bot;
  Alcotest.(check (list int)) "mid" [ 1 ] mid;
  Alcotest.(check (list int)) "top" [ 3 ] top

let prop_dc_split_lemmas =
  (* Lemma 2.2: S_mid is non-empty; Lemma 2.1: S_mid is independent; and
     the three bands partition S. *)
  QCheck.Test.make ~name:"Lemmas 2.1/2.2: the DC split" ~count:200 prec_gen (fun inst ->
      let bot, mid, top = Dc.split inst in
      let all = List.sort compare (bot @ mid @ top) in
      mid <> []
      && all = List.sort compare (List.map (fun (r : Rect.t) -> r.Rect.id) inst.rects)
      && Dag.independent inst.dag (fun id -> List.mem id mid))

let prop_dc_valid =
  QCheck.Test.make ~name:"DC placements are valid" ~count:150 prec_gen (fun inst ->
      let p, _ = Dc.pack inst in
      Validate.check_prec inst p = [])

let prop_dc_induction_bound =
  (* The inequality actually proved in Theorem 2.3:
     DC(S) <= log2(n+1) * F(S) + 2 * AREA(S). *)
  QCheck.Test.make ~name:"DC satisfies the Theorem 2.3 induction bound" ~count:150 prec_gen
    (fun inst ->
      let h = Q.to_float (Dc.height inst) in
      h <= Dc.theorem_2_3_bound inst +. 1e-9)

let prop_dc_with_ffdh_subroutine =
  (* Any subroutine with the area property keeps DC valid; FFDH dominates
     NFDH so the bound still holds. *)
  QCheck.Test.make ~name:"DC with FFDH subroutine stays valid and bounded" ~count:100 prec_gen
    (fun inst ->
      let p, _ = Dc.pack ~subroutine:Spp_pack.Level.ffdh inst in
      Validate.check_prec inst p = []
      && Q.to_float (Placement.height p) <= Dc.theorem_2_3_bound inst +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Uniform height (Section 2.2) *)

let test_uniform_height_detection () =
  let u = prec [ rect 0 1 2 1 1; rect 1 1 4 1 1 ] [] in
  (match Uniform.uniform_height u with
   | Some c -> Alcotest.(check string) "common height" "1" (Q.to_string c)
   | None -> Alcotest.fail "expected uniform");
  let nu = prec [ rect 0 1 2 1 1; rect 1 1 4 1 2 ] [] in
  Alcotest.(check bool) "mixed heights" true (Uniform.uniform_height nu = None);
  Alcotest.check_raises "next_fit_shelf rejects mixed"
    (Invalid_argument "Uniform: instance heights are not uniform") (fun () ->
      ignore (Uniform.next_fit_shelf nu))

let test_algorithm_f_example () =
  (* Chain of two wide rects plus two independent narrow ones. *)
  let inst =
    prec
      [ rect 0 3 4 1 1; rect 1 3 4 1 1; rect 2 1 8 1 1; rect 3 1 8 1 1 ]
      [ (0, 1) ]
  in
  let p, stats = Uniform.next_fit_shelf inst in
  Alcotest.(check bool) "valid" true (Validate.is_valid_prec inst p);
  Alcotest.(check int) "two shelves" 2 stats.Uniform.shelves;
  Alcotest.(check int) "one skip (chain forces close)" 1 stats.Uniform.skips

let prop_algorithm_f_valid =
  QCheck.Test.make ~name:"algorithm F placements valid" ~count:150 uniform_gen (fun inst ->
      let p, _ = Uniform.next_fit_shelf inst in
      Validate.check_prec inst p = [])

let prop_algorithm_f_skip_bound =
  (* Lemma 2.5: skips <= OPT; with unit heights OPT >= longest path, and the
     proof constructs a path with a vertex per skip-shelf, so skips <=
     longest path length. *)
  QCheck.Test.make ~name:"Lemma 2.5: skips <= longest path" ~count:150 uniform_gen (fun inst ->
      let _, stats = Uniform.next_fit_shelf inst in
      stats.Uniform.skips <= Dag.longest_path_length inst.dag)

let prop_prec_first_fit_valid =
  QCheck.Test.make ~name:"precedence first-fit valid" ~count:150 uniform_gen (fun inst ->
      let p, _ = Uniform.prec_first_fit inst in
      Validate.check_prec inst p = [])

let prop_wave_ffd_valid =
  QCheck.Test.make ~name:"wave FFD valid" ~count:150 uniform_gen (fun inst ->
      let p, _ = Uniform.wave_ffd inst in
      Validate.check_prec inst p = [])

let prop_slide_down_preserves =
  (* Any valid (list-scheduled) placement slides down into a shelf solution
     of no greater height that is still valid. *)
  QCheck.Test.make ~name:"slide-down: valid, shelf, no taller" ~count:150 uniform_gen
    (fun inst ->
      let p = List_schedule.prec inst in
      QCheck.assume (Validate.check_prec inst p = []);
      let s = Uniform.slide_down inst p in
      Validate.check_prec inst s = []
      && Q.compare (Placement.height s) (Placement.height p) <= 0
      &&
      let c = match Uniform.uniform_height inst with Some c -> c | None -> Q.one in
      List.for_all
        (fun (it : Placement.item) ->
          let ratio = Q.div it.pos.Placement.y c in
          Q.equal (Q.of_bigint (Q.floor ratio)) ratio)
        (Placement.items s))

let test_red_green_example () =
  (* Three shelves: widths 0.9 / 0.8 / 0.1: sweep pairs (0,1) red (1.7 >= 1),
     shelf 2 green. *)
  let inst =
    prec [ rect 0 9 10 1 1; rect 1 4 5 1 1; rect 2 1 10 1 1 ] [ (0, 1); (1, 2) ]
  in
  let p, _ = Uniform.next_fit_shelf inst in
  let reds, greens = Uniform.red_green_decomposition inst p in
  Alcotest.(check (pair int int)) "colours" (2, 1) (reds, greens)

let prop_red_green_accounting =
  (* Theorem 2.6's proof skeleton: reds + greens = shelves, red shelves come
     in pairs, and reds <= 2*ceil(2*AREA) (each red pair covers area >= 1 over
     two unit-height shelves of total area 2... we check the weaker
     mechanically-exact form reds/2 <= 2*AREA). *)
  QCheck.Test.make ~name:"red/green decomposition accounting" ~count:150 uniform_gen (fun inst ->
      let p, stats = Uniform.next_fit_shelf inst in
      let reds, greens = Uniform.red_green_decomposition inst p in
      reds + greens = stats.Uniform.shelves
      && reds mod 2 = 0
      && float_of_int (reds / 2) <= (2.0 *. Q.to_float (LB.area inst)) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* List scheduling baselines *)

let prop_list_schedule_prec_valid =
  QCheck.Test.make ~name:"list schedule (prec) valid" ~count:150 prec_gen (fun inst ->
      Validate.check_prec inst (List_schedule.prec inst) = [])

let release_gen =
  QCheck.make
    ~print:(fun (inst : I.Release.t) -> Printf.sprintf "n=%d" (I.Release.size inst))
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* specs = list_repeat n (triple (int_range 1 2) (int_range 1 4) (int_range 0 8)) in
      let tasks =
        List.mapi
          (fun i (wn, hn, rel) ->
            { I.Release.rect = Rect.make ~id:i ~w:(q wn 2) ~h:(q hn 4); release = q rel 2 })
          specs
      in
      return (I.Release.make ~k:2 tasks))

let prop_list_schedule_release_valid =
  QCheck.Test.make ~name:"list schedule (release) valid" ~count:150 release_gen (fun inst ->
      Validate.check_release inst (List_schedule.release inst) = [])

(* ------------------------------------------------------------------ *)
(* Release-time shelf heuristic *)

let test_release_shelf_waits () =
  (* A task released later than the current shelf's base forces a new shelf
     starting at its release. *)
  let inst =
    I.Release.make ~k:2
      [
        { I.Release.rect = rect 0 1 2 1 1; release = Q.zero };
        { I.Release.rect = rect 1 1 2 1 1; release = q 5 2 };
      ]
  in
  let p, stats = Spp_core.Release_shelf.pack inst in
  Alcotest.(check bool) "valid" true (Validate.is_valid_release inst p);
  Alcotest.(check int) "two shelves" 2 stats.Spp_core.Release_shelf.shelves;
  (match Placement.find p ~id:1 with
   | Some it -> Alcotest.(check string) "starts at release" "5/2" (Q.to_string it.pos.Placement.y)
   | None -> Alcotest.fail "missing")

let prop_release_shelf_valid =
  QCheck.Test.make ~name:"release shelf heuristics valid (both fits)" ~count:150 release_gen
    (fun inst ->
      let p1, _ = Spp_core.Release_shelf.pack inst in
      let p2, _ = Spp_core.Release_shelf.pack_first_fit inst in
      Validate.check_release inst p1 = [] && Validate.check_release inst p2 = [])

(* ------------------------------------------------------------------ *)
(* Lemma 3.1: release rounding *)

let prop_round_releases_sound =
  QCheck.Test.make ~name:"Lemma 3.1: releases only increase, bounded count" ~count:150
    (QCheck.pair release_gen (QCheck.int_range 2 5)) (fun (inst, inv_eps) ->
      let eps = q 1 inv_eps in
      let rounded = Grouping.round_releases ~epsilon_r:eps inst in
      let increase_ok =
        List.for_all
          (fun (t : I.Release.task) ->
            Q.compare (I.Release.release rounded t.rect.Rect.id) t.release >= 0)
          inst.tasks
      in
      let rmax = I.Release.max_release inst in
      let delta_ok =
        Q.is_zero rmax
        || List.for_all
             (fun (t : I.Release.task) ->
               let r' = I.Release.release rounded t.rect.Rect.id in
               Q.compare (Q.sub r' t.release) (Q.mul eps rmax) <= 0)
             inst.tasks
      in
      let count_ok =
        List.length (Grouping.distinct_releases rounded) <= inv_eps + 1
      in
      increase_ok && delta_ok && count_ok)

let test_round_releases_zero_rmax () =
  let inst = I.Release.make ~k:2 [ { I.Release.rect = rect 0 1 2 1 1; release = Q.zero } ] in
  let rounded = Grouping.round_releases ~epsilon_r:(q 1 3) inst in
  Alcotest.(check string) "unchanged" "0" (Q.to_string (I.Release.release rounded 0))

(* ------------------------------------------------------------------ *)
(* Lemma 3.2: width grouping *)

let prop_group_widths_sound =
  QCheck.Test.make ~name:"Lemma 3.2: widths only increase, bounded distinct count" ~count:150
    (QCheck.pair release_gen (QCheck.int_range 2 6)) (fun (inst, g) ->
      let grouped = Grouping.group_widths ~groups_per_class:g inst in
      let wider_ok =
        List.for_all2
          (fun (a : I.Release.task) (b : I.Release.task) ->
            a.rect.Rect.id = b.rect.Rect.id
            && Q.compare b.rect.Rect.w a.rect.Rect.w >= 0
            && Q.equal b.rect.Rect.h a.rect.Rect.h)
          inst.tasks grouped.tasks
      in
      (* Distinct widths per release class bounded by g. *)
      let per_class_ok =
        List.for_all
          (fun rel ->
            let widths =
              List.filter_map
                (fun (t : I.Release.task) ->
                  if Q.equal t.release rel then Some t.rect.Rect.w else None)
                grouped.tasks
            in
            List.length (List.sort_uniq Q.compare widths) <= g)
          (Grouping.distinct_releases grouped)
      in
      wider_ok && per_class_ok)

let test_group_widths_stacking_example () =
  (* One class; widths 1, 3/4, 1/2, 1/4 each of height 1; H = 4; g = 2 cuts
     at 0 and 2: thresholds are the width-1 rect (base 0) and the width-1/2
     rect (interval [2,3)); groups: {1, 3/4} -> 1, {1/2, 1/4} -> 1/2. *)
  let tasks =
    List.mapi
      (fun i wn -> { I.Release.rect = Rect.make ~id:i ~w:(q wn 4) ~h:Q.one; release = Q.zero })
      [ 4; 3; 2; 1 ]
  in
  let inst = I.Release.make ~k:4 tasks in
  let grouped = Grouping.group_widths ~groups_per_class:2 inst in
  let w id =
    Q.to_string
      (List.find (fun (t : I.Release.task) -> t.rect.Rect.id = id) grouped.tasks).rect.Rect.w
  in
  Alcotest.(check string) "rect 0" "1" (w 0);
  Alcotest.(check string) "rect 1" "1" (w 1);
  Alcotest.(check string) "rect 2" "1/2" (w 2);
  Alcotest.(check string) "rect 3" "1/2" (w 3)

(* ------------------------------------------------------------------ *)
(* Lemma 3.3: configuration LP *)

let test_enumerate_configs () =
  (* widths 1/2 and 1/3: multisets with sum <= 1:
     {1/2},{1/2,1/2},{1/3},{1/3,1/3},{1/3,1/3,1/3},{1/2,1/3} = 6. *)
  let configs = Config_lp.enumerate_configs [| q 1 2; q 1 3 |] in
  Alcotest.(check int) "count" 6 (List.length configs);
  List.iter
    (fun c ->
      let total = Q.add (Q.mul_int (q 1 2) c.(0)) (Q.mul_int (q 1 3) c.(1)) in
      if Q.compare total Q.one > 0 then Alcotest.fail "config exceeds strip")
    configs;
  Alcotest.check_raises "cap guard" (Failure "Config_lp.enumerate_configs: more than 2 configurations")
    (fun () -> ignore (Config_lp.enumerate_configs ~max_configs:2 [| q 1 2; q 1 3 |]))

let test_config_lp_single_rect () =
  let inst =
    I.Release.make ~k:2 [ { I.Release.rect = rect 0 1 2 1 1; release = q 3 1 } ]
  in
  let sol = Config_lp.solve inst in
  (* One rect (w = 1/2, h = 1) released at 3. The paper's fractional
     relaxation allows pieces of the SAME rectangle side by side, so the
     config {1/2, 1/2} covers it in height 1/2: OPT_f = 3 + 1/2. *)
  Alcotest.(check string) "lp value" "1/2" (Q.to_string sol.Config_lp.lp_value);
  Alcotest.(check string) "fractional height" "7/2" (Q.to_string sol.Config_lp.fractional_height)

let test_config_lp_parallel_fill () =
  (* Two half-width rects, height 1, released at 0: fractionally they sit
     side by side: OPT_f = 1. *)
  let inst =
    I.Release.make ~k:2
      [
        { I.Release.rect = rect 0 1 2 1 1; release = Q.zero };
        { I.Release.rect = rect 1 1 2 1 1; release = Q.zero };
      ]
  in
  let sol = Config_lp.solve inst in
  Alcotest.(check string) "fractional height" "1" (Q.to_string sol.Config_lp.fractional_height)

let test_config_lp_phase_capacity () =
  (* One rect at release 0 (h=1, w=1) and one at release 1/2 (h=1, w=1):
     full-width rects serialise; phase 0 holds only 1/2 of rect 0, the rest
     after: OPT_f = 1/2 + ... fractional: place r0 in [0,1/2) (half of it)
     then r1 must wait for release 1/2 but r0 still needs 1/2 more.
     Fractional slicing allows r0's remainder + r1 sequentially after 1/2:
     total = 1/2 + 1/2 + 1 = 2. *)
  let inst =
    I.Release.make ~k:1
      [
        { I.Release.rect = rect 0 1 1 1 1; release = Q.zero };
        { I.Release.rect = rect 1 1 1 1 1; release = q 1 2 };
      ]
  in
  let sol = Config_lp.solve inst in
  Alcotest.(check string) "fractional height" "2" (Q.to_string sol.Config_lp.fractional_height)

let prop_config_lp_basic_and_lower =
  QCheck.Test.make ~name:"Lemma 3.3: basic solution, fractional <= integral heuristic" ~count:75
    release_gen (fun inst ->
      let sol = Config_lp.solve inst in
      let occ = List.length sol.Config_lp.occurrences in
      let nw = Array.length sol.Config_lp.widths in
      let np = Array.length sol.Config_lp.boundaries in
      (* Basicness: occurrences bounded by the number of LP constraints,
         which is < (nw+1) * np + np. *)
      occ <= ((nw + 1) * np) + np
      &&
      (* The fractional optimum lower-bounds any integral packing. *)
      let integral = Placement.height (List_schedule.release inst) in
      Q.compare sol.Config_lp.fractional_height integral <= 0)

(* ------------------------------------------------------------------ *)
(* Column generation (Gilmore–Gomory pricing) *)

let test_colgen_matches_enumeration_simple () =
  let inst =
    I.Release.make ~k:2
      [
        { I.Release.rect = rect 0 1 2 1 1; release = Q.zero };
        { I.Release.rect = rect 1 1 2 1 1; release = Q.zero };
        { I.Release.rect = rect 2 1 1 3 4; release = Q.one };
      ]
  in
  let full = Config_lp.solve inst in
  let cg = Spp_core.Config_colgen.solve inst in
  Alcotest.(check string) "same optimum"
    (Q.to_string full.Config_lp.fractional_height)
    (Q.to_string cg.Config_lp.fractional_height);
  Alcotest.(check bool) "pool no larger than enumeration" true
    (cg.Config_lp.num_configs <= full.Config_lp.num_configs + 2)

let prop_colgen_matches_enumeration =
  (* Differential test: the generated-column optimum equals the
     full-enumeration optimum exactly on quantised instances. *)
  QCheck.Test.make ~name:"column generation = full enumeration" ~count:50 release_gen
    (fun inst ->
      let full = Config_lp.solve inst in
      let cg = Spp_core.Config_colgen.solve inst in
      Q.equal full.Config_lp.fractional_height cg.Config_lp.fractional_height)

let prop_colgen_wider_widths =
  (* Also on K = 8 instances, where enumeration is much larger than the
     generated pool. *)
  QCheck.Test.make ~name:"column generation on K=8 instances" ~count:15
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let inst =
        Spp_workloads.Generators.random_release rng ~n:12 ~k:8 ~h_den:4 ~r_den:2 ~load:1.2
      in
      let full = Config_lp.solve inst in
      let cg = Spp_core.Config_colgen.solve inst in
      Q.equal full.Config_lp.fractional_height cg.Config_lp.fractional_height
      && cg.Config_lp.num_configs <= full.Config_lp.num_configs)

let test_colgen_warm_reuse () =
  (* A shared warm pool makes a repeat solve start from the previously
     converged configuration pool: the answer is identical and the repeat
     needs fewer pricing rounds and priced columns (it converges without
     generating anything new). *)
  let inst =
    let rng = Spp_util.Prng.create 7 in
    Spp_workloads.Generators.random_release rng ~n:12 ~k:8 ~h_den:4 ~r_den:2 ~load:1.2
  in
  let warm = Spp_core.Config_colgen.warm_start () in
  let rounds_of f =
    Spp_obs.Profile.reset ();
    let r = f () in
    let p = Spp_obs.Profile.read () in
    (r, p.Spp_obs.Profile.colgen_rounds, p.Spp_obs.Profile.colgen_columns)
  in
  let cold, cold_rounds, cold_cols =
    rounds_of (fun () -> Spp_core.Config_colgen.solve ~warm inst)
  in
  let warmed, warm_rounds, warm_cols =
    rounds_of (fun () -> Spp_core.Config_colgen.solve ~warm inst)
  in
  Alcotest.(check string) "same optimum"
    (Q.to_string cold.Config_lp.fractional_height)
    (Q.to_string warmed.Config_lp.fractional_height);
  Alcotest.(check bool) "warm run prices no new columns" true (warm_cols = 0);
  Alcotest.(check bool)
    (Printf.sprintf "warm rounds %d < cold rounds %d (cold priced %d columns)" warm_rounds
       cold_rounds cold_cols)
    true
    (warm_rounds < cold_rounds)

let prop_colgen_warm_equals_cold =
  (* Warm-started solves are exact: seeding the pool never changes the LP
     optimum, whatever instance sequence shares the pool. *)
  QCheck.Test.make ~name:"warm-started column generation = cold" ~count:25 release_gen
    (fun inst ->
      let warm = Spp_core.Config_colgen.warm_start () in
      let cold = Spp_core.Config_colgen.solve inst in
      let w1 = Spp_core.Config_colgen.solve ~warm inst in
      let w2 = Spp_core.Config_colgen.solve ~warm inst in
      Q.equal cold.Config_lp.fractional_height w1.Config_lp.fractional_height
      && Q.equal cold.Config_lp.fractional_height w2.Config_lp.fractional_height)

let prop_aptas_colgen_equivalent =
  (* The full APTAS with column generation: valid, same fractional height
     as the enumerated solver, same accounting guarantees. *)
  QCheck.Test.make ~name:"APTAS with column generation matches enumeration" ~count:25
    release_gen (fun inst ->
      let a = Aptas.solve ~epsilon:Q.one inst in
      let b = Aptas.solve ~solver:`Column_generation ~epsilon:Q.one inst in
      Validate.check_release inst b.Aptas.placement = []
      && Q.equal a.Aptas.fractional_height b.Aptas.fractional_height
      && b.Aptas.fallback_rects = 0
      && Q.compare b.Aptas.height
           (Q.add b.Aptas.fractional_height (Q.of_int b.Aptas.occurrences))
         <= 0)

(* ------------------------------------------------------------------ *)
(* Theorem 3.5: APTAS end to end *)

let test_aptas_trivial () =
  let inst =
    I.Release.make ~k:2
      [
        { I.Release.rect = rect 0 1 2 1 1; release = Q.zero };
        { I.Release.rect = rect 1 1 2 1 1; release = Q.zero };
      ]
  in
  let res = Aptas.solve ~epsilon:Q.one inst in
  Alcotest.(check bool) "valid" true (Validate.is_valid_release inst res.Aptas.placement);
  Alcotest.(check int) "no fallback" 0 res.Aptas.fallback_rects;
  (* Two side-by-side rects: integral height 1 is achievable and the
     rounding bound allows height <= fractional + occurrences. *)
  Alcotest.(check bool) "height bound" true
    (Q.compare res.Aptas.height
       (Q.add res.Aptas.fractional_height (Q.of_int res.Aptas.occurrences))
     <= 0)

let prop_aptas_valid_and_bounded =
  QCheck.Test.make ~name:"APTAS: valid, accounted, within Lemma 3.4 bound" ~count:40 release_gen
    (fun inst ->
      let res = Aptas.solve ~epsilon:Q.one inst in
      Validate.check_release inst res.Aptas.placement = []
      && res.Aptas.fallback_rects = 0
      && res.Aptas.occurrences <= res.Aptas.max_occurrences
      && Q.compare res.Aptas.height
           (Q.add res.Aptas.fractional_height (Q.of_int res.Aptas.occurrences))
         <= 0
      && Q.compare res.Aptas.lower_bound res.Aptas.height <= 0)

let prop_aptas_smaller_epsilon_tighter_fractional =
  (* Smaller epsilon => finer reductions => the reduced instance's
     fractional optimum can only improve (approach OPT_f from above). *)
  QCheck.Test.make ~name:"APTAS fractional height shrinks with epsilon" ~count:20 release_gen
    (fun inst ->
      let r1 = Aptas.solve ~epsilon:Q.one inst in
      let r2 = Aptas.solve ~epsilon:(q 1 2) inst in
      (* Not strictly monotone in theory (different grids), allow slack of
         the coarser guarantee: f2 <= (1+1)/(1+1/2) * f1 is implied by both
         being within their factors of OPT_f; we check the sound inequality
         f2 <= (1+1/3)^2 * OPT_f <= (1+1/3)^2 * f1. *)
      let bound = Q.mul (Q.mul (q 16 9) r1.Aptas.fractional_height) Q.one in
      Q.compare r2.Aptas.fractional_height bound <= 0)

(* ------------------------------------------------------------------ *)
(* Kenyon–Rémila mode: plain strip packing through the same pipeline *)

let test_strip_mode_side_by_side () =
  let rects = [ rect 0 1 2 1 1; rect 1 1 2 1 1 ] in
  let res = Aptas.strip ~epsilon:Q.one ~k:2 rects in
  let inst = I.Release.make ~k:2 (List.map (fun rect -> { I.Release.rect; release = Q.zero }) rects) in
  Alcotest.(check bool) "valid" true (Validate.is_valid_release inst res.Aptas.placement);
  Alcotest.(check int) "single phase" 1 res.Aptas.num_phases;
  Alcotest.(check string) "fractional = 1" "1" (Q.to_string res.Aptas.fractional_height)

let prop_strip_mode_sound =
  QCheck.Test.make ~name:"strip mode: valid, fractional <= NFDH, accounted" ~count:40
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let rects =
        Spp_workloads.Generators.random_rects rng ~n:(4 + (seed mod 12)) ~k:2 ~h_den:4
      in
      let res = Aptas.strip ~epsilon:Q.one ~k:2 rects in
      let inst =
        I.Release.make ~k:2 (List.map (fun rect -> { I.Release.rect; release = Q.zero }) rects)
      in
      Validate.check_release inst res.Aptas.placement = []
      && res.Aptas.num_phases = 1
      && (* fractional is OPT_f of the width-GROUPED instance, so it is only
            within the Lemma 3.2 factor (1 + eps') of OPT_f(P) <= NFDH. *)
      Q.compare res.Aptas.fractional_height
        (Q.mul (Q.of_ints 4 3) (Spp_pack.Level.nfdh_height rects))
      <= 0
      && Q.compare res.Aptas.height
           (Q.add res.Aptas.fractional_height (Q.of_int res.Aptas.occurrences))
         <= 0)

(* ------------------------------------------------------------------ *)
(* GGJY asymptotic behaviour via the reduction *)

let prop_ggjy_asymptotic_envelope =
  (* Garey-Graham-Johnson-Yao: first fit for precedence bin packing is an
     asymptotic 2.7-approximation. Mechanical check against the exact DP:
     PFF <= 2.7 * OPT + 1 on every sampled instance. *)
  QCheck.Test.make ~name:"GGJY: prec first fit <= 2.7*OPT + 1" ~count:100 uniform_gen
    (fun inst ->
      QCheck.assume (I.Prec.size inst <= 12);
      let opt = Q.to_float (Spp_exact.Prec_binpack.min_height inst) in
      let _, stats = Uniform.prec_first_fit inst in
      float_of_int stats.Uniform.shelves <= (2.7 *. opt) +. 1.0 +. 1e-9)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_core"
    [
      ( "instances",
        [
          Alcotest.test_case "prec validation" `Quick test_prec_instance_validation;
          Alcotest.test_case "release validation" `Quick test_release_instance_validation;
        ] );
      ( "lower-bounds",
        [
          Alcotest.test_case "diamond" `Quick test_lower_bounds_diamond;
          Alcotest.test_case "release" `Quick test_lower_bounds_release;
        ] );
      ( "validate",
        [
          Alcotest.test_case "precedence violations" `Quick test_validate_catches_violations;
          Alcotest.test_case "release violations" `Quick test_validate_release_violations;
        ] );
      ( "dc",
        Alcotest.test_case "single rect" `Quick test_dc_single_rect
        :: Alcotest.test_case "empty" `Quick test_dc_empty
        :: Alcotest.test_case "chain tight" `Quick test_dc_chain_is_tight
        :: Alcotest.test_case "diamond valid" `Quick test_dc_diamond
        :: Alcotest.test_case "split on diamond" `Quick test_dc_split_diamond
        :: qt
             [ prop_dc_split_lemmas; prop_dc_valid; prop_dc_induction_bound;
               prop_dc_with_ffdh_subroutine ] );
      ( "uniform",
        Alcotest.test_case "uniform detection" `Quick test_uniform_height_detection
        :: Alcotest.test_case "algorithm F example" `Quick test_algorithm_f_example
        :: Alcotest.test_case "red/green example" `Quick test_red_green_example
        :: qt
             [
               prop_algorithm_f_valid;
               prop_algorithm_f_skip_bound;
               prop_prec_first_fit_valid;
               prop_wave_ffd_valid;
               prop_slide_down_preserves;
               prop_red_green_accounting;
             ] );
      ( "list-schedule",
        qt [ prop_list_schedule_prec_valid; prop_list_schedule_release_valid ] );
      ( "release-shelf",
        Alcotest.test_case "waits for release" `Quick test_release_shelf_waits
        :: qt [ prop_release_shelf_valid ] );
      ( "lemma-3.1",
        Alcotest.test_case "zero rmax" `Quick test_round_releases_zero_rmax
        :: qt [ prop_round_releases_sound ] );
      ( "lemma-3.2",
        Alcotest.test_case "stacking example" `Quick test_group_widths_stacking_example
        :: qt [ prop_group_widths_sound ] );
      ( "lemma-3.3",
        Alcotest.test_case "enumerate configs" `Quick test_enumerate_configs
        :: Alcotest.test_case "single rect LP" `Quick test_config_lp_single_rect
        :: Alcotest.test_case "parallel fill LP" `Quick test_config_lp_parallel_fill
        :: Alcotest.test_case "phase capacity LP" `Quick test_config_lp_phase_capacity
        :: qt [ prop_config_lp_basic_and_lower ] );
      ( "column-generation",
        Alcotest.test_case "matches enumeration (simple)" `Quick
          test_colgen_matches_enumeration_simple
        :: Alcotest.test_case "warm pool reuse" `Quick test_colgen_warm_reuse
        :: qt
             [ prop_colgen_matches_enumeration; prop_colgen_wider_widths;
               prop_colgen_warm_equals_cold; prop_aptas_colgen_equivalent ] );
      ( "theorem-3.5",
        Alcotest.test_case "trivial APTAS" `Quick test_aptas_trivial
        :: qt [ prop_aptas_valid_and_bounded; prop_aptas_smaller_epsilon_tighter_fractional ] );
      ( "kenyon-remila-mode",
        Alcotest.test_case "side by side" `Quick test_strip_mode_side_by_side
        :: qt [ prop_strip_mode_sound ] );
      ("ggjy", qt [ prop_ggjy_asymptotic_envelope ]);
    ]
