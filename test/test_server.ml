(* Tests for Spp_server: the hand-rolled JSON layer, protocol
   round-trips on adversarial payloads, the bounded queue, line framing,
   and a live daemon — concurrent clients on a real Unix socket, junk
   bytes answered with error replies, and graceful shutdown under load. *)

module Prng = Spp_util.Prng
module Io = Spp_core.Io
module I = Spp_core.Instance
module Validate = Spp_core.Validate
module Generators = Spp_workloads.Generators
module Engine = Spp_engine.Engine
module Json = Spp_server.Json
module Protocol = Spp_server.Protocol
module Framing = Spp_server.Framing
module Bqueue = Spp_server.Bqueue
module Server = Spp_server.Server
module Client = Spp_server.Client

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_basics () =
  let rt v = Json.of_string (Json.to_string v) in
  let check_rt what v = Alcotest.(check bool) what true (rt v = Ok v) in
  check_rt "null" Json.Null;
  check_rt "bools" (Json.List [ Json.Bool true; Json.Bool false ]);
  check_rt "ints" (Json.List [ Json.Int 0; Json.Int (-42); Json.Int max_int; Json.Int min_int ]);
  check_rt "floats"
    (Json.List [ Json.Float 0.5; Json.Float (-1.25e-3); Json.Float 2.0; Json.Float 1e300 ]);
  check_rt "nested"
    (Json.Obj [ ("a", Json.List [ Json.Obj [ ("b", Json.Null) ] ]); ("c", Json.Int 1) ]);
  Alcotest.(check string) "float keeps .0" "2.0" (Json.to_string (Json.Float 2.0));
  Alcotest.(check bool) "int stays int" true (Json.of_string "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "nan prints null" true (Json.to_string (Json.Float Float.nan) = "null")

let test_json_string_escapes () =
  let nasty = "line1\nline2\r\ttab \"quoted\" back\\slash \001ctl \xe2\x82\xac utf8" in
  let enc = Json.to_string (Json.String nasty) in
  Alcotest.(check bool) "no raw newline in encoding" false (String.contains enc '\n');
  Alcotest.(check bool) "round-trips" true (Json.of_string enc = Ok (Json.String nasty));
  (* Standard escapes and \u forms decode, surrogate pairs combine. *)
  Alcotest.(check bool) "\\u0041" true (Json.of_string {|"A"|} = Ok (Json.String "A"));
  Alcotest.(check bool) "surrogate pair" true
    (Json.of_string {|"😀"|} = Ok (Json.String "\xf0\x9f\x98\x80"));
  Alcotest.(check bool) "lone surrogate becomes U+FFFD" true
    (Json.of_string {|"\ud83d"|} = Ok (Json.String "\xef\xbf\xbd"))

let rec random_json rng depth =
  match if depth >= 3 then Prng.int rng 5 else Prng.int rng 7 with
  | 0 -> Json.Null
  | 1 -> Json.Bool (Prng.bool rng)
  | 2 -> Json.Int (Prng.int_in rng (-1_000_000) 1_000_000)
  | 3 -> Json.Float (Prng.float_in rng (-1e6) 1e6)
  | 4 ->
    Json.String
      (String.init (Prng.int rng 24) (fun _ -> Char.chr (Prng.int rng 256)))
  | 5 -> Json.List (List.init (Prng.int rng 4) (fun _ -> random_json rng (depth + 1)))
  | _ ->
    (* Distinct keys so Obj round-trips structurally. *)
    Json.Obj
      (List.init (Prng.int rng 4) (fun i ->
           (Printf.sprintf "k%d_%d" i (Prng.int rng 1000), random_json rng (depth + 1))))

let test_json_random_roundtrip () =
  let rng = Prng.create 2024 in
  for _ = 1 to 500 do
    let v = random_json rng 0 in
    match Json.of_string (Json.to_string v) with
    | Ok v' -> if v' <> v then Alcotest.failf "round-trip mismatch on %s" (Json.to_string v)
    | Error msg -> Alcotest.failf "round-trip parse error %S on %s" msg (Json.to_string v)
  done

let test_json_junk_never_raises () =
  let rng = Prng.create 99 in
  for _ = 1 to 1000 do
    let junk = String.init (Prng.int rng 40) (fun _ -> Char.chr (Prng.int rng 256)) in
    ignore (Json.of_string junk)
  done;
  let is_err s = match Json.of_string s with Error _ -> true | Ok _ -> false in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "reject %S" s) true (is_err s))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "\"bad \\q escape\"";
      "{\"a\":1,}"; "nulll"; "\xff\xfe"; String.make 200 '[' ^ String.make 200 ']' ]

(* ------------------------------------------------------------------ *)
(* Protocol *)

let random_payload rng =
  (* Instance-like text with embedded newlines, plus raw junk bytes. *)
  if Prng.bool rng then
    String.concat "\n"
      (List.init (Prng.int rng 6) (fun i ->
           Printf.sprintf "rect %d %d/%d %d" i (1 + Prng.int rng 9) (1 + Prng.int rng 9)
             (1 + Prng.int rng 4)))
  else String.init (Prng.int rng 64) (fun _ -> Char.chr (Prng.int rng 256))

let test_protocol_request_roundtrip () =
  let rng = Prng.create 7 in
  for _ = 1 to 300 do
    let req =
      match Prng.int rng 4 with
      | 0 ->
        Protocol.Solve
          { instance = random_payload rng;
            budget_ms = (if Prng.bool rng then Some (Prng.float rng 1000.) else None);
            deadline_ms = (if Prng.bool rng then Some (Prng.float rng 5000.) else None);
            algos =
              (if Prng.bool rng then
                 Some (List.init (Prng.int rng 3) (fun _ -> random_payload rng))
               else None);
            trace_id =
              (if Prng.bool rng then Some (Printf.sprintf "t%08x" (Prng.int rng 0xffffff))
               else None) }
      | 1 -> Protocol.Metrics
      | 2 -> Protocol.Health
      | _ -> Protocol.Shutdown
    in
    let line = Protocol.encode_request req in
    Alcotest.(check bool) "one line" false (String.contains line '\n');
    match Protocol.decode_request line with
    | Ok req' -> if req' <> req then Alcotest.failf "request mismatch: %s" line
    | Error msg -> Alcotest.failf "decode failed (%s) on %s" msg line
  done

let test_protocol_response_roundtrip () =
  let rng = Prng.create 8 in
  let responses () =
    [ Protocol.Health_ok { uptime_s = Prng.float rng 3600.; cache_capacity = 128 };
      Protocol.Shutdown_ok;
      Protocol.Solve_ok
        { winner = "dc"; source = "computed"; height = "27/4";
          time_ms = Prng.float rng 100.; placement = random_payload rng;
          degraded = Prng.bool rng;
          lower_bound = (if Prng.bool rng then Some "27/8" else None);
          gap = (if Prng.bool rng then Some "27/8" else None);
          trace_id = (if Prng.bool rng then Some "deadbeefcafef00d" else None);
          trace =
            (if Prng.bool rng then
               Some (Json.Obj [ ("name", Json.String "request"); ("ms", Json.Float 0.5) ])
             else None) };
      Protocol.Metrics_ok
        { uptime_ms = Prng.float rng 1e6;
          counters = [ ("cache.hit", Prng.int rng 100); ("solve.runs", Prng.int rng 100) ];
          cache =
            { size = Prng.int rng 10; capacity = 128; hits = Prng.int rng 50;
              misses = Prng.int rng 50; evictions = 0 };
          store_dir = (if Prng.bool rng then Some "/tmp/x" else None);
          workers = 1 + Prng.int rng 8; queue_length = Prng.int rng 64; queue_capacity = 64;
          histograms =
            [ ( "spp_solve_ms",
                { Protocol.count = 1 + Prng.int rng 100; sum = Prng.float rng 1e4;
                  p50 = Prng.float rng 10.; p90 = Prng.float rng 100.;
                  p99 = Prng.float rng 1000.;
                  buckets = [ (0.5, Prng.int rng 5); (5.0, 5 + Prng.int rng 5) ] } ) ];
          algos =
            [ ( "dc",
                { Protocol.wins = Prng.int rng 10; solved = Prng.int rng 20;
                  timeouts = Prng.int rng 3; invalid = 0; failed = Prng.int rng 2 } );
              ("bl", { Protocol.wins = 0; solved = 1; timeouts = 0; invalid = 1; failed = 0 }) ] };
      Protocol.Error
        { code = Protocol.Overloaded; message = random_payload rng;
          retry_after_ms = (if Prng.bool rng then Some (Prng.int rng 5000) else None) };
      Protocol.Error
        { code = Protocol.Bad_instance; message = ""; retry_after_ms = None } ]
  in
  for _ = 1 to 60 do
    List.iter
      (fun resp ->
        let line = Protocol.encode_response resp in
        Alcotest.(check bool) "one line" false (String.contains line '\n');
        match Protocol.decode_response line with
        | Ok resp' -> if resp' <> resp then Alcotest.failf "response mismatch: %s" line
        | Error msg -> Alcotest.failf "decode failed (%s) on %s" msg line)
      (responses ())
  done;
  (* Every error code survives the wire. *)
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Protocol.error_code_to_string code)
        true
        (Protocol.error_code_of_string (Protocol.error_code_to_string code) = Some code))
    [ Protocol.Parse; Protocol.Bad_request; Protocol.Bad_instance; Protocol.Overloaded;
      Protocol.Shutting_down; Protocol.Internal ]

let test_protocol_junk_is_error () =
  let rng = Prng.create 9 in
  for _ = 1 to 500 do
    let junk = String.init (Prng.int rng 50) (fun _ -> Char.chr (Prng.int rng 256)) in
    (match Protocol.decode_request junk with Ok _ | Error _ -> ());
    match Protocol.decode_response junk with Ok _ | Error _ -> ()
  done;
  let req_err s = match Protocol.decode_request s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "non-object" true (req_err "[1,2]");
  Alcotest.(check bool) "missing op" true (req_err "{}");
  Alcotest.(check bool) "unknown op" true (req_err {|{"op":"dance"}|});
  Alcotest.(check bool) "solve without instance" true (req_err {|{"op":"solve"}|});
  Alcotest.(check bool) "ill-typed budget" true
    (req_err {|{"op":"solve","instance":"x","budget_ms":"soon"}|})

(* ------------------------------------------------------------------ *)
(* Bqueue *)

let test_bqueue_bounds_and_order () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Bqueue.create: capacity must be >= 1") (fun () ->
      ignore (Bqueue.create ~capacity:0));
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "full: load shed" false (Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  Alcotest.(check bool) "fifo" true (Bqueue.pop q = Some 1);
  Alcotest.(check bool) "push after pop" true (Bqueue.try_push q 4);
  Bqueue.close q;
  Alcotest.(check bool) "push after close refused" false (Bqueue.try_push q 5);
  Alcotest.(check bool) "drains after close" true (Bqueue.pop q = Some 2);
  Alcotest.(check bool) "drains after close (2)" true (Bqueue.pop q = Some 4);
  Alcotest.(check bool) "empty+closed is None" true (Bqueue.pop q = None)

let test_bqueue_blocking_pop () =
  let q = Bqueue.create ~capacity:1 in
  let got = Atomic.make None in
  let th = Thread.create (fun () -> Atomic.set got (Some (Bqueue.pop q))) () in
  Thread.delay 0.05;
  Alcotest.(check bool) "still blocked" true (Atomic.get got = None);
  Alcotest.(check bool) "push wakes it" true (Bqueue.try_push q 42);
  Thread.join th;
  Alcotest.(check bool) "received" true (Atomic.get got = Some (Some 42))

let test_bqueue_close_wakes_blocked () =
  (* Shutdown path: several poppers are parked on an empty queue when
     close() lands. Every one of them must wake with None — a popper
     left sleeping would be a worker domain the server can never join. *)
  let q = Bqueue.create ~capacity:4 in
  let woken = Atomic.make 0 in
  let threads =
    List.init 3 (fun _ ->
        Thread.create
          (fun () -> if Bqueue.pop q = None then Atomic.incr woken)
          ())
  in
  Thread.delay 0.05;
  Alcotest.(check int) "all still blocked" 0 (Atomic.get woken);
  Bqueue.close q;
  List.iter Thread.join threads;
  Alcotest.(check int) "every popper woken with None" 3 (Atomic.get woken);
  (* After the drain the queue stays terminal. *)
  Alcotest.(check bool) "closed" true (Bqueue.is_closed q);
  Alcotest.(check bool) "push refused" false (Bqueue.try_push q 1);
  Alcotest.(check bool) "pop still None" true (Bqueue.pop q = None)

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_framing_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = Framing.reader b in
  Framing.write_line a "first";
  Framing.write_line a "second with spaces";
  (* One syscall carrying several frames, a CRLF line, and a final
     unterminated fragment — the reader must split and finish them all. *)
  let chunk = "third\nfourth\r\nfifth-unterminated" in
  let n = Unix.write_substring a chunk 0 (String.length chunk) in
  Alcotest.(check int) "chunk written" (String.length chunk) n;
  Unix.close a;
  let expect what s = Alcotest.(check (option string)) what s (Framing.read_line r) in
  expect "line 1" (Some "first");
  expect "line 2" (Some "second with spaces");
  expect "line 3" (Some "third");
  expect "CR stripped" (Some "fourth");
  expect "final unterminated line" (Some "fifth-unterminated");
  expect "eof" None;
  Unix.close b

let test_framing_line_too_long () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = Framing.reader ~max_line_bytes:64 b in
  Framing.write_line a (String.make 100 'x');
  Unix.close a;
  Alcotest.check_raises "oversized line rejected" Framing.Line_too_long (fun () ->
      ignore (Framing.read_line r));
  Unix.close b

(* The length limit applies to the logical line, after the CR strip: a
   CRLF peer gets the same capacity as an LF one, and a bare "\r\n" is a
   blank line (which the server skips), not a framing error. *)
let test_framing_crlf_at_limit () =
  let roundtrip raw =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let r = Framing.reader ~max_line_bytes:64 b in
    let n = Unix.write_substring a raw 0 (String.length raw) in
    Alcotest.(check int) "written" (String.length raw) n;
    Unix.close a;
    let lines = try Ok (List.init 2 (fun _ -> Framing.read_line r)) with e -> Error e in
    Unix.close b;
    lines
  in
  let full = String.make 64 'x' in
  (match roundtrip (full ^ "\r\n") with
   | Ok [ first; eof ] ->
     Alcotest.(check (option string)) "64 bytes + CRLF accepted" (Some full) first;
     Alcotest.(check (option string)) "then EOF" None eof
   | _ -> Alcotest.fail "CRLF line at the limit must be accepted");
  (match roundtrip (full ^ "y\r\n") with
   | Error Framing.Line_too_long -> ()
   | _ -> Alcotest.fail "65-byte CRLF line must be rejected");
  (* Unterminated CRLF lines at the limit: the partial-line buffer must
     tolerate the pending CR until EOF resolves it. *)
  (match roundtrip (full ^ "\r") with
   | Ok [ first; eof ] ->
     Alcotest.(check (option string)) "64 bytes + dangling CR accepted" (Some full) first;
     Alcotest.(check (option string)) "then EOF" None eof
   | _ -> Alcotest.fail "dangling CR at the limit must be accepted");
  match roundtrip "\r\nok\r\n" with
  | Ok [ blank; second ] ->
    Alcotest.(check (option string)) "bare CRLF is a blank line" (Some "") blank;
    Alcotest.(check (option string)) "following line intact" (Some "ok") second
  | _ -> Alcotest.fail "bare CRLF must read as a blank line"

(* Retry backoff: decorrelated jitter in [base, 3 * prev] capped, with a
   server retry_after_ms hint as a hard floor — even above the cap. *)
let test_client_backoff_hint_floor () =
  let rng = Prng.create 7 in
  for _ = 1 to 200 do
    let s = Client.backoff_ms ~base_ms:25.0 ~cap_ms:2000.0 rng ~prev_ms:100.0 in
    Alcotest.(check bool) "jitter within [base, 3*prev]" true (s >= 25.0 && s <= 300.0);
    let s = Client.backoff_ms ~base_ms:25.0 ~cap_ms:2000.0 ~hint_ms:500 rng ~prev_ms:100.0 in
    Alcotest.(check bool) "hint floors the sleep" true (s >= 500.0);
    let s = Client.backoff_ms ~base_ms:25.0 ~cap_ms:2000.0 ~hint_ms:5000 rng ~prev_ms:9e9 in
    Alcotest.(check (float 1e-9)) "hint above cap wins over the cap" 5000.0 s
  done

(* ------------------------------------------------------------------ *)
(* Live server *)

let temp_sock () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spp_test_%d_%d.sock" (Unix.getpid ()) (Random.int 1_000_000))

let instance_text seed n =
  let rng = Prng.create seed in
  Io.prec_to_string (Generators.random_prec rng ~n ~k:8 ~h_den:4 ~shape:`Series_parallel)

let check_solve_reply text (r : Protocol.solve_reply) =
  match Io.parse_string text with
  | Io.Release _ -> Alcotest.fail "test corpus is precedence-only"
  | Io.Prec inst -> (
    match Io.parse_placement ~rects:inst.I.Prec.rects r.Protocol.placement with
    | exception Failure msg -> Alcotest.failf "reply placement does not parse: %s" msg
    | p ->
      Alcotest.(check int)
        (Printf.sprintf "reply from %s validates" r.Protocol.source)
        0
        (List.length (Validate.check_prec inst p)))

let with_server ?(workers = 2) ?(queue_depth = 16) f =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let srv =
    Server.start
      { Server.address; workers; queue_depth; engine = Engine.create ();
        default_budget_ms = Some 2000.0; solve_workers = Some 1;
        max_request_bytes = 1 lsl 16; slow_ms = None;
        idle_timeout_ms = None; read_timeout_ms = None;
        retry_after_ms = Server.default_retry_after_ms;
        max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f address srv)

let test_server_concurrent_clients () =
  with_server (fun address _srv ->
      let corpus = [| instance_text 31 8; instance_text 32 7; instance_text 33 9 |] in
      let failures = Bqueue.create ~capacity:64 in
      let clients = 4 and per_client = 6 in
      let threads =
        List.init clients (fun ci ->
            Thread.create
              (fun () ->
                Client.with_connection address (fun c ->
                    for r = 0 to per_client - 1 do
                      let text = corpus.((ci + r) mod Array.length corpus) in
                      match
                        Client.request c
                          (Protocol.Solve
                             { instance = text; budget_ms = None; deadline_ms = None;
                               algos = None; trace_id = None })
                      with
                      | Protocol.Solve_ok reply -> check_solve_reply text reply
                      | other ->
                        ignore
                          (Bqueue.try_push failures (Protocol.encode_response other))
                    done))
              ())
      in
      List.iter Thread.join threads;
      Bqueue.close failures;
      (match Bqueue.pop failures with
       | Some bad -> Alcotest.failf "unexpected reply: %s" bad
       | None -> ());
      (* 3 distinct instances, 24 requests: the shared cache must have
         served the repeats. *)
      match Client.with_connection address (fun c -> Client.request c Protocol.Metrics) with
      | Protocol.Metrics_ok m ->
        Alcotest.(check int) "distinct instances computed" 3 m.Protocol.cache.Protocol.size;
        (* The engine does not coalesce concurrent misses of the same
           fingerprint, so the exact split is racy; but each client can
           compute each instance at most once, so at least
           total - clients*instances requests were served from cache. *)
        Alcotest.(check bool)
          (Printf.sprintf "repeats were cache hits (%d)" m.Protocol.cache.Protocol.hits)
          true
          (m.Protocol.cache.Protocol.hits >= (clients * per_client) - (clients * 3)
           && m.Protocol.cache.Protocol.hits > 0);
        Alcotest.(check int) "workers reported" 2 m.Protocol.workers
      | other -> Alcotest.failf "unexpected metrics reply: %s" (Protocol.encode_response other))

let test_server_junk_and_errors () =
  with_server (fun address _srv ->
      (* Raw junk bytes on the wire: the server must answer an error reply
         on the same connection, not drop it or crash. *)
      let fd = Framing.connect address in
      Framing.write_line fd "this is { not json";
      let r = Framing.reader fd in
      (match Framing.read_line r with
       | None -> Alcotest.fail "connection dropped on junk input"
       | Some line -> (
         match Protocol.decode_response line with
         | Ok (Protocol.Error { code = Protocol.Parse; _ }) -> ()
         | _ -> Alcotest.failf "expected a parse error reply, got %s" line));
      (* The connection survives and still serves. *)
      Framing.write_line fd (Protocol.encode_request Protocol.Health);
      (match Framing.read_line r with
       | Some line ->
         Alcotest.(check bool) "health after junk" true
           (match Protocol.decode_response line with
            | Ok (Protocol.Health_ok h) -> h.Protocol.uptime_s >= 0. && h.Protocol.cache_capacity > 0
            | _ -> false)
       | None -> Alcotest.fail "connection closed after junk");
      Unix.close fd;
      Client.with_connection address (fun c ->
          (match
             Client.request c
               (Protocol.Solve
                  { instance = "rect nope"; budget_ms = None; deadline_ms = None; algos = None;
                    trace_id = None })
           with
           | Protocol.Error { code = Protocol.Bad_instance; _ } -> ()
           | other ->
             Alcotest.failf "expected bad_instance, got %s" (Protocol.encode_response other));
          match
            Client.request c
              (Protocol.Solve
                 { instance = instance_text 41 6; budget_ms = None; deadline_ms = None;
                   algos = Some [ "no-such-algorithm" ]; trace_id = None })
          with
          | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
          | other ->
            Alcotest.failf "expected bad_request, got %s" (Protocol.encode_response other)))

let test_server_graceful_shutdown () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let srv =
    Server.start
      { Server.address; workers = 1; queue_depth = 4; engine = Engine.create ();
        default_budget_ms = Some 2000.0; solve_workers = Some 1;
        max_request_bytes = 1 lsl 16; slow_ms = None;
        idle_timeout_ms = None; read_timeout_ms = None;
        retry_after_ms = Server.default_retry_after_ms;
        max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  (* An in-flight request must complete and its reply arrive even though
     stop() lands while it is being served. *)
  let text = instance_text 51 10 in
  let result = Atomic.make None in
  let th =
    Thread.create
      (fun () ->
        Client.with_connection address (fun c ->
            Atomic.set result
              (Some
                 (Client.request c
                    (Protocol.Solve
                       { instance = text; budget_ms = None; deadline_ms = None; algos = None;
                         trace_id = None })))))
      ()
  in
  Thread.delay 0.02;
  Server.stop srv;
  Thread.join th;
  (match Atomic.get result with
   | Some (Protocol.Solve_ok reply) -> check_solve_reply text reply
   | Some other -> Alcotest.failf "in-flight request lost: %s" (Protocol.encode_response other)
   | None -> Alcotest.fail "client got no reply");
  Server.wait srv;
  Alcotest.(check bool) "socket path unlinked" false (Sys.file_exists sock);
  (match Client.connect address with
   | c ->
     Client.close c;
     Alcotest.fail "connect succeeded after shutdown"
   | exception Client.Error { kind = Client.Connect_failed; _ } -> ());
  (* stop/wait are idempotent. *)
  Server.stop srv;
  Server.wait srv

let test_server_shutdown_request () =
  let sock = temp_sock () in
  let address = Framing.Unix_sock sock in
  let srv =
    Server.start
      { Server.address; workers = 1; queue_depth = 4; engine = Engine.create ();
        default_budget_ms = None; solve_workers = Some 1; max_request_bytes = 1 lsl 16;
        slow_ms = None; idle_timeout_ms = None; read_timeout_ms = None;
        retry_after_ms = Server.default_retry_after_ms;
        max_worker_restarts = None;
        deadline_floor_ms = Server.default_deadline_floor_ms }
  in
  let resp = Client.with_connection address (fun c -> Client.request c Protocol.Shutdown) in
  Alcotest.(check bool) "acknowledged" true (resp = Protocol.Shutdown_ok);
  Server.wait srv;
  Alcotest.(check bool) "drained after shutdown op" false (Sys.file_exists sock)

let test_server_wont_make_it () =
  with_server (fun address _srv ->
      (* A request arriving with its deadline below the admission floor is
         fast-failed before parsing, with a retry hint — not queued. *)
      match
        Client.with_connection address (fun c ->
            Client.request c
              (Protocol.Solve
                 { instance = instance_text 81 6; budget_ms = None;
                   deadline_ms = Some 1.0; algos = None; trace_id = None }))
      with
      | Protocol.Error { code = Protocol.Wont_make_it; retry_after_ms; _ } ->
        Alcotest.(check bool) "carries a retry hint" true (retry_after_ms <> None)
      | other ->
        Alcotest.failf "expected wont_make_it, got %s" (Protocol.encode_response other))

let test_server_degraded_reply () =
  with_server (fun address _srv ->
      let text = instance_text 82 8 in
      let solve ~budget_ms =
        Client.with_connection address (fun c ->
            Client.request c
              (Protocol.Solve
                 { instance = text; budget_ms; deadline_ms = None;
                   algos = Some [ "bb"; "order" ]; trace_id = None }))
      in
      (* Exact members under a zero budget: the reply is the anytime
         incumbent, flagged degraded, still a valid packing, and carries
         the exact-rational bound and gap. *)
      (match solve ~budget_ms:(Some 0.0) with
       | Protocol.Solve_ok r ->
         Alcotest.(check bool) "flagged degraded" true r.Protocol.degraded;
         check_solve_reply text r;
         (match (r.Protocol.lower_bound, r.Protocol.gap) with
          | Some lb, Some gap ->
            let q s = Spp_num.Rat.of_string s in
            Alcotest.(check bool) "gap is nonnegative" true
              (Spp_num.Rat.compare (q gap) Spp_num.Rat.zero >= 0);
            Alcotest.(check bool) "height = lower_bound + gap" true
              (Spp_num.Rat.compare (q r.Protocol.height)
                 (Spp_num.Rat.add (q lb) (q gap))
               = 0)
          | _ -> Alcotest.fail "degraded reply must carry lower_bound and gap")
       | other ->
         Alcotest.failf "expected degraded Solve_ok, got %s" (Protocol.encode_response other));
      (* Degraded answers are not cached: a roomy retry recomputes and
         comes back full quality. *)
      match solve ~budget_ms:(Some 2000.0) with
      | Protocol.Solve_ok r ->
        Alcotest.(check bool) "retry not degraded" false r.Protocol.degraded;
        Alcotest.(check string) "retry recomputed" "computed" r.Protocol.source
      | other ->
        Alcotest.failf "expected full Solve_ok, got %s" (Protocol.encode_response other))

let () =
  Alcotest.run "spp_server"
    [
      ( "json",
        [
          Alcotest.test_case "basics" `Quick test_json_basics;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "random round-trip" `Quick test_json_random_roundtrip;
          Alcotest.test_case "junk never raises" `Quick test_json_junk_never_raises;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_protocol_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_protocol_response_roundtrip;
          Alcotest.test_case "junk is an error, not a crash" `Quick test_protocol_junk_is_error;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "bounds and order" `Quick test_bqueue_bounds_and_order;
          Alcotest.test_case "blocking pop" `Quick test_bqueue_blocking_pop;
          Alcotest.test_case "close wakes blocked poppers" `Quick
            test_bqueue_close_wakes_blocked;
        ] );
      ( "framing",
        [
          Alcotest.test_case "socketpair framing" `Quick test_framing_socketpair;
          Alcotest.test_case "line too long" `Quick test_framing_line_too_long;
          Alcotest.test_case "CRLF lines at the length limit" `Quick
            test_framing_crlf_at_limit;
        ] );
      ( "client",
        [
          Alcotest.test_case "backoff honors retry_after hint" `Quick
            test_client_backoff_hint_floor;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent clients share the cache" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "junk and error replies" `Quick test_server_junk_and_errors;
          Alcotest.test_case "graceful shutdown under load" `Quick test_server_graceful_shutdown;
          Alcotest.test_case "shutdown request drains" `Quick test_server_shutdown_request;
          Alcotest.test_case "wont_make_it below the floor" `Quick test_server_wont_make_it;
          Alcotest.test_case "degraded anytime reply" `Quick test_server_degraded_reply;
        ] );
    ]
