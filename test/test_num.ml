(* Tests for Spp_num: bigint arithmetic cross-checked against native ints,
   decimal I/O round trips, Knuth-division edge cases, and rational field
   laws. *)

module B = Spp_num.Bigint
module Q = Spp_num.Rat

let check_b msg expected actual =
  Alcotest.(check string) msg expected (B.to_string actual)

let bi = B.of_int

(* ------------------------------------------------------------------ *)
(* Bigint unit tests *)

let test_of_int_small () =
  check_b "zero" "0" (bi 0);
  check_b "one" "1" (bi 1);
  check_b "neg" "-17" (bi (-17));
  check_b "limb boundary" "32768" (bi 32768);
  check_b "limb boundary - 1" "32767" (bi 32767);
  check_b "two limbs" "1073741824" (bi 1073741824)

let test_min_int () =
  (* abs min_int overflows natively; of_int must still be exact. *)
  check_b "min_int" (string_of_int min_int) (bi min_int);
  check_b "max_int" (string_of_int max_int) (bi max_int);
  Alcotest.(check (option int)) "roundtrip min_int" (Some min_int) (B.to_int_opt (bi min_int));
  Alcotest.(check (option int)) "roundtrip max_int" (Some max_int) (B.to_int_opt (bi max_int))

let test_to_int_overflow () =
  let big = B.mul (bi max_int) (bi 2) in
  Alcotest.(check (option int)) "overflow detected" None (B.to_int_opt big);
  Alcotest.(check (option int)) "neg overflow" None (B.to_int_opt (B.neg big))

let test_add_sub () =
  check_b "add" "100000000000000000000" (B.add (B.of_string "99999999999999999999") B.one);
  check_b "sub to zero" "0" (B.sub (B.of_string "12345678901234567890") (B.of_string "12345678901234567890"));
  check_b "sub sign flip" "-1" (B.sub (bi 5) (bi 6));
  check_b "add mixed signs" "3" (B.add (bi 10) (bi (-7)));
  check_b "add neg neg" "-30" (B.add (bi (-10)) (bi (-20)))

let test_mul () =
  check_b "mul zero" "0" (B.mul (bi 12345) B.zero);
  check_b "mul signs" "-6" (B.mul (bi 2) (bi (-3)));
  check_b "mul big"
    "121932631137021795226185032733622923332237463801111263526900"
    (B.mul (B.of_string "123456789012345678901234567890") (B.of_string "987654321098765432109876543210"));
  (* 2^200 computed by repeated squaring must match pow. *)
  check_b "pow vs mul" (B.to_string (B.pow B.two 200))
    (B.mul (B.pow B.two 100) (B.pow B.two 100))

let test_divmod_basic () =
  let q, r = B.divmod (bi 17) (bi 5) in
  check_b "q" "3" q;
  check_b "r" "2" r;
  let q, r = B.divmod (bi (-17)) (bi 5) in
  check_b "q neg" "-3" q;
  check_b "r neg (sign of dividend)" "-2" r;
  let q, r = B.divmod (bi 17) (bi (-5)) in
  check_b "q negdiv" "-3" q;
  check_b "r negdiv" "2" r;
  let q, r = B.divmod (bi 4) (bi 7) in
  check_b "q small" "0" q;
  check_b "r small" "4" r

let test_divmod_long () =
  (* Multi-limb division exercising Knuth algorithm D, including the rare
     add-back branch, via reconstruction checks on structured values. *)
  let a = B.of_string "340282366920938463463374607431768211457" (* 2^128 + 1 *) in
  let b = B.of_string "18446744073709551616" (* 2^64 *) in
  let q, r = B.divmod a b in
  check_b "q = 2^64" "18446744073709551616" q;
  check_b "r = 1" "1" r;
  (* Divisor with tiny top limb forces heavy normalisation. *)
  let a = B.pow (bi 10) 60 in
  let b = B.add (B.pow B.two 45) B.one in
  let q, r = B.divmod a b in
  check_b "reconstruct" (B.to_string a) (B.add (B.mul q b) r);
  Alcotest.(check bool) "r < b" true (B.compare r b < 0)

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_gcd () =
  check_b "gcd basic" "6" (B.gcd (bi 48) (bi 18));
  check_b "gcd with zero" "5" (B.gcd (bi 5) B.zero);
  check_b "gcd zero zero" "0" (B.gcd B.zero B.zero);
  check_b "gcd negatives" "4" (B.gcd (bi (-12)) (bi 8));
  (* gcd(fib 60, fib 59) = 1 *)
  let rec fib a b n = if n = 0 then a else fib b (B.add a b) (n - 1) in
  check_b "gcd consecutive fibs" "1" (B.gcd (fib B.zero B.one 60) (fib B.zero B.one 59))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) ("roundtrip " ^ s) s B.(to_string (of_string s)))
    [ "0"; "1"; "-1"; "32768"; "99999"; "123456789012345678901234567890";
      "-984376598437659823746587234658972346598723465987234659872346598" ];
  check_b "plus sign" "42" (B.of_string "+42");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string") (fun () ->
      ignore (B.of_string ""))

let test_karatsuba_crossover () =
  (* Operands far above the Karatsuba threshold (~32 limbs = ~145 decimal
     digits); validate against a symbolically known product and against the
     independent (schoolbook) division path. *)
  let p200 = B.pow (bi 10) 200 and p150 = B.pow (bi 10) 150 in
  let a = B.add p200 (bi 7) and b = B.add p150 (bi 3) in
  let product = B.mul a b in
  let expected =
    B.add
      (B.add (B.pow (bi 10) 350) (B.mul_int p200 3))
      (B.add (B.mul_int p150 7) (bi 21))
  in
  check_b "known product" (B.to_string expected) product;
  let q0, r0 = B.divmod product a in
  check_b "div back (q)" (B.to_string b) q0;
  check_b "div back (r)" "0" r0

let prop_karatsuba_matches_division =
  (* Large random operands: (a*b)/a = b with remainder 0; division is
     schoolbook, so this cross-checks the Karatsuba path end to end. *)
  QCheck.Test.make ~name:"karatsuba product consistent with division" ~count:50
    (QCheck.pair (QCheck.int_range 120 260) (QCheck.int_range 120 260))
    (fun (da, db) ->
      let digits rng n =
        String.concat "" ("1" :: List.init n (fun i -> string_of_int ((i * rng) mod 10)))
      in
      let a = B.of_string (digits da da) and b = B.of_string (digits db db) in
      let p = B.mul a b in
      let q0, r0 = B.divmod p a in
      B.equal q0 b && B.is_zero r0)

let test_factorial_100 () =
  let rec fact acc n = if n = 0 then acc else fact (B.mul acc (bi n)) (n - 1) in
  (* Known value of 100! *)
  check_b "100!"
    ("93326215443944152681699238856266700490715968264381621468592963895217599993229915"
    ^ "608941463976156518286253697920827223758251185210916864000000000000000000000000")
    (fact B.one 100)

let test_compare () =
  Alcotest.(check int) "lt" (-1) (B.compare (bi 3) (bi 4));
  Alcotest.(check int) "negs" 1 (B.compare (bi (-3)) (bi (-4)));
  Alcotest.(check int) "cross sign" (-1) (B.compare (bi (-1)) (bi 1));
  Alcotest.(check bool) "structural equality" true (B.equal (B.of_string "12345678999") (B.of_string "12345678999"))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "small" 42.0 (B.to_float (bi 42));
  Alcotest.(check (float 1e6)) "2^62" (2.0 ** 62.0) (B.to_float (B.pow B.two 62));
  Alcotest.(check (float 1e-9)) "neg" (-7.0) (B.to_float (bi (-7)))

let test_misc_queries () =
  Alcotest.(check int) "limb_count zero" 0 (B.limb_count B.zero);
  Alcotest.(check bool) "limb_count grows" true (B.limb_count (B.pow B.two 100) > B.limb_count (bi 5));
  Alcotest.(check int) "sign pos" 1 (B.sign (bi 3));
  Alcotest.(check int) "sign neg" (-1) (B.sign (bi (-3)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check int) "compare_int" 0 (B.compare_int (bi 42) 42);
  Alcotest.(check int) "compare_int lt" (-1) (B.compare_int (bi 41) 42);
  Alcotest.(check bool) "hash consistent" true (B.hash (bi 7) = B.hash (B.of_string "7"));
  check_b "mul_int" "-21" (B.mul_int (bi 7) (-3));
  let open B.Infix in
  Alcotest.(check bool) "infix" true ((bi 2 + bi 3) * bi 4 = bi 20 && bi 3 < bi 4 && bi 9 / bi 2 = bi 4)

let test_small_big_boundary () =
  (* The small/big representation boundary: every native int except
     min_int is small; crossing max_int in either direction goes big and
     coming back re-canonicalises to small. *)
  Alcotest.(check bool) "max_int is small" true (B.is_small (bi max_int));
  Alcotest.(check bool) "min_int+1 is small" true (B.is_small (bi (min_int + 1)));
  Alcotest.(check bool) "min_int is big" false (B.is_small (bi min_int));
  Alcotest.(check bool) "max_int+1 is big" false (B.is_small (B.add (bi max_int) B.one));
  Alcotest.(check bool) "re-canonicalises" true
    (B.is_small (B.sub (B.add (bi max_int) B.one) B.one));
  Alcotest.(check int) "small_value" 42 (B.small_value (bi 42));
  (* Native ints are 63-bit: max_int = 2^62 - 1, min_int = -2^62. *)
  check_b "add overflow" "4611686018427387904" (B.add (bi max_int) B.one);
  check_b "sub underflow" "-4611686018427387905" (B.sub (bi min_int) B.one);
  check_b "mul overflow" "21267647932558653957237540927630737409" (B.mul (bi max_int) (bi max_int));
  check_b "min_int negates" "4611686018427387904" (B.neg (bi min_int));
  check_b "min_int abs" "4611686018427387904" (B.abs (bi min_int));
  check_b "min_int divmod" (string_of_int (min_int / 2)) (fst (B.divmod (bi min_int) (bi 2)));
  Alcotest.(check bool) "equal across representations" true
    (B.equal (bi min_int) (B.sub (B.add (bi min_int) B.one) B.one))

(* ------------------------------------------------------------------ *)
(* Bigint property tests vs native ints *)

let int_pair = QCheck.pair (QCheck.int_range (-1_000_000_000) 1_000_000_000)
    (QCheck.int_range (-1_000_000_000) 1_000_000_000)

let prop_add_matches_native =
  QCheck.Test.make ~name:"bigint add matches native" ~count:500 int_pair (fun (a, b) ->
      B.to_int_exn (B.add (bi a) (bi b)) = a + b)

let prop_mul_matches_native =
  QCheck.Test.make ~name:"bigint mul matches native" ~count:500 int_pair (fun (a, b) ->
      B.to_int_exn (B.mul (bi a) (bi b)) = a * b)

let prop_divmod_matches_native =
  QCheck.Test.make ~name:"bigint divmod matches native" ~count:500 int_pair (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (bi a) (bi b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let big_gen =
  (* Random bigints with up to ~40 decimal digits, built from strings. *)
  QCheck.make
    ~print:B.to_string
    QCheck.Gen.(
      let* digits = int_range 1 40 in
      let* neg = bool in
      let* first = int_range 1 9 in
      let* rest = list_repeat (digits - 1) (int_range 0 9) in
      let s = String.concat "" (List.map string_of_int (first :: rest)) in
      return (if neg then B.neg (B.of_string s) else B.of_string s))

let prop_divmod_reconstruct =
  QCheck.Test.make ~name:"bigint divmod reconstructs" ~count:500 (QCheck.pair big_gen big_gen)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:500 big_gen (fun v ->
      B.equal v (B.of_string (B.to_string v)))

let prop_mul_commutative =
  QCheck.Test.make ~name:"bigint mul commutes" ~count:300 (QCheck.pair big_gen big_gen)
    (fun (a, b) -> B.equal (B.mul a b) (B.mul b a))

let prop_distributive =
  QCheck.Test.make ~name:"bigint distributivity" ~count:300
    (QCheck.triple big_gen big_gen big_gen)
    (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"bigint gcd divides both" ~count:300 (QCheck.pair big_gen big_gen)
    (fun (a, b) ->
      let g = B.gcd a b in
      if B.is_zero g then B.is_zero a && B.is_zero b
      else B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

(* ------------------------------------------------------------------ *)
(* Differential vs the reference implementation *)

module RB = Spp_num.Reference.Bigint
module RR = Spp_num.Reference.Rat

let ref_of b = RB.of_string (B.to_string b)

let prop_ref_bigint_ops =
  QCheck.Test.make ~name:"bigint ops match reference implementation" ~count:300
    (QCheck.pair big_gen big_gen) (fun (a, b) ->
      let ra = ref_of a and rb = ref_of b in
      B.to_string (B.add a b) = RB.to_string (RB.add ra rb)
      && B.to_string (B.sub a b) = RB.to_string (RB.sub ra rb)
      && B.to_string (B.mul a b) = RB.to_string (RB.mul ra rb)
      && B.to_string (B.gcd a b) = RB.to_string (RB.gcd ra rb)
      && B.compare a b = RB.compare ra rb
      && (B.is_zero b
          ||
          let q, r = B.divmod a b and rq, rr = RB.divmod ra rb in
          B.to_string q = RB.to_string rq && B.to_string r = RB.to_string rr))

let prop_ref_rat_ops =
  QCheck.Test.make ~name:"rat ops match reference implementation" ~count:300
    (QCheck.quad big_gen big_gen big_gen big_gen) (fun (a, b, c, d) ->
      QCheck.assume (not (B.is_zero b || B.is_zero d));
      let x = Q.make a b and y = Q.make c d in
      let rx = RR.make (ref_of a) (ref_of b) and ry = RR.make (ref_of c) (ref_of d) in
      Q.to_string (Q.add x y) = RR.to_string (RR.add rx ry)
      && Q.to_string (Q.sub x y) = RR.to_string (RR.sub rx ry)
      && Q.to_string (Q.mul x y) = RR.to_string (RR.mul rx ry)
      && Q.compare x y = RR.compare rx ry
      && (Q.is_zero y || Q.to_string (Q.div x y) = RR.to_string (RR.div rx ry)))

(* ------------------------------------------------------------------ *)
(* Rational unit tests *)

let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_rat_normalisation () =
  check_q "reduce" "2/3" (Q.of_ints 4 6);
  check_q "sign to num" "-2/3" (Q.of_ints 2 (-3));
  check_q "double neg" "2/3" (Q.of_ints (-2) (-3));
  check_q "zero canonical" "0" (Q.of_ints 0 7);
  check_q "integer hides den" "5" (Q.of_ints 10 2)

let test_rat_den_invariant () =
  (* [make] is the single normalisation point: whatever route a rational
     takes (small fast path, big path, inv, mul cross-reduction, pow),
     den > 0 and gcd (num, den) = 1 must hold on the result. *)
  let check_normal msg v =
    Alcotest.(check bool) (msg ^ ": den > 0") true (B.sign (Q.den v) > 0);
    Alcotest.(check bool) (msg ^ ": coprime") true
      (Q.is_zero v || B.equal (B.gcd (Q.num v) (Q.den v)) B.one);
    Alcotest.(check bool) (msg ^ ": zero canonical") true
      (not (Q.is_zero v) || B.equal (Q.den v) B.one)
  in
  let big = B.mul (bi max_int) (bi 3) in
  check_normal "small neg den" (Q.of_ints 4 (-6));
  check_normal "big neg den" (Q.make big (B.neg (B.mul big (bi 2))));
  check_normal "inv of negative" (Q.inv (Q.of_ints (-3) 7));
  check_normal "mul of negatives" (Q.mul (Q.of_ints (-2) 3) (Q.of_ints 3 (-4)));
  check_normal "div result" (Q.div (Q.of_ints 5 6) (Q.of_ints (-10) 9));
  check_normal "neg pow" (Q.pow (Q.of_ints (-2) 3) (-2));
  check_normal "sub to zero" (Q.sub (Q.of_ints 1 3) (Q.of_ints 2 6));
  check_normal "big add" (Q.add (Q.of_bigint big) (Q.make B.one big));
  check_q "inv moves sign" "-7/3" (Q.inv (Q.of_ints (-3) 7));
  check_q "big neg den value" "-1/2" (Q.make big (B.neg (B.mul big (bi 2))))

let prop_rat_normalised =
  QCheck.Test.make ~name:"rat make always normalises (den > 0, coprime)" ~count:500
    (QCheck.pair big_gen big_gen) (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let v = Q.make a b in
      B.sign (Q.den v) > 0
      && (Q.is_zero v || B.equal (B.gcd (Q.num v) (Q.den v)) B.one)
      && (not (Q.is_zero v) || B.equal (Q.den v) B.one))

let test_rat_arith () =
  check_q "add" "5/6" (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "sub" "1/6" (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "mul" "1/6" (Q.mul (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "div" "3/2" (Q.div (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check_raises "div zero" Division_by_zero (fun () -> ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_rat_floor_ceil () =
  let fc v = (B.to_int_exn (Q.floor v), B.to_int_exn (Q.ceil v)) in
  Alcotest.(check (pair int int)) "7/2" (3, 4) (fc (Q.of_ints 7 2));
  Alcotest.(check (pair int int)) "-7/2" (-4, -3) (fc (Q.of_ints (-7) 2));
  Alcotest.(check (pair int int)) "exact" (5, 5) (fc (Q.of_int 5));
  Alcotest.(check (pair int int)) "-exact" (-5, -5) (fc (Q.of_int (-5)))

let test_rat_compare () =
  Alcotest.(check int) "1/3 < 1/2" (-1) (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2));
  Alcotest.(check int) "equal cross-rep" 0 (Q.compare (Q.of_ints 2 4) (Q.of_ints 1 2));
  Alcotest.(check int) "negatives" 1 (Q.compare (Q.of_ints (-1) 3) (Q.of_ints (-1) 2))

let test_rat_of_string () =
  check_q "int" "42" (Q.of_string "42");
  check_q "frac" "-3/4" (Q.of_string "-3/4");
  check_q "decimal" "13/4" (Q.of_string "3.25");
  check_q "neg decimal" "-1/8" (Q.of_string "-0.125");
  check_q "decimal trailing" "1/2" (Q.of_string "0.500")

let test_rat_pow_min_max () =
  check_q "pow pos" "8/27" (Q.pow (Q.of_ints 2 3) 3);
  check_q "pow zero" "1" (Q.pow (Q.of_ints 5 7) 0);
  check_q "pow neg" "9/4" (Q.pow (Q.of_ints 2 3) (-2));
  Alcotest.check_raises "pow zero neg" Division_by_zero (fun () -> ignore (Q.pow Q.zero (-1)));
  check_q "min" "1/3" (Q.min (Q.of_ints 1 3) (Q.of_ints 1 2));
  check_q "max" "1/2" (Q.max (Q.of_ints 1 3) (Q.of_ints 1 2));
  check_q "abs" "3/4" (Q.abs (Q.of_ints (-3) 4));
  let open Q.Infix in
  Alcotest.(check bool) "infix" true
    (Q.of_ints 1 2 + Q.of_ints 1 3 = Q.of_ints 5 6 && Q.of_ints 1 3 < Q.of_ints 1 2)

let test_rat_of_float_approx () =
  check_q "1/3" "1/3" (Q.of_float_approx (1.0 /. 3.0) ~max_den:100);
  check_q "0.5" "1/2" (Q.of_float_approx 0.5 ~max_den:10);
  check_q "neg" "-1/4" (Q.of_float_approx (-0.25) ~max_den:10);
  check_q "integer" "7" (Q.of_float_approx 7.0 ~max_den:10)

(* ------------------------------------------------------------------ *)
(* Rational property tests: field laws *)

let rat_gen =
  QCheck.make ~print:Q.to_string
    QCheck.Gen.(
      let* n = int_range (-10_000) 10_000 in
      let* d = int_range 1 10_000 in
      return (Q.of_ints n d))

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat add associative" ~count:300 (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) -> Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c))

let prop_rat_mul_inverse =
  QCheck.Test.make ~name:"rat mul inverse" ~count:300 rat_gen (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal Q.one (Q.mul a (Q.inv a)))

let prop_rat_total_order =
  QCheck.Test.make ~name:"rat order consistent with floats" ~count:300 (QCheck.pair rat_gen rat_gen)
    (fun (a, b) ->
      let c = Q.compare a b in
      let fa = Q.to_float a and fb = Q.to_float b in
      if Float.abs (fa -. fb) > 1e-6 then (c < 0) = (fa < fb) else true)

let prop_rat_floor_bound =
  QCheck.Test.make ~name:"rat floor within 1" ~count:300 rat_gen (fun a ->
      let f = Q.of_bigint (Q.floor a) in
      Q.compare f a <= 0 && Q.compare a (Q.add f Q.one) < 0)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_num"
    [
      ( "bigint-unit",
        [
          Alcotest.test_case "of_int small" `Quick test_of_int_small;
          Alcotest.test_case "min_int/max_int" `Quick test_min_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod basic" `Quick test_divmod_basic;
          Alcotest.test_case "divmod multi-limb" `Quick test_divmod_long;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "factorial 100" `Quick test_factorial_100;
          Alcotest.test_case "karatsuba crossover" `Quick test_karatsuba_crossover;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "misc queries" `Quick test_misc_queries;
          Alcotest.test_case "small/big boundary" `Quick test_small_big_boundary;
        ] );
      ( "bigint-props",
        qsuite
          [
            prop_add_matches_native;
            prop_mul_matches_native;
            prop_divmod_matches_native;
            prop_divmod_reconstruct;
            prop_string_roundtrip;
            prop_mul_commutative;
            prop_distributive;
            prop_gcd_divides;
            prop_karatsuba_matches_division;
          ] );
      ("reference-diff", qsuite [ prop_ref_bigint_ops; prop_ref_rat_ops ]);
      ( "rat-unit",
        [
          Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
          Alcotest.test_case "den > 0 invariant" `Quick test_rat_den_invariant;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
          Alcotest.test_case "pow/min/max/abs" `Quick test_rat_pow_min_max;
          Alcotest.test_case "of_float_approx" `Quick test_rat_of_float_approx;
        ] );
      ( "rat-props",
        qsuite
          [ prop_rat_add_assoc; prop_rat_mul_inverse; prop_rat_total_order; prop_rat_floor_bound;
            prop_rat_normalised ] );
    ]
