(* Tests for the property-based verification harness (Spp_check): the
   runner's determinism and shrinking mechanics, the planted-bug self test
   (the harness must catch a deliberately broken solver and minimize the
   counterexample), bounded fixed-seed slices of the real property suite
   over both variants, the shrinker/mutation contracts, and the spp fuzz
   CLI surface. The full-throttle runs live in CI's nightly fuzz job; what
   runs here is a deterministic slice small enough for tier-1. *)

module Q = Spp_num.Rat
module Prng = Spp_util.Prng
module I = Spp_core.Instance
module Io = Spp_core.Io
module Dag = Spp_dag.Dag
module Mutate = Spp_workloads.Mutate
module Runner = Spp_check.Runner
module Arb = Spp_check.Arb
module Props = Spp_check.Props

(* ------------------------------------------------------------------ *)
(* Runner mechanics, on a transparent integer arbitrary *)

let int_arb : int Runner.arbitrary =
  {
    Runner.generate = (fun rng -> Prng.int rng 1_000);
    (* Classic integer shrinker: toward zero by halving, then decrement. *)
    shrink =
      (fun n ->
        List.to_seq
          (List.filter (fun m -> m <> n) [ n / 2; n - ((n - (n / 2)) / 2); n - 1 ]));
    print = string_of_int;
  }

let ge_10 : int Runner.property =
  {
    Runner.name = "int.lt.10";
    doc = "fails on any value >= 10";
    tags = [];
    check = (fun n -> if n < 10 then Runner.Pass else Runner.Fail (string_of_int n));
  }

let test_runner_deterministic () =
  let go () = Runner.run ~cases:40 ~seed:5 int_arb [ ge_10 ] in
  let a = go () and b = go () in
  Alcotest.(check int) "cases agree" a.Runner.cases b.Runner.cases;
  Alcotest.(check int) "checks agree" a.Runner.checks b.Runner.checks;
  Alcotest.(check int) "failure count agrees" (List.length a.Runner.failures)
    (List.length b.Runner.failures);
  List.iter2
    (fun (x : int Runner.failure) (y : int Runner.failure) ->
      Alcotest.(check int) "case seeds agree" x.Runner.case_seed y.Runner.case_seed;
      Alcotest.(check int) "minimized values agree" x.Runner.minimized y.Runner.minimized)
    a.Runner.failures b.Runner.failures

let test_runner_shrinks_to_boundary () =
  let report = Runner.run ~cases:50 ~seed:1 int_arb [ ge_10 ] in
  match report.Runner.failures with
  | [ f ] ->
    (* Greedy halving from any failing value must land exactly on the
       boundary: 10 is the unique local minimum of this predicate. *)
    Alcotest.(check int) "minimized to the boundary" 10 f.Runner.minimized;
    Alcotest.(check string) "message is the minimized value" "10" f.Runner.message;
    Alcotest.(check bool) "took shrink steps" true (f.Runner.shrink_steps > 0)
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs)

let test_runner_skip_accounting () =
  let skipper =
    { Runner.name = "always.skip"; doc = ""; tags = []; check = (fun _ -> Runner.Skip) }
  in
  let report = Runner.run ~cases:25 ~seed:2 int_arb [ skipper ] in
  Alcotest.(check int) "no checks" 0 report.Runner.checks;
  Alcotest.(check int) "all skips" 25 report.Runner.skips;
  Alcotest.(check (list (pair string int))) "per-property count" [ ("always.skip", 0) ]
    report.Runner.per_property

let test_runner_exception_is_failure () =
  let thrower =
    {
      Runner.name = "always.raise";
      doc = "";
      tags = [];
      check = (fun n -> if n > 2 then failwith "boom" else Runner.Pass);
    }
  in
  let report = Runner.run ~cases:20 ~seed:3 int_arb [ thrower ] in
  match report.Runner.failures with
  | [ f ] ->
    Alcotest.(check bool) "message names the exception" true
      (let msg = f.Runner.message in
       String.length msg >= 18 && String.sub msg 0 18 = "uncaught exception")
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_runner_replay_matches_run () =
  let report = Runner.run ~cases:50 ~seed:9 int_arb [ ge_10 ] in
  match report.Runner.failures with
  | [ f ] -> (
    let replayed = Runner.replay ~case_seed:f.Runner.case_seed int_arb [ ge_10 ] in
    match replayed.Runner.failures with
    | [ f' ] ->
      Alcotest.(check int) "same original value" f.Runner.original f'.Runner.original;
      Alcotest.(check int) "same minimized value" f.Runner.minimized f'.Runner.minimized
    | fs -> Alcotest.failf "replay produced %d failures" (List.length fs))
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_runner_deadline_stops_early () =
  let report = Runner.run ~cases:max_int ~deadline_ms:50.0 ~seed:4 int_arb [ ge_10 ] in
  Alcotest.(check bool) "stopped before max_int cases" true (report.Runner.cases < 1_000_000)

(* ------------------------------------------------------------------ *)
(* Planted bug: the self test that proves the harness has teeth *)

let rect_count = function
  | Io.Prec inst -> List.length inst.I.Prec.rects
  | Io.Release inst -> List.length inst.I.Release.tasks

let planted_report =
  lazy (Runner.run ~cases:50 ~seed:42 (Arb.parsed ~variant:`Prec) [ Props.planted_bug ])

let test_planted_bug_caught () =
  let report = Lazy.force planted_report in
  Alcotest.(check int) "exactly one failure" 1 (List.length report.Runner.failures)

let test_planted_bug_minimized () =
  let report = Lazy.force planted_report in
  match report.Runner.failures with
  | [ f ] ->
    Alcotest.(check bool)
      (Printf.sprintf "minimized to %d rects (<= 5)" (rect_count f.Runner.minimized))
      true
      (rect_count f.Runner.minimized <= 5);
    (* The minimized counterexample must itself be a parseable instance. *)
    let arb = Arb.parsed ~variant:`Prec in
    (match Io.parse_string (arb.Runner.print f.Runner.minimized) with
     | Io.Prec _ -> ()
     | Io.Release _ -> Alcotest.fail "minimized instance changed variant")
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_planted_bug_replay_deterministic () =
  let report = Lazy.force planted_report in
  match report.Runner.failures with
  | [ f ] -> (
    let arb = Arb.parsed ~variant:`Prec in
    let replayed = Runner.replay ~case_seed:f.Runner.case_seed arb [ Props.planted_bug ] in
    match replayed.Runner.failures with
    | [ f' ] ->
      Alcotest.(check string) "replay minimizes to the identical instance"
        (arb.Runner.print f.Runner.minimized)
        (arb.Runner.print f'.Runner.minimized)
    | fs -> Alcotest.failf "replay produced %d failures" (List.length fs))
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* Fixed-seed slices of the real suite: a bounded, deterministic version
   of what the nightly fuzz job runs for minutes. Zero failures expected —
   any failure here is a real bug in a solver (or a wrong property). *)

let pp_failures (arb : Io.parsed Runner.arbitrary) failures =
  String.concat "\n"
    (List.map
       (fun (f : Io.parsed Runner.failure) ->
         Printf.sprintf "%s (replay seed %d): %s\n%s" f.Runner.property f.Runner.case_seed
           f.Runner.message
           (arb.Runner.print f.Runner.minimized))
       failures)

let slice variant () =
  let arb = Arb.parsed ~variant in
  let props = Props.select ~variant () in
  let report = Runner.run ~cases:12 ~seed:7 arb props in
  if report.Runner.failures <> [] then
    Alcotest.failf "property violations:\n%s" (pp_failures arb report.Runner.failures);
  Alcotest.(check bool) "every case was generated" true (report.Runner.cases = 12);
  Alcotest.(check bool) "some checks actually ran" true (report.Runner.checks > 0)

(* ------------------------------------------------------------------ *)
(* Shrinker and mutation contracts *)

let gen_prec seed =
  let rng = Prng.create seed in
  Spp_workloads.Generators.random_prec rng ~n:10 ~k:6 ~h_den:4 ~shape:`Series_parallel

let gen_release seed =
  let rng = Prng.create seed in
  Spp_workloads.Generators.random_release rng ~n:8 ~k:4 ~h_den:4 ~r_den:2 ~load:1.2

let test_shrink_prec_measure_decreases () =
  List.iter
    (fun seed ->
      let inst = gen_prec seed in
      let m = Mutate.prec_measure inst in
      Seq.iter
        (fun cand ->
          let m' = Mutate.prec_measure cand in
          if m' >= m then
            Alcotest.failf "candidate measure %d >= original %d (seed %d)" m' m seed)
        (Mutate.shrink_prec inst))
    [ 1; 2; 3; 4; 5 ]

let test_shrink_release_measure_decreases () =
  List.iter
    (fun seed ->
      let inst = gen_release seed in
      let m = Mutate.release_measure inst in
      Seq.iter
        (fun cand ->
          let m' = Mutate.release_measure cand in
          if m' >= m then
            Alcotest.failf "candidate measure %d >= original %d (seed %d)" m' m seed)
        (Mutate.shrink_release inst))
    [ 1; 2; 3; 4; 5 ]

let test_shrink_terminates_at_fixpoint () =
  (* Following first candidates repeatedly must bottom out: the measure is
     a strictly decreasing nat, so the chain is finite. *)
  let rec descend inst fuel =
    if fuel = 0 then Alcotest.fail "shrink chain exceeded the measure bound"
    else
      match Mutate.shrink_prec inst () with
      | Seq.Nil -> ()
      | Seq.Cons (cand, _) -> descend cand (fuel - 1)
  in
  let inst = gen_prec 6 in
  descend inst (Mutate.prec_measure inst + 1)

let test_relabel_rejects_non_monotone () =
  let inst = gen_prec 7 in
  Alcotest.check_raises "non-monotone map rejected"
    (Invalid_argument "Mutate.relabel: map must be strictly monotone on the instance ids")
    (fun () ->
      ignore (Mutate.relabel_prec ~f:(fun id -> -id) inst))

let test_drop_edge_removes_one () =
  let inst = gen_prec 8 in
  match Dag.edges inst.I.Prec.dag with
  | [] -> Alcotest.fail "generator produced no edges for this seed"
  | e :: _ ->
    let inst' = Mutate.drop_edge inst e in
    Alcotest.(check int) "one edge fewer"
      (Dag.num_edges inst.I.Prec.dag - 1)
      (Dag.num_edges inst'.I.Prec.dag);
    Alcotest.(check int) "rects untouched" (I.Prec.size inst) (I.Prec.size inst')

let test_slacken_zero_releases_everything () =
  let inst = gen_release 9 in
  let zero = Mutate.slacken_releases ~factor:Q.zero inst in
  List.iter
    (fun (t : I.Release.task) ->
      if not (Q.is_zero t.release) then Alcotest.fail "nonzero release after zero slackening")
    zero.I.Release.tasks

(* ------------------------------------------------------------------ *)
(* CLI surface: exit codes and artifacts. Tests run from
   _build/default/test, so the built binary sits at ../bin/spp.exe. *)

let spp_exe = Filename.concat ".." (Filename.concat "bin" "spp.exe")

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote spp_exe) args)

let test_cli_clean_run_exits_zero () =
  Alcotest.(check int) "3 clean cases exit 0" 0 (run_cli "fuzz --cases 3 --seed 1")

let test_cli_list_exits_zero () =
  Alcotest.(check int) "--list exits 0" 0 (run_cli "fuzz --list")

let test_cli_unknown_algo_exits_one () =
  Alcotest.(check int) "unknown --algos exits 1" 1 (run_cli "fuzz --cases 1 --algos nosuch")

let test_cli_self_test_writes_artifacts () =
  let dir = Filename.temp_file "spp_fuzz_out" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Alcotest.(check int) "self-test exits 0 when the bug is caught" 0
        (run_cli
           (Printf.sprintf "fuzz --self-test --cases 50 --seed 42 --out %s"
              (Filename.quote dir)));
      Alcotest.(check bool) "JSON report written" true
        (Sys.file_exists (Filename.concat dir "fuzz-report.json"));
      let minimized =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".spp")
      in
      Alcotest.(check int) "one minimized counterexample" 1 (List.length minimized);
      (* The minimized artifact must be a parseable instance file. *)
      match Io.read_file (Filename.concat dir (List.hd minimized)) with
      | Io.Prec _ -> ()
      | Io.Release _ -> Alcotest.fail "planted-bug counterexample changed variant")

let () =
  Alcotest.run "spp_check"
    [
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "shrinks to the boundary" `Quick test_runner_shrinks_to_boundary;
          Alcotest.test_case "skip accounting" `Quick test_runner_skip_accounting;
          Alcotest.test_case "exception becomes failure" `Quick test_runner_exception_is_failure;
          Alcotest.test_case "replay matches run" `Quick test_runner_replay_matches_run;
          Alcotest.test_case "deadline stops early" `Quick test_runner_deadline_stops_early;
        ] );
      ( "planted-bug",
        [
          Alcotest.test_case "caught" `Quick test_planted_bug_caught;
          Alcotest.test_case "minimized to <= 5 rects" `Quick test_planted_bug_minimized;
          Alcotest.test_case "replay deterministic" `Quick test_planted_bug_replay_deterministic;
        ] );
      ( "suite-slice",
        [
          Alcotest.test_case "prec properties, fixed seed" `Quick (slice `Prec);
          Alcotest.test_case "release properties, fixed seed" `Quick (slice `Release);
        ] );
      ( "shrink-mutate",
        [
          Alcotest.test_case "prec measure decreases" `Quick test_shrink_prec_measure_decreases;
          Alcotest.test_case "release measure decreases" `Quick
            test_shrink_release_measure_decreases;
          Alcotest.test_case "greedy descent terminates" `Quick test_shrink_terminates_at_fixpoint;
          Alcotest.test_case "relabel rejects non-monotone" `Quick
            test_relabel_rejects_non_monotone;
          Alcotest.test_case "drop_edge removes one" `Quick test_drop_edge_removes_one;
          Alcotest.test_case "slacken to zero" `Quick test_slacken_zero_releases_everything;
        ] );
      ( "cli",
        [
          Alcotest.test_case "clean run exits 0" `Quick test_cli_clean_run_exits_zero;
          Alcotest.test_case "--list exits 0" `Quick test_cli_list_exits_zero;
          Alcotest.test_case "unknown algo exits 1" `Quick test_cli_unknown_algo_exits_one;
          Alcotest.test_case "self-test writes artifacts" `Quick
            test_cli_self_test_writes_artifacts;
        ] );
    ]
