(* spp — command-line front end.

   Subcommands:
     gen       generate an instance (random/adversarial/pipeline) to stdout
     pack      pack a precedence instance with a chosen algorithm
     solve     portfolio engine: race algorithms under a budget, with caching
     batch     run the engine over every *.spp file in a directory
     aptas     run the release-time APTAS
     bounds    print the lower bounds of an instance
     exact     exact/reference solutions for small instances
     simulate  pack and execute on the simulated FPGA, print a Gantt chart
     sim       event-driven online arrival simulation with live repacking
     serve     long-running engine daemon on a Unix/TCP socket
     proxy     cluster front tier: consistent-hash route over spp serve backends
     client    one request against a running spp serve
     loadgen   closed-loop load generator with latency percentiles
     trace     solve one instance locally and print its span tree
     top       live dashboard over one or more /metrics endpoints
     fuzz      property-based differential fuzzer with shrinking *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Prng = Spp_util.Prng
module Table = Spp_util.Table
module I = Spp_core.Instance
module Io = Spp_core.Io
module Validate = Spp_core.Validate
module Engine = Spp_engine.Engine
module Telemetry = Spp_engine.Telemetry
module Framing = Spp_server.Framing
module Protocol = Spp_server.Protocol
module Server = Spp_server.Server
module Client = Spp_server.Client
module Signals = Spp_server.Signals
module Metrics_http = Spp_server.Metrics_http
module Json = Spp_server.Json
module Proxy = Spp_cluster.Proxy
module Clock = Spp_util.Clock
module Stats = Spp_util.Stats
module Log = Spp_obs.Log
module Trace = Spp_obs.Trace
module Field = Spp_obs.Field
module Metrics = Spp_obs.Metrics
module Promtext = Spp_obs.Promtext
open Cmdliner

(* Distinct failure exit codes (sysexits.h): a malformed instance file is
   EX_DATAERR, a missing/unreadable one EX_NOINPUT. Tested in test_io.ml. *)
let exit_parse_error = 65
let exit_io_error = 66

let read_instance path =
  try Io.read_file path with
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    Printf.eprintf "hint: %s is not a valid instance file; see the format in README.md or generate one with 'spp gen'\n" path;
    exit exit_parse_error
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit exit_io_error

let require_prec path =
  match read_instance path with
  | Io.Prec inst -> inst
  | Io.Release _ ->
    Printf.eprintf "error: %s is a release-time instance; this command needs a precedence one\n"
      path;
    exit 1

let require_release path =
  match read_instance path with
  | Io.Release inst -> inst
  | Io.Prec _ ->
    Printf.eprintf "error: %s is a precedence instance; this command needs a release-time one\n"
      path;
    exit 1

let rat_arg =
  let parse s = try Ok (Q.of_string s) with _ -> Error (`Msg (Printf.sprintf "bad rational %S" s)) in
  Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt (Q.to_string v))

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let kind =
    Arg.(
      required
      & opt (some (enum
                     [ ("random-prec", `Random_prec); ("random-uniform", `Random_uniform);
                       ("random-release", `Random_release); ("fig1", `Fig1); ("fig2", `Fig2);
                       ("jpeg", `Jpeg); ("packet", `Packet) ])) None
      & info [ "kind" ] ~doc:"Workload kind.")
  in
  let n = Arg.(value & opt int 20 & info [ "size" ] ~doc:"Number of rectangles (random kinds).") in
  let k = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"FPGA columns / width granularity.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let param =
    Arg.(value & opt int 4 & info [ "param" ] ~doc:"Family parameter: fig1/fig2 k, jpeg blocks, packet flows.")
  in
  let run kind n k seed param =
    let rng = Prng.create seed in
    let out =
      match kind with
      | `Random_prec ->
        Io.prec_to_string
          (Spp_workloads.Generators.random_prec rng ~n ~k ~h_den:4 ~shape:`Series_parallel)
      | `Random_uniform ->
        Io.prec_to_string (Spp_workloads.Generators.random_uniform_prec rng ~n ~k ~shape:`Layered)
      | `Random_release ->
        Io.release_to_string
          (Spp_workloads.Generators.random_release rng ~n ~k ~h_den:4 ~r_den:2 ~load:1.3)
      | `Fig1 -> Io.prec_to_string (Spp_workloads.Adversarial.fig1 ~k:param ~eps_den:1000)
      | `Fig2 -> Io.prec_to_string (Spp_workloads.Adversarial.fig2 ~k:param ~eps_den:1000)
      | `Jpeg -> Io.prec_to_string (Spp_workloads.Generators.jpeg_pipeline ~blocks:param ~k)
      | `Packet -> Io.prec_to_string (Spp_workloads.Generators.packet_pipeline ~flows:param ~k)
    in
    print_string out
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate an instance to stdout")
    Term.(const run $ kind $ n $ k $ seed $ param)

(* ------------------------------------------------------------------ *)
(* pack *)

let alg_enum =
  [ ("dc", `Dc); ("f", `F); ("pff", `Pff); ("wave", `Wave); ("ls", `Ls); ("nfdh", `Nfdh);
    ("ffdh", `Ffdh); ("bfdh", `Bfdh); ("bl", `Bl) ]

let pack_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let alg =
    Arg.(value & opt (enum alg_enum) `Dc
         & info [ "alg" ] ~doc:"Algorithm: dc, f (uniform next-fit), pff, wave, ls, nfdh, ffdh, bfdh, bl.")
  in
  let render = Arg.(value & flag & info [ "render" ] ~doc:"Print an ASCII picture of the packing.") in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~doc:"Also write the packing as an SVG file.")
  in
  let run file alg render_flag svg_path =
    let inst = require_prec file in
    let p =
      match alg with
      | `Dc -> fst (Spp_core.Dc.pack inst)
      | `F -> fst (Spp_core.Uniform.next_fit_shelf inst)
      | `Pff -> fst (Spp_core.Uniform.prec_first_fit inst)
      | `Wave -> fst (Spp_core.Uniform.wave_ffd inst)
      | `Ls -> Spp_core.List_schedule.prec inst
      | `Nfdh -> Spp_pack.Level.nfdh inst.rects
      | `Ffdh -> Spp_pack.Level.ffdh inst.rects
      | `Bfdh -> Spp_pack.Level.bfdh inst.rects
      | `Bl -> Spp_pack.Bottom_left.pack inst.rects
    in
    (match alg with
     | `Nfdh | `Ffdh | `Bfdh | `Bl ->
       (* Unconstrained baselines ignore the DAG; say so rather than lie. *)
       if Spp_dag.Dag.num_edges inst.dag > 0 then
         Printf.eprintf "note: %d precedence edges ignored by this baseline\n"
           (Spp_dag.Dag.num_edges inst.dag)
     | _ ->
       (match Validate.check_prec inst p with
        | [] -> ()
        | v :: _ ->
          Printf.eprintf "BUG: invalid packing: %s\n" (Format.asprintf "%a" Validate.pp_violation v);
          exit 3));
    print_string (Io.placement_to_string p);
    if render_flag then print_endline (Spp_geom.Render.render p);
    Option.iter (fun path -> Spp_geom.Svg.save path p) svg_path
  in
  Cmd.v (Cmd.info "pack" ~doc:"Pack a precedence instance")
    Term.(const run $ file $ alg $ render $ svg)

(* ------------------------------------------------------------------ *)
(* solve / batch — the portfolio engine *)

let default_cache_dir () =
  match Sys.getenv_opt "SPP_CACHE_DIR" with
  | Some d when d <> "" -> Some d
  | Some _ -> None
  | None -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Some (Filename.concat d "spp")
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Some (Filename.concat (Filename.concat h ".cache") "spp")
      | _ -> None))

let budget_arg =
  Arg.(value & opt (some float) None
       & info [ "budget-ms" ] ~doc:"Wall-clock budget in milliseconds shared by all racers.")

let algos_arg =
  Arg.(value & opt (some (list string)) None
       & info [ "algos" ]
           ~doc:"Comma-separated portfolio members (default: all applicable). Known: dc, f, pff, \
                 wave, bb, order, aptas, shelf, ls.")

let workers_arg =
  Arg.(value & opt (some int) None
       & info [ "workers" ] ~doc:"Domains racing at once (default: up to 8, one per core).")

let stats_json_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ]
           ~doc:"Write telemetry as JSON lines to this file ('-' for stderr).")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ]
           ~doc:"Disk cache directory (default: \\$SPP_CACHE_DIR, else \\$XDG_CACHE_HOME/spp, \
                 else ~/.cache/spp).")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the disk cache for this run.")

let cache_max_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-max" ]
           ~doc:(Printf.sprintf
                   "Disk cache entry cap; oldest entries are pruned above it (default %d)."
                   Spp_engine.Store.default_max_entries))

let make_engine ~cache_dir ~no_cache ~cache_max =
  (match cache_max with
   | Some n when n < 1 ->
     Printf.eprintf "error: --cache-max must be >= 1\n";
     exit 1
   | _ -> ());
  let store_dir = if no_cache then None else (match cache_dir with Some d -> Some d | None -> default_cache_dir ()) in
  Engine.create ?store_dir ?store_max_entries:cache_max ()

let write_stats engine = function
  | None -> ()
  | Some path ->
    let out = Telemetry.to_json_lines (Engine.telemetry engine) in
    if path = "-" then prerr_string out
    else Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc out)

let run_engine_solve engine ?budget_ms ?algos ?workers parsed =
  try Engine.solve ?budget_ms ?algos ?workers engine parsed with
  | Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let print_result (res : Engine.result) =
  Printf.printf "# winner %s\n" res.Engine.winner;
  Printf.printf "# source %s\n"
    (match res.Engine.source with
     | Engine.Computed -> "computed"
     | Engine.Memory_cache -> "cache.memory"
     | Engine.Disk_cache -> "cache.disk");
  List.iter
    (fun (o : Engine.outcome) ->
      Printf.printf "# solver %-6s %-9s%s  %.2fms\n" o.Engine.solver
        (Format.asprintf "%a" Engine.pp_status o.Engine.status)
        (match o.Engine.height with Some h -> "  height " ^ Q.to_string h | None -> "")
        o.Engine.time_ms)
    res.Engine.outcomes;
  print_string (Io.placement_to_string res.Engine.placement)

let solve_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~doc:"Solve the instance N times (exercises the instance cache).")
  in
  let run file budget_ms algos workers stats_json cache_dir no_cache cache_max repeat =
    let parsed = read_instance file in
    let engine = make_engine ~cache_dir ~no_cache ~cache_max in
    let res = ref None in
    for _ = 1 to max 1 repeat do
      res := Some (run_engine_solve engine ?budget_ms ?algos ?workers parsed)
    done;
    (match !res with Some r -> print_result r | None -> assert false);
    write_stats engine stats_json
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve with the portfolio engine (auto algorithm choice, budget, cache)")
    Term.(const run $ file $ budget_arg $ algos_arg $ workers_arg $ stats_json_arg
          $ cache_dir_arg $ no_cache_arg $ cache_max_arg $ repeat)

let batch_cmd =
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ]
             ~doc:"Solve up to N files concurrently. The engine (and both caches) is shared \
                   across jobs; per-solve racing narrows so jobs * racers stays near the core \
                   count unless $(b,--workers) is given.")
  in
  let run dir budget_ms algos workers stats_json cache_dir no_cache cache_max jobs =
    if jobs < 1 then begin
      Printf.eprintf "error: --jobs must be >= 1\n";
      exit 1
    end;
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".spp")
      |> List.sort compare
    in
    if files = [] then begin
      Printf.eprintf "error: no *.spp files in %s\n" dir;
      exit exit_io_error
    end;
    let engine = make_engine ~cache_dir ~no_cache ~cache_max in
    let solve_workers =
      match workers with
      | Some _ -> workers
      | None ->
        if jobs > 1 then Some (max 1 (Spp_util.Parallel.available_workers () / jobs)) else None
    in
    let t0 = Clock.now_ms () in
    let results =
      Spp_util.Parallel.map ~workers:jobs
        (fun f ->
          let path = Filename.concat dir f in
          match Io.read_file path with
          | exception (Failure msg | Sys_error msg) -> (f, Error msg)
          | parsed -> (
            let variant, n =
              match parsed with
              | Io.Prec inst -> ("prec", I.Prec.size inst)
              | Io.Release inst -> ("release", I.Release.size inst)
            in
            match Engine.solve ?budget_ms ?algos ?workers:solve_workers engine parsed with
            | res -> (f, Ok (variant, n, res))
            | exception Invalid_argument msg -> (f, Error msg)))
        files
    in
    let wall_ms = Clock.elapsed_ms t0 in
    let t = Table.create ~columns:[ "file"; "variant"; "n"; "winner"; "height"; "ms"; "source" ] in
    let failures = ref 0 and hits = ref 0 and wins = Hashtbl.create 8 in
    List.iter
      (fun (f, r) ->
        match r with
        | Error msg ->
          incr failures;
          Printf.eprintf "error: %s\n" msg;
          Table.add_row t [ f; "-"; "-"; "error"; "-"; "-"; "-" ]
        | Ok (variant, n, res) ->
          (match res.Engine.source with
           | Engine.Computed ->
             Hashtbl.replace wins res.Engine.winner
               (1 + Option.value ~default:0 (Hashtbl.find_opt wins res.Engine.winner))
           | Engine.Memory_cache | Engine.Disk_cache -> incr hits);
          Table.add_row t
            [ f; variant; string_of_int n; res.Engine.winner;
              Q.to_string res.Engine.height; Printf.sprintf "%.1f" res.Engine.time_ms;
              (match res.Engine.source with
               | Engine.Computed -> "computed"
               | Engine.Memory_cache -> "cache.memory"
               | Engine.Disk_cache -> "cache.disk") ])
      results;
    let win_counts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) wins []
      |> List.sort (fun (a, x) (b, y) -> match compare y x with 0 -> compare a b | c -> c)
      |> List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v)
      |> String.concat " "
    in
    Table.add_row t
      [ "(total)"; "-"; string_of_int (List.length files);
        (if win_counts = "" then "-" else win_counts); "-";
        Printf.sprintf "%.1f" wall_ms;
        Printf.sprintf "%d cache hit%s" !hits (if !hits = 1 then "" else "s") ];
    Table.print t;
    write_stats engine stats_json;
    if !failures > 0 then exit exit_parse_error
  in
  Cmd.v
    (Cmd.info "batch" ~doc:"Run the portfolio engine over every *.spp file in a directory")
    Term.(const run $ dir $ budget_arg $ algos_arg $ workers_arg $ stats_json_arg
          $ cache_dir_arg $ no_cache_arg $ cache_max_arg $ jobs)

(* ------------------------------------------------------------------ *)
(* aptas *)

let aptas_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let eps = Arg.(value & opt rat_arg Q.one & info [ "eps" ] ~doc:"Accuracy parameter (rational).") in
  let solver =
    Arg.(value & opt (enum [ ("enumerate", `Enumerate); ("colgen", `Column_generation) ]) `Enumerate
         & info [ "solver" ] ~doc:"Configuration LP solver: enumerate or colgen.")
  in
  let run file eps solver =
    let inst = require_release file in
    let res = Spp_core.Aptas.solve ~solver ~epsilon:eps inst in
    (match Validate.check_release inst res.Spp_core.Aptas.placement with
     | [] -> ()
     | v :: _ ->
       Printf.eprintf "BUG: invalid packing: %s\n" (Format.asprintf "%a" Validate.pp_violation v);
       exit 3);
    Printf.printf "height       %s\n" (Q.to_string res.Spp_core.Aptas.height);
    Printf.printf "fractional   %s\n" (Q.to_string res.Spp_core.Aptas.fractional_height);
    Printf.printf "lower bound  %s\n" (Q.to_string res.Spp_core.Aptas.lower_bound);
    Printf.printf "ratio        %.4f\n"
      (Q.to_float res.Spp_core.Aptas.height /. Q.to_float res.Spp_core.Aptas.lower_bound);
    Printf.printf "occurrences  %d (cap %d)\n" res.Spp_core.Aptas.occurrences
      res.Spp_core.Aptas.max_occurrences;
    Printf.printf "configs      %d, widths %d, phases %d (R=%d, W=%d)\n"
      res.Spp_core.Aptas.num_configs res.Spp_core.Aptas.num_widths res.Spp_core.Aptas.num_phases
      res.Spp_core.Aptas.r_param res.Spp_core.Aptas.w_param;
    print_string (Io.placement_to_string res.Spp_core.Aptas.placement)
  in
  Cmd.v (Cmd.info "aptas" ~doc:"Run the release-time APTAS (Algorithm 2)")
    Term.(const run $ file $ eps $ solver)

(* ------------------------------------------------------------------ *)
(* bounds *)

let bounds_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    match read_instance file with
    | Io.Prec inst ->
      Printf.printf "n              %d\n" (I.Prec.size inst);
      Printf.printf "edges          %d\n" (Spp_dag.Dag.num_edges inst.dag);
      Printf.printf "AREA(S)        %s\n" (Q.to_string (Spp_core.Lower_bounds.area inst));
      Printf.printf "F(S)           %s\n" (Q.to_string (Spp_core.Lower_bounds.critical_path inst));
      Printf.printf "LB = max       %s\n" (Q.to_string (Spp_core.Lower_bounds.prec inst));
      Printf.printf "DC bound       %.4f  (log2(n+1)*F + 2*AREA)\n" (Spp_core.Dc.theorem_2_3_bound inst)
    | Io.Release inst ->
      Printf.printf "n              %d\n" (I.Release.size inst);
      Printf.printf "K              %d\n" inst.k;
      Printf.printf "max release    %s\n" (Q.to_string (I.Release.max_release inst));
      Printf.printf "LB             %s\n" (Q.to_string (Spp_core.Lower_bounds.release inst))
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Print instance lower bounds") Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* exact *)

let exact_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let workers =
    Arg.(value & opt int 1
         & info [ "workers" ] ~doc:"Worker domains for the normal-position branch and bound.")
  in
  let run file workers =
    match read_instance file with
    | Io.Prec inst ->
      (match Spp_core.Uniform.uniform_height inst with
       | Some _ when I.Prec.size inst <= 20 ->
         Printf.printf "exact height (uniform DP)  %s\n"
           (Q.to_string (Spp_exact.Prec_binpack.min_height inst))
       | _ -> ());
      if I.Prec.size inst <= 10 then begin
        let out = Spp_exact.Order_search.best_prec inst in
        Printf.printf "best bottom-left height    %s  (%d nodes searched)\n"
          (Q.to_string out.Spp_exact.Order_search.height) out.Spp_exact.Order_search.nodes_expanded
      end;
      if I.Prec.size inst <= 9 then begin
        let out = Spp_exact.Normal_bb.solve ~workers inst in
        Printf.printf "exact optimum (normal B&B) %s  (%d nodes searched)\n"
          (Q.to_string out.Spp_exact.Normal_bb.height) out.Spp_exact.Normal_bb.nodes_expanded
      end;
      if I.Prec.size inst > 10 then
        Printf.printf "instance too large for the exact reference solvers (n > 10)\n"
    | Io.Release inst ->
      if I.Release.size inst <= 10 then begin
        let out = Spp_exact.Order_search.best_release inst in
        Printf.printf "best bottom-left height    %s  (%d nodes searched)\n"
          (Q.to_string out.Spp_exact.Order_search.height) out.Spp_exact.Order_search.nodes_expanded
      end
      else Printf.printf "instance too large for the exact reference solvers (n > 10)\n"
  in
  Cmd.v (Cmd.info "exact" ~doc:"Exact / reference solutions for small instances")
    Term.(const run $ file $ workers)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let columns = Arg.(value & opt int 8 & info [ "columns" ] ~doc:"Device columns K.") in
  let delay =
    Arg.(value & opt rat_arg Q.zero & info [ "reconfig-delay" ] ~doc:"Per-column reconfiguration delay.")
  in
  let run file columns delay =
    let inst = require_prec file in
    let p, _ = Spp_core.Dc.pack inst in
    let dev = Spp_fpga.Device.make ~columns ~reconfig_delay:delay () in
    match Spp_fpga.Schedule.of_placement ~device:dev p with
    | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | sched ->
      let rep = Spp_fpga.Sim.run ~dag:inst.dag sched in
      Printf.printf "makespan        %s\n" (Q.to_string rep.Spp_fpga.Sim.makespan);
      Printf.printf "utilisation     %.3f\n" rep.Spp_fpga.Sim.utilisation;
      Printf.printf "reconfigs       %d\n" rep.Spp_fpga.Sim.reconfigurations;
      (match rep.Spp_fpga.Sim.violations with
       | [] -> Printf.printf "violations      none\n"
       | vs ->
         Printf.printf "violations      %d\n" (List.length vs);
         List.iter (fun v -> Printf.printf "  %s\n" (Format.asprintf "%a" Spp_fpga.Sim.pp_violation v)) vs);
      print_endline (Spp_fpga.Sim.gantt sched)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Pack with DC and execute on the simulated FPGA")
    Term.(const run $ file $ columns $ delay)

(* ------------------------------------------------------------------ *)
(* online *)

let online_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let policy =
    Arg.(value & opt (enum [ ("earliest", `Earliest); ("leftmost", `Leftmost) ]) `Earliest
         & info [ "policy" ] ~doc:"Column-allocation policy: earliest or leftmost.")
  in
  let run file policy =
    let inst = require_release file in
    let dev = Spp_fpga.Device.make ~columns:inst.I.Release.k () in
    let arrivals = Spp_fpga.Online.arrivals_of_release inst in
    let sched = Spp_fpga.Online.schedule dev policy arrivals in
    let release id = I.Release.release inst id in
    let rep = Spp_fpga.Sim.run ~release sched in
    (match rep.Spp_fpga.Sim.violations with
     | [] -> ()
     | v :: _ ->
       Printf.eprintf "BUG: invalid schedule: %s\n" (Format.asprintf "%a" Spp_fpga.Sim.pp_violation v);
       exit 3);
    Printf.printf "makespan     %s\n" (Q.to_string rep.Spp_fpga.Sim.makespan);
    Printf.printf "utilisation  %.3f\n" rep.Spp_fpga.Sim.utilisation;
    print_endline (Spp_fpga.Sim.gantt sched)
  in
  Cmd.v (Cmd.info "online" ~doc:"Schedule a release-time instance online (FPGA OS view)")
    Term.(const run $ file $ policy)

(* ------------------------------------------------------------------ *)
(* sim — the event-driven online simulator over lib/sim *)

let sim_cmd =
  let module Sim = Spp_sim.Sim in
  let module Arrivals = Spp_sim.Arrivals in
  let module Online = Spp_sim.Online in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Replay a release-time .spp instance as the arrival trace.")
  in
  let arrival =
    Arg.(value & opt (some string) None
         & info [ "arrival" ] ~docv:"SPEC"
             ~doc:"Generate the trace instead: poisson:RATE or burst:LEN:GAP.")
  in
  let n = Arg.(value & opt int 40 & info [ "size" ] ~doc:"Tasks in a generated trace.") in
  let k = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"Strip columns for a generated trace.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Trace seed (generated traces).") in
  let packer =
    Arg.(value & opt string "first-fit"
         & info [ "packer" ] ~doc:"Online policy: first-fit or buffered[:K].")
  in
  let repack_threshold =
    Arg.(value & opt (some rat_arg) None
         & info [ "repack-threshold" ] ~docv:"Q"
             ~doc:"Repack whenever fragmentation is positive and at or above this rational \
                   (e.g. 1/4). Off by default.")
  in
  let migration_cost =
    Arg.(value & opt rat_arg Q.one
         & info [ "migration-cost" ] ~docv:"Q" ~doc:"Cost per migrated column cell (rational).")
  in
  let eps =
    Arg.(value & opt rat_arg Q.one
         & info [ "eps" ] ~doc:"Accuracy of the offline APTAS baseline (rational).")
  in
  let no_offline =
    Arg.(value & flag
         & info [ "no-offline" ]
             ~doc:"Skip the offline APTAS baseline (for traces too large to solve offline).")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ]
             ~doc:"Write the run report as one JSON object to this file ('-' for stdout). \
                   Contains no wall-clock fields: identical seeds give identical bytes.")
  in
  let run trace_file arrival n size_k seed packer repack_threshold migration_cost eps no_offline
      stats_json =
    let packer =
      match Online.parse packer with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let inst, source =
      match (trace_file, arrival) with
      | Some file, None -> (require_release file, "trace:" ^ Filename.basename file)
      | None, Some spec_s -> (
        match Arrivals.parse_spec spec_s with
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
        | Ok spec -> (Arrivals.trace ~n ~k:size_k ~seed spec, Arrivals.spec_to_string spec))
      | None, None | Some _, Some _ ->
        Printf.eprintf "error: pass exactly one of --trace FILE or --arrival SPEC\n";
        exit 1
    in
    let r = Sim.run ?repack_threshold ~migration_cost ~packer inst in
    let violations = Sim.check inst r in
    (match violations with
     | [] -> ()
     | v :: _ ->
       Printf.eprintf "BUG: unsound simulation: %s\n" (Format.asprintf "%a" Sim.pp_violation v));
    let lb = Spp_core.Lower_bounds.release inst in
    let offline =
      if no_offline then None else Some (Spp_core.Aptas.solve ~epsilon:eps inst)
    in
    let ratio_vs q = Q.to_float r.Sim.makespan /. Q.to_float q in
    Printf.printf "trace          %s (%d tasks, %d widened, K=%d)\n" source r.Sim.tasks
      r.Sim.widened r.Sim.k;
    Printf.printf "packer         %s%s\n" (Online.to_string packer)
      (match repack_threshold with
       | None -> ""
       | Some th -> Printf.sprintf ", repack at %s" (Q.to_string th));
    Printf.printf "makespan       %s\n" (Q.to_string r.Sim.makespan);
    Printf.printf "lower bound    %s  (ratio %.4f)\n" (Q.to_string lb) (ratio_vs lb);
    (match offline with
     | None -> ()
     | Some res ->
       Printf.printf "offline aptas  %s  (competitive ratio %.4f, certified LB %s)\n"
         (Q.to_string res.Spp_core.Aptas.height)
         (ratio_vs res.Spp_core.Aptas.height)
         (Q.to_string res.Spp_core.Aptas.lower_bound));
    Printf.printf "total wait     %s  (max pending %d)\n" (Q.to_string r.Sim.total_wait)
      r.Sim.max_pending;
    Printf.printf "repacks        %d (%d tasks moved, %d cells migrated, cost %s)\n"
      (List.length r.Sim.repacks) r.Sim.moves r.Sim.cells_migrated
      (Q.to_string r.Sim.migration_cost);
    Printf.printf "fragmentation  peak %s, time-weighted mean %s\n" (Q.to_string r.Sim.frag_peak)
      (Q.to_string r.Sim.frag_mean);
    Printf.printf "segments       %d\n" (List.length r.Sim.segments);
    (match stats_json with
     | None -> ()
     | Some path ->
       let q v = Json.String (Q.to_string v) in
       let obj =
         Json.Obj
           [ ("source", Json.String source);
             ("packer", Json.String (Online.to_string packer));
             ("repack_threshold",
              match repack_threshold with None -> Json.Null | Some th -> q th);
             ("k", Json.Int r.Sim.k); ("tasks", Json.Int r.Sim.tasks);
             ("widened", Json.Int r.Sim.widened); ("makespan", q r.Sim.makespan);
             ("lower_bound", q lb);
             ("offline_height",
              match offline with None -> Json.Null | Some res -> q res.Spp_core.Aptas.height);
             ("competitive_ratio",
              match offline with
              | None -> Json.Null
              | Some res -> Json.Float (ratio_vs res.Spp_core.Aptas.height));
             ("total_wait", q r.Sim.total_wait); ("max_pending", Json.Int r.Sim.max_pending);
             ("placements", Json.Int r.Sim.placements);
             ("repacks",
              Json.List
                (List.map
                   (fun (e : Sim.repack_event) ->
                     Json.Obj
                       [ ("at", q e.Sim.at); ("frag_before", q e.Sim.frag_before);
                         ("frag_after", q e.Sim.frag_after); ("moved", Json.Int e.Sim.moved);
                         ("cells", Json.Int e.Sim.cells) ])
                   r.Sim.repacks));
             ("moves", Json.Int r.Sim.moves);
             ("cells_migrated", Json.Int r.Sim.cells_migrated);
             ("migration_cost", q r.Sim.migration_cost); ("frag_peak", q r.Sim.frag_peak);
             ("frag_mean", q r.Sim.frag_mean);
             ("segments", Json.Int (List.length r.Sim.segments));
             ("violations", Json.Int (List.length violations)) ]
       in
       let line = Json.to_string obj ^ "\n" in
       if path = "-" then print_string line
       else Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc line));
    if violations <> [] then exit 3
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Event-driven online simulation: arrivals against a live strip, with optional \
             min-disruption repacking and an offline APTAS baseline")
    Term.(const run $ trace_file $ arrival $ n $ k $ seed $ packer $ repack_threshold
          $ migration_cost $ eps $ no_offline $ stats_json)

(* ------------------------------------------------------------------ *)
(* verify *)

let verify_cmd =
  let inst_file = Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTANCE") in
  let placement_file = Arg.(required & pos 1 (some string) None & info [] ~docv:"PLACEMENT") in
  let run inst_file placement_file =
    let parsed = read_instance inst_file in
    let rects =
      match parsed with Io.Prec inst -> inst.I.Prec.rects | Io.Release inst -> I.Release.rects inst
    in
    let placement =
      try Io.read_placement_file ~rects placement_file with
      | Failure msg | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let violations =
      match parsed with
      | Io.Prec inst -> Validate.check_prec inst placement
      | Io.Release inst -> Validate.check_release inst placement
    in
    match violations with
    | [] ->
      Printf.printf "VALID  height %s\n" (Q.to_string (Placement.height placement))
    | vs ->
      Printf.printf "INVALID  %d violation(s)\n" (List.length vs);
      List.iter (fun v -> Printf.printf "  %s\n" (Format.asprintf "%a" Validate.pp_violation v)) vs;
      exit 4
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a placement file against an instance (exit 0 iff valid)")
    Term.(const run $ inst_file $ placement_file)

(* ------------------------------------------------------------------ *)
(* serve / client / loadgen — the network serving layer *)

(* More sysexits: a transient refusal (queue full) is EX_TEMPFAIL so shell
   loops can retry; a draining server is EX_UNAVAILABLE; a server-side
   crash is EX_SOFTWARE; a connection that broke mid-exchange is EX_IOERR;
   an undecodable reply is EX_PROTOCOL. *)
let exit_temp_fail = 75
let exit_unavailable = 69
let exit_software = 70
let exit_transport = 74
let exit_protocol = 76

(* Typed client transport errors map to distinct exit codes, so scripts can
   tell "server never reachable" from "reply timed out" from "garbage on
   the wire" without parsing stderr. *)
let exit_code_of_client_error = function
  | Client.Connect_failed -> exit_unavailable
  | Client.Timed_out -> exit_temp_fail
  | Client.Connection_closed | Client.Io -> exit_transport
  | Client.Bad_reply -> exit_protocol

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"TCP port.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with $(b,--port)).")

let resolve_address socket port host =
  match (socket, port) with
  | Some path, None -> Framing.Unix_sock path
  | None, Some p -> Framing.Tcp (host, p)
  | Some _, Some _ ->
    Printf.eprintf "error: pass --socket or --port, not both\n";
    exit 64
  | None, None ->
    Printf.eprintf "error: pass --socket PATH or --port PORT\n";
    exit 64

(* Arm Spp_util.Fault from --faults / SPP_FAULTS (flag wins). Exits with
   EX_USAGE on a malformed spec: silently injecting nothing would make a
   chaos run vacuously green. *)
let arm_faults ~flag ~seed_flag =
  let spec = match flag with Some s -> Some s | None -> Sys.getenv_opt "SPP_FAULTS" in
  match spec with
  | None -> ()
  | Some spec -> (
    let seed =
      match seed_flag with
      | Some s -> Some s
      | None -> Option.bind (Sys.getenv_opt "SPP_FAULT_SEED") int_of_string_opt
    in
    match Spp_util.Fault.configure ?seed spec with
    | Ok () ->
      if Spp_util.Fault.active () then
        Printf.eprintf "spp serve: fault injection armed: %s\n%!"
          (Spp_util.Fault.describe ())
    | Error msg ->
      Printf.eprintf "error: --faults: %s\n" msg;
      exit 64)

let serve_cmd =
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ]
             ~doc:"Worker domains sharing the engine (default: one per core, up to 8).")
  in
  let queue_depth =
    Arg.(value & opt int 64
         & info [ "queue-depth" ]
             ~doc:"Admission queue bound; solve requests beyond it get an immediate \
                   $(i,overloaded) error.")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ]
             ~doc:"Serve Prometheus text-format metrics over HTTP on this TCP port \
                   (GET /metrics; port 0 picks a free one).")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log-file" ] ~doc:"Append JSON log lines to this file instead of stderr.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ]
             ~doc:"Log requests slower than this many milliseconds at warn level, with their \
                   span tree attached. Forces every solve request to be traced.")
  in
  let idle_timeout_ms =
    Arg.(value & opt float 30_000.0
         & info [ "idle-timeout-ms" ]
             ~doc:"Reap connections idle (no new request) for this many milliseconds; 0 \
                   disables the timeout.")
  in
  let read_timeout_ms =
    Arg.(value & opt float 10_000.0
         & info [ "read-timeout-ms" ]
             ~doc:"Reap connections whose request line takes longer than this to arrive after \
                   its first byte (slow-loris guard); 0 disables the timeout.")
  in
  let retry_after_ms =
    Arg.(value & opt int Server.default_retry_after_ms
         & info [ "retry-after-ms" ]
             ~doc:"Backoff hint (milliseconds) attached to $(i,overloaded) replies.")
  in
  let max_worker_restarts =
    Arg.(value & opt (some int) None
         & info [ "max-worker-restarts" ]
             ~doc:"Restart budget per worker slot before the slot is retired (default 16).")
  in
  let deadline_floor_ms =
    Arg.(value & opt float Server.default_deadline_floor_ms
         & info [ "deadline-floor-ms" ]
             ~doc:"Fast-fail solve requests whose propagated deadline_ms remainder is below \
                   this with $(i,wont_make_it) instead of burning a worker; checked at \
                   admission and again after the queue wait.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Arm deterministic fault injection, e.g. \
                   $(b,store.read=0.5,pool.job=once,engine.solve=delay200\\@0.1). Points: \
                   store.read, store.write, framing.read, framing.write, pool.job, \
                   engine.solve, engine.incumbent. Also read from $(b,SPP_FAULTS) (this \
                   flag wins).")
  in
  let fault_seed =
    Arg.(value & opt (some int) None
         & info [ "fault-seed" ]
             ~doc:"PRNG seed for fault probabilities (also $(b,SPP_FAULT_SEED); default 0).")
  in
  let run socket port host workers queue_depth budget_ms cache_dir no_cache cache_max stats_json
      metrics_port log_file slow_ms idle_timeout_ms read_timeout_ms retry_after_ms
      max_worker_restarts deadline_floor_ms faults fault_seed =
    let address = resolve_address socket port host in
    (match workers with
     | Some w when w < 1 ->
       Printf.eprintf "error: --workers must be >= 1\n";
       exit 1
     | _ -> ());
    if queue_depth < 1 then begin
      Printf.eprintf "error: --queue-depth must be >= 1\n";
      exit 1
    end;
    (match slow_ms with
     | Some s when s < 0.0 ->
       Printf.eprintf "error: --slow-ms must be >= 0\n";
       exit 1
     | _ -> ());
    if retry_after_ms < 0 then begin
      Printf.eprintf "error: --retry-after-ms must be >= 0\n";
      exit 1
    end;
    (match max_worker_restarts with
     | Some r when r < 0 ->
       Printf.eprintf "error: --max-worker-restarts must be >= 0\n";
       exit 1
     | _ -> ());
    if deadline_floor_ms < 0.0 then begin
      Printf.eprintf "error: --deadline-floor-ms must be >= 0\n";
      exit 1
    end;
    arm_faults ~flag:faults ~seed_flag:fault_seed;
    Log.init_from_env ();
    (match log_file with
     | None -> ()
     | Some path -> (
       try Log.set_file path with
       | Sys_error msg ->
         Printf.eprintf "error: cannot open log file: %s\n" msg;
         exit exit_io_error));
    let available = Spp_util.Parallel.available_workers () in
    let workers = match workers with Some w -> w | None -> max 1 available in
    let engine = make_engine ~cache_dir ~no_cache ~cache_max in
    let cfg =
      { Server.address; workers; queue_depth; engine; default_budget_ms = budget_ms;
        (* Each worker races portfolio members on its own domains; narrow the
           per-solve width so workers * racers stays near the core count. *)
        solve_workers = Some (max 1 (available / workers));
        max_request_bytes = Server.default_max_request_bytes; slow_ms;
        idle_timeout_ms = (if idle_timeout_ms > 0.0 then Some idle_timeout_ms else None);
        read_timeout_ms = (if read_timeout_ms > 0.0 then Some read_timeout_ms else None);
        retry_after_ms; max_worker_restarts; deadline_floor_ms }
    in
    let srv =
      try Server.start cfg with
      | Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: cannot listen on %s: %s%s\n" (Framing.address_to_string address)
          (Unix.error_message e) (if arg = "" then "" else " (" ^ arg ^ ")");
        exit exit_io_error
    in
    let scrape =
      match metrics_port with
      | None -> None
      | Some p -> (
        let registry = Telemetry.metrics (Engine.telemetry engine) in
        try Some (Metrics_http.start ~port:p registry) with
        | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot bind metrics port %d: %s\n" p (Unix.error_message e);
          Server.stop srv;
          Server.wait srv;
          exit exit_io_error)
    in
    (* GC / CPU gauges only matter where a scraper can see them. *)
    let sampler =
      Option.map
        (fun _ -> Spp_obs.Runtime.start (Telemetry.metrics (Engine.telemetry engine)))
        scrape
    in
    Printf.eprintf "spp serve: listening on %s (%d worker%s, queue depth %d)\n%!"
      (Framing.address_to_string address) workers (if workers = 1 then "" else "s") queue_depth;
    Option.iter
      (fun s -> Printf.eprintf "spp serve: metrics on http://127.0.0.1:%d/metrics\n%!" (Metrics_http.port s))
      scrape;
    Signals.on_termination (fun () -> Server.stop srv);
    Server.wait srv;
    Option.iter Spp_obs.Runtime.stop sampler;
    Option.iter Metrics_http.stop scrape;
    Printf.eprintf "spp serve: drained, exiting\n%!";
    write_stats engine stats_json
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the portfolio engine as a daemon on a Unix or TCP socket (see README.md for \
             the wire protocol)")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ workers $ queue_depth $ budget_arg
          $ cache_dir_arg $ no_cache_arg $ cache_max_arg $ stats_json_arg $ metrics_port
          $ log_file $ slow_ms $ idle_timeout_ms $ read_timeout_ms $ retry_after_ms
          $ max_worker_restarts $ deadline_floor_ms $ faults $ fault_seed)

let exit_code_of_error = function
  | Protocol.Parse | Protocol.Bad_request | Protocol.Bad_instance -> exit_parse_error
  (* wont_make_it is as transient as overloaded: retry with a fresh
     deadline and the request is perfectly servable. *)
  | Protocol.Overloaded | Protocol.Wont_make_it -> exit_temp_fail
  | Protocol.Shutting_down -> exit_unavailable
  | Protocol.Internal -> exit_software

let print_metrics (m : Protocol.metrics_reply) =
  Printf.printf "uptime_ms       %.0f\n" m.Protocol.uptime_ms;
  Printf.printf "workers         %d\n" m.Protocol.workers;
  Printf.printf "queue           %d/%d\n" m.Protocol.queue_length m.Protocol.queue_capacity;
  let c = m.Protocol.cache in
  Printf.printf "lru             size %d/%d, hits %d, misses %d, evictions %d\n"
    c.Protocol.size c.Protocol.capacity c.Protocol.hits c.Protocol.misses c.Protocol.evictions;
  (match m.Protocol.store_dir with
   | Some d -> Printf.printf "store           %s\n" d
   | None -> Printf.printf "store           disabled\n");
  List.iter
    (fun (name, (a : Protocol.algo_reply)) ->
      Printf.printf "algo %-18s wins %-5d solved %-5d timeout %-5d invalid %-3d failed %d\n"
        name a.Protocol.wins a.Protocol.solved a.Protocol.timeouts a.Protocol.invalid
        a.Protocol.failed)
    m.Protocol.algos;
  List.iter
    (fun (name, (h : Protocol.hist_reply)) ->
      Printf.printf "hist %-22s count %-7d p50 %-9.2f p90 %-9.2f p99 %.2f\n" name
        h.Protocol.count h.Protocol.p50 h.Protocol.p90 h.Protocol.p99)
    m.Protocol.histograms;
  List.iter (fun (k, v) -> Printf.printf "counter %-32s %d\n" k v) m.Protocol.counters

let client_cmd =
  let op =
    Arg.(required
         & pos 0
             (some (enum
                      [ ("solve", `Solve); ("metrics", `Metrics); ("health", `Health);
                        ("shutdown", `Shutdown) ]))
             None
         & info [] ~docv:"OP" ~doc:"One of solve, metrics, health, shutdown.")
  in
  let file =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"FILE" ~doc:"Instance file (required for solve).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the raw JSON response line instead of the human form.")
  in
  let trace_id =
    Arg.(value & opt (some string) None
         & info [ "trace-id" ]
             ~doc:"Attach this trace id to a solve request (turns on server-side tracing; the \
                   id is echoed in the reply and in the server's slow-request log).")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ]
             ~doc:"Extra attempts after a transport failure or an $(i,overloaded) reply \
                   (exponential backoff with jitter, honoring the server's retry_after_ms \
                   hint). Only idempotent ops retry; shutdown never does.")
  in
  let timeout_ms =
    Arg.(value & opt (some float) None
         & info [ "timeout-ms" ]
             ~doc:"Bound the connect and each reply wait by this many milliseconds.")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ]
             ~doc:"End-to-end budget propagated with the solve: every hop (proxy, server \
                   queue, engine) subtracts its elapsed time, and a hop that cannot answer \
                   in the remainder fast-fails with $(i,wont_make_it). A budget-expired \
                   solve returns the engine's best packing marked degraded.")
  in
  let run op file socket port host budget_ms algos json trace_id retries timeout_ms
      deadline_ms =
    let address = resolve_address socket port host in
    let req =
      match op with
      | `Metrics -> Protocol.Metrics
      | `Health -> Protocol.Health
      | `Shutdown -> Protocol.Shutdown
      | `Solve -> (
        match file with
        | None ->
          Printf.eprintf "error: solve needs an instance FILE\n";
          exit 64
        | Some path ->
          let instance =
            try In_channel.with_open_text path In_channel.input_all with
            | Sys_error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit exit_io_error
          in
          Protocol.Solve { instance; budget_ms; deadline_ms; algos; trace_id })
    in
    if retries < 0 then begin
      Printf.eprintf "error: --retries must be >= 0\n";
      exit 64
    end;
    let resp =
      try Client.call ~retries ?timeout_ms address req with
      | Client.Error { kind; attempts; message } ->
        Printf.eprintf "error: %s%s\n" message
          (if attempts > 1 then Printf.sprintf " (after %d attempts)" attempts else "");
        exit (exit_code_of_client_error kind)
    in
    (* Render a reply-embedded span tree (the {!Trace.to_json} shape, as
       stitched by the proxy) in the same indented style as [spp trace].
       Lines are '#'-prefixed like the other reply headers, so the output
       still round-trips through the instance parser. *)
    let print_reply_trace j =
      let num = function
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let rec go indent j =
        match Json.member "name" j with
        | Some (Json.String name) ->
          let dur =
            match num (Json.member "ms" j) with
            | Some d -> Printf.sprintf "%.2f ms" d
            | None -> "open"
          in
          let fields =
            match Json.member "fields" j with
            | Some (Json.Obj kvs) ->
              String.concat ""
                (List.map (fun (k, v) -> Printf.sprintf "  %s=%s" k (Json.to_string v)) kvs)
            | _ -> ""
          in
          Printf.printf "# %s%s %s%s\n" indent name dur fields;
          (match Json.member "spans" j with
           | Some (Json.List l) -> List.iter (go (indent ^ "  ")) l
           | _ -> ())
        | _ -> ()
      in
      Option.iter (go "") (Json.member "root" j)
    in
    match resp with
    | Protocol.Error { code; message; _ } ->
      if json then print_endline (Protocol.encode_response resp);
      Printf.eprintf "error (%s): %s\n" (Protocol.error_code_to_string code) message;
      exit (exit_code_of_error code)
    | _ when json -> print_endline (Protocol.encode_response resp)
    | Protocol.Health_ok h ->
      print_endline "ok";
      Printf.printf "uptime_s        %.1f\n" h.Protocol.uptime_s;
      Printf.printf "cache_capacity  %d\n" h.Protocol.cache_capacity
    | Protocol.Shutdown_ok -> print_endline "draining"
    | Protocol.Metrics_ok m -> print_metrics m
    | Protocol.Solve_ok r ->
      Printf.printf "# winner %s\n" r.Protocol.winner;
      Printf.printf "# source %s\n" r.Protocol.source;
      Printf.printf "# ms %.2f\n" r.Protocol.time_ms;
      if r.Protocol.degraded then print_endline "# degraded true";
      (match (r.Protocol.lower_bound, r.Protocol.gap) with
       | Some lb, Some gap -> Printf.printf "# lower_bound %s gap %s\n" lb gap
       | _ -> ());
      (match r.Protocol.trace_id with
       | Some id -> Printf.printf "# trace %s\n" id
       | None -> ());
      Option.iter print_reply_trace r.Protocol.trace;
      print_string r.Protocol.placement
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send one request to a running spp serve")
    Term.(const run $ op $ file $ socket_arg $ port_arg $ host_arg $ budget_arg $ algos_arg
          $ json $ trace_id $ retries $ timeout_ms $ deadline_ms)

let loadgen_cmd =
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let connections =
    Arg.(value & opt int 8
         & info [ "connections" ] ~doc:"Concurrent client connections (closed loop).")
  in
  let requests =
    Arg.(value & opt int 20 & info [ "requests" ] ~doc:"Solve requests per connection.")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ]
             ~doc:"Write the run summary (counts, throughput, latency percentiles) as one JSON \
                   object to this file ('-' for stdout).")
  in
  let distinct =
    Arg.(value & opt (some int) None
         & info [ "distinct" ] ~docv:"N"
             ~doc:"Cycle only the first N corpus files (sorted) — a duplicate-heavy workload \
                   for exercising caches and request coalescing.")
  in
  let arrival =
    Arg.(value & opt (some string) None
         & info [ "arrival" ] ~docv:"SPEC"
             ~doc:"Open-loop pacing: draw inter-request gaps from this arrival process \
                   (poisson:RATE or burst:LEN:GAP, rate per second) instead of sending \
                   back-to-back.")
  in
  let arrival_seed =
    Arg.(value & opt int 1
         & info [ "arrival-seed" ] ~doc:"Seed for the pacing stream (per-connection offset).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ]
             ~doc:"Propagate this end-to-end budget with every solve; budget-expired \
                   replies count as $(i,degraded), $(i,wont_make_it) fast-fails as shed.")
  in
  let run dir connections requests socket port host budget_ms algos stats_json distinct arrival
      arrival_seed deadline_ms =
    let address = resolve_address socket port host in
    if connections < 1 || requests < 1 then begin
      Printf.eprintf "error: --connections and --requests must be >= 1\n";
      exit 1
    end;
    (match distinct with
     | Some n when n < 1 ->
       Printf.eprintf "error: --distinct must be >= 1\n";
       exit 1
     | _ -> ());
    let arrival_spec =
      match arrival with
      | None -> None
      | Some s -> (
        match Spp_sim.Arrivals.parse_spec s with
        | Ok spec -> Some spec
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)
    in
    (* Pre-read and pre-parse the corpus: each reply's placement text is
       re-bound to the instance's rects and re-validated, so "ok" below
       means "valid packing", not just "200". *)
    let instances =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".spp")
      |> List.sort compare
      |> List.filter_map (fun f ->
             let path = Filename.concat dir f in
             let text = try Some (In_channel.with_open_text path In_channel.input_all) with Sys_error _ -> None in
             Option.bind text (fun text ->
                 match Io.parse_string text with
                 | exception Failure msg ->
                   Printf.eprintf "warning: skipping %s: %s\n" f msg;
                   None
                 | parsed -> Some (f, text, parsed)))
    in
    let instances =
      match distinct with
      | Some n -> List.filteri (fun i _ -> i < n) instances
      | None -> instances
    in
    if instances = [] then begin
      Printf.eprintf "error: no parsable *.spp files in %s\n" dir;
      exit exit_io_error
    end;
    let instances = Array.of_list instances in
    let check parsed placement_text =
      let rects =
        match parsed with
        | Io.Prec inst -> inst.I.Prec.rects
        | Io.Release inst -> I.Release.rects inst
      in
      match Io.parse_placement ~rects placement_text with
      | exception Failure _ -> false
      | p -> (
        match parsed with
        | Io.Prec inst -> Validate.check_prec inst p = []
        | Io.Release inst -> Validate.check_release inst p = [])
    in
    (* Outcome classes: ok = valid packing, full answer; degraded = valid
       packing the responder marked budget-cut (an anytime answer, not a
       failure); invalid = decoded but wrong packing; shed = overloaded
       or wont_make_it reply (the service chose not to serve in time);
       failed = any other structured server error (the server answered —
       impaired, not broken); transport = no protocol-valid reply at all
       (reset, hang, garbage). Only invalid and transport make the run
       exit nonzero: under fault injection or tight deadlines the other
       classes are expected degradations. *)
    let ok = Atomic.make 0 and failed = Atomic.make 0 and invalid = Atomic.make 0 in
    let shed = Atomic.make 0 and transport = Atomic.make 0 and degraded = Atomic.make 0 in
    let latencies = Array.make connections [] in
    let worker ci () =
      (* Open-loop shaping: each connection draws its own deterministic gap
         stream, so offered load is set by the arrival process, not by how
         fast the server answers. *)
      let next_gap_ms =
        Option.map
          (fun spec -> Spp_sim.Arrivals.pacing (Prng.create (arrival_seed + ci)) spec)
          arrival_spec
      in
      match Client.connect address with
      | c ->
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            for r = 0 to requests - 1 do
              let _, text, parsed =
                instances.((ci + (r * connections)) mod Array.length instances)
              in
              (match next_gap_ms with
               | Some gap -> Thread.delay (gap () /. 1000.)
               | None -> ());
              let t0 = Clock.now_ms () in
              (match
                 Client.request c
                   (Protocol.Solve
                      { instance = text; budget_ms; deadline_ms; algos; trace_id = None })
               with
               | Protocol.Solve_ok reply ->
                 latencies.(ci) <- Clock.elapsed_ms t0 :: latencies.(ci);
                 if not (check parsed reply.Protocol.placement) then Atomic.incr invalid
                 else if reply.Protocol.degraded then Atomic.incr degraded
                 else Atomic.incr ok
               | Protocol.Error { code = Protocol.Overloaded | Protocol.Wont_make_it; _ } ->
                 Atomic.incr shed
               | Protocol.Error _ -> Atomic.incr failed
               | _ -> Atomic.incr transport
               | exception Client.Error _ -> Atomic.incr transport)
            done)
      | exception Client.Error _ -> ignore (Atomic.fetch_and_add transport requests)
    in
    let t0 = Clock.now_ms () in
    let threads = List.init connections (fun ci -> Thread.create (worker ci) ()) in
    List.iter Thread.join threads;
    let wall_ms = Clock.elapsed_ms t0 in
    let lats = Array.to_list latencies |> List.concat in
    let total =
      Atomic.get ok + Atomic.get degraded + Atomic.get invalid + Atomic.get shed
      + Atomic.get failed + Atomic.get transport
    in
    let throughput = float_of_int total /. (wall_ms /. 1000.) in
    (* Percentiles by rank interpolation over the sorted sample, computed in
       one pass — not repeated ad-hoc quantile calls. *)
    let percentiles =
      match lats with
      | [] -> None
      | _ -> (
        match Stats.percentiles [ 50.0; 90.0; 95.0; 99.0 ] lats with
        | [ p50; p90; p95; p99 ] -> Some (p50, p90, p95, p99)
        | _ -> None)
    in
    Printf.printf "connections     %d\n" connections;
    Printf.printf
      "requests        %d (%d ok, %d degraded, %d invalid, %d shed, %d failed, %d transport)\n"
      total (Atomic.get ok) (Atomic.get degraded) (Atomic.get invalid) (Atomic.get shed)
      (Atomic.get failed) (Atomic.get transport);
    Printf.printf "wall clock      %.1f ms\n" wall_ms;
    Printf.printf "throughput      %.1f req/s\n" throughput;
    Option.iter
      (fun (p50, p90, p95, p99) ->
        Printf.printf "latency p50     %.2f ms\n" p50;
        Printf.printf "latency p90     %.2f ms\n" p90;
        Printf.printf "latency p95     %.2f ms\n" p95;
        Printf.printf "latency p99     %.2f ms\n" p99)
      percentiles;
    (match Client.with_connection address (fun c -> Client.request c Protocol.Metrics) with
     | Protocol.Metrics_ok m ->
       let c = m.Protocol.cache in
       Printf.printf "server lru      hits %d, misses %d, size %d/%d\n" c.Protocol.hits
         c.Protocol.misses c.Protocol.size c.Protocol.capacity
     | _ -> ()
     | exception _ -> ());
    (match stats_json with
     | None -> ()
     | Some path ->
       let latency_obj =
         match (percentiles, lats) with
         | Some (p50, p90, p95, p99), _ :: _ ->
           let lo, hi = Stats.min_max lats in
           Json.Obj
             [ ("mean", Json.Float (Stats.mean lats)); ("min", Json.Float lo);
               ("max", Json.Float hi); ("p50", Json.Float p50); ("p90", Json.Float p90);
               ("p95", Json.Float p95); ("p99", Json.Float p99) ]
         | _ -> Json.Null
       in
       let obj =
         Json.Obj
           [ ("connections", Json.Int connections);
             ("requests_per_connection", Json.Int requests); ("requests", Json.Int total);
             ("ok", Json.Int (Atomic.get ok));
             ("degraded", Json.Int (Atomic.get degraded));
             ("invalid", Json.Int (Atomic.get invalid));
             ("shed", Json.Int (Atomic.get shed)); ("failed", Json.Int (Atomic.get failed));
             ("transport", Json.Int (Atomic.get transport)); ("wall_ms", Json.Float wall_ms);
             ("throughput_rps", Json.Float throughput); ("latency_ms", latency_obj) ]
       in
       let line = Json.to_string obj ^ "\n" in
       if path = "-" then print_string line
       else Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc line));
    if Atomic.get transport > 0 || Atomic.get invalid > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop load generator against a running spp serve: N connections cycling \
             the *.spp files in DIR, validating every reply")
    Term.(const run $ dir $ connections $ requests $ socket_arg $ port_arg $ host_arg
          $ budget_arg $ algos_arg $ stats_json $ distinct $ arrival $ arrival_seed
          $ deadline_ms)

(* ------------------------------------------------------------------ *)
(* proxy *)

(* Backend address forms: unix:PATH, tcp:HOST:PORT, HOST:PORT, or a bare
   socket path (anything containing '/'). *)
let parse_backend s =
  let bad () =
    Error
      (`Msg
        (Printf.sprintf
           "bad backend %S (want unix:PATH, tcp:HOST:PORT, HOST:PORT, or a socket path)" s))
  in
  let drop n = String.sub s n (String.length s - n) in
  let host_port str =
    match String.rindex_opt str ':' with
    | None -> bad ()
    | Some i -> (
      let host = String.sub str 0 i in
      let port = String.sub str (i + 1) (String.length str - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" && p > 0 && p < 65536 -> Ok (Framing.Tcp (host, p))
      | _ -> bad ())
  in
  if s = "" then bad ()
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then Ok (Framing.Unix_sock (drop 5))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then host_port (drop 4)
  else if String.contains s '/' then Ok (Framing.Unix_sock s)
  else host_port s

let proxy_cmd =
  let backend_conv =
    Arg.conv
      (parse_backend, fun fmt a -> Format.pp_print_string fmt (Framing.address_to_string a))
  in
  let backends =
    Arg.(non_empty & opt_all backend_conv []
         & info [ "backend" ] ~docv:"ADDR"
             ~doc:"A running $(b,spp serve) backend: $(b,unix:PATH), $(b,tcp:HOST:PORT), \
                   $(b,HOST:PORT), or a socket path. Repeat once per backend.")
  in
  let replicas =
    Arg.(value & opt int Spp_cluster.Ring.default_replicas
         & info [ "replicas" ]
             ~doc:"Virtual nodes per backend on the consistent-hash ring.")
  in
  let cache_cap =
    Arg.(value & opt int 512
         & info [ "cache-cap" ]
             ~doc:"Entries in the proxy's warm cache of snooped solve replies; 0 disables it.")
  in
  let pool_size =
    Arg.(value & opt int Spp_cluster.Upstream.default_pool_size
         & info [ "pool-size" ] ~doc:"Idle upstream connections kept per backend.")
  in
  let upstream_timeout_ms =
    Arg.(value & opt float 5_000.0
         & info [ "upstream-timeout-ms" ]
             ~doc:"Deadline on upstream connects and reply waits; 0 disables it.")
  in
  let failover =
    Arg.(value & opt int 2
         & info [ "failover" ]
             ~doc:"Ring successors tried after the routed backend fails a solve.")
  in
  let probe_ms =
    Arg.(value & opt float 1_000.0
         & info [ "probe-ms" ]
             ~doc:"Base health-probe interval (milliseconds); actual intervals are jittered.")
  in
  let fail_after =
    Arg.(value & opt int 3
         & info [ "fail-after" ]
             ~doc:"Consecutive failures before a backend is evicted from the ring.")
  in
  let revive_after =
    Arg.(value & opt int 2
         & info [ "revive-after" ]
             ~doc:"Consecutive probe successes before an evicted backend is readmitted.")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ]
             ~doc:"Serve Prometheus text-format metrics over HTTP on this TCP port \
                   (GET /metrics; port 0 picks a free one).")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log-file" ] ~doc:"Append JSON log lines to this file instead of stderr.")
  in
  let hedge_ms =
    let parse s =
      match String.lowercase_ascii s with
      | "off" -> Ok Proxy.Hedge_off
      | "auto" -> Ok Proxy.Hedge_auto
      | _ -> (
        match float_of_string_opt s with
        | Some ms when ms > 0.0 -> Ok (Proxy.Hedge_fixed ms)
        | _ -> Error (`Msg (Printf.sprintf "bad hedge delay %S (want off, auto, or MS > 0)" s)))
    in
    let print fmt = function
      | Proxy.Hedge_off -> Format.pp_print_string fmt "off"
      | Proxy.Hedge_auto -> Format.pp_print_string fmt "auto"
      | Proxy.Hedge_fixed ms -> Format.fprintf fmt "%g" ms
    in
    Arg.(value & opt (conv (parse, print)) Proxy.Hedge_auto
         & info [ "hedge-ms" ] ~docv:"off|auto|MS"
             ~doc:"Re-issue a still-pending solve to the next ring successor after this many \
                   milliseconds and let the first reply win. $(b,auto) (the default) derives \
                   the delay from the observed upstream p99; $(b,off) disables hedging.")
  in
  let breaker_window =
    Arg.(value & opt int Spp_cluster.Breaker.default_window
         & info [ "breaker-window" ]
             ~doc:"Rolling per-backend outcomes the circuit breaker remembers.")
  in
  let breaker_threshold =
    Arg.(value & opt int Spp_cluster.Breaker.default_threshold
         & info [ "breaker-threshold" ]
             ~doc:"Transport failures within the window that open a backend's breaker.")
  in
  let breaker_cooldown_ms =
    Arg.(value & opt float Spp_cluster.Breaker.default_cooldown_ms
         & info [ "breaker-cooldown-ms" ]
             ~doc:"How long an open breaker waits before trying one half-open probe request.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Arm deterministic fault injection, e.g. \
                   $(b,proxy.upstream=0.2,proxy.health=once,proxy.hedge=once). Also read \
                   from $(b,SPP_FAULTS) (this flag wins).")
  in
  let fault_seed =
    Arg.(value & opt (some int) None
         & info [ "fault-seed" ]
             ~doc:"PRNG seed for fault probabilities (also $(b,SPP_FAULT_SEED); default 0).")
  in
  let run socket port host backends replicas cache_cap pool_size upstream_timeout_ms failover
      probe_ms fail_after revive_after hedge breaker_window breaker_threshold
      breaker_cooldown_ms metrics_port log_file faults fault_seed =
    let address = resolve_address socket port host in
    arm_faults ~flag:faults ~seed_flag:fault_seed;
    Log.init_from_env ();
    (match log_file with
     | None -> ()
     | Some path -> (
       try Log.set_file path with
       | Sys_error msg ->
         Printf.eprintf "error: cannot open log file: %s\n" msg;
         exit exit_io_error));
    let registry = Spp_obs.Metrics.create () in
    let cfg =
      { (Proxy.default_config ~address ~backends ()) with
        Proxy.replicas; cache_capacity = cache_cap; pool_size;
        upstream_timeout_ms =
          (if upstream_timeout_ms > 0.0 then Some upstream_timeout_ms else None);
        failover; probe_interval_ms = probe_ms; fail_after; revive_after; registry; hedge;
        breaker_window; breaker_threshold; breaker_cooldown_ms;
        (* Per-process jitter seed: a fleet of proxies must not probe in
           lockstep. *)
        seed = Unix.getpid () lxor int_of_float (Clock.now_ms ()) }
    in
    let px =
      try Proxy.start cfg with
      | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 64
      | Unix.Unix_error (e, _, arg) ->
        Printf.eprintf "error: cannot listen on %s: %s%s\n"
          (Framing.address_to_string address) (Unix.error_message e)
          (if arg = "" then "" else " (" ^ arg ^ ")");
        exit exit_io_error
    in
    let scrape =
      match metrics_port with
      | None -> None
      | Some p -> (
        try Some (Metrics_http.start ~port:p registry) with
        | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot bind metrics port %d: %s\n" p (Unix.error_message e);
          Proxy.stop px;
          Proxy.wait px;
          exit exit_io_error)
    in
    let sampler = Option.map (fun _ -> Spp_obs.Runtime.start registry) scrape in
    Printf.eprintf "spp proxy: listening on %s over %d backend%s\n%!"
      (Framing.address_to_string address) (List.length backends)
      (if List.length backends = 1 then "" else "s");
    List.iter
      (fun b -> Printf.eprintf "spp proxy:   backend %s\n%!" (Framing.address_to_string b))
      backends;
    Option.iter
      (fun s ->
        Printf.eprintf "spp proxy: metrics on http://127.0.0.1:%d/metrics\n%!"
          (Metrics_http.port s))
      scrape;
    Signals.on_termination (fun () -> Proxy.stop px);
    Proxy.wait px;
    Option.iter Spp_obs.Runtime.stop sampler;
    Option.iter Metrics_http.stop scrape;
    Printf.eprintf "spp proxy: drained, exiting\n%!"
  in
  Cmd.v
    (Cmd.info "proxy"
       ~doc:"Cluster front tier over spp serve backends: consistent-hash routing by instance \
             fingerprint, request coalescing, a warm reply cache, and liveness-based ring \
             membership")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ backends $ replicas $ cache_cap
          $ pool_size $ upstream_timeout_ms $ failover $ probe_ms $ fail_after $ revive_after
          $ hedge_ms $ breaker_window $ breaker_threshold $ breaker_cooldown_ms
          $ metrics_port $ log_file $ faults $ fault_seed)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the trace as one JSON line instead of the tree.")
  in
  let run file budget_ms algos workers json =
    let parsed = read_instance file in
    (* A fresh engine with no disk cache: the point is to watch the race,
       not to replay a cached answer. *)
    let engine = Engine.create () in
    let tr = Trace.create ~name:"solve" () in
    let res =
      try Engine.solve ?budget_ms ?algos ?workers ~trace:tr engine parsed with
      | Invalid_argument msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    Trace.close
      ~fields:
        [ ("winner", Field.String res.Engine.winner);
          ("height", Field.String (Q.to_string res.Engine.height)) ]
      tr;
    if json then print_endline (Trace.to_json tr)
    else begin
      Printf.printf "winner %s  height %s  %.2f ms\n\n" res.Engine.winner
        (Q.to_string res.Engine.height) res.Engine.time_ms;
      print_string (Trace.render tr)
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Solve one instance locally with tracing on and print the span tree (queue-free \
             view of what spp serve records per request)")
    Term.(const run $ file $ budget_arg $ algos_arg $ workers_arg $ json)

(* ------------------------------------------------------------------ *)
(* top *)

(* Previous tick's cumulative counters for one endpoint; rates are
   deltas over the poll interval, so the first tick shows none. *)
type top_prev = { p_at_ms : float; p_requests : float; p_minor : float; p_major : float }

(* One endpoint's digested scrape. Options are metrics the endpoint did
   not expose (a proxy has no solver profile; a dead endpoint has
   nothing but [ts_error]). *)
type top_stat = {
  ts_endpoint : string;
  ts_up : bool;
  ts_error : string option;
  ts_uptime_s : float option;
  ts_requests : float;
  ts_rate : float option;  (* requests/s since the previous tick *)
  ts_p50 : float option;
  ts_p95 : float option;
  ts_p99 : float option;  (* request latency percentiles, ms *)
  ts_hit_ratio : float option;  (* cache hits / (hits + misses) *)
  ts_algos : (string * float) list;  (* portfolio win counts by algo *)
  ts_pivots : float;
  ts_bb_count : int;  (* B&B searches recorded *)
  ts_bb_sum : float;  (* nodes expanded across them *)
  ts_bb_pruned : float;
  ts_colgen_cols : float;
  ts_colgen_rounds : float;
  ts_heap_words : float option;
  ts_minor_rate : float option;  (* minor GCs/s *)
  ts_major_rate : float option;
  ts_cpu : float option;  (* busy cores over the sampler interval *)
  ts_degraded : float;  (* anytime (budget-cut) replies served *)
  ts_deadline_rejects : float;  (* wont_make_it fast-fails, all stages *)
  ts_hedges : float;  (* hedged re-issues fired (proxy only) *)
  ts_hedge_wins : float;  (* solves where the hedge answered first *)
  ts_breakers : (string * float) list;  (* breaker state by backend: 0/1/2 *)
}

let top_down endpoint msg =
  { ts_endpoint = endpoint; ts_up = false; ts_error = Some msg; ts_uptime_s = None;
    ts_requests = 0.0; ts_rate = None; ts_p50 = None; ts_p95 = None; ts_p99 = None;
    ts_hit_ratio = None; ts_algos = []; ts_pivots = 0.0; ts_bb_count = 0; ts_bb_sum = 0.0;
    ts_bb_pruned = 0.0; ts_colgen_cols = 0.0; ts_colgen_rounds = 0.0; ts_heap_words = None;
    ts_minor_rate = None; ts_major_rate = None; ts_cpu = None; ts_degraded = 0.0;
    ts_deadline_rejects = 0.0; ts_hedges = 0.0; ts_hedge_wins = 0.0; ts_breakers = [] }

(* Digest one scrape. Server and proxy expose different families for the
   same idea (spp_requests_total vs spp_proxy_ops_total, ...); prefer the
   server's name and fall back, so one dashboard reads both tiers. *)
let top_poll prevs (host, port) =
  let endpoint = Printf.sprintf "%s:%d" host port in
  match Metrics_http.fetch ~host ~port () with
  | Error msg -> top_down endpoint msg
  | Ok body ->
    let s = Promtext.parse body in
    let now = Clock.now_ms () in
    let first_sum a b =
      let v = Promtext.sum s a in
      if v > 0.0 then v else Promtext.sum s b
    in
    let requests = first_sum "spp_requests_total" "spp_proxy_ops_total" in
    let minor = Promtext.sum s "spp_gc_minor_collections_total" in
    let major = Promtext.sum s "spp_gc_major_collections_total" in
    let rate prev cur dt = if dt <= 0.0 then None else Some (max 0.0 ((cur -. prev) /. dt)) in
    let req_rate, minor_rate, major_rate =
      match Hashtbl.find_opt prevs endpoint with
      | None -> (None, None, None)
      | Some p ->
        let dt = (now -. p.p_at_ms) /. 1000.0 in
        (rate p.p_requests requests dt, rate p.p_minor minor dt, rate p.p_major major dt)
    in
    Hashtbl.replace prevs endpoint
      { p_at_ms = now; p_requests = requests; p_minor = minor; p_major = major };
    let latency =
      match Promtext.histogram s "spp_request_ms" with
      | Some h -> Some h
      | None -> Promtext.histogram s "spp_proxy_request_ms"
    in
    let q p = Option.map (fun h -> Metrics.hist_quantile h p) latency in
    let hits = first_sum "cache_hit" "spp_proxy_cache_hits_total" in
    let misses = first_sum "cache_miss" "spp_proxy_cache_misses_total" in
    let bb_count, bb_sum =
      match Promtext.histogram s "spp_bb_nodes" with
      | Some h -> (h.Metrics.total, h.Metrics.sum)
      | None -> (0, 0.0)
    in
    { ts_endpoint = endpoint; ts_up = true; ts_error = None;
      ts_uptime_s =
        (match Promtext.value s "spp_uptime_seconds" with
         | Some _ as v -> v
         | None -> Promtext.value s "spp_proxy_uptime_seconds");
      ts_requests = requests; ts_rate = req_rate; ts_p50 = q 0.5; ts_p95 = q 0.95;
      ts_p99 = q 0.99;
      ts_hit_ratio =
        (if hits +. misses > 0.0 then Some (hits /. (hits +. misses)) else None);
      ts_algos = Promtext.label_values s ~name:"spp_algo_wins_total" ~label:"algo";
      ts_pivots = Promtext.sum s "spp_pivots_total"; ts_bb_count = bb_count;
      ts_bb_sum = bb_sum; ts_bb_pruned = Promtext.sum s "spp_bb_pruned_total";
      ts_colgen_cols = Promtext.sum s "spp_colgen_columns_total";
      ts_colgen_rounds = Promtext.sum s "spp_colgen_rounds_total";
      ts_heap_words = Promtext.value s "spp_gc_heap_words";
      ts_minor_rate = minor_rate; ts_major_rate = major_rate;
      ts_cpu = Promtext.value s "spp_cpu_utilization";
      ts_degraded = Promtext.sum s "spp_degraded_replies_total";
      ts_deadline_rejects = Promtext.sum s "spp_deadline_rejects_total";
      ts_hedges = Promtext.sum s "spp_hedges_total";
      ts_hedge_wins = Promtext.sum s "spp_hedge_wins_total";
      ts_breakers = Promtext.label_values s ~name:"spp_breaker_state" ~label:"backend" }

let top_json_of_stat st =
  let opt name v = Option.map (fun f -> (name, Json.Float f)) v in
  let payload =
    match st.ts_error with
    | Some e -> [ Some ("error", Json.String e) ]
    | None ->
      [ opt "uptime_s" st.ts_uptime_s;
        Some ("requests_total", Json.Float st.ts_requests);
        opt "request_rate" st.ts_rate;
        opt "p50_ms" st.ts_p50;
        opt "p95_ms" st.ts_p95;
        opt "p99_ms" st.ts_p99;
        opt "cache_hit_ratio" st.ts_hit_ratio;
        Some
          ("algo_wins", Json.Obj (List.map (fun (a, v) -> (a, Json.Float v)) st.ts_algos));
        Some
          ( "profile",
            Json.Obj
              [ ("pivots", Json.Float st.ts_pivots);
                ("bb_searches", Json.Int st.ts_bb_count);
                ("bb_nodes", Json.Float st.ts_bb_sum);
                ("bb_pruned", Json.Float st.ts_bb_pruned);
                ("colgen_columns", Json.Float st.ts_colgen_cols);
                ("colgen_rounds", Json.Float st.ts_colgen_rounds) ] );
        opt "gc_heap_words" st.ts_heap_words;
        opt "gc_minor_per_s" st.ts_minor_rate;
        opt "gc_major_per_s" st.ts_major_rate;
        opt "cpu_utilization" st.ts_cpu;
        Some ("degraded_total", Json.Float st.ts_degraded);
        Some ("deadline_rejects_total", Json.Float st.ts_deadline_rejects);
        Some ("hedges_total", Json.Float st.ts_hedges);
        Some ("hedge_wins_total", Json.Float st.ts_hedge_wins);
        Some
          ( "breakers",
            Json.Obj (List.map (fun (b, v) -> (b, Json.Float v)) st.ts_breakers) ) ]
  in
  Json.Obj
    (("endpoint", Json.String st.ts_endpoint)
     :: ("up", Json.Bool st.ts_up)
     :: List.filter_map Fun.id payload)

let top_render stats =
  let buf = Buffer.create 1024 in
  let opt fmt = function None -> "-" | Some v -> Printf.sprintf fmt v in
  Buffer.add_string buf
    (Printf.sprintf "%-22s %-4s %9s %9s %8s %8s %8s %8s %6s %6s\n" "ENDPOINT" "UP" "UPTIME"
       "REQS" "REQ/S" "P50ms" "P95ms" "P99ms" "HIT%" "CPU");
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s %-4s %9s %9.0f %8s %8s %8s %8s %6s %6s\n" st.ts_endpoint
           (if st.ts_up then "up" else "DOWN")
           (opt "%.0fs" st.ts_uptime_s)
           st.ts_requests (opt "%.1f" st.ts_rate) (opt "%.2f" st.ts_p50)
           (opt "%.2f" st.ts_p95) (opt "%.2f" st.ts_p99)
           (opt "%.1f" (Option.map (fun r -> 100.0 *. r) st.ts_hit_ratio))
           (opt "%.2f" st.ts_cpu));
      match st.ts_error with
      | Some e -> Buffer.add_string buf (Printf.sprintf "  %s\n" e)
      | None ->
        let wins = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 st.ts_algos in
        if wins > 0.0 then
          Buffer.add_string buf
            (Printf.sprintf "  wins: %s\n"
               (String.concat ", "
                  (List.map
                     (fun (a, v) ->
                       Printf.sprintf "%s %.0f (%.0f%%)" a v (100.0 *. v /. wins))
                     st.ts_algos)));
        if st.ts_pivots > 0.0 || st.ts_bb_count > 0 || st.ts_colgen_cols > 0.0 then
          Buffer.add_string buf
            (Printf.sprintf
               "  profile: pivots %.0f, bb %.0f nodes / %d searches (%.0f pruned), colgen \
                %.0f cols / %.0f rounds\n"
               st.ts_pivots st.ts_bb_sum st.ts_bb_count st.ts_bb_pruned st.ts_colgen_cols
               st.ts_colgen_rounds);
        if
          st.ts_hedges > 0.0 || st.ts_degraded > 0.0 || st.ts_deadline_rejects > 0.0
          || List.exists (fun (_, v) -> v > 0.0) st.ts_breakers
        then
          Buffer.add_string buf
            (Printf.sprintf "  resilience: hedges %.0f (%.0f wins), degraded %.0f, \
                             deadline rejects %.0f%s\n"
               st.ts_hedges st.ts_hedge_wins st.ts_degraded st.ts_deadline_rejects
               (match
                  List.filter_map
                    (fun (b, v) ->
                      if v > 0.0 then
                        Some
                          (Printf.sprintf "%s %s" b
                             (if v >= 2.0 then "OPEN" else "half-open"))
                      else None)
                    st.ts_breakers
                with
                | [] -> ""
                | tripped -> ", breakers: " ^ String.concat ", " tripped));
        (match st.ts_heap_words with
         | None -> ()
         | Some w ->
           Buffer.add_string buf
             (Printf.sprintf "  gc: heap %.1f MW, minor %s/s, major %s/s\n" (w /. 1e6)
                (opt "%.1f" st.ts_minor_rate) (opt "%.2f" st.ts_major_rate))))
    stats;
  Buffer.contents buf

let top_cmd =
  let endpoints_pos =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"ENDPOINT"
             ~doc:"Metrics endpoint to poll: HOST:PORT, or a bare port on loopback — the \
                   value given to --metrics-port of a running spp serve or spp proxy.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between polls.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Poll every endpoint once, print, and exit (no screen \
                                 clearing); exits non-zero if every endpoint is down.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Machine-readable output: one JSON object per poll on stdout (use with \
                   --once for a single snapshot).")
  in
  let parse_endpoint s =
    match String.rindex_opt s ':' with
    | None -> Option.map (fun p -> ("127.0.0.1", p)) (int_of_string_opt s)
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      Option.map
        (fun p -> ((if host = "" then "127.0.0.1" else host), p))
        (int_of_string_opt port)
  in
  let run endpoints interval once json =
    if interval <= 0.0 then begin
      Printf.eprintf "error: --interval must be > 0\n";
      exit 64
    end;
    let eps =
      List.map
        (fun s ->
          match parse_endpoint s with
          | Some hp -> hp
          | None ->
            Printf.eprintf "error: bad endpoint %S (want HOST:PORT or PORT)\n" s;
            exit 64)
        endpoints
    in
    let prevs = Hashtbl.create 8 in
    let stopping = ref false in
    Signals.on_termination (fun () -> stopping := true);
    let tick ~clear =
      let stats = List.map (top_poll prevs) eps in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [ ("interval_s", Json.Float interval);
                  ("endpoints", Json.List (List.map top_json_of_stat stats)) ]))
      else begin
        if clear then print_string "\027[2J\027[H";
        print_string (top_render stats)
      end;
      flush stdout;
      stats
    in
    if once then begin
      let stats = tick ~clear:false in
      if List.for_all (fun st -> not st.ts_up) stats then exit exit_unavailable
    end
    else
      while not !stopping do
        ignore (tick ~clear:(not json));
        (* Sleep in slices so Ctrl-C lands within ~200 ms. *)
        let rec nap left =
          if left > 0.0 && not !stopping then begin
            Unix.sleepf (Float.min 0.2 left);
            nap (left -. 0.2)
          end
        in
        nap interval
      done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal dashboard over spp serve / spp proxy metrics endpoints: request \
             rates, latency percentiles from histogram buckets, cache hit share, portfolio \
             win shares, solver profiling counters, hedge/breaker/degraded resilience \
             series, and GC churn")
    Term.(const run $ endpoints_pos $ interval_arg $ once_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let fuzz_cmd =
  let module Runner = Spp_check.Runner in
  let module Props = Spp_check.Props in
  let module Arb = Spp_check.Arb in
  let cases_arg =
    Arg.(value & opt (some int) None
         & info [ "cases" ]
             ~doc:"Number of generated instances (default 1000, unbounded when --seconds is given).")
  in
  let seconds_arg =
    Arg.(value & opt (some float) None
         & info [ "seconds" ]
             ~doc:"Wall-clock budget; generation stops when either --cases or --seconds is hit.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:"Run seed. Every case derives its own replay seed, printed on failure.")
  in
  let variant_arg =
    Arg.(value
         & opt (enum [ ("prec", `Prec); ("release", `Release); ("both", `Both) ]) `Both
         & info [ "variant" ] ~doc:"Instance family to generate: prec, release or both.")
  in
  let algos_arg =
    Arg.(value & opt (some (list string)) None
         & info [ "algos" ]
             ~doc:"Comma-separated algorithm names; only properties tagged with one of them run.")
  in
  let self_test_arg =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Fuzz a deliberately broken solver instead; succeeds only if the harness \
                   catches the planted bug and shrinks it.")
  in
  let replay_arg =
    Arg.(value & opt (some int) None
         & info [ "replay-seed" ]
             ~doc:"Replay the single case with this seed (from an earlier failure report) \
                   instead of running fresh cases.")
  in
  let out_arg =
    Arg.(value & opt string "fuzz-out"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for failure artefacts: JSON report and minimized .spp instances. \
                   Only created when something fails.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the selected properties and exit.")
  in
  let variant_name = function `Prec -> "prec" | `Release -> "release" | `Both -> "both" in
  let parsed_rects = function
    | Io.Prec inst -> List.length inst.I.Prec.rects
    | Io.Release inst -> List.length inst.I.Release.tasks
  in
  let run cases_opt seconds seed variant algos self_test replay_seed out list_props =
    let props =
      if self_test then [ Props.planted_bug ]
      else
        try Props.select ?algos ~variant ()
        with Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
    in
    (* The planted bug lives in the precedence solver; generating release
       instances for it would only produce skips. *)
    let gen_variant = if self_test then `Prec else variant in
    if list_props then begin
      let t = Table.create ~columns:[ "property"; "tags"; "invariant" ] in
      List.iter
        (fun (p : _ Runner.property) ->
          Table.add_row t [ p.Runner.name; String.concat "," p.Runner.tags; p.Runner.doc ])
        props;
      Table.print t
    end
    else begin
      let arb = Arb.parsed ~variant:gen_variant in
      let report =
        match replay_seed with
        | Some case_seed -> Runner.replay ~case_seed arb props
        | None ->
          let cases =
            match (cases_opt, seconds) with
            | Some c, _ -> c
            | None, Some _ -> max_int
            | None, None -> 1000
          in
          let deadline_ms = Option.map (fun s -> s *. 1000.) seconds in
          Runner.run ~cases ?deadline_ms ~seed arb props
      in
      let failed name =
        List.exists (fun (f : _ Runner.failure) -> f.Runner.property = name) report.Runner.failures
      in
      let t = Table.create ~columns:[ "property"; "checks"; "status" ] in
      List.iter
        (fun (name, n) ->
          Table.add_row t [ name; string_of_int n; (if failed name then "FAIL" else "ok") ])
        report.Runner.per_property;
      Table.print t;
      let nfail = List.length report.Runner.failures in
      Printf.printf "\n%d cases, %d checks, %d skips, %d failure%s in %.0f ms (seed %d)\n"
        report.Runner.cases report.Runner.checks report.Runner.skips nfail
        (if nfail = 1 then "" else "s")
        report.Runner.elapsed_ms report.Runner.run_seed;
      if report.Runner.failures <> [] then begin
        (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let sanitize = String.map (fun c -> if c = '.' then '-' else c) in
        let describe (f : _ Runner.failure) =
          let path =
            Filename.concat out
              (Printf.sprintf "fuzz-%s-%d.spp" (sanitize f.Runner.property) f.Runner.case_seed)
          in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (arb.Runner.print f.Runner.minimized));
          (* The arrival-stream seed is a pure function of the minimized
             case, so --replay-seed reproduces not just the instance but
             the exact stream the sim properties derived from it. *)
          let stream_seed = Props.stream_seed_of f.Runner.minimized in
          Printf.printf
            "\nFAIL %s\n  %s\n  replay: spp fuzz --replay-seed %d --variant %s%s\n  minimized: %s (%d rects, %d shrink steps, %d candidates tried, stream seed %d)\n"
            f.Runner.property f.Runner.message f.Runner.case_seed (variant_name gen_variant)
            (if self_test then " --self-test" else "")
            path (parsed_rects f.Runner.minimized) f.Runner.shrink_steps f.Runner.shrink_tried
            stream_seed;
          Json.Obj
            [ ("property", Json.String f.Runner.property);
              ("message", Json.String f.Runner.message);
              ("replay_seed", Json.Int f.Runner.case_seed);
              ("stream_seed", Json.Int stream_seed);
              ("case_index", Json.Int f.Runner.case_index);
              ("shrink_steps", Json.Int f.Runner.shrink_steps);
              ("shrink_tried", Json.Int f.Runner.shrink_tried);
              ("minimized_rects", Json.Int (parsed_rects f.Runner.minimized));
              ("minimized_file", Json.String path) ]
        in
        let entries = List.map describe report.Runner.failures in
        let report_path = Filename.concat out "fuzz-report.json" in
        Out_channel.with_open_text report_path (fun oc ->
            Out_channel.output_string oc
              (Json.to_string
                 (Json.Obj
                    [ ("run_seed", Json.Int report.Runner.run_seed);
                      ("variant", Json.String (variant_name gen_variant));
                      ("self_test", Json.Bool self_test);
                      ("cases", Json.Int report.Runner.cases);
                      ("checks", Json.Int report.Runner.checks);
                      ("skips", Json.Int report.Runner.skips);
                      ("elapsed_ms", Json.Float report.Runner.elapsed_ms);
                      ("failures", Json.List entries) ])
              ^ "\n"));
        Printf.printf "report: %s\n" report_path
      end;
      if self_test then begin
        if report.Runner.failures = [] then begin
          Printf.eprintf "self-test FAILED: the planted bug was not detected\n";
          exit 1
        end
        else Printf.printf "self-test OK: planted bug caught and minimized\n"
      end
      else if report.Runner.failures <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Property-based differential fuzzer: random instances through every solver, \
             checked against the paper's theorems, with counterexample shrinking")
    Term.(const run $ cases_arg $ seconds_arg $ seed_arg $ variant_arg $ algos_arg
          $ self_test_arg $ replay_arg $ out_arg $ list_arg)

let () =
  let doc = "strip packing with precedence constraints and release times (Augustine-Banerjee-Irani)" in
  let info = Cmd.info "spp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; pack_cmd; solve_cmd; batch_cmd; aptas_cmd; bounds_cmd; exact_cmd;
            simulate_cmd; online_cmd; sim_cmd; verify_cmd; serve_cmd; proxy_cmd; client_cmd;
            loadgen_cmd; trace_cmd; top_cmd; fuzz_cmd ]))
