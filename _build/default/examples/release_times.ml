(* Strip packing with release times: an FPGA operating system receiving
   tasks over time (the Section 3 scenario).

   Tasks arrive as a Poisson-like process; we run the paper's APTAS
   (Algorithm 2) at two accuracies and compare against greedy list
   scheduling, showing the certified lower bound the LP provides.

   Run with:  dune exec examples/release_times.exe *)

module Q = Spp_num.Rat
module Placement = Spp_geom.Placement
module I = Spp_core.Instance

let () =
  let k = 2 in
  let rng = Spp_util.Prng.create 2024 in
  let inst = Spp_workloads.Generators.random_release rng ~n:24 ~k ~h_den:4 ~r_den:2 ~load:1.4 in
  Printf.printf "Workload: %d tasks arriving over [0, %s] on a %d-column device\n"
    (I.Release.size inst)
    (Q.to_string (I.Release.max_release inst))
    k;

  let baseline = Spp_core.List_schedule.release inst in
  (match Spp_core.Validate.check_release inst baseline with
   | [] -> ()
   | _ -> failwith "baseline invalid");
  Printf.printf "\nGreedy list schedule height      : %s\n"
    (Q.to_string (Placement.height baseline));

  List.iter
    (fun (label, eps) ->
      let res = Spp_core.Aptas.solve ~epsilon:eps inst in
      (match Spp_core.Validate.check_release inst res.Spp_core.Aptas.placement with
       | [] -> ()
       | _ -> failwith "APTAS invalid");
      Printf.printf "\nAPTAS with epsilon = %s\n" label;
      Printf.printf "  height                 : %s\n" (Q.to_string res.Spp_core.Aptas.height);
      Printf.printf "  fractional LP optimum  : %s  (on the reduced instance P(R,W))\n"
        (Q.to_string res.Spp_core.Aptas.fractional_height);
      Printf.printf "  certified lower bound  : %s  (so OPT >= this)\n"
        (Q.to_string res.Spp_core.Aptas.lower_bound);
      Printf.printf "  height vs lower bound  : %.3fx\n"
        (Q.to_float res.Spp_core.Aptas.height /. Q.to_float res.Spp_core.Aptas.lower_bound);
      Printf.printf "  LP size                : %d configs x %d phases; %d occurrences used (cap %d)\n"
        res.Spp_core.Aptas.num_configs res.Spp_core.Aptas.num_phases
        res.Spp_core.Aptas.occurrences res.Spp_core.Aptas.max_occurrences)
    [ ("1", Q.one); ("1/2", Q.of_ints 1 2) ];

  (* Show the front of the APTAS packing. *)
  let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
  print_endline "\nAPTAS packing (time flows upward):";
  print_endline (Spp_geom.Render.render ~cols:48 ~max_rows:32 res.Spp_core.Aptas.placement)
