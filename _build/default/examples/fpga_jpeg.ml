(* FPGA JPEG pipeline: the paper's Section 1 motivation end to end.

   A JPEG encoder task graph (colour conversion -> per-block DCT ->
   quantise -> zigzag -> RLE -> Huffman) is scheduled onto a simulated
   column-reconfigurable FPGA with the DC algorithm and with greedy list
   scheduling; the discrete-event simulator then executes both schedules
   and reports makespan, utilisation and a Gantt chart.

   Run with:  dune exec examples/fpga_jpeg.exe *)

module Q = Spp_num.Rat
module Placement = Spp_geom.Placement
module I = Spp_core.Instance

let run_schedule name inst placement dev =
  let sched = Spp_fpga.Schedule.of_placement ~device:dev placement in
  let report = Spp_fpga.Sim.run ~dag:inst.I.Prec.dag sched in
  Printf.printf "\n--- %s ---\n" name;
  Printf.printf "makespan    : %s time units\n" (Q.to_string report.Spp_fpga.Sim.makespan);
  Printf.printf "utilisation : %.1f%% of column-time\n" (report.Spp_fpga.Sim.utilisation *. 100.0);
  Printf.printf "reconfigs   : %d column acquisitions\n" report.Spp_fpga.Sim.reconfigurations;
  (match report.Spp_fpga.Sim.violations with
   | [] -> print_endline "execution   : clean (no conflicts, precedence respected)"
   | vs ->
     List.iter (fun v -> Format.printf "VIOLATION: %a@." Spp_fpga.Sim.pp_violation v) vs;
     exit 1);
  print_endline (Spp_fpga.Sim.gantt sched)

let () =
  let columns = 8 in
  let blocks = 8 in
  let inst = Spp_workloads.Generators.jpeg_pipeline ~blocks ~k:columns in
  Printf.printf "JPEG encoder, %d blocks -> %d tasks on a %d-column device\n" blocks
    (I.Prec.size inst) columns;
  Printf.printf "critical path F = %s, total area = %s\n"
    (Q.to_string (Spp_core.Lower_bounds.critical_path inst))
    (Q.to_string (Spp_core.Lower_bounds.area inst));

  let dev = Spp_fpga.Device.make ~columns () in

  let dc_placement, _ = Spp_core.Dc.pack inst in
  (match Spp_core.Validate.check_prec inst dc_placement with
   | [] -> ()
   | _ -> failwith "DC produced an invalid packing");
  run_schedule "DC (Theorem 2.3 algorithm)" inst dc_placement dev;

  let ls_placement = Spp_core.List_schedule.prec inst in
  run_schedule "Greedy list scheduling (baseline)" inst ls_placement dev;

  (* Ablation: what does a non-zero reconfiguration delay do? Model it by
     inflating every task's duration by the delay before packing, then
     executing on a device that enforces the gap. *)
  let delay = Q.of_ints 1 8 in
  let inflated =
    I.Prec.make
      (List.map
         (fun (r : Spp_geom.Rect.t) ->
           Spp_geom.Rect.make ~id:r.Spp_geom.Rect.id ~w:r.Spp_geom.Rect.w
             ~h:(Q.add r.Spp_geom.Rect.h delay))
         inst.rects)
      inst.dag
  in
  let infl_placement, _ = Spp_core.Dc.pack inflated in
  Printf.printf "\nWith a reconfiguration delay of %s folded into task times, DC's\n"
    (Q.to_string delay);
  Printf.printf "makespan grows from %s to %s — the cost of dynamic reconfiguration\n"
    (Q.to_string (Placement.height dc_placement))
    (Q.to_string (Placement.height infl_placement));
  print_endline "overhead that drives the paper's column-contiguity model."
