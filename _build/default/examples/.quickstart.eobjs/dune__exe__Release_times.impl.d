examples/release_times.ml: List Printf Spp_core Spp_geom Spp_num Spp_util Spp_workloads
