examples/release_times.mli:
