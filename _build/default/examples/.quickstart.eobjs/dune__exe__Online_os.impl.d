examples/online_os.ml: List Printf Spp_core Spp_fpga Spp_num Spp_util Spp_workloads
