examples/paper_tour.mli:
