examples/paper_tour.ml: Array List Printf Spp_core Spp_dag Spp_exact Spp_fpga Spp_geom Spp_num Spp_util Spp_workloads String
