examples/adversarial_gallery.ml: Float Printf Spp_core Spp_exact Spp_geom Spp_num Spp_workloads
