examples/fpga_jpeg.mli:
