examples/quickstart.ml: Format List Printf Spp_core Spp_dag Spp_exact Spp_geom Spp_num
