examples/fpga_jpeg.ml: Format List Printf Spp_core Spp_fpga Spp_geom Spp_num Spp_workloads
