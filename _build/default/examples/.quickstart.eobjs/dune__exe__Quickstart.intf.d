examples/quickstart.mli:
