examples/online_os.mli:
