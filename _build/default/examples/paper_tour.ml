(* An executable tour of the paper, result by result.

   Runs each of the paper's claims on live instances with printed
   narration — Section 2 (DC and its lower-bound barrier), Section 2.2
   (uniform heights), Section 3 (the APTAS pipeline, shown stage by stage).

   Run with:  dune exec examples/paper_tour.exe *)

module Q = Spp_num.Rat
module Placement = Spp_geom.Placement
module I = Spp_core.Instance

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  Printf.printf
    "Augustine-Banerjee-Irani: Strip packing with precedence constraints and\n\
     strip packing with release times — a guided run.\n";

  (* ---------------------------------------------------------------- *)
  hr "Theorem 2.3 — DC is (2 + log2(n+1))-approximate";
  let rng = Spp_util.Prng.create 2026 in
  let inst = Spp_workloads.Generators.random_prec rng ~n:64 ~k:8 ~h_den:4 ~shape:`Series_parallel in
  let p, stats = Spp_core.Dc.pack inst in
  assert (Spp_core.Validate.is_valid_prec inst p);
  Printf.printf
    "64-task series-parallel instance: DC height %.3f vs LB max(AREA, F) = %.3f\n"
    (Q.to_float (Placement.height p))
    (Q.to_float (Spp_core.Lower_bounds.prec inst));
  Printf.printf "proved ceiling log2(n+1)*F + 2*AREA = %.3f; recursion depth %d\n"
    (Spp_core.Dc.theorem_2_3_bound inst) stats.Spp_core.Dc.levels;
  let bot, mid, top = Spp_core.Dc.split inst in
  Printf.printf
    "First split: |S_bot| = %d, |S_mid| = %d (never empty - Lemma 2.2,\n\
     pairwise independent - Lemma 2.1), |S_top| = %d\n"
    (List.length bot) (List.length mid) (List.length top);

  (* ---------------------------------------------------------------- *)
  hr "Lemma 2.4 / Figure 1 — why o(log n) needs better lower bounds";
  List.iter
    (fun k ->
      let fig = Spp_workloads.Adversarial.fig1 ~k ~eps_den:10_000 in
      let h = Spp_core.Dc.height fig in
      let lb = Spp_core.Lower_bounds.prec fig in
      Printf.printf "  k = %d (n = %4d): every packing needs ~k/2 = %.1f; measured gap %.2fx (LB ~ %.2f)\n"
        k (I.Prec.size fig) (float_of_int k /. 2.0)
        (Q.to_float h /. Q.to_float lb) (Q.to_float lb))
    [ 3; 5; 7 ];

  (* ---------------------------------------------------------------- *)
  hr "Section 2.2 / Theorem 2.6 — uniform heights: algorithm F vs exact OPT";
  let rng2 = Spp_util.Prng.create 7 in
  let uinst = Spp_workloads.Generators.random_uniform_prec rng2 ~n:12 ~k:8 ~shape:`Layered in
  let pf, fstats = Spp_core.Uniform.next_fit_shelf uinst in
  assert (Spp_core.Validate.is_valid_prec uinst pf);
  let opt = Spp_exact.Prec_binpack.min_height uinst in
  Printf.printf
    "12 unit-height tasks: F uses %d shelves (%d skips <= longest path %d);\n\
     exact optimum (bin-packing DP) is %s -> ratio %.2f (bound: 3, tight only\n\
     on the Figure-2 family where the forced OPT is 3k)\n"
    fstats.Spp_core.Uniform.shelves fstats.Spp_core.Uniform.skips
    (Spp_dag.Dag.longest_path_length uinst.dag)
    (Q.to_string opt)
    (Q.to_float (Placement.height pf) /. Q.to_float opt);
  let reds, greens = Spp_core.Uniform.red_green_decomposition uinst pf in
  Printf.printf "Theorem 2.6's shelf colouring on this run: %d red + %d green shelves\n" reds greens;

  (* ---------------------------------------------------------------- *)
  hr "Section 3 — the APTAS pipeline, stage by stage (epsilon = 1, K = 2)";
  let rng3 = Spp_util.Prng.create 99 in
  let rinst = Spp_workloads.Generators.random_release rng3 ~n:16 ~k:2 ~h_den:4 ~r_den:2 ~load:1.3 in
  let eps' = Q.of_ints 1 3 in
  Printf.printf "16 tasks arriving over [0, %s]\n" (Q.to_string (I.Release.max_release rinst));
  let p_r = Spp_core.Grouping.round_releases ~epsilon_r:eps' rinst in
  Printf.printf "Lemma 3.1: release times rounded to %d distinct values (cost <= 1+1/3)\n"
    (List.length (Spp_core.Grouping.distinct_releases p_r));
  let p_rw = Spp_core.Grouping.group_widths ~groups_per_class:6 p_r in
  Printf.printf "Lemma 3.2: widths grouped to %d distinct values (cost <= 1+1/3)\n"
    (List.length (Spp_core.Grouping.distinct_widths p_rw));
  let sol = Spp_core.Config_lp.solve p_rw in
  Printf.printf
    "Lemma 3.3: configuration LP over %d configurations x %d phases;\n\
     exact simplex optimum OPT_f(P(R,W)) = %s using %d basic occurrences\n"
    sol.Spp_core.Config_lp.num_configs
    (Array.length sol.Spp_core.Config_lp.boundaries)
    (Q.to_string sol.Spp_core.Config_lp.fractional_height)
    (List.length sol.Spp_core.Config_lp.occurrences);
  let res = Spp_core.Aptas.solve ~epsilon:Q.one rinst in
  assert (Spp_core.Validate.is_valid_release rinst res.Spp_core.Aptas.placement);
  Printf.printf
    "Lemma 3.4: greedy column filling -> integral height %s\n\
     (<= fractional %s + %d occurrences; Theorem 3.5's accounting)\n"
    (Q.to_string res.Spp_core.Aptas.height)
    (Q.to_string res.Spp_core.Aptas.fractional_height)
    res.Spp_core.Aptas.occurrences;
  Printf.printf "Certified: OPT >= %s, so the ratio is at most %.3f\n"
    (Q.to_string res.Spp_core.Aptas.lower_bound)
    (Q.to_float res.Spp_core.Aptas.height /. Q.to_float res.Spp_core.Aptas.lower_bound);

  (* ---------------------------------------------------------------- *)
  hr "And back to the hardware";
  let jinst = Spp_workloads.Generators.jpeg_pipeline ~blocks:4 ~k:8 in
  let jp, _ = Spp_core.Dc.pack jinst in
  let dev = Spp_fpga.Device.make ~columns:8 () in
  let sched = Spp_fpga.Schedule.of_placement ~device:dev jp in
  let rep = Spp_fpga.Sim.run ~dag:jinst.dag sched in
  assert (rep.Spp_fpga.Sim.violations = []);
  Printf.printf
    "A 4-block JPEG encoder scheduled by DC executes on the simulated\n\
     8-column device in %s time units at %.0f%% utilisation - the FPGA\n\
     story the paper's introduction promises.\n"
    (Q.to_string rep.Spp_fpga.Sim.makespan)
    (rep.Spp_fpga.Sim.utilisation *. 100.0)
