(* An FPGA "operating system" processing an online task stream.

   Tasks arrive over time (the release-time model of Section 3). An online
   scheduler must place each task on contiguous columns as it arrives; the
   offline APTAS sees the whole future and provides both a near-optimal
   schedule and a certified lower bound, quantifying the price of being
   online.

   Run with:  dune exec examples/online_os.exe *)

module Q = Spp_num.Rat
module I = Spp_core.Instance

let () =
  let k = 4 in
  let rng = Spp_util.Prng.create 77 in
  let inst = Spp_workloads.Generators.random_release rng ~n:20 ~k ~h_den:4 ~r_den:2 ~load:1.2 in
  Printf.printf "Task stream: %d tasks over [0, %s] on a %d-column device\n\n"
    (I.Release.size inst)
    (Q.to_string (I.Release.max_release inst))
    k;

  let dev = Spp_fpga.Device.make ~columns:k () in
  let arrivals = Spp_fpga.Online.arrivals_of_release inst in
  let release id = I.Release.release inst id in

  List.iter
    (fun (name, policy) ->
      let sched = Spp_fpga.Online.schedule dev policy arrivals in
      let rep = Spp_fpga.Sim.run ~release sched in
      assert (rep.Spp_fpga.Sim.violations = []);
      Printf.printf "%-22s makespan %-8s utilisation %.1f%%\n" name
        (Q.to_string rep.Spp_fpga.Sim.makespan)
        (rep.Spp_fpga.Sim.utilisation *. 100.0);
      if policy = `Earliest then print_endline (Spp_fpga.Sim.gantt ~time_cols:56 sched))
    [ ("online (Earliest)", `Earliest); ("online (Leftmost)", `Leftmost) ];

  Printf.printf "\nOffline reference (Algorithm 2, epsilon = 1):\n";
  let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
  assert (Spp_core.Validate.is_valid_release inst res.Spp_core.Aptas.placement);
  Printf.printf "  APTAS height          %s\n" (Q.to_string res.Spp_core.Aptas.height);
  Printf.printf "  certified lower bound %s  — no schedule, online or offline,\n"
    (Q.to_string res.Spp_core.Aptas.lower_bound);
  print_endline "  can beat this bound; the gap above it is the price of being online."
