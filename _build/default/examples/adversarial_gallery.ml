(* Adversarial gallery: the paper's two lower-bound constructions, drawn.

   Figure 1 (Lemma 2.4): k chains of tall rectangles interleaved with
   full-width slivers; both simple lower bounds stay near 1 but any packing
   needs height ~ k/2 — so no analysis based on AREA and F alone can beat
   O(log n) for DC.

   Figure 2 (Lemma 2.7): 2k wide rectangles before a chain of k narrow
   ones, all unit height; OPT = 3k while the bounds give ~ k, so 3 is the
   natural barrier for the uniform-height case.

   Run with:  dune exec examples/adversarial_gallery.exe *)

module Q = Spp_num.Rat
module Placement = Spp_geom.Placement
module I = Spp_core.Instance

let show name inst =
  let area = Spp_core.Lower_bounds.area inst in
  let f = Spp_core.Lower_bounds.critical_path inst in
  let p, _ = Spp_core.Dc.pack inst in
  (match Spp_core.Validate.check_prec inst p with [] -> () | _ -> failwith "invalid");
  let h = Placement.height p in
  Printf.printf "\n=== %s ===\n" name;
  Printf.printf "n = %d, AREA = %.3f, F = %.3f, DC height = %.3f, gap = %.2fx\n"
    (I.Prec.size inst) (Q.to_float area) (Q.to_float f) (Q.to_float h)
    (Q.to_float h /. Float.max (Q.to_float area) (Q.to_float f));
  print_endline (Spp_geom.Render.render ~cols:56 ~max_rows:24 p)

let () =
  show "Figure 1 family, k = 4 (n = 30)" (Spp_workloads.Adversarial.fig1 ~k:4 ~eps_den:100);
  show "Figure 2 family, k = 3 (n = 9)" (Spp_workloads.Adversarial.fig2 ~k:3 ~eps_den:64);

  (* Figure 2's point made exact: compare the exact optimum (via the
     precedence bin-packing DP) to the lower bounds. *)
  let inst = Spp_workloads.Adversarial.fig2 ~k:3 ~eps_den:64 in
  let opt = Spp_exact.Prec_binpack.min_height inst in
  Printf.printf "Figure 2, k = 3: exact OPT = %s while max(AREA, F) = %s -> ratio %.2f\n"
    (Q.to_string opt)
    (Q.to_string (Spp_core.Lower_bounds.prec inst))
    (Q.to_float opt /. Q.to_float (Spp_core.Lower_bounds.prec inst));
  print_endline "As k grows this ratio approaches 3 (see bench e3)."
