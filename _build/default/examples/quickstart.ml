(* Quickstart: build a small precedence-constrained instance by hand, pack
   it with the paper's DC algorithm (Algorithm 1), validate, and draw it.

   Run with:  dune exec examples/quickstart.exe *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module I = Spp_core.Instance

let () =
  (* Five tasks of a tiny video filter: load -> {blur, sharpen} -> merge ->
     encode. Width = fraction of the device, height = execution time. *)
  let q = Q.of_ints in
  let rects =
    [
      Rect.make ~id:0 ~w:(q 1 2) ~h:(q 1 2) (* load *);
      Rect.make ~id:1 ~w:(q 1 4) ~h:(q 3 2) (* blur *);
      Rect.make ~id:2 ~w:(q 1 2) ~h:Q.one (* sharpen *);
      Rect.make ~id:3 ~w:(q 3 4) ~h:(q 1 2) (* merge *);
      Rect.make ~id:4 ~w:Q.one ~h:(q 1 4) (* encode *);
    ]
  in
  let dag =
    Dag.of_edges ~nodes:[ 0; 1; 2; 3; 4 ]
      ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]
  in
  let inst = I.Prec.make rects dag in

  Printf.printf "Instance: %d tasks, %d precedence edges\n" (I.Prec.size inst)
    (Dag.num_edges inst.dag);
  Printf.printf "Lower bounds: AREA = %s, critical path F = %s\n"
    (Q.to_string (Spp_core.Lower_bounds.area inst))
    (Q.to_string (Spp_core.Lower_bounds.critical_path inst));

  (* Pack with DC (Theorem 2.3: height <= (2 + log2(n+1)) * OPT). *)
  let placement, stats = Spp_core.Dc.pack inst in
  Printf.printf "\nDC packed to height %s (%d recursion levels, %d A-bands)\n"
    (Q.to_string (Placement.height placement))
    stats.Spp_core.Dc.levels stats.Spp_core.Dc.mid_calls;

  (* Independent validation: geometry + precedence. *)
  (match Spp_core.Validate.check_prec inst placement with
   | [] -> print_endline "Validator: packing is valid."
   | vs ->
     List.iter
       (fun v -> Format.printf "VIOLATION: %a@." Spp_core.Validate.pp_violation v)
       vs;
     exit 1);

  (* The exact reference for an instance this small. *)
  let best = Spp_exact.Order_search.best_prec inst in
  Printf.printf "Best bottom-left reference height: %s\n"
    (Q.to_string best.Spp_exact.Order_search.height);

  print_endline "\nPacking (time flows upward, width is the strip):";
  print_endline (Spp_geom.Render.render ~cols:48 placement)
