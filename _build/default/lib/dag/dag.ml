module Q = Spp_num.Rat
module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type t = {
  node_set : IntSet.t;
  preds : IntSet.t IntMap.t; (* in-neighbourhoods *)
  succs : IntSet.t IntMap.t;
  nedges : int;
}

let empty = { node_set = IntSet.empty; preds = IntMap.empty; succs = IntMap.empty; nedges = 0 }

let mem t v = IntSet.mem v t.node_set
let nodes t = IntSet.elements t.node_set
let num_nodes t = IntSet.cardinal t.node_set
let num_edges t = t.nedges

let neighbours map v = match IntMap.find_opt v map with Some s -> s | None -> IntSet.empty

let preds t v = IntSet.elements (neighbours t.preds v)
let succs t v = IntSet.elements (neighbours t.succs v)
let has_edge t u v = IntSet.mem v (neighbours t.succs u)

let roots t = List.filter (fun v -> IntSet.is_empty (neighbours t.preds v)) (nodes t)
let sinks t = List.filter (fun v -> IntSet.is_empty (neighbours t.succs v)) (nodes t)

let edges t =
  List.concat_map (fun u -> List.map (fun v -> (u, v)) (succs t u)) (nodes t)

(* Kahn's algorithm with a min-id heap; returns None when a cycle remains. *)
let topo_order_opt t =
  let indeg = Hashtbl.create 16 in
  IntSet.iter (fun v -> Hashtbl.replace indeg v (IntSet.cardinal (neighbours t.preds v))) t.node_set;
  let ready = Spp_util.Heap.create ~cmp:compare in
  IntSet.iter (fun v -> if Hashtbl.find indeg v = 0 then Spp_util.Heap.push ready v) t.node_set;
  let rec go acc count =
    match Spp_util.Heap.pop ready with
    | None -> if count = num_nodes t then Some (List.rev acc) else None
    | Some v ->
      IntSet.iter
        (fun w ->
          let d = Hashtbl.find indeg w - 1 in
          Hashtbl.replace indeg w d;
          if d = 0 then Spp_util.Heap.push ready w)
        (neighbours t.succs v);
      go (v :: acc) (count + 1)
  in
  go [] 0

let topo_order t =
  match topo_order_opt t with
  | Some order -> order
  | None -> assert false (* construction rejects cycles *)

let of_edges ~nodes:node_list ~edges =
  let node_set = IntSet.of_list node_list in
  if IntSet.cardinal node_set <> List.length node_list then
    invalid_arg "Dag.of_edges: duplicate node id";
  let add_edge (preds, succs, n) (u, v) =
    if not (IntSet.mem u node_set) || not (IntSet.mem v node_set) then
      invalid_arg (Printf.sprintf "Dag.of_edges: edge (%d,%d) references unknown node" u v);
    if u = v then invalid_arg (Printf.sprintf "Dag.of_edges: self-loop on %d" u);
    let cur = match IntMap.find_opt u succs with Some s -> s | None -> IntSet.empty in
    if IntSet.mem v cur then invalid_arg (Printf.sprintf "Dag.of_edges: duplicate edge (%d,%d)" u v);
    let succs = IntMap.add u (IntSet.add v cur) succs in
    let curp = match IntMap.find_opt v preds with Some s -> s | None -> IntSet.empty in
    let preds = IntMap.add v (IntSet.add u curp) preds in
    (preds, succs, n + 1)
  in
  let preds, succs, nedges = List.fold_left add_edge (IntMap.empty, IntMap.empty, 0) edges in
  let t = { node_set; preds; succs; nedges } in
  match topo_order_opt t with
  | Some _ -> t
  | None -> invalid_arg "Dag.of_edges: graph has a cycle"

let induced t keep =
  let node_set = IntSet.filter keep t.node_set in
  let filter_map m =
    IntMap.filter_map
      (fun v s -> if IntSet.mem v node_set then Some (IntSet.inter s node_set) else None)
      m
  in
  let preds = filter_map t.preds and succs = filter_map t.succs in
  let nedges = IntMap.fold (fun _ s acc -> acc + IntSet.cardinal s) succs 0 in
  { node_set; preds; succs; nedges }

let reachable t v =
  if not (mem t v) then invalid_arg "Dag.reachable: unknown node";
  let seen = ref IntSet.empty in
  let rec dfs u =
    if not (IntSet.mem u !seen) then begin
      seen := IntSet.add u !seen;
      IntSet.iter dfs (neighbours t.succs u)
    end
  in
  dfs v;
  IntSet.elements !seen

(* Reachability sets, computed once in reverse topological order. *)
let descendant_sets t =
  let desc = Hashtbl.create (num_nodes t) in
  List.iter
    (fun v ->
      let s =
        IntSet.fold
          (fun w acc -> IntSet.union acc (IntSet.add w (Hashtbl.find desc w)))
          (neighbours t.succs v) IntSet.empty
      in
      Hashtbl.replace desc v s)
    (List.rev (topo_order t));
  desc

let transitive_closure t =
  let desc = descendant_sets t in
  let edges =
    List.concat_map
      (fun u -> List.map (fun v -> (u, v)) (IntSet.elements (Hashtbl.find desc u)))
      (nodes t)
  in
  of_edges ~nodes:(nodes t) ~edges

let transitive_reduction t =
  let desc = descendant_sets t in
  (* Edge (u,v) is redundant iff v is reachable from another successor of
     u: then some path u -> w ->* v exists with w <> v. *)
  let edges =
    List.filter
      (fun (u, v) ->
        not
          (IntSet.exists
             (fun w -> w <> v && IntSet.mem v (Hashtbl.find desc w))
             (neighbours t.succs u)))
      (edges t)
  in
  of_edges ~nodes:(nodes t) ~edges

let is_comparable t u v =
  if not (mem t u && mem t v) then invalid_arg "Dag.is_comparable: unknown node";
  u = v
  || List.mem v (reachable t u)
  || List.mem u (reachable t v)

let longest_path_to t ~weight =
  let memo = Hashtbl.create (num_nodes t) in
  (* Fill in topological order so lookups never recurse. *)
  List.iter
    (fun v ->
      let best_pred =
        IntSet.fold
          (fun u acc -> Q.max acc (Hashtbl.find memo u))
          (neighbours t.preds v) Q.zero
      in
      Hashtbl.replace memo v (Q.add (weight v) best_pred))
    (topo_order t);
  fun v ->
    match Hashtbl.find_opt memo v with
    | Some x -> x
    | None -> invalid_arg "Dag.longest_path_to: unknown node"

let longest_path_length t =
  let memo = Hashtbl.create (num_nodes t) in
  let best = ref 0 in
  List.iter
    (fun v ->
      let p =
        IntSet.fold (fun u acc -> max acc (Hashtbl.find memo u)) (neighbours t.preds v) 0
      in
      Hashtbl.replace memo v (p + 1);
      best := max !best (p + 1))
    (topo_order t);
  !best

let independent t inside =
  not
    (List.exists
       (fun u -> inside u && IntSet.exists inside (neighbours t.succs u))
       (nodes t))

let pp fmt t =
  Format.fprintf fmt "dag{%d nodes, %d edges}" (num_nodes t) (num_edges t)
