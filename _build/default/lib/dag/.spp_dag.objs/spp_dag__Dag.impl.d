lib/dag/dag.ml: Format Hashtbl Int List Map Printf Set Spp_num Spp_util
