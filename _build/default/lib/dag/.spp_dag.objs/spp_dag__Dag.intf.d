lib/dag/dag.mli: Format Spp_num
