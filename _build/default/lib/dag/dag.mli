(** Directed acyclic graphs over integer node ids (rectangle ids).

    The precedence structure of Section 2: an edge [(s, s')] means rectangle
    [s] must finish (top edge) no higher than [s'] starts (bottom edge),
    i.e. [y_s + h_s <= y_{s'}]. Construction rejects cycles eagerly, so
    every value of type {!t} is a genuine DAG. All traversals are
    deterministic (ids are visited in increasing order) so experiment output
    is reproducible. *)

type t

(** [empty] has no nodes. *)
val empty : t

(** [of_edges ~nodes ~edges] builds the DAG.
    @raise Invalid_argument if an edge endpoint is not in [nodes], an edge
    is duplicated, a self-loop appears, or the graph has a cycle. *)
val of_edges : nodes:int list -> edges:(int * int) list -> t

val nodes : t -> int list

val edges : t -> (int * int) list

val num_nodes : t -> int
val num_edges : t -> int
val mem : t -> int -> bool

(** [preds t v] is the in-neighbourhood [IN(v)] (paper's notation), sorted. *)
val preds : t -> int -> int list

(** [succs t v] is the out-neighbourhood, sorted. *)
val succs : t -> int -> int list

val has_edge : t -> int -> int -> bool

(** Nodes with no predecessors, sorted. *)
val roots : t -> int list

(** Nodes with no successors, sorted. *)
val sinks : t -> int list

(** [topo_order t] is a topological order (Kahn's algorithm with a min-id
    tie-break, hence unique and deterministic). *)
val topo_order : t -> int list

(** [induced t keep] is the subgraph on the nodes satisfying [keep], with
    only the edges between kept nodes — exactly the "subgraph of the
    original DAG induced by S" that DC recomputes on each recursive call
    (Algorithm 1, line 2). Note this does {e not} take the transitive
    closure: DC never needs it because its splits are downward-closed. *)
val induced : t -> (int -> bool) -> t

(** [reachable t v] is the set of nodes reachable from [v] (including [v])
    as a sorted list. *)
val reachable : t -> int -> int list

(** [transitive_closure t] has an edge (u,v) whenever [t] has a directed
    path u → v with u ≠ v. *)
val transitive_closure : t -> t

(** [transitive_reduction t] is the unique minimal DAG with the same
    reachability (the Hasse diagram): edges implied by longer paths are
    dropped. Precedence instances are often given redundantly; packing
    algorithms behave identically on the reduction but traversals shrink. *)
val transitive_reduction : t -> t

(** [is_comparable t u v] is [true] when a directed path joins [u] and [v]
    in either direction (the negation of the independence two rectangles
    need to share a horizontal band). *)
val is_comparable : t -> int -> int -> bool

(** [longest_path_to t ~weight] computes the paper's function [F]:
    [F(v) = weight v] if [IN(v) = ∅], else
    [F(v) = weight v + max_{u ∈ IN(v)} F(u)].
    Returns a lookup function backed by a memo table; total O(V + E).
    Weights may be any totally ordered semigroup values combined by the
    caller; here they are rationals (heights). *)
val longest_path_to : t -> weight:(int -> Spp_num.Rat.t) -> int -> Spp_num.Rat.t

(** [longest_path_length t] is the maximum number of {e nodes} on any
    directed path (0 on the empty DAG) — the lower bound used in
    Lemma 2.5's skip argument. *)
val longest_path_length : t -> int

(** [is_chain_free t between] is [true] when no two nodes satisfying
    [between] are connected by a direct edge. Used to verify Lemma 2.1
    (independence of the middle band). *)
val independent : t -> (int -> bool) -> bool

val pp : Format.formatter -> t -> unit
