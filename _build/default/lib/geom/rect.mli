(** Rectangles (tasks) with exact rational dimensions.

    In the paper's model a rectangle [s] has width [w_s ∈ (0, 1]] (fraction
    of the strip / FPGA columns) and height [h_s > 0] (execution time). All
    coordinates in this repository are exact rationals ({!Spp_num.Rat}), so
    geometric predicates (overlap, containment) are decidable without
    epsilon tuning and the APTAS bookkeeping is exact. *)

type t = {
  id : int;  (** stable identity, preserved through every transformation *)
  w : Spp_num.Rat.t;  (** width, in (0, 1] *)
  h : Spp_num.Rat.t;  (** height, > 0 *)
}

(** [make ~id ~w ~h] checks [0 < w <= 1] and [h > 0].
    @raise Invalid_argument when a dimension is out of range. *)
val make : id:int -> w:Spp_num.Rat.t -> h:Spp_num.Rat.t -> t

(** [make_f ~id ~w ~h] builds from floats via exact small-denominator
    approximation (denominator ≤ 10^6). Convenience for examples. *)
val make_f : id:int -> w:float -> h:float -> t

val area : t -> Spp_num.Rat.t

(** [total_area rects] is [Σ w·h] — the paper's [AREA(S)] lower bound. *)
val total_area : t list -> Spp_num.Rat.t

(** [max_height rects] is [max h_s] ([zero] on the empty list). *)
val max_height : t list -> Spp_num.Rat.t

(** Sort tallest first (the order NFDH/FFDH need); ties by id for
    determinism. *)
val sort_by_height_desc : t list -> t list

(** Sort widest first (the order stacking/grouping need); ties by id. *)
val sort_by_width_desc : t list -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
