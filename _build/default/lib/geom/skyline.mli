(** Skyline (envelope) structure for bottom-left-style placement.

    Maintains the upper contour of the packed region as a left-to-right list
    of horizontal segments over the strip [\[0, 1\]]. Used by the
    bottom-left baseline packer in {!Spp_pack.Bottom_left} and by the
    precedence-aware list scheduler in {!Spp_core.List_schedule}: both place
    each rectangle at the lowest (then leftmost) supported position subject
    to a per-rectangle lower bound on y (release time or predecessor
    finish). Exact rational coordinates; O(segments) per operation. *)

type t

(** [create ()] is the empty skyline over strip width 1 (contour at y = 0). *)
val create : unit -> t

(** [segments t] is the contour as [(x, width, y)] triples, left to right;
    widths are positive and sum to 1. *)
val segments : t -> (Spp_num.Rat.t * Spp_num.Rat.t * Spp_num.Rat.t) list

(** [place t ~w ~h ~y_min] chooses the position minimising (support y, then
    x) over all candidate left edges, subject to [y >= y_min], commits the
    rectangle to the skyline and returns its position.
    @raise Invalid_argument if [w] exceeds the strip width. *)
val place : t -> w:Spp_num.Rat.t -> h:Spp_num.Rat.t -> y_min:Spp_num.Rat.t -> Placement.pos

(** [height t] is the highest contour y. *)
val height : t -> Spp_num.Rat.t

(** [copy t] is an independent snapshot (O(1): the contour is persistent
    data behind a mutable head). Used by branch-and-bound search. *)
val copy : t -> t

