module Q = Spp_num.Rat

type pos = { x : Q.t; y : Q.t }
type item = { rect : Rect.t; pos : pos }
type t = { items : item list }

let of_items items =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun it ->
      let id = it.rect.Rect.id in
      if Hashtbl.mem tbl id then
        invalid_arg (Printf.sprintf "Placement.of_items: duplicate rect id %d" id);
      Hashtbl.add tbl id ())
    items;
  { items }

let items t = t.items
let size t = List.length t.items
let find t ~id = List.find_opt (fun it -> it.rect.Rect.id = id) t.items

let height t =
  List.fold_left (fun acc it -> Q.max acc (Q.add it.pos.y it.rect.Rect.h)) Q.zero t.items

let shift_y t dy =
  let shifted =
    List.map
      (fun it ->
        let y = Q.add it.pos.y dy in
        if Q.sign y < 0 then invalid_arg "Placement.shift_y: rectangle below base";
        { it with pos = { it.pos with y } })
      t.items
  in
  { items = shifted }

let union a b =
  of_items (a.items @ b.items)

(* Open-interior overlap: touching edges do not overlap. *)
let overlaps (ra : Rect.t) pa (rb : Rect.t) pb =
  let open Q.Infix in
  pa.x < pb.x + rb.Rect.w
  && pb.x < pa.x + ra.Rect.w
  && pa.y < pb.y + rb.Rect.h
  && pb.y < pa.y + ra.Rect.h

type violation = Out_of_strip of int | Overlap of int * int

let check t =
  let violations = ref [] in
  let arr = Array.of_list t.items in
  Array.iter
    (fun it ->
      let right = Q.add it.pos.x it.rect.Rect.w in
      if Q.sign it.pos.x < 0 || Q.sign it.pos.y < 0 || Q.compare right Q.one > 0 then
        violations := Out_of_strip it.rect.Rect.id :: !violations)
    arr;
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if overlaps a.rect a.pos b.rect b.pos then
        violations := Overlap (a.rect.Rect.id, b.rect.Rect.id) :: !violations
    done
  done;
  List.rev !violations

let is_valid t = check t = []

let pp_violation fmt = function
  | Out_of_strip id -> Format.fprintf fmt "rect #%d out of strip" id
  | Overlap (a, b) -> Format.fprintf fmt "rects #%d and #%d overlap" a b
