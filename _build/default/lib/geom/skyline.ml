module Q = Spp_num.Rat

(* Contour segments in left-to-right order; adjacent segments with equal y
   are merged so the candidate set stays small. *)
type seg = { x : Q.t; w : Q.t; y : Q.t }
type t = { mutable segs : seg list }

let create () = { segs = [ { x = Q.zero; w = Q.one; y = Q.zero } ] }

let segments t = List.map (fun s -> (s.x, s.w, s.y)) t.segs

let height t = List.fold_left (fun acc s -> Q.max acc s.y) Q.zero t.segs

let copy t = { segs = t.segs }

(* Max contour height over the window [x0, x0+w); None if the window leaves
   the strip. *)
let support t x0 w =
  let open Q.Infix in
  if x0 + w > Q.one then None
  else begin
    let x1 = x0 + w in
    let rec go best = function
      | [] -> best
      | s :: rest ->
        if s.x >= x1 then best
        else if s.x + s.w <= x0 then go best rest
        else go (Q.max best s.y) rest
    in
    Some (go Q.zero t.segs)
  end

(* Rebuild the contour after committing a rect occupying [x0, x1) at top. *)
let commit t x0 x1 top =
  let open Q.Infix in
  let pieces =
    List.concat_map
      (fun s ->
        let sx0 = s.x and sx1 = s.x + s.w in
        let left =
          if sx0 < x0 then [ { s with w = Q.min s.w (x0 - sx0) } ] else []
        in
        let right =
          if sx1 > x1 then
            let rx = Q.max s.x x1 in
            [ { x = rx; w = sx1 - rx; y = s.y } ]
          else []
        in
        left @ right)
      t.segs
  in
  let segs =
    List.sort (fun a b -> Q.compare a.x b.x) ({ x = x0; w = x1 - x0; y = top } :: pieces)
  in
  (* Merge adjacent segments at equal height. *)
  let rec merge = function
    | a :: b :: rest when Q.equal a.y b.y && Q.equal (Q.add a.x a.w) b.x ->
      merge ({ a with w = Q.add a.w b.w } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  t.segs <- merge segs

let place t ~w ~h ~y_min =
  if Q.compare w Q.one > 0 then invalid_arg "Skyline.place: rect wider than strip";
  (* Candidates: each segment's left edge, plus the right-flush position. *)
  let candidates =
    List.filter_map
      (fun s ->
        match support t s.x w with
        | Some sup -> Some (s.x, Q.max sup y_min)
        | None ->
          (match support t (Q.sub Q.one w) w with
           | Some sup -> Some (Q.sub Q.one w, Q.max sup y_min)
           | None -> None))
      t.segs
  in
  let best =
    List.fold_left
      (fun acc (x, y) ->
        match acc with
        | None -> Some (x, y)
        | Some (bx, by) ->
          let c = Q.compare y by in
          if c < 0 || (c = 0 && Q.compare x bx < 0) then Some (x, y) else acc)
      None candidates
  in
  match best with
  | None -> assert false (* w <= 1 guarantees at least the right-flush candidate *)
  | Some (x, y) ->
    commit t x (Q.add x w) (Q.add y h);
    { Placement.x; y }
