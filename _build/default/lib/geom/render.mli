(** ASCII rendering of placements.

    Draws the strip as a character grid (x scaled to a fixed number of
    columns, y scaled to rows), each rectangle filled with a letter derived
    from its id. Used by the examples and the CLI to show packings in a
    terminal; deliberately lossy — validation never goes through rendering. *)

(** [render ?cols ?max_rows placement] is a multi-line string; the bottom of
    the strip is the last line. [cols] defaults to 64. [max_rows] (default
    40) caps vertical resolution. The empty placement renders as "". *)
val render : ?cols:int -> ?max_rows:int -> Placement.t -> string

(** [print placement] renders with defaults to stdout. *)
val print : Placement.t -> unit
