module Q = Spp_num.Rat

type t = { id : int; w : Q.t; h : Q.t }

let make ~id ~w ~h =
  if Q.sign w <= 0 || Q.compare w Q.one > 0 then
    invalid_arg (Printf.sprintf "Rect.make: width %s outside (0, 1]" (Q.to_string w));
  if Q.sign h <= 0 then
    invalid_arg (Printf.sprintf "Rect.make: height %s must be positive" (Q.to_string h));
  { id; w; h }

let make_f ~id ~w ~h =
  make ~id ~w:(Q.of_float_approx w ~max_den:1_000_000) ~h:(Q.of_float_approx h ~max_den:1_000_000)

let area r = Q.mul r.w r.h
let total_area rects = List.fold_left (fun acc r -> Q.add acc (area r)) Q.zero rects

let max_height rects = List.fold_left (fun acc r -> Q.max acc r.h) Q.zero rects

let cmp_desc proj a b =
  let c = Q.compare (proj b) (proj a) in
  if c <> 0 then c else compare a.id b.id

let sort_by_height_desc rects = List.sort (cmp_desc (fun r -> r.h)) rects
let sort_by_width_desc rects = List.sort (cmp_desc (fun r -> r.w)) rects

let equal a b = a.id = b.id && Q.equal a.w b.w && Q.equal a.h b.h

let pp fmt r = Format.fprintf fmt "#%d[%s x %s]" r.id (Q.to_string r.w) (Q.to_string r.h)
