lib/geom/skyline.mli: Placement Spp_num
