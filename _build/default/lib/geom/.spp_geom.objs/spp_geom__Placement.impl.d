lib/geom/placement.ml: Array Format Hashtbl List Printf Rect Spp_num
