lib/geom/rect.mli: Format Spp_num
