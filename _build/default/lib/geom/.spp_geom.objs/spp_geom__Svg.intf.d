lib/geom/svg.mli: Placement
