lib/geom/skyline.ml: List Placement Spp_num
