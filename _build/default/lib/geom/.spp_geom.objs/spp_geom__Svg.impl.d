lib/geom/svg.ml: Array Buffer Float List Placement Printf Rect Spp_num
