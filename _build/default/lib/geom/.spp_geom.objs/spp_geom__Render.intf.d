lib/geom/render.mli: Placement
