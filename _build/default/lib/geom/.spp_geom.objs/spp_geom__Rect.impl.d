lib/geom/rect.ml: Format List Printf Spp_num
