lib/geom/render.ml: Array Buffer Float List Placement Rect Spp_num String
