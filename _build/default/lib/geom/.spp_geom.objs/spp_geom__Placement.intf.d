lib/geom/placement.mli: Format Rect Spp_num
