(** SVG rendering of placements and schedules.

    Produces standalone SVG documents (no external assets) with one [rect]
    element per rectangle, a strip frame, and id labels — the publication-
    quality counterpart of {!Render}'s terminal output. Colours cycle
    through a fixed qualitative palette keyed by rect id, so the same task
    keeps its colour across figures. *)

(** [render ?width_px ?label placement] is an SVG document string. The
    strip (width 1) maps to [width_px] pixels (default 480); height scales
    uniformly. [label] (default true) draws each rect's id at its centre.
    The empty placement yields a valid empty-canvas document. *)
val render : ?width_px:int -> ?label:bool -> Placement.t -> string

(** [save ?width_px ?label path placement] writes the document to [path]. *)
val save : ?width_px:int -> ?label:bool -> string -> Placement.t -> unit
