module Q = Spp_num.Rat

let glyph id =
  let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789" in
  letters.[id mod String.length letters]

let render ?(cols = 64) ?(max_rows = 40) placement =
  let items = Placement.items placement in
  if items = [] then ""
  else begin
    let total_h = Q.to_float (Placement.height placement) in
    let rows = max 1 (min max_rows (int_of_float (ceil (total_h *. float_of_int max_rows /. max total_h 1.0)))) in
    let rows = if total_h <= float_of_int max_rows /. 4.0 then max rows (min max_rows (int_of_float (ceil (total_h *. 4.0)))) else rows in
    let grid = Array.make_matrix rows cols '.' in
    let xscale = float_of_int cols and yscale = float_of_int rows /. max total_h 1e-9 in
    List.iter
      (fun { Placement.rect; pos } ->
        let x0 = int_of_float (Float.round (Q.to_float pos.Placement.x *. xscale)) in
        let x1 = int_of_float (Float.round (Q.to_float (Q.add pos.Placement.x rect.Rect.w) *. xscale)) in
        let y0 = int_of_float (Float.round (Q.to_float pos.Placement.y *. yscale)) in
        let y1 = int_of_float (Float.round (Q.to_float (Q.add pos.Placement.y rect.Rect.h) *. yscale)) in
        let c = glyph rect.Rect.id in
        for y = max 0 y0 to min (rows - 1) (max y0 (y1 - 1)) do
          for x = max 0 x0 to min (cols - 1) (max x0 (x1 - 1)) do
            grid.(y).(x) <- c
          done
        done)
      items;
    let buf = Buffer.create (rows * (cols + 1)) in
    for y = rows - 1 downto 0 do
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.init cols (fun x -> grid.(y).(x)));
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf ("+" ^ String.make cols '-' ^ "+");
    Buffer.contents buf
  end

let print placement = print_endline (render placement)
