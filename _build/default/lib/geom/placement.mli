(** Placements: an assignment of a lower-left corner to every rectangle.

    A {e valid placement} (paper, Section 1) puts each rectangle [s] at
    [(x_s, y_s)] with [0 <= x_s <= 1 - w_s], [y_s >= 0], and no two
    rectangles overlapping (open interiors disjoint; shared edges allowed).
    The strip has width 1 throughout this repository, matching the paper's
    normalisation.

    Validation here is purely geometric; precedence and release-time
    validation live in {!Spp_core.Validate}, which layers the DAG and the
    release vector on top. *)

type pos = { x : Spp_num.Rat.t; y : Spp_num.Rat.t }

type item = { rect : Rect.t; pos : pos }

type t

(** [of_items items] builds a placement. Duplicate rect ids are rejected.
    @raise Invalid_argument on duplicate ids. *)
val of_items : item list -> t

val items : t -> item list
val size : t -> int

(** [find t ~id] is the item for rect [id], if placed. *)
val find : t -> id:int -> item option

(** [height t] is [max (y + h)] over all items — the packing height being
    minimised; [zero] for the empty placement. *)
val height : t -> Spp_num.Rat.t

(** [shift_y t dy] translates every rectangle up by [dy] (used when stacking
    sub-packings; [dy] may not make any y negative).
    @raise Invalid_argument if a rectangle would fall below the base. *)
val shift_y : t -> Spp_num.Rat.t -> t

(** [union a b] merges two placements with disjoint id sets.
    @raise Invalid_argument on id collision. *)
val union : t -> t -> t

(** [overlaps a pa b pb] decides open-interior intersection of two placed
    rectangles. *)
val overlaps : Rect.t -> pos -> Rect.t -> pos -> bool

type violation =
  | Out_of_strip of int  (** rect id sticks out of [0,1] horizontally or below 0 *)
  | Overlap of int * int  (** two rect ids with intersecting interiors *)

(** [check t] returns all geometric violations (empty = geometrically
    valid). Pairwise O(n²) reference oracle — deliberately simple so that it
    can be trusted as the independent certificate for every algorithm. *)
val check : t -> violation list

val is_valid : t -> bool

val pp_violation : Format.formatter -> violation -> unit
