module Q = Spp_num.Rat

(* Qualitative palette (ColorBrewer Set3-ish), cycled by rect id. *)
let palette =
  [| "#8dd3c7"; "#ffffb3"; "#bebada"; "#fb8072"; "#80b1d3"; "#fdb462";
     "#b3de69"; "#fccde5"; "#d9d9d9"; "#bc80bd"; "#ccebc5"; "#ffed6f" |]

let render ?(width_px = 480) ?(label = true) placement =
  let items = Placement.items placement in
  let total_h = Q.to_float (Placement.height placement) in
  let scale = float_of_int width_px in
  let height_px = Float.max 1.0 (total_h *. scale) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%.1f\" \
        viewBox=\"0 0 %d %.1f\">\n"
       width_px height_px width_px height_px);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%.1f\" fill=\"white\" \
        stroke=\"#333\" stroke-width=\"1\"/>\n"
       width_px height_px);
  List.iter
    (fun ({ Placement.rect; pos } : Placement.item) ->
      let x = Q.to_float pos.Placement.x *. scale in
      let w = Q.to_float rect.Rect.w *. scale in
      let h = Q.to_float rect.Rect.h *. scale in
      (* SVG's y axis points down; the strip's base is the bottom edge. *)
      let y = height_px -. ((Q.to_float pos.Placement.y *. scale) +. h) in
      let colour = palette.(rect.Rect.id mod Array.length palette) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" \
            stroke=\"#333\" stroke-width=\"0.8\"/>\n"
           x y w h colour);
      if label then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" text-anchor=\"middle\" \
              dominant-baseline=\"middle\" font-family=\"sans-serif\">%d</text>\n"
             (x +. (w /. 2.0))
             (y +. (h /. 2.0))
             (Float.min 14.0 (Float.max 6.0 (h /. 2.5)))
             rect.Rect.id))
    items;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?width_px ?label path placement =
  let oc = open_out path in
  output_string oc (render ?width_px ?label placement);
  close_out oc
