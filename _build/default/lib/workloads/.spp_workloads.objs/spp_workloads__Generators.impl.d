lib/workloads/generators.ml: Array Float List Spp_core Spp_dag Spp_geom Spp_num Spp_util
