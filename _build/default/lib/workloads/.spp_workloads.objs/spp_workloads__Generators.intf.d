lib/workloads/generators.mli: Spp_core Spp_dag Spp_geom Spp_util
