lib/workloads/adversarial.mli: Spp_core Spp_num
