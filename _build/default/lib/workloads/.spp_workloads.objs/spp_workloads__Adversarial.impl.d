lib/workloads/adversarial.ml: List Spp_core Spp_dag Spp_geom Spp_num
