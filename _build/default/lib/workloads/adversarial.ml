module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag
module Prec = Spp_core.Instance.Prec

let fig1 ~k ~eps_den =
  if k < 1 then invalid_arg "Adversarial.fig1: k must be >= 1";
  if eps_den < 2 then invalid_arg "Adversarial.fig1: eps_den must be >= 2";
  let eps = Q.of_ints 1 eps_den in
  let tall_w = Q.of_ints 1 k in
  let n_tall = (1 lsl k) - 1 in
  (* Ids: tall rects 0 .. n_tall-1 (chain-major), then wide slivers. *)
  let rects = ref [] and edges = ref [] in
  let next_id = ref 0 in
  let fresh () = let id = !next_id in incr next_id; id in
  let wide_used = ref 0 in
  for i = 1 to k do
    (* Chain i: 2^{i-1} tall rects of height 1/2^{i-1}, slivers between. *)
    let h = Q.of_ints 1 (1 lsl (i - 1)) in
    let count = 1 lsl (i - 1) in
    let prev = ref None in
    for _j = 1 to count do
      let tid = fresh () in
      rects := Rect.make ~id:tid ~w:tall_w ~h :: !rects;
      (match !prev with
       | None -> ()
       | Some pid ->
         (* Sandwich a full-width sliver between consecutive tall rects. *)
         let wid = fresh () in
         incr wide_used;
         rects := Rect.make ~id:wid ~w:Q.one ~h:eps :: !rects;
         edges := (pid, wid) :: (wid, tid) :: !edges);
      prev := Some tid
    done
  done;
  (* The unused slivers form their own chain (the construction allots
     n_tall slivers in total). *)
  let spare = n_tall - !wide_used in
  let prev = ref None in
  for _ = 1 to spare do
    let wid = fresh () in
    rects := Rect.make ~id:wid ~w:Q.one ~h:eps :: !rects;
    (match !prev with None -> () | Some pid -> edges := (pid, wid) :: !edges);
    prev := Some wid
  done;
  let rects = List.rev !rects in
  let dag = Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges:!edges in
  Prec.make rects dag

let fig2 ~k ~eps_den =
  if k < 1 then invalid_arg "Adversarial.fig2: k must be >= 1";
  if eps_den < 8 then invalid_arg "Adversarial.fig2: eps_den must be >= 8";
  let eps = Q.of_ints 1 eps_den in
  let narrow_w = eps in
  let wide_w = Q.add (Q.of_ints 1 2) eps in
  let rects = ref [] and edges = ref [] in
  (* Narrow chain: ids 0..k-1. *)
  for i = 0 to k - 1 do
    rects := Rect.make ~id:i ~w:narrow_w ~h:Q.one :: !rects;
    if i > 0 then edges := (i - 1, i) :: !edges
  done;
  (* 2k wide rects, each an in-neighbour of the first narrow rect. *)
  for j = 0 to (2 * k) - 1 do
    let id = k + j in
    rects := Rect.make ~id ~w:wide_w ~h:Q.one :: !rects;
    edges := (id, 0) :: !edges
  done;
  let rects = List.rev !rects in
  let dag = Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges:!edges in
  Prec.make rects dag

let fig1_bounds inst = (Spp_core.Lower_bounds.area inst, Spp_core.Lower_bounds.critical_path inst)
