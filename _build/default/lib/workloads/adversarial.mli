(** The paper's two lower-bound constructions, as generators.

    {!fig1} builds the Lemma 2.4 family (Figure 1): k chains where chain [i]
    alternates [2^{i-1}] tall rectangles (height [1/2^{i-1}], width [1/k])
    with full-width sliver rectangles of height ε. Both simple lower bounds
    stay ≈ 1 while any packing needs height ≈ k/2 = Ω(log n).

    {!fig2} builds the Lemma 2.7 family (Figure 2) for uniform heights:
    [n = 3k] rectangles of height 1 — [k] narrow ones (width ε) forming a
    chain, and [2k] wide ones (width 1/2 + ε) each preceding the first
    narrow one. OPT = n while [max F = n/3 + 1] and
    [AREA = n/3 + nε], so no algorithm judged only by those bounds can
    prove a ratio below 3. *)

(** [fig1 ~k ~eps_den] with [k >= 1]: returns the instance with
    [n = 2^{k+1} - 2] rectangles; sliver heights are [1/eps_den].
    @raise Invalid_argument if [k < 1] or [eps_den < 2]. *)
val fig1 : k:int -> eps_den:int -> Spp_core.Instance.Prec.t

(** [fig2 ~k ~eps_den] with [k >= 1]: returns the [n = 3k] uniform-height
    instance; ε = [1/eps_den].
    @raise Invalid_argument if [k < 1] or [eps_den < 8] (widths must stay
    <= 1 and 1/2 + ε < 1). *)
val fig2 : k:int -> eps_den:int -> Spp_core.Instance.Prec.t

(** [fig1_bounds inst] = [(AREA, F)] for convenience in the E1 harness. *)
val fig1_bounds : Spp_core.Instance.Prec.t -> Spp_num.Rat.t * Spp_num.Rat.t
