module Rat = Spp_num.Rat

type op = Le | Ge | Eq
type var = int

type constr = { cname : string; terms : (var * Rat.t) list; cop : op; rhs : Rat.t }

type t = {
  mutable names : string list; (* reversed *)
  mutable nvars : int;
  mutable objective : (var * Rat.t) list;
  mutable constrs : constr list; (* reversed *)
}

let create () = { names = []; nvars = 0; objective = []; constrs = [] }

let add_var t ~name =
  let v = t.nvars in
  t.names <- name :: t.names;
  t.nvars <- v + 1;
  v

let num_vars t = t.nvars

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model.var_name: no such variable";
  List.nth t.names (t.nvars - 1 - v)

let check_terms t terms =
  List.iter
    (fun (v, _) -> if v < 0 || v >= t.nvars then invalid_arg "Model: undeclared variable in terms")
    terms

let set_objective t terms =
  check_terms t terms;
  t.objective <- terms

let objective t = t.objective

let add_constraint t ~name terms op rhs =
  check_terms t terms;
  t.constrs <- { cname = name; terms; cop = op; rhs } :: t.constrs

let num_constraints t = List.length t.constrs

let constraints t = List.rev_map (fun c -> (c.cname, c.terms, c.cop, c.rhs)) t.constrs

let eval_terms terms solution =
  List.fold_left (fun acc (v, c) -> Rat.add acc (Rat.mul c solution.(v))) Rat.zero terms

let is_feasible t solution =
  Array.length solution = t.nvars
  && Array.for_all (fun x -> Rat.sign x >= 0) solution
  && List.for_all
       (fun c ->
         let lhs = eval_terms c.terms solution in
         match c.cop with
         | Le -> Rat.compare lhs c.rhs <= 0
         | Ge -> Rat.compare lhs c.rhs >= 0
         | Eq -> Rat.equal lhs c.rhs)
       t.constrs

let pp_op fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp_terms t fmt terms =
  let first = ref true in
  List.iter
    (fun (v, c) ->
      if not !first then Format.fprintf fmt " + ";
      first := false;
      Format.fprintf fmt "%s*%s" (Rat.to_string c) (var_name t v))
    terms;
  if !first then Format.pp_print_string fmt "0"

let pp fmt t =
  Format.fprintf fmt "minimize %a@." (pp_terms t) t.objective;
  List.iter
    (fun c ->
      Format.fprintf fmt "  [%s] %a %a %s@." c.cname (pp_terms t) c.terms pp_op c.cop
        (Rat.to_string c.rhs))
    (List.rev t.constrs)
