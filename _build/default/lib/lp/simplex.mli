(** Two-phase primal simplex over an abstract scalar field.

    Dense-tableau implementation. Pricing uses Dantzig's rule (fast in
    practice) with a permanent-until-progress fallback to Bland's rule after
    a run of degenerate pivots, so termination is guaranteed for the exact
    field. Solving a model returns a {e basic} optimal solution — the
    property the paper's Lemma 3.3 relies on to bound the number of
    configuration occurrences by the number of constraints, which in turn
    drives the additive loss of Lemma 3.4.

    Not polynomial time in the worst case (the paper cites ellipsoid /
    Karmarkar for that); DESIGN.md documents this substitution — instance
    sizes here make simplex the pragmatic exact choice. *)

type 'a result =
  | Optimal of { objective : 'a; solution : 'a array; duals : 'a array }
      (** [solution] has one entry per model variable; at most
          [num_constraints] entries are nonzero (basicness). [duals] has one
          entry per constraint (in insertion order): the marginal change of
          the optimal objective per unit increase of that constraint's
          right-hand side (0 for constraints dropped as redundant). Used by
          the column-generation pricing in {!Spp_core.Config_colgen}. *)
  | Infeasible
  | Unbounded

module Make (F : Field.S) : sig
  (** [solve model] minimises the model objective over its feasible region.
      All model variables are implicitly non-negative. *)
  val solve : Model.t -> F.t result

  (** [solve_max_iters model ~max_iters] bounds pivot count (safety valve for
      the float instance, which tolerance-compare could in principle cycle).
      @raise Failure if the bound is hit. *)
  val solve_max_iters : Model.t -> max_iters:int -> F.t result
end

(** Exact solver over rationals. *)
module Exact : sig
  val solve : Model.t -> Spp_num.Rat.t result
end

(** Floating-point solver (tolerance-based pivoting). *)
module Approx : sig
  val solve : Model.t -> float result
end
