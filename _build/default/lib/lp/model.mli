(** Declarative linear-program models.

    A model is a set of non-negative variables, a linear objective to
    {e minimise}, and linear constraints. Coefficients are exact rationals;
    each solver instance converts them into its own field. The APTAS of
    Section 3 builds its configuration LP (objective (3.2), packing
    constraints (3.3), covering constraints (3.4)) through this interface. *)

type op = Le | Ge | Eq

(** A variable handle; also its column index, 0-based in creation order. *)
type var = int

type t

(** [create ()] is an empty model. *)
val create : unit -> t

(** [add_var t ~name] declares a fresh non-negative variable. *)
val add_var : t -> name:string -> var

(** [num_vars t] is the number of declared variables. *)
val num_vars : t -> int

val var_name : t -> var -> string

(** [set_objective t terms] sets the minimisation objective [Σ c_i x_i].
    Variables absent from [terms] have coefficient zero. *)
val set_objective : t -> (var * Spp_num.Rat.t) list -> unit

val objective : t -> (var * Spp_num.Rat.t) list

(** [add_constraint t ~name terms op rhs] appends [Σ terms (op) rhs].
    @raise Invalid_argument on an undeclared variable. *)
val add_constraint : t -> name:string -> (var * Spp_num.Rat.t) list -> op -> Spp_num.Rat.t -> unit

val num_constraints : t -> int

(** Constraints in insertion order: [(name, terms, op, rhs)]. *)
val constraints : t -> (string * (var * Spp_num.Rat.t) list * op * Spp_num.Rat.t) list

(** [eval_constraint terms solution] is [Σ c_i x_i] under [solution]. *)
val eval_terms : (var * Spp_num.Rat.t) list -> Spp_num.Rat.t array -> Spp_num.Rat.t

(** [is_feasible t solution] checks every constraint and non-negativity
    exactly; the independent certificate used by tests. *)
val is_feasible : t -> Spp_num.Rat.t array -> bool

(** Human-readable rendering (for debugging and the CLI). *)
val pp : Format.formatter -> t -> unit
