(** Scalar fields over which the simplex solver is functorised.

    The solver in {!Simplex} is written once against {!S} and instantiated
    twice: {!Rat} gives the exact solver the paper's Lemma 3.3 needs (a basic
    optimal solution with certified optimality), and {!Float} gives a fast
    approximate solver used for cross-checking and timing comparisons. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  (** @raise Division_by_zero on zero divisor. *)
  val div : t -> t -> t

  val neg : t -> t

  (** Total order; for inexact instances this is a tolerance compare, so
      [compare x zero = 0] means "treat as zero when pivoting". *)
  val compare : t -> t -> int

  val is_zero : t -> bool
  val of_int : int -> t
  val of_rat : Spp_num.Rat.t -> t
  val to_float : t -> float
  val to_string : t -> string
end

(** Exact rationals: the reference instance. *)
module Rat : S with type t = Spp_num.Rat.t = struct
  include Spp_num.Rat

  let of_rat r = r
end

(** IEEE doubles with an absolute pivot tolerance. Fine for well-scaled
    small LPs; never used where exactness matters. *)
module Float : S with type t = float = struct
  type t = float

  let eps = 1e-9
  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )

  let div a b = if b = 0.0 then raise Division_by_zero else a /. b

  let neg = Stdlib.( ~-. )
  let compare a b = if Float.abs (a -. b) <= eps then 0 else Float.compare a b
  let is_zero a = Float.abs a <= eps
  let of_int = float_of_int
  let of_rat = Spp_num.Rat.to_float
  let to_float x = x
  let to_string = string_of_float
end
