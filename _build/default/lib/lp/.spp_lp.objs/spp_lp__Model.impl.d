lib/lp/model.ml: Array Format List Spp_num
