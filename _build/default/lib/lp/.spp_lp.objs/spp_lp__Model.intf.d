lib/lp/model.mli: Format Spp_num
