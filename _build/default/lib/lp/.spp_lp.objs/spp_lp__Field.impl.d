lib/lp/field.ml: Float Spp_num Stdlib
