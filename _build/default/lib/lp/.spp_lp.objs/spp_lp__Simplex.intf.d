lib/lp/simplex.mli: Field Model Spp_num
