lib/lp/simplex.ml: Array Field Hashtbl List Model Spp_num
