lib/exact/prec_binpack.mli: Spp_core Spp_dag Spp_num
