lib/exact/prec_binpack.ml: Array Fun Hashtbl List Spp_core Spp_dag Spp_geom Spp_num
