lib/exact/order_search.ml: Hashtbl List Spp_core Spp_dag Spp_geom Spp_num
