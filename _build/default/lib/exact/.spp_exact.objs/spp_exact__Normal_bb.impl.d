lib/exact/normal_bb.ml: Array Hashtbl List Order_search Spp_core Spp_dag Spp_geom Spp_num
