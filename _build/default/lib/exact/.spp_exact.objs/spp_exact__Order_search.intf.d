lib/exact/order_search.mli: Spp_core Spp_geom Spp_num
