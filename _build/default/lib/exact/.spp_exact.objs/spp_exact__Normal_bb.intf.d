lib/exact/normal_bb.mli: Spp_core Spp_geom Spp_num
