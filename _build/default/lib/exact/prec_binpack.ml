module Q = Spp_num.Rat
module Dag = Spp_dag.Dag

type item = { id : int; size : Q.t }

let min_bins items dag =
  let n = List.length items in
  if n > 20 then invalid_arg "Prec_binpack.min_bins: instance too large (n > 20)";
  let items = Array.of_list items in
  Array.iter
    (fun it ->
      if Q.sign it.size <= 0 || Q.compare it.size Q.one > 0 then
        invalid_arg "Prec_binpack.min_bins: size outside (0,1]")
    items;
  let ids = Array.map (fun it -> it.id) items in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i id ->
      if Hashtbl.mem index_of id then invalid_arg "Prec_binpack.min_bins: duplicate ids";
      Hashtbl.replace index_of id i) ids;
  if List.sort compare (Array.to_list ids) <> Dag.nodes dag then
    invalid_arg "Prec_binpack.min_bins: DAG nodes differ from item ids";
  if n = 0 then 0
  else begin
    (* pred_mask.(i): bitmask of direct predecessors of item i. *)
    let pred_mask =
      Array.init n (fun i ->
          List.fold_left (fun acc p -> acc lor (1 lsl Hashtbl.find index_of p)) 0
            (Dag.preds dag ids.(i)))
    in
    let full = (1 lsl n) - 1 in
    let dp = Array.make (full + 1) max_int in
    dp.(0) <- 0;
    (* Numeric order is compatible with subset inclusion, so dp.(mask) is
       final when visited. *)
    for mask = 0 to full - 1 do
      if dp.(mask) < max_int then begin
        let avail =
          List.filter
            (fun i -> mask land (1 lsl i) = 0 && pred_mask.(i) land mask = pred_mask.(i))
            (List.init n Fun.id)
        in
        (* DFS over subsets of [avail] that fit in one bin. *)
        let cost = dp.(mask) + 1 in
        let rec fill chosen_mask room = function
          | [] ->
            if chosen_mask <> 0 then begin
              let next = mask lor chosen_mask in
              if cost < dp.(next) then dp.(next) <- cost
            end
          | i :: rest ->
            fill chosen_mask room rest;
            let room' = Q.sub room items.(i).size in
            if Q.sign room' >= 0 then fill (chosen_mask lor (1 lsl i)) room' rest
        in
        fill 0 Q.one avail
      end
    done;
    dp.(full)
  end

let min_height (inst : Spp_core.Instance.Prec.t) =
  match Spp_core.Uniform.uniform_height inst with
  | None ->
    if inst.rects = [] then Q.zero
    else invalid_arg "Prec_binpack.min_height: heights are not uniform"
  | Some c ->
    let items =
      List.map (fun (r : Spp_geom.Rect.t) -> { id = r.Spp_geom.Rect.id; size = r.Spp_geom.Rect.w }) inst.rects
    in
    Q.mul_int c (min_bins items inst.dag)
