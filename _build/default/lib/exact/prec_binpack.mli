(** Exact precedence-constrained bin packing by dynamic programming.

    The problem from Section 2.2 (Garey–Graham–Johnson–Yao): items of size
    in (0,1] with a partial order; [a ≺ b] forces [a]'s bin strictly before
    [b]'s; minimise bins. Because shelf solutions are lossless for
    uniform-height strip packing, this DP yields the {e true optimum} of
    uniform-height precedence strip packing on small instances — the ground
    truth for measuring approximation ratios of algorithm [F] (E4).

    DP over downward-closed id subsets (bitmask): from a closed set [S],
    one new bin receives any non-empty fitting subset of the currently
    available items. Exponential state space; guarded to [n <= 20]. *)

type item = { id : int; size : Spp_num.Rat.t }

(** [min_bins items dag] is the optimal bin count.
    @raise Invalid_argument when [n > 20], on duplicate ids, on a size
    outside (0,1], or when DAG nodes differ from item ids. *)
val min_bins : item list -> Spp_dag.Dag.t -> int

(** [min_height inst] is the exact optimal strip-packing height of a
    uniform-height precedence instance: [min_bins] over the width items
    times the common height (via the shelf-normalisation equivalence).
    @raise Invalid_argument if heights are not uniform or [n > 20]. *)
val min_height : Spp_core.Instance.Prec.t -> Spp_num.Rat.t
