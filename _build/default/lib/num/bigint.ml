(* Arbitrary-precision integers on base-2^15 limbs.

   Representation invariants:
   - [mag] is little-endian, has no trailing (most-significant) zero limb;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1.
   The normalised representation makes structural equality numeric. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let is_zero v = v.sign = 0
let sign v = v.sign
let limb_count v = Array.length v.mag

(* ------------------------------------------------------------------ *)
(* Magnitude primitives (arrays of limbs, little-endian, non-negative) *)

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Precondition: a >= b (as magnitudes). *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        (* Propagate the final carry; it can ripple past i+lb. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    r
  end

(* Karatsuba above this limb count; below it the schoolbook constant wins. *)
let karatsuba_threshold = 32

(* Trim trailing zero limbs (most significant side). *)
let mag_trim m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

(* r += x shifted left by [shift] limbs (in place; r is large enough). *)
let mag_add_into r x shift =
  let carry = ref 0 in
  let lx = Array.length x in
  let i = ref 0 in
  while !i < lx || !carry <> 0 do
    let idx = shift + !i in
    let t = r.(idx) + (if !i < lx then x.(!i) else 0) + !carry in
    r.(idx) <- t land mask;
    carry := t lsr base_bits;
    incr i
  done

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if min la lb < karatsuba_threshold then mag_mul_school a b
  else begin
    (* Karatsuba: split at m, a = a1·B^m + a0, b = b1·B^m + b0;
       a·b = z2·B^2m + (z1 − z0 − z2)·B^m + z0 with
       z0 = a0·b0, z2 = a1·b1, z1 = (a0+a1)(b0+b1). *)
    let m = (max la lb + 1) / 2 in
    let lo x = if Array.length x <= m then x else Array.sub x 0 m in
    let hi x = if Array.length x <= m then [||] else Array.sub x m (Array.length x - m) in
    let a0 = mag_trim (lo a) and a1 = mag_trim (hi a) in
    let b0 = mag_trim (lo b) and b1 = mag_trim (hi b) in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 = mag_mul (mag_trim (mag_add a0 a1)) (mag_trim (mag_add b0 b1)) in
    (* middle = z1 - z0 - z2 (non-negative by construction). *)
    let middle = mag_trim (mag_sub (mag_trim (mag_sub (mag_trim z1) (mag_trim z0))) (mag_trim z2)) in
    let r = Array.make (la + lb + 1) 0 in
    mag_add_into r (mag_trim z0) 0;
    mag_add_into r middle m;
    mag_add_into r (mag_trim z2) (2 * m);
    r
  end

(* Multiply a magnitude by a single limb value d, 0 <= d < base. *)
let mag_mul_limb a d =
  let la = Array.length a in
  if la = 0 || d = 0 then [||]
  else begin
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * d) + !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Short division of a magnitude by a limb 0 < d < base: (quotient, rem). *)
let mag_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth Algorithm D long division of magnitudes. Precondition:
   Array.length v >= 2 and mag_compare u v >= 0. Returns (q, r). *)
let mag_divmod_long u v =
  let nv = Array.length v in
  let nu = Array.length u in
  (* Normalisation: scale so the divisor's top limb is >= base/2. *)
  let d = base / (v.(nv - 1) + 1) in
  let un0 = mag_mul_limb u d in
  (* Ensure un has exactly nu+1 limbs (mag_mul_limb already appends one). *)
  let un = Array.make (nu + 1) 0 in
  Array.blit un0 0 un 0 (min (Array.length un0) (nu + 1));
  let vn0 = mag_mul_limb v d in
  let vn = Array.sub vn0 0 nv in
  (* The scaled divisor fits in nv limbs because d*v < base^nv. *)
  assert (Array.length vn0 <= nv || vn0.(nv) = 0);
  let q = Array.make (nu - nv + 1) 0 in
  for j = nu - nv downto 0 do
    let top = (un.(j + nv) lsl base_bits) lor un.(j + nv - 1) in
    let qhat = ref (top / vn.(nv - 1)) in
    let rhat = ref (top mod vn.(nv - 1)) in
    let continue = ref true in
    while !continue do
      if
        !qhat >= base
        || (nv >= 2 && !qhat * vn.(nv - 2) > ((!rhat lsl base_bits) lor un.(j + nv - 2)))
      then begin
        decr qhat;
        rhat := !rhat + vn.(nv - 1);
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* Multiply-subtract qhat * vn from un[j .. j+nv]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to nv - 1 do
      let p = !qhat * vn.(i) + !carry in
      carry := p lsr base_bits;
      let d0 = un.(i + j) - (p land mask) - !borrow in
      if d0 < 0 then begin
        un.(i + j) <- d0 + base;
        borrow := 1
      end else begin
        un.(i + j) <- d0;
        borrow := 0
      end
    done;
    let d0 = un.(j + nv) - !carry - !borrow in
    if d0 < 0 then begin
      un.(j + nv) <- d0 + base;
      (* qhat was one too large: add the divisor back. *)
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to nv - 1 do
        let s = un.(i + j) + vn.(i) + !carry2 in
        un.(i + j) <- s land mask;
        carry2 := s lsr base_bits
      done;
      un.(j + nv) <- (un.(j + nv) + !carry2) land mask
    end
    else un.(j + nv) <- d0;
    q.(j) <- !qhat
  done;
  (* Remainder = un[0..nv-1] / d. *)
  let rm = Array.sub un 0 nv in
  let r, r0 = mag_divmod_limb rm d in
  assert (r0 = 0);
  (q, r)

(* ------------------------------------------------------------------ *)
(* Signed operations *)

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0

let neg v = if v.sign = 0 then v else { v with sign = -v.sign }
let abs v = if v.sign < 0 then neg v else v

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (mag_add a.mag b.mag)
  else begin
    match mag_compare a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (mag_sub a.mag b.mag)
    | _ -> normalize b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else if mag_compare a.mag b.mag < 0 then (zero, a)
  else begin
    let qm, rm =
      if Array.length b.mag = 1 then begin
        let q, r = mag_divmod_limb a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else mag_divmod_long a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

(* ------------------------------------------------------------------ *)
(* Conversions *)

let of_int n =
  if n = 0 then zero
  else begin
    (* Avoid [abs min_int] overflow by accumulating on the negative side. *)
    let s = if n < 0 then -1 else 1 in
    let m = if n < 0 then n else -n in
    let rec limbs m acc = if m = 0 then acc else limbs (m / base) ((-(m mod base)) :: acc) in
    let ds = List.rev (limbs m []) in
    normalize s (Array.of_list ds)
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let to_int_opt v =
  (* Accumulate and detect overflow by inverting each step. *)
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let shifted = acc * base in
      if shifted / base <> acc then None
      else begin
        let next = shifted + (v.sign * v.mag.(i)) in
        if v.sign > 0 && next < shifted then None
        else if v.sign < 0 && next > shifted then None
        else go (i - 1) next
      end
    end
  in
  go (Array.length v.mag - 1) 0

let to_int_exn v =
  match to_int_opt v with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value does not fit in a native int"

let to_float v =
  let acc = ref 0.0 in
  for i = Array.length v.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int v.mag.(i)
  done;
  if v.sign < 0 then -. !acc else !acc

let mul_int v n = mul v (of_int n)

let compare_int v n = compare v (of_int n)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let chunk = 10_000 (* decimal I/O processes 4 digits at a time *)

let to_string v =
  if v.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = mag_divmod_limb m chunk in
        let q = (normalize 1 q).mag in
        go q (r :: acc)
      end
    in
    match go v.mag [] with
    | [] -> assert false
    | first :: rest ->
      if v.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < len do
    let upto = min len (!i + 4) in
    (* Align the first chunk so all later chunks are exactly 4 digits. *)
    let upto = if !i = start then start + (((len - start - 1) mod 4) + 1) else upto in
    let piece = String.sub s !i (upto - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") piece;
    let v = int_of_string piece in
    let factor = match upto - !i with 1 -> 10 | 2 -> 100 | 3 -> 1000 | _ -> chunk in
    acc := add (mul !acc (of_int factor)) (of_int v);
    i := upto
  done;
  if neg_sign then neg !acc else !acc

let pp fmt v = Format.pp_print_string fmt (to_string v)

let hash v = Hashtbl.hash (v.sign, v.mag)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
