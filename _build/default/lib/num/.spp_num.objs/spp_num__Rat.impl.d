lib/num/rat.ml: Bigint Float Format Hashtbl Stdlib String
