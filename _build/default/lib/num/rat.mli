(** Exact rational arithmetic over {!Bigint}.

    Values are kept normalised (positive denominator, numerator and
    denominator coprime, canonical zero), so structural equality is numeric
    equality. This is the scalar field of the exact simplex in {!Spp_lp} and
    of the APTAS bookkeeping in {!Spp_core}: the paper's Lemma 3.3 needs a
    {e basic} optimal LP solution, which floating point cannot certify. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints num den] is [num/den] from native ints. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

(** [num v] and [den v] expose the normalised parts; [den v] is positive. *)
val num : t -> Bigint.t

val den : t -> Bigint.t

(** [of_float_approx f ~max_den] is a rational approximation of [f] with
    denominator at most [max_den], via continued fractions. Exact when [f]
    is representable within the bound. *)
val of_float_approx : float -> max_den:int -> t

val to_float : t -> float

(** [of_string s] parses ["a"], ["-a/b"], or a decimal like ["3.25"]. *)
val of_string : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

val inv : t -> t
val min : t -> t -> t
val max : t -> t -> t

(** [floor v] is the largest integer [<= v], as a {!Bigint.t}. *)
val floor : t -> Bigint.t

(** [ceil v] is the smallest integer [>= v]. *)
val ceil : t -> Bigint.t

(** [mul_int v n] scales by a native int. *)
val mul_int : t -> int -> t

(** [pow v e] is [v]{^ [e]} for any integer [e] (negative exponents invert).
    @raise Division_by_zero on [pow zero e] with [e < 0]. *)
val pow : t -> int -> t

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
