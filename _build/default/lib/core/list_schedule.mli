(** Greedy list-scheduling baselines (no worst-case guarantee).

    Both variants place rectangles one at a time at the lowest-then-leftmost
    skyline position subject to a per-rectangle floor on y: predecessor
    tops for the precedence variant, release time for the release variant.
    These are the natural "what a practitioner would try first" baselines
    the guaranteed algorithms are compared against in the benches. *)

(** [prec inst] processes rectangles in topological order; each must start
    at or above every predecessor's top edge. Always valid. *)
val prec : Instance.Prec.t -> Spp_geom.Placement.t

(** [release inst] processes rectangles by non-decreasing release time
    (ties: taller first); each must start at or above its release. *)
val release : Instance.Release.t -> Spp_geom.Placement.t
