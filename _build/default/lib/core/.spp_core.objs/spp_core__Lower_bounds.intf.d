lib/core/lower_bounds.mli: Instance Spp_num
