lib/core/dc.mli: Instance Spp_geom Spp_num
