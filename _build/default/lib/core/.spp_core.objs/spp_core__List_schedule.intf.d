lib/core/list_schedule.mli: Instance Spp_geom
