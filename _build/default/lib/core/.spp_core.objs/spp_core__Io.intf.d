lib/core/io.mli: Instance Spp_geom
