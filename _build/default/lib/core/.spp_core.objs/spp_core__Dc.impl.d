lib/core/dc.ml: Float Hashtbl Instance List Lower_bounds Spp_dag Spp_geom Spp_num Spp_pack
