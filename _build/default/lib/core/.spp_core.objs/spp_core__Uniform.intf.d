lib/core/uniform.mli: Instance Spp_geom Spp_num
