lib/core/release_shelf.ml: Instance List Spp_geom Spp_num
