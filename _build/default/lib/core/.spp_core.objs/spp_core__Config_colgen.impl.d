lib/core/config_colgen.ml: Array Config_lp Grouping Hashtbl Instance List Printf Spp_geom Spp_lp Spp_num Spp_pack
