lib/core/validate.ml: Format Hashtbl Instance List Spp_dag Spp_geom Spp_num
