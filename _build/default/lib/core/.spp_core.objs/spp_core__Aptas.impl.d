lib/core/aptas.ml: Array Config_colgen Config_lp Grouping Hashtbl Instance List Lower_bounds Spp_geom Spp_num Spp_pack Spp_util
