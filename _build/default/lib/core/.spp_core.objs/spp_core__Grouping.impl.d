lib/core/grouping.ml: Hashtbl Instance List Option Spp_geom Spp_num
