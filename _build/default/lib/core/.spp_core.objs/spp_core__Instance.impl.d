lib/core/instance.ml: Hashtbl List Printf Spp_dag Spp_geom Spp_num
