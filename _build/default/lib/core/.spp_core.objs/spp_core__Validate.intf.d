lib/core/validate.mli: Format Instance Spp_geom
