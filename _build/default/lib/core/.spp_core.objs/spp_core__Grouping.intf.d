lib/core/grouping.mli: Instance Spp_geom Spp_num
