lib/core/config_lp.mli: Instance Spp_num
