lib/core/config_colgen.mli: Config_lp Instance
