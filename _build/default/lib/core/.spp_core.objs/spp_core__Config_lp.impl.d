lib/core/config_lp.ml: Array Grouping Instance List Printf Spp_geom Spp_lp Spp_num
