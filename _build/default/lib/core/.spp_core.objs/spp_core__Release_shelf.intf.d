lib/core/release_shelf.mli: Instance Spp_geom
