lib/core/aptas.mli: Instance Spp_geom Spp_num
