lib/core/instance.mli: Spp_dag Spp_geom Spp_num
