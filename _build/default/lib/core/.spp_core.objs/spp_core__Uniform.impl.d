lib/core/uniform.ml: Array Hashtbl Instance List Option Queue Spp_dag Spp_geom Spp_num Spp_pack
