lib/core/lower_bounds.ml: Instance List Spp_dag Spp_geom Spp_num
