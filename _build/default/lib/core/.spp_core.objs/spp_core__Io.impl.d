lib/core/io.ml: Buffer Hashtbl Instance List Option Printf Spp_dag Spp_geom Spp_num String
