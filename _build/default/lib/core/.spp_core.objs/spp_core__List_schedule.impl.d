lib/core/list_schedule.ml: Hashtbl Instance List Spp_dag Spp_geom Spp_num
