(** Algorithm 1 of the paper: divide-and-conquer strip packing under
    precedence constraints, with approximation factor [2 + log2(n+1)]
    (Theorem 2.3).

    The instance is split by the critical-path function F recomputed on the
    induced sub-DAG: rectangles entirely below the half-line [F(S)/2] go to
    [S_bot], those starting strictly above it to [S_top], and the band
    crossing it ([S_mid], never empty by Lemma 2.2 and pairwise independent
    by Lemma 2.1) is packed with the unconstrained subroutine [A]. The
    recursion stacks [DC(S_bot)], [A(S_mid)], [DC(S_top)].

    The default subroutine is NFDH, which satisfies the bound
    [A(S') <= 2·AREA(S') + max h] required by the analysis. *)

type stats = {
  levels : int;  (** recursion depth reached *)
  mid_calls : int;  (** number of [A]-packed bands *)
}

(** [split inst] computes one level of the DC partition (Algorithm 1 lines
    2–6) on the whole instance: [(s_bot, s_mid, s_top)] as id lists. Exposed
    so tests can check Lemma 2.2 ([s_mid] is never empty on a non-empty
    instance) and Lemma 2.1 ([s_mid] is pairwise independent) directly. *)
val split : Instance.Prec.t -> int list * int list * int list

(** [pack ?subroutine inst] returns the placement and statistics.
    [subroutine] defaults to {!Spp_pack.Level.nfdh}; any replacement must
    pack base-aligned at y = 0. *)
val pack :
  ?subroutine:(Spp_geom.Rect.t list -> Spp_geom.Placement.t) ->
  Instance.Prec.t ->
  Spp_geom.Placement.t * stats

(** [height ?subroutine inst] is the height of [pack inst]. *)
val height :
  ?subroutine:(Spp_geom.Rect.t list -> Spp_geom.Placement.t) ->
  Instance.Prec.t ->
  Spp_num.Rat.t

(** [theorem_2_3_bound inst] is the proved bound
    [log2(n+1)·F(S) + 2·AREA(S)] that [pack]'s height never exceeds
    (the statement actually proved by induction in Theorem 2.3; the headline
    [(2 + log(n+1))·OPT] follows from the two lower bounds). Uses real
    [log2], returned as a float together with the exact height for
    comparison convenience. *)
val theorem_2_3_bound : Instance.Prec.t -> float
