module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Release = Instance.Release

let round_releases ~epsilon_r (inst : Release.t) =
  if Q.sign epsilon_r <= 0 then invalid_arg "Grouping.round_releases: epsilon_r must be positive";
  let rmax = Release.max_release inst in
  if Q.is_zero rmax then inst
  else begin
    let delta = Q.mul epsilon_r rmax in
    let tasks =
      List.map
        (fun (task : Release.task) ->
          (* P↑ of the proof: floor to the grid, then shift up one step. *)
          let steps = Q.floor (Q.div task.release delta) in
          let release = Q.mul delta (Q.add (Q.of_bigint steps) Q.one) in
          { task with Release.release })
        inst.tasks
    in
    Release.make ~k:inst.k tasks
  end

let distinct_releases (inst : Release.t) =
  List.sort_uniq Q.compare (List.map (fun (t : Release.task) -> t.Release.release) inst.tasks)

let stack_height rects = List.fold_left (fun acc (r : Rect.t) -> Q.add acc r.Rect.h) Q.zero rects

(* Group one release class: return (rect id -> new width) bindings. *)
let group_class ~groups_per_class (rects : Rect.t list) =
  let stack = Rect.sort_by_width_desc rects in
  let h_total = stack_height stack in
  let g = groups_per_class in
  (* Cut values v_ℓ = ℓ·H/g for 0 <= ℓ < g. A rect with stack interval
     [c, c+h) is a threshold iff some v_ℓ lands in [c, c+h). Walking bottom
     to top, each threshold starts a new group whose width is the
     threshold's width (the maximum of the group, since the stack is sorted
     widest-first). *)
  let cuts = List.init g (fun l -> Q.div (Q.mul_int h_total l) (Q.of_int g)) in
  let rec walk c cuts current_width acc = function
    | [] -> acc
    | (r : Rect.t) :: rest ->
      let top = Q.add c r.Rect.h in
      (* Consume every cut value in [c, top). *)
      let rec consume cuts hit =
        match cuts with
        | v :: more when Q.compare v top < 0 ->
          (* v >= c is guaranteed: cuts are consumed in order. *)
          consume more true
        | _ -> (cuts, hit)
      in
      let cuts, is_threshold = consume cuts false in
      let width = if is_threshold then r.Rect.w else current_width in
      walk top cuts width ((r.Rect.id, width) :: acc) rest
  in
  (* The bottom rect is always a threshold (cut v_0 = 0), so current_width
     is initialised lazily by the first step. *)
  match stack with
  | [] -> []
  | first :: _ -> walk Q.zero cuts first.Rect.w [] stack

let group_widths ~groups_per_class (inst : Release.t) =
  if groups_per_class < 1 then invalid_arg "Grouping.group_widths: groups_per_class < 1";
  let classes = Hashtbl.create 8 in
  List.iter
    (fun (task : Release.task) ->
      let key = Q.to_string task.Release.release in
      let cur = Option.value ~default:[] (Hashtbl.find_opt classes key) in
      Hashtbl.replace classes key (task :: cur))
    inst.tasks;
  let new_width = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ tasks ->
      let rects = List.map (fun (t : Release.task) -> t.Release.rect) tasks in
      List.iter (fun (id, w) -> Hashtbl.replace new_width id w) (group_class ~groups_per_class rects))
    classes;
  let tasks =
    List.map
      (fun (task : Release.task) ->
        let r = task.Release.rect in
        let w = Hashtbl.find new_width r.Rect.id in
        { task with Release.rect = Rect.make ~id:r.Rect.id ~w ~h:r.Rect.h })
      inst.tasks
  in
  Release.make ~k:inst.k tasks

let distinct_widths (inst : Release.t) =
  List.sort_uniq
    (fun a b -> Q.compare b a)
    (List.map (fun (t : Release.task) -> t.Release.rect.Rect.w) inst.tasks)
