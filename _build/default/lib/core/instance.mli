(** Problem instances for the two variants studied in the paper.

    {!Prec} is Section 2's input: rectangles plus a precedence DAG on their
    ids. {!Release} is Section 3's input: rectangles plus a release time per
    id, with the paper's standing assumptions (heights at most 1, widths in
    [1/K, 1]) checked at construction of a {!Release.checked} value. *)

module Prec : sig
  type t = private {
    rects : Spp_geom.Rect.t list;
    dag : Spp_dag.Dag.t;
  }

  (** [make rects dag] checks that DAG nodes are exactly the rect ids.
      @raise Invalid_argument on mismatch. *)
  val make : Spp_geom.Rect.t list -> Spp_dag.Dag.t -> t

  (** [unconstrained rects] wraps rects with the empty edge set. *)
  val unconstrained : Spp_geom.Rect.t list -> t

  val size : t -> int

  (** [rect t id] looks a rectangle up by id.
      @raise Not_found on unknown id. *)
  val rect : t -> int -> Spp_geom.Rect.t

  (** [height_of t id] is [h_s] for the rect with this id. *)
  val height_of : t -> int -> Spp_num.Rat.t

  (** [induced t keep] restricts the instance to the ids satisfying [keep]
      (rects filtered, DAG induced) — the recursion step of Algorithm 1. *)
  val induced : t -> (int -> bool) -> t
end

module Release : sig
  type task = { rect : Spp_geom.Rect.t; release : Spp_num.Rat.t }

  type t = private {
    tasks : task list;
    k : int;  (** number of FPGA columns; widths are in [1/k, 1] *)
  }

  (** [make ~k tasks] validates the Section-3 assumptions: every height in
      (0, 1], every width in [1/k, 1], every release >= 0, distinct ids.
      @raise Invalid_argument on any violation. *)
  val make : k:int -> task list -> t

  val size : t -> int
  val rects : t -> Spp_geom.Rect.t list

  (** [release t id] is the release time of the task with rect id [id].
      @raise Not_found on unknown id. *)
  val release : t -> int -> Spp_num.Rat.t

  val max_release : t -> Spp_num.Rat.t
end
