module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Release = Instance.Release

type stats = { shelves : int }

(* A shelf's height is fixed by its first (defining) task, so later
   additions can never grow a shelf into the one above it. *)
type shelf = {
  base : Q.t;
  sheight : Q.t;
  mutable used : Q.t;
  mutable items : Placement.item list;
}

let order_tasks (inst : Release.t) =
  List.sort
    (fun (a : Release.task) (b : Release.task) ->
      let c = Q.compare a.release b.release in
      if c <> 0 then c
      else begin
        let c = Q.compare b.rect.Rect.h a.rect.Rect.h in
        if c <> 0 then c else compare a.rect.Rect.id b.rect.Rect.id
      end)
    inst.tasks

let place shelf (r : Rect.t) =
  shelf.items <-
    { Placement.rect = r; pos = { Placement.x = shelf.used; y = shelf.base } } :: shelf.items;
  shelf.used <- Q.add shelf.used r.Rect.w

(* A task may go on a shelf iff it fits horizontally and vertically and the
   shelf does not start before the task's release. *)
let admits shelf (task : Release.task) =
  Q.compare (Q.add shelf.used task.rect.Rect.w) Q.one <= 0
  && Q.compare task.rect.Rect.h shelf.sheight <= 0
  && Q.compare shelf.base task.release >= 0

let run ~first_fit (inst : Release.t) =
  let shelves = ref [] (* newest first *) in
  List.iter
    (fun (task : Release.task) ->
      let target =
        if first_fit then List.find_opt (fun s -> admits s task) (List.rev !shelves)
        else (match !shelves with s :: _ when admits s task -> Some s | _ -> None)
      in
      match target with
      | Some s -> place s task.rect
      | None ->
        let top =
          match !shelves with [] -> Q.zero | s :: _ -> Q.add s.base s.sheight
        in
        let s =
          { base = Q.max top task.release; sheight = task.rect.Rect.h; used = Q.zero; items = [] }
        in
        place s task.rect;
        shelves := s :: !shelves)
    (order_tasks inst);
  let placement = Placement.of_items (List.concat_map (fun s -> s.items) !shelves) in
  (placement, { shelves = List.length !shelves })

let pack inst = run ~first_fit:false inst
let pack_first_fit inst = run ~first_fit:true inst
