(** The configuration LP of Lemma 3.3 and its exact solution.

    A {e configuration} is a multiset of (distinct) widths summing to at
    most 1 — a feasible horizontal cross-section of the strip. With phases
    delimited by the distinct release times [%0 = 0 < %1 < … < %R]
    (and [%{R+1} = ∞]), variable [x_{q,j}] is the height given to
    configuration [q] inside phase [j]:

    - objective (3.2): minimise [Σ_q x_{q,R}] (height beyond the last
      release);
    - packing (3.3): [Σ_q x_{q,j} <= %{j+1} − %j] for [j < R];
    - covering (3.4): for each suffix [k] and width [ω_i],
      [Σ_{j>=k} Σ_q a_{iq} x_{q,j} >= Σ_{j>=k} b_{i,k}] where [b] is the
      height demand of width [ω_i] released at [%j].

    The exact simplex returns a {e basic} optimum, so at most
    [(W+1)(R+1)] occurrences are nonzero — the quantity that bounds the
    rounding loss in Lemma 3.4. *)

type occurrence = {
  counts : int array;  (** multiplicity per width index *)
  phase : int;
  height : Spp_num.Rat.t;  (** the nonzero value of [x_{q,j}] *)
}

type solved = {
  widths : Spp_num.Rat.t array;  (** distinct widths, descending *)
  boundaries : Spp_num.Rat.t array;  (** phase starts: 0 and the releases *)
  lp_value : Spp_num.Rat.t;  (** optimal [Σ_q x_{q,R}] *)
  fractional_height : Spp_num.Rat.t;  (** [%R + lp_value] = OPT_f of the instance *)
  occurrences : occurrence list;  (** nonzero variables, sorted by phase *)
  num_configs : int;  (** configurations enumerated (Q) *)
}

(** [enumerate_configs ?max_configs widths] lists every multiset of the
    given widths with sum <= 1 as a counts vector (the empty configuration
    is excluded). Deterministic order.
    @raise Failure when more than [max_configs] (default 200_000) exist —
    the documented guard against exponential blow-up in 1/K. *)
val enumerate_configs : ?max_configs:int -> Spp_num.Rat.t array -> int array list

(** [solve ?max_configs inst] builds and exactly solves the LP for the
    instance's {e actual} distinct widths and release times. The instance is
    expected to already be reduced (few distinct widths/releases); the
    function itself poses no such requirement beyond [max_configs]. *)
val solve : ?max_configs:int -> Instance.Release.t -> solved
