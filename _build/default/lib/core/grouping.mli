(** The two instance reductions of Section 3.1.

    {!round_releases} implements Lemma 3.1: release times snap upward onto a
    grid of [⌈1/ε_r⌉] multiples of [δ = ε_r·r_max], costing at most a
    [(1+ε_r)] factor in the fractional optimum.

    {!group_widths} implements Lemma 3.2 (Figures 3–4): within each release
    class the rectangles are stacked widest-first, the stack is cut into
    [g = W/(R+1)] equal-height slices, the rectangle at each cut becomes a
    {e threshold}, and every rectangle's width is raised to its group's
    threshold width — leaving at most [g] distinct widths per class.

    Both reductions keep rect ids, only ever {e increase} releases/widths
    (so a packing of the reduced instance is a packing of the original), and
    are exact over rationals. *)

(** [round_releases ~epsilon_r inst] (Lemma 3.1). An instance whose
    [max_release] is zero is returned unchanged.
    @raise Invalid_argument if [epsilon_r <= 0]. *)
val round_releases : epsilon_r:Spp_num.Rat.t -> Instance.Release.t -> Instance.Release.t

(** [distinct_releases inst] is the sorted list of distinct release values. *)
val distinct_releases : Instance.Release.t -> Spp_num.Rat.t list

(** [group_widths ~groups_per_class inst] (Lemma 3.2).
    @raise Invalid_argument if [groups_per_class < 1]. *)
val group_widths : groups_per_class:int -> Instance.Release.t -> Instance.Release.t

(** [distinct_widths inst] is the sorted (descending) list of distinct
    widths. *)
val distinct_widths : Instance.Release.t -> Spp_num.Rat.t list

(** [stack_height rects] is [Σ h] — the height [H(P_i)] of the stacking used
    in the grouping proof. Exposed for tests. *)
val stack_height : Spp_geom.Rect.t list -> Spp_num.Rat.t
