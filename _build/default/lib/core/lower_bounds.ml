module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag

let area (inst : Instance.Prec.t) = Rect.total_area inst.rects

let f_table (inst : Instance.Prec.t) =
  Dag.longest_path_to inst.dag ~weight:(Instance.Prec.height_of inst)

let f_of inst id = f_table inst id

let critical_path (inst : Instance.Prec.t) =
  let f = f_table inst in
  List.fold_left (fun acc (r : Rect.t) -> Q.max acc (f r.Rect.id)) Q.zero inst.rects

let prec inst = Q.max (area inst) (critical_path inst)

let release (inst : Instance.Release.t) =
  let area = Rect.total_area (Instance.Release.rects inst) in
  List.fold_left
    (fun acc (task : Instance.Release.task) ->
      Q.max acc (Q.add task.release task.rect.Rect.h))
    area inst.tasks
