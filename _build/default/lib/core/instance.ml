module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag

module Prec = struct
  type t = { rects : Rect.t list; dag : Dag.t }

  let make rects dag =
    let ids = List.sort compare (List.map (fun (r : Rect.t) -> r.Rect.id) rects) in
    let rec dup = function a :: (b :: _ as rest) -> a = b || dup rest | _ -> false in
    if dup ids then invalid_arg "Prec.make: duplicate rect ids";
    if ids <> Dag.nodes dag then
      invalid_arg "Prec.make: DAG nodes must be exactly the rect ids";
    { rects; dag }

  let unconstrained rects =
    make rects (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges:[])

  let size t = List.length t.rects

  let rect t id =
    match List.find_opt (fun (r : Rect.t) -> r.Rect.id = id) t.rects with
    | Some r -> r
    | None -> raise Not_found

  let height_of t id = (rect t id).Rect.h

  let induced t keep =
    {
      rects = List.filter (fun (r : Rect.t) -> keep r.Rect.id) t.rects;
      dag = Dag.induced t.dag keep;
    }
end

module Release = struct
  type task = { rect : Rect.t; release : Q.t }
  type t = { tasks : task list; k : int }

  let make ~k tasks =
    if k < 1 then invalid_arg "Release.make: k must be >= 1";
    let min_w = Q.of_ints 1 k in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun { rect; release } ->
        let id = rect.Rect.id in
        if Hashtbl.mem seen id then invalid_arg "Release.make: duplicate rect ids";
        Hashtbl.add seen id ();
        if Q.compare rect.Rect.h Q.one > 0 then
          invalid_arg (Printf.sprintf "Release.make: rect %d height exceeds 1" id);
        if Q.compare rect.Rect.w min_w < 0 then
          invalid_arg (Printf.sprintf "Release.make: rect %d narrower than 1/K" id);
        if Q.sign release < 0 then
          invalid_arg (Printf.sprintf "Release.make: rect %d has negative release" id))
      tasks;
    { tasks; k }

  let size t = List.length t.tasks
  let rects t = List.map (fun task -> task.rect) t.tasks

  let release t id =
    match List.find_opt (fun task -> task.rect.Rect.id = id) t.tasks with
    | Some task -> task.release
    | None -> raise Not_found

  let max_release t = List.fold_left (fun acc task -> Q.max acc task.release) Q.zero t.tasks
end
