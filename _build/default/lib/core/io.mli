(** Plain-text instance and placement serialisation.

    A small line-oriented format so instances can be generated, stored,
    packed and inspected from the CLI:

    {v
    # comment
    k 8                  # FPGA columns (strip granularity); optional, default 1
    rect 0 1/2 3/4       # id width height (rationals: a/b, decimals, or ints)
    rect 1 1/4 1
    edge 0 1             # precedence edge (forbidden with release lines)
    release 0 5/2        # release time    (forbidden with edge lines)
    v}

    A file with [edge] lines parses as a precedence instance; one with
    [release] lines as a release instance; with neither, as a precedence
    instance without edges. Rects without an explicit [release] default
    to release 0 in release instances. *)

type parsed =
  | Prec of Instance.Prec.t
  | Release of Instance.Release.t

(** [parse_string s] parses the format above.
    @raise Failure with a line-numbered message on any syntax or semantic
    error (unknown directive, bad rational, duplicate rect, both edge and
    release lines, etc.). *)
val parse_string : string -> parsed

(** [read_file path] = [parse_string (contents of path)]. *)
val read_file : string -> parsed

val prec_to_string : Instance.Prec.t -> string

(** Includes the instance's [k] line. *)
val release_to_string : Instance.Release.t -> string

(** [placement_to_string p] is one ["place <id> <x> <y>"] line per item,
    sorted by id, preceded by a ["height <h>"] line. *)
val placement_to_string : Spp_geom.Placement.t -> string

(** [parse_placement ~rects s] parses the {!placement_to_string} format
    (the ["height"] line is optional and ignored; positions bind to the
    given rects by id), enabling third-party solutions to be checked with
    {!Validate}.
    @raise Failure (line-numbered) on syntax errors, unknown or duplicate
    ids. Rects without a [place] line are simply absent (the validator
    reports them as missing). *)
val parse_placement : rects:Spp_geom.Rect.t list -> string -> Spp_geom.Placement.t

(** [read_placement_file ~rects path] reads and parses a placement file. *)
val read_placement_file : rects:Spp_geom.Rect.t list -> string -> Spp_geom.Placement.t
