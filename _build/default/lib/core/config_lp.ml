module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Release = Instance.Release
module Model = Spp_lp.Model
module Simplex = Spp_lp.Simplex

type occurrence = { counts : int array; phase : int; height : Q.t }

type solved = {
  widths : Q.t array;
  boundaries : Q.t array;
  lp_value : Q.t;
  fractional_height : Q.t;
  occurrences : occurrence list;
  num_configs : int;
}

let enumerate_configs ?(max_configs = 200_000) widths =
  let nw = Array.length widths in
  let found = ref [] in
  let count = ref 0 in
  (* DFS over width indices; widths sorted descending keeps pruning easy. *)
  let counts = Array.make nw 0 in
  let rec go i remaining nonempty =
    if i = nw then begin
      if nonempty then begin
        incr count;
        if !count > max_configs then
          failwith
            (Printf.sprintf "Config_lp.enumerate_configs: more than %d configurations" max_configs);
        found := Array.copy counts :: !found
      end
    end
    else begin
      (* multiplicity 0 first, then 1, 2, ... while capacity remains *)
      go (i + 1) remaining nonempty;
      let rec bump m remaining =
        let remaining = Q.sub remaining widths.(i) in
        if Q.sign remaining >= 0 then begin
          counts.(i) <- m;
          go (i + 1) remaining true;
          bump (m + 1) remaining
        end
        else counts.(i) <- 0
      in
      bump 1 remaining
    end
  in
  go 0 Q.one false;
  List.rev !found

let solve ?max_configs (inst : Release.t) =
  let widths = Array.of_list (Grouping.distinct_widths inst) in
  let releases = Grouping.distinct_releases inst in
  let boundaries =
    match releases with
    | r :: _ when Q.is_zero r -> Array.of_list releases
    | _ -> Array.of_list (Q.zero :: releases)
  in
  let np = Array.length boundaries in (* phases 0 .. np-1; last is unbounded *)
  let nw = Array.length widths in
  let configs = enumerate_configs ?max_configs widths in
  let configs_arr = Array.of_list configs in
  let nq = Array.length configs_arr in
  let width_index w =
    let rec find i = if Q.equal widths.(i) w then i else find (i + 1) in
    find 0
  in
  (* Demand b.(i).(j): total height of width-i tasks released at boundary j. *)
  let demand = Array.make_matrix nw np Q.zero in
  List.iter
    (fun (task : Release.task) ->
      let i = width_index task.Release.rect.Rect.w in
      let j =
        let rec find j = if Q.equal boundaries.(j) task.Release.release then j else find (j + 1) in
        find 0
      in
      demand.(i).(j) <- Q.add demand.(i).(j) task.Release.rect.Rect.h)
    inst.tasks;
  (* Variables x.(q).(j). *)
  let model = Model.create () in
  let var = Array.make_matrix nq np (-1) in
  for q = 0 to nq - 1 do
    for j = 0 to np - 1 do
      var.(q).(j) <- Model.add_var model ~name:(Printf.sprintf "x_%d_%d" q j)
    done
  done;
  (* Objective (3.2): minimise the height used in the final phase. *)
  Model.set_objective model (List.init nq (fun q -> (var.(q).(np - 1), Q.one)));
  (* Packing constraints (3.3) for the bounded phases. *)
  for j = 0 to np - 2 do
    let cap = Q.sub boundaries.(j + 1) boundaries.(j) in
    Model.add_constraint model ~name:(Printf.sprintf "pack_%d" j)
      (List.init nq (fun q -> (var.(q).(j), Q.one)))
      Model.Le cap
  done;
  (* Covering constraints (3.4): suffix capacity >= suffix demand, skipping
     trivially-satisfied rows (zero demand). *)
  for k = 0 to np - 1 do
    for i = 0 to nw - 1 do
      let rhs = ref Q.zero in
      for j = k to np - 1 do
        rhs := Q.add !rhs demand.(i).(j)
      done;
      if Q.sign !rhs > 0 then begin
        let terms = ref [] in
        for j = k to np - 1 do
          for q = 0 to nq - 1 do
            let a = configs_arr.(q).(i) in
            if a > 0 then terms := (var.(q).(j), Q.of_int a) :: !terms
          done
        done;
        Model.add_constraint model ~name:(Printf.sprintf "cover_%d_%d" k i) !terms Model.Ge !rhs
      end
    done
  done;
  match Simplex.Exact.solve model with
  | Simplex.Infeasible | Simplex.Unbounded ->
    (* The LP is always feasible (pack everything after %R) and bounded
       below by 0. *)
    assert false
  | Simplex.Optimal { objective; solution; _ } ->
    let occurrences = ref [] in
    for q = 0 to nq - 1 do
      for j = 0 to np - 1 do
        let x = solution.(var.(q).(j)) in
        if Q.sign x > 0 then
          occurrences := { counts = configs_arr.(q); phase = j; height = x } :: !occurrences
      done
    done;
    let occurrences =
      List.stable_sort (fun a b -> compare a.phase b.phase) (List.rev !occurrences)
    in
    {
      widths;
      boundaries;
      lp_value = objective;
      fractional_height = Q.add boundaries.(np - 1) objective;
      occurrences;
      num_configs = nq;
    }
