(** Full validity checking for solutions of both problem variants.

    Layered on the geometric oracle of {!Spp_geom.Placement}: a solution is
    valid when it is geometrically valid {e and} respects the precedence
    edges ([y_s + h_s <= y_{s'}], Section 2) or the release times
    ([y_s >= r_s], Section 3). Every algorithm in this repository is tested
    against these independent checkers. *)

type violation =
  | Geometric of Spp_geom.Placement.violation
  | Missing_rect of int  (** instance rect absent from the placement *)
  | Extra_rect of int  (** placed rect not in the instance *)
  | Dimension_changed of int  (** placed copy has different w or h *)
  | Precedence of int * int  (** edge (u,v) with top(u) > bottom(v) *)
  | Release of int  (** y_s < r_s *)

val pp_violation : Format.formatter -> violation -> unit

(** [check_prec inst placement] returns all violations (empty = valid). *)
val check_prec : Instance.Prec.t -> Spp_geom.Placement.t -> violation list

val is_valid_prec : Instance.Prec.t -> Spp_geom.Placement.t -> bool

(** [check_release inst placement] returns all violations (empty = valid). *)
val check_release : Instance.Release.t -> Spp_geom.Placement.t -> violation list

val is_valid_release : Instance.Release.t -> Spp_geom.Placement.t -> bool
