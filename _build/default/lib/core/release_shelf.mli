(** Shelf heuristic for strip packing with release times.

    A mid-tier offline baseline between greedy list scheduling and the
    APTAS: tasks sorted by release time (ties: taller first) fill shelves
    left to right; a shelf closes when the next task does not fit or was
    released after the shelf's base, and the next shelf opens at
    [max (previous top) (task release)]. Next-fit ({!pack}) and first-fit
    ({!pack_first_fit}, which revisits every open-compatible shelf) flavours.

    No worst-case guarantee is claimed; it exists to show where simple
    shelf discipline lands between the baselines and the LP-based scheme
    in the benches. Always valid (checked by tests). *)

type stats = { shelves : int }

val pack : Instance.Release.t -> Spp_geom.Placement.t * stats

val pack_first_fit : Instance.Release.t -> Spp_geom.Placement.t * stats
