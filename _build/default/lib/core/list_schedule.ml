module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Skyline = Spp_geom.Skyline
module Dag = Spp_dag.Dag

let prec (inst : Instance.Prec.t) =
  let rect_of = Hashtbl.create 16 in
  List.iter (fun (r : Rect.t) -> Hashtbl.replace rect_of r.Rect.id r) inst.rects;
  let sky = Skyline.create () in
  let tops = Hashtbl.create 16 in (* id -> y + h *)
  let items =
    List.map
      (fun id ->
        let r = Hashtbl.find rect_of id in
        let y_min =
          List.fold_left (fun acc p -> Q.max acc (Hashtbl.find tops p)) Q.zero
            (Dag.preds inst.dag id)
        in
        let pos = Skyline.place sky ~w:r.Rect.w ~h:r.Rect.h ~y_min in
        Hashtbl.replace tops id (Q.add pos.Placement.y r.Rect.h);
        { Placement.rect = r; pos })
      (Dag.topo_order inst.dag)
  in
  Placement.of_items items

let release (inst : Instance.Release.t) =
  let order =
    List.sort
      (fun (a : Instance.Release.task) (b : Instance.Release.task) ->
        let c = Q.compare a.release b.release in
        if c <> 0 then c
        else begin
          let c = Q.compare b.rect.Rect.h a.rect.Rect.h in
          if c <> 0 then c else compare a.rect.Rect.id b.rect.Rect.id
        end)
      inst.tasks
  in
  let sky = Skyline.create () in
  let items =
    List.map
      (fun (task : Instance.Release.task) ->
        let r = task.rect in
        let pos = Skyline.place sky ~w:r.Rect.w ~h:r.Rect.h ~y_min:task.release in
        { Placement.rect = r; pos })
      order
  in
  Placement.of_items items
