module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag

type stats = { levels : int; mid_calls : int }

(* Lines 2-6 of Algorithm 1: the three bands of the critical-path split. *)
let split (inst : Instance.Prec.t) =
  if inst.rects = [] then ([], [], [])
  else begin
    let heights = Hashtbl.create (List.length inst.rects) in
    List.iter (fun (r : Rect.t) -> Hashtbl.replace heights r.Rect.id r.Rect.h) inst.rects;
    let f = Dag.longest_path_to inst.dag ~weight:(Hashtbl.find heights) in
    let h = List.fold_left (fun acc (r : Rect.t) -> Q.max acc (f r.Rect.id)) Q.zero inst.rects in
    let half = Q.div h Q.two in
    List.fold_right
      (fun (r : Rect.t) (bot, mid, top) ->
        let fr = f r.Rect.id in
        if Q.compare fr half <= 0 then (r.Rect.id :: bot, mid, top)
        else if Q.compare (Q.sub fr r.Rect.h) half > 0 then (bot, mid, r.Rect.id :: top)
        else (bot, r.Rect.id :: mid, top))
      inst.rects ([], [], [])
  end

let pack ?(subroutine = Spp_pack.Level.nfdh) (inst : Instance.Prec.t) =
  let mid_calls = ref 0 in
  let max_level = ref 0 in
  (* Returns a placement based at y = 0; the caller stacks by shifting. *)
  let rec go (inst : Instance.Prec.t) level =
    max_level := max !max_level level;
    if inst.rects = [] then Placement.of_items []
    else begin
      (* Line 2: recompute F on the induced sub-DAG. *)
      let heights = Hashtbl.create (List.length inst.rects) in
      List.iter (fun (r : Rect.t) -> Hashtbl.replace heights r.Rect.id r.Rect.h) inst.rects;
      let f = Dag.longest_path_to inst.dag ~weight:(Hashtbl.find heights) in
      let h = List.fold_left (fun acc (r : Rect.t) -> Q.max acc (f r.Rect.id)) Q.zero inst.rects in
      let half = Q.div h Q.two in
      let band_of (r : Rect.t) =
        let fr = f r.Rect.id in
        if Q.compare fr half <= 0 then `Bot
        else if Q.compare (Q.sub fr r.Rect.h) half > 0 then `Top
        else `Mid
      in
      let mid = List.filter (fun r -> band_of r = `Mid) inst.rects in
      let ids_of band =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (r : Rect.t) -> if band_of r = band then Hashtbl.replace tbl r.Rect.id ())
          inst.rects;
        Hashtbl.mem tbl
      in
      let mid_ids = ids_of `Mid in
      assert (mid <> []) (* Lemma 2.2 *);
      assert (Dag.independent inst.dag mid_ids) (* Lemma 2.1 *);
      incr mid_calls;
      let p_bot = go (Instance.Prec.induced inst (ids_of `Bot)) (level + 1) in
      let p_mid = subroutine mid in
      let p_top = go (Instance.Prec.induced inst (ids_of `Top)) (level + 1) in
      let h_bot = Placement.height p_bot in
      let h_mid = Placement.height p_mid in
      let p_mid = Placement.shift_y p_mid h_bot in
      let p_top = Placement.shift_y p_top (Q.add h_bot h_mid) in
      Placement.union (Placement.union p_bot p_mid) p_top
    end
  in
  let placement = go inst 0 in
  (placement, { levels = !max_level; mid_calls = !mid_calls })

let height ?subroutine inst = Spp_geom.Placement.height (fst (pack ?subroutine inst))

let theorem_2_3_bound inst =
  let n = float_of_int (Instance.Prec.size inst) in
  let f = Q.to_float (Lower_bounds.critical_path inst) in
  let area = Q.to_float (Lower_bounds.area inst) in
  (Float.log (n +. 1.0) /. Float.log 2.0 *. f) +. (2.0 *. area)
