module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag

type parsed = Prec of Instance.Prec.t | Release of Instance.Release.t

let fail line msg = failwith (Printf.sprintf "line %d: %s" line msg)

let rat_of line s =
  match Q.of_string s with
  | v -> v
  | exception _ -> fail line (Printf.sprintf "bad rational %S" s)

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "bad integer %S" s)

let parse_string s =
  let k = ref 1 in
  let rects = ref [] in (* (line, id, w, h), reversed *)
  let edges = ref [] in
  let releases = ref [] in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let text =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match String.split_on_char ' ' (String.trim text) |> List.filter (( <> ) "") with
      | [] -> ()
      | [ "k"; v ] -> k := int_of line v
      | [ "rect"; id; w; h ] ->
        rects := (line, int_of line id, rat_of line w, rat_of line h) :: !rects
      | [ "edge"; u; v ] -> edges := (line, int_of line u, int_of line v) :: !edges
      | [ "release"; id; r ] -> releases := (line, int_of line id, rat_of line r) :: !releases
      | tok :: _ -> fail line (Printf.sprintf "unknown or malformed directive %S" tok)
      )
    lines;
  if !edges <> [] && !releases <> [] then
    failwith "instance mixes edge and release lines; pick one variant";
  let first_line = match List.rev !rects with (l, _, _, _) :: _ -> l | [] -> 1 in
  let mk_rects () =
    List.rev_map
      (fun (line, id, w, h) ->
        match Rect.make ~id ~w ~h with
        | r -> r
        | exception Invalid_argument msg -> fail line msg)
      !rects
  in
  if !releases <> [] then begin
    let rects = mk_rects () in
    let rel_tbl = Hashtbl.create 16 in
    List.iter
      (fun (line, id, r) ->
        if Hashtbl.mem rel_tbl id then fail line (Printf.sprintf "duplicate release for %d" id);
        if not (List.exists (fun (rc : Rect.t) -> rc.Rect.id = id) rects) then
          fail line (Printf.sprintf "release for unknown rect %d" id);
        Hashtbl.replace rel_tbl id r)
      !releases;
    let tasks =
      List.map
        (fun (rect : Rect.t) ->
          let release = Option.value ~default:Q.zero (Hashtbl.find_opt rel_tbl rect.Rect.id) in
          { Instance.Release.rect; release })
        rects
    in
    match Instance.Release.make ~k:!k tasks with
    | inst -> Release inst
    | exception Invalid_argument msg -> fail first_line msg
  end
  else begin
    let rects = mk_rects () in
    let nodes = List.map (fun (r : Rect.t) -> r.Rect.id) rects in
    let edges = List.rev_map (fun (_, u, v) -> (u, v)) !edges in
    match Instance.Prec.make rects (Dag.of_edges ~nodes ~edges) with
    | inst -> Prec inst
    | exception Invalid_argument msg -> fail first_line msg
  end

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let buf_rects buf rects =
  List.iter
    (fun (r : Rect.t) ->
      Buffer.add_string buf
        (Printf.sprintf "rect %d %s %s\n" r.Rect.id (Q.to_string r.Rect.w) (Q.to_string r.Rect.h)))
    rects

let prec_to_string (inst : Instance.Prec.t) =
  let buf = Buffer.create 256 in
  buf_rects buf inst.rects;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v))
    (Dag.edges inst.dag);
  Buffer.contents buf

let release_to_string (inst : Instance.Release.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "k %d\n" inst.k);
  buf_rects buf (Instance.Release.rects inst);
  List.iter
    (fun (t : Instance.Release.task) ->
      Buffer.add_string buf
        (Printf.sprintf "release %d %s\n" t.rect.Rect.id (Q.to_string t.release)))
    inst.tasks;
  Buffer.contents buf

let parse_placement ~rects s =
  let rect_of = Hashtbl.create 16 in
  List.iter (fun (r : Rect.t) -> Hashtbl.replace rect_of r.Rect.id r) rects;
  let items = ref [] in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let text =
        match String.index_opt raw '#' with Some j -> String.sub raw 0 j | None -> raw
      in
      match String.split_on_char ' ' (String.trim text) |> List.filter (( <> ) "") with
      | [] -> ()
      | [ "height"; _ ] -> () (* informational; recomputed from positions *)
      | [ "place"; id; x; y ] ->
        let id = int_of line id in
        (match Hashtbl.find_opt rect_of id with
         | None -> fail line (Printf.sprintf "place for unknown rect %d" id)
         | Some rect ->
           if Hashtbl.mem seen id then fail line (Printf.sprintf "duplicate place for %d" id);
           Hashtbl.replace seen id ();
           items :=
             { Spp_geom.Placement.rect;
               pos = { Spp_geom.Placement.x = rat_of line x; y = rat_of line y } }
             :: !items)
      | tok :: _ -> fail line (Printf.sprintf "unknown or malformed directive %S" tok))
    (String.split_on_char '\n' s);
  Placement.of_items !items

let read_placement_file ~rects path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_placement ~rects s

let placement_to_string p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "height %s\n" (Q.to_string (Placement.height p)));
  let items =
    List.sort
      (fun (a : Placement.item) (b : Placement.item) -> compare a.rect.Rect.id b.rect.Rect.id)
      (Placement.items p)
  in
  List.iter
    (fun (it : Placement.item) ->
      Buffer.add_string buf
        (Printf.sprintf "place %d %s %s\n" it.rect.Rect.id
           (Q.to_string it.pos.Placement.x) (Q.to_string it.pos.Placement.y)))
    items;
  Buffer.contents buf
