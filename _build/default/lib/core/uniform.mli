(** Section 2.2: precedence-constrained strip packing with uniform heights.

    When every rectangle has the same height [c], any solution can be
    normalised to a {e shelf solution} (each rectangle inside one height-[c]
    shelf) without growing the packing — the slide-down argument — which
    makes the problem equivalent to precedence-constrained bin packing
    (shelves ↔ bins). This module provides:

    - {!slide_down}: the normalisation itself;
    - {!next_fit_shelf}: the paper's algorithm [F], an absolute
      3-approximation (Theorem 2.6) whose skip count obeys Lemma 2.5;
    - {!prec_first_fit}: the Garey–Graham–Johnson–Yao-style first-fit for
      precedence bin packing (asymptotic regime), via the reduction;
    - {!wave_ffd}: a wave/level FFD heuristic baseline;
    - {!red_green_decomposition}: the shelf colouring used in Theorem 2.6's
      proof, exposed so tests can check the proof's invariants. *)

(** [uniform_height inst] is the common height when all rects share one
    (Some c), or None. None on the empty instance. *)
val uniform_height : Instance.Prec.t -> Spp_num.Rat.t option

type shelf_stats = {
  shelves : int;  (** shelves opened (= height / c) *)
  skips : int;  (** shelves closed on an empty ready queue (Lemma 2.5) *)
}

(** [next_fit_shelf inst] runs algorithm [F]: one open shelf, a FIFO queue
    of available rectangles (all predecessors on {e closed} shelves), head
    placed left-to-right while it fits; the shelf closes when the head does
    not fit or the queue is empty (a {e skip}).
    @raise Invalid_argument if heights are not uniform. *)
val next_fit_shelf : Instance.Prec.t -> Spp_geom.Placement.t * shelf_stats

(** [prec_first_fit inst] processes rectangles in topological order and
    places each in the lowest shelf that is strictly above all its
    predecessors' shelves and has room — first-fit generalised with
    precedence eligibility (the natural reading of the GGJY reduction).
    @raise Invalid_argument if heights are not uniform. *)
val prec_first_fit : Instance.Prec.t -> Spp_geom.Placement.t * shelf_stats

(** [wave_ffd inst] packs in waves: all currently-available rectangles are
    packed by first-fit-decreasing into fresh shelves, then the next wave
    becomes available. Simple baseline; can be a Θ(path-length) factor worse.
    @raise Invalid_argument if heights are not uniform. *)
val wave_ffd : Instance.Prec.t -> Spp_geom.Placement.t * shelf_stats

(** [slide_down inst placement] normalises a valid placement of a
    uniform-height instance into a shelf placement of no greater height
    (Section 2.2's conversion): processing rectangles bottom-up, each snaps
    to the base of the shelf containing its bottom edge.
    @raise Invalid_argument if heights are not uniform. *)
val slide_down : Instance.Prec.t -> Spp_geom.Placement.t -> Spp_geom.Placement.t

(** [red_green_decomposition inst placement] colours the shelves of a shelf
    placement as in Theorem 2.6's proof: scanning bottom-up, two consecutive
    shelves whose rectangles jointly cover area >= 1 are red (density >=
    1/2), otherwise the current shelf is green. Returns [(reds, greens)].
    @raise Invalid_argument on non-shelf placements. *)
val red_green_decomposition : Instance.Prec.t -> Spp_geom.Placement.t -> int * int
