module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag

type violation =
  | Geometric of Placement.violation
  | Missing_rect of int
  | Extra_rect of int
  | Dimension_changed of int
  | Precedence of int * int
  | Release of int

let pp_violation fmt = function
  | Geometric v -> Placement.pp_violation fmt v
  | Missing_rect id -> Format.fprintf fmt "rect #%d missing from placement" id
  | Extra_rect id -> Format.fprintf fmt "rect #%d not part of the instance" id
  | Dimension_changed id -> Format.fprintf fmt "rect #%d placed with altered dimensions" id
  | Precedence (u, v) -> Format.fprintf fmt "precedence edge (%d,%d) violated" u v
  | Release id -> Format.fprintf fmt "rect #%d placed before its release time" id

(* Coverage and dimension checks shared by both variants. *)
let check_cover rects placement =
  let placed = Hashtbl.create 16 in
  List.iter
    (fun (it : Placement.item) -> Hashtbl.replace placed it.rect.Rect.id it.rect)
    (Placement.items placement);
  let violations = ref [] in
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (r : Rect.t) ->
      Hashtbl.replace expected r.Rect.id ();
      match Hashtbl.find_opt placed r.Rect.id with
      | None -> violations := Missing_rect r.Rect.id :: !violations
      | Some pr ->
        if not (Q.equal pr.Rect.w r.Rect.w && Q.equal pr.Rect.h r.Rect.h) then
          violations := Dimension_changed r.Rect.id :: !violations)
    rects;
  Hashtbl.iter
    (fun id _ -> if not (Hashtbl.mem expected id) then violations := Extra_rect id :: !violations)
    placed;
  List.rev !violations

let geometric placement = List.map (fun v -> Geometric v) (Placement.check placement)

let check_prec (inst : Instance.Prec.t) placement =
  let cover = check_cover inst.rects placement in
  let geo = geometric placement in
  let prec =
    List.filter_map
      (fun (u, v) ->
        match (Placement.find placement ~id:u, Placement.find placement ~id:v) with
        | Some iu, Some iv ->
          let top_u = Q.add iu.pos.Placement.y iu.rect.Rect.h in
          if Q.compare top_u iv.pos.Placement.y > 0 then Some (Precedence (u, v)) else None
        | _ -> None (* already reported as Missing_rect *))
      (Dag.edges inst.dag)
  in
  cover @ geo @ prec

let is_valid_prec inst placement = check_prec inst placement = []

let check_release (inst : Instance.Release.t) placement =
  let cover = check_cover (Instance.Release.rects inst) placement in
  let geo = geometric placement in
  let rel =
    List.filter_map
      (fun (task : Instance.Release.task) ->
        match Placement.find placement ~id:task.rect.Rect.id with
        | Some it ->
          if Q.compare it.pos.Placement.y task.release < 0 then
            Some (Release task.rect.Rect.id)
          else None
        | None -> None)
      inst.tasks
  in
  cover @ geo @ rel

let is_valid_release inst placement = check_release inst placement = []
