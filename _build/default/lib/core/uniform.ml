module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag

type shelf_stats = { shelves : int; skips : int }

let uniform_height (inst : Instance.Prec.t) =
  match inst.rects with
  | [] -> None
  | r :: rest ->
    if List.for_all (fun (r' : Rect.t) -> Q.equal r'.Rect.h r.Rect.h) rest then Some r.Rect.h
    else None

let require_uniform inst =
  match uniform_height inst with
  | Some c -> c
  | None -> invalid_arg "Uniform: instance heights are not uniform"

(* Mutable shelf accumulator shared by the three algorithms. *)
type shelf = { mutable used : Q.t; mutable items : (Rect.t * Q.t) list (* (rect, x), reversed *) }

let new_shelf () = { used = Q.zero; items = [] }

let shelf_fits shelf (r : Rect.t) = Q.compare (Q.add shelf.used r.Rect.w) Q.one <= 0

let shelf_place shelf (r : Rect.t) =
  shelf.items <- (r, shelf.used) :: shelf.items;
  shelf.used <- Q.add shelf.used r.Rect.w

let shelves_to_placement c shelves =
  (* [shelves] bottom-up. *)
  let items =
    List.concat
      (List.mapi
         (fun i shelf ->
           let y = Q.mul_int c i in
           List.rev_map (fun (r, x) -> { Placement.rect = r; pos = { Placement.x; y } }) shelf.items)
         shelves)
  in
  Placement.of_items items

(* ------------------------------------------------------------------ *)
(* Algorithm F (Theorem 2.6) *)

let next_fit_shelf (inst : Instance.Prec.t) =
  let c = require_uniform inst in
  let rect_of = Hashtbl.create 16 in
  List.iter (fun (r : Rect.t) -> Hashtbl.replace rect_of r.Rect.id r) inst.rects;
  let n = Instance.Prec.size inst in
  let closed = Hashtbl.create 16 in (* id -> () once its shelf is closed *)
  let enqueued = Hashtbl.create 16 in
  let queue = Queue.create () in
  let placed_count = ref 0 in
  let shelves = ref [] (* newest first *) in
  let open_shelf = ref (new_shelf ()) in
  let open_contents = ref [] (* ids on the open shelf *) in
  let skips = ref 0 in
  let repopulate () =
    List.iter
      (fun (r : Rect.t) ->
        let id = r.Rect.id in
        if (not (Hashtbl.mem enqueued id))
           && List.for_all (Hashtbl.mem closed) (Dag.preds inst.dag id)
        then begin
          Hashtbl.replace enqueued id ();
          Queue.add id queue
        end)
      inst.rects
  in
  let close_shelf () =
    List.iter (fun id -> Hashtbl.replace closed id ()) !open_contents;
    shelves := !open_shelf :: !shelves;
    open_shelf := new_shelf ();
    open_contents := [];
    repopulate ()
  in
  repopulate ();
  let rec run () =
    if !placed_count < n then begin
      match Queue.peek_opt queue with
      | None ->
        incr skips;
        close_shelf ();
        run ()
      | Some id ->
        let r = Hashtbl.find rect_of id in
        if shelf_fits !open_shelf r then begin
          ignore (Queue.pop queue);
          shelf_place !open_shelf r;
          open_contents := id :: !open_contents;
          incr placed_count;
          run ()
        end
        else begin
          close_shelf ();
          run ()
        end
    end
  in
  run ();
  (* Flush the final open shelf (not a skip: the input is exhausted). *)
  if !open_contents <> [] then shelves := !open_shelf :: !shelves;
  let shelves = List.rev !shelves in
  (shelves_to_placement c shelves, { shelves = List.length shelves; skips = !skips })

(* ------------------------------------------------------------------ *)
(* GGJY-style precedence first fit *)

let prec_first_fit (inst : Instance.Prec.t) =
  let c = require_uniform inst in
  let rect_of = Hashtbl.create 16 in
  List.iter (fun (r : Rect.t) -> Hashtbl.replace rect_of r.Rect.id r) inst.rects;
  let shelf_of = Hashtbl.create 16 in
  let shelves = ref [||] in
  let ensure idx =
    while Array.length !shelves <= idx do
      shelves := Array.append !shelves [| new_shelf () |]
    done
  in
  List.iter
    (fun id ->
      let r = Hashtbl.find rect_of id in
      let lo =
        List.fold_left (fun acc p -> max acc (Hashtbl.find shelf_of p + 1)) 0 (Dag.preds inst.dag id)
      in
      let rec find idx =
        ensure idx;
        if shelf_fits !shelves.(idx) r then idx else find (idx + 1)
      in
      let idx = find lo in
      shelf_place !shelves.(idx) r;
      Hashtbl.replace shelf_of id idx)
    (Dag.topo_order inst.dag);
  let shelves = Array.to_list !shelves in
  (shelves_to_placement c shelves, { shelves = List.length shelves; skips = 0 })

(* ------------------------------------------------------------------ *)
(* Wave FFD baseline *)

let wave_ffd (inst : Instance.Prec.t) =
  let c = require_uniform inst in
  let rect_of = Hashtbl.create 16 in
  List.iter (fun (r : Rect.t) -> Hashtbl.replace rect_of r.Rect.id r) inst.rects;
  let placed = Hashtbl.create 16 in
  let remaining = ref (List.map (fun (r : Rect.t) -> r.Rect.id) inst.rects) in
  let shelves = ref [] in
  while !remaining <> [] do
    let available, blocked =
      List.partition (fun id -> List.for_all (Hashtbl.mem placed) (Dag.preds inst.dag id)) !remaining
    in
    assert (available <> []);
    let items =
      List.map (fun id -> { Spp_pack.Binpack.id; size = (Hashtbl.find rect_of id).Rect.w }) available
    in
    let bins = Spp_pack.Binpack.first_fit_decreasing items in
    List.iter
      (fun bin ->
        let shelf = new_shelf () in
        List.iter (fun id -> shelf_place shelf (Hashtbl.find rect_of id)) bin;
        shelves := shelf :: !shelves)
      bins;
    List.iter (fun id -> Hashtbl.replace placed id ()) available;
    remaining := blocked
  done;
  let shelves = List.rev !shelves in
  (shelves_to_placement c shelves, { shelves = List.length shelves; skips = 0 })

(* ------------------------------------------------------------------ *)
(* Slide-down normalisation *)

let slide_down (inst : Instance.Prec.t) placement =
  let c = require_uniform inst in
  let snapped =
    List.map
      (fun (it : Placement.item) ->
        let shelf_index = Q.floor (Q.div it.pos.Placement.y c) in
        let y = Q.mul c (Q.of_bigint shelf_index) in
        { it with pos = { it.pos with Placement.y } })
      (Placement.items placement)
  in
  Placement.of_items snapped

(* ------------------------------------------------------------------ *)
(* Theorem 2.6 shelf colouring *)

let red_green_decomposition (inst : Instance.Prec.t) placement =
  let c = require_uniform inst in
  (* Width mass per shelf; items must be shelf-aligned. *)
  let widths = Hashtbl.create 16 in
  List.iter
    (fun (it : Placement.item) ->
      let q = Q.div it.pos.Placement.y c in
      let idx = Q.floor q in
      if not (Q.equal (Q.of_bigint idx) q) then
        invalid_arg "Uniform.red_green_decomposition: placement is not a shelf solution";
      let i = B.to_int_exn idx in
      let cur = Option.value ~default:Q.zero (Hashtbl.find_opt widths i) in
      Hashtbl.replace widths i (Q.add cur it.rect.Rect.w))
    (Placement.items placement);
  let top = Hashtbl.fold (fun i _ acc -> max acc (i + 1)) widths 0 in
  let width_of i = Option.value ~default:Q.zero (Hashtbl.find_opt widths i) in
  let rec sweep i (reds, greens) =
    if i >= top then (reds, greens)
    else begin
      let pair = Q.add (width_of i) (width_of (i + 1)) in
      if i + 1 < top && Q.compare pair Q.one >= 0 then sweep (i + 2) (reds + 2, greens)
      else sweep (i + 1) (reds, greens + 1)
    end
  in
  sweep 0 (0, 0)
