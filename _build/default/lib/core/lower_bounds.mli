(** The paper's lower bounds on optimal packing height.

    Section 2 uses two bounds for precedence instances —
    [OPT >= AREA(S)] (total area, strip width 1) and [OPT >= F(S)] (the
    critical path under the recursive function F) — and shows in Lemma 2.4
    that their maximum can be Ω(log n) below OPT. Section 3's release-time
    instances admit [OPT >= max_s (r_s + h_s)] and the area bound. *)

(** [area inst] is [AREA(S) = Σ w·h]: with strip width 1, no packing can be
    shorter than its total area. *)
val area : Instance.Prec.t -> Spp_num.Rat.t

(** [f_of inst id] is the paper's [F(s)]: [h_s] if [IN(s) = ∅], else
    [h_s + max_{s' ∈ IN(s)} F(s')]. *)
val f_of : Instance.Prec.t -> int -> Spp_num.Rat.t

(** [critical_path inst] is [F(S) = max_s F(s)] (zero on empty). *)
val critical_path : Instance.Prec.t -> Spp_num.Rat.t

(** [prec inst] is [max (area inst) (critical_path inst)] — the best simple
    bound available to DC's analysis. *)
val prec : Instance.Prec.t -> Spp_num.Rat.t

(** [release inst] is [max (AREA, max_s (r_s + h_s))]. *)
val release : Instance.Release.t -> Spp_num.Rat.t
