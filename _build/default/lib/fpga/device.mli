(** A simulated column-reconfigurable FPGA.

    The paper's motivating hardware (Section 1): a Virtex-II-class device
    whose reconfiguration granularity is a full column, so a task occupies a
    contiguous set of columns for a time interval. We have no physical
    device; this model is the substitution documented in DESIGN.md — it
    enforces exactly the semantics the paper reduces to strip packing
    (contiguous columns × time), plus an optional per-task reconfiguration
    delay for overhead studies. *)

type t = private {
  columns : int;  (** K, the paper's constant (≤ 200 on real devices) *)
  reconfig_delay : Spp_num.Rat.t;
      (** minimum idle time a column needs between two different tasks *)
  serial_reconfig : bool;
      (** Virtex-II-class devices have a single configuration port (ICAP):
          when set, two tasks' reconfiguration windows (the [reconfig_delay]
          interval before each start) may not overlap anywhere on the
          device. Meaningful only with a positive delay. *)
}

(** [make ~columns ?reconfig_delay ?serial_reconfig ()] builds a device.
    [serial_reconfig] defaults to false.
    @raise Invalid_argument if [columns < 1] or the delay is negative. *)
val make :
  columns:int -> ?reconfig_delay:Spp_num.Rat.t -> ?serial_reconfig:bool -> unit -> t
