module Q = Spp_num.Rat
module Heap = Spp_util.Heap
module Dag = Spp_dag.Dag

type violation =
  | Column_conflict of int * int * int
  | Reconfig_too_fast of int * int * int
  | Reconfig_port_busy of int * int
  | Precedence_violated of int * int
  | Released_early of int

type report = {
  makespan : Q.t;
  busy : Q.t array;
  utilisation : float;
  reconfigurations : int;
  violations : violation list;
}

type event = { time : Q.t; kind : [ `Finish | `Start ]; task : Schedule.task }

let event_cmp a b =
  let c = Q.compare a.time b.time in
  if c <> 0 then c
  else
    (* Finishes before starts at equal times: touching intervals are legal. *)
    match (a.kind, b.kind) with
    | `Finish, `Start -> -1
    | `Start, `Finish -> 1
    | _ -> compare a.task.Schedule.id b.task.Schedule.id

let run ?dag ?release (sched : Schedule.t) =
  let k = sched.device.Device.columns in
  let delay = sched.device.Device.reconfig_delay in
  let events = Heap.create ~cmp:event_cmp in
  List.iter
    (fun (t : Schedule.task) ->
      Heap.push events { time = t.start; kind = `Start; task = t };
      Heap.push events { time = Schedule.task_end t; kind = `Finish; task = t })
    sched.tasks;
  (* Per-column state: current occupant and the last (task, end) seen. *)
  let occupant = Array.make k None in
  let last_done : (int * Q.t) option array = Array.make k None in
  let busy = Array.make k Q.zero in
  let finished = Hashtbl.create 16 in (* id -> finish time *)
  let violations = ref [] in
  let reconfigs = ref 0 in
  let rec loop () =
    match Heap.pop events with
    | None -> ()
    | Some ev ->
      let t = ev.task in
      (match ev.kind with
       | `Finish ->
         for c = t.col_lo to t.col_lo + t.col_count - 1 do
           (match occupant.(c) with
            | Some id when id = t.Schedule.id -> occupant.(c) <- None
            | _ -> ());
           last_done.(c) <- Some (t.Schedule.id, ev.time);
           busy.(c) <- Q.add busy.(c) t.duration
         done;
         Hashtbl.replace finished t.Schedule.id ev.time
       | `Start ->
         (match release with
          | Some rel ->
            if Q.compare t.start (rel t.Schedule.id) < 0 then
              violations := Released_early t.Schedule.id :: !violations
          | None -> ());
         (match dag with
          | Some g when Dag.mem g t.Schedule.id ->
            List.iter
              (fun p ->
                let ok =
                  match Hashtbl.find_opt finished p with
                  | Some ft -> Q.compare ft t.start <= 0
                  | None -> false
                in
                if not ok then violations := Precedence_violated (p, t.Schedule.id) :: !violations)
              (Dag.preds g t.Schedule.id)
          | _ -> ());
         for c = t.col_lo to t.col_lo + t.col_count - 1 do
           (match occupant.(c) with
            | Some other -> violations := Column_conflict (other, t.Schedule.id, c) :: !violations
            | None -> ());
           (match last_done.(c) with
            | Some (prev, fin) when prev <> t.Schedule.id ->
              if Q.compare (Q.sub t.start fin) delay < 0 then
                violations := Reconfig_too_fast (prev, t.Schedule.id, c) :: !violations
            | _ -> ());
           occupant.(c) <- Some t.Schedule.id;
           incr reconfigs
         done);
      loop ()
  in
  loop ();
  (* Single configuration port (ICAP): reconfiguration windows — the
     [delay] interval before each task's start — must be pairwise disjoint
     when the device serialises reconfiguration. *)
  if sched.device.Device.serial_reconfig && Q.sign delay > 0 then begin
    let windows =
      List.sort
        (fun (s1, _, _) (s2, _, _) -> Q.compare s1 s2)
        (List.map
           (fun (t : Schedule.task) -> (Q.sub t.start delay, t.start, t.Schedule.id))
           sched.tasks)
    in
    let rec scan = function
      | (_, e1, id1) :: ((s2, _, id2) :: _ as rest) ->
        if Q.compare s2 e1 < 0 then
          violations := Reconfig_port_busy (id1, id2) :: !violations;
        scan rest
      | _ -> ()
    in
    scan windows
  end;
  let makespan = Schedule.makespan sched in
  let total_busy = Array.fold_left Q.add Q.zero busy in
  let utilisation =
    if Q.is_zero makespan then 0.0
    else Q.to_float total_busy /. (float_of_int k *. Q.to_float makespan)
  in
  {
    makespan;
    busy;
    utilisation;
    reconfigurations = !reconfigs;
    violations = List.rev !violations;
  }

let pp_violation fmt = function
  | Column_conflict (a, b, c) -> Format.fprintf fmt "tasks %d and %d overlap on column %d" a b c
  | Reconfig_too_fast (a, b, c) ->
    Format.fprintf fmt "column %d reconfigured too fast between tasks %d and %d" c a b
  | Reconfig_port_busy (a, b) ->
    Format.fprintf fmt "tasks %d and %d contend for the serial configuration port" a b
  | Precedence_violated (a, b) -> Format.fprintf fmt "task %d started before predecessor %d ended" b a
  | Released_early id -> Format.fprintf fmt "task %d started before its release" id

let waiting_times ~release (sched : Schedule.t) =
  List.map
    (fun (t : Schedule.task) ->
      (t.Schedule.id, Q.max Q.zero (Q.sub t.start (release t.Schedule.id))))
    sched.tasks

let mean_wait ~release sched =
  match waiting_times ~release sched with
  | [] -> 0.0
  | ws ->
    List.fold_left (fun acc (_, w) -> acc +. Q.to_float w) 0.0 ws /. float_of_int (List.length ws)

let gantt ?(time_cols = 64) (sched : Schedule.t) =
  let k = sched.device.Device.columns in
  let span = Q.to_float (Schedule.makespan sched) in
  if span <= 0.0 then ""
  else begin
    let grid = Array.make_matrix k time_cols '.' in
    let glyph id =
      let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789" in
      letters.[id mod String.length letters]
    in
    List.iter
      (fun (t : Schedule.task) ->
        let t0 = int_of_float (Q.to_float t.start /. span *. float_of_int time_cols) in
        let t1 =
          int_of_float (Q.to_float (Schedule.task_end t) /. span *. float_of_int time_cols)
        in
        for c = t.col_lo to t.col_lo + t.col_count - 1 do
          for x = max 0 t0 to min (time_cols - 1) (max t0 (t1 - 1)) do
            grid.(c).(x) <- glyph t.Schedule.id
          done
        done)
      sched.tasks;
    let buf = Buffer.create (k * (time_cols + 8)) in
    for c = 0 to k - 1 do
      Buffer.add_string buf (Printf.sprintf "col%02d " c);
      Buffer.add_string buf (String.init time_cols (fun x -> grid.(c).(x)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "time 0 .. %.3f ->" span);
    Buffer.contents buf
  end
