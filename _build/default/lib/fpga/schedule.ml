module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement

type task = { id : int; col_lo : int; col_count : int; start : Q.t; duration : Q.t }
type t = { device : Device.t; tasks : task list }

let exact_cols ~k v what id =
  let scaled = Q.mul_int v k in
  let f = Q.floor scaled in
  if not (Q.equal (Q.of_bigint f) scaled) then
    invalid_arg
      (Printf.sprintf "Schedule.of_placement: rect %d %s (%s) is not aligned to 1/%d columns" id
         what (Q.to_string v) k);
  B.to_int_exn f

let of_placement ~device placement =
  let k = device.Device.columns in
  let tasks =
    List.map
      (fun (it : Placement.item) ->
        let id = it.rect.Rect.id in
        let col_lo = exact_cols ~k it.pos.Placement.x "x" id in
        let col_count = exact_cols ~k it.rect.Rect.w "width" id in
        if col_count < 1 || col_lo < 0 || col_lo + col_count > k then
          invalid_arg (Printf.sprintf "Schedule.of_placement: rect %d leaves the device" id);
        { id; col_lo; col_count; start = it.pos.Placement.y; duration = it.rect.Rect.h })
      (Placement.items placement)
  in
  { device; tasks }

let to_placement t =
  let k = t.device.Device.columns in
  Placement.of_items
    (List.map
       (fun task ->
         let rect = Rect.make ~id:task.id ~w:(Q.of_ints task.col_count k) ~h:task.duration in
         {
           Placement.rect;
           pos = { Placement.x = Q.of_ints task.col_lo k; y = task.start };
         })
       t.tasks)

let task_end task = Q.add task.start task.duration

let makespan t = List.fold_left (fun acc task -> Q.max acc (task_end task)) Q.zero t.tasks
