lib/fpga/sim.ml: Array Buffer Device Format Hashtbl List Printf Schedule Spp_dag Spp_num Spp_util String
