lib/fpga/online.ml: Array Device List Printf Schedule Spp_core Spp_geom Spp_num
