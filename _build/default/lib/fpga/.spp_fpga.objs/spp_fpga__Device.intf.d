lib/fpga/device.mli: Spp_num
