lib/fpga/sim.mli: Format Schedule Spp_dag Spp_num
