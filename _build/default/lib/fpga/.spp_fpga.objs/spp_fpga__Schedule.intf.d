lib/fpga/schedule.mli: Device Spp_geom Spp_num
