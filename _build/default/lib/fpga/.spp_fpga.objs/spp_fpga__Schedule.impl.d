lib/fpga/schedule.ml: Device List Printf Spp_geom Spp_num
