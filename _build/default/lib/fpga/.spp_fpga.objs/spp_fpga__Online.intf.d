lib/fpga/online.mli: Device Schedule Spp_core Spp_num
