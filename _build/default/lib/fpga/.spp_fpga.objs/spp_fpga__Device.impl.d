lib/fpga/device.ml: Spp_num
