(** Online scheduling on the reconfigurable device.

    The operating-system view the paper cites as the release-time
    motivation (Steiger–Walder–Platzner): tasks arrive over time and must be
    placed onto contiguous free columns without knowledge of future
    arrivals. This is the online counterpart of Section 3's offline APTAS,
    and the bench compares the two (experiment E10).

    The scheduler keeps a per-column earliest-free time and assigns each
    task, in release order, a contiguous window of columns:

    - [`Earliest]: the window with the smallest feasible start time
      (leftmost among ties) — a column-aware list scheduler;
    - [`Leftmost]: always the leftmost window, whatever its start — the
      naive allocator real systems often start with. *)

type policy = [ `Earliest | `Leftmost ]

type arrival = {
  id : int;
  columns : int;  (** contiguous columns needed, >= 1 *)
  duration : Spp_num.Rat.t;
  release : Spp_num.Rat.t;
}

(** [schedule device policy arrivals] processes arrivals in release order
    (ties by id) and returns the resulting schedule; it always succeeds
    (tasks wait for columns).
    @raise Invalid_argument if a task needs more columns than the device
    has, or a duration/release is negative. *)
val schedule : Device.t -> policy -> arrival list -> Schedule.t

(** [arrivals_of_release inst] converts a Section-3 instance (widths are
    multiples of [1/K]) into arrivals.
    @raise Invalid_argument if some width is not column-aligned. *)
val arrivals_of_release : Spp_core.Instance.Release.t -> arrival list
