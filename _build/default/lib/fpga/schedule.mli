(** Concrete FPGA schedules: tasks pinned to column ranges and start times.

    The bridge between the continuous strip-packing domain (width fractions,
    rational x) and the discrete device: a placement whose widths and x
    coordinates are multiples of [1/K] converts losslessly; anything else is
    rejected rather than silently snapped. *)

type task = {
  id : int;
  col_lo : int;  (** first column occupied (0-based) *)
  col_count : int;  (** number of contiguous columns, >= 1 *)
  start : Spp_num.Rat.t;
  duration : Spp_num.Rat.t;
}

type t = { device : Device.t; tasks : task list }

(** [of_placement ~device placement] converts exactly: for each rect,
    [x·K] and [w·K] must be integers.
    @raise Invalid_argument when a coordinate is not column-aligned or a
    task leaves the device. *)
val of_placement : device:Device.t -> Spp_geom.Placement.t -> t

(** [to_placement sched] converts back (columns → width fractions), e.g. to
    reuse the geometric validator. *)
val to_placement : t -> Spp_geom.Placement.t

val makespan : t -> Spp_num.Rat.t

(** [task_end task] = start + duration. *)
val task_end : task -> Spp_num.Rat.t
