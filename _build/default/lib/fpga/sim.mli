(** Discrete-event execution of an FPGA schedule.

    Replays a {!Schedule.t} through a time-ordered event queue and checks,
    {e independently of the packing algorithms}, that the schedule is
    executable on the device: no two tasks share a column at the same time,
    each column rests at least the device's reconfiguration delay between
    different tasks, precedence edges (if given) are respected, and no task
    starts before its release (if given). Reports makespan and per-column
    utilisation — the numbers an FPGA operating system would care about. *)

type violation =
  | Column_conflict of int * int * int  (** task a, task b, column *)
  | Reconfig_too_fast of int * int * int  (** task a then b on column, gap < delay *)
  | Reconfig_port_busy of int * int
      (** tasks a and b reconfigure simultaneously on a device whose single
          configuration port serialises reconfigurations *)
  | Precedence_violated of int * int
  | Released_early of int

type report = {
  makespan : Spp_num.Rat.t;
  busy : Spp_num.Rat.t array;  (** per-column total busy time *)
  utilisation : float;  (** Σ busy / (K · makespan); 0 for empty schedules *)
  reconfigurations : int;  (** column acquisitions (task × column pairs) *)
  violations : violation list;
}

(** [run ?dag ?release sched] executes the schedule. [dag] enables
    precedence checking (edge (u,v): u must end before v starts); [release]
    maps task id to release time. *)
val run :
  ?dag:Spp_dag.Dag.t ->
  ?release:(int -> Spp_num.Rat.t) ->
  Schedule.t ->
  report

val pp_violation : Format.formatter -> violation -> unit

(** [waiting_times ~release sched] is [(task id, start − release)] per task
    — the response-latency metric an FPGA OS optimises. Entries are
    clamped at zero for tasks scheduled before their release (the
    validator, not this accessor, flags those). *)
val waiting_times : release:(int -> Spp_num.Rat.t) -> Schedule.t -> (int * Spp_num.Rat.t) list

(** [mean_wait ~release sched] is the average waiting time as a float
    (0 for the empty schedule). *)
val mean_wait : release:(int -> Spp_num.Rat.t) -> Schedule.t -> float

(** [gantt ?time_rows sched] renders a text Gantt chart: one line per
    column, time flowing right, each task shown as its id glyph. *)
val gantt : ?time_cols:int -> Schedule.t -> string
