module Q = Spp_num.Rat
module B = Spp_num.Bigint
module Rect = Spp_geom.Rect

type policy = [ `Earliest | `Leftmost ]

type arrival = { id : int; columns : int; duration : Q.t; release : Q.t }

let schedule (device : Device.t) policy arrivals =
  let k = device.Device.columns in
  List.iter
    (fun a ->
      if a.columns < 1 || a.columns > k then
        invalid_arg (Printf.sprintf "Online.schedule: task %d needs %d of %d columns" a.id a.columns k);
      if Q.sign a.duration < 0 || Q.sign a.release < 0 then
        invalid_arg (Printf.sprintf "Online.schedule: task %d has negative time" a.id))
    arrivals;
  let order =
    List.sort
      (fun a b ->
        let c = Q.compare a.release b.release in
        if c <> 0 then c else compare a.id b.id)
      arrivals
  in
  (* free.(c): earliest time column c is free (including reconfig delay). *)
  let free = Array.make k Q.zero in
  let delay = device.Device.reconfig_delay in
  let window_start a lo =
    let s = ref a.release in
    for c = lo to lo + a.columns - 1 do
      s := Q.max !s free.(c)
    done;
    !s
  in
  let tasks =
    List.map
      (fun a ->
        let best = ref None in
        for lo = 0 to k - a.columns do
          let start = window_start a lo in
          let better =
            match (!best, policy) with
            | None, _ -> true
            | Some _, `Leftmost -> false (* first window wins *)
            | Some (_, bs), `Earliest -> Q.compare start bs < 0
          in
          if better then best := Some (lo, start)
        done;
        match !best with
        | None -> assert false (* k - columns >= 0 checked above *)
        | Some (lo, start) ->
          let fin = Q.add start a.duration in
          for c = lo to lo + a.columns - 1 do
            free.(c) <- Q.add fin delay
          done;
          { Schedule.id = a.id; col_lo = lo; col_count = a.columns; start; duration = a.duration })
      order
  in
  { Schedule.device; tasks }

let arrivals_of_release (inst : Spp_core.Instance.Release.t) =
  let k = inst.k in
  List.map
    (fun (t : Spp_core.Instance.Release.task) ->
      let scaled = Q.mul_int t.rect.Rect.w k in
      let cols = Q.floor scaled in
      if not (Q.equal (Q.of_bigint cols) scaled) then
        invalid_arg
          (Printf.sprintf "Online.arrivals_of_release: rect %d width %s is not a multiple of 1/%d"
             t.rect.Rect.id (Q.to_string t.rect.Rect.w) k);
      { id = t.rect.Rect.id; columns = B.to_int_exn cols; duration = t.rect.Rect.h;
        release = t.release })
    inst.tasks
