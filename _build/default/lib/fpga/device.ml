module Q = Spp_num.Rat

type t = { columns : int; reconfig_delay : Q.t; serial_reconfig : bool }

let make ~columns ?(reconfig_delay = Q.zero) ?(serial_reconfig = false) () =
  if columns < 1 then invalid_arg "Device.make: columns must be >= 1";
  if Q.sign reconfig_delay < 0 then invalid_arg "Device.make: negative reconfiguration delay";
  { columns; reconfig_delay; serial_reconfig }
