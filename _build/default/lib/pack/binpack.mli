(** One-dimensional bin packing heuristics.

    Items are [(id, size)] with size in (0, 1]; bins have capacity 1. The
    uniform-height strip packing of Section 2.2 reduces to bin packing
    (shelves ↔ bins), so these are the engines behind
    {!Spp_core.Uniform}'s GGJY-style wave packing and serve as baselines.

    All functions return bins in creation order, each bin a list of item ids
    in placement order. *)

type item = { id : int; size : Spp_num.Rat.t }

(** @raise Invalid_argument if a size is outside (0, 1]. *)
val check_items : item list -> unit

(** [next_fit items] keeps a single open bin. *)
val next_fit : item list -> int list list

(** [first_fit items] places each item in the lowest-indexed bin that fits. *)
val first_fit : item list -> int list list

(** [first_fit_decreasing items] = first_fit on items sorted by
    non-increasing size (the classic 11/9·OPT + 6/9 heuristic). *)
val first_fit_decreasing : item list -> int list list

(** [best_fit items] places each item in the fullest bin that still fits. *)
val best_fit : item list -> int list list

(** [harmonic ~classes items] — Lee–Lee HARMONIC_k: items are partitioned
    by size class ([size ∈ (1/(j+1), 1/j]] for [j < classes], the rest in
    the final class) and each class is packed next-fit into its own bins
    ([j] items per class-[j] bin). Online (list order), competitive ratio
    → 1.691 as [classes] grows.
    @raise Invalid_argument if [classes < 1]. *)
val harmonic : classes:int -> item list -> int list list

(** [bins_used bins] = [List.length bins]. *)
val bins_used : 'a list list -> int

(** [size_lower_bound items] = [ceil (Σ size)] — the area bound. *)
val size_lower_bound : item list -> int
