lib/pack/binpack.ml: Hashtbl List Printf Spp_num
