lib/pack/level.mli: Spp_geom Spp_num
