lib/pack/bottom_left.mli: Spp_geom
