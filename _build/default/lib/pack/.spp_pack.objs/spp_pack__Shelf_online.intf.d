lib/pack/shelf_online.mli: Spp_geom Spp_num
