lib/pack/knapsack.ml: Array List
