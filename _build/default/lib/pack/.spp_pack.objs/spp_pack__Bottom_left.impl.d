lib/pack/bottom_left.ml: List Spp_geom Spp_num
