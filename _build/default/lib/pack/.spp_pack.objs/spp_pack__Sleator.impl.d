lib/pack/sleator.ml: List Spp_geom Spp_num
