lib/pack/level.ml: List Spp_geom Spp_num
