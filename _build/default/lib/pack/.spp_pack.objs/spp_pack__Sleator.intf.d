lib/pack/sleator.mli: Spp_geom Spp_num
