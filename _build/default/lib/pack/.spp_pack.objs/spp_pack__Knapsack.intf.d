lib/pack/knapsack.mli:
