lib/pack/shelf_online.ml: List Spp_geom Spp_num
