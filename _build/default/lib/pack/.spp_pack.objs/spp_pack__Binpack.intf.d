lib/pack/binpack.mli: Spp_num
