module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Skyline = Spp_geom.Skyline

let pack ?(order = Rect.sort_by_height_desc) rects =
  let sky = Skyline.create () in
  let items =
    List.map
      (fun (r : Rect.t) ->
        let pos = Skyline.place sky ~w:r.Rect.w ~h:r.Rect.h ~y_min:Q.zero in
        { Placement.rect = r; pos })
      (order rects)
  in
  Placement.of_items items
