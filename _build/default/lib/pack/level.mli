(** Level (shelf) algorithms for strip packing without constraints.

    Classic Coffman–Garey–Johnson–Tarjan algorithms. All sort rectangles by
    non-increasing height and place them on horizontal levels; they differ in
    which open level receives the next rectangle. Packings start at y = 0;
    callers (notably {!Spp_core.Dc}) translate with
    {!Spp_geom.Placement.shift_y}.

    NFDH is the subroutine [A] that the paper's Algorithm 1 requires: it
    satisfies [A(S') <= 2·AREA(S') + max_{s∈S'} h_s], the only property
    Theorem 2.3's proof uses (the paper cites Steinberg/Schiermeyer, which
    also satisfy it; see DESIGN.md on this substitution). *)

(** [nfdh rects] — Next-Fit Decreasing Height: only the topmost level is
    open; a rectangle that does not fit closes it and opens a new one. *)
val nfdh : Spp_geom.Rect.t list -> Spp_geom.Placement.t

(** [ffdh rects] — First-Fit Decreasing Height: every level stays open; a
    rectangle goes to the lowest level with enough residual width. Never
    worse than NFDH on the same input. *)
val ffdh : Spp_geom.Rect.t list -> Spp_geom.Placement.t

(** [bfdh rects] — Best-Fit Decreasing Height: the fitting level with the
    least residual width wins. *)
val bfdh : Spp_geom.Rect.t list -> Spp_geom.Placement.t

(** [nfdh_height rects] = [Placement.height (nfdh rects)], without building
    the placement (used in bounds checks and benches). *)
val nfdh_height : Spp_geom.Rect.t list -> Spp_num.Rat.t
