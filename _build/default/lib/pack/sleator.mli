(** Sleator's strip-packing algorithm (absolute 2.5-approximation).

    D. Sleator, "A 2.5 times optimal algorithm for packing in two
    dimensions", IPL 1980. One of the classic unconstrained packers the
    paper's subroutine discussion sits on top of:

    + rectangles wider than 1/2 are stacked first (none can share a level);
    + the rest, sorted by non-increasing height, fill one full-width level;
    + the strip is then split at x = 1/2 and each half is filled with
      half-width levels, always extending the currently lower half.

    Its height bound implies the subroutine property
    [A <= 2·AREA + h_max] that DC needs, so it is a drop-in alternative to
    NFDH (exercised by the ablation bench). *)

val pack : Spp_geom.Rect.t list -> Spp_geom.Placement.t

val height : Spp_geom.Rect.t list -> Spp_num.Rat.t
