(** Bounded integer knapsack by dynamic programming.

    Substrate for the column-generation pricing of the configuration LP
    (Gilmore–Gomory): a new configuration is exactly a solution of
    [max Σ value_i · count_i] subject to [Σ weight_i · count_i <= capacity]
    with per-item multiplicity bounds. Weights and capacity are native ints
    (the LP layer scales rational widths by a common denominator first).

    O(capacity · Σ bound_i) time via the classic per-unit DP — fine for the
    capacities that arise from width denominators. *)

type item = {
  weight : int;  (** > 0 *)
  value : float;  (** item profit; may be 0 or negative (never chosen) *)
  bound : int;  (** maximum copies, >= 0 *)
}

(** [solve ~capacity items] returns [(best_value, counts)] with [counts] a
    per-item multiplicity array achieving [best_value]. The empty solution
    (value 0) is always admissible.
    @raise Invalid_argument on negative capacity or non-positive weight. *)
val solve : capacity:int -> item list -> float * int array
