type item = { weight : int; value : float; bound : int }

let solve ~capacity items =
  if capacity < 0 then invalid_arg "Knapsack.solve: negative capacity";
  List.iter
    (fun it ->
      if it.weight <= 0 then invalid_arg "Knapsack.solve: non-positive weight";
      if it.bound < 0 then invalid_arg "Knapsack.solve: negative bound")
    items;
  let items_arr = Array.of_list items in
  let n = Array.length items_arr in
  (* Binary-split every bounded item into 0/1 pseudo-items (weight*2^j,
     value*2^j), recording which original item each one came from, then run
     0/1 DP with an explicit take table so the traceback replays decisions
     instead of comparing floats. *)
  let pseudo = ref [] in
  for i = n - 1 downto 0 do
    let it = items_arr.(i) in
    let bound = min it.bound (if it.weight = 0 then 0 else capacity / it.weight) in
    let rec split remaining chunk =
      if remaining > 0 then begin
        let take = min chunk remaining in
        pseudo := (i, take, it.weight * take, it.value *. float_of_int take) :: !pseudo;
        split (remaining - take) (chunk * 2)
      end
    in
    if it.value > 0.0 then split bound 1
  done;
  let pseudo = Array.of_list !pseudo in
  let m = Array.length pseudo in
  let best = Array.make (capacity + 1) 0.0 in
  let take = Array.make_matrix m (capacity + 1) false in
  for p = 0 to m - 1 do
    let _, _, w, v = pseudo.(p) in
    for c = capacity downto w do
      let cand = best.(c - w) +. v in
      if cand > best.(c) then begin
        best.(c) <- cand;
        take.(p).(c) <- true
      end
    done
  done;
  let counts = Array.make n 0 in
  let c = ref capacity in
  for p = m - 1 downto 0 do
    if take.(p).(!c) then begin
      let i, copies, w, _ = pseudo.(p) in
      counts.(i) <- counts.(i) + copies;
      c := !c - w
    end
  done;
  (best.(capacity), counts)
