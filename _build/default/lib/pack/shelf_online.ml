module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement

type shelf = { cls : int; base : Q.t; sheight : Q.t; mutable used : Q.t }

type t = {
  r : Q.t;
  mode : [ `Next_fit | `First_fit ];
  mutable top : Q.t;
  mutable shelves : shelf list; (* newest first *)
  mutable items : Placement.item list;
}

let create_mode mode ~r =
  if Q.compare r Q.one <= 0 then invalid_arg "Shelf_online.create: r must be > 1";
  { r; mode; top = Q.zero; shelves = []; items = [] }

let create = create_mode `Next_fit

(* Height class of h: the smallest j (integer, possibly negative) with
   r^j >= h; the shelf height is r^j, so h in (r^{j-1}, r^j]. *)
let class_of t h =
  let rec up j p = if Q.compare p h >= 0 then (j, p) else up (j + 1) (Q.mul p t.r) in
  let rec down j p =
    let p' = Q.div p t.r in
    if Q.compare p' h >= 0 then down (j - 1) p' else (j, p)
  in
  if Q.compare Q.one h >= 0 then down 0 Q.one else up 0 Q.one

let open_shelf t cls sheight =
  let shelf = { cls; base = t.top; sheight; used = Q.zero } in
  t.top <- Q.add t.top sheight;
  t.shelves <- shelf :: t.shelves;
  shelf

let insert t (r : Rect.t) =
  let cls, sheight = class_of t r.Rect.h in
  let fits s = s.cls = cls && Q.compare (Q.add s.used r.Rect.w) Q.one <= 0 in
  let shelf =
    match t.mode with
    | `Next_fit ->
      (* Only the newest shelf of the class is still open. *)
      (match List.find_opt (fun s -> s.cls = cls) t.shelves with
       | Some s when fits s -> s
       | _ -> open_shelf t cls sheight)
    | `First_fit ->
      (match List.find_opt fits (List.rev t.shelves) with
       | Some s -> s
       | None -> open_shelf t cls sheight)
  in
  let pos = { Placement.x = shelf.used; y = shelf.base } in
  shelf.used <- Q.add shelf.used r.Rect.w;
  t.items <- { Placement.rect = r; pos } :: t.items;
  pos

let placement t = Placement.of_items t.items
let height t = t.top

let run mode ~r rects =
  let t = create_mode mode ~r in
  List.iter (fun rect -> ignore (insert t rect)) rects;
  placement t

let next_fit = run `Next_fit
let first_fit = run `First_fit
