module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement

(* A level: base height, height of its tallest (first) rect, used width,
   and placed items (accumulated in reverse). *)
type level = {
  base : Q.t;
  lheight : Q.t;
  mutable used : Q.t;
  mutable contents : Placement.item list;
}

let place_on level (r : Rect.t) =
  let item = { Placement.rect = r; pos = { Placement.x = level.used; y = level.base } } in
  level.used <- Q.add level.used r.Rect.w;
  level.contents <- item :: level.contents

let fits level (r : Rect.t) = Q.compare (Q.add level.used r.Rect.w) Q.one <= 0

(* Generic decreasing-height shelf packer parameterised by the level-choice
   policy. [choose levels r] returns the receiving level or None for a new
   one. Levels are kept in creation order (bottom to top). *)
let shelf_pack ~choose rects =
  let sorted = Rect.sort_by_height_desc rects in
  let levels = ref [] (* reversed: newest first *) in
  let top = ref Q.zero in
  List.iter
    (fun r ->
      match choose (List.rev !levels) r with
      | Some level -> place_on level r
      | None ->
        let level = { base = !top; lheight = r.Rect.h; used = Q.zero; contents = [] } in
        top := Q.add !top r.Rect.h;
        place_on level r;
        levels := level :: !levels)
    sorted;
  Placement.of_items (List.concat_map (fun l -> l.contents) !levels)

let nfdh rects =
  shelf_pack rects ~choose:(fun levels r ->
      match List.rev levels with
      | [] -> None
      | newest :: _ -> if fits newest r then Some newest else None)

let ffdh rects =
  shelf_pack rects ~choose:(fun levels r -> List.find_opt (fun l -> fits l r) levels)

let bfdh rects =
  shelf_pack rects ~choose:(fun levels r ->
      let candidates = List.filter (fun l -> fits l r) levels in
      List.fold_left
        (fun best l ->
          match best with
          | None -> Some l
          | Some b ->
            (* Least residual width after placing wins. *)
            if Q.compare l.used b.used > 0 then Some l else best)
        None candidates)

let nfdh_height rects = Placement.height (nfdh rects)
