(** Skyline bottom-left packing baseline.

    Places rectangles one at a time at the lowest, then leftmost, supported
    position of the current skyline. A practical baseline widely used in
    FPGA placement literature; carries no worst-case guarantee, which is
    exactly why the paper's guaranteed algorithms are interesting to compare
    against it. *)

(** [pack ?order rects] packs in the given order (default: by non-increasing
    height, ties by id). *)
val pack : ?order:(Spp_geom.Rect.t list -> Spp_geom.Rect.t list) -> Spp_geom.Rect.t list -> Spp_geom.Placement.t
