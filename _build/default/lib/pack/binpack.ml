module Q = Spp_num.Rat

type item = { id : int; size : Q.t }

let check_items items =
  List.iter
    (fun it ->
      if Q.sign it.size <= 0 || Q.compare it.size Q.one > 0 then
        invalid_arg (Printf.sprintf "Binpack: item %d size outside (0,1]" it.id))
    items

type bin = { mutable used : Q.t; mutable contents : int list (* reversed *) }

let fits bin it = Q.compare (Q.add bin.used it.size) Q.one <= 0

let add bin it =
  bin.used <- Q.add bin.used it.size;
  bin.contents <- it.id :: bin.contents

let finish bins = List.rev_map (fun b -> List.rev b.contents) !bins

(* Generic online packer: [choose] picks an existing bin or None for new.
   [bins] is kept newest-first. *)
let pack ~choose items =
  check_items items;
  let bins = ref [] in
  List.iter
    (fun it ->
      match choose (List.rev !bins) it with
      | Some bin -> add bin it
      | None ->
        let bin = { used = Q.zero; contents = [] } in
        add bin it;
        bins := bin :: !bins)
    items;
  finish bins

let next_fit items =
  pack items ~choose:(fun bins it ->
      match List.rev bins with
      | [] -> None
      | newest :: _ -> if fits newest it then Some newest else None)

let first_fit items = pack items ~choose:(fun bins it -> List.find_opt (fun b -> fits b it) bins)

let first_fit_decreasing items =
  let sorted =
    List.sort
      (fun a b ->
        let c = Q.compare b.size a.size in
        if c <> 0 then c else compare a.id b.id)
      items
  in
  first_fit sorted

let best_fit items =
  pack items ~choose:(fun bins it ->
      List.fold_left
        (fun best b ->
          if not (fits b it) then best
          else
            match best with
            | None -> Some b
            | Some cur -> if Q.compare b.used cur.used > 0 then Some b else best)
        None bins)

let harmonic ~classes items =
  if classes < 1 then invalid_arg "Binpack.harmonic: classes must be >= 1";
  check_items items;
  (* class_of j: size in (1/(j+1), 1/j] for j < classes; else class
     [classes] (packed next-fit by volume). *)
  let class_of it =
    let rec find j =
      if j >= classes then classes
      else if Q.compare it.size (Q.of_ints 1 (j + 1)) > 0 then j
      else find (j + 1)
    in
    find 1
  in
  (* One open bin per class; class j bins hold exactly j items (j < classes);
     the final class packs next-fit by residual capacity. *)
  let open_bins = Hashtbl.create 8 in
  let closed = ref [] in
  List.iter
    (fun it ->
      let c = class_of it in
      let bin =
        match Hashtbl.find_opt open_bins c with
        | Some b ->
          let full =
            if c < classes then List.length b.contents >= c else not (fits b it)
          in
          if full then begin
            closed := b :: !closed;
            let fresh = { used = Q.zero; contents = [] } in
            Hashtbl.replace open_bins c fresh;
            fresh
          end
          else b
        | None ->
          let fresh = { used = Q.zero; contents = [] } in
          Hashtbl.replace open_bins c fresh;
          fresh
      in
      add bin it)
    items;
  (* Emit closed bins first, then the still-open ones by class. *)
  let open_list =
    List.sort compare (Hashtbl.fold (fun c b acc -> (c, b) :: acc) open_bins [])
  in
  List.rev_map (fun b -> List.rev b.contents) !closed
  @ List.filter_map
      (fun (_, b) -> if b.contents = [] then None else Some (List.rev b.contents))
      open_list

let bins_used bins = List.length bins

let size_lower_bound items =
  let total = List.fold_left (fun acc it -> Q.add acc it.size) Q.zero items in
  Spp_num.Bigint.to_int_exn (Q.ceil total)
