(** Online shelf packing (Csirik–Woeginger style NFS_r / FFS_r).

    The paper cites online strip packing (its reference [7]) as the regime
    dynamic-FPGA operating systems actually face: rectangles arrive one at a
    time and must be placed irrevocably. The shelf family rounds each height
    up to a power of the parameter [r > 1] and keeps shelves per height
    class:

    - {!next_fit}: one active shelf per class; a misfit closes it
      (NFS_r, competitive ratio [r·(2 + 1/(r-1))] → 6.99 at the optimum r);
    - {!first_fit}: all shelves of the class stay open (FFS_r,
      [r·(1.7 + 1/(r-1))]).

    Shelf heights are exact rational powers [r^j] (j ∈ ℤ), so the geometry
    stays exact for any rational [r]. *)

type t

(** [create ~r] with [r > 1].
    @raise Invalid_argument otherwise. *)
val create : r:Spp_num.Rat.t -> t

(** [insert t rect] places the next arriving rectangle and returns its
    position (bottom-left corner). *)
val insert : t -> Spp_geom.Rect.t -> Spp_geom.Placement.pos

(** [placement t] is everything placed so far. *)
val placement : t -> Spp_geom.Placement.t

val height : t -> Spp_num.Rat.t

(** [next_fit ~r rects] / [first_fit ~r rects] run a whole arrival sequence
    (in list order — the online order). *)
val next_fit : r:Spp_num.Rat.t -> Spp_geom.Rect.t list -> Spp_geom.Placement.t

val first_fit : r:Spp_num.Rat.t -> Spp_geom.Rect.t list -> Spp_geom.Placement.t
