module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement

let half = Q.of_ints 1 2

let pack rects =
  let items = ref [] in
  let place (r : Rect.t) x y = items := { Placement.rect = r; pos = { Placement.x; y } } :: !items in
  (* Step 1: stack the wide rectangles (w > 1/2). *)
  let wide, narrow = List.partition (fun (r : Rect.t) -> Q.compare r.Rect.w half > 0) rects in
  let h0 =
    List.fold_left
      (fun y (r : Rect.t) ->
        place r Q.zero y;
        Q.add y r.Rect.h)
      Q.zero wide
  in
  (* Step 2: one full-width level of the tallest narrow rectangles. *)
  let narrow = Rect.sort_by_height_desc narrow in
  let rec fill_level x = function
    | (r : Rect.t) :: rest when Q.compare (Q.add x r.Rect.w) Q.one <= 0 ->
      place r x h0;
      fill_level (Q.add x r.Rect.w) rest
    | rest -> (x, rest)
  in
  let _, rest = fill_level Q.zero narrow in
  (* Tops of the two halves after the first level: the left half rises to
     the level's tallest rect; the right half only to the tallest rect that
     overlaps it (heights decrease rightward, so that is the first such). *)
  let level_rects =
    List.filter (fun (it : Placement.item) -> Q.equal it.pos.Placement.y h0) !items
  in
  let left_top =
    List.fold_left (fun acc (it : Placement.item) -> Q.max acc (Q.add h0 it.rect.Rect.h))
      h0 level_rects
  in
  let right_top =
    List.fold_left
      (fun acc (it : Placement.item) ->
        if Q.compare (Q.add it.pos.Placement.x it.rect.Rect.w) half > 0 then
          Q.max acc (Q.add h0 it.rect.Rect.h)
        else acc)
      h0 level_rects
  in
  (* Step 3: half-width levels, always on the currently lower half. Each
     level is a greedy run of the (height-sorted) remainder. *)
  let rec levels left_top right_top = function
    | [] -> ()
    | (r : Rect.t) :: _ as rest ->
      let base_x, base_y = if Q.compare left_top right_top <= 0 then (Q.zero, left_top) else (half, right_top) in
      let rec run x todo =
        match todo with
        | (r' : Rect.t) :: more when Q.compare (Q.add (Q.sub x base_x) r'.Rect.w) half <= 0 ->
          place r' x base_y;
          run (Q.add x r'.Rect.w) more
        | todo -> todo
      in
      let remaining = run base_x rest in
      let new_top = Q.add base_y r.Rect.h in
      if Q.compare left_top right_top <= 0 then levels new_top right_top remaining
      else levels left_top new_top remaining
  in
  levels left_top right_top rest;
  Placement.of_items !items

let height rects = Placement.height (pack rects)
