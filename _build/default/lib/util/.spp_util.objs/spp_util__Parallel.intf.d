lib/util/parallel.mli:
