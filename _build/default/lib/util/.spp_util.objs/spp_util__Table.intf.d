lib/util/table.mli:
