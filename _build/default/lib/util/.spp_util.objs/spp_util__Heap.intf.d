lib/util/heap.mli:
