lib/util/prng.mli:
