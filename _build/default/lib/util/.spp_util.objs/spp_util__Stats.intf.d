lib/util/stats.mli:
