(** Binary min-heap with a user-supplied ordering.

    Backing store for the discrete-event queue of the FPGA simulator and the
    earliest-release queues used when rounding the APTAS fractional solution
    (Lemma 3.4's greedy column filling). Amortised O(log n) push/pop. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** [peek t] is the minimum element without removing it. *)
val peek : 'a t -> 'a option

(** [pop t] removes and returns the minimum element. *)
val pop : 'a t -> 'a option

(** [pop_exn t] removes and returns the minimum. @raise Not_found if empty. *)
val pop_exn : 'a t -> 'a

(** [of_list ~cmp xs] heapifies [xs] in O(n). *)
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list t] drains a copy of [t] in ascending order (t is not
    modified). *)
val to_sorted_list : 'a t -> 'a list
