(** Deterministic fork-join parallelism over OCaml 5 domains.

    The experiment harness runs many independent (seed, instance) cells;
    this helper fans them out across domains and reassembles results in
    input order, so output is bit-identical to the sequential run. Work
    items must be pure (all packing algorithms here are: they share no
    mutable state across calls). *)

(** [map ?workers f xs] is [List.map f xs] computed on up to [workers]
    domains (default: [Domain.recommended_domain_count ()], capped at 8 and
    at [List.length xs]). Preserves order. The first exception raised by
    any worker is re-raised after all domains join. Falls back to plain
    [List.map] for lists of fewer than 2 elements or [workers <= 1]. *)
val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list

(** [available_workers ()] is the default worker count used by {!map}. *)
val available_workers : unit -> int
