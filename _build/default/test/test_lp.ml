(* Tests for Spp_lp: model construction, exact simplex on hand-solved LPs,
   degenerate/infeasible/unbounded cases, basicness of the optimum, and
   exact-vs-float agreement on random feasible LPs. *)

module Q = Spp_num.Rat
module Model = Spp_lp.Model
module Simplex = Spp_lp.Simplex

let q = Q.of_ints
let qi = Q.of_int

let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

let solve_exact m =
  match Simplex.Exact.solve m with
  | Simplex.Optimal { objective; solution; _ } -> (objective, solution)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_building () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Alcotest.(check int) "two vars" 2 (Model.num_vars m);
  Alcotest.(check string) "name x" "x" (Model.var_name m x);
  Alcotest.(check string) "name y" "y" (Model.var_name m y);
  Model.add_constraint m ~name:"c1" [ (x, qi 1); (y, qi 2) ] Model.Le (qi 10);
  Alcotest.(check int) "one constraint" 1 (Model.num_constraints m);
  Alcotest.check_raises "undeclared var"
    (Invalid_argument "Model: undeclared variable in terms") (fun () ->
      Model.add_constraint m ~name:"bad" [ (5, qi 1) ] Model.Le Q.one)

let test_model_feasibility_check () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.add_constraint m ~name:"c1" [ (x, qi 1); (y, qi 1) ] Model.Le (qi 4);
  Model.add_constraint m ~name:"c2" [ (x, qi 1) ] Model.Ge (qi 1);
  Alcotest.(check bool) "feasible point" true (Model.is_feasible m [| qi 2; qi 1 |]);
  Alcotest.(check bool) "violates c1" false (Model.is_feasible m [| qi 3; qi 2 |]);
  Alcotest.(check bool) "violates c2" false (Model.is_feasible m [| qi 0; qi 1 |]);
  Alcotest.(check bool) "negative var" false (Model.is_feasible m [| qi 2; Q.minus_one |])

(* ------------------------------------------------------------------ *)
(* Exact simplex on hand-checked LPs *)

(* min -x - y  s.t.  x + 2y <= 4,  3x + y <= 6  =>  optimum at (8/5, 6/5),
   objective -14/5. *)
let test_simplex_textbook () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi (-1)); (y, qi (-1)) ];
  Model.add_constraint m ~name:"c1" [ (x, qi 1); (y, qi 2) ] Model.Le (qi 4);
  Model.add_constraint m ~name:"c2" [ (x, qi 3); (y, qi 1) ] Model.Le (qi 6);
  let obj, sol = solve_exact m in
  check_q "objective" (q (-14) 5) obj;
  check_q "x" (q 8 5) sol.(x);
  check_q "y" (q 6 5) sol.(y)

(* Requires phase 1: min x + y s.t. x + y >= 3, x <= 2 => opt 3 (e.g. x=2,y=1). *)
let test_simplex_phase1 () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi 1); (y, qi 1) ];
  Model.add_constraint m ~name:"cover" [ (x, qi 1); (y, qi 1) ] Model.Ge (qi 3);
  Model.add_constraint m ~name:"cap" [ (x, qi 1) ] Model.Le (qi 2);
  let obj, sol = solve_exact m in
  check_q "objective" (qi 3) obj;
  Alcotest.(check bool) "solution feasible" true (Model.is_feasible m sol)

let test_simplex_equality () =
  (* min 2x + 3y s.t. x + y = 5, x - y = 1 => unique point (3,2), obj 12. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi 2); (y, qi 3) ];
  Model.add_constraint m ~name:"e1" [ (x, qi 1); (y, qi 1) ] Model.Eq (qi 5);
  Model.add_constraint m ~name:"e2" [ (x, qi 1); (y, qi (-1)) ] Model.Eq (qi 1);
  let obj, sol = solve_exact m in
  check_q "objective" (qi 12) obj;
  check_q "x" (qi 3) sol.(x);
  check_q "y" (qi 2) sol.(y)

let test_simplex_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  Model.set_objective m [ (x, qi 1) ];
  Model.add_constraint m ~name:"hi" [ (x, qi 1) ] Model.Ge (qi 5);
  Model.add_constraint m ~name:"lo" [ (x, qi 1) ] Model.Le (qi 2);
  (match Simplex.Exact.solve m with
   | Simplex.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_simplex_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi (-1)) ];
  Model.add_constraint m ~name:"c" [ (x, qi 1); (y, qi (-1)) ] Model.Le (qi 1);
  (match Simplex.Exact.solve m with
   | Simplex.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded")

let test_simplex_negative_rhs () =
  (* Constraint with negative rhs exercises row normalisation:
     -x <= -2  <=>  x >= 2. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  Model.set_objective m [ (x, qi 1) ];
  Model.add_constraint m ~name:"c" [ (x, qi (-1)) ] Model.Le (qi (-2)) ;
  let obj, sol = solve_exact m in
  check_q "objective" (qi 2) obj;
  check_q "x" (qi 2) sol.(x)

let test_simplex_degenerate () =
  (* Degenerate vertex at origin with redundant constraints; Bland's rule
     must still terminate. min -x s.t. x <= 0 (twice), x + y <= 2. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi (-1)); (y, qi 0) ];
  Model.add_constraint m ~name:"z1" [ (x, qi 1) ] Model.Le (qi 0);
  Model.add_constraint m ~name:"z2" [ (x, qi 2) ] Model.Le (qi 0);
  Model.add_constraint m ~name:"c" [ (x, qi 1); (y, qi 1) ] Model.Le (qi 2);
  let obj, _sol = solve_exact m in
  check_q "objective" (qi 0) obj

let test_simplex_redundant_equalities () =
  (* Linearly dependent equalities: x + y = 2 duplicated. Phase 1 must drop
     the redundant row rather than loop. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi 1); (y, qi 2) ];
  Model.add_constraint m ~name:"e1" [ (x, qi 1); (y, qi 1) ] Model.Eq (qi 2);
  Model.add_constraint m ~name:"e2" [ (x, qi 2); (y, qi 2) ] Model.Eq (qi 4);
  let obj, sol = solve_exact m in
  check_q "objective" (qi 2) obj;
  check_q "x" (qi 2) sol.(x);
  check_q "y" (qi 0) sol.(y)

let test_simplex_fractional_data () =
  (* Fractional coefficients: min x s.t. (2/3)x >= 5/7 => x = 15/14. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  Model.set_objective m [ (x, qi 1) ];
  Model.add_constraint m ~name:"c" [ (x, q 2 3) ] Model.Ge (q 5 7);
  let obj, _ = solve_exact m in
  check_q "objective" (q 15 14) obj

let test_simplex_beale_cycling () =
  (* Beale's classic example that cycles under Dantzig's rule; Bland's rule
     must terminate at optimum -1/20 (x1=1/25... known optimum z = -1/20). *)
  let m = Model.create () in
  let x1 = Model.add_var m ~name:"x1" in
  let x2 = Model.add_var m ~name:"x2" in
  let x3 = Model.add_var m ~name:"x3" in
  let x4 = Model.add_var m ~name:"x4" in
  Model.set_objective m [ (x1, q (-3) 4); (x2, qi 150); (x3, q (-1) 50); (x4, qi 6) ];
  Model.add_constraint m ~name:"r1"
    [ (x1, q 1 4); (x2, qi (-60)); (x3, q (-1) 25); (x4, qi 9) ] Model.Le (qi 0);
  Model.add_constraint m ~name:"r2"
    [ (x1, q 1 2); (x2, qi (-90)); (x3, q (-1) 50); (x4, qi 3) ] Model.Le (qi 0);
  Model.add_constraint m ~name:"r3" [ (x3, qi 1) ] Model.Le (qi 1);
  let obj, sol = solve_exact m in
  check_q "Beale optimum" (q (-1) 20) obj;
  Alcotest.(check bool) "feasible" true (Model.is_feasible m sol)

let test_simplex_zero_objective () =
  (* Pure feasibility problem. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  Model.add_constraint m ~name:"c" [ (x, qi 1) ] Model.Ge (qi 3);
  let obj, sol = solve_exact m in
  check_q "objective" (qi 0) obj;
  Alcotest.(check bool) "feasible" true (Model.is_feasible m sol)

let test_simplex_duals_textbook () =
  (* min -x - y s.t. x + 2y <= 4, 3x + y <= 6: both constraints tight at the
     optimum; duals solve y1 + 3y2 = -1, 2y1 + y2 = -1 => y1 = -2/5,
     y2 = -1/5; strong duality: y·b = -8/5 - 6/5 = -14/5 = objective. *)
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" in
  let y = Model.add_var m ~name:"y" in
  Model.set_objective m [ (x, qi (-1)); (y, qi (-1)) ];
  Model.add_constraint m ~name:"c1" [ (x, qi 1); (y, qi 2) ] Model.Le (qi 4);
  Model.add_constraint m ~name:"c2" [ (x, qi 3); (y, qi 1) ] Model.Le (qi 6);
  (match Simplex.Exact.solve m with
   | Simplex.Optimal { objective; duals; _ } ->
     check_q "dual c1" (q (-2) 5) duals.(0);
     check_q "dual c2" (q (-1) 5) duals.(1);
     let yb = Q.add (Q.mul duals.(0) (qi 4)) (Q.mul duals.(1) (qi 6)) in
     check_q "strong duality" (Q.to_string objective |> Q.of_string) yb
   | _ -> Alcotest.fail "expected optimal")

let prop_strong_duality =
  (* On random bounded LPs: objective = Σ y_i b_i (strong duality over the
     exact field) — a complete certificate that the dual extraction is
     right. *)
  QCheck.Test.make ~name:"strong duality: objective = y·b" ~count:200
    (QCheck.make ~print:(fun _ -> "lp")
       QCheck.Gen.(
         let* n = int_range 1 4 in
         let* nrows = int_range 1 4 in
         let* rows = list_repeat nrows (pair (list_repeat n (int_range 0 5)) (int_range 1 20)) in
         let* costs = list_repeat n (int_range (-5) 5) in
         return (n, rows, costs)))
    (fun (n, rows, costs) ->
      let m = Model.create () in
      let vars = List.init n (fun i -> Model.add_var m ~name:(Printf.sprintf "x%d" i)) in
      Model.set_objective m (List.map2 (fun v c -> (v, qi c)) vars costs);
      List.iteri
        (fun i (coeffs, rhs) ->
          Model.add_constraint m ~name:(Printf.sprintf "c%d" i)
            (List.map2 (fun v a -> (v, qi a)) vars coeffs)
            Model.Le (qi rhs))
        rows;
      List.iter (fun v -> Model.add_constraint m ~name:"box" [ (v, qi 1) ] Model.Le (qi 50)) vars;
      match Simplex.Exact.solve m with
      | Simplex.Optimal { objective; duals; _ } ->
        let rhs_list = List.map (fun (_, rhs) -> qi rhs) rows @ List.map (fun _ -> qi 50) vars in
        let yb =
          List.fold_left2 (fun acc y b -> Q.add acc (Q.mul y b)) Q.zero
            (Array.to_list duals) rhs_list
        in
        Q.equal objective yb
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Structural properties on random LPs *)

(* Random LPs constructed to be feasible by design: constraints are
   Σ a_ij x_j <= b_i with a, b >= 0 (x = 0 feasible), objective pushes some
   variables up via negative costs, bounded by the box rows we add. *)
let random_bounded_lp_gen =
  QCheck.make
    ~print:(fun (n, rows, costs) ->
      Printf.sprintf "n=%d rows=%d costs=%s" n (List.length rows)
        (String.concat "," (List.map string_of_int costs)))
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* nrows = int_range 1 5 in
      let* rows =
        list_repeat nrows
          (pair (list_repeat n (int_range 0 5)) (int_range 1 20))
      in
      let* costs = list_repeat n (int_range (-5) 5) in
      return (n, rows, costs))

let build_lp (n, rows, costs) =
  let m = Model.create () in
  let vars = List.init n (fun i -> Model.add_var m ~name:(Printf.sprintf "x%d" i)) in
  Model.set_objective m (List.map2 (fun v c -> (v, qi c)) vars costs);
  List.iteri
    (fun i (coeffs, rhs) ->
      Model.add_constraint m ~name:(Printf.sprintf "c%d" i)
        (List.map2 (fun v a -> (v, qi a)) vars coeffs)
        Model.Le (qi rhs))
    rows;
  (* Box: x_j <= 50 keeps every instance bounded. *)
  List.iter (fun v -> Model.add_constraint m ~name:"box" [ (v, qi 1) ] Model.Le (qi 50)) vars;
  m

let prop_optimum_feasible_and_basic =
  QCheck.Test.make ~name:"exact optimum is feasible and basic" ~count:200 random_bounded_lp_gen
    (fun spec ->
      let m = build_lp spec in
      match Simplex.Exact.solve m with
      | Simplex.Optimal { objective; solution; _ } ->
        let nonzeros = Array.fold_left (fun acc x -> if Q.is_zero x then acc else acc + 1) 0 solution in
        Model.is_feasible m solution
        && nonzeros <= Model.num_constraints m
        && Q.equal objective (Model.eval_terms (Model.objective m) solution)
      | Simplex.Infeasible | Simplex.Unbounded -> false)

let prop_exact_matches_float =
  QCheck.Test.make ~name:"exact and float objectives agree" ~count:200 random_bounded_lp_gen
    (fun spec ->
      let m = build_lp spec in
      match (Simplex.Exact.solve m, Simplex.Approx.solve m) with
      | Simplex.Optimal { objective = oe; _ }, Simplex.Optimal { objective = of_; _ } ->
        Float.abs (Q.to_float oe -. of_) < 1e-6 *. (1.0 +. Float.abs of_)
      | Simplex.Infeasible, Simplex.Infeasible | Simplex.Unbounded, Simplex.Unbounded -> true
      | _ -> false)

let prop_optimum_no_better_feasible_corner =
  (* The optimum must not beat any sampled feasible point. *)
  QCheck.Test.make ~name:"optimum dominates sampled feasible points" ~count:100
    random_bounded_lp_gen (fun spec ->
      let m = build_lp spec in
      match Simplex.Exact.solve m with
      | Simplex.Optimal { objective; _ } ->
        (* x = 0 is feasible by construction; objective(0) = 0 >= optimum. *)
        Q.compare objective Q.zero <= 0
        || Q.is_zero objective
      | _ -> false)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_lp"
    [
      ( "model",
        [
          Alcotest.test_case "building" `Quick test_model_building;
          Alcotest.test_case "feasibility check" `Quick test_model_feasibility_check;
        ] );
      ( "simplex-unit",
        [
          Alcotest.test_case "textbook LP" `Quick test_simplex_textbook;
          Alcotest.test_case "phase-1 LP" `Quick test_simplex_phase1;
          Alcotest.test_case "equality constraints" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "redundant equalities" `Quick test_simplex_redundant_equalities;
          Alcotest.test_case "fractional data" `Quick test_simplex_fractional_data;
          Alcotest.test_case "Beale anti-cycling" `Quick test_simplex_beale_cycling;
          Alcotest.test_case "zero objective" `Quick test_simplex_zero_objective;
          Alcotest.test_case "duals (textbook)" `Quick test_simplex_duals_textbook;
        ] );
      ( "simplex-props",
        qt [ prop_optimum_feasible_and_basic; prop_exact_matches_float;
             prop_optimum_no_better_feasible_corner; prop_strong_duality ] );
    ]
