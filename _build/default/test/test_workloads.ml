(* Tests for Spp_workloads: the Figure 1 / Figure 2 adversarial families
   (sizes, bounds, and the properties Lemmas 2.4 / 2.7 assert) and the
   random/domain generators (shape, determinism, constraint compliance). *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag
module Prng = Spp_util.Prng
module I = Spp_core.Instance
module LB = Spp_core.Lower_bounds
module Adversarial = Spp_workloads.Adversarial
module Generators = Spp_workloads.Generators

(* ------------------------------------------------------------------ *)
(* Figure 1 (Lemma 2.4) *)

let test_fig1_size_and_bounds () =
  let k = 4 in
  let inst = Adversarial.fig1 ~k ~eps_den:1000 in
  (* n = 2^{k+1} - 2. *)
  Alcotest.(check int) "n" ((1 lsl (k + 1)) - 2) (I.Prec.size inst);
  let area, f = Adversarial.fig1_bounds inst in
  (* Tall area alone is exactly 1; slivers add O(n*eps). *)
  Alcotest.(check bool) "area close to 1" true
    (Q.compare area Q.one >= 0 && Q.to_float area < 1.2);
  (* Critical path: one tall rect per chain is on the path plus slivers. *)
  Alcotest.(check bool) "F close to 1" true (Q.to_float f < 1.2 && Q.to_float f >= 1.0)

let test_fig1_chain_structure () =
  let inst = Adversarial.fig1 ~k:3 ~eps_den:1000 in
  (* Tall rects have width 1/3; slivers width 1. *)
  let talls, wides =
    List.partition (fun (r : Rect.t) -> Q.compare r.Rect.w Q.one < 0) inst.rects
  in
  Alcotest.(check int) "tall count" 7 (List.length talls);
  Alcotest.(check int) "wide count" 7 (List.length wides);
  List.iter
    (fun (r : Rect.t) ->
      Alcotest.(check string) "tall width" "1/3" (Q.to_string r.Rect.w))
    talls

let test_fig1_forces_log_height () =
  (* The whole point of the family: every algorithm (here DC) needs height
     >= k/2 while both lower bounds stay near 1 — the measured gap grows
     with log n. *)
  let ratio k =
    let inst = Adversarial.fig1 ~k ~eps_den:10000 in
    let h = Q.to_float (Spp_core.Dc.height inst) in
    let lb = Q.to_float (LB.prec inst) in
    h /. lb
  in
  let r3 = ratio 3 and r6 = ratio 6 in
  Alcotest.(check bool) "ratio grows with k" true (r6 > r3 +. 0.5);
  Alcotest.(check bool) "ratio at k=6 exceeds k/2 - 1" true (r6 >= 2.0)

let prop_fig1_valid_instances =
  QCheck.Test.make ~name:"fig1 instances well-formed and DC-packable" ~count:6
    (QCheck.int_range 1 6) (fun k ->
      let inst = Adversarial.fig1 ~k ~eps_den:100 in
      let p, _ = Spp_core.Dc.pack inst in
      Spp_core.Validate.check_prec inst p = [])

(* ------------------------------------------------------------------ *)
(* Figure 2 (Lemma 2.7) *)

let test_fig2_exact_lemma_values () =
  let k = 5 in
  let eps_den = 100 in
  let inst = Adversarial.fig2 ~k ~eps_den in
  let n = 3 * k in
  Alcotest.(check int) "n = 3k" n (I.Prec.size inst);
  (* Lemma 2.7: AREA = n/3 + n*eps, max F = n/3 + 1. *)
  let area = LB.area inst in
  let expected_area = Q.add (Q.of_ints n 3) (Q.of_ints n eps_den) in
  Alcotest.(check string) "AREA = n/3 + n*eps" (Q.to_string expected_area) (Q.to_string area);
  let f = LB.critical_path inst in
  Alcotest.(check string) "F = n/3 + 1" (Q.to_string (Q.add (Q.of_ints n 3) Q.one))
    (Q.to_string f)

let test_fig2_opt_is_n () =
  (* Wide rects cannot share a shelf (w > 1/2) and precede the narrow chain:
     OPT = n. The exact DP confirms on small k. *)
  let k = 2 in
  let inst = Adversarial.fig2 ~k ~eps_den:16 in
  Alcotest.(check string) "OPT = 3k" (string_of_int (3 * k))
    (Q.to_string (Spp_exact.Prec_binpack.min_height inst));
  (* Ratio against the best simple lower bound approaches 3 as k grows. *)
  let inst8 = Adversarial.fig2 ~k:8 ~eps_den:1000 in
  let opt = 3.0 *. 8.0 in
  let lb = Q.to_float (LB.prec inst8) in
  Alcotest.(check bool) "ratio > 2.5" true (opt /. lb > 2.5)

let prop_fig2_algorithm_f_achieves_opt =
  (* On this family the next-fit algorithm is forced into the serial
     packing, which equals OPT: ratio 1 against true OPT but ~3 against the
     simple bounds — exactly the Lemma 2.7 message. *)
  QCheck.Test.make ~name:"fig2: algorithm F matches forced OPT" ~count:6 (QCheck.int_range 1 6)
    (fun k ->
      let inst = Adversarial.fig2 ~k ~eps_den:64 in
      let p, _ = Spp_core.Uniform.next_fit_shelf inst in
      Spp_core.Validate.check_prec inst p = []
      && Q.equal (Spp_geom.Placement.height p) (Q.of_int (3 * k)))

(* ------------------------------------------------------------------ *)
(* Random generators *)

let test_generators_deterministic () =
  let gen seed = Generators.random_prec (Prng.create seed) ~n:20 ~k:8 ~h_den:4 ~shape:`Layered in
  let a = gen 5 and b = gen 5 and c = gen 6 in
  let sig_of (i : I.Prec.t) =
    String.concat ";"
      (List.map (fun (r : Rect.t) -> Q.to_string r.Rect.w ^ "x" ^ Q.to_string r.Rect.h) i.rects)
    ^ "|" ^ String.concat "," (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (Dag.edges i.dag))
  in
  Alcotest.(check string) "same seed, same instance" (sig_of a) (sig_of b);
  Alcotest.(check bool) "different seed differs" true (sig_of a <> sig_of c)

let test_generator_shapes () =
  let rng = Prng.create 1 in
  let chain = Generators.random_prec rng ~n:6 ~k:4 ~h_den:4 ~shape:`Chain in
  Alcotest.(check int) "chain edges" 5 (Dag.num_edges chain.dag);
  Alcotest.(check int) "chain path" 6 (Dag.longest_path_length chain.dag);
  let ind = Generators.random_prec rng ~n:6 ~k:4 ~h_den:4 ~shape:`Independent in
  Alcotest.(check int) "independent edges" 0 (Dag.num_edges ind.dag);
  let fj = Generators.random_prec rng ~n:6 ~k:4 ~h_den:4 ~shape:`Fork_join in
  Alcotest.(check int) "fork-join edges" 8 (Dag.num_edges fj.dag);
  Alcotest.(check int) "fork-join path" 3 (Dag.longest_path_length fj.dag)

let prop_random_prec_well_formed =
  QCheck.Test.make ~name:"random prec instances are packable" ~count:50
    (QCheck.pair (QCheck.int_range 0 10_000) (QCheck.int_range 1 30)) (fun (seed, n) ->
      let inst =
        Generators.random_prec (Prng.create seed) ~n ~k:8 ~h_den:4 ~shape:`Series_parallel
      in
      let p, _ = Spp_core.Dc.pack inst in
      Spp_core.Validate.check_prec inst p = [])

let prop_random_release_constraints =
  QCheck.Test.make ~name:"random release instances satisfy Section 3 assumptions" ~count:50
    (QCheck.int_range 0 10_000) (fun seed ->
      let inst =
        Generators.random_release (Prng.create seed) ~n:20 ~k:4 ~h_den:4 ~r_den:4 ~load:1.5
      in
      List.for_all
        (fun (t : I.Release.task) ->
          Q.compare t.rect.Rect.h Q.one <= 0
          && Q.compare t.rect.Rect.w (Q.of_ints 1 4) >= 0
          && Q.sign t.release >= 0)
        inst.tasks
      &&
      (* Releases non-decreasing in id order (arrival process). *)
      let rec mono = function
        | (a : I.Release.task) :: (b :: _ as rest) ->
          Q.compare a.release b.release <= 0 && mono rest
        | _ -> true
      in
      mono inst.tasks)

let test_bursty_release_shape () =
  let rng = Prng.create 4 in
  let inst =
    Generators.bursty_release rng ~n:12 ~k:4 ~h_den:4 ~r_den:2 ~burst_len:4 ~idle_gap:3.0
  in
  (* Tasks within a burst share a release; bursts are separated. *)
  let releases =
    List.map (fun (t : I.Release.task) -> Q.to_string t.release) inst.tasks
  in
  let distinct = List.sort_uniq compare releases in
  Alcotest.(check int) "three bursts" 3 (List.length distinct);
  (* Each release value occurs exactly burst_len times. *)
  List.iter
    (fun r ->
      Alcotest.(check int) "burst size" 4
        (List.length (List.filter (( = ) r) releases)))
    distinct;
  Alcotest.check_raises "bad burst"
    (Invalid_argument "Generators.bursty_release: burst_len must be >= 1") (fun () ->
      ignore (Generators.bursty_release rng ~n:4 ~k:4 ~h_den:4 ~r_den:2 ~burst_len:0 ~idle_gap:1.0))

let prop_bursty_schedulable =
  QCheck.Test.make ~name:"bursty instances run through APTAS and online scheduler" ~count:20
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Prng.create seed in
      let inst =
        Generators.bursty_release rng ~n:12 ~k:2 ~h_den:4 ~r_den:2 ~burst_len:3 ~idle_gap:2.0
      in
      let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
      let dev = Spp_fpga.Device.make ~columns:2 () in
      let sched =
        Spp_fpga.Online.schedule dev `Earliest (Spp_fpga.Online.arrivals_of_release inst)
      in
      let release id = I.Release.release inst id in
      Spp_core.Validate.check_release inst res.Spp_core.Aptas.placement = []
      && (Spp_fpga.Sim.run ~release sched).Spp_fpga.Sim.violations = [])

(* ------------------------------------------------------------------ *)
(* Domain pipelines *)

let test_jpeg_pipeline_shape () =
  let inst = Generators.jpeg_pipeline ~blocks:4 ~k:8 in
  (* 3 shared stages + 3 per block. *)
  Alcotest.(check int) "n" (3 + (3 * 4)) (I.Prec.size inst);
  (* Colour conversion is the unique root; Huffman the unique sink. *)
  Alcotest.(check int) "single root" 1 (List.length (Dag.roots inst.dag));
  Alcotest.(check int) "single sink" 1 (List.length (Dag.sinks inst.dag));
  (* Critical path: cc -> dct -> quant -> zig -> rle -> huff = 6 nodes. *)
  Alcotest.(check int) "pipeline depth" 6 (Dag.longest_path_length inst.dag);
  let p, _ = Spp_core.Dc.pack inst in
  Alcotest.(check bool) "packable" true (Spp_core.Validate.check_prec inst p = [])

let test_packet_pipeline_shape () =
  let inst = Generators.packet_pipeline ~flows:5 ~k:8 in
  Alcotest.(check int) "n" (1 + (3 * 5)) (I.Prec.size inst);
  Alcotest.(check int) "depth" 4 (Dag.longest_path_length inst.dag);
  Alcotest.(check int) "five roots" 5 (List.length (Dag.roots inst.dag));
  let p, _ = Spp_core.Dc.pack inst in
  Alcotest.(check bool) "packable" true (Spp_core.Validate.check_prec inst p = [])

let test_pipeline_guards () =
  Alcotest.check_raises "jpeg blocks" (Invalid_argument "Generators.jpeg_pipeline: blocks must be >= 1")
    (fun () -> ignore (Generators.jpeg_pipeline ~blocks:0 ~k:8));
  Alcotest.check_raises "jpeg k" (Invalid_argument "Generators.jpeg_pipeline: needs k >= 4")
    (fun () -> ignore (Generators.jpeg_pipeline ~blocks:1 ~k:2))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_workloads"
    [
      ( "figure-1",
        Alcotest.test_case "size and bounds" `Quick test_fig1_size_and_bounds
        :: Alcotest.test_case "chain structure" `Quick test_fig1_chain_structure
        :: Alcotest.test_case "forces log height" `Quick test_fig1_forces_log_height
        :: qt [ prop_fig1_valid_instances ] );
      ( "figure-2",
        Alcotest.test_case "lemma 2.7 values" `Quick test_fig2_exact_lemma_values
        :: Alcotest.test_case "OPT = n" `Quick test_fig2_opt_is_n
        :: qt [ prop_fig2_algorithm_f_achieves_opt ] );
      ( "random",
        Alcotest.test_case "deterministic" `Quick test_generators_deterministic
        :: Alcotest.test_case "shapes" `Quick test_generator_shapes
        :: Alcotest.test_case "bursty shape" `Quick test_bursty_release_shape
        :: qt
             [ prop_random_prec_well_formed; prop_random_release_constraints;
               prop_bursty_schedulable ] );
      ( "pipelines",
        [
          Alcotest.test_case "jpeg shape" `Quick test_jpeg_pipeline_shape;
          Alcotest.test_case "packet shape" `Quick test_packet_pipeline_shape;
          Alcotest.test_case "guards" `Quick test_pipeline_guards;
        ] );
    ]
