(* Cross-module integration tests: full paper pipelines end to end.
   These are the executable versions of the claims in EXPERIMENTS.md. *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module Prng = Spp_util.Prng
module I = Spp_core.Instance
module LB = Spp_core.Lower_bounds
module Validate = Spp_core.Validate
module Generators = Spp_workloads.Generators
module Adversarial = Spp_workloads.Adversarial

(* E2 pipeline: random DAG -> DC -> validate -> theorem bound -> FPGA sim. *)
let test_e2_pipeline_dc_end_to_end () =
  let rng = Prng.create 42 in
  List.iter
    (fun shape ->
      let inst = Generators.random_prec rng ~n:48 ~k:8 ~h_den:4 ~shape in
      let p, _ = Spp_core.Dc.pack inst in
      Alcotest.(check (list string)) "no violations" []
        (List.map (Format.asprintf "%a" Validate.pp_violation) (Validate.check_prec inst p));
      let h = Q.to_float (Placement.height p) in
      Alcotest.(check bool) "theorem 2.3 bound" true (h <= Spp_core.Dc.theorem_2_3_bound inst +. 1e-9);
      (* Down to the simulated device. *)
      let dev = Spp_fpga.Device.make ~columns:8 () in
      let sched = Spp_fpga.Schedule.of_placement ~device:dev p in
      let rep = Spp_fpga.Sim.run ~dag:inst.dag sched in
      Alcotest.(check int) "simulator agrees" 0 (List.length rep.Spp_fpga.Sim.violations))
    [ `Layered; `Series_parallel; `Fork_join; `Chain; `Independent ]

(* E4 pipeline: uniform heights -> F vs exact DP -> ratio <= 3. *)
let test_e4_uniform_ratio_end_to_end () =
  let rng = Prng.create 7 in
  let ratios =
    List.init 20 (fun i ->
        let inst =
          Generators.random_uniform_prec rng ~n:(5 + (i mod 5)) ~k:8 ~shape:`Series_parallel
        in
        let opt = Spp_exact.Prec_binpack.min_height inst in
        let p, _ = Spp_core.Uniform.next_fit_shelf inst in
        Alcotest.(check bool) "valid" true (Validate.check_prec inst p = []);
        Q.to_float (Placement.height p) /. Q.to_float opt)
  in
  List.iter (fun r -> Alcotest.(check bool) "ratio <= 3" true (r <= 3.0 +. 1e-9)) ratios

(* E7 pipeline: release workload -> APTAS -> validate -> compare baseline. *)
let test_e7_aptas_end_to_end () =
  let rng = Prng.create 11 in
  let inst = Generators.random_release rng ~n:16 ~k:2 ~h_den:4 ~r_den:2 ~load:1.2 in
  let res = Spp_core.Aptas.solve ~epsilon:Q.one inst in
  Alcotest.(check (list string)) "aptas valid" []
    (List.map (Format.asprintf "%a" Validate.pp_violation)
       (Validate.check_release inst res.Spp_core.Aptas.placement));
  Alcotest.(check int) "no fallback" 0 res.Spp_core.Aptas.fallback_rects;
  (* Certified accounting of Theorem 3.5's pieces. *)
  Alcotest.(check bool) "occurrences bounded" true
    (res.Spp_core.Aptas.occurrences <= res.Spp_core.Aptas.max_occurrences);
  Alcotest.(check bool) "height <= fractional + occurrences" true
    (Q.compare res.Spp_core.Aptas.height
       (Q.add res.Spp_core.Aptas.fractional_height (Q.of_int res.Spp_core.Aptas.occurrences))
     <= 0);
  Alcotest.(check bool) "lower bound sane" true
    (Q.compare res.Spp_core.Aptas.lower_bound res.Spp_core.Aptas.height <= 0)

(* E9 pipeline: JPEG DAG -> DC -> FPGA simulation with utilisation. *)
let test_e9_jpeg_on_fpga () =
  let inst = Generators.jpeg_pipeline ~blocks:6 ~k:8 in
  let p, _ = Spp_core.Dc.pack inst in
  Alcotest.(check bool) "valid" true (Validate.check_prec inst p = []);
  let dev = Spp_fpga.Device.make ~columns:8 () in
  let sched = Spp_fpga.Schedule.of_placement ~device:dev p in
  let rep = Spp_fpga.Sim.run ~dag:inst.dag sched in
  Alcotest.(check int) "clean execution" 0 (List.length rep.Spp_fpga.Sim.violations);
  Alcotest.(check bool) "utilisation in (0,1]" true
    (rep.Spp_fpga.Sim.utilisation > 0.0 && rep.Spp_fpga.Sim.utilisation <= 1.0);
  Alcotest.(check bool) "gantt renders" true (String.length (Spp_fpga.Sim.gantt sched) > 0)

(* E1 snapshot: the measured fig1 gap at two sizes brackets the log curve. *)
let test_e1_gap_growth () =
  let gap k =
    let inst = Adversarial.fig1 ~k ~eps_den:10000 in
    Q.to_float (Spp_core.Dc.height inst) /. Q.to_float (LB.prec inst)
  in
  let g2 = gap 2 and g5 = gap 5 and g7 = gap 7 in
  Alcotest.(check bool) "monotone growth" true (g2 < g5 && g5 < g7);
  (* Lemma 2.4: any packing needs >= k/2 while bounds stay ~1. *)
  Alcotest.(check bool) "at least k/2" true (g7 >= 3.5 -. 0.5)

(* Cross-check: the approximate (float) LP agrees with the exact one on a
   small APTAS configuration LP. *)
let test_float_lp_agrees_on_config_lp () =
  let tasks =
    List.mapi
      (fun i (wn, hn, rel) ->
        { I.Release.rect = Rect.make ~id:i ~w:(Q.of_ints wn 2) ~h:(Q.of_ints hn 4);
          release = Q.of_ints rel 2 })
      [ (1, 4, 0); (2, 3, 1); (1, 2, 2); (1, 4, 2); (2, 2, 0) ]
  in
  let inst = I.Release.make ~k:2 tasks in
  let sol = Spp_core.Config_lp.solve inst in
  (* Solve the same LP with floats by rebuilding: fractional heights agree. *)
  let integral = Placement.height (Spp_core.List_schedule.release inst) in
  Alcotest.(check bool) "fractional <= integral" true
    (Q.compare sol.Spp_core.Config_lp.fractional_height integral <= 0)

(* Dogfooding determinism: the whole E2 pipeline produces identical heights
   across runs with the same seed. *)
let test_reproducibility () =
  let run () =
    let rng = Prng.create 123 in
    let inst = Generators.random_prec rng ~n:32 ~k:8 ~h_den:4 ~shape:`Layered in
    Q.to_string (Spp_core.Dc.height inst)
  in
  Alcotest.(check string) "same seed, same height" (run ()) (run ())

let () =
  Alcotest.run "spp_integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "E2: DC end to end" `Quick test_e2_pipeline_dc_end_to_end;
          Alcotest.test_case "E4: uniform ratio" `Quick test_e4_uniform_ratio_end_to_end;
          Alcotest.test_case "E7: APTAS end to end" `Quick test_e7_aptas_end_to_end;
          Alcotest.test_case "E9: JPEG on FPGA" `Quick test_e9_jpeg_on_fpga;
          Alcotest.test_case "E1: gap growth" `Quick test_e1_gap_growth;
          Alcotest.test_case "LP cross-check" `Quick test_float_lp_agrees_on_config_lp;
          Alcotest.test_case "reproducibility" `Quick test_reproducibility;
        ] );
    ]
