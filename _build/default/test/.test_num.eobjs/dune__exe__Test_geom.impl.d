test/test_geom.ml: Alcotest Gen List QCheck QCheck_alcotest Spp_geom Spp_num String
