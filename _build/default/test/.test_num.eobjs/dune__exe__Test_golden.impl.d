test/test_golden.ml: Alcotest Filename Format List Spp_core Spp_geom Spp_num
