test/test_dag.ml: Alcotest Fun Hashtbl List Printf QCheck QCheck_alcotest Spp_dag Spp_num
