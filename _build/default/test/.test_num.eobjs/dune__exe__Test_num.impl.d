test/test_num.ml: Alcotest Float List QCheck QCheck_alcotest Spp_num String
