test/test_lp.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Spp_lp Spp_num String
