test/test_core.ml: Alcotest Array List Printf QCheck QCheck_alcotest Spp_core Spp_dag Spp_exact Spp_geom Spp_num Spp_pack Spp_util Spp_workloads
