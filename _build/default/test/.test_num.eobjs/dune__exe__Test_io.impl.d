test/test_io.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Spp_core Spp_dag Spp_geom Spp_num Spp_pack Spp_util Spp_workloads String
