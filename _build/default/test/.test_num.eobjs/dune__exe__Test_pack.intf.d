test/test_pack.mli:
