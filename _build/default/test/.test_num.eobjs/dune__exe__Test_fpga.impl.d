test/test_fpga.ml: Alcotest Array Float Format List Printf QCheck QCheck_alcotest Spp_core Spp_dag Spp_fpga Spp_geom Spp_num Spp_util Spp_workloads String
