test/test_exact.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Spp_core Spp_dag Spp_exact Spp_geom Spp_num
