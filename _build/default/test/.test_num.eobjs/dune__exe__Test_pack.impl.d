test/test_pack.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Spp_geom Spp_num Spp_pack
