(* Tests for Spp_pack: level algorithms (including the NFDH subroutine
   property DC's proof needs), bin packing heuristics, and bottom-left. *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Level = Spp_pack.Level
module Binpack = Spp_pack.Binpack
module Bottom_left = Spp_pack.Bottom_left

let q = Q.of_ints
let rect id wn wd hn hd = Rect.make ~id ~w:(q wn wd) ~h:(q hn hd)

(* Random rect lists with widths i/8 and heights j/4. *)
let rects_gen =
  QCheck.make
    ~print:(fun rs -> Printf.sprintf "%d rects" (List.length rs))
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* specs = list_repeat n (pair (int_range 1 8) (int_range 1 8)) in
      return (List.mapi (fun i (wn, hn) -> Rect.make ~id:i ~w:(q wn 8) ~h:(q hn 4)) specs))

(* ------------------------------------------------------------------ *)
(* Level algorithms *)

let test_nfdh_simple () =
  (* Two half-width rects share the first level; a full-width one opens a
     second. *)
  let rs = [ rect 0 1 2 1 1; rect 1 1 2 1 1; rect 2 1 1 1 2 ] in
  let p = Level.nfdh rs in
  Alcotest.(check bool) "valid" true (Placement.is_valid p);
  Alcotest.(check string) "height" "3/2" (Q.to_string (Placement.height p))

let test_nfdh_closes_level () =
  (* NFDH (next-fit) cannot reuse an earlier level: 0.6, 0.6, 0.3 with equal
     heights -> levels {0.6}, {0.6, 0.3}: height 2. FFDH reuses: also 2 here,
     so use a case separating them: 0.6, 0.5, 0.5, 0.4 (heights 1, 1, 1, 1):
     NFDH: [0.6] [0.5 0.5] [0.4] wait 0.6+0.5>1 close; 0.5+0.5=1 fits; 0.4 new -> 3 levels.
     FFDH: [0.6 0.4 after backfill? 0.6;0.5 no; level1 gets 0.4] -> [0.6,0.4][0.5,0.5] -> 2. *)
  let rs = [ rect 0 3 5 1 1; rect 1 1 2 1 1; rect 2 1 2 1 1; rect 3 2 5 1 1 ] in
  let nf = Placement.height (Level.nfdh rs) in
  let ff = Placement.height (Level.ffdh rs) in
  Alcotest.(check string) "nfdh height" "3" (Q.to_string nf);
  Alcotest.(check string) "ffdh height" "2" (Q.to_string ff)

let test_bfdh_prefers_fullest () =
  (* Levels with residuals 0.4 and 0.3; a 0.3 rect must go to the 0.3 gap
     under best fit. Construct: heights descending so levels form as
     [0.6], [0.7], then 0.3 arrives. BFDH -> joins the 0.7 level. *)
  let rs = [ rect 0 3 5 1 1; rect 1 7 10 9 10; rect 2 3 10 4 5 ] in
  let p = Level.bfdh rs in
  Alcotest.(check bool) "valid" true (Placement.is_valid p);
  (* The 0.3 rect sits beside the 0.7 one (same y). *)
  let y_of id =
    match Placement.find p ~id with Some it -> it.pos.Placement.y | None -> Alcotest.fail "missing"
  in
  Alcotest.(check string) "0.3 beside 0.7" (Q.to_string (y_of 1)) (Q.to_string (y_of 2))

let test_level_empty () =
  Alcotest.(check int) "nfdh empty" 0 (Placement.size (Level.nfdh []));
  Alcotest.(check string) "nfdh_height empty" "0" (Q.to_string (Level.nfdh_height []))

let prop_level_algorithms_valid =
  QCheck.Test.make ~name:"level packings are valid and complete" ~count:200 rects_gen (fun rs ->
      List.for_all
        (fun alg ->
          let p = alg rs in
          Placement.is_valid p && Placement.size p = List.length rs)
        [ Level.nfdh; Level.ffdh; Level.bfdh ])

(* The property Theorem 2.3 needs from the subroutine A. *)
let prop_nfdh_area_bound =
  QCheck.Test.make ~name:"NFDH <= 2*AREA + h_max" ~count:300 rects_gen (fun rs ->
      let h = Level.nfdh_height rs in
      let bound = Q.add (Q.mul_int (Rect.total_area rs) 2) (Rect.max_height rs) in
      Q.compare h bound <= 0)

let prop_ffdh_not_worse_than_nfdh =
  QCheck.Test.make ~name:"FFDH <= NFDH" ~count:200 rects_gen (fun rs ->
      Q.compare (Placement.height (Level.ffdh rs)) (Level.nfdh_height rs) <= 0)

let prop_level_height_at_least_area =
  QCheck.Test.make ~name:"height >= AREA (sanity)" ~count:200 rects_gen (fun rs ->
      Q.compare (Level.nfdh_height rs) (Rect.total_area rs) >= 0)

(* ------------------------------------------------------------------ *)
(* Bin packing *)

let items_of sizes = List.mapi (fun i (n, d) -> { Binpack.id = i; size = q n d }) sizes

let test_binpack_next_fit () =
  let bins = Binpack.next_fit (items_of [ (1, 2); (1, 2); (1, 2) ]) in
  Alcotest.(check int) "bins" 2 (List.length bins);
  Alcotest.(check (list (list int))) "contents" [ [ 0; 1 ]; [ 2 ] ] bins

let test_binpack_first_fit_backfills () =
  (* 0.6, 0.7, 0.35: NF needs a third bin (0.7+0.35 > 1), FF backfills the
     0.35 into bin 0 (0.6+0.35 <= 1). *)
  let items = items_of [ (3, 5); (7, 10); (7, 20) ] in
  Alcotest.(check int) "next_fit" 3 (List.length (Binpack.next_fit items));
  let ff = Binpack.first_fit items in
  Alcotest.(check int) "first_fit" 2 (List.length ff);
  Alcotest.(check (list (list int))) "ff contents" [ [ 0; 2 ]; [ 1 ] ] ff

let test_binpack_ffd () =
  (* Classic FFD win: sizes 0.5,0.5,0.4,0.4,0.3,0.3,0.3 -> FFD gives 3 bins? wait
     sum = 2.7; FFD: [0.5 0.5][0.4 0.4][0.3 0.3 0.3] -> wait 0.5+0.5=1.0 ok -> 3 bins. *)
  let items = items_of [ (1, 2); (1, 2); (2, 5); (2, 5); (3, 10); (3, 10); (3, 10) ] in
  Alcotest.(check int) "ffd bins" 3 (List.length (Binpack.first_fit_decreasing items))

let test_binpack_best_fit () =
  (* Bins at 0.6 and 0.7 full; 0.3 goes to the fuller (0.7) one under BF. *)
  let items = items_of [ (3, 5); (7, 10); (3, 10) ] in
  let bf = Binpack.best_fit items in
  Alcotest.(check (list (list int))) "bf contents" [ [ 0 ]; [ 1; 2 ] ] bf

let test_binpack_harmonic () =
  (* classes = 3: sizes 0.6 (class 1), 0.4 (class 2), 0.3 (class 3+rest).
     Class-2 bins take two items each; class-1 one each. *)
  let items = items_of [ (3, 5); (2, 5); (2, 5); (2, 5); (3, 10); (3, 10) ] in
  let bins = Binpack.harmonic ~classes:3 items in
  (* item 0 alone; items 1,2 pair; item 3 alone (open); 4,5 via next fit. *)
  Alcotest.(check int) "bins" 4 (List.length bins);
  Alcotest.(check bool) "pair bin exists" true (List.exists (fun b -> b = [ 1; 2 ]) bins);
  Alcotest.check_raises "bad classes" (Invalid_argument "Binpack.harmonic: classes must be >= 1")
    (fun () -> ignore (Binpack.harmonic ~classes:0 items))

let test_binpack_rejects_bad_size () =
  Alcotest.check_raises "zero size" (Invalid_argument "Binpack: item 0 size outside (0,1]")
    (fun () -> ignore (Binpack.next_fit [ { Binpack.id = 0; size = Q.zero } ]))

let sizes_gen =
  QCheck.make
    ~print:(fun l -> string_of_int (List.length l))
    QCheck.Gen.(
      let* n = int_range 1 30 in
      let* specs = list_repeat n (int_range 1 8) in
      return (List.mapi (fun i v -> { Binpack.id = i; size = q v 8 }) specs))

let prop_binpack_bins_respect_capacity =
  QCheck.Test.make ~name:"bins never exceed capacity; items conserved" ~count:300 sizes_gen
    (fun items ->
      List.for_all
        (fun alg ->
          let bins = alg items in
          let size_of id = (List.find (fun it -> it.Binpack.id = id) items).Binpack.size in
          let ok_cap =
            List.for_all
              (fun bin ->
                Q.compare (List.fold_left (fun a id -> Q.add a (size_of id)) Q.zero bin) Q.one <= 0)
              bins
          in
          let all = List.sort compare (List.concat bins) in
          ok_cap && all = List.init (List.length items) Fun.id)
        [ Binpack.next_fit; Binpack.first_fit; Binpack.first_fit_decreasing; Binpack.best_fit;
          Binpack.harmonic ~classes:4; Binpack.harmonic ~classes:1 ])

let prop_ffd_within_2x_lower_bound =
  (* Weak but meaningful: FFD <= 2 * ceil(total size) on these inputs. *)
  QCheck.Test.make ~name:"FFD within 2x the size bound" ~count:300 sizes_gen (fun items ->
      let bins = List.length (Binpack.first_fit_decreasing items) in
      bins <= max 1 (2 * Binpack.size_lower_bound items))

(* ------------------------------------------------------------------ *)
(* Knapsack *)

let test_knapsack_basic () =
  let items =
    [ { Spp_pack.Knapsack.weight = 3; value = 4.0; bound = 1 };
      { Spp_pack.Knapsack.weight = 4; value = 5.0; bound = 1 };
      { Spp_pack.Knapsack.weight = 2; value = 3.0; bound = 1 } ]
  in
  let v, counts = Spp_pack.Knapsack.solve ~capacity:7 items in
  (* Best: items 1+2 (weight 6, value 8) vs 0+2 (5, 7) vs 0+1 (7, 9). *)
  Alcotest.(check (float 1e-9)) "value" 9.0 v;
  Alcotest.(check (array int)) "counts" [| 1; 1; 0 |] counts

let test_knapsack_bounded_copies () =
  let items = [ { Spp_pack.Knapsack.weight = 2; value = 3.0; bound = 2 } ] in
  let v, counts = Spp_pack.Knapsack.solve ~capacity:10 items in
  Alcotest.(check (float 1e-9)) "respects bound" 6.0 v;
  Alcotest.(check (array int)) "two copies" [| 2 |] counts

let test_knapsack_edges () =
  let v, counts = Spp_pack.Knapsack.solve ~capacity:0 [ { Spp_pack.Knapsack.weight = 1; value = 1.0; bound = 5 } ] in
  Alcotest.(check (float 1e-9)) "zero capacity" 0.0 v;
  Alcotest.(check (array int)) "nothing taken" [| 0 |] counts;
  let v2, _ = Spp_pack.Knapsack.solve ~capacity:5 [] in
  Alcotest.(check (float 1e-9)) "no items" 0.0 v2;
  Alcotest.check_raises "bad weight" (Invalid_argument "Knapsack.solve: non-positive weight")
    (fun () -> ignore (Spp_pack.Knapsack.solve ~capacity:3 [ { Spp_pack.Knapsack.weight = 0; value = 1.0; bound = 1 } ]))

let prop_knapsack_vs_bruteforce =
  (* Exhaustive check against brute force on small instances. *)
  QCheck.Test.make ~name:"knapsack matches brute force" ~count:300
    QCheck.(
      pair (int_range 0 12)
        (list_of_size Gen.(int_range 1 4)
           (triple (int_range 1 6) (int_range 0 8) (int_range 0 3))))
    (fun (capacity, specs) ->
      let items =
        List.map
          (fun (w, v, b) -> { Spp_pack.Knapsack.weight = w; value = float_of_int v; bound = b })
          specs
      in
      let v, counts = Spp_pack.Knapsack.solve ~capacity items in
      (* Solution must be feasible and match its claimed value. *)
      let arr = Array.of_list items in
      let used = ref 0 and got = ref 0.0 in
      Array.iteri
        (fun i c ->
          used := !used + (c * arr.(i).Spp_pack.Knapsack.weight);
          got := !got +. (float_of_int c *. arr.(i).Spp_pack.Knapsack.value))
        counts;
      let feasible =
        !used <= capacity
        && Array.for_all Fun.id (Array.mapi (fun i c -> c <= arr.(i).Spp_pack.Knapsack.bound && c >= 0) counts)
      in
      (* Brute force over all count vectors. *)
      let rec best i weight value =
        if i = Array.length arr then (if weight <= capacity then value else neg_infinity)
        else begin
          let it = arr.(i) in
          let acc = ref neg_infinity in
          for c = 0 to it.Spp_pack.Knapsack.bound do
            let w = weight + (c * it.Spp_pack.Knapsack.weight) in
            if w <= capacity then
              acc := Float.max !acc (best (i + 1) w (value +. (float_of_int c *. it.Spp_pack.Knapsack.value)))
          done;
          !acc
        end
      in
      let opt = Float.max 0.0 (best 0 0 0.0) in
      feasible && Float.abs (v -. opt) < 1e-9 && Float.abs (!got -. v) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Sleator *)

let test_sleator_wide_stack () =
  (* Two wide rects must stack; a narrow one starts the first level above. *)
  let rs = [ rect 0 3 4 1 1; rect 1 2 3 1 2; rect 2 1 4 1 1 ] in
  let p = Spp_pack.Sleator.pack rs in
  Alcotest.(check bool) "valid" true (Placement.is_valid p);
  (match Placement.find p ~id:2 with
   | Some it -> Alcotest.(check string) "narrow above stack" "3/2" (Q.to_string it.pos.Placement.y)
   | None -> Alcotest.fail "missing");
  Alcotest.(check string) "height" "5/2" (Q.to_string (Placement.height p))

let test_sleator_two_halves () =
  (* After the first level, halves are filled lowest-first. Four 1/2-wide
     unit squares: level [0,1) holds two, then one per half at y=1: h=2. *)
  let rs = List.init 6 (fun i -> rect i 1 2 1 1) in
  let p = Spp_pack.Sleator.pack rs in
  Alcotest.(check bool) "valid" true (Placement.is_valid p);
  Alcotest.(check string) "height 3" "3" (Q.to_string (Placement.height p))

let prop_sleator_valid =
  QCheck.Test.make ~name:"Sleator packings are valid and complete" ~count:300 rects_gen
    (fun rs ->
      let p = Spp_pack.Sleator.pack rs in
      Placement.is_valid p && Placement.size p = List.length rs)

let prop_sleator_subroutine_property =
  (* The property DC needs from its subroutine A; implied by Sleator's
     2.5-approximation analysis. *)
  QCheck.Test.make ~name:"Sleator <= 2*AREA + h_max" ~count:300 rects_gen (fun rs ->
      let bound = Q.add (Q.mul_int (Rect.total_area rs) 2) (Rect.max_height rs) in
      Q.compare (Spp_pack.Sleator.height rs) bound <= 0)

(* ------------------------------------------------------------------ *)
(* Online shelf algorithms *)

let test_shelf_online_classes () =
  let t = Spp_pack.Shelf_online.create ~r:Q.two in
  (* Heights 1, 3/4, 1/2 -> classes r^0, r^0, r^-1. *)
  let p1 = Spp_pack.Shelf_online.insert t (rect 0 1 4 1 1) in
  let p2 = Spp_pack.Shelf_online.insert t (rect 1 1 4 3 4) in
  let p3 = Spp_pack.Shelf_online.insert t (rect 2 1 4 1 2) in
  Alcotest.(check string) "same shelf y" (Q.to_string p1.Placement.y) (Q.to_string p2.Placement.y);
  Alcotest.(check string) "second beside first" "1/4" (Q.to_string p2.Placement.x);
  Alcotest.(check string) "new class above" "1" (Q.to_string p3.Placement.y);
  (* Shelf for class 0 has height r^0 = 1; class -1 shelf height 1/2. *)
  Alcotest.(check string) "total height" "3/2" (Q.to_string (Spp_pack.Shelf_online.height t))

let test_shelf_online_next_vs_first () =
  (* Arrival order chosen so next-fit closes a shelf that first-fit reuses:
     w = 0.6, 0.7, 0.35 with equal heights — the 0.35 fits neither the
     newest shelf (0.7) nor, for next-fit, any older one. *)
  let rs = [ rect 0 3 5 1 1; rect 1 7 10 1 1; rect 2 7 20 1 1 ] in
  let nf = Placement.height (Spp_pack.Shelf_online.next_fit ~r:Q.two rs) in
  let ff = Placement.height (Spp_pack.Shelf_online.first_fit ~r:Q.two rs) in
  Alcotest.(check string) "next fit" "3" (Q.to_string nf);
  Alcotest.(check string) "first fit" "2" (Q.to_string ff)

let test_shelf_online_bad_r () =
  Alcotest.check_raises "r = 1 rejected" (Invalid_argument "Shelf_online.create: r must be > 1")
    (fun () -> ignore (Spp_pack.Shelf_online.create ~r:Q.one))

let prop_shelf_online_valid =
  QCheck.Test.make ~name:"online shelf packings are valid (both modes, r in {3/2, 2})" ~count:200
    rects_gen (fun rs ->
      List.for_all
        (fun r ->
          List.for_all
            (fun alg ->
              let p = alg ~r rs in
              Placement.is_valid p && Placement.size p = List.length rs)
            [ Spp_pack.Shelf_online.next_fit; Spp_pack.Shelf_online.first_fit ])
        [ q 3 2; Q.two ])

let prop_shelf_online_never_better_than_offline_bound =
  (* Online must pay something: it is never better than the height of the
     tallest rect, and shelf rounding wastes at most a factor r in height
     classes — sanity-check height <= r * (2*AREA + h_max) for r = 2. *)
  QCheck.Test.make ~name:"online shelf height within r*(2*AREA + h_max)" ~count:200 rects_gen
    (fun rs ->
      let p = Spp_pack.Shelf_online.first_fit ~r:Q.two rs in
      let bound = Q.mul Q.two (Q.add (Q.mul_int (Rect.total_area rs) 2) (Rect.max_height rs)) in
      Q.compare (Placement.height p) bound <= 0)

(* ------------------------------------------------------------------ *)
(* Bottom-left *)

let prop_bottom_left_valid =
  QCheck.Test.make ~name:"bottom-left packings are valid" ~count:200 rects_gen (fun rs ->
      let p = Bottom_left.pack rs in
      Placement.is_valid p && Placement.size p = List.length rs)

let test_bottom_left_backfills () =
  (* Placement order (height desc) is 0 (h=2), 2 (h=3/2), 1 (h=1): the
     narrow rect 2 drops into the ground-level gap beside rect 0 before the
     full-width rect 1 seals the contour. *)
  let rs = [ rect 0 1 2 2 1; rect 1 1 1 1 1; rect 2 1 4 3 2 ] in
  let p = Bottom_left.pack rs in
  (match Placement.find p ~id:2 with
   | Some it ->
     Alcotest.(check string) "backfilled x" "1/2" (Q.to_string it.pos.Placement.x);
     Alcotest.(check string) "backfilled y" "0" (Q.to_string it.pos.Placement.y)
   | None -> Alcotest.fail "missing rect");
  Alcotest.(check bool) "valid" true (Placement.is_valid p)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_pack"
    [
      ( "level",
        Alcotest.test_case "nfdh simple" `Quick test_nfdh_simple
        :: Alcotest.test_case "nfdh vs ffdh" `Quick test_nfdh_closes_level
        :: Alcotest.test_case "bfdh best fit" `Quick test_bfdh_prefers_fullest
        :: Alcotest.test_case "empty input" `Quick test_level_empty
        :: qt
             [
               prop_level_algorithms_valid;
               prop_nfdh_area_bound;
               prop_ffdh_not_worse_than_nfdh;
               prop_level_height_at_least_area;
             ] );
      ( "binpack",
        Alcotest.test_case "next fit" `Quick test_binpack_next_fit
        :: Alcotest.test_case "first fit backfills" `Quick test_binpack_first_fit_backfills
        :: Alcotest.test_case "ffd" `Quick test_binpack_ffd
        :: Alcotest.test_case "best fit" `Quick test_binpack_best_fit
        :: Alcotest.test_case "harmonic" `Quick test_binpack_harmonic
        :: Alcotest.test_case "rejects bad size" `Quick test_binpack_rejects_bad_size
        :: qt [ prop_binpack_bins_respect_capacity; prop_ffd_within_2x_lower_bound ] );
      ( "knapsack",
        Alcotest.test_case "basic" `Quick test_knapsack_basic
        :: Alcotest.test_case "bounded copies" `Quick test_knapsack_bounded_copies
        :: Alcotest.test_case "edges" `Quick test_knapsack_edges
        :: qt [ prop_knapsack_vs_bruteforce ] );
      ( "sleator",
        Alcotest.test_case "wide stack" `Quick test_sleator_wide_stack
        :: Alcotest.test_case "two halves" `Quick test_sleator_two_halves
        :: qt [ prop_sleator_valid; prop_sleator_subroutine_property ] );
      ( "shelf-online",
        Alcotest.test_case "height classes" `Quick test_shelf_online_classes
        :: Alcotest.test_case "next vs first fit" `Quick test_shelf_online_next_vs_first
        :: Alcotest.test_case "bad r" `Quick test_shelf_online_bad_r
        :: qt [ prop_shelf_online_valid; prop_shelf_online_never_better_than_offline_bound ] );
      ( "bottom-left",
        Alcotest.test_case "backfills gaps" `Quick test_bottom_left_backfills
        :: qt [ prop_bottom_left_valid ] );
    ]
