(* Tests for Spp_fpga: device/schedule construction, the exact
   placement-to-columns conversion, and the discrete-event simulator as an
   independent validator (conflicts, reconfiguration gaps, precedence,
   releases, utilisation accounting). *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag
module Device = Spp_fpga.Device
module Schedule = Spp_fpga.Schedule
module Sim = Spp_fpga.Sim

let q = Q.of_ints
let rect id wn wd hn hd = Rect.make ~id ~w:(q wn wd) ~h:(q hn hd)
let item r x y = { Placement.rect = r; pos = { Placement.x; y } }

let dev4 () = Device.make ~columns:4 ()

let task id col_lo col_count start duration = { Schedule.id; col_lo; col_count; start; duration }

(* ------------------------------------------------------------------ *)
(* Device and Schedule *)

let test_device_validation () =
  Alcotest.check_raises "zero columns" (Invalid_argument "Device.make: columns must be >= 1")
    (fun () -> ignore (Device.make ~columns:0 ()));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Device.make: negative reconfiguration delay") (fun () ->
      ignore (Device.make ~columns:2 ~reconfig_delay:Q.minus_one ()))

let test_of_placement_exact () =
  let p = Placement.of_items [ item (rect 0 1 2 1 1) (q 1 4) Q.zero ] in
  let s = Schedule.of_placement ~device:(dev4 ()) p in
  (match s.Schedule.tasks with
   | [ t ] ->
     Alcotest.(check int) "col_lo" 1 t.Schedule.col_lo;
     Alcotest.(check int) "col_count" 2 t.Schedule.col_count
   | _ -> Alcotest.fail "one task expected");
  Alcotest.(check string) "makespan" "1" (Q.to_string (Schedule.makespan s))

let test_of_placement_rejects_misaligned () =
  let p = Placement.of_items [ item (rect 0 1 2 1 1) (q 1 3) Q.zero ] in
  (try
     ignore (Schedule.of_placement ~device:(dev4 ()) p);
     Alcotest.fail "expected rejection"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions alignment" true
       (String.length msg > 0 && String.sub msg 0 8 = "Schedule"))

let test_roundtrip_placement () =
  let p =
    Placement.of_items
      [ item (rect 0 1 2 1 1) Q.zero Q.zero; item (rect 1 1 4 1 2) (q 1 2) Q.zero ]
  in
  let s = Schedule.of_placement ~device:(dev4 ()) p in
  let p' = Schedule.to_placement s in
  Alcotest.(check bool) "valid after roundtrip" true (Placement.is_valid p');
  Alcotest.(check string) "height preserved" (Q.to_string (Placement.height p))
    (Q.to_string (Placement.height p'))

(* ------------------------------------------------------------------ *)
(* Simulator *)

let test_sim_clean_run () =
  let sched =
    { Schedule.device = dev4 ();
      tasks = [ task 0 0 2 Q.zero Q.one; task 1 2 2 Q.zero (q 1 2); task 2 0 4 Q.one Q.one ] }
  in
  let rep = Sim.run sched in
  Alcotest.(check (list string)) "no violations" []
    (List.map (Format.asprintf "%a" Sim.pp_violation) rep.Sim.violations);
  Alcotest.(check string) "makespan" "2" (Q.to_string rep.Sim.makespan);
  (* busy: cols 0,1 = 1 + 1 = 2; cols 2,3 = 1/2 + 1 = 3/2; util = 7/16. *)
  Alcotest.(check string) "busy col0" "2" (Q.to_string rep.Sim.busy.(0));
  Alcotest.(check string) "busy col3" "3/2" (Q.to_string rep.Sim.busy.(3));
  Alcotest.(check (float 1e-9)) "utilisation" 0.875 rep.Sim.utilisation;
  Alcotest.(check int) "reconfigurations" 8 rep.Sim.reconfigurations

let test_sim_detects_conflict () =
  let sched =
    { Schedule.device = dev4 (); tasks = [ task 0 0 2 Q.zero Q.one; task 1 1 2 (q 1 2) Q.one ] }
  in
  let rep = Sim.run sched in
  (match rep.Sim.violations with
   | [ Sim.Column_conflict (0, 1, 1) ] -> ()
   | v -> Alcotest.failf "expected conflict on column 1, got %d violations" (List.length v))

let test_sim_touching_intervals_ok () =
  (* Back-to-back on the same column with zero delay is legal. *)
  let sched =
    { Schedule.device = dev4 (); tasks = [ task 0 0 2 Q.zero Q.one; task 1 0 2 Q.one Q.one ] }
  in
  Alcotest.(check int) "no violations" 0 (List.length (Sim.run sched).Sim.violations)

let test_sim_reconfig_delay () =
  let dev = Device.make ~columns:4 ~reconfig_delay:(q 1 4) () in
  let sched =
    { Schedule.device = dev; tasks = [ task 0 0 2 Q.zero Q.one; task 1 0 2 Q.one Q.one ] }
  in
  let rep = Sim.run sched in
  (match rep.Sim.violations with
   | Sim.Reconfig_too_fast (0, 1, 0) :: _ -> ()
   | _ -> Alcotest.fail "expected reconfig violation");
  (* With a gap >= delay it passes. *)
  let sched_ok =
    { Schedule.device = dev; tasks = [ task 0 0 2 Q.zero Q.one; task 1 0 2 (q 5 4) Q.one ] }
  in
  Alcotest.(check int) "gap accepted" 0 (List.length (Sim.run sched_ok).Sim.violations)

let test_sim_precedence_and_release () =
  let dag = Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[ (0, 1) ] in
  let sched =
    { Schedule.device = dev4 (); tasks = [ task 0 0 2 Q.zero Q.one; task 1 2 2 (q 1 2) Q.one ] }
  in
  let rep = Sim.run ~dag sched in
  (match rep.Sim.violations with
   | [ Sim.Precedence_violated (0, 1) ] -> ()
   | _ -> Alcotest.fail "expected precedence violation");
  let rel = function 0 -> Q.zero | _ -> Q.one in
  let rep2 = Sim.run ~release:rel sched in
  (match rep2.Sim.violations with
   | [ Sim.Released_early 1 ] -> ()
   | _ -> Alcotest.fail "expected early release violation")

let test_sim_serial_reconfig_port () =
  let dev = Device.make ~columns:4 ~reconfig_delay:(q 1 2) ~serial_reconfig:true () in
  (* Two tasks starting together on disjoint columns: reconfiguration
     windows [-1/2, 0) coincide -> port contention. *)
  let sched =
    { Schedule.device = dev; tasks = [ task 0 0 2 Q.one Q.one; task 1 2 2 Q.one Q.one ] }
  in
  let rep = Sim.run sched in
  (match List.filter (function Sim.Reconfig_port_busy _ -> true | _ -> false) rep.Sim.violations with
   | [ Sim.Reconfig_port_busy (0, 1) ] -> ()
   | _ -> Alcotest.fail "expected port contention");
  (* Staggered by the delay: fine. *)
  let ok =
    { Schedule.device = dev; tasks = [ task 0 0 2 Q.one Q.one; task 1 2 2 (q 3 2) Q.one ] }
  in
  Alcotest.(check int) "staggered accepted" 0 (List.length (Sim.run ok).Sim.violations);
  (* Without the serial flag the same schedule passes. *)
  let dev_par = Device.make ~columns:4 ~reconfig_delay:(q 1 2) () in
  let sched_par = { sched with Schedule.device = dev_par } in
  Alcotest.(check int) "parallel port accepted" 0 (List.length (Sim.run sched_par).Sim.violations)

let test_gantt_renders () =
  let sched =
    { Schedule.device = dev4 (); tasks = [ task 0 0 2 Q.zero Q.one; task 1 2 2 Q.zero Q.one ] }
  in
  let g = Sim.gantt sched in
  Alcotest.(check bool) "mentions col00" true (String.length g > 0 && String.sub g 0 5 = "col00");
  Alcotest.(check bool) "task A drawn" true (String.contains g 'A');
  Alcotest.(check bool) "task B drawn" true (String.contains g 'B');
  Alcotest.(check string) "empty schedule" ""
    (Sim.gantt { Schedule.device = dev4 (); tasks = [] })

(* ------------------------------------------------------------------ *)
(* Online scheduler *)

module Online = Spp_fpga.Online

let arrival id columns duration release = { Online.id; columns; duration; release }

let test_online_parallel_when_free () =
  (* Two 2-column tasks fit side by side on a 4-column device. *)
  let sched =
    Online.schedule (dev4 ()) `Earliest
      [ arrival 0 2 Q.one Q.zero; arrival 1 2 Q.one Q.zero ]
  in
  Alcotest.(check string) "makespan" "1" (Q.to_string (Schedule.makespan sched));
  Alcotest.(check int) "no violations" 0 (List.length (Sim.run sched).Sim.violations)

let test_online_waits_for_columns () =
  (* A 3-column task after a 2-column one must wait on a 4-column device
     under both policies only if columns overlap; Earliest uses cols 2-3 is
     impossible (needs 3), so it waits until t=1. *)
  let sched =
    Online.schedule (dev4 ()) `Earliest
      [ arrival 0 2 Q.one Q.zero; arrival 1 3 Q.one Q.zero ]
  in
  (match List.find_opt (fun (t : Schedule.task) -> t.Schedule.id = 1) sched.Schedule.tasks with
   | Some t -> Alcotest.(check string) "starts at 1" "1" (Q.to_string t.Schedule.start)
   | None -> Alcotest.fail "missing task");
  Alcotest.(check int) "clean" 0 (List.length (Sim.run sched).Sim.violations)

let test_online_respects_release () =
  let sched = Online.schedule (dev4 ()) `Earliest [ arrival 0 1 Q.one (q 5 2) ] in
  (match sched.Schedule.tasks with
   | [ t ] -> Alcotest.(check string) "start = release" "5/2" (Q.to_string t.Schedule.start)
   | _ -> Alcotest.fail "one task");
  let rel = function _ -> q 5 2 in
  Alcotest.(check int) "sim agrees" 0 (List.length (Sim.run ~release:rel sched).Sim.violations)

let test_online_leftmost_vs_earliest () =
  (* After a long task on cols 0-1, a 1-column task: Leftmost queues behind
     col 0; Earliest uses col 2 immediately. *)
  let arrivals = [ arrival 0 2 (Q.of_int 4) Q.zero; arrival 1 1 Q.one Q.zero ] in
  let start_of policy =
    let sched = Online.schedule (dev4 ()) policy arrivals in
    (List.find (fun (t : Schedule.task) -> t.Schedule.id = 1) sched.Schedule.tasks).Schedule.start
  in
  Alcotest.(check string) "earliest starts now" "0" (Q.to_string (start_of `Earliest));
  Alcotest.(check string) "leftmost waits" "4" (Q.to_string (start_of `Leftmost))

let test_waiting_times () =
  let sched =
    { Schedule.device = dev4 ();
      tasks = [ task 0 0 2 Q.one Q.one; task 1 2 2 (q 5 2) Q.one ] }
  in
  let release = function 0 -> Q.one | _ -> Q.two in
  let waits = List.sort compare (Sim.waiting_times ~release sched) in
  (match waits with
   | [ (0, w0); (1, w1) ] ->
     Alcotest.(check string) "task 0 no wait" "0" (Q.to_string w0);
     Alcotest.(check string) "task 1 waits 1/2" "1/2" (Q.to_string w1)
   | _ -> Alcotest.fail "two waits expected");
  Alcotest.(check (float 1e-9)) "mean" 0.25 (Sim.mean_wait ~release sched);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0
    (Sim.mean_wait ~release { Schedule.device = dev4 (); tasks = [] })

let test_online_guards () =
  Alcotest.check_raises "too many columns"
    (Invalid_argument "Online.schedule: task 0 needs 9 of 4 columns") (fun () ->
      ignore (Online.schedule (dev4 ()) `Earliest [ arrival 0 9 Q.one Q.zero ]))

let test_arrivals_of_release () =
  let inst =
    Spp_core.Instance.Release.make ~k:4
      [ { Spp_core.Instance.Release.rect = rect 0 1 2 1 1; release = q 3 2 } ]
  in
  (match Online.arrivals_of_release inst with
   | [ a ] ->
     Alcotest.(check int) "columns" 2 a.Online.columns;
     Alcotest.(check string) "release" "3/2" (Q.to_string a.Online.release)
   | _ -> Alcotest.fail "one arrival")

let prop_online_schedules_clean =
  QCheck.Test.make ~name:"online schedules execute cleanly and respect releases" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let inst =
        Spp_workloads.Generators.random_release rng ~n:20 ~k:4 ~h_den:4 ~r_den:2 ~load:1.5
      in
      let arrivals = Online.arrivals_of_release inst in
      let release id = Spp_core.Instance.Release.release inst id in
      List.for_all
        (fun policy ->
          let sched = Online.schedule (Device.make ~columns:4 ()) policy arrivals in
          (Sim.run ~release sched).Sim.violations = [])
        [ `Earliest; `Leftmost ])

let prop_busy_accounting =
  (* Conservation: per-column busy time summed over the device equals the
     total column-area of the tasks (cols x duration), and utilisation is
     exactly that over K x makespan. *)
  QCheck.Test.make ~name:"simulator busy time equals task column-area" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Spp_util.Prng.create seed in
      let inst =
        Spp_workloads.Generators.random_release rng ~n:15 ~k:4 ~h_den:4 ~r_den:2 ~load:1.0
      in
      let dev = Device.make ~columns:4 () in
      let sched =
        Spp_fpga.Online.schedule dev `Earliest (Spp_fpga.Online.arrivals_of_release inst)
      in
      let rep = Sim.run sched in
      let total_busy = Array.fold_left Q.add Q.zero rep.Sim.busy in
      let task_area =
        List.fold_left
          (fun acc (t : Schedule.task) ->
            Q.add acc (Q.mul_int t.Schedule.duration t.Schedule.col_count))
          Q.zero sched.Schedule.tasks
      in
      Q.equal total_busy task_area
      && Float.abs
           (rep.Sim.utilisation
           -. (Q.to_float total_busy /. (4.0 *. Q.to_float rep.Sim.makespan)))
         < 1e-9)

(* ------------------------------------------------------------------ *)
(* Pipeline: packed placements execute cleanly on the device *)

let prop_packed_placements_execute =
  (* Any valid column-quantised packing from DC converts and simulates with
     zero violations — the end-to-end bridge the paper's motivation needs. *)
  QCheck.Test.make ~name:"DC packing -> schedule -> simulation is clean" ~count:75
    (QCheck.make
       ~print:(fun (inst : Spp_core.Instance.Prec.t) ->
         Printf.sprintf "n=%d" (Spp_core.Instance.Prec.size inst))
       QCheck.Gen.(
         let* n = int_range 1 15 in
         let* specs = list_repeat n (pair (int_range 1 4) (int_range 1 4)) in
         let rects =
           List.mapi (fun i (wn, hn) -> Rect.make ~id:i ~w:(q wn 4) ~h:(q hn 2)) specs
         in
         let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
         let* keep =
           list_repeat (List.length all) (frequency [ (3, return false); (1, return true) ])
         in
         let edges = List.filteri (fun idx _ -> List.nth keep idx) all in
         return
           (Spp_core.Instance.Prec.make rects
              (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges))))
    (fun inst ->
      let p, _ = Spp_core.Dc.pack inst in
      (* DC + NFDH keep x on the 1/4 grid because all widths are on it. *)
      let sched = Schedule.of_placement ~device:(dev4 ()) p in
      let rep = Sim.run ~dag:inst.dag sched in
      rep.Sim.violations = []
      && Q.equal rep.Sim.makespan (Placement.height p))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_fpga"
    [
      ( "schedule",
        [
          Alcotest.test_case "device validation" `Quick test_device_validation;
          Alcotest.test_case "exact conversion" `Quick test_of_placement_exact;
          Alcotest.test_case "rejects misaligned" `Quick test_of_placement_rejects_misaligned;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_placement;
        ] );
      ( "sim",
        [
          Alcotest.test_case "clean run" `Quick test_sim_clean_run;
          Alcotest.test_case "detects conflict" `Quick test_sim_detects_conflict;
          Alcotest.test_case "touching intervals ok" `Quick test_sim_touching_intervals_ok;
          Alcotest.test_case "reconfig delay" `Quick test_sim_reconfig_delay;
          Alcotest.test_case "precedence and release" `Quick test_sim_precedence_and_release;
          Alcotest.test_case "serial reconfig port" `Quick test_sim_serial_reconfig_port;
          Alcotest.test_case "gantt" `Quick test_gantt_renders;
        ] );
      ( "online",
        Alcotest.test_case "parallel when free" `Quick test_online_parallel_when_free
        :: Alcotest.test_case "waits for columns" `Quick test_online_waits_for_columns
        :: Alcotest.test_case "respects release" `Quick test_online_respects_release
        :: Alcotest.test_case "leftmost vs earliest" `Quick test_online_leftmost_vs_earliest
        :: Alcotest.test_case "waiting times" `Quick test_waiting_times
        :: Alcotest.test_case "guards" `Quick test_online_guards
        :: Alcotest.test_case "arrivals conversion" `Quick test_arrivals_of_release
        :: qt [ prop_online_schedules_clean ] );
      ("accounting", qt [ prop_busy_accounting ]);
      ("pipeline", qt [ prop_packed_placements_execute ]);
    ]
