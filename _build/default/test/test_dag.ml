(* Tests for Spp_dag: construction validation, cycle rejection, topological
   order, induced subgraphs, the paper's F function, and independence. *)

module Q = Spp_num.Rat
module Dag = Spp_dag.Dag

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Dag.of_edges ~nodes:[ 0; 1; 2; 3 ] ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_construction () =
  let d = diamond () in
  Alcotest.(check int) "nodes" 4 (Dag.num_nodes d);
  Alcotest.(check int) "edges" 4 (Dag.num_edges d);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (Dag.preds d 3);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Dag.succs d 0);
  Alcotest.(check bool) "has_edge" true (Dag.has_edge d 0 1);
  Alcotest.(check bool) "no reverse edge" false (Dag.has_edge d 1 0);
  Alcotest.(check (list int)) "roots" [ 0 ] (Dag.roots d);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks d);
  Alcotest.(check (list int)) "edge list" [ 0; 1; 2; 3 ] (Dag.nodes d)

let test_rejects_bad_input () =
  let inv msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore inv;
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.of_edges: graph has a cycle") (fun () ->
      ignore (Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 1); (1, 2); (2, 0) ]));
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.of_edges: self-loop on 1") (fun () ->
      ignore (Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[ (1, 1) ]));
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Dag.of_edges: edge (0,5) references unknown node") (fun () ->
      ignore (Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[ (0, 5) ]));
  Alcotest.check_raises "duplicate edge" (Invalid_argument "Dag.of_edges: duplicate edge (0,1)")
    (fun () -> ignore (Dag.of_edges ~nodes:[ 0; 1 ] ~edges:[ (0, 1); (0, 1) ]));
  Alcotest.check_raises "duplicate node" (Invalid_argument "Dag.of_edges: duplicate node id")
    (fun () -> ignore (Dag.of_edges ~nodes:[ 0; 0 ] ~edges:[]))

let test_topo_order () =
  let d = diamond () in
  Alcotest.(check (list int)) "deterministic topo" [ 0; 1; 2; 3 ] (Dag.topo_order d);
  (* Any topo order puts sources before targets. *)
  let order = Dag.topo_order d in
  let position = List.mapi (fun i v -> (v, i)) order in
  List.iter
    (fun (u, v) ->
      if List.assoc u position >= List.assoc v position then Alcotest.fail "order violates edge")
    (Dag.edges d)

let test_induced () =
  let d = diamond () in
  let sub = Dag.induced d (fun v -> v <> 1) in
  Alcotest.(check (list int)) "nodes" [ 0; 2; 3 ] (Dag.nodes sub);
  Alcotest.(check int) "edges kept" 2 (Dag.num_edges sub);
  Alcotest.(check bool) "0->2 kept" true (Dag.has_edge sub 0 2);
  Alcotest.(check bool) "2->3 kept" true (Dag.has_edge sub 2 3);
  (* Edges through the removed node are gone, not contracted. *)
  Alcotest.(check bool) "no 0->3" false (Dag.has_edge sub 0 3)

let test_reachable () =
  let d = diamond () in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2; 3 ] (Dag.reachable d 0);
  Alcotest.(check (list int)) "from 1" [ 1; 3 ] (Dag.reachable d 1);
  Alcotest.(check (list int)) "from sink" [ 3 ] (Dag.reachable d 3)

let test_longest_path_f () =
  (* Heights: 0 -> 1, 1 -> 2, 2 -> 4, 3 -> 1; F follows the paper's
     recursion. F(0)=1, F(1)=3, F(2)=5, F(3)=max(F(1),F(2))+1=6. *)
  let d = diamond () in
  let h = function 0 -> Q.of_int 1 | 1 -> Q.of_int 2 | 2 -> Q.of_int 4 | _ -> Q.of_int 1 in
  let f = Dag.longest_path_to d ~weight:h in
  Alcotest.(check string) "F root" "1" (Q.to_string (f 0));
  Alcotest.(check string) "F(1)" "3" (Q.to_string (f 1));
  Alcotest.(check string) "F(2)" "5" (Q.to_string (f 2));
  Alcotest.(check string) "F(3)" "6" (Q.to_string (f 3))

let test_longest_path_length () =
  Alcotest.(check int) "diamond" 3 (Dag.longest_path_length (diamond ()));
  Alcotest.(check int) "empty" 0 (Dag.longest_path_length Dag.empty);
  let chain = Dag.of_edges ~nodes:[ 0; 1; 2; 3 ] ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "chain" 4 (Dag.longest_path_length chain);
  let anti = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[] in
  Alcotest.(check int) "antichain" 1 (Dag.longest_path_length anti)

let test_transitive_closure () =
  let chain = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 1); (1, 2) ] in
  let tc = Dag.transitive_closure chain in
  Alcotest.(check int) "edges" 3 (Dag.num_edges tc);
  Alcotest.(check bool) "shortcut added" true (Dag.has_edge tc 0 2)

let test_transitive_reduction () =
  (* Chain plus the redundant shortcut: reduction removes it. *)
  let d = Dag.of_edges ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 1); (1, 2); (0, 2) ] in
  let tr = Dag.transitive_reduction d in
  Alcotest.(check int) "edges" 2 (Dag.num_edges tr);
  Alcotest.(check bool) "shortcut removed" false (Dag.has_edge tr 0 2);
  (* The diamond has no redundant edges. *)
  let dm = diamond () in
  Alcotest.(check int) "diamond unchanged" 4 (Dag.num_edges (Dag.transitive_reduction dm))

let test_is_comparable () =
  let d = diamond () in
  Alcotest.(check bool) "path down" true (Dag.is_comparable d 0 3);
  Alcotest.(check bool) "path up" true (Dag.is_comparable d 3 0);
  Alcotest.(check bool) "parallel" false (Dag.is_comparable d 1 2);
  Alcotest.(check bool) "self" true (Dag.is_comparable d 1 1)

let test_independent () =
  let d = diamond () in
  Alcotest.(check bool) "1,2 independent" true (Dag.independent d (fun v -> v = 1 || v = 2));
  Alcotest.(check bool) "0,1 dependent" false (Dag.independent d (fun v -> v = 0 || v = 1));
  Alcotest.(check bool) "whole graph dependent" false (Dag.independent d (fun _ -> true));
  Alcotest.(check bool) "empty set independent" true (Dag.independent d (fun _ -> false))

(* ------------------------------------------------------------------ *)
(* Properties on random DAGs: build from a random strict lower-triangular
   edge set (always acyclic by construction). *)

let random_dag_gen =
  QCheck.make
    ~print:(fun (n, edges) -> Printf.sprintf "n=%d edges=%d" n (List.length edges))
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* edges =
        let all = List.concat (List.init n (fun i -> List.init i (fun j -> (j, i)))) in
        let* keep = list_repeat (List.length all) bool in
        return (List.filteri (fun idx _ -> List.nth keep idx) all)
      in
      return (n, edges))

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects all edges" ~count:200 random_dag_gen
    (fun (n, edges) ->
      let d = Dag.of_edges ~nodes:(List.init n Fun.id) ~edges in
      let order = Dag.topo_order d in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i v -> Hashtbl.replace pos v i) order;
      List.length order = n
      && List.for_all (fun (u, v) -> Hashtbl.find pos u < Hashtbl.find pos v) edges)

let prop_f_monotone_on_edges =
  QCheck.Test.make ~name:"F strictly increases along edges" ~count:200 random_dag_gen
    (fun (n, edges) ->
      let d = Dag.of_edges ~nodes:(List.init n Fun.id) ~edges in
      let f = Dag.longest_path_to d ~weight:(fun _ -> Q.one) in
      List.for_all (fun (u, v) -> Q.compare (f u) (f v) < 0) edges)

let prop_f_equals_path_length_unit_weights =
  QCheck.Test.make ~name:"max F = longest path length under unit weights" ~count:200
    random_dag_gen (fun (n, edges) ->
      let d = Dag.of_edges ~nodes:(List.init n Fun.id) ~edges in
      let f = Dag.longest_path_to d ~weight:(fun _ -> Q.one) in
      let max_f = List.fold_left (fun acc v -> Q.max acc (f v)) Q.zero (Dag.nodes d) in
      Q.equal max_f (Q.of_int (Dag.longest_path_length d)))

let prop_reduction_preserves_reachability =
  QCheck.Test.make ~name:"transitive reduction preserves reachability; closure extends it"
    ~count:150 random_dag_gen (fun (n, edges) ->
      let d = Dag.of_edges ~nodes:(List.init n Fun.id) ~edges in
      let tr = Dag.transitive_reduction d in
      let tc = Dag.transitive_closure d in
      List.for_all
        (fun v ->
          Dag.reachable d v = Dag.reachable tr v && Dag.reachable d v = Dag.reachable tc v)
        (Dag.nodes d)
      && Dag.num_edges tr <= Dag.num_edges d
      && Dag.num_edges d <= Dag.num_edges tc)

let prop_reduction_is_minimal =
  QCheck.Test.make ~name:"no edge of the reduction is redundant" ~count:100 random_dag_gen
    (fun (n, edges) ->
      let tr = Dag.transitive_reduction (Dag.of_edges ~nodes:(List.init n Fun.id) ~edges) in
      List.for_all
        (fun (u, v) ->
          (* Removing (u,v) must lose the u -> v reachability. *)
          let without =
            Dag.of_edges ~nodes:(Dag.nodes tr)
              ~edges:(List.filter (fun e -> e <> (u, v)) (Dag.edges tr))
          in
          not (List.mem v (Dag.reachable without u)))
        (Dag.edges tr))

let prop_induced_is_subgraph =
  QCheck.Test.make ~name:"induced subgraph edges are original edges" ~count:200 random_dag_gen
    (fun (n, edges) ->
      let d = Dag.of_edges ~nodes:(List.init n Fun.id) ~edges in
      let keep v = v mod 2 = 0 in
      let sub = Dag.induced d keep in
      List.for_all (fun v -> keep v) (Dag.nodes sub)
      && List.for_all (fun (u, v) -> keep u && keep v && Dag.has_edge d u v) (Dag.edges sub))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_dag"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "longest path (F)" `Quick test_longest_path_f;
          Alcotest.test_case "longest path length" `Quick test_longest_path_length;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
          Alcotest.test_case "comparability" `Quick test_is_comparable;
          Alcotest.test_case "independence" `Quick test_independent;
        ] );
      ( "props",
        qt
          [
            prop_topo_respects_edges;
            prop_f_monotone_on_edges;
            prop_f_equals_path_length_unit_weights;
            prop_reduction_preserves_reachability;
            prop_reduction_is_minimal;
            prop_induced_is_subgraph;
          ] );
    ]
