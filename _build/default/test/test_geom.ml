(* Tests for Spp_geom: rectangle constructors, placement validation (the
   trusted oracle for everything else), skyline invariants, rendering. *)

module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Skyline = Spp_geom.Skyline
module Render = Spp_geom.Render

let q = Q.of_ints
let rect id w_n w_d h_n h_d = Rect.make ~id ~w:(q w_n w_d) ~h:(q h_n h_d)
let pos x y = { Placement.x; y }
let item r p = { Placement.rect = r; pos = p }

(* ------------------------------------------------------------------ *)
(* Rect *)

let test_rect_make_validation () =
  Alcotest.check_raises "zero width" (Invalid_argument "Rect.make: width 0 outside (0, 1]")
    (fun () -> ignore (Rect.make ~id:0 ~w:Q.zero ~h:Q.one));
  Alcotest.check_raises "wide" (Invalid_argument "Rect.make: width 2 outside (0, 1]") (fun () ->
      ignore (Rect.make ~id:0 ~w:Q.two ~h:Q.one));
  Alcotest.check_raises "flat" (Invalid_argument "Rect.make: height 0 must be positive")
    (fun () -> ignore (Rect.make ~id:0 ~w:Q.one ~h:Q.zero));
  let r = rect 3 1 2 3 4 in
  Alcotest.(check string) "area" "3/8" (Q.to_string (Rect.area r))

let test_rect_aggregates () =
  let rs = [ rect 0 1 2 1 1; rect 1 1 4 2 1; rect 2 1 1 1 2 ] in
  Alcotest.(check string) "total area" "3/2" (Q.to_string (Rect.total_area rs));
  Alcotest.(check string) "max height" "2" (Q.to_string (Rect.max_height rs));
  Alcotest.(check string) "max height empty" "0" (Q.to_string (Rect.max_height []))

let test_rect_sorts () =
  let rs = [ rect 0 1 2 1 2; rect 1 1 4 2 1; rect 2 1 1 1 2 ] in
  let by_h = List.map (fun (r : Rect.t) -> r.Rect.id) (Rect.sort_by_height_desc rs) in
  Alcotest.(check (list int)) "height desc, id tiebreak" [ 1; 0; 2 ] by_h;
  let by_w = List.map (fun (r : Rect.t) -> r.Rect.id) (Rect.sort_by_width_desc rs) in
  Alcotest.(check (list int)) "width desc" [ 2; 0; 1 ] by_w

(* ------------------------------------------------------------------ *)
(* Placement *)

let test_placement_basics () =
  let p = Placement.of_items [ item (rect 0 1 2 1 1) (pos Q.zero Q.zero) ] in
  Alcotest.(check int) "size" 1 (Placement.size p);
  Alcotest.(check string) "height" "1" (Q.to_string (Placement.height p));
  Alcotest.(check bool) "find hit" true (Placement.find p ~id:0 <> None);
  Alcotest.(check bool) "find miss" true (Placement.find p ~id:9 = None);
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Placement.of_items: duplicate rect id 0") (fun () ->
      ignore (Placement.of_items [ item (rect 0 1 2 1 1) (pos Q.zero Q.zero);
                                   item (rect 0 1 2 1 1) (pos Q.zero Q.one) ]))

let test_placement_overlap_detection () =
  let a = item (rect 0 1 2 1 1) (pos Q.zero Q.zero) in
  let b_overlapping = item (rect 1 1 2 1 1) (pos (q 1 4) (q 1 2)) in
  let p = Placement.of_items [ a; b_overlapping ] in
  (match Placement.check p with
   | [ Placement.Overlap (0, 1) ] -> ()
   | other ->
     Alcotest.failf "expected one overlap, got %d violations" (List.length other));
  (* Edge contact is not an overlap. *)
  let b_touching = item (rect 1 1 2 1 1) (pos (q 1 2) Q.zero) in
  Alcotest.(check bool) "side by side ok" true
    (Placement.is_valid (Placement.of_items [ a; b_touching ]));
  let b_stacked = item (rect 1 1 2 1 1) (pos Q.zero Q.one) in
  Alcotest.(check bool) "stacked ok" true
    (Placement.is_valid (Placement.of_items [ a; b_stacked ]))

let test_placement_out_of_strip () =
  let too_right = item (rect 0 3 4 1 1) (pos (q 1 2) Q.zero) in
  (match Placement.check (Placement.of_items [ too_right ]) with
   | [ Placement.Out_of_strip 0 ] -> ()
   | _ -> Alcotest.fail "expected out-of-strip");
  let below = item (rect 1 1 2 1 1) (pos Q.zero (q (-1) 2)) in
  (match Placement.check (Placement.of_items [ below ]) with
   | [ Placement.Out_of_strip 1 ] -> ()
   | _ -> Alcotest.fail "expected out-of-strip below")

let test_placement_shift_union () =
  let a = Placement.of_items [ item (rect 0 1 2 1 1) (pos Q.zero Q.zero) ] in
  let b = Placement.of_items [ item (rect 1 1 1 1 2) (pos Q.zero Q.zero) ] in
  let b' = Placement.shift_y b Q.one in
  let u = Placement.union a b' in
  Alcotest.(check bool) "union valid" true (Placement.is_valid u);
  Alcotest.(check string) "union height" "3/2" (Q.to_string (Placement.height u));
  Alcotest.check_raises "shift below base"
    (Invalid_argument "Placement.shift_y: rectangle below base") (fun () ->
      ignore (Placement.shift_y a Q.minus_one));
  Alcotest.check_raises "union id clash"
    (Invalid_argument "Placement.of_items: duplicate rect id 0") (fun () ->
      ignore (Placement.union a a))

(* ------------------------------------------------------------------ *)
(* Skyline *)

let test_skyline_ground_floor () =
  let s = Skyline.create () in
  let p1 = Skyline.place s ~w:(q 1 2) ~h:Q.one ~y_min:Q.zero in
  Alcotest.(check string) "first at origin x" "0" (Q.to_string p1.Placement.x);
  Alcotest.(check string) "first at origin y" "0" (Q.to_string p1.Placement.y);
  let p2 = Skyline.place s ~w:(q 1 2) ~h:Q.one ~y_min:Q.zero in
  Alcotest.(check string) "second beside x" "1/2" (Q.to_string p2.Placement.x);
  Alcotest.(check string) "second beside y" "0" (Q.to_string p2.Placement.y);
  let p3 = Skyline.place s ~w:Q.one ~h:Q.one ~y_min:Q.zero in
  Alcotest.(check string) "third on top" "1" (Q.to_string p3.Placement.y);
  Alcotest.(check string) "skyline height" "2" (Q.to_string (Skyline.height s))

let test_skyline_fills_valley () =
  let s = Skyline.create () in
  (* Build two towers leaving a valley in the middle. *)
  let _ = Skyline.place s ~w:(q 1 4) ~h:Q.two ~y_min:Q.zero in
  let _ = Skyline.place s ~w:(q 1 4) ~h:Q.one ~y_min:Q.zero in
  let _ = Skyline.place s ~w:(q 1 4) ~h:Q.one ~y_min:Q.zero in
  let _ = Skyline.place s ~w:(q 1 4) ~h:Q.two ~y_min:Q.zero in
  (* Valley is [1/4, 3/4] at height 1; a 1/2-wide rect should land there. *)
  let p = Skyline.place s ~w:(q 1 2) ~h:Q.one ~y_min:Q.zero in
  Alcotest.(check string) "valley x" "1/4" (Q.to_string p.Placement.x);
  Alcotest.(check string) "valley y" "1" (Q.to_string p.Placement.y)

let test_skyline_y_min () =
  let s = Skyline.create () in
  let p = Skyline.place s ~w:Q.one ~h:Q.one ~y_min:(q 5 2) in
  Alcotest.(check string) "respects floor" "5/2" (Q.to_string p.Placement.y);
  Alcotest.check_raises "too wide" (Invalid_argument "Skyline.place: rect wider than strip")
    (fun () -> ignore (Skyline.place s ~w:Q.two ~h:Q.one ~y_min:Q.zero))

let test_skyline_copy_independent () =
  let s = Skyline.create () in
  let _ = Skyline.place s ~w:(q 1 2) ~h:Q.one ~y_min:Q.zero in
  let snap = Skyline.copy s in
  let _ = Skyline.place s ~w:Q.one ~h:Q.one ~y_min:Q.zero in
  Alcotest.(check string) "copy unaffected" "1" (Q.to_string (Skyline.height snap));
  Alcotest.(check string) "original advanced" "2" (Q.to_string (Skyline.height s))

let test_skyline_segments_invariant () =
  let s = Skyline.create () in
  List.iter
    (fun (wn, wd, hn, hd) -> ignore (Skyline.place s ~w:(q wn wd) ~h:(q hn hd) ~y_min:Q.zero))
    [ (1, 3, 1, 1); (1, 2, 2, 1); (1, 4, 1, 2); (2, 3, 1, 1) ];
  let segs = Skyline.segments s in
  let total = List.fold_left (fun acc (_, w, _) -> Q.add acc w) Q.zero segs in
  Alcotest.(check string) "segments cover strip" "1" (Q.to_string total);
  let rec contiguous = function
    | (x, w, _) :: ((x', _, _) :: _ as rest) ->
      Q.equal (Q.add x w) x' && contiguous rest
    | _ -> true
  in
  Alcotest.(check bool) "segments contiguous" true (contiguous segs)

(* Property: random skyline packs are always geometrically valid. *)
let prop_skyline_packs_validly =
  QCheck.Test.make ~name:"skyline packings are valid" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 1 8) (int_range 1 8)))
    (fun specs ->
      let s = Skyline.create () in
      let items =
        List.mapi
          (fun i (wn, hn) ->
            let r = Rect.make ~id:i ~w:(q wn 8) ~h:(q hn 4) in
            let p = Skyline.place s ~w:r.Rect.w ~h:r.Rect.h ~y_min:Q.zero in
            item r p)
          specs
      in
      Placement.is_valid (Placement.of_items items))

(* ------------------------------------------------------------------ *)
(* Render *)

let test_render_empty () = Alcotest.(check string) "empty" "" (Render.render (Placement.of_items []))

let test_render_shape () =
  let p =
    Placement.of_items
      [ item (rect 0 1 1 1 1) (pos Q.zero Q.zero); item (rect 1 1 2 1 1) (pos Q.zero Q.one) ]
  in
  let out = Render.render ~cols:8 p in
  Alcotest.(check bool) "non-empty" true (String.length out > 0);
  Alcotest.(check bool) "has border" true (String.contains out '+');
  Alcotest.(check bool) "draws A" true (String.contains out 'A');
  Alcotest.(check bool) "draws B" true (String.contains out 'B')

(* ------------------------------------------------------------------ *)
(* SVG *)

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let test_svg_structure () =
  let p =
    Placement.of_items
      [ item (rect 0 1 2 1 1) (pos Q.zero Q.zero); item (rect 1 1 2 1 1) (pos (q 1 2) Q.zero) ]
  in
  let svg = Spp_geom.Svg.render ~width_px:100 p in
  Alcotest.(check bool) "opens svg" true (String.length svg > 5 && String.sub svg 0 4 = "<svg");
  (* Frame + 2 rect elements. *)
  Alcotest.(check int) "rect elements" 3 (count_substring svg "<rect ");
  Alcotest.(check int) "labels" 2 (count_substring svg "<text ");
  Alcotest.(check int) "closes" 1 (count_substring svg "</svg>")

let test_svg_empty_and_no_labels () =
  let empty = Spp_geom.Svg.render (Placement.of_items []) in
  Alcotest.(check int) "frame only" 1 (count_substring empty "<rect ");
  let p = Placement.of_items [ item (rect 0 1 1 1 1) (pos Q.zero Q.zero) ] in
  let bare = Spp_geom.Svg.render ~label:false p in
  Alcotest.(check int) "no labels" 0 (count_substring bare "<text ")

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spp_geom"
    [
      ( "rect",
        [
          Alcotest.test_case "make validation" `Quick test_rect_make_validation;
          Alcotest.test_case "aggregates" `Quick test_rect_aggregates;
          Alcotest.test_case "sorts" `Quick test_rect_sorts;
        ] );
      ( "placement",
        [
          Alcotest.test_case "basics" `Quick test_placement_basics;
          Alcotest.test_case "overlap detection" `Quick test_placement_overlap_detection;
          Alcotest.test_case "out of strip" `Quick test_placement_out_of_strip;
          Alcotest.test_case "shift and union" `Quick test_placement_shift_union;
        ] );
      ( "skyline",
        Alcotest.test_case "ground floor" `Quick test_skyline_ground_floor
        :: Alcotest.test_case "fills valley" `Quick test_skyline_fills_valley
        :: Alcotest.test_case "y_min floor" `Quick test_skyline_y_min
        :: Alcotest.test_case "copy independence" `Quick test_skyline_copy_independent
        :: Alcotest.test_case "segments invariant" `Quick test_skyline_segments_invariant
        :: qt [ prop_skyline_packs_validly ] );
      ( "render",
        [
          Alcotest.test_case "empty" `Quick test_render_empty;
          Alcotest.test_case "shape" `Quick test_render_shape;
        ] );
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "empty / no labels" `Quick test_svg_empty_and_no_labels;
        ] );
    ]
