(** Cooperative cancellation tokens.

    Long-running solvers (exact branch and bound, column generation, the
    APTAS pipeline) accept a token and poll it at their natural loop
    boundaries; the engine's portfolio runner hands every racer a token
    whose deadline is the run's wall-clock budget. Tokens are domain-safe:
    one domain may {!cancel} while others poll.

    A token trips when it is cancelled explicitly {e or} its deadline
    passes; once tripped it stays tripped. *)

type t

(** Raised by {!check} on a tripped token. Solvers let it escape; the
    portfolio runner maps it to a [Timed_out] outcome. *)
exception Cancelled

(** A token that never trips. The default everywhere, so direct library
    calls behave exactly as before the engine existed. *)
val never : t

(** [create ()] is a token with no deadline, tripped only by {!cancel}. *)
val create : unit -> t

(** [with_deadline_ms ms] trips once [ms] milliseconds of wall-clock time
    have elapsed (immediately for [ms <= 0]). *)
val with_deadline_ms : float -> t

(** [cancel t] trips the token. Idempotent; no effect on {!never}. *)
val cancel : t -> unit

val cancelled : t -> bool

(** [check t] raises {!Cancelled} iff the token has tripped. Each call
    also bumps the token's poll count (except on {!never}, whose single
    shared cache line must stay read-only on the hot path). *)
val check : t -> unit

(** [polls t] is the number of {!check} calls made against [t] so far —
    a cheap measure of how often a solver reached a cancellation point,
    surfaced as the [spp_cancel_polls_total] metric. Always 0 for
    {!never}. *)
val polls : t -> int

(** [remaining_ms t] is the wall-clock budget left: [None] when unlimited,
    [Some 0.] once tripped. *)
val remaining_ms : t -> float option
