(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Used by the disk store to detect torn or corrupted cache entries
    before any parsing happens. Not a cryptographic digest — it guards
    against accidental corruption only. *)

(** [digest s] is the CRC-32 of the whole string. *)
val digest : string -> int32

(** [hex c] renders a checksum as 8 lowercase hex digits, zero-padded. *)
val hex : int32 -> string

(** [digest_hex s] is [hex (digest s)]. *)
val digest_hex : string -> string
