type t = {
  flag : bool Atomic.t;
  deadline_ms : float;  (** absolute, [infinity] = none *)
}

exception Cancelled

let never = { flag = Atomic.make false; deadline_ms = infinity }

let create () = { flag = Atomic.make false; deadline_ms = infinity }

let with_deadline_ms ms =
  { flag = Atomic.make false; deadline_ms = Clock.now_ms () +. Float.max 0.0 ms }

let cancel t = if t != never then Atomic.set t.flag true

let cancelled t =
  Atomic.get t.flag
  || (t.deadline_ms < infinity && Clock.now_ms () >= t.deadline_ms)

let check t = if cancelled t then raise Cancelled

let remaining_ms t =
  if Atomic.get t.flag then Some 0.0
  else if t.deadline_ms = infinity then None
  else Some (Float.max 0.0 (t.deadline_ms -. Clock.now_ms ()))
