type t = {
  flag : bool Atomic.t;
  deadline_ms : float;  (** absolute, [infinity] = none *)
  polls : int Atomic.t;
}

exception Cancelled

let never = { flag = Atomic.make false; deadline_ms = infinity; polls = Atomic.make 0 }

let create () = { flag = Atomic.make false; deadline_ms = infinity; polls = Atomic.make 0 }

let with_deadline_ms ms =
  { flag = Atomic.make false;
    deadline_ms = Clock.now_ms () +. Float.max 0.0 ms;
    polls = Atomic.make 0 }

let cancel t = if t != never then Atomic.set t.flag true

let cancelled t =
  Atomic.get t.flag
  || (t.deadline_ms < infinity && Clock.now_ms () >= t.deadline_ms)

(* [never] is a single shared token polled from every domain at once; counting
   its polls would put one contended cache line on every solver's hot loop for
   a number nobody reads. Real tokens are per-request, so the count is cheap. *)
let check t =
  if t != never then ignore (Atomic.fetch_and_add t.polls 1);
  if cancelled t then raise Cancelled

let polls t = Atomic.get t.polls

let remaining_ms t =
  if Atomic.get t.flag then Some 0.0
  else if t.deadline_ms = infinity then None
  else Some (Float.max 0.0 (t.deadline_ms -. Clock.now_ms ()))
