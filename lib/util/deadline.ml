type t = { expires_ms : float }  (* absolute, on Clock's monotone timeline *)

let started ?of_ms budget_ms =
  let t0 = match of_ms with Some t -> t | None -> Clock.now_ms () in
  { expires_ms = t0 +. Float.max 0.0 budget_ms }

let of_request = function
  | None -> None
  | Some budget_ms -> Some (started budget_ms)

let remaining_ms t = Float.max 0.0 (t.expires_ms -. Clock.now_ms ())

(* With no floor, a deadline is expired once nothing remains; with one,
   strictly below the floor — a request holding exactly [floor_ms] is
   still admissible. *)
let expired ?(floor_ms = 0.0) t =
  let left = remaining_ms t in
  if floor_ms > 0.0 then left < floor_ms else left <= 0.0

(* Forwarding re-encodes the *remaining* budget, so the next hop starts
   its own [started] clock from receipt — each hop subtracts exactly the
   time the request spent inside it, with no cross-host clock reads. *)
let forward_ms t = remaining_ms t

let token t = Cancel.with_deadline_ms (remaining_ms t)
