let last = Atomic.make 0.0

let rec clamp t =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

let now_ms () = clamp (Unix.gettimeofday () *. 1000.0)

let elapsed_ms since = Float.max 0.0 (now_ms () -. since)
