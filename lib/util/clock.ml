(* Two sources behind one monotone clamp: the wall clock, and — when a
   test or simulation freezes time — a virtual cell advanced explicitly.
   The clamp is shared, so switching sources can never make [now_ms] go
   backwards within a process. *)

let last = Atomic.make 0.0

let rec clamp t =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

let virtual_mode = Atomic.make false
let virtual_ms = Atomic.make 0.0

let wall_ms () = Unix.gettimeofday () *. 1000.0

let now_ms () =
  if Atomic.get virtual_mode then clamp (Atomic.get virtual_ms) else clamp (wall_ms ())

let elapsed_ms since = Float.max 0.0 (now_ms () -. since)

let frozen () = Atomic.get virtual_mode

let freeze ?at_ms () =
  let start = match at_ms with Some v -> v | None -> now_ms () in
  Atomic.set virtual_ms (Float.max start (Atomic.get last));
  Atomic.set virtual_mode true;
  ignore (clamp (Atomic.get virtual_ms))

let advance ms =
  if not (Atomic.get virtual_mode) then invalid_arg "Clock.advance: clock is not frozen";
  if ms < 0.0 then invalid_arg "Clock.advance: negative step";
  let rec bump () =
    let cur = Atomic.get virtual_ms in
    if Atomic.compare_and_set virtual_ms cur (cur +. ms) then cur +. ms else bump ()
  in
  clamp (bump ())

let thaw () = Atomic.set virtual_mode false
