type t = { columns : string array; mutable rows : string array list }

let create ~columns = { columns = Array.of_list columns; rows = [] }

let add_row t cells =
  let n = Array.length t.columns in
  if List.length cells > n then invalid_arg "Table.add_row: more cells than columns";
  let row = Array.make n "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.columns in
  let widths = Array.map String.length t.columns in
  List.iter (fun row -> Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row) rows;
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit_row row =
    for i = 0 to n - 1 do
      Buffer.add_string buf (pad row.(i) widths.(i));
      if i < n - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  for i = 0 to n - 1 do
    Buffer.add_string buf (String.make widths.(i) '-');
    if i < n - 1 then Buffer.add_string buf "  "
  done;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)
let columns t = Array.to_list t.columns
let rows t = List.rev_map Array.to_list t.rows
