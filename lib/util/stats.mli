(** Small descriptive-statistics helpers for the experiment harness. *)

(** [mean xs] is the arithmetic mean. @raise Invalid_argument on []. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float list -> float

val min_max : float list -> float * float

(** [median xs] is the median (average of middle two for even lengths). *)
val median : float list -> float

(** [quantile q xs] is the [q]-quantile for [q] in [0,1], by linear
    interpolation over the sorted sample. *)
val quantile : float -> float list -> float

(** [percentile p xs] is [quantile (p /. 100.) xs] for [p] in [0,100] —
    the latency-reporting convention (p50/p95/p99). *)
val percentile : float -> float list -> float

(** [percentiles ps xs] computes several percentiles sorting the sample
    once; equal to [List.map (fun p -> percentile p xs) ps]. *)
val percentiles : float list -> float list -> float list

(** [geometric_mean xs] for positive samples; used for approximation-ratio
    aggregation (ratios multiply, so the geometric mean is the honest
    average). *)
val geometric_mean : float list -> float

(** [linear_fit points] is [(slope, intercept)] of a least-squares line; used
    to measure the growth rate in experiment E1 (ratio vs log n). *)
val linear_fit : (float * float) list -> float * float
