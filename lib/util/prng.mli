(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256** generator seeded via SplitMix64, so every
    workload in this repository is reproducible from a single integer seed
    independent of OCaml's [Random] state and of platform word size quirks.
    Not cryptographic; statistical quality is ample for workload synthesis. *)

type t

(** [create seed] builds an independent generator from any integer seed. *)
val create : int -> t

(** [split t] derives a fresh generator whose stream is independent of
    subsequent draws from [t] (used to give each workload component its own
    stream, and by {!Spp_check} to keep generator and shrink phases from
    perturbing each other's draws). Splitting consumes exactly one draw
    from [t], so a fixed split discipline is itself reproducible. *)
val split : t -> t

(** [copy t] snapshots the current state: the copy replays exactly the
    stream [t] would produce from this point, without advancing [t]. *)
val copy : t -> t

(** [bits64 t] is the next raw 64-bit output (as an OCaml [int64]). *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Uses rejection sampling, so
    there is no modulo bias. @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)
val float_in : t -> float -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~rate] draws from Exp(rate); used for Poisson-process
    release times. @raise Invalid_argument if [rate <= 0]. *)
val exponential : t -> rate:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t arr] is a uniformly random element.
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a
