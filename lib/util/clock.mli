(** Monotonic wall-clock time for deadlines and telemetry, with a
    freezable virtual source for deterministic tests and simulations.

    [Unix.gettimeofday] clamped to be non-decreasing across the whole
    process (a CAS loop over the last value returned), so durations and
    deadlines never go backwards even if the system clock is stepped.
    Domain-safe.

    {!freeze} switches every reader of [now_ms] — cancellation deadlines,
    connection reapers, health probes — onto a virtual cell that only
    moves when {!advance} is called, so timeout logic can be unit-tested
    without sleeping. The monotone clamp is shared between the two
    sources: time never runs backwards across a freeze/thaw, though after
    {!thaw} the clock holds still until the wall catches up with wherever
    the virtual source was advanced to. *)

(** [now_ms ()] is milliseconds since the Unix epoch (or the frozen
    virtual time), non-decreasing. *)
val now_ms : unit -> float

(** [elapsed_ms since] is [now_ms () -. since] (never negative). *)
val elapsed_ms : float -> float

(** [freeze ()] switches [now_ms] to a virtual source, initialised to the
    current time (or [at_ms], clamped to stay monotone). Idempotent. *)
val freeze : ?at_ms:float -> unit -> unit

(** [advance ms] moves the frozen clock forward by [ms] and returns the
    new [now_ms].
    @raise Invalid_argument when the clock is not frozen or [ms < 0]. *)
val advance : float -> float

(** [thaw ()] returns to the wall clock. *)
val thaw : unit -> unit

(** [frozen ()] is [true] between {!freeze} and {!thaw}. *)
val frozen : unit -> bool
