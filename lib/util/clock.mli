(** Monotonic wall-clock time for deadlines and telemetry.

    [Unix.gettimeofday] clamped to be non-decreasing across the whole
    process (a CAS loop over the last value returned), so durations and
    deadlines never go backwards even if the system clock is stepped.
    Domain-safe. *)

(** [now_ms ()] is milliseconds since the Unix epoch, non-decreasing. *)
val now_ms : unit -> float

(** [elapsed_ms since] is [now_ms () -. since] (never negative). *)
val elapsed_ms : float -> float
