let check_nonempty name = function [] -> invalid_arg (name ^ ": empty sample") | _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  sqrt (var /. float_of_int (List.length xs))

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (infinity, neg_infinity) xs

let sorted xs = List.sort Float.compare xs

let quantile_of_sorted name arr q =
  if q < 0.0 || q > 1.0 then invalid_arg (name ^ ": quantile outside [0,1]");
  let n = Array.length arr in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then arr.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let quantile q xs =
  check_nonempty "Stats.quantile" xs;
  quantile_of_sorted "Stats.quantile" (Array.of_list (sorted xs)) q

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  quantile_of_sorted "Stats.percentile" (Array.of_list (sorted xs)) (p /. 100.0)

let percentiles ps xs =
  check_nonempty "Stats.percentiles" xs;
  let arr = Array.of_list (sorted xs) in
  List.map
    (fun p ->
      if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentiles: p outside [0,100]";
      quantile_of_sorted "Stats.percentiles" arr (p /. 100.0))
    ps

let median xs = quantile 0.5 xs

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive sample") xs;
  exp (mean (List.map Float.log xs))

let linear_fit points =
  check_nonempty "Stats.linear_fit" points;
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then (0.0, sy /. n)
  else begin
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    (slope, (sy -. (slope *. sx)) /. n)
  end
