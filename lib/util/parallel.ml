let parse_workers s =
  let s = String.trim s in
  if s = "" then Error "empty value"
  else
    match int_of_string_opt s with
    | None -> Error (Printf.sprintf "not an integer: %S" s)
    | Some n when n < 1 -> Error (Printf.sprintf "must be >= 1, got %d" n)
    | Some n -> Ok n

(* Warn once per process, not once per call: available_workers sits on the
   solve path and a daemon would otherwise spam stderr on every request. *)
let warned = Atomic.make false

let default_workers () = min 8 (Domain.recommended_domain_count ())

let available_workers () =
  match Sys.getenv_opt "SPP_WORKERS" with
  | None -> default_workers ()
  | Some s when String.trim s = "" -> default_workers ()
  | Some s -> (
    match parse_workers s with
    | Ok n -> n
    | Error why ->
      if not (Atomic.exchange warned true) then
        Printf.eprintf "warning: ignoring SPP_WORKERS=%S (%s); using %d workers\n%!" s why
          (default_workers ());
      default_workers ())

let map ?workers f xs =
  let n = List.length xs in
  let workers = min n (match workers with Some w -> w | None -> available_workers ()) in
  if workers <= 1 || n < 2 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (match f input.(i) with
           | y -> output.(i) <- Some y
           | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.to_list (Array.map (function Some y -> y | None -> assert false) output)
  end
