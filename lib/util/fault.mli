(** Deterministic fault injection.

    A process-global registry of named injection points threaded through the
    storage, framing, worker-pool, engine, and cluster-proxy layers
    ([proxy.upstream] fires inside the proxy's upstream calls as a
    transport error, [proxy.health] fails individual health probes,
    [proxy.hedge] suppresses a hedged re-issue the moment its timer fires,
    [engine.incumbent] skips seeding the engine's anytime incumbent so the
    no-incumbent recovery path can be exercised). Probes are free when
    injection is disabled (one atomic load and branch), and deterministic
    when enabled: all probability draws come from one seeded {!Prng} stream,
    so a failing chaos run replays exactly from its spec and seed.

    Spec grammar (comma-separated entries, also accepted from the
    [SPP_FAULTS] environment variable):

    {v
      spec    ::= entry ("," entry)*
      entry   ::= point "=" action
      action  ::= FLOAT                  fail with probability FLOAT (0 < p <= 1)
                | "once"                 fail on the first hit, then disarm
                | "delay" MS             sleep MS milliseconds on every hit
                | "delay" MS "@" FLOAT   sleep MS with probability FLOAT
    v}

    Example: [store.read=0.5,pool.job=once,engine.solve=delay200@0.1]. *)

(** Raised by {!hit} when the point's rule fires with a failure action.
    The payload is the point name. Probe sites translate this into the
    layer's native failure (an I/O error, a worker crash, a miss). *)
exception Injected of string

(** The closed set of valid injection points. {!configure} rejects any
    other name so typos in a chaos spec fail fast instead of silently
    injecting nothing. *)
val points : string list

(** [configure ?seed spec] parses [spec] and arms the registry, replacing
    any previous configuration. [Error msg] (and no state change) on a
    malformed entry, an unknown point, a duplicate point, or an
    out-of-range probability. An empty / all-whitespace [spec] disarms,
    like {!clear}. Default [seed] is 0. *)
val configure : ?seed:int -> string -> (unit, string) result

(** [configure_from_env ()] reads [SPP_FAULTS] (spec) and [SPP_FAULT_SEED]
    (integer seed, default 0). No-op [Ok ()] when [SPP_FAULTS] is unset. *)
val configure_from_env : unit -> (unit, string) result

(** Disarm every point and return {!hit} to its no-op fast path. *)
val clear : unit -> unit

(** [active ()] is true when at least one rule is armed. *)
val active : unit -> bool

(** [hit point] consults the registry: no-op when disabled or when no rule
    matches [point]; otherwise draws from the seeded stream and either
    returns, sleeps (delay rules), or raises {!Injected}. Thread- and
    domain-safe. *)
val hit : string -> unit

(** [injected point] is how many times the rule at [point] has fired
    (failures and delays both count). 0 for unarmed or unknown points. *)
val injected : string -> int

(** [describe ()] renders the armed rules back as a spec string
    (["off"] when disarmed) — for startup logging. *)
val describe : unit -> string
