exception Injected of string

let points =
  [ "store.read"; "store.write"; "framing.read"; "framing.write"; "pool.job";
    "engine.solve"; "engine.incumbent"; "proxy.upstream"; "proxy.health"; "proxy.hedge" ]

type action =
  | Fail of float                        (* fail with probability p *)
  | Fail_once                            (* fail on first hit, then disarm *)
  | Delay of { ms : float; prob : float }

type rule = {
  point : string;
  action : action;
  mutable armed : bool;                  (* Fail_once: still loaded? *)
  mutable injections : int;
}

type state = { rules : rule list; rng : Prng.t; seed : int }

(* One mutex guards both the rule list and the PRNG stream; probes only
   take it after the [enabled] fast-path check, so the disabled cost is a
   single atomic load. *)
let lock = Mutex.create ()
let state : state option ref = ref None
let enabled = Atomic.make false

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let is_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_prob what s =
  match float_of_string_opt s with
  | Some p when p > 0.0 && p <= 1.0 -> Ok p
  | _ -> Error (Printf.sprintf "%s: probability must be in (0, 1], got %S" what s)

let parse_action ~point s =
  if s = "once" then Ok Fail_once
  else if is_prefix ~prefix:"delay" s then begin
    let rest = String.sub s 5 (String.length s - 5) in
    let ms_s, prob_s =
      match String.index_opt rest '@' with
      | None -> (rest, None)
      | Some i ->
        (String.sub rest 0 i, Some (String.sub rest (i + 1) (String.length rest - i - 1)))
    in
    match float_of_string_opt ms_s with
    | Some ms when ms >= 0.0 -> (
      match prob_s with
      | None -> Ok (Delay { ms; prob = 1.0 })
      | Some p_s -> (
        match parse_prob point p_s with
        | Ok prob -> Ok (Delay { ms; prob })
        | Error _ as e -> e))
    | _ -> Error (Printf.sprintf "%s: bad delay %S (want delayMS[@PROB])" point s)
  end
  else
    match parse_prob point s with
    | Ok p -> Ok (Fail p)
    | Error _ ->
      Error
        (Printf.sprintf "%s: bad action %S (want a probability, 'once', or 'delayMS[@PROB]')"
           point s)

let parse_entry s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad entry %S (want point=action)" s)
  | Some i ->
    let point = String.trim (String.sub s 0 i) in
    let action_s = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    if not (List.mem point points) then
      Error
        (Printf.sprintf "unknown fault point %S (valid: %s)" point
           (String.concat ", " points))
    else
      Result.map
        (fun action -> { point; action; armed = true; injections = 0 })
        (parse_action ~point action_s)

let parse spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match parse_entry e with
      | Error _ as err -> err
      | Ok rule ->
        if List.exists (fun r -> r.point = rule.point) acc then
          Error (Printf.sprintf "duplicate fault point %S" rule.point)
        else go (rule :: acc) rest)
  in
  go [] entries

(* ------------------------------------------------------------------ *)
(* Registry *)

let install st =
  with_lock (fun () ->
      state := st;
      Atomic.set enabled (match st with Some s -> s.rules <> [] | None -> false))

let configure ?(seed = 0) spec =
  match parse spec with
  | Error _ as e -> e
  | Ok [] -> install None; Ok ()
  | Ok rules ->
    install (Some { rules; rng = Prng.create seed; seed });
    Ok ()

let configure_from_env () =
  match Sys.getenv_opt "SPP_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec ->
    let seed =
      match Sys.getenv_opt "SPP_FAULT_SEED" with
      | None -> 0
      | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
    in
    configure ~seed spec

let clear () = install None
let active () = Atomic.get enabled

(* ------------------------------------------------------------------ *)
(* Probes *)

type decision = Pass | Raise | Sleep of float

let decide point =
  with_lock (fun () ->
      match !state with
      | None -> Pass
      | Some st -> (
        match List.find_opt (fun r -> r.point = point) st.rules with
        | None -> Pass
        | Some r -> (
          match r.action with
          | Fail p ->
            if Prng.bernoulli st.rng p then (r.injections <- r.injections + 1; Raise)
            else Pass
          | Fail_once ->
            if r.armed then begin
              r.armed <- false;
              r.injections <- r.injections + 1;
              Raise
            end
            else Pass
          | Delay { ms; prob } ->
            if Prng.bernoulli st.rng prob then begin
              r.injections <- r.injections + 1;
              Sleep ms
            end
            else Pass)))

(* The sleep happens outside the lock so a delay rule on one point cannot
   stall probes at every other point. *)
let slow_hit point =
  match decide point with
  | Pass -> ()
  | Raise -> raise (Injected point)
  | Sleep ms -> Unix.sleepf (ms /. 1000.0)

let[@inline] hit point = if Atomic.get enabled then slow_hit point

let injected point =
  with_lock (fun () ->
      match !state with
      | None -> 0
      | Some st ->
        List.fold_left
          (fun acc r -> if r.point = point then acc + r.injections else acc)
          0 st.rules)

let describe () =
  with_lock (fun () ->
      match !state with
      | None -> "off"
      | Some st ->
        st.rules
        |> List.map (fun r ->
               let action =
                 match r.action with
                 | Fail p -> Printf.sprintf "%g" p
                 | Fail_once -> if r.armed then "once" else "once(spent)"
                 | Delay { ms; prob = 1.0 } -> Printf.sprintf "delay%g" ms
                 | Delay { ms; prob } -> Printf.sprintf "delay%g@%g" ms prob
               in
               r.point ^ "=" ^ action)
        |> String.concat ","
        |> fun s -> Printf.sprintf "%s seed=%d" s st.seed)
