(** Deterministic fork-join parallelism over OCaml 5 domains.

    The experiment harness runs many independent (seed, instance) cells;
    this helper fans them out across domains and reassembles results in
    input order, so output is bit-identical to the sequential run. Work
    items must be pure (all packing algorithms here are: they share no
    mutable state across calls). *)

(** [map ?workers f xs] is [List.map f xs] computed on up to [workers]
    domains (default {!available_workers}, additionally capped at
    [List.length xs]). Preserves order. The first exception raised by
    any worker is re-raised after all domains join. Falls back to plain
    [List.map] for lists of fewer than 2 elements or [workers <= 1]. *)
val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list

(** [available_workers ()] is the default worker count used by {!map}:
    [Domain.recommended_domain_count ()] capped at 8 (past that, domain
    spawn/teardown overhead outweighs the parallel win for the short
    tasks raced here). The environment variable [SPP_WORKERS], when set
    to a positive integer, overrides both the detection and the cap —
    useful under cgroup CPU limits the runtime cannot see, and for
    pinning benchmarks to a fixed width. Malformed or non-positive
    values fall back to the default with a one-time stderr warning;
    an empty value counts as unset. *)
val available_workers : unit -> int

(** [parse_workers s] validates an [SPP_WORKERS]-style value: a positive
    integer after trimming whitespace. Errors name the offending value. *)
val parse_workers : string -> (int, string) result
