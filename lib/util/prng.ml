(* xoshiro256** seeded by SplitMix64 (public-domain reference algorithms,
   reimplemented here because the sealed environment must not depend on
   OCaml's Random for reproducibility across versions). *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Non-negative 62-bit int from the top bits (avoids sign issues). *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the largest multiple of [bound] below 2^62. *)
  let limit = (max_int / bound) * bound in
  let rec draw () =
    let v = bits t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound = float_of_int (bits t) /. float_of_int max_int *. bound
let float_in t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.Float.log u /. rate

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))
