(** Plain-text table rendering for the experiment harness.

    Produces aligned monospace tables (the "rows/series the paper reports")
    on any formatter, so benchmark output is readable both in a terminal and
    in the captured [bench_output.txt]. *)

type t

(** [create ~columns] starts a table with the given header row. *)
val create : columns:string list -> t

(** [add_row t cells] appends a row; short rows are padded with [""].
    @raise Invalid_argument if [cells] is longer than the header. *)
val add_row : t -> string list -> unit

(** [render t] lays the table out with column-wise alignment. *)
val render : t -> string

val print : t -> unit

(** The header row, as given to {!create}. *)
val columns : t -> string list

(** The data rows in insertion order, each padded to the header width —
    the machine-readable view behind the BENCH_*.json artefacts. *)
val rows : t -> string list list
