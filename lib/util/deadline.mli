(** Per-hop deadline arithmetic for propagated request budgets.

    A deadline travels on the wire as a {e relative} budget ([deadline_ms]
    — "this many milliseconds of my patience remain"), never as an
    absolute timestamp: the hops run on different hosts with different
    clocks. Each hop pins the budget to its own monotone {!Clock} at
    receipt ({!started}), measures everything it does against that —
    routing, coalescing, queue wait, dispatch — and re-encodes whatever
    is left ({!forward_ms}) when it passes the request on. Elapsed time
    is thereby subtracted exactly once per hop, by the hop that spent it.

    All reads go through {!Clock.now_ms}, so deadline logic is testable
    under {!Clock.freeze}/{!Clock.advance} virtual time without sleeping. *)

type t

(** [started budget_ms] pins a deadline [budget_ms] from now (clamped at
    0) on the monotone clock. [of_ms] overrides the anchor — for tests
    that pin to a frozen instant they already read. *)
val started : ?of_ms:float -> float -> t

(** [of_request deadline_ms] — [started] on the wire field, [None]
    passing through (an unbounded request stays unbounded). *)
val of_request : float option -> t option

(** Milliseconds left, never negative. *)
val remaining_ms : t -> float

(** [expired ?floor_ms t] — true once less than [floor_ms] (default 0)
    remains: the "won't make it" test. A request below the floor cannot
    complete in time, so burning a worker on it only steals capacity
    from requests that still can. *)
val expired : ?floor_ms:float -> t -> bool

(** The relative budget to put on the wire for the next hop: the
    remaining time as measured here. *)
val forward_ms : t -> float

(** A {!Cancel} token tripping when the deadline does — how queue wait
    and solver time are charged against the budget. *)
val token : t -> Cancel.t
