(* The original straight-ahead Bigint/Rat implementation, kept verbatim as
   the reference oracle for differential testing of the fast representation
   in {!Bigint}/{!Rat}. Slow but simple: every value is a sign + limb array,
   every operation runs the general magnitude code path. The fuzz property
   [num.diff] and the unit tests in [test_num.ml] replay random operand
   streams through both implementations and require bit-exact agreement on
   the decimal renderings.

   Nothing outside the test tree and [lib/check] should depend on this
   module. *)

module Bigint = struct
  (* Arbitrary-precision integers on base-2^15 limbs.

     Representation invariants:
     - [mag] is little-endian, has no trailing (most-significant) zero limb;
     - [sign] is 0 iff [mag] is empty, otherwise -1 or 1. *)

  let base_bits = 15
  let base = 1 lsl base_bits (* 32768 *)
  let mask = base - 1

  type t = { sign : int; mag : int array }

  let zero = { sign = 0; mag = [||] }

  let normalize sign mag =
    let n = ref (Array.length mag) in
    while !n > 0 && mag.(!n - 1) = 0 do
      decr n
    done;
    if !n = 0 then zero
    else if !n = Array.length mag then { sign; mag }
    else { sign; mag = Array.sub mag 0 !n }

  let is_zero v = v.sign = 0
  let sign v = v.sign
  let limb_count v = Array.length v.mag

  let mag_compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then compare la lb
    else
      let rec go i =
        if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1)
      in
      go (la - 1)

  let mag_add a b =
    let la = Array.length a and lb = Array.length b in
    let lr = 1 + max la lb in
    let r = Array.make lr 0 in
    let carry = ref 0 in
    for i = 0 to lr - 2 do
      let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
      r.(i) <- s land mask;
      carry := s lsr base_bits
    done;
    r.(lr - 1) <- !carry;
    r

  (* Precondition: a >= b (as magnitudes). *)
  let mag_sub a b =
    let la = Array.length a and lb = Array.length b in
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    assert (!borrow = 0);
    r

  let mag_mul a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then [||]
    else begin
      let r = Array.make (la + lb) 0 in
      for i = 0 to la - 1 do
        let carry = ref 0 in
        let ai = a.(i) in
        if ai <> 0 then begin
          for j = 0 to lb - 1 do
            let t = (ai * b.(j)) + r.(i + j) + !carry in
            r.(i + j) <- t land mask;
            carry := t lsr base_bits
          done;
          let k = ref (i + lb) in
          while !carry <> 0 do
            let t = r.(!k) + !carry in
            r.(!k) <- t land mask;
            carry := t lsr base_bits;
            incr k
          done
        end
      done;
      r
    end

  let mag_mul_limb a d =
    let la = Array.length a in
    if la = 0 || d = 0 then [||]
    else begin
      let r = Array.make (la + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) * d) + !carry in
        r.(i) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(la) <- !carry;
      r
    end

  let mag_divmod_limb a d =
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (q, !r)

  (* Knuth Algorithm D long division of magnitudes. Precondition:
     Array.length v >= 2 and mag_compare u v >= 0. Returns (q, r). *)
  let mag_divmod_long u v =
    let nv = Array.length v in
    let nu = Array.length u in
    let d = base / (v.(nv - 1) + 1) in
    let un0 = mag_mul_limb u d in
    let un = Array.make (nu + 1) 0 in
    Array.blit un0 0 un 0 (min (Array.length un0) (nu + 1));
    let vn0 = mag_mul_limb v d in
    let vn = Array.sub vn0 0 nv in
    assert (Array.length vn0 <= nv || vn0.(nv) = 0);
    let q = Array.make (nu - nv + 1) 0 in
    for j = nu - nv downto 0 do
      let top = (un.(j + nv) lsl base_bits) lor un.(j + nv - 1) in
      let qhat = ref (top / vn.(nv - 1)) in
      let rhat = ref (top mod vn.(nv - 1)) in
      let continue = ref true in
      while !continue do
        if
          !qhat >= base
          || (nv >= 2 && !qhat * vn.(nv - 2) > ((!rhat lsl base_bits) lor un.(j + nv - 2)))
        then begin
          decr qhat;
          rhat := !rhat + vn.(nv - 1);
          if !rhat >= base then continue := false
        end
        else continue := false
      done;
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to nv - 1 do
        let p = !qhat * vn.(i) + !carry in
        carry := p lsr base_bits;
        let d0 = un.(i + j) - (p land mask) - !borrow in
        if d0 < 0 then begin
          un.(i + j) <- d0 + base;
          borrow := 1
        end else begin
          un.(i + j) <- d0;
          borrow := 0
        end
      done;
      let d0 = un.(j + nv) - !carry - !borrow in
      if d0 < 0 then begin
        un.(j + nv) <- d0 + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to nv - 1 do
          let s = un.(i + j) + vn.(i) + !carry2 in
          un.(i + j) <- s land mask;
          carry2 := s lsr base_bits
        done;
        un.(j + nv) <- (un.(j + nv) + !carry2) land mask
      end
      else un.(j + nv) <- d0;
      q.(j) <- !qhat
    done;
    let rm = Array.sub un 0 nv in
    let r, r0 = mag_divmod_limb rm d in
    assert (r0 = 0);
    (q, r)

  let compare a b =
    if a.sign <> b.sign then compare a.sign b.sign
    else if a.sign >= 0 then mag_compare a.mag b.mag
    else mag_compare b.mag a.mag

  let equal a b = compare a b = 0

  let neg v = if v.sign = 0 then v else { v with sign = -v.sign }
  let abs v = if v.sign < 0 then neg v else v

  let add a b =
    if a.sign = 0 then b
    else if b.sign = 0 then a
    else if a.sign = b.sign then normalize a.sign (mag_add a.mag b.mag)
    else begin
      match mag_compare a.mag b.mag with
      | 0 -> zero
      | c when c > 0 -> normalize a.sign (mag_sub a.mag b.mag)
      | _ -> normalize b.sign (mag_sub b.mag a.mag)
    end

  let sub a b = add a (neg b)

  let mul a b =
    if a.sign = 0 || b.sign = 0 then zero
    else normalize (a.sign * b.sign) (mag_mul a.mag b.mag)

  let divmod a b =
    if b.sign = 0 then raise Division_by_zero
    else if a.sign = 0 then (zero, zero)
    else if mag_compare a.mag b.mag < 0 then (zero, a)
    else begin
      let qm, rm =
        if Array.length b.mag = 1 then begin
          let q, r = mag_divmod_limb a.mag b.mag.(0) in
          (q, if r = 0 then [||] else [| r |])
        end
        else mag_divmod_long a.mag b.mag
      in
      let q = normalize (a.sign * b.sign) qm in
      let r = normalize a.sign rm in
      (q, r)
    end

  let div a b = fst (divmod a b)
  let rem a b = snd (divmod a b)

  let rec gcd a b =
    let a = abs a and b = abs b in
    if is_zero b then a else gcd b (rem a b)

  let of_int n =
    if n = 0 then zero
    else begin
      let s = if n < 0 then -1 else 1 in
      let m = if n < 0 then n else -n in
      let rec limbs m acc = if m = 0 then acc else limbs (m / base) ((-(m mod base)) :: acc) in
      let ds = List.rev (limbs m []) in
      normalize s (Array.of_list ds)
    end

  let one = of_int 1
  let minus_one = of_int (-1)

  let to_int_opt v =
    let rec go i acc =
      if i < 0 then Some acc
      else begin
        let shifted = acc * base in
        if shifted / base <> acc then None
        else begin
          let next = shifted + (v.sign * v.mag.(i)) in
          if v.sign > 0 && next < shifted then None
          else if v.sign < 0 && next > shifted then None
          else go (i - 1) next
        end
      end
    in
    go (Array.length v.mag - 1) 0

  let to_float v =
    let acc = ref 0.0 in
    for i = Array.length v.mag - 1 downto 0 do
      acc := (!acc *. float_of_int base) +. float_of_int v.mag.(i)
    done;
    if v.sign < 0 then -. !acc else !acc

  let pow b e =
    if e < 0 then invalid_arg "Bigint.pow: negative exponent";
    let rec go acc b e =
      if e = 0 then acc
      else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
      else go acc (mul b b) (e lsr 1)
    in
    go one b e

  let chunk = 10_000 (* decimal I/O processes 4 digits at a time *)

  let to_string v =
    if v.sign = 0 then "0"
    else begin
      let buf = Buffer.create 16 in
      let rec go m acc =
        if Array.length m = 0 then acc
        else begin
          let q, r = mag_divmod_limb m chunk in
          let q = (normalize 1 q).mag in
          go q (r :: acc)
        end
      in
      match go v.mag [] with
      | [] -> assert false
      | first :: rest ->
        if v.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest;
        Buffer.contents buf
    end

  let of_string s =
    let len = String.length s in
    if len = 0 then invalid_arg "Bigint.of_string: empty string";
    let neg_sign, start =
      match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
    in
    if start >= len then invalid_arg "Bigint.of_string: no digits";
    let acc = ref zero in
    let i = ref start in
    while !i < len do
      let upto = min len (!i + 4) in
      let upto = if !i = start then start + (((len - start - 1) mod 4) + 1) else upto in
      let piece = String.sub s !i (upto - !i) in
      String.iter
        (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit")
        piece;
      let v = int_of_string piece in
      let factor = match upto - !i with 1 -> 10 | 2 -> 100 | 3 -> 1000 | _ -> chunk in
      acc := add (mul !acc (of_int factor)) (of_int v);
      i := upto
    done;
    if neg_sign then neg !acc else !acc
end

module Rat = struct
  (* Normalised rationals over the reference bigint: den > 0,
     gcd (num, den) = 1, zero is 0/1. *)

  module B = Bigint

  type t = { num : B.t; den : B.t }

  let make num den =
    if B.is_zero den then raise Division_by_zero;
    if B.is_zero num then { num = B.zero; den = B.one }
    else begin
      let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
      let g = B.gcd num den in
      if B.equal g B.one then { num; den } else { num = B.div num g; den = B.div den g }
    end

  let of_ints a b = make (B.of_int a) (B.of_int b)
  let of_int n = { num = B.of_int n; den = B.one }
  let num v = v.num
  let den v = v.den
  let zero = of_int 0
  let one = of_int 1
  let sign v = B.sign v.num
  let is_zero v = B.is_zero v.num

  let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)
  let equal a b = B.equal a.num b.num && B.equal a.den b.den
  let neg v = { v with num = B.neg v.num }
  let abs v = { v with num = B.abs v.num }

  let add a b =
    let g = B.gcd a.den b.den in
    if B.equal g B.one then
      make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
    else begin
      let da = B.div a.den g and db = B.div b.den g in
      make (B.add (B.mul a.num db) (B.mul b.num da)) (B.mul a.den db)
    end

  let sub a b = add a (neg b)
  let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)

  let inv v =
    if is_zero v then raise Division_by_zero;
    make v.den v.num

  let div a b = mul a (inv b)

  let floor v =
    let q, r = B.divmod v.num v.den in
    if B.sign r < 0 then B.sub q B.one else q

  let ceil v =
    let q, r = B.divmod v.num v.den in
    if B.sign r > 0 then B.add q B.one else q

  let to_string v =
    if B.equal v.den B.one then B.to_string v.num
    else B.to_string v.num ^ "/" ^ B.to_string v.den

  let of_string s =
    match String.index_opt s '/' with
    | Some i ->
      let a = B.of_string (String.sub s 0 i) in
      let b = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make a b
    | None -> { num = B.of_string s; den = B.one }
end
