(* Normalised rationals: den > 0, gcd (num, den) = 1, zero is 0/1.

   [make] is the single normalisation point — it alone flips the sign onto
   the numerator and divides out the gcd; every other constructor either
   routes through it or proves the invariant locally (documented at each
   site). Comparisons and [floor]/[ceil] rely on den > 0 without re-checking.

   Fast paths: when all four parts of an operation are small bigints
   (single native word — see {!Bigint.is_small}), add/sub/mul/div/compare
   run entirely on machine integers with overflow guards, falling back to
   the general bigint path on the rare overflow. [mul]/[div] use the
   normalised-gcd trick: cross-reducing gcd (|a.num|, b.den) and
   gcd (|b.num|, a.den) first means the final products are already coprime,
   so no gcd of large products is ever taken. *)

module B = Bigint

type t = { num : B.t; den : B.t }

exception Overflow

(* Native helpers that raise [Overflow] instead of wrapping. Operands are
   values of small bigints, hence never [min_int]. *)

let add_s x y =
  let s = x + y in
  if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then raise_notrace Overflow;
  if s = min_int then raise_notrace Overflow;
  s

let mul_s x y =
  if x = 0 || y = 0 then 0
  else begin
    let ax = Stdlib.abs x and ay = Stdlib.abs y in
    if ax > max_int / ay then raise_notrace Overflow;
    x * y
  end

let rec gcd_int x y = if y = 0 then x else gcd_int y (x mod y)

(* Normalise native [n]/[d], [d] <> 0. Quotients of in-range values stay in
   range, so the result needs no further checks. *)
let make_small n d =
  if n = 0 then { num = B.zero; den = B.one }
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = gcd_int d (Stdlib.abs n) in
    { num = B.of_int (n / g); den = B.of_int (d / g) }
  end

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_small num && B.is_small den then make_small (B.small_value num) (B.small_value den)
  else if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.equal g B.one then { num; den } else { num = B.div num g; den = B.div den g }
  end

let of_ints a b = make (B.of_int a) (B.of_int b)

(* den = 1 > 0 and gcd (n, 1) = 1: normalised by construction. *)
let of_int n = { num = B.of_int n; den = B.one }
let of_bigint n = { num = n; den = B.one }
let num v = v.num
let den v = v.den

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign v = B.sign v.num
let is_zero v = B.is_zero v.num

(* Both operations preserve den > 0 and coprimality. *)
let neg v = { v with num = B.neg v.num }
let abs v = { v with num = B.abs v.num }

let small4 a b = B.is_small a.num && B.is_small a.den && B.is_small b.num && B.is_small b.den

let compare_big a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
  B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let compare a b =
  if small4 a b then begin
    try
      Stdlib.compare
        (mul_s (B.small_value a.num) (B.small_value b.den))
        (mul_s (B.small_value b.num) (B.small_value a.den))
    with Overflow -> compare_big a b
  end
  else compare_big a b

let equal a b = B.equal a.num b.num && B.equal a.den b.den
let hash v = Hashtbl.hash (B.hash v.num, B.hash v.den)

let add_big a b =
  (* Use the gcd of denominators to keep intermediates small. *)
  let g = B.gcd a.den b.den in
  if B.equal g B.one then make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
  else begin
    let da = B.div a.den g and db = B.div b.den g in
    make (B.add (B.mul a.num db) (B.mul b.num da)) (B.mul a.den db)
  end

let add a b =
  if small4 a b then begin
    try
      let an = B.small_value a.num and ad = B.small_value a.den in
      let bn = B.small_value b.num and bd = B.small_value b.den in
      let g = gcd_int ad bd in
      let da = ad / g and db = bd / g in
      make_small (add_s (mul_s an db) (mul_s bn da)) (mul_s ad db)
    with Overflow -> add_big a b
  end
  else add_big a b

let sub a b = add a (neg b)

let mul a b =
  if small4 a b then begin
    try
      let an = B.small_value a.num and ad = B.small_value a.den in
      let bn = B.small_value b.num and bd = B.small_value b.den in
      (* Cross-reduce first: with a and b each normalised, the cross-reduced
         products are coprime, so the result is normalised without a gcd of
         the products. Sign: ad, bd > 0, so the numerator carries it. *)
      let g1 = gcd_int bd (Stdlib.abs an) and g2 = gcd_int ad (Stdlib.abs bn) in
      let n = mul_s (an / g1) (bn / g2) in
      let d = mul_s (ad / g2) (bd / g1) in
      { num = B.of_int n; den = B.of_int d }
    with Overflow -> make (B.mul a.num b.num) (B.mul a.den b.den)
  end
  else make (B.mul a.num b.num) (B.mul a.den b.den)

let inv v =
  if is_zero v then raise Division_by_zero;
  if B.is_small v.num && B.is_small v.den then begin
    (* Swapping the already-coprime parts keeps normalisation; only the
       sign must move onto the new numerator. Parts are never min_int. *)
    let n = B.small_value v.num and d = B.small_value v.den in
    if n < 0 then { num = B.of_int (-d); den = B.of_int (-n) }
    else { num = B.of_int d; den = B.of_int n }
  end
  else make v.den v.num

let div a b = mul a (inv b)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let mul_int v n = make (B.mul_int v.num n) v.den

let pow v e =
  (* Powers of coprime parts stay coprime, and den^e > 0. *)
  if e >= 0 then { num = B.pow v.num e; den = B.pow v.den e }
  else begin
    if B.is_zero v.num then raise Division_by_zero;
    make (B.pow v.den (-e)) (B.pow v.num (-e))
  end

let floor v =
  let q, r = B.divmod v.num v.den in
  if B.sign r < 0 then B.sub q B.one else q

let ceil v =
  let q, r = B.divmod v.num v.den in
  if B.sign r > 0 then B.add q B.one else q

let to_float v = B.to_float v.num /. B.to_float v.den

let of_float_approx f ~max_den =
  if max_den <= 0 then invalid_arg "Rat.of_float_approx: max_den must be positive";
  if Float.is_nan f || Float.is_integer f then of_int (int_of_float f)
  else begin
    (* Continued-fraction convergents p_k/q_k until q exceeds max_den. *)
    let negated = f < 0.0 in
    let f = Float.abs f in
    let rec go x p0 q0 p1 q1 steps =
      if steps = 0 then (p1, q1)
      else begin
        let a = Float.to_int (Float.floor x) in
        let p2 = (a * p1) + p0 and q2 = (a * q1) + q0 in
        if q2 > max_den || q2 < 0 then (p1, q1)
        else begin
          let frac = x -. Float.floor x in
          if frac < 1e-12 then (p2, q2) else go (1.0 /. frac) p1 q1 p2 q2 (steps - 1)
        end
      end
    in
    (* Convergent seeds: (h_{-2},k_{-2}) = (0,1), (h_{-1},k_{-1}) = (1,0). *)
    let p, q = go f 0 1 1 0 64 in
    let v = of_ints p (Stdlib.max q 1) in
    if negated then neg v else v
  end

let to_string v =
  if B.equal v.den B.one then B.to_string v.num
  else B.to_string v.num ^ "/" ^ B.to_string v.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let a = B.of_string (String.sub s 0 i) in
    let b = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (B.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let scale = B.pow (B.of_int 10) (String.length frac) in
       let whole = B.of_string (if int_part = "" || int_part = "-" || int_part = "+" then int_part ^ "0" else int_part) in
       let fpart = if frac = "" then B.zero else B.of_string frac in
       let neg_sign = String.length s > 0 && s.[0] = '-' in
       let mag = B.add (B.mul (B.abs whole) scale) fpart in
       make (if neg_sign then B.neg mag else mag) scale)

let pp fmt v = Format.pp_print_string fmt (to_string v)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
