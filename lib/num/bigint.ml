(* Arbitrary-precision integers with a small-int fast path.

   Representation invariants (canonical — structural equality is numeric):
   - [Small n] holds every value representable as a native [int] except
     [min_int] (excluded so that [neg]/[abs] on a [Small] can never
     overflow);
   - [Big { sign; mag }] holds everything else: [mag] is little-endian
     base-2^15 limbs with no trailing (most-significant) zero limb, and
     [sign] is -1 or 1 (never 0 — zero is [Small 0]).
   Every constructor funnels through [mk], which picks the unique
   representation, so [Small]/[Big] overlap is impossible and pattern
   matches can rely on [Big] meaning "does not fit a native int".

   The fast paths matter: the exact-rational simplex behind the APTAS
   configuration LP spends nearly all of its time in add/mul/gcd on values
   that fit comfortably in a native int, and the [Small] arm runs those on
   machine integers with overflow guards, touching no limb buffers at all.
   The magnitude primitives below are unchanged from the reference
   implementation (kept verbatim in {!Reference.Bigint} for differential
   testing). *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let mask = base - 1

type t =
  | Small of int
  | Big of { sign : int; mag : int array }

let zero = Small 0

(* ------------------------------------------------------------------ *)
(* Magnitude primitives (arrays of limbs, little-endian, non-negative) *)

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Precondition: a >= b (as magnitudes). *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        (* Propagate the final carry; it can ripple past i+lb. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    r
  end

(* Karatsuba above this limb count; below it the schoolbook constant wins. *)
let karatsuba_threshold = 32

(* Trim trailing zero limbs (most significant side). *)
let mag_trim m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

(* r += x shifted left by [shift] limbs (in place; r is large enough). *)
let mag_add_into r x shift =
  let carry = ref 0 in
  let lx = Array.length x in
  let i = ref 0 in
  while !i < lx || !carry <> 0 do
    let idx = shift + !i in
    let t = r.(idx) + (if !i < lx then x.(!i) else 0) + !carry in
    r.(idx) <- t land mask;
    carry := t lsr base_bits;
    incr i
  done

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if min la lb < karatsuba_threshold then mag_mul_school a b
  else begin
    (* Karatsuba: split at m, a = a1·B^m + a0, b = b1·B^m + b0;
       a·b = z2·B^2m + (z1 − z0 − z2)·B^m + z0 with
       z0 = a0·b0, z2 = a1·b1, z1 = (a0+a1)(b0+b1). *)
    let m = (max la lb + 1) / 2 in
    let lo x = if Array.length x <= m then x else Array.sub x 0 m in
    let hi x = if Array.length x <= m then [||] else Array.sub x m (Array.length x - m) in
    let a0 = mag_trim (lo a) and a1 = mag_trim (hi a) in
    let b0 = mag_trim (lo b) and b1 = mag_trim (hi b) in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 = mag_mul (mag_trim (mag_add a0 a1)) (mag_trim (mag_add b0 b1)) in
    (* middle = z1 - z0 - z2 (non-negative by construction). *)
    let middle = mag_trim (mag_sub (mag_trim (mag_sub (mag_trim z1) (mag_trim z0))) (mag_trim z2)) in
    let r = Array.make (la + lb + 1) 0 in
    mag_add_into r (mag_trim z0) 0;
    mag_add_into r middle m;
    mag_add_into r (mag_trim z2) (2 * m);
    r
  end

(* Multiply a magnitude by a single limb value d, 0 <= d < base. *)
let mag_mul_limb a d =
  let la = Array.length a in
  if la = 0 || d = 0 then [||]
  else begin
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * d) + !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Short division of a magnitude by a limb 0 < d < base: (quotient, rem). *)
let mag_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth Algorithm D long division of magnitudes. Precondition:
   Array.length v >= 2 and mag_compare u v >= 0. Returns (q, r). *)
let mag_divmod_long u v =
  let nv = Array.length v in
  let nu = Array.length u in
  (* Normalisation: scale so the divisor's top limb is >= base/2. *)
  let d = base / (v.(nv - 1) + 1) in
  let un0 = mag_mul_limb u d in
  (* Ensure un has exactly nu+1 limbs (mag_mul_limb already appends one). *)
  let un = Array.make (nu + 1) 0 in
  Array.blit un0 0 un 0 (min (Array.length un0) (nu + 1));
  let vn0 = mag_mul_limb v d in
  let vn = Array.sub vn0 0 nv in
  (* The scaled divisor fits in nv limbs because d*v < base^nv. *)
  assert (Array.length vn0 <= nv || vn0.(nv) = 0);
  let q = Array.make (nu - nv + 1) 0 in
  for j = nu - nv downto 0 do
    let top = (un.(j + nv) lsl base_bits) lor un.(j + nv - 1) in
    let qhat = ref (top / vn.(nv - 1)) in
    let rhat = ref (top mod vn.(nv - 1)) in
    let continue = ref true in
    while !continue do
      if
        !qhat >= base
        || (nv >= 2 && !qhat * vn.(nv - 2) > ((!rhat lsl base_bits) lor un.(j + nv - 2)))
      then begin
        decr qhat;
        rhat := !rhat + vn.(nv - 1);
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* Multiply-subtract qhat * vn from un[j .. j+nv]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to nv - 1 do
      let p = !qhat * vn.(i) + !carry in
      carry := p lsr base_bits;
      let d0 = un.(i + j) - (p land mask) - !borrow in
      if d0 < 0 then begin
        un.(i + j) <- d0 + base;
        borrow := 1
      end else begin
        un.(i + j) <- d0;
        borrow := 0
      end
    done;
    let d0 = un.(j + nv) - !carry - !borrow in
    if d0 < 0 then begin
      un.(j + nv) <- d0 + base;
      (* qhat was one too large: add the divisor back. *)
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to nv - 1 do
        let s = un.(i + j) + vn.(i) + !carry2 in
        un.(i + j) <- s land mask;
        carry2 := s lsr base_bits
      done;
      un.(j + nv) <- (un.(j + nv) + !carry2) land mask
    end
    else un.(j + nv) <- d0;
    q.(j) <- !qhat
  done;
  (* Remainder = un[0..nv-1] / d. *)
  let rm = Array.sub un 0 nv in
  let r, r0 = mag_divmod_limb rm d in
  assert (r0 = 0);
  (q, r)

(* ------------------------------------------------------------------ *)
(* Representation plumbing: Small <-> magnitude *)

(* A trimmed magnitude of <= 4 limbs is < 2^60 and always fits; 5 limbs fit
   iff the top limb is <= 3 (value <= 2^62 - 1 = max_int); more never fit.
   [min_int] itself (magnitude 2^62, five limbs with top limb 4) lands in
   the [Big] arm, as required by the canonical invariant. *)
let small_of_mag sign mag n =
  let v = ref 0 in
  for i = n - 1 downto 0 do
    v := (!v lsl base_bits) lor mag.(i)
  done;
  if sign < 0 then - !v else !v

(* The single normalisation funnel: every signed result built from limbs
   goes through here, so the canonical Small/Big split holds everywhere. *)
let mk sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n <= 4 || (!n = 5 && mag.(4) <= 3) then Small (small_of_mag sign mag !n)
  else if !n = Array.length mag then Big { sign; mag }
  else Big { sign; mag = Array.sub mag 0 !n }

(* Magnitude limbs of a non-negative native value (0 -> [||]). *)
let mag_of_abs v =
  if v = 0 then [||]
  else begin
    let rec len x acc = if x = 0 then acc else len (x lsr base_bits) (acc + 1) in
    let l = len v 0 in
    let m = Array.make l 0 in
    let x = ref v in
    for i = 0 to l - 1 do
      m.(i) <- !x land mask;
      x := !x lsr base_bits
    done;
    m
  end

(* min_int = -2^62: magnitude limbs 0,0,0,0,4 in base 2^15. *)
let big_min_int = Big { sign = -1; mag = [| 0; 0; 0; 0; 4 |] }

(* Sign and magnitude of any value. [Small n] has n <> min_int, so
   [Stdlib.abs] is safe. *)
let parts = function
  | Small 0 -> (0, [||])
  | Small n -> ((if n < 0 then -1 else 1), mag_of_abs (Stdlib.abs n))
  | Big b -> (b.sign, b.mag)

let is_small = function Small _ -> true | Big _ -> false
let small_value = function Small n -> n | Big _ -> invalid_arg "Bigint.small_value: big"

let is_zero = function Small 0 -> true | _ -> false
let sign = function Small 0 -> 0 | Small n -> if n < 0 then -1 else 1 | Big b -> b.sign

let limb_count = function
  | Small 0 -> 0
  | Small n ->
    let rec len x acc = if x = 0 then acc else len (x lsr base_bits) (acc + 1) in
    len (Stdlib.abs n) 0
  | Big b -> Array.length b.mag

(* ------------------------------------------------------------------ *)
(* Signed operations *)

(* A canonical [Big] is min_int or has magnitude > max_int, so it compares
   away from every [Small] purely by sign. *)
let compare a b =
  match (a, b) with
  | Small x, Small y -> Stdlib.compare x y
  | Small _, Big b -> if b.sign < 0 then 1 else -1
  | Big a, Small _ -> if a.sign < 0 then -1 else 1
  | Big a, Big b ->
    if a.sign <> b.sign then Stdlib.compare a.sign b.sign
    else if a.sign >= 0 then mag_compare a.mag b.mag
    else mag_compare b.mag a.mag

let equal a b = compare a b = 0

let neg = function
  | Small 0 as z -> z
  | Small n -> Small (-n)
  | Big b ->
    (* |value| > max_int or value = min_int: the negation never fits a
       Small either (2^62 > max_int), so no re-normalisation is needed. *)
    Big { b with sign = -b.sign }

let abs v = match v with Small n -> if n < 0 then Small (-n) else v | Big b -> if b.sign < 0 then Big { b with sign = 1 } else v

let add a b =
  match (a, b) with
  | Small 0, _ -> b
  | _, Small 0 -> a
  | Small x, Small y ->
    let s = x + y in
    if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then
      (* Native overflow: redo on limbs (|x|+|y| <= 2*max_int is fine there). *)
      mk (if x > 0 then 1 else -1) (mag_add (mag_of_abs (Stdlib.abs x)) (mag_of_abs (Stdlib.abs y)))
    else if s = min_int then big_min_int
    else Small s
  | _ ->
    let sa, ma = parts a and sb, mb = parts b in
    if sa = sb then mk sa (mag_add ma mb)
    else begin
      match mag_compare ma mb with
      | 0 -> zero
      | c when c > 0 -> mk sa (mag_sub ma mb)
      | _ -> mk sb (mag_sub mb ma)
    end

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Small 0, _ | _, Small 0 -> zero
  | Small x, Small y ->
    let ax = Stdlib.abs x and ay = Stdlib.abs y in
    if ax <= max_int / ay then Small (x * y)
    else
      let s = if (x < 0) = (y < 0) then 1 else -1 in
      mk s (mag_mul (mag_of_abs ax) (mag_of_abs ay))
  | _ ->
    let sa, ma = parts a and sb, mb = parts b in
    mk (sa * sb) (mag_mul ma mb)

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small 0, _ -> (zero, zero)
  | Small x, Small y ->
    (* Truncated quotient and dividend-signed remainder, exactly OCaml's
       (/) and (mod); x <> min_int rules out the min_int / -1 overflow. *)
    (Small (x / y), Small (x mod y))
  | _ ->
    let sa, ma = parts a and sb, mb = parts b in
    if mag_compare ma mb < 0 then (zero, a)
    else begin
      let qm, rm =
        if Array.length mb = 1 then begin
          let q, r = mag_divmod_limb ma mb.(0) in
          (q, if r = 0 then [||] else [| r |])
        end
        else mag_divmod_long ma mb
      in
      (mk (sa * sb) qm, mk sa rm)
    end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  match (a, b) with
  | Small x, Small y ->
    let rec go x y = if y = 0 then x else go y (x mod y) in
    Small (go (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
    (* One big-integer remainder step, then recurse; magnitudes shrink
       fast and the loop lands in the native arm almost immediately. *)
    let a = abs a and b = abs b in
    if is_zero b then a else gcd b (rem a b)

(* ------------------------------------------------------------------ *)
(* Conversions *)

let of_int n = if n = min_int then big_min_int else Small n
let one = Small 1
let two = Small 2
let minus_one = Small (-1)

let to_int_opt = function
  | Small n -> Some n
  | Big b ->
    (* The only Big value that fits a native int is min_int itself. *)
    if b.sign < 0 && mag_compare b.mag [| 0; 0; 0; 0; 4 |] = 0 then Some min_int else None

let to_int_exn v =
  match to_int_opt v with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value does not fit in a native int"

let to_float = function
  | Small n -> float_of_int n
  | Big b ->
    let acc = ref 0.0 in
    for i = Array.length b.mag - 1 downto 0 do
      acc := (!acc *. float_of_int base) +. float_of_int b.mag.(i)
    done;
    if b.sign < 0 then -. !acc else !acc

let mul_int v n = mul v (of_int n)

let compare_int v n =
  match v with
  | Small m -> Stdlib.compare m n
  | Big _ -> compare v (of_int n)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let chunk = 10_000 (* decimal I/O processes 4 digits at a time *)

let to_string = function
  | Small n -> string_of_int n
  | Big b ->
    let buf = Buffer.create 16 in
    let rec go m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = mag_divmod_limb m chunk in
        go (mag_trim q) (r :: acc)
      end
    in
    (match go b.mag [] with
     | [] -> assert false
     | first :: rest ->
       if b.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest;
       Buffer.contents buf)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < len do
    let upto = min len (!i + 4) in
    (* Align the first chunk so all later chunks are exactly 4 digits. *)
    let upto = if !i = start then start + (((len - start - 1) mod 4) + 1) else upto in
    let piece = String.sub s !i (upto - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") piece;
    let v = int_of_string piece in
    let factor = match upto - !i with 1 -> 10 | 2 -> 100 | 3 -> 1000 | _ -> chunk in
    acc := add (mul !acc (of_int factor)) (of_int v);
    i := upto
  done;
  if neg_sign then neg !acc else !acc

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* Canonical representation makes each case's structural hash consistent
   with [equal]: equal values are the identical constructor and fields. *)
let hash = function Small n -> Hashtbl.hash n | Big b -> Hashtbl.hash (b.sign, b.mag)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
