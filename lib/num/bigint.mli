(** Arbitrary-precision signed integers.

    Implemented from scratch on base-2{^15} limbs so that every intermediate
    product and carry fits comfortably in a native 63-bit [int], with a
    small-int fast representation: values that fit a native [int] are carried
    as one machine word and their add/mul/div/gcd run on machine arithmetic
    with overflow guards, falling back to the limb code only when a result
    outgrows the word. Values are immutable and canonically normalised
    (small iff it fits, no leading zero limbs, a unique zero), so structural
    equality coincides with numeric equality. The pre-fast-path code is kept
    verbatim in {!Reference} as the differential-testing oracle.

    This module exists because the sealed build environment provides no
    arbitrary-precision package (no [zarith]); the exact-rational simplex in
    {!Spp_lp} depends on it. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int n] represents [n] exactly, including [min_int]. *)
val of_int : int -> t

(** [to_int_opt v] is [Some n] when [v] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [to_int_exn v] is the native value of [v].
    @raise Failure when [v] does not fit in a native [int]. *)
val to_int_exn : t -> int

(** [to_float v] is the nearest-ish float (exact for small magnitudes,
    monotone approximation for large ones). *)
val to_float : t -> float

(** [of_string s] parses an optionally signed decimal literal.
    @raise Invalid_argument on the empty string or a non-digit character. *)
val of_string : string -> t

(** [to_string v] is the decimal rendering of [v], e.g. ["-104729"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Queries} *)

(** [sign v] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [hash v] is a structural hash compatible with {!equal}. *)
val hash : t -> int

(** Number of limbs in the magnitude; a crude size measure used by tests. *)
val limb_count : t -> int

(** [is_small v] is [true] when [v] is carried in the single-native-int fast
    representation — every value except [min_int] and magnitudes beyond
    [max_int]. The canonical representation guarantees the converse too:
    [is_small v = false] means [v] genuinely does not fit. {!Rat} keys its
    allocation-free arithmetic fast paths on this predicate. *)
val is_small : t -> bool

(** [small_value v] is the native value when [is_small v].
    @raise Invalid_argument otherwise. *)
val small_value : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero and
    [sign r] equal to [sign a] (or zero), matching OCaml's [(/)] and [(mod)].
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [pow b e] is [b]{^ [e]} for [e >= 0].
    @raise Invalid_argument on negative exponents. *)
val pow : t -> int -> t

(** [mul_int v n] multiplies by a native int (convenience; exact). *)
val mul_int : t -> int -> t

(** {1 Comparisons to small ints} *)

val compare_int : t -> int -> int

(** {1 Infix operators}

    Opened locally as [Bigint.Infix] in arithmetic-heavy code. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
