module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module I = Spp_core.Instance

(* Canonical text form: sorted, lowest-terms, variant-tagged. Hashed with
   Digest (MD5) — collision resistance is plenty for a cache key; this is
   not a security boundary. *)

let add_rects buf rects =
  List.iter
    (fun (r : Rect.t) ->
      Buffer.add_string buf
        (Printf.sprintf "r %d %s %s\n" r.Rect.id (Q.to_string r.Rect.w) (Q.to_string r.Rect.h)))
    (List.sort (fun (a : Rect.t) b -> compare a.Rect.id b.Rect.id) rects)

let prec_canonical (inst : I.Prec.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "spp/prec\n";
  add_rects buf inst.rects;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v))
    (List.sort compare (Spp_dag.Dag.edges inst.dag));
  Buffer.contents buf

let release_canonical (inst : I.Release.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "spp/release k=%d\n" inst.k);
  add_rects buf (I.Release.rects inst);
  List.iter
    (fun (t : I.Release.task) ->
      Buffer.add_string buf
        (Printf.sprintf "t %d %s\n" t.rect.Rect.id (Q.to_string t.release)))
    (List.sort
       (fun (a : I.Release.task) b -> compare a.rect.Rect.id b.rect.Rect.id)
       inst.tasks);
  Buffer.contents buf

let digest s = Digest.to_hex (Digest.string s)

let prec inst = digest (prec_canonical inst)
let release inst = digest (release_canonical inst)

let parsed = function
  | Spp_core.Io.Prec inst -> prec inst
  | Spp_core.Io.Release inst -> release inst
