module Q = Spp_num.Rat
module Placement = Spp_geom.Placement
module Io = Spp_core.Io
module Validate = Spp_core.Validate
module Cancel = Spp_util.Cancel
module Clock = Spp_util.Clock
module Metrics = Spp_obs.Metrics
module Trace = Spp_obs.Trace

type status =
  | Solved
  | Timed_out
  | Invalid
  | Failed of string
  | Skipped of string

type outcome = {
  solver : string;
  status : status;
  height : Q.t option;
  time_ms : float;
}

type source = Computed | Memory_cache | Disk_cache

type result = {
  placement : Placement.t;
  height : Q.t;
  winner : string;
  source : source;
  outcomes : outcome list;
  time_ms : float;
  degraded : bool;
  lower_bound : Q.t;
  gap : Q.t;
}

type entry = { e_placement : Placement.t; e_height : Q.t; e_winner : string }

type t = {
  cache : entry Lru.t;
  store : Store.t option;
  tm : Telemetry.t;
  m_solve_ms : Metrics.histogram;
  m_cancel_polls : Metrics.counter;
}

(* Node-count ladder for the B&B histogram: searches span a handful of
   nodes (seed met the bound) to ~1e6 (n=7 worst case). *)
let profile_buckets = [| 1.0; 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0; 1_000_000.0 |]

let create ?(cache_capacity = 128) ?store_dir ?store_max_entries ?telemetry () =
  let cache = Lru.create ~capacity:cache_capacity in
  let store =
    Option.map (fun dir -> Store.create ?max_entries:store_max_entries ~dir ()) store_dir
  in
  let tm = Option.value telemetry ~default:(Telemetry.create ()) in
  let reg = Telemetry.metrics tm in
  Metrics.counter_fn reg ~help:"In-memory LRU evictions" "spp_cache_evictions_total"
    (fun () -> (Lru.stats cache).Lru.evictions);
  Metrics.gauge_fn reg ~help:"Entries in the in-memory LRU" "spp_cache_entries"
    (fun () -> float_of_int (Lru.stats cache).Lru.size);
  Option.iter
    (fun store ->
      Metrics.gauge_fn reg ~help:"Entries in the disk store" "spp_store_entries"
        (fun () -> float_of_int (Store.length store));
      Metrics.counter_fn reg ~help:"Disk store entries deleted by capacity pruning"
        "spp_store_prunes_total"
        (fun () -> Store.prunes store);
      Metrics.counter_fn reg ~help:"Disk store entries rejected by checksum on load"
        "spp_store_corrupt_total"
        (fun () -> Store.corrupt store))
    store;
  (* Register the profiling families eagerly (base series at zero), so a
     scrape exposes them before — or without — any solver incrementing
     the per-algorithm labelled series. *)
  ignore (Metrics.counter reg ~help:"Simplex pivot iterations" "spp_pivots_total");
  ignore
    (Metrics.counter reg ~help:"Branch-and-bound subtrees pruned by bound"
       "spp_bb_pruned_total");
  ignore
    (Metrics.counter reg ~help:"Branch-and-bound states cut by the dominance table"
       "spp_bb_dominated_total");
  ignore
    (Metrics.counter reg ~help:"Columns priced into the restricted master"
       "spp_colgen_columns_total");
  ignore
    (Metrics.counter reg ~help:"Column-generation master re-solve rounds"
       "spp_colgen_rounds_total");
  ignore
    (Metrics.histogram reg ~help:"Branch-and-bound nodes expanded per solve"
       ~buckets:profile_buckets "spp_bb_nodes");
  { cache; store; tm;
    m_solve_ms =
      Metrics.histogram reg ~help:"End-to-end solve latency in milliseconds" "spp_solve_ms";
    m_cancel_polls =
      Metrics.counter reg ~help:"Cancellation points reached by raced solvers"
        "spp_cancel_polls_total" }

let telemetry t = t.tm
let cache_stats t = Lru.stats t.cache
let cache_capacity t = Lru.capacity t.cache
let store_dir t = Option.map Store.dir t.store

let pp_status fmt = function
  | Solved -> Format.pp_print_string fmt "solved"
  | Timed_out -> Format.pp_print_string fmt "timeout"
  | Invalid -> Format.pp_print_string fmt "invalid"
  | Failed msg -> Format.fprintf fmt "failed(%s)" msg
  | Skipped reason -> Format.fprintf fmt "skipped(%s)" reason

let status_counter = function
  | Solved -> Some "solver.solved"
  | Timed_out -> Some "solver.timeout"
  | Invalid -> Some "solver.invalid"
  | Failed _ -> Some "solver.failed"
  | Skipped _ -> None

let status_label = function
  | Solved -> "solved"
  | Timed_out -> "timeout"
  | Invalid -> "invalid"
  | Failed _ -> "failed"
  | Skipped _ -> "skipped"

let rects_of = function
  | Io.Prec inst -> inst.Spp_core.Instance.Prec.rects
  | Io.Release inst -> Spp_core.Instance.Release.rects inst

let violations parsed p =
  match parsed with
  | Io.Prec inst -> Validate.check_prec inst p
  | Io.Release inst -> Validate.check_release inst p

let lower_bound_of = function
  | Io.Prec inst -> Spp_core.Lower_bounds.prec inst
  | Io.Release inst -> Spp_core.Lower_bounds.release inst

(* Open [name] under the trace's root when tracing is on; [k] receives the
   span only for attaching child spans and fields. *)
let traced trace name ?fields k =
  match trace with
  | None -> k None
  | Some tr ->
    Trace.with_span tr ~parent:(Trace.root tr) name (fun s ->
        Option.iter (Trace.add_fields tr s) fields;
        k (Some s))

(* The shared anytime incumbent: best validated packing known so far,
   (winner name, height, placement). Seeded with the greedy fallback
   before the race starts and updated by racers as they finish, so when
   the budget expires mid-race there is always a sound answer to degrade
   to. Lock-free: a compare-and-set loop keeps the minimum height. *)
let publish incumbent name p =
  let h = Placement.height p in
  let rec loop () =
    let cur = Atomic.get incumbent in
    let better =
      match cur with None -> true | Some (_, h', _) -> Q.compare h h' < 0
    in
    if better && not (Atomic.compare_and_set incumbent cur (Some (name, h, p)))
    then loop ()
  in
  loop ()

(* One raced member: run under the shared token, validate, classify.
   Each member has its domain to itself, so resetting the ambient
   profile accumulator here and reading it back in [finish] attributes
   the counted work to exactly this algorithm. *)
let race_one parsed cancel incumbent trace (spec : Portfolio.spec) =
  let t0 = Clock.now_ms () in
  Spp_obs.Profile.reset ();
  let s =
    match trace with
    | None -> None
    | Some (tr, race_span) -> Some (tr, Trace.span tr ~parent:race_span ("algo:" ^ spec.Portfolio.name))
  in
  let finish status height placement =
    let prof = Spp_obs.Profile.read () in
    Option.iter
      (fun (tr, s) ->
        let pf =
          List.filter_map
            (fun (k, v) -> if v > 0 then Some (k, Spp_obs.Field.Int v) else None)
            [ ("pivots", prof.Spp_obs.Profile.pivots);
              ("bb_nodes", prof.Spp_obs.Profile.bb_nodes);
              ("bb_pruned", prof.Spp_obs.Profile.bb_pruned);
              ("bb_dominated", prof.Spp_obs.Profile.bb_dominated);
              ("colgen_columns", prof.Spp_obs.Profile.colgen_columns);
              ("colgen_rounds", prof.Spp_obs.Profile.colgen_rounds) ]
        in
        Trace.finish
          ~fields:(("status", Spp_obs.Field.String (status_label status)) :: pf)
          tr s)
      s;
    ( { solver = spec.Portfolio.name; status; height; time_ms = Clock.elapsed_ms t0 },
      placement, prof )
  in
  match spec.Portfolio.run ~cancel parsed with
  | p -> (
    let faults =
      match s with
      | None -> violations parsed p
      | Some (tr, s) -> Trace.with_span tr ~parent:s "validate" (fun _ -> violations parsed p)
    in
    match faults with
    | [] ->
      publish incumbent spec.Portfolio.name p;
      finish Solved (Some (Placement.height p)) (Some p)
    | _ :: _ -> finish Invalid None None)
  | exception Cancel.Cancelled -> finish Timed_out None None
  | exception e -> finish (Failed (Printexc.to_string e)) None None

let record_outcome t (o : outcome) =
  Option.iter (Telemetry.incr t.tm) (status_counter o.status);
  (match o.status with
   | Skipped _ -> ()
   | status ->
     Metrics.incr
       (Metrics.counter (Telemetry.metrics t.tm)
          ~help:"Raced solver outcomes by algorithm"
          ~labels:[ ("algo", o.solver); ("outcome", status_label status) ]
          "spp_algo_outcomes_total"));
  Telemetry.record t.tm ~name:"solver"
    ([ ("solver", Telemetry.String o.solver);
       ("status", Telemetry.String (Format.asprintf "%a" pp_status o.status));
       ("ms", Telemetry.Float o.time_ms) ]
     @ match o.height with
       | Some h -> [ ("height", Telemetry.String (Q.to_string h)) ]
       | None -> [])

(* Fold one raced member's ambient-profile snapshot into the labelled
   solver-introspection series. *)
let record_profile t algo (p : Spp_obs.Profile.snapshot) =
  if not (Spp_obs.Profile.is_zero p) then begin
    let reg = Telemetry.metrics t.tm in
    let count name help v =
      if v > 0 then Metrics.incr ~by:v (Metrics.counter reg ~help ~labels:[ ("algo", algo) ] name)
    in
    count "spp_pivots_total" "Simplex pivot iterations" p.Spp_obs.Profile.pivots;
    count "spp_bb_pruned_total" "Branch-and-bound subtrees pruned by bound"
      p.Spp_obs.Profile.bb_pruned;
    count "spp_bb_dominated_total" "Branch-and-bound states cut by the dominance table"
      p.Spp_obs.Profile.bb_dominated;
    count "spp_colgen_columns_total" "Columns priced into the restricted master"
      p.Spp_obs.Profile.colgen_columns;
    count "spp_colgen_rounds_total" "Column-generation master re-solve rounds"
      p.Spp_obs.Profile.colgen_rounds;
    if p.Spp_obs.Profile.bb_nodes > 0 then
      Metrics.observe
        (Metrics.histogram reg ~help:"Branch-and-bound nodes expanded per solve"
           ~buckets:profile_buckets ~labels:[ ("algo", algo) ] "spp_bb_nodes")
        (float_of_int p.Spp_obs.Profile.bb_nodes)
  end

let record_win t winner =
  Metrics.incr
    (Metrics.counter (Telemetry.metrics t.tm) ~help:"Races won by algorithm"
       ~labels:[ ("algo", winner) ] "spp_algo_wins_total")

let finish_result t fp (r : result) =
  Metrics.observe t.m_solve_ms r.time_ms;
  Telemetry.record t.tm ~name:"solve"
    ([ ("fingerprint", Telemetry.String fp);
      ("winner", Telemetry.String r.winner);
      ("height", Telemetry.String (Q.to_string r.height));
      ("source",
       Telemetry.String
         (match r.source with
          | Computed -> "computed"
          | Memory_cache -> "cache.memory"
          | Disk_cache -> "cache.disk"));
      ("ms", Telemetry.Float r.time_ms) ]
     @ (if r.degraded then [ ("degraded", Telemetry.String "true") ] else []));
  r

let solve ?budget_ms ?algos ?workers ?trace t parsed =
  Spp_util.Fault.hit "engine.solve";
  let t0 = Clock.now_ms () in
  Telemetry.incr t.tm "solve.runs";
  let fp = Fingerprint.parsed parsed in
  let lb = lower_bound_of parsed in
  let gap_of height = Q.sub height lb in
  let probe =
    traced trace "cache.probe" (fun _ ->
        match Lru.find t.cache fp with
        | Some e -> `Memory e
        | None -> (
          match t.store with
          | None -> `Miss
          | Some store -> (
            match Store.find store ~rects:(rects_of parsed) ~fingerprint:fp with
            | Some (winner, p) when violations parsed p = [] -> `Disk (winner, p)
            | Some _ | None -> `Miss)))
  in
  match probe with
  | `Memory e ->
    Telemetry.incr t.tm "cache.hit";
    Telemetry.incr t.tm "cache.hit.memory";
    finish_result t fp
      { placement = e.e_placement; height = e.e_height; winner = e.e_winner;
        source = Memory_cache; outcomes = []; time_ms = Clock.elapsed_ms t0;
        degraded = false; lower_bound = lb; gap = gap_of e.e_height }
  | `Disk (winner, p) ->
    Telemetry.incr t.tm "cache.hit";
    Telemetry.incr t.tm "cache.hit.disk";
    let height = Placement.height p in
    Lru.add t.cache fp { e_placement = p; e_height = height; e_winner = winner };
    finish_result t fp
      { placement = p; height; winner; source = Disk_cache; outcomes = [];
        time_ms = Clock.elapsed_ms t0; degraded = false; lower_bound = lb;
        gap = gap_of height }
  | `Miss ->
    Telemetry.incr t.tm "cache.miss";
    let specs =
      match algos with Some names -> Portfolio.of_names names | None -> Portfolio.defaults parsed
    in
    let runnable, skipped =
      List.partition (fun (s : Portfolio.spec) -> s.Portfolio.applies parsed) specs
    in
    let skipped =
      List.map
        (fun (s : Portfolio.spec) ->
          { solver = s.Portfolio.name; status = Skipped "inapplicable"; height = None;
            time_ms = 0.0 })
        skipped
    in
    let cancel =
      match budget_ms with None -> Cancel.never | Some ms -> Cancel.with_deadline_ms ms
    in
    (* Seed the anytime incumbent with the guaranteed-fast greedy schedule
       before the race starts: whatever the budget does to the racers,
       there is a sound packing to degrade to. [engine.incumbent]
       suppresses the seed so the no-incumbent recovery path can be
       exercised. *)
    let incumbent = Atomic.make None in
    (try
       Spp_util.Fault.hit "engine.incumbent";
       let p = traced trace "incumbent" (fun _ -> Portfolio.fallback parsed) in
       assert (violations parsed p = []);
       publish incumbent "ls(incumbent)" p
     with Spp_util.Fault.Injected _ -> Telemetry.incr t.tm "incumbent.skipped");
    let raced =
      traced trace "race" (fun race_span ->
          let sub =
            match (trace, race_span) with Some tr, Some s -> Some (tr, s) | _ -> None
          in
          Spp_util.Parallel.map ?workers (race_one parsed cancel incumbent sub) runnable)
    in
    (match Cancel.polls cancel with
     | 0 -> ()
     | n -> Metrics.incr ~by:n t.m_cancel_polls);
    List.iter (fun ((o : outcome), _, prof) -> record_profile t o.solver prof) raced;
    let outcomes = List.map (fun (o, _, _) -> o) raced @ skipped in
    let best =
      List.fold_left
        (fun acc ((o : outcome), p, _) ->
          match (p, acc) with
          | None, _ -> acc
          | Some p, None -> Some (o, p)
          | Some p, Some (o', _) -> (
            match (o.height, o'.height) with
            | Some h, Some h' when Q.compare h h' < 0 -> Some (o, p)
            | _ -> acc))
        None raced
    in
    (* Degraded = the budget expired before any racer finished, so the
       answer is the anytime incumbent (or safety-net fallback), not a
       completed portfolio member's: the reply says so and nothing caches
       it (a repeat with a roomier budget should recompute, not replay
       the cut-short answer). A race where some members timed out but one
       solved is a normal, full-quality answer. *)
    let degraded =
      best = None
      && List.exists (fun ((o : outcome), _, _) -> o.status = Timed_out) raced
    in
    let winner, placement, outcomes =
      match best with
      | Some (o, p) -> (o.solver, p, outcomes)
      | None -> (
        match Atomic.get incumbent with
        | Some (name, _, p) ->
          (* No racer finished in budget: the anytime incumbent is the
             answer — already validated when it was published. *)
          Telemetry.incr t.tm "solver.incumbent";
          (name, p, outcomes)
        | None ->
          (* Every member timed out / failed and the incumbent seed was
             suppressed: uncancellable safety net. *)
          let t1 = Clock.now_ms () in
          let p =
            traced trace "fallback" (fun _ -> Portfolio.fallback parsed)
          in
          assert (violations parsed p = []);
          let o =
            { solver = "ls(fallback)"; status = Solved;
              height = Some (Placement.height p); time_ms = Clock.elapsed_ms t1 }
          in
          Telemetry.incr t.tm "solver.fallback";
          (o.solver, p, outcomes @ [ o ]))
    in
    List.iter (record_outcome t) outcomes;
    record_win t winner;
    let height = Placement.height placement in
    if degraded then Telemetry.incr t.tm "solve.degraded"
    else begin
      Lru.add t.cache fp { e_placement = placement; e_height = height; e_winner = winner };
      (* A failed cache write must never fail the solve we just computed. *)
      Option.iter
        (fun store ->
          try Store.add store ~fingerprint:fp ~winner placement
          with _ -> Telemetry.incr t.tm "store.write.failed")
        t.store
    end;
    finish_result t fp
      { placement; height; winner; source = Computed; outcomes;
        time_ms = Clock.elapsed_ms t0; degraded; lower_bound = lb;
        gap = gap_of height }
