(** The portfolio solver engine: one managed entry point over every
    algorithm in the repository.

    [solve] fingerprints the instance, serves repeats from an in-memory
    LRU (and optionally a disk {!Store}), and otherwise races the
    applicable {!Portfolio} members across OCaml domains under a shared
    wall-clock budget. Every raced result is checked with
    {!Spp_core.Validate} before it may win; the lowest valid packing is
    returned together with per-solver outcomes.

    The engine is an {e anytime} solver: before the race starts it seeds
    a shared incumbent with the guaranteed-fast greedy list schedule, and
    racers publish their validated packings to it as they finish. When
    the budget expires before any racer completes, [solve] answers with
    the incumbent instead of nothing; such a cut-short solve is marked
    [degraded] and is kept out of both caches (a repeat with a roomier
    budget should recompute). A race in which {e some} members timed out
    but one solved is a normal full-quality answer, not a degraded one.
    Every result also carries the
    paper's exact-rational [lower_bound] for the instance and the [gap]
    to it, so a caller can judge how far a degraded answer might be from
    optimal. If the incumbent seed itself is suppressed (the
    [engine.incumbent] fault point), the greedy scheduler still runs as
    an uncancellable fallback — [solve] always returns a valid packing.

    All activity is recorded in a {!Telemetry} value: per-solver timing
    events (name ["solver"]), per-solve summaries (name ["solve"]), and
    counters ([solve.runs], [cache.hit], [cache.hit.memory],
    [cache.hit.disk], [cache.miss], [solver.solved], [solver.timeout],
    [solver.invalid], [solver.failed], [solver.incumbent],
    [solve.degraded], [incumbent.skipped]).

    The telemetry's backing {!Spp_obs.Metrics} registry additionally
    carries richer instruments the scrape endpoint exposes: the
    [spp_solve_ms] latency histogram, [spp_algo_outcomes_total]{[algo],
    [outcome]} and [spp_algo_wins_total]{[algo]} labelled counters,
    [spp_cancel_polls_total], LRU occupancy/eviction metrics
    ([spp_cache_entries], [spp_cache_evictions_total]) and — when a disk
    store is attached — [spp_store_entries] and [spp_store_prunes_total].
    Passing [?trace] to {!solve} records a span tree of the request
    (cache probe, the race with one span per algorithm and its
    validation, the fallback) under the trace's root. *)

type status =
  | Solved  (** finished in budget and validated *)
  | Timed_out  (** hit the cancellation deadline *)
  | Invalid  (** finished but failed validation — reported, never returned *)
  | Failed of string  (** raised; the exception text *)
  | Skipped of string  (** not run; the reason (e.g. inapplicable) *)

type outcome = {
  solver : string;
  status : status;
  height : Spp_num.Rat.t option;  (** for [Solved] only *)
  time_ms : float;
}

type source = Computed | Memory_cache | Disk_cache

type result = {
  placement : Spp_geom.Placement.t;
  height : Spp_num.Rat.t;
  winner : string;  (** portfolio member that produced [placement] *)
  source : source;
  outcomes : outcome list;  (** per-member; empty on a cache hit *)
  time_ms : float;  (** wall clock for this [solve] call *)
  degraded : bool;
      (** the budget cut at least one racer short, so [placement] is the
          best answer known at expiry (possibly the anytime incumbent)
          rather than the full portfolio's. Never cached. *)
  lower_bound : Spp_num.Rat.t;
      (** the paper's instance lower bound — [max(AREA, F)] for
          precedence, [max(AREA, max (r+h))] for release instances *)
  gap : Spp_num.Rat.t;  (** [height - lower_bound]; always [>= 0] *)
}

type t

(** [create ()] builds an engine. [cache_capacity] bounds the in-memory
    LRU (default 128 instances). [store_dir] adds a disk cache shared
    across processes, bounded to [store_max_entries] files (default
    {!Store.default_max_entries}). [telemetry] shares an external log
    (default: a fresh one, retrievable via {!telemetry}). *)
val create :
  ?cache_capacity:int -> ?store_dir:string -> ?store_max_entries:int ->
  ?telemetry:Telemetry.t -> unit -> t

val telemetry : t -> Telemetry.t

(** Hit/miss/eviction counters and current size of the in-memory LRU —
    what the [spp serve] metrics endpoint reports. *)
val cache_stats : t -> Lru.stats

val cache_capacity : t -> int

(** The disk cache directory, if the engine was created with one. *)
val store_dir : t -> string option

(** [solve t parsed] races the portfolio (or the cache) as described
    above. [budget_ms]: wall-clock budget shared by all racers (default:
    unlimited). [algos]: explicit member list instead of
    {!Portfolio.defaults} — inapplicable ones are reported as [Skipped].
    [workers]: domains racing at once (default
    {!Spp_util.Parallel.available_workers}). [trace]: record this solve
    as spans under the trace's root.
    @raise Invalid_argument on an unknown name in [algos]. *)
val solve :
  ?budget_ms:float -> ?algos:string list -> ?workers:int ->
  ?trace:Spp_obs.Trace.t ->
  t -> Spp_core.Io.parsed -> result

val pp_status : Format.formatter -> status -> unit
