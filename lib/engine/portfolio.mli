(** The portfolio members: named, applicability-guarded solver wrappers.

    No single algorithm of the paper dominates — DC wins on general DAGs,
    the 3-approximation [F] on uniform heights, exact branch and bound on
    tiny instances, the APTAS on release-time instances — so the engine
    races a set of these specs and keeps the best valid packing. Every
    [run] takes a cancellation token; the long-running members poll it
    (see {!Spp_exact.Normal_bb}, {!Spp_core.Aptas}). *)

type spec = {
  name : string;
  doc : string;
  applies : Spp_core.Io.parsed -> bool;
      (** wrong variant, non-uniform heights, or size over an exact
          solver's guard all make a spec inapplicable *)
  run : cancel:Spp_util.Cancel.t -> Spp_core.Io.parsed -> Spp_geom.Placement.t;
      (** @raise Invalid_argument when called on an instance for which
          [applies] is [false] *)
}

(** All built-in members, in preference order (earlier wins height ties). *)
val builtin : spec list

val find : string -> spec option

(** [defaults p] is the applicable subset of {!builtin}. Never empty: the
    list scheduler applies to every instance. *)
val defaults : Spp_core.Io.parsed -> spec list

(** [of_names names] resolves a [--algos] list.
    @raise Invalid_argument on an unknown name, listing the known ones. *)
val of_names : string list -> spec list

(** [fallback p] packs with the greedy list scheduler ignoring any budget —
    the always-valid, near-instant safety net the engine uses when every
    raced member timed out (e.g. a zero budget). *)
val fallback : Spp_core.Io.parsed -> Spp_geom.Placement.t
