type t = { dir : string }

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

let path t fingerprint = Filename.concat t.dir (fingerprint ^ ".sol")

let find t ~rects ~fingerprint =
  let file = path t fingerprint in
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
    match String.index_opt contents '\n' with
    | None -> None
    | Some nl -> (
      let first = String.sub contents 0 nl in
      let body = String.sub contents (nl + 1) (String.length contents - nl - 1) in
      match String.split_on_char ' ' first with
      | [ "winner"; name ] -> (
        match Spp_core.Io.parse_placement ~rects body with
        | placement -> Some (name, placement)
        | exception Failure _ -> None)
      | _ -> None))

let add t ~fingerprint ~winner placement =
  let file = path t fingerprint in
  let tmp = file ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc (Printf.sprintf "winner %s\n" winner);
      Out_channel.output_string oc (Spp_core.Io.placement_to_string placement));
  Sys.rename tmp file
