type t = {
  dir : string;
  max_entries : int;
  lock : Mutex.t;  (* guards count and the rename+prune sequence *)
  mutable count : int;  (* .sol files currently in dir (approximate
                           across processes, exact within one) *)
  mutable prunes : int;  (* entries deleted by capacity pruning *)
  mutable corrupt : int;  (* entries rejected by checksum on load *)
}

let default_max_entries = 512

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let is_sol f = Filename.check_suffix f ".sol"

(* Temp files are "<fp>.sol.tmp.<pid>.<seq>"; any file with ".tmp." in its
   name is an orphan from a crashed writer (live ones exist only for the
   microseconds between write and rename). *)
let is_tmp f =
  let marker = ".tmp." in
  let nm = String.length marker and nf = String.length f in
  let rec scan i = i + nm <= nf && (String.sub f i nm = marker || scan (i + 1)) in
  scan 0

let entries dir = try Sys.readdir dir with Sys_error _ -> [||]

let create ?(max_entries = default_max_entries) ~dir () =
  if max_entries < 1 then invalid_arg "Store.create: max_entries must be >= 1";
  mkdir_p dir;
  let count = ref 0 in
  Array.iter
    (fun f ->
      if is_tmp f then (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      else if is_sol f then incr count)
    (entries dir);
  { dir; max_entries; lock = Mutex.create (); count = !count; prunes = 0; corrupt = 0 }

let dir t = t.dir
let max_entries t = t.max_entries

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> t.count)
let prunes t = locked t (fun () -> t.prunes)
let corrupt t = locked t (fun () -> t.corrupt)

let path t fingerprint = Filename.concat t.dir (fingerprint ^ ".sol")

let crc_prefix = "crc32 "

(* Entries start with "crc32 <hex>" covering every byte after that line.
   Pre-checksum entries (no crc line) are still accepted: the engine
   re-validates loaded placements anyway, so the checksum is an early,
   cheap corruption gate rather than the only line of defense. *)
let verify_checksum t contents =
  match String.index_opt contents '\n' with
  | Some nl
    when nl > String.length crc_prefix
         && String.sub contents 0 (String.length crc_prefix) = crc_prefix ->
    let hex = String.sub contents (String.length crc_prefix) (nl - String.length crc_prefix) in
    let rest = String.sub contents (nl + 1) (String.length contents - nl - 1) in
    if Spp_util.Crc32.digest_hex rest = String.lowercase_ascii hex then Some rest
    else begin
      locked t (fun () -> t.corrupt <- t.corrupt + 1);
      None
    end
  | _ -> Some contents

let find t ~rects ~fingerprint =
  let file = path t fingerprint in
  match
    Spp_util.Fault.hit "store.read";
    In_channel.with_open_text file In_channel.input_all
  with
  | exception Sys_error _ -> None
  | exception Spp_util.Fault.Injected _ -> None
  | raw -> (
    match verify_checksum t raw with
    | None -> None
    | Some contents -> (
      match String.index_opt contents '\n' with
      | None -> None
      | Some nl -> (
        let first = String.sub contents 0 nl in
        let body = String.sub contents (nl + 1) (String.length contents - nl - 1) in
        match String.split_on_char ' ' first with
        | [ "winner"; name ] -> (
          match Spp_core.Io.parse_placement ~rects body with
          | placement -> Some (name, placement)
          | exception Failure _ -> None)
        | _ -> None)))

(* Over capacity: re-count from the directory (another process may have
   pruned concurrently) and delete oldest-mtime entries down to the cap. *)
let prune_locked t =
  if t.count > t.max_entries then begin
    let sols =
      entries t.dir |> Array.to_list
      |> List.filter is_sol
      |> List.filter_map (fun f ->
             let p = Filename.concat t.dir f in
             match Unix.stat p with
             | s -> Some (s.Unix.st_mtime, p)
             | exception Unix.Unix_error _ -> None)
      |> List.sort compare
    in
    t.count <- List.length sols;
    let excess = t.count - t.max_entries in
    if excess > 0 then begin
      List.iteri
        (fun i (_, p) -> if i < excess then try Sys.remove p with Sys_error _ -> ())
        sols;
      t.count <- t.count - excess;
      t.prunes <- t.prunes + excess
    end
  end

let tmp_seq = Atomic.make 0

let add t ~fingerprint ~winner placement =
  Spp_util.Fault.hit "store.write";
  let file = path t fingerprint in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ()) (Atomic.fetch_and_add tmp_seq 1)
  in
  let body =
    Printf.sprintf "winner %s\n%s" winner (Spp_core.Io.placement_to_string placement)
  in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc (crc_prefix ^ Spp_util.Crc32.digest_hex body ^ "\n");
      Out_channel.output_string oc body);
  locked t (fun () ->
      let existed = Sys.file_exists file in
      Sys.rename tmp file;
      if not existed then t.count <- t.count + 1;
      prune_locked t)
