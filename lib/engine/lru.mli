(** Bounded LRU cache with string keys and hit/miss/eviction accounting.

    The engine keys it by {!Fingerprint} so repeated and batch workloads
    skip recomputation. Mutex-protected: safe to share across domains
    (lookups from the coordinator while racers run elsewhere). *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; size : int }

(** [create ~capacity] — [capacity >= 1] entries.
    @raise Invalid_argument on [capacity < 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] returns the cached value and promotes it to
    most-recently-used. Counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** [mem t key] — no promotion, no accounting. *)
val mem : 'a t -> string -> bool

(** [add t key v] inserts or replaces, promoting to most-recently-used and
    evicting the least-recently-used entry when over capacity. *)
val add : 'a t -> string -> 'a -> unit

val stats : 'a t -> stats
