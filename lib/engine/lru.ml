(* Classic hashtable + doubly-linked recency list; head = most recent. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards head / more recent *)
  mutable next : 'a node option;  (* towards tail / less recent *)
}

type stats = { hits : int; misses : int; evictions : int; size : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; tbl = Hashtbl.create 64; head = None; tail = None; hits = 0; misses = 0;
    evictions = 0; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.tbl)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)

let add t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
       | Some node ->
         node.value <- value;
         unlink t node;
         push_front t node
       | None ->
         let node = { key; value; prev = None; next = None } in
         Hashtbl.replace t.tbl key node;
         push_front t node);
      if Hashtbl.length t.tbl > t.capacity then begin
        match t.tail with
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.tbl lru.key;
          t.evictions <- t.evictions + 1
        | None -> assert false
      end)

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        size = Hashtbl.length t.tbl })
