(** Disk persistence for solved instances, keyed by {!Fingerprint}.

    One file per fingerprint under a cache directory:

    {v
    crc32 <hex>
    winner <solver-name>
    height <h>
    place <id> <x> <y>
    ...
    v}

    (the body after the checksum line is exactly
    {!Spp_core.Io.placement_to_string}, so entries are exact-rational and
    round-trip bit-identically). The [crc32] line covers every byte after
    it; a mismatch on load degrades to a miss and bumps {!corrupt}
    (surfaced as [spp_store_corrupt_total]). Entries written before the
    checksum existed (no [crc32] line) still load. Lets separate [spp]
    processes share work; the engine additionally validates every loaded
    placement before trusting it, so even a checksum-clean-but-stale file
    degrades to a miss.

    Fault points (see {!Spp_util.Fault}): [store.read] makes {!find}
    return [None]; [store.write] makes {!add} raise [Injected].

    The store is bounded: above [max_entries] the oldest entries (by file
    mtime) are pruned on insertion, so a long-running daemon cannot grow
    the directory without limit. Orphaned temp files left by crashed
    writers are removed on {!create}. Mutex-protected — one store may be
    shared by worker domains. *)

type t

(** Default entry cap for {!create} (512). *)
val default_max_entries : int

(** [create ~dir] opens (creating directories as needed) a store rooted at
    [dir], removing any orphaned [*.tmp.*] files. [max_entries] bounds the
    number of [.sol] entries (default {!default_max_entries}).
    @raise Sys_error / Unix errors if the path cannot be created.
    @raise Invalid_argument on [max_entries < 1]. *)
val create : ?max_entries:int -> dir:string -> unit -> t

val dir : t -> string
val max_entries : t -> int

(** [length t] is the current entry count (exact for this process's
    writes; other processes writing the same directory are re-counted at
    each prune). *)
val length : t -> int

(** [prunes t] is how many entries capacity pruning has deleted over this
    store's lifetime — surfaced as the [spp_store_prunes_total] metric. *)
val prunes : t -> int

(** [corrupt t] is how many entries failed their checksum on load over
    this store's lifetime — surfaced as [spp_store_corrupt_total]. *)
val corrupt : t -> int

(** [find t ~rects ~fingerprint] loads and parses the entry, binding
    positions to [rects] by id. Any error (absent, unreadable, malformed,
    unknown ids) is [None]. Returns [(winner, placement)]. *)
val find :
  t -> rects:Spp_geom.Rect.t list -> fingerprint:string ->
  (string * Spp_geom.Placement.t) option

(** [add t ~fingerprint ~winner placement] writes the entry atomically
    (unique temp file + rename), replacing any previous one, then prunes
    oldest-mtime entries while the store exceeds its cap. *)
val add : t -> fingerprint:string -> winner:string -> Spp_geom.Placement.t -> unit
