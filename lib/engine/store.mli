(** Disk persistence for solved instances, keyed by {!Fingerprint}.

    One file per fingerprint under a cache directory:

    {v
    winner <solver-name>
    height <h>
    place <id> <x> <y>
    ...
    v}

    (the body is exactly {!Spp_core.Io.placement_to_string}, so entries are
    exact-rational and round-trip bit-identically). Lets separate [spp]
    processes share work; the engine validates every loaded placement
    before trusting it, so a corrupt or stale file degrades to a miss. *)

type t

(** [create ~dir] opens (creating directories as needed) a store rooted at
    [dir]. @raise Sys_error / Unix errors if the path cannot be created. *)
val create : dir:string -> t

val dir : t -> string

(** [find t ~rects ~fingerprint] loads and parses the entry, binding
    positions to [rects] by id. Any error (absent, unreadable, malformed,
    unknown ids) is [None]. Returns [(winner, placement)]. *)
val find :
  t -> rects:Spp_geom.Rect.t list -> fingerprint:string ->
  (string * Spp_geom.Placement.t) option

(** [add t ~fingerprint ~winner placement] writes the entry atomically
    (temp file + rename), replacing any previous one. *)
val add : t -> fingerprint:string -> winner:string -> Spp_geom.Placement.t -> unit
