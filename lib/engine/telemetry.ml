module Clock = Spp_util.Clock
module Metrics = Spp_obs.Metrics
module Field = Spp_obs.Field

type field = Field.t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  name : string;
  at_ms : float;
  fields : (string * field) list;
}

type t = {
  epoch_ms : float;
  metrics : Metrics.t;
  handles : (string, Metrics.counter) Hashtbl.t;  (* incr-by-name fast path *)
  mutable events : event list;  (* newest first *)
  lock : Mutex.t;
}

let create ?metrics () =
  { epoch_ms = Clock.now_ms ();
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    handles = Hashtbl.create 16;
    events = [];
    lock = Mutex.create () }

let metrics t = t.metrics

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~name fields =
  let at_ms = Clock.elapsed_ms t.epoch_ms in
  locked t (fun () -> t.events <- { name; at_ms; fields } :: t.events)

let handle t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.handles name with
      | Some h -> h
      | None ->
        let h = Metrics.counter t.metrics name in
        Hashtbl.replace t.handles name h;
        h)

let incr ?(by = 1) t name = Metrics.incr ~by (handle t name)

let counter t name = Option.value ~default:0 (Metrics.find_counter t.metrics name)

let counters t = Metrics.counters t.metrics

let events t = locked t (fun () -> List.rev t.events)

let time t ~name ~fields f =
  let t0 = Clock.now_ms () in
  let finish outcome =
    record t ~name
      (fields @ [ ("ms", Float (Clock.elapsed_ms t0)); ("outcome", String outcome) ])
  in
  match f () with
  | v ->
    finish "ok";
    v
  | exception e ->
    finish "raised";
    raise e

let escape = Field.escape
let field_to_json = Field.to_json

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "{\"event\":\"%s\",\"t_ms\":%s" (escape e.name)
           (field_to_json (Float e.at_ms)));
      Field.add_fields buf e.fields;
      Buffer.add_string buf "}\n")
    (events t);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "{\"counter\":\"%s\",\"value\":%d}\n" (escape k) v))
    (counters t);
  Buffer.contents buf
