module Clock = Spp_util.Clock

type field =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  name : string;
  at_ms : float;
  fields : (string * field) list;
}

type t = {
  epoch_ms : float;
  mutable events : event list;  (* newest first *)
  counters : (string, int) Hashtbl.t;
  lock : Mutex.t;
}

let create () =
  { epoch_ms = Clock.now_ms (); events = []; counters = Hashtbl.create 16;
    lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~name fields =
  let at_ms = Clock.elapsed_ms t.epoch_ms in
  locked t (fun () -> t.events <- { name; at_ms; fields } :: t.events)

let incr ?(by = 1) t name =
  locked t (fun () ->
      Hashtbl.replace t.counters name (by + Option.value ~default:0 (Hashtbl.find_opt t.counters name)))

let counter t name =
  locked t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let counters t =
  locked t (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []))

let events t = locked t (fun () -> List.rev t.events)

let time t ~name ~fields f =
  let t0 = Clock.now_ms () in
  let finish outcome =
    record t ~name
      (fields @ [ ("ms", Float (Clock.elapsed_ms t0)); ("outcome", String outcome) ])
  in
  match f () with
  | v ->
    finish "ok";
    v
  | exception e ->
    finish "raised";
    raise e

(* Minimal JSON emission; no external dependency. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let field_to_json = function
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  | Bool b -> string_of_bool b

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "{\"event\":\"%s\",\"t_ms\":%s" (escape e.name)
           (field_to_json (Float e.at_ms)));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" (escape k) (field_to_json v)))
        e.fields;
      Buffer.add_string buf "}\n")
    (events t);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "{\"counter\":\"%s\",\"value\":%d}\n" (escape k) v))
    (counters t);
  Buffer.contents buf
