(** Canonical instance fingerprints — the cache key of the engine.

    Two instances that are equal as mathematical objects (same rect ids,
    widths, heights; same DAG edges; same release times and K) fingerprint
    identically regardless of construction order: rects and edges are
    sorted and rationals are emitted in lowest terms before hashing. The
    two variants are tagged so a precedence instance can never collide with
    a release one. *)

(** [prec inst] is a hex digest of the canonical form. *)
val prec : Spp_core.Instance.Prec.t -> string

val release : Spp_core.Instance.Release.t -> string

(** [parsed p] dispatches on the variant. *)
val parsed : Spp_core.Io.parsed -> string
