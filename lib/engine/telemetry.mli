(** Structured run telemetry: counters, wall-clock timers, and a
    chronological event log exportable as JSON lines.

    One value is shared by an engine and all its racing domains
    (mutex-protected). Timestamps come from the monotonic
    {!Spp_util.Clock}, measured in milliseconds since {!create}.

    Counters live in a {!Spp_obs.Metrics} registry rather than a private
    table, so engine telemetry, server metrics, and the Prometheus scrape
    endpoint are views of one system: [incr t "cache.hit"] and a handle
    obtained directly from {!metrics} bump the same cells, and
    {!counters} reports every counter the registry holds. The event log
    stays local to this value. *)

type field = Spp_obs.Field.t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  name : string;
  at_ms : float;  (** milliseconds since {!create} *)
  fields : (string * field) list;
}

type t

(** [create ()] starts a log backed by a fresh registry; [metrics] backs
    it by a shared one instead (what [spp serve] does, so solver counters
    land on the scrape endpoint). *)
val create : ?metrics:Spp_obs.Metrics.t -> unit -> t

(** The backing registry — register richer instruments (histograms,
    gauges) next to the counters. *)
val metrics : t -> Spp_obs.Metrics.t

(** [record t ~name fields] appends an event stamped now. *)
val record : t -> name:string -> (string * field) list -> unit

(** [incr ?by t counter] bumps a named counter ([by] defaults to 1). *)
val incr : ?by:int -> t -> string -> unit

val counter : t -> string -> int

(** All counters in the backing registry, sorted by name (labelled
    counters render as [name{k="v"}]). *)
val counters : t -> (string * int) list

(** Events in chronological order. *)
val events : t -> event list

(** [time t ~name ~fields f] runs [f], then records an event carrying
    [fields], a ["ms"] duration field, and an ["outcome"] field — ["ok"],
    or ["raised"] when [f] escapes with an exception (re-raised). *)
val time : t -> name:string -> fields:(string * field) list -> (unit -> 'a) -> 'a

(** One JSON object per line: every event as
    [{"event":name,"t_ms":...,<fields>}] in order, then every counter as
    [{"counter":name,"value":n}]. Strings are JSON-escaped. *)
val to_json_lines : t -> string
