(** Structured run telemetry: counters, wall-clock timers, and a
    chronological event log exportable as JSON lines.

    One value is shared by an engine and all its racing domains
    (mutex-protected). Timestamps come from the monotonic
    {!Spp_util.Clock}, measured in milliseconds since {!create}. *)

type field =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  name : string;
  at_ms : float;  (** milliseconds since {!create} *)
  fields : (string * field) list;
}

type t

val create : unit -> t

(** [record t ~name fields] appends an event stamped now. *)
val record : t -> name:string -> (string * field) list -> unit

(** [incr ?by t counter] bumps a named counter ([by] defaults to 1). *)
val incr : ?by:int -> t -> string -> unit

val counter : t -> string -> int

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** Events in chronological order. *)
val events : t -> event list

(** [time t ~name ~fields f] runs [f], then records an event carrying
    [fields], a ["ms"] duration field, and an ["outcome"] field — ["ok"],
    or ["raised"] when [f] escapes with an exception (re-raised). *)
val time : t -> name:string -> fields:(string * field) list -> (unit -> 'a) -> 'a

(** One JSON object per line: every event as
    [{"event":name,"t_ms":...,<fields>}] in order, then every counter as
    [{"counter":name,"value":n}]. Strings are JSON-escaped. *)
val to_json_lines : t -> string
