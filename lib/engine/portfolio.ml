module Io = Spp_core.Io
module I = Spp_core.Instance

type spec = {
  name : string;
  doc : string;
  applies : Io.parsed -> bool;
  run : cancel:Spp_util.Cancel.t -> Io.parsed -> Spp_geom.Placement.t;
}

let wrong_variant name = invalid_arg (Printf.sprintf "Portfolio.%s: inapplicable instance" name)

(* Builders for the two variant shapes, so each member below is one line. *)
let on_prec name f =
 fun ~cancel parsed ->
  match parsed with Io.Prec inst -> f ~cancel inst | Io.Release _ -> wrong_variant name

let on_release name f =
 fun ~cancel parsed ->
  match parsed with Io.Release inst -> f ~cancel inst | Io.Prec _ -> wrong_variant name

let is_prec = function Io.Prec _ -> true | Io.Release _ -> false
let is_release = function Io.Release _ -> true | Io.Prec _ -> false

let is_uniform_prec = function
  | Io.Prec inst -> I.Prec.size inst > 0 && Spp_core.Uniform.uniform_height inst <> None
  | Io.Release _ -> false

let prec_size_at_most n = function
  | Io.Prec inst -> I.Prec.size inst <= n
  | Io.Release _ -> false

let release_size_at_most n = function
  | Io.Release inst -> I.Release.size inst <= n
  | Io.Prec _ -> false

let builtin =
  [
    { name = "dc";
      doc = "divide and conquer, (2 + log2(n+1))-approx (Theorem 2.3)";
      applies = is_prec;
      run = on_prec "dc" (fun ~cancel:_ inst -> fst (Spp_core.Dc.pack inst)) };
    { name = "f";
      doc = "uniform-height next-fit shelf, absolute 3-approx (Theorem 2.6)";
      applies = is_uniform_prec;
      run = on_prec "f" (fun ~cancel:_ inst -> fst (Spp_core.Uniform.next_fit_shelf inst)) };
    { name = "pff";
      doc = "uniform-height precedence first fit (GGJY reduction)";
      applies = is_uniform_prec;
      run = on_prec "pff" (fun ~cancel:_ inst -> fst (Spp_core.Uniform.prec_first_fit inst)) };
    { name = "wave";
      doc = "uniform-height wave FFD baseline";
      applies = is_uniform_prec;
      run = on_prec "wave" (fun ~cancel:_ inst -> fst (Spp_core.Uniform.wave_ffd inst)) };
    { name = "bb";
      doc = "exact branch and bound over normal positions (n <= 7)";
      applies = prec_size_at_most 7;
      run = on_prec "bb" (fun ~cancel inst -> (Spp_exact.Normal_bb.solve ~cancel inst).placement) };
    { name = "order";
      doc = "exhaustive order search, best bottom-left packing (n <= 10)";
      applies = (fun p -> prec_size_at_most 10 p || release_size_at_most 10 p);
      run =
        (fun ~cancel -> function
          | Io.Prec inst -> (Spp_exact.Order_search.best_prec ~cancel inst).placement
          | Io.Release inst -> (Spp_exact.Order_search.best_release ~cancel inst).placement) };
    { name = "aptas";
      doc = "release-time APTAS at eps = 1 (Theorem 3.5)";
      applies = is_release;
      run =
        on_release "aptas" (fun ~cancel inst ->
            (Spp_core.Aptas.solve ~cancel ~epsilon:Spp_num.Rat.one inst).Spp_core.Aptas.placement) };
    { name = "shelf";
      doc = "release-time shelf first fit";
      applies = is_release;
      run = on_release "shelf" (fun ~cancel:_ inst -> fst (Spp_core.Release_shelf.pack_first_fit inst)) };
    { name = "ls";
      doc = "greedy list scheduling (lowest-then-leftmost skyline)";
      applies = (fun _ -> true);
      run =
        (fun ~cancel:_ -> function
          | Io.Prec inst -> Spp_core.List_schedule.prec inst
          | Io.Release inst -> Spp_core.List_schedule.release inst) };
  ]

let find name = List.find_opt (fun s -> s.name = name) builtin

let defaults parsed = List.filter (fun s -> s.applies parsed) builtin

let of_names names =
  List.map
    (fun name ->
      match find name with
      | Some s -> s
      | None ->
        invalid_arg
          (Printf.sprintf "unknown algorithm %S (known: %s)" name
             (String.concat ", " (List.map (fun s -> s.name) builtin))))
    names

let fallback = function
  | Io.Prec inst -> Spp_core.List_schedule.prec inst
  | Io.Release inst -> Spp_core.List_schedule.release inst
