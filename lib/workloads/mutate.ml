module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag
module Prec = Spp_core.Instance.Prec
module Release = Spp_core.Instance.Release

module IntSet = Set.Make (Int)

(* Candidates are thunks so the (lazy) shrink loop only pays for the
   prefixes it inspects; constructor failures drop the candidate. *)
let seq_of_thunks thunks =
  Seq.filter_map
    (fun f -> match f () with v -> v | exception Invalid_argument _ -> None)
    (List.to_seq thunks)

let side_complexity (r : Rect.t) =
  (if Q.equal r.Rect.w Q.one then 0 else 1) + if Q.equal r.Rect.h Q.one then 0 else 1

let prec_measure (inst : Prec.t) =
  List.length inst.Prec.rects
  + Dag.num_edges inst.Prec.dag
  + List.fold_left (fun acc r -> acc + side_complexity r) 0 inst.Prec.rects

let release_measure (inst : Release.t) =
  List.fold_left
    (fun acc (t : Release.task) ->
      acc + 1 + (if Q.is_zero t.Release.release then 0 else 1) + side_complexity t.Release.rect)
    0 inst.Release.tasks

let halves ids =
  let n = List.length ids in
  if n < 2 then []
  else begin
    let cut = n / 2 in
    let first = IntSet.of_list (List.filteri (fun i _ -> i < cut) ids) in
    let second = IntSet.of_list (List.filteri (fun i _ -> i >= cut) ids) in
    [ first; second ]
  end

let shrink_prec (inst : Prec.t) =
  let ids = List.map (fun (r : Rect.t) -> r.Rect.id) inst.Prec.rects in
  let keep set = Prec.induced inst (fun id -> IntSet.mem id set) in
  let half_thunks = List.map (fun set () -> Some (keep set)) (halves ids) in
  let drop_rect_thunks =
    if List.length ids < 2 then []
    else List.map (fun id () -> Some (Prec.induced inst (fun i -> i <> id))) ids
  in
  let edges = Dag.edges inst.Prec.dag in
  let drop_all_edges_thunk =
    if edges = [] then []
    else [ (fun () -> Some (Prec.make inst.Prec.rects (Dag.of_edges ~nodes:ids ~edges:[]))) ]
  in
  let drop_edge_thunks =
    if List.length edges < 2 then []
    else
      List.map
        (fun e () ->
          let edges' = List.filter (fun e' -> e' <> e) edges in
          Some (Prec.make inst.Prec.rects (Dag.of_edges ~nodes:ids ~edges:edges')))
        edges
  in
  let simplify_thunks =
    List.concat_map
      (fun (r : Rect.t) ->
        let replace r' () =
          Some
            (Prec.make
               (List.map (fun (x : Rect.t) -> if x.Rect.id = r.Rect.id then r' else x)
                  inst.Prec.rects)
               inst.Prec.dag)
        in
        (if Q.equal r.Rect.h Q.one then []
         else [ replace (Rect.make ~id:r.Rect.id ~w:r.Rect.w ~h:Q.one) ])
        @
        if Q.equal r.Rect.w Q.one then []
        else [ replace (Rect.make ~id:r.Rect.id ~w:Q.one ~h:r.Rect.h) ])
      inst.Prec.rects
  in
  seq_of_thunks
    (half_thunks @ drop_rect_thunks @ drop_all_edges_thunk @ drop_edge_thunks @ simplify_thunks)

let shrink_release (inst : Release.t) =
  let k = inst.Release.k in
  let tasks = inst.Release.tasks in
  let ids = List.map (fun (t : Release.task) -> t.Release.rect.Rect.id) tasks in
  let keep set =
    Release.make ~k
      (List.filter (fun (t : Release.task) -> IntSet.mem t.Release.rect.Rect.id set) tasks)
  in
  let half_thunks = List.map (fun set () -> Some (keep set)) (halves ids) in
  let drop_task_thunks =
    if List.length ids < 2 then []
    else List.map (fun id () -> Some (keep (IntSet.of_list (List.filter (( <> ) id) ids)))) ids
  in
  let with_task t' =
    Release.make ~k
      (List.map
         (fun (t : Release.task) ->
           if t.Release.rect.Rect.id = t'.Release.rect.Rect.id then t' else t)
         tasks)
  in
  let nonzero = List.filter (fun (t : Release.task) -> not (Q.is_zero t.Release.release)) tasks in
  let zero_all_thunk =
    if List.length nonzero < 2 then []
    else
      [ (fun () ->
          Some
            (Release.make ~k
               (List.map (fun (t : Release.task) -> { t with Release.release = Q.zero }) tasks)))
      ]
  in
  let zero_one_thunks =
    List.map (fun t () -> Some (with_task { t with Release.release = Q.zero })) nonzero
  in
  let simplify_thunks =
    List.concat_map
      (fun (t : Release.task) ->
        let r = t.Release.rect in
        (if Q.equal r.Rect.h Q.one then []
         else
           [ (fun () ->
               Some (with_task { t with Release.rect = Rect.make ~id:r.Rect.id ~w:r.Rect.w ~h:Q.one }))
           ])
        @
        if Q.equal r.Rect.w Q.one then []
        else
          [ (fun () ->
              Some (with_task { t with Release.rect = Rect.make ~id:r.Rect.id ~w:Q.one ~h:r.Rect.h }))
          ])
      tasks
  in
  seq_of_thunks
    (half_thunks @ drop_task_thunks @ zero_all_thunk @ zero_one_thunks @ simplify_thunks)

let check_monotone ~f ids =
  let sorted = List.sort_uniq compare ids in
  let images = List.map f sorted in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  if not (strictly_increasing images) then
    invalid_arg "Mutate.relabel: map must be strictly monotone on the instance ids"

let relabel_prec ~f (inst : Prec.t) =
  check_monotone ~f (List.map (fun (r : Rect.t) -> r.Rect.id) inst.Prec.rects);
  let rects = List.map (fun (r : Rect.t) -> Rect.make ~id:(f r.Rect.id) ~w:r.Rect.w ~h:r.Rect.h) inst.Prec.rects in
  let nodes = List.map (fun (r : Rect.t) -> r.Rect.id) rects in
  let edges = List.map (fun (u, v) -> (f u, f v)) (Dag.edges inst.Prec.dag) in
  Prec.make rects (Dag.of_edges ~nodes ~edges)

let relabel_release ~f (inst : Release.t) =
  check_monotone ~f
    (List.map (fun (t : Release.task) -> t.Release.rect.Rect.id) inst.Release.tasks);
  Release.make ~k:inst.Release.k
    (List.map
       (fun (t : Release.task) ->
         let r = t.Release.rect in
         { t with Release.rect = Rect.make ~id:(f r.Rect.id) ~w:r.Rect.w ~h:r.Rect.h })
       inst.Release.tasks)

let drop_edge (inst : Prec.t) edge =
  if not (List.mem edge (Dag.edges inst.Prec.dag)) then
    invalid_arg "Mutate.drop_edge: no such edge";
  let nodes = List.map (fun (r : Rect.t) -> r.Rect.id) inst.Prec.rects in
  let edges = List.filter (( <> ) edge) (Dag.edges inst.Prec.dag) in
  Prec.make inst.Prec.rects (Dag.of_edges ~nodes ~edges)

let drop_all_edges (inst : Prec.t) = Prec.unconstrained inst.Prec.rects

let slacken_releases ~factor (inst : Release.t) =
  if Q.compare factor Q.zero < 0 || Q.compare factor Q.one > 0 then
    invalid_arg "Mutate.slacken_releases: factor must be in [0, 1]";
  Release.make ~k:inst.Release.k
    (List.map
       (fun (t : Release.task) -> { t with Release.release = Q.mul factor t.Release.release })
       inst.Release.tasks)
