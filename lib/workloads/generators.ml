module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Dag = Spp_dag.Dag
module Prng = Spp_util.Prng
module Prec = Spp_core.Instance.Prec
module Release = Spp_core.Instance.Release

let random_rects rng ~n ~k ~h_den =
  List.init n (fun id ->
      let w = Q.of_ints (Prng.int_in rng 1 k) k in
      let h = Q.of_ints (Prng.int_in rng 1 h_den) h_den in
      Rect.make ~id ~w ~h)

let random_rects_wide rng ~n ~k ~h_den ~max_h_num =
  List.init n (fun id ->
      let w = Q.of_ints (Prng.int_in rng 1 k) k in
      let h = Q.of_ints (Prng.int_in rng 1 max_h_num) h_den in
      Rect.make ~id ~w ~h)

let layered_dag rng ~ids ~layers ~p =
  let ids_arr = Array.of_list ids in
  let n = Array.length ids_arr in
  let layers = max 1 (min layers n) in
  let layer_of = Array.init n (fun i -> i * layers / n) in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if layer_of.(j) = layer_of.(i) + 1 && Prng.bernoulli rng p then
        edges := (ids_arr.(i), ids_arr.(j)) :: !edges
    done
  done;
  Dag.of_edges ~nodes:ids ~edges:!edges

let series_parallel rng ~ids =
  (* Recursive composition; returns (sources, sinks, edges). *)
  let rec build ids =
    match ids with
    | [] -> ([], [], [])
    | [ x ] -> ([ x ], [ x ], [])
    | _ ->
      let n = List.length ids in
      let cut = 1 + Prng.int rng (n - 1) in
      let left = List.filteri (fun i _ -> i < cut) ids in
      let right = List.filteri (fun i _ -> i >= cut) ids in
      let ls, lk, le = build left in
      let rs, rk, re = build right in
      if Prng.bool rng then
        (* Series: every left sink precedes every right source. *)
        (ls, rk, le @ re @ List.concat_map (fun a -> List.map (fun b -> (a, b)) rs) lk)
      else (* Parallel *)
        (ls @ rs, lk @ rk, le @ re)
  in
  let _, _, edges = build ids in
  Dag.of_edges ~nodes:ids ~edges

let fork_join ~ids =
  match ids with
  | [] | [ _ ] | [ _; _ ] ->
    let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
    Dag.of_edges ~nodes:ids ~edges:(pairs ids)
  | first :: rest ->
    let rec split acc = function
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split (x :: acc) rest
      | [] -> assert false
    in
    let middle, last = split [] rest in
    let edges =
      List.map (fun m -> (first, m)) middle @ List.map (fun m -> (m, last)) middle
    in
    Dag.of_edges ~nodes:ids ~edges

let chain ~ids =
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  Dag.of_edges ~nodes:ids ~edges:(pairs ids)

let independent ~ids = Dag.of_edges ~nodes:ids ~edges:[]

let dag_of_shape rng ~ids = function
  | `Layered -> layered_dag rng ~ids ~layers:(max 2 (List.length ids / 4)) ~p:0.3
  | `Series_parallel -> series_parallel rng ~ids
  | `Fork_join -> fork_join ~ids
  | `Chain -> chain ~ids
  | `Independent -> independent ~ids

let random_prec rng ~n ~k ~h_den ~shape =
  let rects = random_rects_wide rng ~n ~k ~h_den ~max_h_num:(2 * h_den) in
  let ids = List.map (fun (r : Rect.t) -> r.Rect.id) rects in
  Prec.make rects (dag_of_shape rng ~ids shape)

let random_uniform_prec rng ~n ~k ~shape =
  let rects =
    List.init n (fun id -> Rect.make ~id ~w:(Q.of_ints (Prng.int_in rng 1 k) k) ~h:Q.one)
  in
  let ids = List.map (fun (r : Rect.t) -> r.Rect.id) rects in
  Prec.make rects (dag_of_shape rng ~ids shape)

let random_release rng ~n ~k ~h_den ~r_den ~load =
  if load <= 0.0 then invalid_arg "Generators.random_release: load must be positive";
  let rects = random_rects rng ~n ~k ~h_den in
  let mean_area = (float_of_int (k + 1) /. (2.0 *. float_of_int k))
                  *. (float_of_int (h_den + 1) /. (2.0 *. float_of_int h_den)) in
  let rate = load /. mean_area in
  let t = ref 0.0 in
  let tasks =
    List.map
      (fun (rect : Rect.t) ->
        t := !t +. Prng.exponential rng ~rate;
        let steps = int_of_float (Float.round (!t *. float_of_int r_den)) in
        { Release.rect; release = Q.of_ints steps r_den })
      rects
  in
  Release.make ~k tasks

let poisson_release rng ~n ~k ~h_den ~r_den ~rate =
  if rate <= 0.0 then invalid_arg "Generators.poisson_release: rate must be positive";
  let rects = random_rects rng ~n ~k ~h_den in
  let t = ref 0.0 in
  let tasks =
    List.map
      (fun (rect : Rect.t) ->
        t := !t +. Prng.exponential rng ~rate;
        let steps = int_of_float (Float.round (!t *. float_of_int r_den)) in
        { Release.rect; release = Q.of_ints steps r_den })
      rects
  in
  Release.make ~k tasks

let bursty_release rng ~n ~k ~h_den ~r_den ~burst_len ~idle_gap =
  if burst_len < 1 then invalid_arg "Generators.bursty_release: burst_len must be >= 1";
  if idle_gap <= 0.0 then invalid_arg "Generators.bursty_release: idle_gap must be positive";
  let rects = random_rects rng ~n ~k ~h_den in
  let t = ref 0.0 in
  let quantise x = Q.of_ints (int_of_float (Float.round (x *. float_of_int r_den))) r_den in
  let tasks =
    List.mapi
      (fun i (rect : Rect.t) ->
        (* A fresh burst begins every [burst_len] tasks; tasks within a
           burst share the burst's arrival instant. *)
        if i mod burst_len = 0 && i > 0 then
          t := !t +. Prng.exponential rng ~rate:(1.0 /. idle_gap);
        { Release.rect; release = quantise !t })
      rects
  in
  Release.make ~k tasks

(* ------------------------------------------------------------------ *)
(* Domain pipelines *)

(* Helper: width as columns/k, height in time units (rational string). *)
let col k c = Q.of_ints (min c k) k

let jpeg_pipeline ~blocks ~k =
  if blocks < 1 then invalid_arg "Generators.jpeg_pipeline: blocks must be >= 1";
  if k < 4 then invalid_arg "Generators.jpeg_pipeline: needs k >= 4";
  let rects = ref [] and edges = ref [] in
  let next = ref 0 in
  let fresh w h =
    let id = !next in
    incr next;
    rects := Rect.make ~id ~w ~h :: !rects;
    id
  in
  (* Stage resource/time profile loosely follows HW JPEG encoders: colour
     conversion is wide and quick; DCT is the large block-level kernel;
     quantisation and zigzag are narrow; RLE and Huffman are serial tails. *)
  let cc = fresh (col k (k / 2)) (Q.of_ints 1 2) in
  let rle = fresh (col k (k / 4)) (Q.of_ints 3 4) in
  let huff = fresh (col k (k / 2)) Q.one in
  edges := (rle, huff) :: !edges;
  for _b = 1 to blocks do
    let dct = fresh (col k (k / 2)) Q.one in
    let quant = fresh (col k (k / 4)) (Q.of_ints 1 2) in
    let zig = fresh (col k 1) (Q.of_ints 1 4) in
    edges := (cc, dct) :: (dct, quant) :: (quant, zig) :: (zig, rle) :: !edges
  done;
  let rects = List.rev !rects in
  Prec.make rects
    (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges:!edges)

let packet_pipeline ~flows ~k =
  if flows < 1 then invalid_arg "Generators.packet_pipeline: flows must be >= 1";
  if k < 4 then invalid_arg "Generators.packet_pipeline: needs k >= 4";
  let rects = ref [] and edges = ref [] in
  let next = ref 0 in
  let fresh w h =
    let id = !next in
    incr next;
    rects := Rect.make ~id ~w ~h :: !rects;
    id
  in
  let sched = fresh (col k (k / 2)) (Q.of_ints 1 2) in
  for _f = 1 to flows do
    let parse = fresh (col k 1) (Q.of_ints 1 4) in
    let classify = fresh (col k (k / 4)) (Q.of_ints 1 2) in
    let rewrite = fresh (col k 1) (Q.of_ints 1 4) in
    edges := (parse, classify) :: (classify, rewrite) :: (rewrite, sched) :: !edges
  done;
  let rects = List.rev !rects in
  Prec.make rects
    (Dag.of_edges ~nodes:(List.map (fun (r : Rect.t) -> r.Rect.id) rects) ~edges:!edges)
