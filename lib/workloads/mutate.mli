(** Instance transformations for property-based testing: shrinking toward
    minimal instances and the metamorphic mutations of {!Spp_check}.

    Shrinkers return lazy sequences of candidate instances, most aggressive
    first (half the rectangles, then single-rectangle and single-edge
    deletions, then dimension simplifications). Every candidate is a valid
    instance (constructor-checked; candidates that would violate the
    variant's standing assumptions are silently dropped) and strictly
    smaller under {!prec_measure}/{!release_measure}, so greedy shrinking
    always terminates. *)

(** {1 Size measures (strictly decreased by every shrink candidate)} *)

(** [prec_measure inst] = rects + edges + "dimension complexity" (count of
    rect sides different from 1). *)
val prec_measure : Spp_core.Instance.Prec.t -> int

(** [release_measure inst] = tasks + nonzero releases + sides ≠ their
    simplest admissible value. *)
val release_measure : Spp_core.Instance.Release.t -> int

(** {1 Shrinkers} *)

val shrink_prec : Spp_core.Instance.Prec.t -> Spp_core.Instance.Prec.t Seq.t
val shrink_release : Spp_core.Instance.Release.t -> Spp_core.Instance.Release.t Seq.t

(** {1 Metamorphic mutations} *)

(** [relabel_prec ~f inst] renames every id by [f] (must be injective and
    strictly monotone on the instance's ids, so deterministic id
    tie-breaks are preserved and packings transfer verbatim).
    @raise Invalid_argument if [f] is not strictly monotone on the ids. *)
val relabel_prec : f:(int -> int) -> Spp_core.Instance.Prec.t -> Spp_core.Instance.Prec.t

(** [relabel_release ~f inst] — same contract as {!relabel_prec}. *)
val relabel_release :
  f:(int -> int) -> Spp_core.Instance.Release.t -> Spp_core.Instance.Release.t

(** [drop_edge inst (u, v)] removes one precedence edge (the DAG keeps its
    nodes). @raise Invalid_argument if the edge is absent. *)
val drop_edge : Spp_core.Instance.Prec.t -> int * int -> Spp_core.Instance.Prec.t

(** [drop_all_edges inst] keeps the rectangles, forgets the order. *)
val drop_all_edges : Spp_core.Instance.Prec.t -> Spp_core.Instance.Prec.t

(** [slacken_releases ~factor inst] scales every release time by [factor]
    (in [0, 1]: 0 releases everything at time zero).
    @raise Invalid_argument if [factor] is outside [0, 1]. *)
val slacken_releases :
  factor:Spp_num.Rat.t -> Spp_core.Instance.Release.t -> Spp_core.Instance.Release.t
