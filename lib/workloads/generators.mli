(** Synthetic workload generators.

    All generators are deterministic functions of a {!Spp_util.Prng.t}
    stream, with dimensions quantised to rationals (widths to multiples of
    [1/k] — the FPGA column granularity of the paper's Section 1 — and
    heights to multiples of [1/h_den]), so instances are exactly
    representable and experiments reproduce bit-for-bit from a seed. *)

(** {1 Rectangles} *)

(** [random_rects rng ~n ~k ~h_den] draws [n] rectangles with width
    [j/k] ([j] uniform in [1..k]) and height [i/h_den] ([i] uniform in
    [1..h_den]); heights are therefore in (0, 1]. Ids are [0..n-1]. *)
val random_rects : Spp_util.Prng.t -> n:int -> k:int -> h_den:int -> Spp_geom.Rect.t list

(** [random_rects_wide rng ~n ~k ~h_den ~max_h_num] like {!random_rects}
    but heights [i/h_den] with [i] in [1..max_h_num] (allows heights > 1
    for the precedence variant, which has no height cap). *)
val random_rects_wide :
  Spp_util.Prng.t -> n:int -> k:int -> h_den:int -> max_h_num:int -> Spp_geom.Rect.t list

(** {1 DAG shapes (over rect ids [0..n-1])} *)

(** [layered_dag rng ~ids ~layers ~p] splits [ids] into [layers] roughly
    equal layers and adds each layer-to-next edge independently with
    probability [p]. *)
val layered_dag : Spp_util.Prng.t -> ids:int list -> layers:int -> p:float -> Spp_dag.Dag.t

(** [series_parallel rng ~ids] builds a random series-parallel order by
    recursive series/parallel composition over the id list. *)
val series_parallel : Spp_util.Prng.t -> ids:int list -> Spp_dag.Dag.t

(** [fork_join ~ids] arranges ids as fork → parallel middle → join (first id
    forks, last joins; needs >= 3 ids, otherwise a chain). *)
val fork_join : ids:int list -> Spp_dag.Dag.t

(** [chain ~ids] is the total order along the list. *)
val chain : ids:int list -> Spp_dag.Dag.t

(** [independent ~ids] has no edges. *)
val independent : ids:int list -> Spp_dag.Dag.t

(** {1 Full instances} *)

(** [random_prec rng ~n ~k ~h_den ~shape] draws rects and a DAG of the
    given shape ([`Layered], [`Series_parallel], [`Fork_join], [`Chain],
    [`Independent]). *)
val random_prec :
  Spp_util.Prng.t ->
  n:int ->
  k:int ->
  h_den:int ->
  shape:[ `Layered | `Series_parallel | `Fork_join | `Chain | `Independent ] ->
  Spp_core.Instance.Prec.t

(** [random_uniform_prec rng ~n ~k ~shape] — heights all 1 (Section 2.2's
    regime). *)
val random_uniform_prec :
  Spp_util.Prng.t ->
  n:int ->
  k:int ->
  shape:[ `Layered | `Series_parallel | `Fork_join | `Chain | `Independent ] ->
  Spp_core.Instance.Prec.t

(** [random_release rng ~n ~k ~h_den ~r_den ~load] draws a release-time
    instance: rect dims as in {!random_rects}; releases are a Poisson-like
    arrival process — exponential gaps with mean [mean_area/load] —
    quantised to multiples of [1/r_den]. [load] ≈ offered work per unit
    time; > 1 means work arrives faster than the strip drains. *)
val random_release :
  Spp_util.Prng.t -> n:int -> k:int -> h_den:int -> r_den:int -> load:float ->
  Spp_core.Instance.Release.t

(** [poisson_release rng ~n ~k ~h_den ~r_den ~rate] like {!random_release}
    but parameterised by the arrival {e rate} directly (tasks per unit
    time) instead of the offered load — the knob an online simulation
    sweeps. Gaps are Exp(rate), quantised to multiples of [1/r_den]. *)
val poisson_release :
  Spp_util.Prng.t -> n:int -> k:int -> h_den:int -> r_den:int -> rate:float ->
  Spp_core.Instance.Release.t

(** [bursty_release rng ~n ~k ~h_den ~r_den ~burst_len ~idle_gap] draws a
    release-time instance with on/off (bursty) arrivals — the traffic shape
    FPGA operating systems actually see: bursts of [burst_len] tasks
    arriving back-to-back, separated by idle gaps of about [idle_gap] time
    units (exponential, quantised to [1/r_den]). Dimension distributions
    match {!random_rects}. *)
val bursty_release :
  Spp_util.Prng.t ->
  n:int -> k:int -> h_den:int -> r_den:int -> burst_len:int -> idle_gap:float ->
  Spp_core.Instance.Release.t

(** {1 Domain pipelines (the paper's Section 1 motivation)} *)

(** [jpeg_pipeline ~blocks ~k] models a JPEG encoder on a [k]-column FPGA:
    colour conversion, then per-block DCT → quantise → zigzag chains in
    parallel, then run-length encoding, then Huffman coding. Dimensions
    follow the relative resource demands of the stages. *)
val jpeg_pipeline : blocks:int -> k:int -> Spp_core.Instance.Prec.t

(** [packet_pipeline ~flows ~k] models a networking application: per-flow
    parse → classify → rewrite chains joined by a final scheduler stage. *)
val packet_pipeline : flows:int -> k:int -> Spp_core.Instance.Prec.t
