module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Skyline = Spp_geom.Skyline
module Dag = Spp_dag.Dag

type outcome = { height : Q.t; placement : Placement.t; nodes_expanded : int }

(* Generic DFS over placement orders. [eligible placed remaining] restricts
   which rect may come next; [floor_of placed r] gives its y floor. Each
   branch works on a skyline snapshot; pruning is against the incumbent. *)
let search rects ~cancel ~eligible ~floor_of =
  let n = List.length rects in
  if n > 10 then invalid_arg "Order_search: instance too large (n > 10)";
  let best_h = ref None in
  let best_items = ref [] in
  let nodes = ref 0 in
  let pruned = ref 0 in
  let rec go placed sky h remaining =
    Spp_util.Cancel.check cancel;
    incr nodes;
    match remaining with
    | [] ->
      (match !best_h with
       | Some bh when Q.compare h bh >= 0 -> ()
       | _ ->
         best_h := Some h;
         best_items := placed)
    | _ ->
      List.iter
        (fun (r : Rect.t) ->
          let rest = List.filter (fun (r' : Rect.t) -> r'.Rect.id <> r.Rect.id) remaining in
          let sky' = Skyline.copy sky in
          let y_min = floor_of placed r in
          let pos = Skyline.place sky' ~w:r.Rect.w ~h:r.Rect.h ~y_min in
          let item = { Placement.rect = r; pos } in
          let h' = Q.max h (Q.add pos.Placement.y r.Rect.h) in
          let prune = match !best_h with Some bh -> Q.compare h' bh >= 0 | None -> false in
          if prune then incr pruned
          else go (item :: placed) sky' h' rest)
        (eligible placed remaining)
  in
  let report () =
    Spp_obs.Profile.add_bb_nodes !nodes;
    Spp_obs.Profile.add_bb_pruned !pruned
  in
  (* Aggregate profile report on every exit, cancellation included. *)
  (match go [] (Skyline.create ()) Q.zero rects with
   | () -> report ()
   | exception e ->
     report ();
     raise e);
  match !best_h with
  | None -> { height = Q.zero; placement = Placement.of_items []; nodes_expanded = !nodes }
  | Some h -> { height = h; placement = Placement.of_items !best_items; nodes_expanded = !nodes }

let best_prec ?(cancel = Spp_util.Cancel.never) (inst : Spp_core.Instance.Prec.t) =
  let floor_of placed (r : Rect.t) =
    List.fold_left
      (fun acc p ->
        match List.find_opt (fun (it : Placement.item) -> it.rect.Rect.id = p) placed with
        | Some it -> Q.max acc (Q.add it.pos.Placement.y it.rect.Rect.h)
        | None -> acc)
      Q.zero
      (Dag.preds inst.dag r.Rect.id)
  in
  let eligible placed remaining =
    let placed_ids = List.map (fun (it : Placement.item) -> it.rect.Rect.id) placed in
    List.filter
      (fun (r : Rect.t) ->
        List.for_all (fun p -> List.mem p placed_ids) (Dag.preds inst.dag r.Rect.id))
      remaining
  in
  search inst.rects ~cancel ~eligible ~floor_of

let best_release ?(cancel = Spp_util.Cancel.never) (inst : Spp_core.Instance.Release.t) =
  let release = Hashtbl.create 16 in
  List.iter
    (fun (t : Spp_core.Instance.Release.task) -> Hashtbl.replace release t.rect.Rect.id t.release)
    inst.tasks;
  let floor_of _placed (r : Rect.t) = Hashtbl.find release r.Rect.id in
  let eligible _placed remaining = remaining in
  search (Spp_core.Instance.Release.rects inst) ~cancel ~eligible ~floor_of
