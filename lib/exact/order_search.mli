(** Exhaustive search over placement orders with bottom-left placement.

    For general (non-uniform-height) precedence instances there is no known
    compact exact algorithm; this module searches {e all} topological orders
    (respectively all orders, for release instances), placing each rectangle
    at its lowest-then-leftmost skyline position, with branch-and-bound
    pruning against the best height found and the instance lower bound.

    The result is the optimum {e within the class of bottom-left packings},
    an upper bound on OPT that is tight on most small instances; DESIGN.md
    and EXPERIMENTS.md are explicit that it is used as a reference point,
    not as a certified optimum. Guarded to [n <= 10]. *)

type outcome = {
  height : Spp_num.Rat.t;
  placement : Spp_geom.Placement.t;
  nodes_expanded : int;
}

(** [best_prec inst] searches topological orders (precedence floors on y).
    [cancel] (default {!Spp_util.Cancel.never}) is polled at every search
    node; a tripped token aborts with [Spp_util.Cancel.Cancelled].
    @raise Invalid_argument when [n > 10]. *)
val best_prec : ?cancel:Spp_util.Cancel.t -> Spp_core.Instance.Prec.t -> outcome

(** [best_release inst] searches all orders (release floors on y). Same
    [cancel] contract as {!best_prec}.
    @raise Invalid_argument when [n > 10]. *)
val best_release : ?cancel:Spp_util.Cancel.t -> Spp_core.Instance.Release.t -> outcome
