module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag

type outcome = { height : Q.t; placement : Placement.t; nodes_expanded : int }

(* Deduplicated, sorted subset sums of [values] (always includes 0). *)
let subset_sums values =
  let sums = Hashtbl.create 64 in
  Hashtbl.replace sums (Q.to_string Q.zero) Q.zero;
  List.iter
    (fun v ->
      let current = Hashtbl.fold (fun _ s acc -> s :: acc) sums [] in
      List.iter
        (fun s ->
          let s' = Q.add s v in
          Hashtbl.replace sums (Q.to_string s') s')
        current)
    values;
  List.sort Q.compare (Hashtbl.fold (fun _ s acc -> s :: acc) sums [])

let solve ?(cancel = Spp_util.Cancel.never) (inst : Spp_core.Instance.Prec.t) =
  let n = Spp_core.Instance.Prec.size inst in
  if n > 7 then invalid_arg "Normal_bb.solve: instance too large (n > 7)";
  if n = 0 then { height = Q.zero; placement = Placement.of_items []; nodes_expanded = 0 }
  else begin
    let rects = inst.rects in
    let xs = subset_sums (List.map (fun (r : Rect.t) -> r.Rect.w) rects) in
    let ys = subset_sums (List.map (fun (r : Rect.t) -> r.Rect.h) rects) in
    (* Topological order, biggest-area-first among the available. *)
    let order =
      let placed = Hashtbl.create 8 in
      let remaining = ref rects in
      let out = ref [] in
      while !remaining <> [] do
        let available, blocked =
          List.partition
            (fun (r : Rect.t) ->
              List.for_all (Hashtbl.mem placed) (Dag.preds inst.dag r.Rect.id))
            !remaining
        in
        let best =
          List.fold_left
            (fun acc (r : Rect.t) ->
              match acc with
              | None -> Some r
              | Some b -> if Q.compare (Rect.area r) (Rect.area b) > 0 then Some r else acc)
            None available
        in
        match best with
        | None -> assert false (* DAG acyclic *)
        | Some r ->
          Hashtbl.replace placed r.Rect.id ();
          out := r :: !out;
          remaining := blocked @ List.filter (fun (r' : Rect.t) -> r'.Rect.id <> r.Rect.id) available
      done;
      Array.of_list (List.rev !out)
    in
    let area_lb = Rect.total_area rects in
    let path_lb = Spp_core.Lower_bounds.critical_path inst in
    let global_lb = Q.max area_lb path_lb in
    (* Incumbent: the bottom-left order search (an upper bound). *)
    let seed = Order_search.best_prec ~cancel inst in
    let best_h = ref seed.Order_search.height in
    let best_items = ref (Placement.items seed.Order_search.placement) in
    let nodes = ref (seed.Order_search.nodes_expanded) in
    let pruned = ref 0 in
    let tops = Hashtbl.create 8 in (* id -> y + h, for precedence floors *)
    let rec go idx placed cur_h =
      Spp_util.Cancel.check cancel;
      incr nodes;
      if idx = Array.length order then begin
        if Q.compare cur_h !best_h < 0 then begin
          best_h := cur_h;
          best_items := placed
        end
      end
      else begin
        let r = order.(idx) in
        let floor_y =
          List.fold_left (fun acc p -> Q.max acc (Hashtbl.find tops p)) Q.zero
            (Dag.preds inst.dag r.Rect.id)
        in
        List.iter
          (fun y ->
            if Q.compare y floor_y >= 0 then begin
              let top = Q.add y r.Rect.h in
              let h' = Q.max cur_h top in
              (* Candidates ascend in y, but a pruned y does not prune later
                 ys' floors; simple filter (no break) keeps the code clear —
                 n is tiny. *)
              if Q.compare h' !best_h >= 0 then incr pruned
              else
                List.iter
                  (fun x ->
                    if Q.compare (Q.add x r.Rect.w) Q.one <= 0 then begin
                      let pos = { Placement.x; y } in
                      let clash =
                        List.exists
                          (fun (it : Placement.item) ->
                            Placement.overlaps r pos it.rect it.pos)
                          placed
                      in
                      if not clash then begin
                        Hashtbl.replace tops r.Rect.id top;
                        go (idx + 1) ({ Placement.rect = r; pos } :: placed) h';
                        Hashtbl.remove tops r.Rect.id
                      end
                    end)
                  xs
            end)
          ys;
        ()
      end
    in
    (* Early exit: if the seed already meets the global lower bound it is
       optimal and the search is skipped. *)
    let report () =
      (* The seed's nodes were already reported by Order_search itself;
         only this search's delta is added here. *)
      Spp_obs.Profile.add_bb_nodes (!nodes - seed.Order_search.nodes_expanded);
      Spp_obs.Profile.add_bb_pruned !pruned
    in
    (match if Q.compare !best_h global_lb > 0 then go 0 [] Q.zero with
     | () -> report ()
     | exception e ->
       report ();
       raise e);
    { height = !best_h; placement = Placement.of_items !best_items; nodes_expanded = !nodes }
  end
