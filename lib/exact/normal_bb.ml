module Q = Spp_num.Rat
module Rect = Spp_geom.Rect
module Placement = Spp_geom.Placement
module Dag = Spp_dag.Dag

type outcome = { height : Q.t; placement : Placement.t; nodes_expanded : int }

(* Deduplicated, sorted subset sums of [values] (always includes 0). *)
let subset_sums values =
  let sums = Hashtbl.create 64 in
  Hashtbl.replace sums (Q.to_string Q.zero) Q.zero;
  List.iter
    (fun v ->
      let current = Hashtbl.fold (fun _ s acc -> s :: acc) sums [] in
      List.iter
        (fun s ->
          let s' = Q.add s v in
          Hashtbl.replace sums (Q.to_string s') s')
        current)
    values;
  List.sort Q.compare (Hashtbl.fold (fun _ s acc -> s :: acc) sums [])

let max_n = 9

(* Per-worker search counters, mutated race-free by exactly one domain and
   summed by the caller after the joins (Domain.join is the happens-before
   edge), so the ambient profile is reported on the engine's domain. *)
type stats = { mutable nodes : int; mutable pruned : int; mutable dominated : int }

let solve ?(cancel = Spp_util.Cancel.never) ?(workers = 1) ?(dominance = true)
    (inst : Spp_core.Instance.Prec.t) =
  let n = Spp_core.Instance.Prec.size inst in
  if n > max_n then invalid_arg "Normal_bb.solve: instance too large (n > 9)";
  if n = 0 then { height = Q.zero; placement = Placement.of_items []; nodes_expanded = 0 }
  else begin
    let rects = Array.of_list inst.rects in
    let nr = Array.length rects in
    let full_mask = (1 lsl nr) - 1 in
    let idx_of = Hashtbl.create nr in
    Array.iteri (fun i (r : Rect.t) -> Hashtbl.replace idx_of r.Rect.id i) rects;
    let preds =
      Array.init nr (fun i ->
          List.map (Hashtbl.find idx_of) (Dag.preds inst.dag rects.(i).Rect.id))
    in
    let succs =
      Array.init nr (fun i ->
          List.map (Hashtbl.find idx_of) (Dag.succs inst.dag rects.(i).Rect.id))
    in
    (* Candidate x coordinates per rect: the width subset-sum grid, kept
       only where the rect still fits the strip. *)
    let xs = subset_sums (List.map (fun (r : Rect.t) -> r.Rect.w) inst.rects) in
    let xs_of =
      Array.init nr (fun i ->
          let w = rects.(i).Rect.w in
          List.filter (fun x -> Q.compare (Q.add x w) Q.one <= 0) xs)
    in
    (* tail.(i) = h_i + longest descendant chain below i: an admissible
       completion bound because every successor stacks above i's top.
       Heights are > 0, so zero doubles as the not-yet-memoised mark. *)
    let tail = Array.make nr Q.zero in
    let rec tail_of i =
      if not (Q.is_zero tail.(i)) then tail.(i)
      else begin
        let below = List.fold_left (fun acc s -> Q.max acc (tail_of s)) Q.zero succs.(i) in
        let t = Q.add rects.(i).Rect.h below in
        tail.(i) <- t;
        t
      end
    in
    for i = 0 to nr - 1 do
      ignore (tail_of i)
    done;
    let area_lb = Rect.total_area inst.rects in
    let path_lb = Spp_core.Lower_bounds.critical_path inst in
    let global_lb = Q.max area_lb path_lb in
    (* Incumbent seed: the bottom-left order search (an upper bound). It
       runs on — and reports its own profile to — the calling domain. *)
    let seed = Order_search.best_prec ~cancel inst in
    (* The shared incumbent: (height, items), improved by compare-and-set.
       Stale reads only weaken pruning, never correctness, and every
       published height is an achievable packing, so pruning [h' >= best]
       can never cut a strictly better completion — which is what makes
       the final height independent of the worker count. *)
    let best = Atomic.make (seed.Order_search.height, Placement.items seed.Order_search.placement) in
    let publish h items =
      let rec loop () =
        let (bh, _) as cur = Atomic.get best in
        if Q.compare h bh < 0 && not (Atomic.compare_and_set best cur (h, items)) then loop ()
      in
      loop ()
    in
    (* One task = one root-level first placement; px/py are this worker's
       scratch state (a DFS path touches each slot only while its bit is
       set in [mask]). *)
    let run_task stats seen (root_i, root_x) =
      let px = Array.make nr Q.zero and py = Array.make nr Q.zero in
      let exists_placed mask f =
        let rec go j = j < nr && ((mask land (1 lsl j) <> 0 && f j) || go (j + 1)) in
        go 0
      in
      let state_key mask =
        (* Identity matters only where constraints still reference it: a
           placed rect with every successor placed is interchangeable with
           any same-shape rect in the same spot, so those entries are
           anonymised (sid = -1) and the entry list is sorted. Equal keys
           then have identical remaining sets, floors, geometry, current
           height and lex frontier — identical completion trees. *)
        let b = Buffer.create 64 in
        Buffer.add_string b (string_of_int mask);
        let entries = ref [] in
        for j = 0 to nr - 1 do
          if mask land (1 lsl j) <> 0 then begin
            let open_succ = List.exists (fun s -> mask land (1 lsl s) = 0) succs.(j) in
            let sid = if open_succ then j else -1 in
            entries :=
              (Q.to_string px.(j) ^ "," ^ Q.to_string py.(j) ^ ","
               ^ Q.to_string rects.(j).Rect.w ^ "," ^ Q.to_string rects.(j).Rect.h ^ ","
               ^ string_of_int sid)
              :: !entries
          end
        done;
        List.iter
          (fun e ->
            Buffer.add_char b '|';
            Buffer.add_string b e)
          (List.sort compare !entries);
        Buffer.contents b
      in
      (* Rectangles are placed in strictly increasing (y, x) order of their
         origins. Some optimal packing is grounded and left-pushed; reading
         its rects in that lex order is automatically topological (a
         predecessor's top is at most its successor's bottom, and h > 0)
         and makes every rect's supporter and predecessors already placed
         when the rect is — so restricting branches to the lex frontier
         loses no optimal packing while cutting every placement-order
         permutation of the same geometry. *)
      let rec go mask cur_h ylast xlast =
        Spp_util.Cancel.check cancel;
        stats.nodes <- stats.nodes + 1;
        if mask = full_mask then begin
          let items = ref [] in
          for j = nr - 1 downto 0 do
            items :=
              { Placement.rect = rects.(j); pos = { Placement.x = px.(j); y = py.(j) } }
              :: !items
          done;
          publish cur_h !items
        end
        else begin
          let bh, _ = Atomic.get best in
          (* Node bound 1 (area, y-monotone form): every future rect sits at
             y >= ylast, so the strip above ylast must hold the remaining
             area plus what placed rects already occupy up there. *)
          let area_above = ref Q.zero in
          for j = 0 to nr - 1 do
            if mask land (1 lsl j) <> 0 then begin
              let top = Q.add py.(j) rects.(j).Rect.h in
              if Q.compare top ylast > 0 then
                area_above :=
                  Q.add !area_above (Q.mul rects.(j).Rect.w (Q.sub top (Q.max py.(j) ylast)))
            end
            else area_above := Q.add !area_above (Rect.area rects.(j))
          done;
          let lb = ref (Q.add ylast !area_above) in
          (* Node bound 2 (precedence tail): an unplaced rect starts no
             lower than the lex frontier and its placed-predecessor floor,
             and carries its descendant chain above it. *)
          for j = 0 to nr - 1 do
            if mask land (1 lsl j) = 0 then begin
              let floor_j =
                List.fold_left
                  (fun acc p ->
                    if mask land (1 lsl p) <> 0 then
                      Q.max acc (Q.add py.(p) rects.(p).Rect.h)
                    else acc)
                  Q.zero preds.(j)
              in
              lb := Q.max !lb (Q.add (Q.max ylast floor_j) tail.(j))
            end
          done;
          if Q.compare !lb bh >= 0 then stats.pruned <- stats.pruned + 1
          else if
            dominance
            &&
            let key = state_key mask in
            if Hashtbl.mem seen key then true
            else begin
              Hashtbl.replace seen key ();
              false
            end
          then stats.dominated <- stats.dominated + 1
          else
            for i = 0 to nr - 1 do
              if
                mask land (1 lsl i) = 0
                && List.for_all (fun p -> mask land (1 lsl p) <> 0) preds.(i)
              then begin
                let r = rects.(i) in
                let floor_i =
                  List.fold_left
                    (fun acc p -> Q.max acc (Q.add py.(p) rects.(p).Rect.h))
                    Q.zero preds.(i)
                in
                (* Candidate ys: the floor itself (ground or precedence
                   block) plus strictly higher placed tops (rest positions).
                   A grounded rect sits at exactly one of these. *)
                let ys =
                  let acc = ref [ floor_i ] in
                  for j = 0 to nr - 1 do
                    if mask land (1 lsl j) <> 0 then begin
                      let top = Q.add py.(j) rects.(j).Rect.h in
                      if Q.compare top floor_i > 0 && not (List.exists (Q.equal top) !acc)
                      then acc := top :: !acc
                    end
                  done;
                  List.sort Q.compare !acc
                in
                List.iter
                  (fun y ->
                    let top = Q.add y r.Rect.h in
                    let h' = Q.max cur_h top in
                    let bh, _ = Atomic.get best in
                    if Q.compare h' bh >= 0 then stats.pruned <- stats.pruned + 1
                    else
                      List.iter
                        (fun x ->
                          let c = Q.compare y ylast in
                          if c > 0 || (c = 0 && Q.compare x xlast > 0) then begin
                            let supported =
                              Q.compare y floor_i = 0
                              || (let xr = Q.add x r.Rect.w in
                                  exists_placed mask (fun j ->
                                      Q.equal (Q.add py.(j) rects.(j).Rect.h) y
                                      && Q.compare px.(j) xr < 0
                                      && Q.compare x (Q.add px.(j) rects.(j).Rect.w) < 0))
                            in
                            if supported then begin
                              let pos = { Placement.x; y } in
                              let clash =
                                exists_placed mask (fun j ->
                                    Placement.overlaps r pos rects.(j)
                                      { Placement.x = px.(j); y = py.(j) })
                              in
                              if not clash then begin
                                px.(i) <- x;
                                py.(i) <- y;
                                go (mask lor (1 lsl i)) h' y x
                              end
                            end
                          end)
                        xs_of.(i))
                  ys
              end
            done
        end
      in
      let r = rects.(root_i) in
      px.(root_i) <- root_x;
      py.(root_i) <- Q.zero;
      go (1 lsl root_i) r.Rect.h Q.zero root_x
    in
    (* Root tasks: the lex-first rect of a grounded packing has no
       predecessors and sits at y = 0 (anything else would have a placed
       supporter or predecessor below it, contradicting lex-minimality),
       at any admissible x. The task array is the work-stealing queue. *)
    let tasks =
      let acc = ref [] in
      for i = nr - 1 downto 0 do
        if preds.(i) = [] then List.iter (fun x -> acc := (i, x) :: !acc) (List.rev xs_of.(i))
      done;
      Array.of_list !acc
    in
    let ntasks = Array.length tasks in
    let w = Stdlib.max 1 (Stdlib.min workers ntasks) in
    let all_stats = Array.init w (fun _ -> { nodes = 0; pruned = 0; dominated = 0 }) in
    let search () =
      if w <= 1 then begin
        let seen = Hashtbl.create 256 in
        Array.iter (run_task all_stats.(0) seen) tasks
      end
      else begin
        let next = Atomic.make 0 in
        let error = Atomic.make None in
        (* Per-worker dominance tables: sound without sharing (each worker
           re-derives what it needs), and they keep the hot path free of
           cross-domain traffic. *)
        let worker k () =
          let stats = all_stats.(k) in
          let seen = Hashtbl.create 256 in
          let rec loop () =
            let t = Atomic.fetch_and_add next 1 in
            if t < ntasks && Atomic.get error = None then begin
              (match run_task stats seen tasks.(t) with
               | () -> ()
               | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
              loop ()
            end
          in
          loop ()
        in
        let domains = List.init (w - 1) (fun k -> Domain.spawn (worker (k + 1))) in
        worker 0 ();
        List.iter Domain.join domains;
        match Atomic.get error with Some e -> raise e | None -> ()
      end
    in
    let report () =
      let nodes = Array.fold_left (fun a s -> a + s.nodes) 0 all_stats in
      Spp_obs.Profile.add_bb_nodes nodes;
      Spp_obs.Profile.add_bb_pruned (Array.fold_left (fun a s -> a + s.pruned) 0 all_stats);
      Spp_obs.Profile.add_bb_dominated
        (Array.fold_left (fun a s -> a + s.dominated) 0 all_stats);
      nodes
    in
    (* Early exit: if the seed already meets the global lower bound it is
       optimal and the search is skipped. *)
    (match if Q.compare (fst (Atomic.get best)) global_lb > 0 then search () with
     | () -> ()
     | exception e ->
       ignore (report ());
       raise e);
    let search_nodes = report () in
    let h, items = Atomic.get best in
    { height = h;
      placement = Placement.of_items items;
      nodes_expanded = seed.Order_search.nodes_expanded + search_nodes }
  end
