(** Exact strip packing by branch and bound over normal positions.

    Unlike {!Order_search} (optimal only within bottom-left packings), this
    solver is {e exact}: in any optimal packing each rectangle can be pushed
    left and down until blocked (by the strip, another rectangle, or — for
    the precedence variant — a predecessor's top edge), so some optimal
    packing places every rectangle at a {e normal position}: x in the set
    of subset-sums of widths (Herz's normal patterns), and y either on the
    rectangle's precedence floor or resting on another rectangle's top edge.

    The search reads that canonical grounded packing in increasing (y, x)
    order of rectangle origins — an order that is automatically topological
    and in which every rectangle's supporter and predecessors precede it.
    Branches therefore extend the lex frontier only, with candidate corner
    points restricted to supported positions, pruned by

    - the shared incumbent (seeded by the bottom-left order search),
    - an admissible precedence-tail bound (longest descendant chain above
      the lex frontier), and a y-monotone area bound;
    - a dominance table keyed on the anonymised placed geometry plus the
      remaining set, which collapses states that differ only by a
      permutation of interchangeable same-shape rectangles. Dominance never
      cuts the optimum: equal keys have identical completion trees.

    The root-level first placements form a work queue that [workers]
    OCaml 5 domains drain work-stealing style, sharing the incumbent
    through an atomic compare-and-set. Incumbent pruning uses [>=] against
    heights that are always achievable, so the returned height is the exact
    optimum regardless of worker count or scheduling. Exponential; guarded
    to [n <= 9]. *)

type outcome = {
  height : Spp_num.Rat.t;  (** the exact optimal height *)
  placement : Spp_geom.Placement.t;
  nodes_expanded : int;
}

(** [subset_sums values] is the deduplicated, sorted list of subset sums
    of [values] (always including 0) — the normal-position ("corner")
    grid the branch and bound enumerates on each axis. Exposed because
    the same machinery prices candidate positions elsewhere: any packing
    pushed left/down lands every edge on a subset sum, so a coordinate
    outside this grid certifies that the item must move
    ({!Spp_sim.Repack} uses exactly that as an admissible lower bound). *)
val subset_sums : Spp_num.Rat.t list -> Spp_num.Rat.t list

(** [solve inst] computes OPT(S, E) exactly. [cancel] (default
    {!Spp_util.Cancel.never}) is polled at every node of both the seeding
    order search and the normal-position DFS; a tripped token aborts with
    [Spp_util.Cancel.Cancelled] rather than returning a partial answer, so
    a returned outcome is always the certified optimum.

    [workers] (default 1) runs the search across that many domains; the
    height is identical for every worker count. [dominance] (default
    [true]) toggles the dominance table — the [false] setting exists for
    the exhaustive cross-checks in the test suite and for measuring the
    table's pruning power in bench e20.

    Profile counters (nodes, pruned, dominated) are aggregated across
    workers and reported on the {e calling} domain, so engine attribution
    works unchanged.
    @raise Invalid_argument when [n > 9]. *)
val solve :
  ?cancel:Spp_util.Cancel.t ->
  ?workers:int ->
  ?dominance:bool ->
  Spp_core.Instance.Prec.t ->
  outcome
