(** Exact strip packing by branch and bound over normal positions.

    Unlike {!Order_search} (optimal only within bottom-left packings), this
    solver is {e exact}: in any optimal packing each rectangle can be pushed
    left and down until blocked (by the strip, another rectangle, or — for
    the precedence variant — a predecessor's top edge), so some optimal
    packing places every rectangle at a {e normal position}: x in the set
    of subset-sums of widths, y in the set of subset-sums of heights
    extended with predecessor tops (Herz's normal patterns, extended to
    precedence floors). Enumerating only those positions is therefore
    complete.

    DFS over rectangles in a fixed topological order, assigning candidate
    positions in (y, x) order, pruning with the incumbent and the
    area/critical-path lower bounds. Exponential; guarded to [n <= 7]. *)

type outcome = {
  height : Spp_num.Rat.t;  (** the exact optimal height *)
  placement : Spp_geom.Placement.t;
  nodes_expanded : int;
}

(** [subset_sums values] is the deduplicated, sorted list of subset sums
    of [values] (always including 0) — the normal-position ("corner")
    grid the branch and bound enumerates on each axis. Exposed because
    the same machinery prices candidate positions elsewhere: any packing
    pushed left/down lands every edge on a subset sum, so a coordinate
    outside this grid certifies that the item must move
    ({!Spp_sim.Repack} uses exactly that as an admissible lower bound). *)
val subset_sums : Spp_num.Rat.t list -> Spp_num.Rat.t list

(** [solve inst] computes OPT(S, E) exactly. [cancel] (default
    {!Spp_util.Cancel.never}) is polled at every node of both the seeding
    order search and the normal-position DFS; a tripped token aborts with
    [Spp_util.Cancel.Cancelled] rather than returning a partial answer, so
    a returned outcome is always the certified optimum.
    @raise Invalid_argument when [n > 7]. *)
val solve : ?cancel:Spp_util.Cancel.t -> Spp_core.Instance.Prec.t -> outcome
