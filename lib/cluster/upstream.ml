module Client = Spp_server.Client
module Framing = Spp_server.Framing

type t = {
  addr : Framing.address;
  name : string;
  timeout_ms : float option;
  pool_size : int;
  mu : Mutex.t;
  mutable idle : Client.t list;
  mutable closed : bool;
}

let default_pool_size = 2

let create ?(pool_size = default_pool_size) ?timeout_ms addr =
  { addr; name = Framing.address_to_string addr; timeout_ms; pool_size;
    mu = Mutex.create (); idle = []; closed = false }

let name t = t.name
let address t = t.addr

let checkout t =
  Mutex.lock t.mu;
  let c = match t.idle with c :: rest -> t.idle <- rest; Some c | [] -> None in
  Mutex.unlock t.mu;
  c

let checkin t c =
  Mutex.lock t.mu;
  let park = (not t.closed) && List.length t.idle < t.pool_size in
  if park then t.idle <- c :: t.idle;
  Mutex.unlock t.mu;
  if not park then Client.close c

let fault_probe () =
  try Spp_util.Fault.hit "proxy.upstream"
  with Spp_util.Fault.Injected p ->
    raise (Client.Error { kind = Client.Io; attempts = 1; message = "fault injected: " ^ p })

(* One request on a connection we just made: any failure here is real. *)
let call_fresh ?timeout_ms t req =
  let c = Client.connect ?timeout_ms:t.timeout_ms t.addr in
  match Client.request ?timeout_ms c req with
  | r -> checkin t c; r
  | exception e -> Client.close c; raise e

let call ?timeout_ms t req =
  fault_probe ();
  match checkout t with
  | None -> call_fresh ?timeout_ms t req
  | Some c -> (
    match Client.request ?timeout_ms c req with
    | r -> checkin t c; r
    | exception Client.Error _ ->
      (* The parked connection may just have been stale (backend restart,
         idle reap). One fresh attempt distinguishes that from a down
         backend. *)
      Client.close c;
      call_fresh ?timeout_ms t req
    | exception e -> Client.close c; raise e)

let close t =
  Mutex.lock t.mu;
  let conns = t.idle in
  t.idle <- [];
  t.closed <- true;
  Mutex.unlock t.mu;
  List.iter Client.close conns
