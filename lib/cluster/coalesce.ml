type 'a flight = {
  mutable outcome : ('a, exn) result option;  (* None while the leader runs *)
  mutable joined : int;
  cv : Condition.t;
}

type 'a t = { mu : Mutex.t; flights : (string, 'a flight) Hashtbl.t }

let create () = { mu = Mutex.create (); flights = Hashtbl.create 32 }

let in_flight t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.flights in
  Mutex.unlock t.mu;
  n

let run t key f =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.flights key with
  | Some fl ->
    fl.joined <- fl.joined + 1;
    let rec wait () =
      match fl.outcome with
      | Some r -> r
      | None ->
        Condition.wait fl.cv t.mu;
        wait ()
    in
    let r = wait () in
    Mutex.unlock t.mu;
    (match r with Ok v -> `Joined v | Error e -> raise e)
  | None ->
    let fl = { outcome = None; joined = 0; cv = Condition.create () } in
    Hashtbl.replace t.flights key fl;
    Mutex.unlock t.mu;
    let r = try Ok (f ()) with e -> Error e in
    Mutex.lock t.mu;
    fl.outcome <- Some r;
    (* Remove before waking: anyone arriving from here on starts a fresh
       flight instead of reading a stale result. *)
    Hashtbl.remove t.flights key;
    Condition.broadcast fl.cv;
    let joined = fl.joined in
    Mutex.unlock t.mu;
    (match r with Ok v -> `Led (v, joined) | Error e -> raise e)
