(** The `spp proxy` front tier: one NDJSON endpoint over a ring of
    `spp serve` backends.

    {v
    clients --ndjson--> proxy ---+--> backend A (spp serve)
                        | ring   +--> backend B
                        | cache  +--> backend C
                        +-- health prober (health op, jittered)
    v}

    - {b Routing}: each [solve] request's instance is parsed and
      fingerprinted ({!Spp_engine.Fingerprint}), and the fingerprint is
      consistent-hashed ({!Ring}) over the {e live} backends — the same
      instance always lands on the same backend, so backend-local caches
      concentrate instead of diluting across the fleet.
    - {b Coalescing}: concurrent requests for the same fingerprint share
      one upstream solve ({!Coalesce}); budgets and algorithm lists are
      {e not} part of the key (the engine's own cache is keyed by
      fingerprint alone, so coalesced sharers get exactly what a cache
      hit would have given them).
    - {b Warm cache}: successful replies are snooped into a bounded
      fingerprint-keyed LRU; a repeat answers at the proxy with
      [source = "cache.proxy"] without touching a backend — and keeps
      answering even when every backend is dead.
    - {b Health}: a prober thread issues [health] ops on
      decorrelated-jitter intervals; [fail_after] consecutive failures
      evict a backend from the ring (its keys move to their ring
      successors), [revive_after] consecutive successes readmit it.
      Transport failures observed by live traffic count against a backend
      too, so eviction does not wait for the prober.
    - {b Failover}: a [solve] whose routed backend fails (transport error,
      or an [overloaded] / [shutting_down] / [internal] reply) walks the
      ring successor list, up to [failover] further backends. Instance-
      specific rejections ([bad_instance], [bad_request]) are returned
      as-is — the next backend would say the same. With no backend left
      the client gets [overloaded] with a [retry_after_ms] hint, which
      retrying clients (and {!Spp_server.Client.call}) treat as a floor.

    [metrics] and [health] ops are answered locally from the proxy's own
    registry; [shutdown] drains the proxy and never propagates upstream.

    Fault points: [proxy.upstream] (in {!Upstream.call}) and
    [proxy.health] (fails individual probes). *)

type config = {
  address : Spp_server.Framing.address;  (** front listen address *)
  backends : Spp_server.Framing.address list;  (** at least one *)
  replicas : int;  (** ring vnodes per backend, see {!Ring} *)
  cache_capacity : int;  (** snoop-LRU entries; [0] disables the cache *)
  pool_size : int;  (** idle upstream connections kept per backend *)
  upstream_timeout_ms : float option;
      (** bounds upstream connects and reply waits ([None] = no deadline) *)
  failover : int;
      (** extra ring successors tried after the routed backend fails *)
  probe_interval_ms : float;
      (** base health-probe interval; actual intervals are decorrelated-
          jittered up from this, and fall back to it while any backend is
          down (so readmission is prompt); also the [retry_after_ms] hint
          on no-backend [overloaded] replies *)
  fail_after : int;  (** consecutive failures before ring eviction *)
  revive_after : int;  (** consecutive probe successes before readmission *)
  registry : Spp_obs.Metrics.t;  (** proxy metrics land here *)
  seed : int;  (** prober-jitter PRNG seed *)
}

(** Defaults: 64 replicas, 512 cache entries, pool of 2, 5 s upstream
    timeout, failover 2, 1 s probes, fail after 3, revive after 2,
    seed 0. [registry] is fresh and enabled. *)
val default_config :
  address:Spp_server.Framing.address ->
  backends:Spp_server.Framing.address list -> unit -> config

type t

(** [start cfg] binds the front address, spawns the acceptor and prober
    threads, and returns immediately. All backends start presumed live;
    the first probe cycle corrects that within roughly
    [probe_interval_ms].
    @raise Invalid_argument on an empty backend list or nonsensical
    numeric fields.
    @raise Unix.Unix_error if the front address cannot be bound. *)
val start : config -> t

(** Live backend names ({!Upstream.name} strings), sorted — the current
    ring membership. *)
val live_backends : t -> string list

(** [stop t] initiates graceful drain (idempotent, returns immediately);
    pair with {!wait}. *)
val stop : t -> unit

(** Block until drained: listener closed, connection threads joined,
    prober joined, upstream pools closed. *)
val wait : t -> unit
