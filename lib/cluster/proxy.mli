(** The `spp proxy` front tier: one NDJSON endpoint over a ring of
    `spp serve` backends.

    {v
    clients --ndjson--> proxy ---+--> backend A (spp serve)
                        | ring   +--> backend B
                        | cache  +--> backend C
                        +-- health prober (health op, jittered)
    v}

    - {b Routing}: each [solve] request's instance is parsed and
      fingerprinted ({!Spp_engine.Fingerprint}), and the fingerprint is
      consistent-hashed ({!Ring}) over the {e live} backends — the same
      instance always lands on the same backend, so backend-local caches
      concentrate instead of diluting across the fleet.
    - {b Coalescing}: concurrent requests for the same fingerprint share
      one upstream solve ({!Coalesce}); budgets and algorithm lists are
      {e not} part of the key (the engine's own cache is keyed by
      fingerprint alone, so coalesced sharers get exactly what a cache
      hit would have given them).
    - {b Warm cache}: successful replies are snooped into a bounded
      fingerprint-keyed LRU; a repeat answers at the proxy with
      [source = "cache.proxy"] without touching a backend — and keeps
      answering even when every backend is dead.
    - {b Health}: a prober thread issues [health] ops on
      decorrelated-jitter intervals; [fail_after] consecutive failures
      evict a backend from the ring (its keys move to their ring
      successors), [revive_after] consecutive successes readmit it.
      Transport failures observed by live traffic count against a backend
      too, so eviction does not wait for the prober.
    - {b Failover}: a [solve] whose routed backend fails (transport error,
      or an [overloaded] / [shutting_down] / [internal] reply) walks the
      ring successor list, up to [failover] further backends. Instance-
      specific rejections ([bad_instance], [bad_request]) are returned
      as-is — the next backend would say the same. With no backend left
      the client gets [overloaded] with a [retry_after_ms] hint, which
      retrying clients (and {!Spp_server.Client.call}) treat as a floor.
    - {b Hedging}: with [hedge] enabled, a routed backend that is merely
      {e slow} also triggers failover — after the hedge delay with no
      verdict, the same solve is re-issued to the next ring successor in
      parallel and the first reply wins ([spp_hedges_total],
      [spp_hedge_wins_total]). The loser is abandoned; the propagated
      deadline it carried bounds what it can still cost its backend.
      [Hedge_auto] derives the delay from the observed upstream p99
      (once 32 samples exist, floored at 25 ms); [Hedge_fixed] pins it.
    - {b Circuit breakers}: each backend carries a {!Breaker} — a rolling
      window that opens on clustered transport failures faster than the
      consecutive-streak health counters can, then re-admits via a
      single half-open probe request. An open breaker skips the backend
      on the request path ([breaker_open] outcome) without waiting for
      ring eviction; state is exported as [spp_breaker_state]{[backend]}.
    - {b Deadlines}: a [solve] carrying [deadline_ms] is pinned to the
      proxy's clock at receipt; each upstream launch forwards only the
      budget remaining at that moment and bounds its reply wait by it. A
      request whose deadline is exhausted before any upstream call is
      fast-failed with [wont_make_it] ([spp_deadline_rejects_total]) —
      though a warm-cache hit is always served. Degraded replies pass
      through to the caller but are never snooped into the warm cache.

    [metrics] and [health] ops are answered locally from the proxy's own
    registry; [shutdown] drains the proxy and never propagates upstream.

    Fault points: [proxy.upstream] (in {!Upstream.call}), [proxy.health]
    (fails individual probes) and [proxy.hedge] (suppresses a hedged
    re-issue the moment its timer fires). *)

(** When to re-issue a slow pending solve to the next backend:
    never; after the observed upstream p99 (needs history, see above);
    or after a fixed delay in milliseconds. *)
type hedge_policy = Hedge_off | Hedge_auto | Hedge_fixed of float

type config = {
  address : Spp_server.Framing.address;  (** front listen address *)
  backends : Spp_server.Framing.address list;  (** at least one *)
  replicas : int;  (** ring vnodes per backend, see {!Ring} *)
  cache_capacity : int;  (** snoop-LRU entries; [0] disables the cache *)
  pool_size : int;  (** idle upstream connections kept per backend *)
  upstream_timeout_ms : float option;
      (** bounds upstream connects and reply waits ([None] = no deadline) *)
  failover : int;
      (** extra ring successors tried after the routed backend fails *)
  probe_interval_ms : float;
      (** base health-probe interval; actual intervals are decorrelated-
          jittered up from this, and fall back to it while any backend is
          down (so readmission is prompt); also the [retry_after_ms] hint
          on no-backend [overloaded] replies *)
  fail_after : int;  (** consecutive failures before ring eviction *)
  revive_after : int;  (** consecutive probe successes before readmission *)
  registry : Spp_obs.Metrics.t;  (** proxy metrics land here *)
  seed : int;  (** prober-jitter PRNG seed *)
  hedge : hedge_policy;
  breaker_window : int;  (** rolling outcomes per backend, see {!Breaker} *)
  breaker_threshold : int;  (** failures within the window that trip it *)
  breaker_cooldown_ms : float;  (** open time before the half-open probe *)
}

(** Defaults: 64 replicas, 512 cache entries, pool of 2, 5 s upstream
    timeout, failover 2, 1 s probes, fail after 3, revive after 2,
    seed 0, hedging off, breaker 5-of-8 with a 5 s cooldown. [registry]
    is fresh and enabled. *)
val default_config :
  address:Spp_server.Framing.address ->
  backends:Spp_server.Framing.address list -> unit -> config

type t

(** [start cfg] binds the front address, spawns the acceptor and prober
    threads, and returns immediately. All backends start presumed live;
    the first probe cycle corrects that within roughly
    [probe_interval_ms].
    @raise Invalid_argument on an empty backend list or nonsensical
    numeric fields.
    @raise Unix.Unix_error if the front address cannot be bound. *)
val start : config -> t

(** Live backend names ({!Upstream.name} strings), sorted — the current
    ring membership. *)
val live_backends : t -> string list

(** [stop t] initiates graceful drain (idempotent, returns immediately);
    pair with {!wait}. *)
val stop : t -> unit

(** Block until drained: listener closed, connection threads joined,
    prober joined, upstream pools closed. *)
val wait : t -> unit
