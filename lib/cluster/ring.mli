(** Consistent-hash ring with virtual nodes.

    Each member is planted at [replicas] pseudo-random points on a 64-bit
    ring (the points are MD5-derived, so the layout is a pure function of
    the member names and the replica count — identical across processes,
    restarts, and architectures). A key routes to the member owning the
    first point at or clockwise of the key's own hash. Adding or removing
    one member therefore moves only the keys in that member's arcs —
    about [1/n] of the keyspace — instead of reshuffling everything, which
    is what keeps backend-local caches warm across membership changes.

    The ring is immutable: {!add} and {!remove} return a new ring. At
    proxy scale (a handful of members, tens of vnodes each) a full rebuild
    is microseconds; immutability buys lock-free reads from every
    connection thread. *)

type t

(** Default virtual nodes per member (64). More vnodes smooth the load
    split between members at the cost of a larger point table. *)
val default_replicas : int

(** [create ?replicas members] builds a ring over the distinct member
    names ([replicas] defaults to {!default_replicas}; duplicates are
    dropped). An empty list is a valid, empty ring.
    @raise Invalid_argument on [replicas < 1]. *)
val create : ?replicas:int -> string list -> t

(** Member names, sorted. *)
val members : t -> string list

val size : t -> int
val mem : t -> string -> bool

(** [add t m] — a ring with member [m] planted ([t] itself when already
    present). *)
val add : t -> string -> t

val remove : t -> string -> t

(** [hash s] — the 64-bit ring position of [s] (first 8 bytes of its MD5,
    big-endian). Deterministic across processes; exposed so tests can pin
    golden values. *)
val hash : string -> int64

(** [route t key] is the member owning [key] — the one whose point is
    first at or clockwise of [hash key] — or [None] on an empty ring. *)
val route : t -> string -> string option

(** [successors t key] is every member in ring order starting at [key]'s
    owner: the failover sequence. Distinct, length [size t]; [[]] on an
    empty ring. The head equals [route t key]. *)
val successors : t -> string -> string list
