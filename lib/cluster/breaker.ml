module Clock = Spp_util.Clock

type state = Closed | Open | Half_open

type t = {
  window : int;
  threshold : int;
  cooldown_ms : float;
  mu : Mutex.t;
  ring : bool array;  (* rolling outcomes; [true] = failure *)
  mutable count : int;  (* observations recorded, capped at [window] *)
  mutable idx : int;  (* next write position *)
  mutable failures : int;  (* failures currently in the ring *)
  mutable state : state;
  mutable opened_ms : float;  (* Clock time of the last trip *)
  mutable probing : bool;  (* the half-open probe slot is out *)
  mutable trips : int;
}

let default_window = 8
let default_threshold = 5
let default_cooldown_ms = 5_000.0

let create ?(window = default_window) ?(threshold = default_threshold)
    ?(cooldown_ms = default_cooldown_ms) () =
  if window < 1 then invalid_arg "Breaker.create: window must be >= 1";
  if threshold < 1 || threshold > window then
    invalid_arg "Breaker.create: threshold must be in [1, window]";
  if cooldown_ms <= 0.0 then invalid_arg "Breaker.create: cooldown_ms must be > 0";
  { window; threshold; cooldown_ms; mu = Mutex.create ();
    ring = Array.make window false; count = 0; idx = 0; failures = 0;
    state = Closed; opened_ms = 0.0; probing = false; trips = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let reset_window_locked t =
  Array.fill t.ring 0 t.window false;
  t.count <- 0;
  t.idx <- 0;
  t.failures <- 0

let trip_locked t =
  t.state <- Open;
  t.opened_ms <- Clock.now_ms ();
  t.probing <- false;
  t.trips <- t.trips + 1

let allow t =
  locked t (fun () ->
      match t.state with
      | Closed -> true
      | Open ->
        if Clock.elapsed_ms t.opened_ms >= t.cooldown_ms then begin
          (* Cooldown over: half-open, and this caller is the probe. *)
          t.state <- Half_open;
          t.probing <- true;
          true
        end
        else false
      | Half_open ->
        if t.probing then false
        else begin
          t.probing <- true;
          true
        end)

let record t ~ok =
  locked t (fun () ->
      match t.state with
      | Half_open ->
        (* The probe's verdict decides alone — the old window is stale. *)
        t.probing <- false;
        if ok then begin
          t.state <- Closed;
          reset_window_locked t
        end
        else trip_locked t
      | Open ->
        (* A straggler launched before the trip; its outcome is about the
           pre-trip era and must not consume the coming probe's verdict. *)
        ()
      | Closed ->
        let evicted = if t.count = t.window then t.ring.(t.idx) else false in
        t.ring.(t.idx) <- not ok;
        t.idx <- (t.idx + 1) mod t.window;
        if t.count < t.window then t.count <- t.count + 1;
        if evicted then t.failures <- t.failures - 1;
        if not ok then t.failures <- t.failures + 1;
        if t.failures >= t.threshold then trip_locked t)

let state t = locked t (fun () -> t.state)
let trips t = locked t (fun () -> t.trips)

let state_to_string = function
  | Closed -> "closed"
  | Half_open -> "half_open"
  | Open -> "open"

let state_value t =
  match state t with Closed -> 0.0 | Half_open -> 1.0 | Open -> 2.0
