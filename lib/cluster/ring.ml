type t = {
  replicas : int;
  members : string list;  (* sorted, distinct *)
  points : (int64 * string) array;  (* sorted by point, unsigned *)
}

let default_replicas = 64

(* First 8 bytes of the MD5, read big-endian. MD5 is stable across
   processes and platforms, which is what makes the ring layout (and the
   test suite's golden values) deterministic. *)
let hash s = String.get_int64_be (Digest.string s) 0

(* Vnode [i] of member [m] sits at hash "m#i". Ties between distinct
   members at the same point (vanishingly rare) break by name so the
   layout stays a pure function of the member set. *)
let build replicas members =
  let points =
    List.concat_map
      (fun m -> List.init replicas (fun i -> (hash (Printf.sprintf "%s#%d" m i), m)))
      members
    |> Array.of_list
  in
  Array.sort
    (fun (a, ma) (b, mb) ->
      match Int64.unsigned_compare a b with 0 -> String.compare ma mb | c -> c)
    points;
  points

let create ?(replicas = default_replicas) members =
  if replicas < 1 then invalid_arg "Ring.create: replicas must be >= 1";
  let members = List.sort_uniq String.compare members in
  { replicas; members; points = build replicas members }

let members t = t.members
let size t = List.length t.members
let mem t m = List.mem m t.members

let add t m =
  if mem t m then t
  else
    let members = List.sort String.compare (m :: t.members) in
    { t with members; points = build t.replicas members }

let remove t m =
  if not (mem t m) then t
  else
    let members = List.filter (fun x -> x <> m) t.members in
    { t with members; points = build t.replicas members }

(* Index of the first point at or clockwise of [h], wrapping past the top
   of the ring back to index 0. *)
let succ_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t key =
  if Array.length t.points = 0 then None
  else Some (snd t.points.(succ_index t (hash key)))

let successors t key =
  let n = Array.length t.points in
  if n = 0 then []
  else begin
    let want = size t in
    let start = succ_index t (hash key) in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let i = ref 0 in
    while !i < n && Hashtbl.length seen < want do
      let m = snd t.points.((start + !i) mod n) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        acc := m :: !acc
      end;
      incr i
    done;
    List.rev !acc
  end
