(** In-flight request coalescing (singleflight).

    When several connection threads ask for the same key concurrently,
    exactly one — the {e leader} — runs the computation; the others block
    on the leader's flight and receive the same value. The flight is
    removed {e before} followers wake, so a request arriving after the
    result is published starts a fresh flight (coalescing is a
    concurrency optimisation, not a cache — pair it with one for
    memoisation across time).

    The proxy keys flights by instance fingerprint: a duplicate-heavy
    workload hits each backend once per distinct instance per flight,
    however many clients are hammering the front. *)

type 'a t

val create : unit -> 'a t

(** Flights currently open — a gauge for observability. *)
val in_flight : 'a t -> int

(** [run t key f] — if no flight for [key] is open, open one, run [f]
    (outside the lock), publish, and return [`Led (v, joined)] where
    [joined] counts the followers served. Otherwise block until the open
    flight publishes and return [`Joined v].

    When the leader's [f] raises, the exception propagates to the leader
    {e and} to every follower of that flight (they joined the same doomed
    computation; each next arrival after removal leads its own retry). *)
val run : 'a t -> string -> (unit -> 'a) -> [ `Led of 'a * int | `Joined of 'a ]
