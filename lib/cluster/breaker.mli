(** Per-backend circuit breaker.

    Complements the proxy's passive/probed health (consecutive streaks
    flipping ring membership) with a faster, burst-sensitive trip: a
    rolling window of the last [window] attempt outcomes opens the
    circuit once [threshold] of them are failures — no need for the
    failures to be consecutive, which is exactly the case (a backend
    failing 5 of its last 8, interleaved with successes) the streak
    counters are blind to.

    State machine:

    {v
      Closed --[threshold failures in window]--> Open
      Open   --[cooldown_ms elapsed]--> Half_open (one probe granted)
      Half_open --[probe ok]--> Closed (window reset)
      Half_open --[probe failed]--> Open (cooldown restarts)
    v}

    While [Open], {!allow} answers [false] and the proxy skips the
    backend without spending a connection on it. [Half_open] grants a
    single live request as the probe; concurrent callers are refused
    until its verdict lands. Outcomes recorded while [Open] (stragglers
    launched before the trip) are ignored — they describe the pre-trip
    era and must not consume the probe's verdict.

    All timing reads {!Spp_util.Clock}, so the cooldown is testable
    under frozen/advanced virtual time. Thread-safe. *)

type state = Closed | Open | Half_open

type t

val default_window : int  (** 8 *)

val default_threshold : int  (** 5 *)

val default_cooldown_ms : float  (** 5000 *)

(** [create ()] starts [Closed] with an empty window.
    @raise Invalid_argument on [window < 1], [threshold] outside
    [\[1, window\]], or [cooldown_ms <= 0]. *)
val create : ?window:int -> ?threshold:int -> ?cooldown_ms:float -> unit -> t

(** [allow t] — may a request be sent now? [Closed]: always. [Open]:
    [false] until [cooldown_ms] has elapsed, then the circuit moves to
    [Half_open] and this call is granted as the probe. [Half_open]:
    [false] while the probe slot is out. A granted caller must
    eventually {!record} its outcome. *)
val allow : t -> bool

(** [record t ~ok] feeds one attempt outcome (transport success/failure,
    as the proxy classifies it) into the window and runs the
    transitions described above. *)
val record : t -> ok:bool -> unit

val state : t -> state
val state_to_string : state -> string

(** Numeric encoding for the [spp_breaker_state] gauge:
    0 closed, 1 half-open, 2 open. *)
val state_value : t -> float

(** Times the circuit has tripped to [Open] since creation. *)
val trips : t -> int
