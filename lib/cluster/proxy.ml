module Client = Spp_server.Client
module Framing = Spp_server.Framing
module Json = Spp_server.Json
module Bqueue = Spp_server.Bqueue
module Deadline = Spp_util.Deadline
module Protocol = Spp_server.Protocol
module Lru = Spp_engine.Lru
module Fingerprint = Spp_engine.Fingerprint
module Io = Spp_core.Io
module Clock = Spp_util.Clock
module Prng = Spp_util.Prng
module Metrics = Spp_obs.Metrics
module Trace = Spp_obs.Trace
module Log = Spp_obs.Log
module Field = Spp_obs.Field

type hedge_policy = Hedge_off | Hedge_auto | Hedge_fixed of float

type config = {
  address : Framing.address;
  backends : Framing.address list;
  replicas : int;
  cache_capacity : int;
  pool_size : int;
  upstream_timeout_ms : float option;
  failover : int;
  probe_interval_ms : float;
  fail_after : int;
  revive_after : int;
  registry : Metrics.t;
  seed : int;
  hedge : hedge_policy;
  breaker_window : int;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
}

let default_config ~address ~backends () =
  { address; backends; replicas = Ring.default_replicas; cache_capacity = 512;
    pool_size = Upstream.default_pool_size; upstream_timeout_ms = Some 5_000.0;
    failover = 2; probe_interval_ms = 1_000.0; fail_after = 3; revive_after = 2;
    registry = Metrics.create (); seed = 0; hedge = Hedge_off;
    breaker_window = Breaker.default_window; breaker_threshold = Breaker.default_threshold;
    breaker_cooldown_ms = Breaker.default_cooldown_ms }

(* Auto-hedging needs enough latency history to know what "slow" means,
   and must never hedge at microsecond scale just because the backends
   are fast. *)
let hedge_auto_min_samples = 32
let hedge_auto_floor_ms = 25.0

(* Per-backend health state. [fails]/[oks] count *consecutive* outcomes;
   both are guarded by the proxy's [health_mu]. The breaker carries its
   own lock — it is consulted on the request path where taking
   [health_mu] would serialize attempts. *)
type backend = {
  up : Upstream.t;
  brk : Breaker.t;
  mutable alive : bool;
  mutable fails : int;
  mutable oks : int;
}

type instruments = {
  reg : Metrics.t;
  m_connections : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_request_ms : Metrics.histogram;
  m_upstream_ms : Metrics.histogram;
  m_hedges : Metrics.counter;
  m_hedge_wins : Metrics.counter;
  m_deadline_rejects : Metrics.counter;
}

type conn = { fd : Unix.file_descr }

type t = {
  cfg : config;
  backends : backend array;
  by_name : (string, backend) Hashtbl.t;
  health_mu : Mutex.t;  (* guards [ring] and every backend's health fields *)
  mutable ring : Ring.t;  (* live members only *)
  cache : Protocol.solve_reply Lru.t option;
  coalesce : Protocol.response Coalesce.t;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  lock : Mutex.t;  (* guards conns and threads *)
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable acceptor : Thread.t option;
  mutable prober : Thread.t option;
  started_ms : float;
  mx : instruments;
}

(* ------------------------------------------------------------------ *)
(* Health and ring membership *)

let live_names_locked t =
  Array.to_list t.backends
  |> List.filter_map (fun b -> if b.alive then Some (Upstream.name b.up) else None)

let live_backends t =
  Mutex.lock t.health_mu;
  let names = live_names_locked t in
  Mutex.unlock t.health_mu;
  List.sort String.compare names

let current_ring t =
  Mutex.lock t.health_mu;
  let r = t.ring in
  Mutex.unlock t.health_mu;
  r

let count_membership t name metric =
  Metrics.incr
    (Metrics.counter t.mx.reg ~labels:[ ("backend", name) ] metric)

(* One observation of backend [b]: [ok] from a probe or from live
   traffic. Flips liveness on the configured consecutive streaks and
   rebuilds the ring when membership changes. *)
let note_result t b ok =
  Mutex.lock t.health_mu;
  let change =
    if ok then
      if b.alive then (b.fails <- 0; `None)
      else begin
        b.oks <- b.oks + 1;
        if b.oks >= t.cfg.revive_after then begin
          b.alive <- true;
          b.fails <- 0;
          b.oks <- 0;
          `Readmitted
        end
        else `None
      end
    else if b.alive then begin
      b.fails <- b.fails + 1;
      if b.fails >= t.cfg.fail_after then begin
        b.alive <- false;
        b.oks <- 0;
        `Evicted
      end
      else `None
    end
    else (b.oks <- 0; `None)
  in
  if change <> `None then
    t.ring <- Ring.create ~replicas:t.cfg.replicas (live_names_locked t);
  let live = Ring.size t.ring in
  Mutex.unlock t.health_mu;
  let name = Upstream.name b.up in
  match change with
  | `None -> ()
  | `Evicted ->
    count_membership t name "spp_proxy_evictions_total";
    Log.warn "backend evicted from ring"
      [ ("backend", Field.String name); ("live", Field.Int live) ]
  | `Readmitted ->
    count_membership t name "spp_proxy_readmissions_total";
    Log.info "backend readmitted to ring"
      [ ("backend", Field.String name); ("live", Field.Int live) ]

let probe_backend t b =
  let ok =
    try
      Spp_util.Fault.hit "proxy.health";
      match
        Client.with_connection ~timeout_ms:t.cfg.probe_interval_ms
          (Upstream.address b.up)
          (fun c -> Client.request c Protocol.Health)
      with
      | Protocol.Health_ok _ -> true
      | _ -> false
    with Spp_util.Fault.Injected _ | Client.Error _ -> false
  in
  if not ok then
    count_membership t (Upstream.name b.up) "spp_proxy_probe_failures_total";
  note_result t b ok

let prober_loop t =
  let rng = Prng.create t.cfg.seed in
  let base = t.cfg.probe_interval_ms in
  let cap = base *. 4.0 in
  let prev = ref base in
  (* Sleep in short slices so a drain is noticed within ~50 ms. *)
  let rec nap ms =
    if ms > 0.0 && not (Atomic.get t.stopping) then begin
      Unix.sleepf (Float.min 0.05 (ms /. 1000.0));
      nap (ms -. 50.0)
    end
  in
  while not (Atomic.get t.stopping) do
    Array.iter (fun b -> if not (Atomic.get t.stopping) then probe_backend t b) t.backends;
    let any_down =
      Mutex.lock t.health_mu;
      let d = Array.exists (fun b -> not b.alive) t.backends in
      Mutex.unlock t.health_mu;
      d
    in
    (* Decorrelated jitter between cycles keeps a fleet of proxies from
       probing in lockstep; while anything is down we pin to the base
       interval so readmission never waits on a stretched sleep. *)
    let s =
      if any_down then base
      else Float.min cap (Prng.float_in rng base (Float.max base (!prev *. 3.0)))
    in
    prev := s;
    nap s
  done

(* ------------------------------------------------------------------ *)
(* Upstream solve with ring walk *)

let count_upstream t backend outcome =
  Metrics.incr
    (Metrics.counter t.mx.reg ~help:"Upstream solve attempts by backend and outcome"
       ~labels:[ ("backend", backend); ("outcome", outcome) ] "spp_proxy_requests_total")

let observe_upstream t backend ms =
  Metrics.observe t.mx.m_upstream_ms ms;
  Metrics.observe
    (Metrics.histogram t.mx.reg ~labels:[ ("backend", backend) ] "spp_proxy_upstream_ms")
    ms

let no_backend_error t message =
  Protocol.Error
    { code = Protocol.Overloaded; message;
      retry_after_ms = Some (int_of_float t.cfg.probe_interval_ms) }

(* Rebuild a backend's reply-embedded span tree (the {!Trace.to_json}
   shape: [{"trace_id":...,"root":{span}}], spans nested under ["spans"])
   as a {!Trace.imported}, ready to graft under the proxy's [upstream]
   span. Malformed nodes are dropped silently — a trace is best effort
   and must never fail a solve. *)
let rec imported_of_span j =
  match Json.member "name" j with
  | Some (Json.String name) ->
    let num = function
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let fields =
      match Json.member "fields" j with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.String s -> Some (k, Field.String s)
            | Json.Int i -> Some (k, Field.Int i)
            | Json.Float f -> Some (k, Field.Float f)
            | Json.Bool b -> Some (k, Field.Bool b)
            | Json.Null | Json.List _ | Json.Obj _ -> None)
          kvs
      | _ -> []
    in
    let children =
      match Json.member "spans" j with
      | Some (Json.List l) -> List.filter_map imported_of_span l
      | _ -> []
    in
    Some
      { Trace.i_name = name;
        i_start_ms = Option.value (num (Json.member "start_ms" j)) ~default:0.0;
        i_dur_ms = num (Json.member "ms" j); i_fields = fields; i_children = children }
  | _ -> None

let imported_of_trace_json j = Option.bind (Json.member "root" j) imported_of_span

(* How long to let the leading attempt run before re-issuing the solve
   to the next candidate. [None] = hedging off (policy off, or auto
   without enough latency history yet). *)
let hedge_delay_ms t =
  match t.cfg.hedge with
  | Hedge_off -> None
  | Hedge_fixed ms -> Some ms
  | Hedge_auto -> (
    match Metrics.find_histogram t.mx.reg "spp_proxy_upstream_ms" with
    | Some h when h.Metrics.total >= hedge_auto_min_samples ->
      Some (Float.max hedge_auto_floor_ms (Metrics.hist_quantile h 0.99))
    | Some _ | None -> None)

(* What one concluded attempt means for the walk: [Win] answers the
   client now; [Next] fails over, optionally remembering a backend-state
   reply so "every candidate is sick" surfaces the last real reply (with
   its own retry hint) rather than a synthetic one. *)
type verdict = Win of Protocol.response | Next of Protocol.response option

(* One upstream attempt, with every side effect it owns: the breaker
   gate, metrics, health notes, the trace span (named [hedge] for a
   hedged re-issue) and the graft of the backend's returned span tree.
   The request is (re-)encoded here so a hedged launch carries the
   deadline {e remaining at launch time}, not at walk start — and the
   same remainder bounds the reply wait, which is also what reins in a
   losing attempt server-side after its rival already answered. *)
let run_attempt t ~instance ~budget_ms ~deadline ~algos ~trace ~hedged b =
  let name = Upstream.name b.up in
  if not (Breaker.allow b.brk) then begin
    count_upstream t name "breaker_open";
    Next None
  end
  else begin
    let req =
      Protocol.Solve
        { instance; budget_ms; deadline_ms = Option.map Deadline.forward_ms deadline;
          algos; trace_id = Option.map Trace.id trace }
    in
    let timeout_ms =
      match (deadline, t.cfg.upstream_timeout_ms) with
      | None, _ -> None
      | Some d, None -> Some (Deadline.remaining_ms d)
      | Some d, Some pt -> Some (Float.min pt (Deadline.remaining_ms d))
    in
    let attempt () =
      let call () = Upstream.call ?timeout_ms b.up req in
      match trace with
      | None -> call ()
      | Some tr ->
        Trace.with_span tr ~parent:(Trace.root tr)
          (if hedged then "hedge" else "upstream")
          (fun s ->
            Trace.add_fields tr s [ ("backend", Field.String name) ];
            match call () with
            | Protocol.Solve_ok ({ trace = Some j; _ } as r) ->
              (* Graft the backend's tree under this span, rebased onto
                 the proxy's timeline at the moment the upstream call
                 began, then drop the raw field — the stitched tree
                 supersedes it. *)
              Option.iter
                (fun imp -> Trace.graft tr ~parent:s ~offset_ms:(Trace.start_ms s) imp)
                (imported_of_trace_json j);
              Protocol.Solve_ok { r with Protocol.trace = None }
            | other -> other)
    in
    let t0 = Clock.now_ms () in
    match attempt () with
    | Protocol.Solve_ok _ as r ->
      observe_upstream t name (Clock.elapsed_ms t0);
      count_upstream t name "ok";
      note_result t b true;
      Breaker.record b.brk ~ok:true;
      Win r
    | Protocol.Error
        { code = Protocol.Overloaded | Protocol.Shutting_down | Protocol.Internal; _ } as r
      ->
      count_upstream t name "failed";
      note_result t b true;
      Breaker.record b.brk ~ok:true;
      Next (Some r)
    | Protocol.Error _ as r ->
      (* Instance-specific rejection: every backend would say the same. *)
      count_upstream t name "rejected";
      note_result t b true;
      Breaker.record b.brk ~ok:true;
      Win r
    | _other ->
      count_upstream t name "failed";
      note_result t b true;
      Breaker.record b.brk ~ok:true;
      Next
        (Some
           (Protocol.Error
              { code = Protocol.Internal;
                message = "backend sent a non-solve reply to a solve";
                retry_after_ms = None }))
    | exception Client.Error { kind; message; _ } ->
      count_upstream t name "transport";
      note_result t b false;
      Breaker.record b.brk ~ok:false;
      Log.warn "upstream call failed"
        [ ("backend", Field.String name);
          ("kind", Field.String (Client.kind_to_string kind));
          ("error", Field.String message) ];
      Next None
  end

(* Walk [fp]'s ring successors, first to answer wins. Backend-state
   errors (overloaded / shutting_down / internal) fail over like
   transport errors but are remembered. With hedging on, a candidate
   that is merely {e slow} also triggers failover: after [hedge_delay]
   with no verdict the next candidate is launched in parallel and the
   first reply wins — the loser is abandoned (its thread drains into an
   unread mailbox; its propagated deadline bounds the work it can still
   cost a backend). *)
let upstream_solve t ~fp ~instance ~budget_ms ~deadline ~algos ~trace =
  let candidates =
    let ring = current_ring t in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    take (t.cfg.failover + 1) (Ring.successors ring fp)
  in
  let run ~hedged name =
    run_attempt t ~instance ~budget_ms ~deadline ~algos ~trace ~hedged
      (Hashtbl.find t.by_name name)
  in
  let give_up last =
    match last with
    | Some r -> r
    | None ->
      no_backend_error t
        (if candidates = [] then "no live backend"
         else "all candidate backends unreachable")
  in
  match hedge_delay_ms t with
  | None ->
    (* Sequential: each candidate concludes before the next is tried. *)
    let rec walk last = function
      | [] -> give_up last
      | name :: rest -> (
        match run ~hedged:false name with
        | Win r -> r
        | Next None -> walk last rest
        | Next (Some r) -> walk (Some r) rest)
    in
    walk None candidates
  | Some delay -> (
    match candidates with
    | [] -> give_up None
    | first :: _ ->
      (* Concluded verdicts arrive through a mailbox sized for every
         candidate, so a loser's late push never blocks its thread. *)
      let mailbox = Bqueue.create ~capacity:(List.length candidates) in
      let launch ~hedged name =
        ignore
          (Thread.create
             (fun () -> ignore (Bqueue.try_push mailbox (hedged, run ~hedged name)))
             ())
      in
      launch ~hedged:false first;
      (* [outstanding] attempts are in flight; [pending] candidates are
         not yet launched. The hedge timer only runs while both are
         non-trivial: a verdict-concluded failover launches immediately,
         and with nothing left to launch we just wait out the leader. *)
      let rec collect ~outstanding ~pending ~last =
        if outstanding = 0 then (
          match pending with
          | [] -> give_up last
          | name :: pending ->
            launch ~hedged:false name;
            collect ~outstanding:1 ~pending ~last)
        else begin
          let timeout_ms = if pending = [] then 60_000.0 else delay in
          match Bqueue.pop_within mailbox ~timeout_ms with
          | Some (hedged, Win r) ->
            if hedged then Metrics.incr t.mx.m_hedge_wins;
            r
          | Some (_, Next remembered) ->
            let last = match remembered with Some _ -> remembered | None -> last in
            collect ~outstanding:(outstanding - 1) ~pending ~last
          | None -> (
            match pending with
            | [] -> collect ~outstanding ~pending ~last
            | name :: pending -> (
              (* The leader is slow. [proxy.hedge] suppresses exactly
                 this re-issue — the chaos hook for "the hedge did not
                 help" — after which the candidate is gone for good. *)
              match Spp_util.Fault.hit "proxy.hedge" with
              | () ->
                Metrics.incr t.mx.m_hedges;
                launch ~hedged:true name;
                collect ~outstanding:(outstanding + 1) ~pending ~last
              | exception Spp_util.Fault.Injected _ ->
                collect ~outstanding ~pending ~last))
        end
      in
      collect ~outstanding:1 ~pending:(List.tl candidates) ~last:None)

(* ------------------------------------------------------------------ *)
(* Request handling *)

let count_op t op =
  Metrics.incr
    (Metrics.counter t.mx.reg ~help:"Requests received by op" ~labels:[ ("op", op) ]
       "spp_proxy_ops_total")

let snoop t fp = function
  | Protocol.Solve_ok r when not r.Protocol.degraded ->
    (* A replayed trace would be a lie — cache the reply without it.
       Degraded replies are never snooped at all: they are one budget's
       best effort, and replaying one to a caller with a roomier
       deadline would silently pin the cluster at the degraded answer. *)
    Option.iter
      (fun lru -> Lru.add lru fp { r with Protocol.trace_id = None; trace = None })
      t.cache
  | _ -> ()

(* The client asked for a trace: embed the proxy's stitched tree in the
   reply. Serialised before the root closes (the reply write belongs to
   the requester's side of the timeline); {!Trace.to_json} renders the
   open root without an ["ms"] field. *)
let embed_trace trace (r : Protocol.solve_reply) =
  match trace with
  | None -> { r with Protocol.trace = None }
  | Some tr ->
    { r with Protocol.trace = Result.to_option (Json.of_string (Trace.to_json tr)) }

let handle_solve t ~instance ~budget_ms ~deadline_ms ~algos ~trace_id =
  (* Pin the propagated deadline to the proxy's clock at receipt: routing,
     the cache probe, coalescing and the upstream wait all count against
     it, and each upstream launch forwards only what then remains. *)
  let deadline = Deadline.of_request deadline_ms in
  let trace = Option.map (fun id -> Trace.create ~id ~name:"proxy" ()) trace_id in
  if Atomic.get t.stopping then
    ( Protocol.Error
        { code = Protocol.Shutting_down; message = "proxy is draining"; retry_after_ms = None },
      trace )
  else
    match Io.parse_string instance with
    | exception Failure msg ->
      ( Protocol.Error { code = Protocol.Bad_instance; message = msg; retry_after_ms = None },
        trace )
    | parsed ->
      let fp = Fingerprint.parsed parsed in
      let cached =
        match t.cache with
        | None -> None
        | Some lru ->
          let hit = Lru.find lru fp in
          Metrics.incr (if hit = None then t.mx.m_cache_misses else t.mx.m_cache_hits);
          hit
      in
      Option.iter
        (fun tr ->
          let s = Trace.span tr ~parent:(Trace.root tr) "route" in
          Trace.finish
            ~fields:
              [ ("fingerprint", Field.String fp);
                ("cache", Field.String (if cached = None then "miss" else "hit")) ]
            tr s)
        trace;
      (match cached with
       | Some r ->
         (* A warm hit is served whatever the deadline says — the answer
            is already in hand, and instantly beats "won't make it". *)
         ( Protocol.Solve_ok
             (embed_trace trace { r with Protocol.source = "cache.proxy"; trace_id }),
           trace )
       | None
         when (match deadline with Some d -> Deadline.expired d | None -> false) ->
         (* Nothing cached and no time left to ask a backend: fast-fail
            here rather than burn an upstream call on a reply the client
            will never wait for. *)
         Metrics.incr t.mx.m_deadline_rejects;
         ( Protocol.Error
             { code = Protocol.Wont_make_it; message = "deadline exhausted at the proxy";
               retry_after_ms = Some (int_of_float t.cfg.probe_interval_ms) },
           trace )
       | None ->
         let lead () = upstream_solve t ~fp ~instance ~budget_ms ~deadline ~algos ~trace in
         let outcome =
           match trace with
           | None -> Coalesce.run t.coalesce fp lead
           | Some tr ->
             Trace.with_span tr ~parent:(Trace.root tr) "coalesce.wait" (fun s ->
                 let o = Coalesce.run t.coalesce fp lead in
                 Trace.add_fields tr s
                   [ ( "role",
                       Field.String (match o with `Led _ -> "led" | `Joined _ -> "joined") ) ];
                 o)
         in
         let resp =
           match outcome with
           | `Led (r, _) -> snoop t fp r; r
           | `Joined r -> Metrics.incr t.mx.m_coalesced; r
         in
         let resp =
           match resp with
           | Protocol.Solve_ok r ->
             Protocol.Solve_ok (embed_trace trace { r with Protocol.trace_id = trace_id })
           | other -> other
         in
         (resp, trace))

let histograms_of reg =
  List.filter_map
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Histogram h when s.labels = [] ->
        Some
          ( s.name,
            { Protocol.count = h.Metrics.total; sum = h.Metrics.sum;
              p50 = Metrics.hist_quantile h 0.5; p90 = Metrics.hist_quantile h 0.9;
              p99 = Metrics.hist_quantile h 0.99; buckets = h.Metrics.buckets } )
      | _ -> None)
    (Metrics.snapshot reg)

(* The proxy answers [metrics] from its own registry. [workers] reports
   live backends and [queue_length] open coalesced flights — the closest
   cluster analogues of the single-server fields. *)
let metrics t =
  let cache =
    match t.cache with
    | Some lru ->
      let s = Lru.stats lru in
      { Protocol.size = s.Lru.size; capacity = Lru.capacity lru; hits = s.Lru.hits;
        misses = s.Lru.misses; evictions = s.Lru.evictions }
    | None -> { Protocol.size = 0; capacity = 0; hits = 0; misses = 0; evictions = 0 }
  in
  Protocol.Metrics_ok
    { uptime_ms = Clock.elapsed_ms t.started_ms; counters = Metrics.counters t.mx.reg;
      cache; store_dir = None; workers = List.length (live_backends t);
      queue_length = Coalesce.in_flight t.coalesce; queue_capacity = 0;
      histograms = histograms_of t.mx.reg; algos = [] }

let health t =
  Protocol.Health_ok
    { uptime_s = Clock.elapsed_ms t.started_ms /. 1000.0;
      cache_capacity = (match t.cache with Some lru -> Lru.capacity lru | None -> 0) }

let stop t = Atomic.set t.stopping true

let respond t line =
  match Protocol.decode_request line with
  | Error msg ->
    count_op t "invalid";
    (Protocol.Error { code = Protocol.Parse; message = msg; retry_after_ms = None }, None)
  | Ok Protocol.Health ->
    count_op t "health";
    (health t, None)
  | Ok Protocol.Metrics ->
    count_op t "metrics";
    (metrics t, None)
  | Ok Protocol.Shutdown ->
    (* Drains the proxy only — backends belong to whoever started them. *)
    count_op t "shutdown";
    Log.info "shutdown requested" [];
    stop t;
    (Protocol.Shutdown_ok, None)
  | Ok (Protocol.Solve { instance; budget_ms; deadline_ms; algos; trace_id }) ->
    count_op t "solve";
    handle_solve t ~instance ~budget_ms ~deadline_ms ~algos ~trace_id

(* ------------------------------------------------------------------ *)
(* Connections (same shape as Server: acceptor + thread per connection) *)

let unregister t conn =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.lock

let finish_trace trace =
  Option.iter
    (fun tr ->
      Trace.close tr;
      if Log.enabled Log.Debug then
        Log.debug "proxy request"
          [ ("trace_id", Field.String (Trace.id tr));
            ("ms", Field.Float (Trace.total_ms tr));
            ("trace", Field.String (Trace.to_json tr)) ])
    trace

let serve_conn t conn =
  Metrics.incr t.mx.m_connections;
  let reader = Framing.reader conn.fd in
  let send resp =
    try
      Framing.write_line conn.fd (Protocol.encode_response resp);
      true
    with Unix.Unix_error _ | Sys_error _ -> false
  in
  let rec loop () =
    match Framing.read_line reader with
    | None -> ()
    | exception Framing.Line_too_long ->
      ignore
        (send
           (Protocol.Error
              { code = Protocol.Parse;
                message =
                  Printf.sprintf "request exceeds %d bytes" Framing.default_max_line;
                retry_after_ms = None }))
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
    | Some line when String.trim line = "" -> if not (Atomic.get t.stopping) then loop ()
    | Some line ->
      let t0 = Clock.now_ms () in
      let resp, trace = respond t line in
      let written = send resp in
      finish_trace trace;
      Metrics.observe t.mx.m_request_ms (Clock.elapsed_ms t0);
      if written && not (Atomic.get t.stopping) then loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister t conn

let accept_loop t =
  let fd = t.listen_fd in
  Unix.set_nonblock fd;
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ fd ] [] [] 0.05 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ :: _, _, _ -> (
         match Unix.accept ~cloexec:true fd with
         | exception
             Unix.Unix_error
               ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
           ()
         | cfd, _ ->
           if Atomic.get t.stopping then (try Unix.close cfd with Unix.Unix_error _ -> ())
           else begin
             let conn = { fd = cfd } in
             Mutex.lock t.lock;
             t.conns <- conn :: t.conns;
             t.threads <- Thread.create (fun () -> serve_conn t conn) () :: t.threads;
             Mutex.unlock t.lock
           end));
      loop ()
    end
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
   | Framing.Unix_sock path -> (
     try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | Framing.Tcp _ -> ());
  Mutex.lock t.lock;
  let conns = t.conns in
  Mutex.unlock t.lock;
  List.iter
    (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  Mutex.lock t.lock;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.lock;
  List.iter Thread.join threads;
  Log.info "proxy drained" []

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let instruments reg =
  { reg;
    m_connections =
      Metrics.counter reg ~help:"Client connections accepted" "spp_proxy_connections_total";
    m_coalesced =
      Metrics.counter reg
        ~help:"Solve requests served by joining another request's in-flight upstream call"
        "spp_proxy_coalesced_total";
    m_cache_hits =
      Metrics.counter reg ~help:"Solve requests answered from the proxy warm cache"
        "spp_proxy_cache_hits_total";
    m_cache_misses =
      Metrics.counter reg ~help:"Solve requests that missed the proxy warm cache"
        "spp_proxy_cache_misses_total";
    m_request_ms =
      Metrics.histogram reg ~help:"Wall-clock per proxied request, receipt to reply (ms)"
        "spp_proxy_request_ms";
    m_upstream_ms =
      Metrics.histogram reg ~help:"Upstream solve latency over all backends (ms)"
        "spp_proxy_upstream_ms";
    m_hedges =
      Metrics.counter reg ~help:"Hedged re-issues launched against a second backend"
        "spp_hedges_total";
    m_hedge_wins =
      Metrics.counter reg ~help:"Solves answered by a hedged attempt before the leader"
        "spp_hedge_wins_total";
    m_deadline_rejects =
      Metrics.counter reg ~help:"Solves fast-failed because the propagated deadline ran out"
        ~labels:[ ("stage", "proxy") ] "spp_deadline_rejects_total" }

let start (cfg : config) =
  if cfg.backends = [] then invalid_arg "Proxy.start: no backends";
  if cfg.replicas < 1 then invalid_arg "Proxy.start: replicas must be >= 1";
  if cfg.cache_capacity < 0 then invalid_arg "Proxy.start: cache_capacity must be >= 0";
  if cfg.pool_size < 1 then invalid_arg "Proxy.start: pool_size must be >= 1";
  if cfg.failover < 0 then invalid_arg "Proxy.start: failover must be >= 0";
  if cfg.probe_interval_ms <= 0.0 then
    invalid_arg "Proxy.start: probe_interval_ms must be > 0";
  if cfg.fail_after < 1 then invalid_arg "Proxy.start: fail_after must be >= 1";
  if cfg.revive_after < 1 then invalid_arg "Proxy.start: revive_after must be >= 1";
  (match cfg.hedge with
   | Hedge_fixed ms when ms <= 0.0 -> invalid_arg "Proxy.start: hedge delay must be > 0"
   | Hedge_fixed _ | Hedge_off | Hedge_auto -> ());
  Spp_server.Signals.ignore_sigpipe ();
  let backends =
    Array.of_list
      (List.map
         (fun addr ->
           { up =
               Upstream.create ~pool_size:cfg.pool_size
                 ?timeout_ms:cfg.upstream_timeout_ms addr;
             brk =
               (* Raises on out-of-range knobs — Breaker validates its own. *)
               Breaker.create ~window:cfg.breaker_window ~threshold:cfg.breaker_threshold
                 ~cooldown_ms:cfg.breaker_cooldown_ms ();
             alive = true; fails = 0; oks = 0 })
         cfg.backends)
  in
  let by_name = Hashtbl.create 8 in
  Array.iter (fun b -> Hashtbl.replace by_name (Upstream.name b.up) b) backends;
  if Hashtbl.length by_name <> Array.length backends then
    invalid_arg "Proxy.start: duplicate backend address";
  let listen_fd = Framing.listen cfg.address in
  let t =
    { cfg; backends; by_name; health_mu = Mutex.create ();
      ring =
        Ring.create ~replicas:cfg.replicas
          (Array.to_list backends |> List.map (fun b -> Upstream.name b.up));
      cache =
        (if cfg.cache_capacity = 0 then None
         else Some (Lru.create ~capacity:cfg.cache_capacity));
      coalesce = Coalesce.create (); listen_fd; stopping = Atomic.make false;
      lock = Mutex.create (); conns = []; threads = []; acceptor = None; prober = None;
      started_ms = Clock.now_ms (); mx = instruments cfg.registry }
  in
  Metrics.gauge_fn cfg.registry ~help:"Backends currently in the routing ring"
    "spp_proxy_ring_size" (fun () -> float_of_int (Ring.size (current_ring t)));
  Metrics.gauge_fn cfg.registry ~help:"Configured backends, live or not"
    "spp_proxy_backends" (fun () -> float_of_int (Array.length t.backends));
  Metrics.gauge_fn cfg.registry ~help:"Coalesced upstream flights currently open"
    "spp_proxy_inflight_flights" (fun () -> float_of_int (Coalesce.in_flight t.coalesce));
  Metrics.gauge_fn cfg.registry ~help:"Seconds since the proxy started"
    "spp_proxy_uptime_seconds" (fun () -> Clock.elapsed_ms t.started_ms /. 1000.0);
  Array.iter
    (fun b ->
      Metrics.gauge_fn cfg.registry
        ~help:"Circuit breaker state per backend (0 closed, 1 half-open, 2 open)"
        ~labels:[ ("backend", Upstream.name b.up) ] "spp_breaker_state"
        (fun () -> Breaker.state_value b.brk))
    backends;
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t.prober <- Some (Thread.create (fun () -> prober_loop t) ());
  Log.info "proxy listening"
    [ ("address", Field.String (Framing.address_to_string cfg.address));
      ("backends", Field.Int (Array.length backends));
      ("replicas", Field.Int cfg.replicas);
      ("cache_capacity", Field.Int cfg.cache_capacity) ];
  t

let wait t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  (match t.prober with Some th -> Thread.join th | None -> ());
  Array.iter (fun b -> Upstream.close b.up) t.backends
