(** One backend as seen from the proxy: a small pool of persistent
    {!Spp_server.Client} connections plus the call discipline over them.

    Connections are created lazily, parked when idle (up to [pool_size];
    extras close), and discarded on any transport error. A request that
    fails on a {e pooled} connection is retried once on a fresh one —
    a parked connection may have been closed by the backend (restart,
    idle reaping) without the proxy knowing, and that staleness should
    not surface as a backend failure. A failure on the fresh connection
    is real and propagates as {!Spp_server.Client.Error}.

    Fault point [proxy.upstream] (see {!Spp_util.Fault}) fires at the top
    of every {!call} as a transport error — the chaos hook for "the
    network to this backend broke". *)

type t

val default_pool_size : int

(** [create addr] — no connection is opened yet. [timeout_ms] bounds
    connects and per-request reply waits; [pool_size] (default
    {!default_pool_size}) bounds parked idle connections. *)
val create : ?pool_size:int -> ?timeout_ms:float -> Spp_server.Framing.address -> t

(** [name t] — the backend's stable identity: its address string. Used as
    the ring member name and the [backend] metric label. *)
val name : t -> string

val address : t -> Spp_server.Framing.address

(** [call t req] — send one request on a pooled (or fresh) connection and
    block for the reply. [timeout_ms] overrides the pool's reply timeout
    for this call — how a request's remaining deadline bounds its
    upstream wait.
    @raise Spp_server.Client.Error when the backend is unreachable or the
    connection (including the once-retried fresh one) fails. *)
val call :
  ?timeout_ms:float -> t -> Spp_server.Protocol.request -> Spp_server.Protocol.response

(** Close every parked connection (in-flight calls are unaffected; their
    connections close on checkin). Idempotent. *)
val close : t -> unit
