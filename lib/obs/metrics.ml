type key = { k_name : string; k_labels : (string * string) list }

type hist_cells = {
  bounds : float array;  (* strictly increasing finite upper bounds *)
  counts : int Atomic.t array array;  (* shard -> bucket (length bounds + 1; last = overflow) *)
  sums : float Atomic.t array;  (* shard *)
}

type metric =
  | M_counter of int Atomic.t array  (* per shard *)
  | M_counter_fn of (unit -> int)
  | M_gauge of float Atomic.t
  | M_gauge_fn of (unit -> float)
  | M_hist of hist_cells

type entry = { help : string; metric : metric }

type t = {
  on : bool;
  mask : int;
  lock : Mutex.t;
  tbl : (key, entry) Hashtbl.t;
}

type counter = { c_cells : int Atomic.t array; c_mask : int; c_on : bool }
type gauge = { g_cell : float Atomic.t; g_on : bool }
type histogram = { h_cells : hist_cells; h_mask : int; h_on : bool }

let default_latency_buckets =
  [| 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0;
     2500.0; 5000.0; 10000.0 |]

let default_size_buckets =
  [| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576.; 4194304. |]

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(enabled = true) ?(shards = 16) () =
  let shards = pow2_at_least (max 1 shards) 1 in
  { on = enabled; mask = shards - 1; lock = Mutex.create (); tbl = Hashtbl.create 64 }

let enabled t = t.on

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let shard_index mask = (Domain.self () :> int) land mask

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let kind_name = function
  | M_counter _ | M_counter_fn _ -> "counter"
  | M_gauge _ | M_gauge_fn _ -> "gauge"
  | M_hist _ -> "histogram"

(* Register-or-find under the lock; handles returned from here do their
   work with plain atomic operations, no lock. *)
let register t ?(help = "") ?(labels = []) name make match_existing =
  if not t.on then
    (* Disabled registry: hand out working-shaped (but no-op) cells and
       record nothing, so snapshots and scrapes are empty and free. *)
    match_existing (make ())
  else
    let key = { k_name = name; k_labels = canon_labels labels } in
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e -> match_existing e.metric
        | None ->
          let m = make () in
          Hashtbl.replace t.tbl key { help; metric = m };
          match_existing m)

let mismatch name metric =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered as a %s" name (kind_name metric))

let counter t ?help ?labels name =
  let make () = M_counter (Array.init (t.mask + 1) (fun _ -> Atomic.make 0)) in
  register t ?help ?labels name make (function
    | M_counter cells -> { c_cells = cells; c_mask = t.mask; c_on = t.on }
    | m -> mismatch name m)

let incr ?(by = 1) c =
  if c.c_on then ignore (Atomic.fetch_and_add c.c_cells.(shard_index c.c_mask) by)

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_cells

let counter_fn t ?help ?labels name f =
  (* Sampled at snapshot time; re-registration replaces the closure (an
     engine restarted onto a shared registry points it at fresh state). *)
  if t.on then
    let key = { k_name = name; k_labels = canon_labels (Option.value ~default:[] labels) } in
    locked t (fun () ->
        Hashtbl.replace t.tbl key
          { help = Option.value ~default:"" help; metric = M_counter_fn f })

let gauge t ?help ?labels name =
  let make () = M_gauge (Atomic.make 0.0) in
  register t ?help ?labels name make (function
    | M_gauge cell -> { g_cell = cell; g_on = t.on }
    | m -> mismatch name m)

let gauge_set g v = if g.g_on then Atomic.set g.g_cell v

let rec atomic_add_float cell x =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. x)) then atomic_add_float cell x

let gauge_add g v = if g.g_on then atomic_add_float g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let gauge_fn t ?help ?labels name f =
  if t.on then
    let key = { k_name = name; k_labels = canon_labels (Option.value ~default:[] labels) } in
    locked t (fun () ->
        Hashtbl.replace t.tbl key
          { help = Option.value ~default:"" help; metric = M_gauge_fn f })

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then invalid_arg "Metrics.histogram: non-finite bucket bound";
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing")
    bounds

let histogram t ?help ?labels ?(buckets = default_latency_buckets) name =
  check_bounds buckets;
  let make () =
    M_hist
      { bounds = Array.copy buckets;
        counts =
          Array.init (t.mask + 1) (fun _ ->
              Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0));
        sums = Array.init (t.mask + 1) (fun _ -> Atomic.make 0.0) }
  in
  register t ?help ?labels name make (function
    | M_hist cells ->
      if cells.bounds <> buckets && buckets != default_latency_buckets then
        invalid_arg (Printf.sprintf "Metrics: %s re-registered with different buckets" name);
      { h_cells = cells; h_mask = t.mask; h_on = t.on }
    | m -> mismatch name m)

(* First bucket whose upper bound admits v (Prometheus "le" semantics),
   else the overflow slot. Bounds arrays are small; linear scan. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if h.h_on then begin
    let s = shard_index h.h_mask in
    ignore (Atomic.fetch_and_add h.h_cells.counts.(s).(bucket_index h.h_cells.bounds v) 1);
    atomic_add_float h.h_cells.sums.(s) v
  end

(* ------------------------------------------------------------------ *)
(* Snapshots: merge shards under no lock — each cell read is atomic, and
   counters only grow, so a concurrent scrape sees a consistent-enough
   (monotone) view. *)

type hist_snapshot = {
  buckets : (float * int) list;  (** (finite upper bound, cumulative count) *)
  total : int;
  sum : float;
}

let snap_hist (cells : hist_cells) =
  let nb = Array.length cells.bounds + 1 in
  let merged = Array.make nb 0 in
  Array.iter (fun shard -> Array.iteri (fun i a -> merged.(i) <- merged.(i) + Atomic.get a) shard)
    cells.counts;
  let sum = Array.fold_left (fun acc a -> acc +. Atomic.get a) 0.0 cells.sums in
  let cum = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i b ->
           cum := !cum + merged.(i);
           (b, !cum))
         cells.bounds)
  in
  { buckets; total = !cum + merged.(nb - 1); sum }

let hist_quantile s q =
  if s.total = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = Float.max 1.0 (Float.round (q *. float_of_int s.total)) in
    let rec go lower prev_cum = function
      | [] ->
        (* Rank falls in the overflow bucket: report the largest finite
           bound — a floor, honestly labelled by the exposition's +Inf. *)
        lower
      | (bound, cum) :: tl ->
        if float_of_int cum >= rank then begin
          let in_bucket = cum - prev_cum in
          if in_bucket <= 0 then bound
          else begin
            let frac = (rank -. float_of_int prev_cum) /. float_of_int in_bucket in
            lower +. ((bound -. lower) *. frac)
          end
        end
        else go bound cum tl
    in
    go 0.0 0 s.buckets
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

let snapshot t =
  let entries = locked t (fun () -> Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []) in
  entries
  |> List.map (fun (k, e) ->
         let value =
           match e.metric with
           | M_counter cells -> Counter (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 cells)
           | M_counter_fn f -> Counter (try f () with _ -> 0)
           | M_gauge cell -> Gauge (Atomic.get cell)
           | M_gauge_fn f -> Gauge (try f () with _ -> Float.nan)
           | M_hist cells -> Histogram (snap_hist cells)
         in
         { name = k.k_name; labels = k.k_labels; help = e.help; value })
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Field.escape v)) labels)
    ^ "}"

let counters t =
  snapshot t
  |> List.filter_map (fun s ->
         match s.value with
         | Counter v -> Some (s.name ^ labels_to_string s.labels, v)
         | Gauge _ | Histogram _ -> None)

let find t ?(labels = []) name =
  let key = { k_name = name; k_labels = canon_labels labels } in
  locked t (fun () -> Hashtbl.find_opt t.tbl key)

let find_counter t ?labels name =
  match find t ?labels name with
  | Some { metric = M_counter cells; _ } ->
    Some (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 cells)
  | Some { metric = M_counter_fn f; _ } -> Some (try f () with _ -> 0)
  | _ -> None

let find_histogram t ?labels name =
  match find t ?labels name with
  | Some { metric = M_hist cells; _ } -> Some (snap_hist cells)
  | _ -> None

let labeled_counters t name =
  snapshot t
  |> List.filter_map (fun s ->
         match s.value with
         | Counter v when s.name = name -> Some (s.labels, v)
         | _ -> None)
