(** Leveled structured logger: one JSON object per line,
    [{"ts":<unix seconds>,"level":...,"msg":...,<fields>}].

    Process-global (a daemon has one log stream), mutex-protected, and
    flushed per line so a crashed daemon's tail is intact. Defaults to
    [stderr] at [Info]; [SPP_LOG=debug|info|warn|error] (see
    {!init_from_env}) and [spp serve --log-file] reconfigure it. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
val level : unit -> level

(** [enabled lvl] — would a message at [lvl] be emitted? Use to skip
    expensive payload construction (e.g. rendering a span tree). *)
val enabled : level -> bool

(** Route output to an existing channel (not closed on replacement). *)
val set_channel : out_channel -> unit

(** Append to a file (opened now; closed when the sink is replaced). *)
val set_file : string -> unit

(** Apply [SPP_LOG] if set; warns on stderr about unknown values. *)
val init_from_env : unit -> unit

val emit : level -> string -> (string * Field.t) list -> unit
val debug : string -> (string * Field.t) list -> unit
val info : string -> (string * Field.t) list -> unit
val warn : string -> (string * Field.t) list -> unit
val error : string -> (string * Field.t) list -> unit
