type snapshot = {
  pivots : int;
  bb_nodes : int;
  bb_pruned : int;
  bb_dominated : int;
  colgen_columns : int;
  colgen_rounds : int;
}

let zero =
  { pivots = 0; bb_nodes = 0; bb_pruned = 0; bb_dominated = 0; colgen_columns = 0;
    colgen_rounds = 0 }
let is_zero s = s = zero

(* One mutable cell per domain: increments are plain stores, no atomics
   on the solver side. The engine resets/reads on the same domain the
   solver ran on, so no cross-domain visibility is needed. *)
type cell = {
  mutable c_pivots : int;
  mutable c_bb_nodes : int;
  mutable c_bb_pruned : int;
  mutable c_bb_dominated : int;
  mutable c_colgen_columns : int;
  mutable c_colgen_rounds : int;
}

let key =
  Domain.DLS.new_key (fun () ->
      { c_pivots = 0; c_bb_nodes = 0; c_bb_pruned = 0; c_bb_dominated = 0;
        c_colgen_columns = 0; c_colgen_rounds = 0 })

let on = Atomic.make true
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let cell () = Domain.DLS.get key

let add_pivots n =
  if Atomic.get on then begin
    let c = cell () in
    c.c_pivots <- c.c_pivots + n
  end

let add_bb_nodes n =
  if Atomic.get on then begin
    let c = cell () in
    c.c_bb_nodes <- c.c_bb_nodes + n
  end

let add_bb_pruned n =
  if Atomic.get on then begin
    let c = cell () in
    c.c_bb_pruned <- c.c_bb_pruned + n
  end

let add_bb_dominated n =
  if Atomic.get on then begin
    let c = cell () in
    c.c_bb_dominated <- c.c_bb_dominated + n
  end

let add_colgen_columns n =
  if Atomic.get on then begin
    let c = cell () in
    c.c_colgen_columns <- c.c_colgen_columns + n
  end

let add_colgen_rounds n =
  if Atomic.get on then begin
    let c = cell () in
    c.c_colgen_rounds <- c.c_colgen_rounds + n
  end

let reset () =
  let c = cell () in
  c.c_pivots <- 0;
  c.c_bb_nodes <- 0;
  c.c_bb_pruned <- 0;
  c.c_bb_dominated <- 0;
  c.c_colgen_columns <- 0;
  c.c_colgen_rounds <- 0

let read () =
  let c = cell () in
  { pivots = c.c_pivots; bb_nodes = c.c_bb_nodes; bb_pruned = c.c_bb_pruned;
    bb_dominated = c.c_bb_dominated; colgen_columns = c.c_colgen_columns;
    colgen_rounds = c.c_colgen_rounds }
