(** The structured-data atom shared by the whole observability layer:
    log lines, telemetry events, and trace span annotations all carry
    [(string * Field.t) list] payloads and serialise them the same way. *)

type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

(** JSON string-body escaping (quotes, backslashes, control chars). *)
val escape : string -> string

(** [to_json f] is the JSON value text for one field ([Float nan] and
    infinities print [null], like {!Spp_server.Json}). *)
val to_json : t -> string

(** [add_fields buf fields] appends [,"k":v] for each field — the tail of
    a JSON object whose opening fields are already in [buf]. *)
val add_fields : Buffer.t -> (string * t) list -> unit
