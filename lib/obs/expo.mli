(** Prometheus text exposition format (version 0.0.4) for a
    {!Metrics} registry.

    Metric names are sanitised (characters outside [[a-zA-Z0-9_:]]
    become ['_'], a leading digit is prefixed), so legacy dotted
    telemetry counters like [cache.hit] scrape as [cache_hit]. Label
    values are escaped per the format spec (backslash, double quote,
    newline). Histograms render the standard cumulative [_bucket]
    series (with a closing [le] of +Inf), [_sum], and [_count]. *)

val render : Metrics.t -> string

(** Exposed for tests. *)
val sanitize_name : string -> string

val escape_label_value : string -> string
