type sample = {
  name : string;
  labels : (string * string) list;
  value : float;
}

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = ':'

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

(* Label block: key=quoted-value pairs, comma-separated, values with
   backslash escapes (backslash, quote, n). Returns the pairs and the
   index just past the closing brace. *)
let parse_labels line i0 =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let rec skip_ws i = if i < n && line.[i] = ' ' then skip_ws (i + 1) else i in
  let rec name i =
    if i < n && is_name_char line.[i] then begin
      Buffer.add_char buf line.[i];
      name (i + 1)
    end
    else i
  in
  let rec pairs acc i =
    let i = skip_ws i in
    if i >= n then None
    else if line.[i] = '}' then Some (List.rev acc, i + 1)
    else begin
      Buffer.clear buf;
      let i = name i in
      let key = Buffer.contents buf in
      let i = skip_ws i in
      if key = "" || i + 1 >= n || line.[i] <> '=' || line.[i + 1] <> '"' then None
      else begin
        Buffer.clear buf;
        let rec value i =
          if i >= n then None
          else
            match line.[i] with
            | '"' -> Some (i + 1)
            | '\\' when i + 1 < n ->
              Buffer.add_char buf
                (match line.[i + 1] with 'n' -> '\n' | '\\' -> '\\' | '"' -> '"' | c -> c);
              value (i + 2)
            | c ->
              Buffer.add_char buf c;
              value (i + 1)
        in
        match value (i + 2) with
        | None -> None
        | Some i -> (
          let v = Buffer.contents buf in
          let i = skip_ws i in
          if i < n && line.[i] = ',' then pairs ((key, v) :: acc) (i + 1)
          else pairs ((key, v) :: acc) i)
      end
    end
  in
  pairs [] i0

let parse_line line =
  let line = String.trim line in
  let n = String.length line in
  if n = 0 || line.[0] = '#' then None
  else begin
    let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
    let ne = name_end 0 in
    if ne = 0 then None
    else begin
      let name = String.sub line 0 ne in
      let labels, rest =
        if ne < n && line.[ne] = '{' then
          match parse_labels line (ne + 1) with
          | None -> ([], None)
          | Some (ls, i) -> (ls, Some (String.sub line i (n - i)))
        else ([], Some (String.sub line ne (n - ne)))
      in
      match rest with
      | None -> None
      | Some rest -> (
        (* value, optionally followed by a timestamp we ignore *)
        match String.split_on_char ' ' (String.trim rest) with
        | v :: _ ->
          Option.map
            (fun value ->
              { name; labels = List.sort (fun (a, _) (b, _) -> compare a b) labels; value })
            (parse_value v)
        | [] -> None)
    end
  end

let parse text = List.filter_map parse_line (String.split_on_char '\n' text)

let norm labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

let value ?(labels = []) samples name =
  let labels = norm labels in
  List.find_map
    (fun s -> if s.name = name && s.labels = labels then Some s.value else None)
    samples

let sum samples name =
  List.fold_left (fun acc s -> if s.name = name then acc +. s.value else acc) 0.0 samples

let label_values samples ~name ~label =
  List.filter_map
    (fun s -> if s.name = name then Option.map (fun v -> (v, s.value)) (List.assoc_opt label s.labels) else None)
    samples
  |> List.sort compare

let histogram ?(labels = []) samples name =
  let labels = norm labels in
  let without_le ls = List.filter (fun (k, _) -> k <> "le") ls in
  let buckets =
    List.filter_map
      (fun s ->
        if s.name = name ^ "_bucket" && without_le s.labels = labels then
          Option.bind (List.assoc_opt "le" s.labels) (fun le ->
              Option.map (fun b -> (b, int_of_float s.value)) (parse_value le))
        else None)
      samples
    |> List.sort compare
  in
  let total =
    match List.assoc_opt Float.infinity buckets with
    | Some n -> Some n
    | None -> Option.map int_of_float (value ~labels samples (name ^ "_count"))
  in
  match (buckets, total) with
  | [], _ | _, None -> None
  | _, Some total ->
    let sum = Option.value ~default:0.0 (value ~labels samples (name ^ "_sum")) in
    let finite = List.filter (fun (b, _) -> Float.is_finite b) buckets in
    Some { Metrics.buckets = finite; total; sum }

let histogram_names samples =
  let strip suffix s =
    let n = String.length s and k = String.length suffix in
    if n > k && String.sub s (n - k) k = suffix then Some (String.sub s 0 (n - k)) else None
  in
  let bucketed =
    List.filter_map (fun s -> strip "_bucket" s.name) samples |> List.sort_uniq compare
  in
  List.filter
    (fun name -> List.exists (fun s -> s.name = name ^ "_count") samples)
    bucketed
