(** Ambient solver-work counters, one accumulator per domain.

    The exact core (simplex, branch-and-bound, column generation) sits
    behind functors and pure interfaces with no telemetry parameter to
    thread a registry through, so profiling is ambient instead: solvers
    call the [add_*] functions below, which accumulate into the calling
    domain's own cells. The engine resets the accumulator before racing
    a portfolio member on a domain and reads it back afterwards — each
    member runs alone on its domain, so the snapshot attributes work to
    exactly that algorithm.

    Increment sites report {e aggregate} counts once per solver call
    (a simplex solve adds its whole pivot count on exit, not one per
    pivot), so the hot loops stay untouched; bench E18 gates the
    residual overhead. [set_enabled false] turns every [add_*] into a
    no-op process-wide — the profiling-off baseline. *)

type snapshot = {
  pivots : int;  (** simplex pivot steps (phase 1 + phase 2) *)
  bb_nodes : int;  (** branch-and-bound nodes expanded *)
  bb_pruned : int;  (** subtrees cut by a bound before expansion *)
  bb_dominated : int;  (** states cut by the branch-and-bound dominance table *)
  colgen_columns : int;  (** columns added by knapsack pricing *)
  colgen_rounds : int;  (** restricted-master re-solve rounds *)
}

val zero : snapshot
val is_zero : snapshot -> bool

(** Process-wide switch, default on. Racing domains observe a flip on
    their next [add_*] call. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

val add_pivots : int -> unit
val add_bb_nodes : int -> unit
val add_bb_pruned : int -> unit
val add_bb_dominated : int -> unit
val add_colgen_columns : int -> unit
val add_colgen_rounds : int -> unit

(** [reset ()] zeroes the calling domain's accumulator. *)
val reset : unit -> unit

(** [read ()] snapshots the calling domain's accumulator. *)
val read : unit -> snapshot
