(** Parser for the Prometheus text exposition format — the inverse of
    {!Expo.render}, used by [spp top] to read scrapes back.

    Tolerant by design: comment lines, blank lines, and anything that
    does not parse as [name{labels} value [timestamp]] are skipped, so a
    partially understood scrape still yields its well-formed samples.
    [+Inf] / [-Inf] / [NaN] values parse to the matching floats. *)

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
  value : float;
}

val parse : string -> sample list

(** [value samples name] — the sample matching [name] and exactly
    [labels] (default none). *)
val value : ?labels:(string * string) list -> sample list -> string -> float option

(** Sum over every label set of family [name] (bare series included). *)
val sum : sample list -> string -> float

(** [label_values samples ~name ~label] — [(label value, sample value)]
    for every series of [name] carrying [label], sorted. *)
val label_values : sample list -> name:string -> label:string -> (string * float) list

(** Reassemble the histogram family [name] (series [name_bucket],
    [name_sum], [name_count]) whose non-[le] labels equal [labels] into
    a snapshot usable with {!Metrics.hist_quantile}. [None] when no
    [+Inf] bucket or count is present. *)
val histogram :
  ?labels:(string * string) list -> sample list -> string -> Metrics.hist_snapshot option

(** Histogram family names present in the samples (those with a
    [_bucket]/[_count] pair), sorted. *)
val histogram_names : sample list -> string list
