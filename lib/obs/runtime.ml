module Clock = Spp_util.Clock

type t = {
  interval_ms : float;
  g_heap : Metrics.gauge;
  c_minor : Metrics.counter;
  c_major : Metrics.counter;
  c_promoted : Metrics.counter;
  c_minor_words : Metrics.counter;
  g_cpu : Metrics.gauge;
  g_util : Metrics.gauge;
  (* Last observed absolutes, so monotone sources feed add-only
     counters by delta. Touched only by the sampler thread (and once by
     start before the thread exists). *)
  mutable last_minor : int;
  mutable last_major : int;
  mutable last_promoted : float;
  mutable last_minor_words : float;
  mutable last_cpu_s : float;
  mutable last_wall_ms : float;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let cpu_seconds () =
  let tm = Unix.times () in
  tm.Unix.tms_utime +. tm.Unix.tms_stime

let sample t =
  let st = Gc.quick_stat () in
  Metrics.gauge_set t.g_heap (float_of_int st.Gc.heap_words);
  Metrics.incr ~by:(st.Gc.minor_collections - t.last_minor) t.c_minor;
  t.last_minor <- st.Gc.minor_collections;
  Metrics.incr ~by:(st.Gc.major_collections - t.last_major) t.c_major;
  t.last_major <- st.Gc.major_collections;
  Metrics.incr ~by:(int_of_float (st.Gc.promoted_words -. t.last_promoted)) t.c_promoted;
  t.last_promoted <- st.Gc.promoted_words;
  Metrics.incr ~by:(int_of_float (st.Gc.minor_words -. t.last_minor_words)) t.c_minor_words;
  t.last_minor_words <- st.Gc.minor_words;
  let cpu = cpu_seconds () in
  let now = Clock.now_ms () in
  let wall_s = (now -. t.last_wall_ms) /. 1000.0 in
  (* A utilization ratio over a near-zero interval is noise (the
     synchronous start-up sample would divide start-up CPU by
     microseconds of wall time); keep the previous reading until a
     real interval has elapsed. *)
  if wall_s >= 0.1 then begin
    Metrics.gauge_set t.g_util (Float.max 0.0 ((cpu -. t.last_cpu_s) /. wall_s));
    t.last_cpu_s <- cpu;
    t.last_wall_ms <- now
  end;
  Metrics.gauge_set t.g_cpu cpu

let run t () =
  (* Sleep in short slices so stop is prompt without a timed wait. *)
  let slice = 0.05 in
  let rec loop slept =
    if not t.stopping then
      if slept *. 1000.0 >= t.interval_ms then begin
        sample t;
        loop 0.0
      end
      else begin
        Thread.delay slice;
        loop (slept +. slice)
      end
  in
  loop 0.0

let start ?(interval_ms = 1000.0) reg =
  let t =
    { interval_ms = Float.max 10.0 interval_ms;
      g_heap = Metrics.gauge reg ~help:"Major heap size in words" "spp_gc_heap_words";
      c_minor =
        Metrics.counter reg ~help:"Minor collections" "spp_gc_minor_collections_total";
      c_major =
        Metrics.counter reg ~help:"Major collections" "spp_gc_major_collections_total";
      c_promoted =
        Metrics.counter reg ~help:"Words promoted to the major heap"
          "spp_gc_promoted_words_total";
      c_minor_words =
        Metrics.counter reg ~help:"Words allocated on the minor heap"
          "spp_gc_minor_words_total";
      g_cpu =
        Metrics.gauge reg ~help:"Process CPU seconds, user+system, all domains"
          "spp_process_cpu_seconds";
      g_util =
        Metrics.gauge reg ~help:"Average busy cores over the last sampling interval"
          "spp_cpu_utilization";
      last_minor = 0; last_major = 0; last_promoted = 0.0; last_minor_words = 0.0;
      last_cpu_s = cpu_seconds (); last_wall_ms = Clock.now_ms (); stopping = false;
      thread = None }
  in
  sample t;
  t.thread <- Some (Thread.create (run t) ());
  t

let stop t =
  t.stopping <- true;
  match t.thread with
  | None -> ()
  | Some th ->
    t.thread <- None;
    Thread.join th
