(** Per-request trace span trees.

    A trace is one root span plus nested children, each stamped with a
    start offset and duration on the monotonic {!Spp_util.Clock}. The
    serving stack opens a trace at admission (honouring a client-supplied
    id), threads it through the queue, the worker pool, the engine, and
    each racing algorithm, then renders it — as an ASCII tree for
    [spp trace], or as one JSON line for the slow-request log.

    All mutation is under the trace's mutex, so racing domains may open
    and finish sibling spans concurrently. *)

type t
type span

(** A fresh 16-hex-digit id (process-wide PRNG, seeded per process). *)
val gen_id : unit -> string

(** [create ~name ()] starts a trace whose root span [name] begins now.
    [id] overrides the generated trace id (client-supplied propagation);
    an empty [id] is replaced by a generated one. *)
val create : ?id:string -> name:string -> unit -> t

val id : t -> string
val root : t -> span

(** [span t ~parent name] opens a child span starting now. *)
val span : t -> parent:span -> string -> span

(** [finish t s] stamps the duration (first call wins) and appends
    [fields]. *)
val finish : ?fields:(string * Field.t) list -> t -> span -> unit

(** [with_span t ~parent name f] runs [f] inside a fresh span, finishing
    it on the way out ([outcome=raised] is recorded when [f] escapes with
    an exception, which is re-raised). *)
val with_span : t -> parent:span -> string -> (span -> 'a) -> 'a

val add_fields : t -> span -> (string * Field.t) list -> unit

(** [close t] finishes the root span. *)
val close : ?fields:(string * Field.t) list -> t -> unit

(** Root duration if closed, else elapsed-so-far. *)
val total_ms : t -> float

(** One JSON line:
    [{"trace_id":...,"root":{"name":...,"start_ms":...,"ms":...,
    "fields":{...},"spans":[...]}}]. *)
val to_json : t -> string

(** Human-readable tree with durations, offsets, and span fields. *)
val render : t -> string
