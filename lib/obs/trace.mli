(** Per-request trace span trees.

    A trace is one root span plus nested children, each stamped with a
    start offset and duration on the monotonic {!Spp_util.Clock}. The
    serving stack opens a trace at admission (honouring a client-supplied
    id), threads it through the queue, the worker pool, the engine, and
    each racing algorithm, then renders it — as an ASCII tree for
    [spp trace], or as one JSON line for the slow-request log.

    All mutation is under the trace's mutex, so racing domains may open
    and finish sibling spans concurrently. *)

type t
type span

(** A fresh 16-hex-digit id (process-wide PRNG, seeded per process). *)
val gen_id : unit -> string

(** [create ~name ()] starts a trace whose root span [name] begins now.
    [id] overrides the generated trace id (client-supplied propagation);
    an empty [id] is replaced by a generated one. *)
val create : ?id:string -> name:string -> unit -> t

val id : t -> string
val root : t -> span

(** [span t ~parent name] opens a child span starting now. *)
val span : t -> parent:span -> string -> span

(** [finish t s] stamps the duration (first call wins) and appends
    [fields]. *)
val finish : ?fields:(string * Field.t) list -> t -> span -> unit

(** [with_span t ~parent name f] runs [f] inside a fresh span, finishing
    it on the way out ([outcome=raised] is recorded when [f] escapes with
    an exception, which is re-raised). *)
val with_span : t -> parent:span -> string -> (span -> 'a) -> 'a

val add_fields : t -> span -> (string * Field.t) list -> unit

(** Start offset of [s] relative to the trace epoch, in ms. *)
val start_ms : span -> float

(** A span tree recorded by {e another} process, to be adopted into this
    trace — the shape of the [root] object in {!to_json} output.
    [i_children] are chronological. *)
type imported = {
  i_name : string;
  i_start_ms : float;  (** relative to the remote trace's epoch *)
  i_dur_ms : float option;
  i_fields : (string * Field.t) list;
  i_children : imported list;
}

(** [graft t ~parent ~offset_ms imp] attaches [imp] (durations and
    fields preserved) under [parent], rebasing every remote start offset
    by [offset_ms] — pass {!start_ms} of the span that covers the remote
    call. This is how the proxy nests a backend's reply-embedded span
    tree under its own [upstream] span. *)
val graft : t -> parent:span -> offset_ms:float -> imported -> unit

(** [close t] finishes the root span. *)
val close : ?fields:(string * Field.t) list -> t -> unit

(** Root duration if closed, else elapsed-so-far. *)
val total_ms : t -> float

(** One JSON line:
    [{"trace_id":...,"root":{"name":...,"start_ms":...,"ms":...,
    "fields":{...},"spans":[...]}}]. *)
val to_json : t -> string

(** Human-readable tree with durations, offsets, and span fields. *)
val render : t -> string
