type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_json = function
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Bool b -> string_of_bool b

let add_fields buf fields =
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" (escape k) (to_json v)))
    fields
